// Command vetreport turns the raw JSONL findings stream written by
// mgspvet's -mgspsummary.report sink into the stable CI artifact.
//
// `go vet` runs one analysis action per package and test variant, all
// appending to the same file, so the raw stream interleaves, repeats
// findings (a _test variant re-analyzes the library sources), and orders
// nondeterministically. This tool merges: dedupe on the full
// (file, line, analyzer, message, suppressed) tuple, sort by file, line,
// analyzer, message, and rewrite as JSONL — byte-identical across runs of
// an unchanged tree, so CI can diff artifacts.
//
// Usage:
//
//	vetreport -in raw.jsonl -out VET_REPORT.jsonl
//
// With -out omitted the merged stream goes to stdout. A missing or empty
// input produces an empty artifact and exit 0: no findings is the normal
// green-tree case, not an error. Malformed lines (a vet action killed
// mid-append) are counted on stderr and skipped, never fatal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mgsp/internal/analysis/vetreport"
)

func main() {
	in := flag.String("in", "", "raw JSONL findings stream (default stdin)")
	out := flag.String("out", "", "merged artifact path (default stdout)")
	trim := flag.String("trim", defaultTrim(), "path prefix to strip from finding files (default the working directory), keeping the artifact checkout-relative")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			if os.IsNotExist(err) {
				// A clean tree writes no findings at all.
				writeOut(*out, nil)
				return
			}
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	findings, bad := merge(r, *trim)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "vetreport: skipped %d malformed line(s)\n", bad)
	}
	writeOut(*out, findings)
}

func defaultTrim() string {
	wd, err := os.Getwd()
	if err != nil {
		return ""
	}
	return wd
}

// merge reads JSONL findings, makes paths trim-relative, deduplicates exact
// repeats, and returns them deterministically sorted plus the count of
// unparseable lines. Trimming precedes the sort so the artifact's order does
// not depend on where the checkout lives.
func merge(r io.Reader, trim string) ([]vetreport.Finding, int) {
	seen := make(map[vetreport.Finding]bool)
	bad := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f vetreport.Finding
		if err := json.Unmarshal(line, &f); err != nil {
			bad++
			continue
		}
		if trim != "" {
			f.File = strings.TrimPrefix(f.File, strings.TrimSuffix(trim, "/")+"/")
		}
		seen[f] = true
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	out := make([]vetreport.Finding, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return !a.Suppressed && b.Suppressed
	})
	return out, bad
}

func writeOut(path string, findings []vetreport.Finding) {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for _, f := range findings {
		if err := enc.Encode(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vetreport:", err)
	os.Exit(1)
}
