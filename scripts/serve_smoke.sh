#!/bin/sh
# serve-smoke: boot a real mgspd on ephemeral ports, push the KV and ingest
# workloads through the wire protocol, validate the bench report and the
# live obs endpoint, drain the server with SIGTERM, and fsck the shard image
# it saved on the way out. Proves the server path — protocol, group-commit
# batcher, obs HTTP, clean shutdown, recoverable image — end to end in a few
# seconds. `make serve-smoke` runs this; `make ci` includes it.
set -eu

GO=${GO:-go}
T=$(mktemp -d)
BIN="$T/bin"
SRV_PID=
cleanup() {
	if [ -n "$SRV_PID" ]; then
		kill "$SRV_PID" 2>/dev/null || true
		wait "$SRV_PID" 2>/dev/null || true
	fi
	rm -rf "$T"
}
trap cleanup EXIT INT TERM

$GO build -o "$BIN/" ./cmd/mgspd ./cmd/mgspbench ./cmd/mgspstat ./cmd/mgspfsck

"$BIN/mgspd" -addr 127.0.0.1:0 -obs 127.0.0.1:0 \
	-addr-file "$T/addr" -obs-addr-file "$T/obs-addr" -img-dir "$T" &
SRV_PID=$!

# The :0 listeners publish their bound addresses through the addr files.
i=0
while [ ! -s "$T/addr" ] || [ ! -s "$T/obs-addr" ]; do
	kill -0 "$SRV_PID" 2>/dev/null || { echo "serve-smoke: mgspd died during startup" >&2; exit 1; }
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "serve-smoke: mgspd never published its addresses" >&2; exit 1; }
	sleep 0.05
done
ADDR=$(cat "$T/addr")
OBS=$(cat "$T/obs-addr")
echo "serve-smoke: mgspd on $ADDR (obs http://$OBS)"

# Drive both server experiments over TCP and schema-validate the report.
"$BIN/mgspbench" -exp kv,ingest -scale smoke -server "$ADDR" -json "$T/serve.json" >/dev/null
"$BIN/mgspstat" -validate "$T/serve.json"

# The obs side port must serve a valid mgsp-obs/v1 snapshot while live.
"$BIN/mgspstat" -url "http://$OBS" -validate

# SIGTERM drains: queued writes commit, files close, images land in -img-dir.
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=

# The saved image must mount through recovery with a clean allocator audit.
"$BIN/mgspfsck" -load "$T/shard0.img"
echo "serve-smoke: OK"
