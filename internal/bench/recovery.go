package bench

import (
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// Recovery reproduces the §III-D recovery measurement: run a random-write
// workload, crash at a random point, and measure the virtual time Mount
// takes to replay the metadata log and write every shadow log back. The
// paper reports 186 ms to restore a 1 GiB file (153 ms of it writing 189 MB
// of logs back) and bounds the worst case under one second.
func Recovery(sc Scale) (*Table, error) {
	sizes := []int64{sc.FileSize / 4, sc.FileSize / 2, sc.FileSize}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%dMiB-file", s>>20)
	}
	t := NewTable("recovery", "crash recovery time (metadata replay + log write-back)", "ms", []string{"recovery", "logdata-MiB"}, rows)
	for i, size := range sizes {
		ms, logMB, err := recoverOnce(size, sc.Ops*4, int64(i)+1)
		if err != nil {
			return nil, err
		}
		t.Cells[i][0] = ms
		t.Cells[i][1] = logMB
	}
	t.Notes = append(t.Notes, "paper: 186 ms for a 1 GiB file with 48K log entries (189 MB written back)")
	return t, nil
}

func recoverOnce(fileSize int64, ops int, seed int64) (ms, logMB float64, err error) {
	dev := nvm.New(devSizeFor(fileSize), sim.DefaultCosts())
	fs := core.MustNew(dev, core.DefaultOptions())
	ctx := sim.NewCtx(0, seed)
	f, err := fs.Create(ctx, "data")
	if err != nil {
		return 0, 0, err
	}
	chunk := make([]byte, 1<<20)
	for off := int64(0); off < fileSize; off += 1 << 20 {
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			return 0, 0, err
		}
	}
	// Random-write phase filling the logs, then crash mid-flight.
	buf := make([]byte, 4096)
	dev.ArmCrash(int64(ops)*3, seed) // land the crash inside the workload
	func() {
		defer func() {
			if r := recover(); r != nil && r != nvm.ErrCrashed {
				panic(r)
			}
		}()
		for i := 0; i < ops*4; i++ {
			off := ctx.Rand.Int63n(fileSize/4096) * 4096
			if _, err := f.WriteAt(ctx, buf, off); err != nil {
				return
			}
		}
	}()
	dev.DisarmCrash()
	dev.Recover()

	before := dev.Stats().MediaWriteBytes.Load()
	rctx := sim.NewCtx(1, seed)
	if _, err := core.Mount(rctx, dev, core.DefaultOptions()); err != nil {
		return 0, 0, err
	}
	written := dev.Stats().MediaWriteBytes.Load() - before
	return float64(rctx.Now()) / 1e6, float64(written) / (1 << 20), nil
}
