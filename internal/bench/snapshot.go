package bench

import (
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// Snapshot measures the two properties the snapshot subsystem promises (no
// experiment in the paper corresponds to this — snapshots are an extension
// built on the paper's shadow tree): creation is O(metadata), i.e. a
// constant number of media bytes regardless of file size, and the paper's
// 2-media-write overwrite fast path is untouched while no snapshot pins the
// written block. The cow column shows the overwrite cost while a snapshot
// IS pinning the file: one relocation per block on first touch, then
// steady-state shadow writes into the unshared log.
func Snapshot(sc Scale) (*Table, error) {
	sizes := []int64{sc.FileSize / 8, sc.FileSize / 2, sc.FileSize * 2}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%dMiB", s>>20)
	}
	t := NewTable("snapshot", "snapshot creation and copy-on-write overwrite cost", "bytes",
		[]string{"create-bytes", "overwrite-B/op", "cow-B/op", "pinned-blocks"}, rows)

	for i, size := range sizes {
		dev := nvm.New(devSizeFor(size*2), sim.DefaultCosts())
		fs := core.MustNew(dev, core.DefaultOptions())
		ctx := sim.NewCtx(0, int64(i)+1)
		f, err := fs.Create(ctx, "data")
		if err != nil {
			return nil, err
		}
		chunk := make([]byte, 1<<20)
		for off := int64(0); off < size; off += 1 << 20 {
			if _, err := f.WriteAt(ctx, chunk, off); err != nil {
				return nil, err
			}
		}

		// Warm the overwrite path, then measure it with no snapshot live.
		block := make([]byte, 4096)
		nBlocks := size / 4096
		ops := sc.Ops
		if _, err := f.WriteAt(ctx, block, 0); err != nil {
			return nil, err
		}
		before := dev.Stats().MediaWriteBytes.Load()
		for k := 0; k < ops; k++ {
			off := (int64(k*53) % nBlocks) * 4096
			if _, err := f.WriteAt(ctx, block, off); err != nil {
				return nil, err
			}
		}
		t.Cells[i][1] = float64(dev.Stats().MediaWriteBytes.Load()-before) / float64(ops)

		// Snapshot creation: O(metadata) media bytes, independent of size.
		before = dev.Stats().MediaWriteBytes.Load()
		id, err := fs.Snapshot(ctx, "data")
		if err != nil {
			return nil, err
		}
		t.Cells[i][0] = float64(dev.Stats().MediaWriteBytes.Load() - before)

		// Copy-on-write overwrites under the live snapshot: first touch of
		// each block relocates it, repeats stay in the unshared log.
		before = dev.Stats().MediaWriteBytes.Load()
		for k := 0; k < ops; k++ {
			off := (int64(k*53) % nBlocks) * 4096
			if _, err := f.WriteAt(ctx, block, off); err != nil {
				return nil, err
			}
		}
		t.Cells[i][2] = float64(dev.Stats().MediaWriteBytes.Load()-before) / float64(ops)

		infos, err := fs.Snapshots(ctx, "data")
		if err != nil {
			return nil, err
		}
		if len(infos) == 1 {
			t.Cells[i][3] = float64(infos[0].PinnedBlocks)
		}
		if err := fs.DropSnapshot(ctx, "data", id); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"create-bytes: media bytes to take the snapshot — one 128 B log entry + flush, flat across file sizes",
		"overwrite-B/op: random 4 KiB overwrite with no live snapshot (the paper's 2-media-write fast path)",
		"cow-B/op: the same workload while the snapshot pins every block (adds the one-time relocation per block)")
	return t, nil
}
