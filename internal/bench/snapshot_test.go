package bench

import "testing"

// TestSnapshotShape is the acceptance check for the snapshot subsystem's
// performance claims: creation is O(metadata) — the same small number of
// media bytes at every file size — and the overwrite fast path stays at the
// paper's ~2 media writes per 4 KiB block when no snapshot pins it.
func TestSnapshotShape(t *testing.T) {
	sc := tiny()
	tb, err := Snapshot(sc)
	if err != nil {
		t.Fatal(err)
	}
	first := tb.Cells[0][0]
	for i, row := range tb.Rows {
		create := tb.Cell(row, "create-bytes")
		if create != first {
			t.Errorf("%s: snapshot creation cost %.0f B differs from %.0f B — not O(metadata)", row, create, first)
		}
		if create > 512 {
			t.Errorf("%s: snapshot creation wrote %.0f B; want a single log entry's worth", row, create)
		}
		// 4 KiB data + one metadata-log commit + retire, with headroom for
		// the occasional interior toggle.
		if ow := tb.Cells[i][1]; ow > 4096+512 {
			t.Errorf("%s: fast-path overwrite %.0f B/op; want ~2 media writes", row, ow)
		}
		// CoW adds the one-time per-block relocation (survivor copies) but
		// must stay the same order of magnitude, not degrade to journaling's
		// 2x data writes.
		if cow := tb.Cells[i][2]; cow > 2*4096 {
			t.Errorf("%s: CoW overwrite %.0f B/op; want < 2 data writes per op", row, cow)
		}
		if tb.Cells[i][3] <= 0 {
			t.Errorf("%s: no pinned blocks reported under live snapshot", row)
		}
	}
}
