package bench

import (
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/ext4"
	"mgsp/internal/fio"
)

func mgspDefault() core.Options { return core.DefaultOptions() }

// ablationLadder returns the cumulative-technique configurations of
// Figure 13, in order.
func ablationLadder() []struct {
	Name string
	Opts core.Options
} {
	shadowOnly := core.DefaultOptions()
	shadowOnly.MultiGranularity = false
	shadowOnly.Locking = core.LockFile
	shadowOnly.GreedyLocking = false
	shadowOnly.LazyIntentionCleaning = false
	shadowOnly.MinSearchTree = false

	multi := shadowOnly
	multi.MultiGranularity = true

	mgl := multi
	mgl.Locking = core.LockMGL

	full := core.DefaultOptions()

	return []struct {
		Name string
		Opts core.Options
	}{
		{"+shadow-log", shadowOnly},
		{"+multi-granularity", multi},
		{"+MGL", mgl},
		{"+optimizations", full},
	}
}

// Fig13 reproduces Figure 13: the contribution of each technique to write
// performance, normalized to Ext4-DAX, for the paper's three cases
// (1 KiB x 1 thread, 4 KiB x 4 threads, 2 KiB x 2 threads).
func Fig13(sc Scale) (*Table, error) {
	cases := []struct {
		name    string
		bs      int
		threads int
	}{
		{"1K-1thr", 1024, 1},
		{"4K-4thr", 4096, 4},
		{"2K-2thr", 2048, 2},
	}
	ladder := ablationLadder()
	cols := []string{"Ext4-DAX"}
	for _, l := range ladder {
		cols = append(cols, l.Name)
	}
	rows := make([]string, len(cases))
	for i, c := range cases {
		rows[i] = c.name
	}
	t := NewTable("fig13", "technique contributions, write throughput normalized to Ext4-DAX", "x Ext4-DAX", cols, rows)
	for i, c := range cases {
		cfg := fio.Config{Op: fio.SeqWrite, BS: c.bs, Threads: c.threads, FsyncEvery: 1, OpsPerThread: sc.Ops / c.threads}
		base, err := runFIO(MakeExt4(ext4.DAX), sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig13 base %s: %w", c.name, err)
		}
		t.Cells[i][0] = 1.0
		for j, l := range ladder {
			res, err := runFIO(MakeMGSP(l.Name, l.Opts), sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s %s: %w", l.Name, c.name, err)
			}
			t.Cells[i][j+1] = res.ThroughputMBps() / base.ThroughputMBps()
		}
	}
	return t, nil
}
