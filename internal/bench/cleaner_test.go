package bench

import "testing"

// TestCleanerShape is the acceptance check for the background cleaner: on a
// sustained overwrite workload the cleaner must (a) bound the steady-state
// log footprint at a level that does not scale with the op count, and (b)
// cut post-crash recovery time by at least 5x via the checkpoint.
func TestCleanerShape(t *testing.T) {
	sc := tiny()
	tb, err := Cleaner(sc)
	if err != nil {
		t.Fatal(err)
	}
	off := tb.Cell("cleaner-off", "log-blocks")
	on := tb.Cell("cleaner-on", "log-blocks")
	if on*4 > off {
		t.Errorf("cleaner-on steady-state log = %.0f blocks vs %.0f off; want at least 4x smaller", on, off)
	}
	if tb.Cell("cleaner-on", "checkpoints") < 1 {
		t.Error("no checkpoints taken during the sustained run")
	}
	offMs := tb.Cell("cleaner-off", "recovery-ms")
	onMs := tb.Cell("cleaner-on", "recovery-ms")
	if onMs*5 > offMs {
		t.Errorf("recovery with cleaner = %.2f ms vs %.2f ms without; want >= 5x faster", onMs, offMs)
	}

	// Boundedness: tripling the op count must not meaningfully grow the
	// cleaner-on footprint, while the cleaner-off footprint keeps growing.
	on1, err := runSustained(sc.FileSize, sc.Ops*4, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	on3, err := runSustained(sc.FileSize, sc.Ops*12, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if on3.logBlocks > on1.logBlocks*2 {
		t.Errorf("cleaner-on log grew %d -> %d blocks over 3x ops; not bounded", on1.logBlocks, on3.logBlocks)
	}
	off1, err := runSustained(sc.FileSize, sc.Ops*4, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	off3, err := runSustained(sc.FileSize, sc.Ops*12, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if off3.logBlocks <= off1.logBlocks {
		t.Errorf("cleaner-off log did not grow (%d -> %d); workload too small to exercise the cleaner", off1.logBlocks, off3.logBlocks)
	}
}
