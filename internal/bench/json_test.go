package bench

import (
	"bytes"
	"strings"
	"testing"

	"mgsp/internal/obs"
)

func tinyReport() *Report {
	t := NewTable("t1", "tiny", "u", []string{"a", "b"}, []string{"r1"})
	t.Cells[0][0], t.Cells[0][1] = 1.5, 2.5
	return BuildReport("unit", "smoke", Smoke(), []*Table{t},
		map[string]float64{"r1/x": 3},
		map[string]obs.HistSnapshot{"r1/h": {Count: 2, Sum: 10, Max: 8, Mean: 5, P50: 4, P95: 8, P99: 8}})
}

func TestReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ValidateReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != ReportSchema || r.Experiment != "unit" {
		t.Fatalf("round trip lost identity: %+v", r)
	}
	if r.Config.Ops != Smoke().Ops || r.Config.FileSize != Smoke().FileSize {
		t.Fatalf("config mangled: %+v", r.Config)
	}
	if r.Tables[0].Cell("r1", "b") != 2.5 {
		t.Fatalf("cell mangled: %v", r.Tables[0].Cells)
	}
	if r.Metrics["r1/x"] != 3 {
		t.Fatalf("metrics mangled: %v", r.Metrics)
	}
	if h := r.Hists["r1/h"]; h.Count != 2 || h.P95 != 8 {
		t.Fatalf("hist mangled: %+v", h)
	}
}

func TestValidateReportRejects(t *testing.T) {
	bad := func(mutate func(*Report)) []byte {
		r := tinyReport()
		mutate(r)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"garbage", []byte("{nope"), "bad report"},
		{"foreign schema", bad(func(r *Report) { r.Schema = "other/v9" }), "schema"},
		{"no experiment", bad(func(r *Report) { r.Experiment = "" }), "experiment"},
		{"no tables", bad(func(r *Report) { r.Tables = nil }), "no tables"},
		{"empty table id", bad(func(r *Report) { r.Tables[0].ID = "" }), "empty id"},
		{"row mismatch", bad(func(r *Report) { r.Tables[0].Rows = append(r.Tables[0].Rows, "r2") }), "cell rows"},
		{"col mismatch", bad(func(r *Report) { r.Tables[0].Cols = r.Tables[0].Cols[:1] }), "columns"},
		{"bad hist", bad(func(r *Report) { h := r.Hists["r1/h"]; h.P99 = h.Max + 1; r.Hists["r1/h"] = h }), "inconsistent"},
		{"negative cache metric", bad(func(r *Report) { r.Metrics["w50/+cache/cache.hits"] = -1 }), "negative"},
		{"mixed without cache metrics", bad(func(r *Report) { r.Experiment = "core,mixed" }), "no cache.hits"},
	}
	for _, c := range cases {
		if _, err := ValidateReport(c.data); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestCoreSmoke drives the instrumented experiment end to end at smoke scale
// and checks that the emitted artifact — the one `make bench-smoke` gates the
// merge on — validates and actually carries the obs payload.
func TestCoreSmoke(t *testing.T) {
	sc := Smoke()
	tab, metrics, hists, err := Core(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := BuildReport("core", "smoke", sc, []*Table{tab}, metrics, hists).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ValidateReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Tables[0].Cell("seq-write-fsync1", "MiB/s") <= 0 {
		t.Fatal("no write throughput measured")
	}
	if wa := r.Tables[0].Cell("rand-write", "WA"); wa <= 0 {
		t.Fatalf("rand-write WA = %v, want > 0", wa)
	}
	for _, k := range []string{"seq-write-fsync1/wa.ratio", "rand-write/core.mgl_try_fails"} {
		if _, ok := r.Metrics[k]; !ok {
			t.Errorf("metric %q missing from report", k)
		}
	}
	if h, ok := r.Hists["seq-write-fsync1/fs.write_ns"]; !ok || h.Count == 0 {
		t.Error("write latency histogram missing from report")
	}
	if h, ok := r.Hists["seq-write-fsync1/fs.fsync_ns"]; !ok || h.Count == 0 {
		t.Error("fsync latency histogram missing from report")
	}
	if LiveSnapshot() == nil || LiveTraceRing() == nil {
		t.Error("live snapshot/trace not published")
	}
}

// TestMixedSmoke drives the read/write-ratio sweep end to end at smoke scale:
// the table must carry all three cache variants per ratio, the cache columns
// must report hits at read-heavy ratios, and the emitted report must pass the
// mixed-specific validation (cache.hits present, counters non-negative).
func TestMixedSmoke(t *testing.T) {
	sc := Smoke()
	tab, metrics, hists, err := Mixed(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, col := range []string{"MGSP", "+cache", "+writeback"} {
			if tab.Cell(row, col) <= 0 {
				t.Errorf("%s/%s: no throughput measured", row, col)
			}
		}
	}
	// At the most read-heavy ratio the cache must actually be hitting.
	if v := metrics["mixed-w10/+cache/cache.hits"]; v <= 0 {
		t.Errorf("w10/+cache cache.hits = %v, want > 0", v)
	}
	// Write-back must buffer at least some overwrites at the write-heavy end.
	if v := metrics["mixed-w90/+writeback/core.buffered_writes"]; v <= 0 {
		t.Errorf("w90/+writeback core.buffered_writes = %v, want > 0", v)
	}
	var buf bytes.Buffer
	if err := BuildReport("mixed", "smoke", sc, []*Table{tab}, metrics, hists).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateReport(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}
