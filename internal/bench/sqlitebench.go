package bench

import (
	"fmt"

	"mgsp/internal/mobibench"
	"mgsp/internal/sqlite"
	"mgsp/internal/tpcc"
)

// Fig11 reproduces Figure 11: SQLite basic transactions (Mobibench) in the
// given journal mode across the four systems.
func Fig11(sc Scale, mode sqlite.JournalMode) (*Table, error) {
	systems := FourSystems()
	cfg := mobibench.DefaultConfig()
	cfg.Records /= sc.DBScale
	cfg.Ops /= sc.DBScale
	if cfg.Ops < 50 {
		cfg.Ops = 50
	}
	if cfg.Records < cfg.Ops*2 {
		cfg.Records = cfg.Ops * 2
	}
	rows := []string{"insert", "update", "delete"}
	t := NewTable("fig11-"+mode.String(), "SQLite Mobibench, journal="+mode.String(), "txn/s", names(systems), rows)
	for j, sys := range systems {
		fs := sys.Make(devSizeFor(sc.FileSize))
		res, err := mobibench.Run(fs, mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", sys.Name, err)
		}
		t.Cells[0][j] = res.InsertTPS
		t.Cells[1][j] = res.UpdateTPS
		t.Cells[2][j] = res.DeleteTPS
	}
	return t, nil
}

// Fig12 reproduces Figure 12: SQLite TPC-C throughput (tpmC) in WAL and
// OFF journal modes across the four systems.
func Fig12(sc Scale) (*Table, error) {
	systems := FourSystems()
	cfg := tpcc.DefaultConfig()
	cfg.Transactions /= sc.DBScale
	cfg.Customers /= sc.DBScale
	if cfg.Customers < 20 {
		cfg.Customers = 20
	}
	cfg.Items /= sc.DBScale
	if cfg.Items < 100 {
		cfg.Items = 100
	}
	rows := []string{"WAL", "OFF"}
	t := NewTable("fig12", "SQLite TPC-C", "tpmC", names(systems), rows)
	for j, sys := range systems {
		for i, mode := range []sqlite.JournalMode{sqlite.WAL, sqlite.Off} {
			fs := sys.Make(devSizeFor(sc.FileSize))
			res, err := tpcc.Run(fs, mode, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig12 %s %s: %w", sys.Name, mode, err)
			}
			t.Cells[i][j] = res.TpmC
		}
	}
	return t, nil
}

// ExtAtomic is an extension experiment beyond the paper: TPC-C throughput
// on MGSP across SQLite journal modes, including the journal_mode=ATOMIC
// mode built on MGSP's multi-range atomic writes — quantifying the gain the
// paper predicts for databases that delegate transaction atomicity to the
// file system ("we hope to add related designs in future work").
func ExtAtomic(sc Scale) (*Table, error) {
	cfg := tpcc.DefaultConfig()
	cfg.Transactions /= sc.DBScale
	cfg.Customers /= sc.DBScale
	if cfg.Customers < 20 {
		cfg.Customers = 20
	}
	cfg.Items /= sc.DBScale
	if cfg.Items < 100 {
		cfg.Items = 100
	}
	modes := []sqlite.JournalMode{sqlite.WAL, sqlite.Off, sqlite.Atomic}
	rows := make([]string, len(modes))
	for i, m := range modes {
		rows[i] = m.String()
	}
	t := NewTable("ext-atomic", "TPC-C on MGSP across journal modes (ATOMIC = fs-level txn atomicity)", "tpmC", []string{"MGSP"}, rows)
	sys := MakeMGSP("MGSP", mgspDefault())
	for i, mode := range modes {
		fs := sys.Make(devSizeFor(sc.FileSize))
		res, err := tpcc.Run(fs, mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ext-atomic %s: %w", mode, err)
		}
		t.Cells[i][0] = res.TpmC
	}
	t.Notes = append(t.Notes, "ATOMIC keeps WAL-level crash-atomicity for transactions with OFF-level write traffic")
	return t, nil
}
