package bench

import (
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/fio"
	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// mixedRatios are the write percentages of the fig9-shaped sweep: the read
// share runs 90% down to 10%, covering the ≥50%-read regime where the cache
// tier has to show its step-up.
var mixedRatios = []int{10, 30, 50, 70, 90}

// cacheMetricKeys are the cache-tier counters exported per cell.
var cacheMetricKeys = []string{
	"cache.hits", "cache.misses", "cache.evictions",
	"cache.dirty_frames", "cache.flush_batches", "cache.read_retry",
	"core.buffered_writes",
}

// Mixed runs the read/write-ratio sweep (the fig9 shape) across three
// configurations per ratio — no cache, write-through cache, write-back
// cache — each on a fresh MGSP instance, and reports MiB/s per cell. The
// cache is sized to the working set (FileSize/4096 frames) so the sweep
// measures the protocol cost, not capacity misses; per-cell cache counters
// and fs.read_ns histograms ride along in the JSON report keyed
// "mixed-w<ratio>/<variant>/<metric>".
func Mixed(sc Scale) (*Table, map[string]float64, map[string]obs.HistSnapshot, error) {
	type variant struct {
		name string
		opts core.Options
	}
	frames := int(sc.FileSize / 4096)
	wt := core.DefaultOptions()
	wt.CacheFrames = frames
	wb := wt
	wb.WriteBack = true
	variants := []variant{
		{"MGSP", core.DefaultOptions()},
		{"+cache", wt},
		{"+writeback", wb},
	}
	threads := sc.MaxThreads
	if threads > 4 {
		threads = 4
	}

	rows := make([]string, len(mixedRatios))
	for i, wr := range mixedRatios {
		rows[i] = fmt.Sprintf("r%d/w%d", 100-wr, wr)
	}
	cols := make([]string, len(variants))
	for j, v := range variants {
		cols[j] = v.name
	}
	t := NewTable("mixed", "mixed read/write sweep, 4 KiB random (fig9 shape): cache off / write-through / write-back",
		"MiB/s", cols, rows)
	metrics := make(map[string]float64)
	hists := make(map[string]obs.HistSnapshot)

	for i, wr := range mixedRatios {
		for j, v := range variants {
			fs := core.MustNew(nvm.New(devSizeFor(sc.FileSize), sim.DefaultCosts()), v.opts)
			res, err := fio.Run(fs, fio.Config{
				Op:           fio.Mixed,
				WriteRatio:   wr,
				FileSize:     sc.FileSize,
				BS:           4096,
				Threads:      threads,
				OpsPerThread: sc.Ops,
				Seed:         1000 + int64(i),
			})
			if err != nil {
				return nil, nil, nil, err
			}
			t.Cells[i][j] = res.ThroughputMBps()

			snap := fs.Obs().Snapshot()
			key := fmt.Sprintf("mixed-w%d/%s", wr, v.name)
			metrics[key+"/wa.ratio"] = res.WriteAmplification()
			if v.opts.CacheFrames > 0 {
				for _, k := range cacheMetricKeys {
					metrics[key+"/"+k] = snap.Values[k]
				}
			}
			if h, ok := snap.Hists["fs.read_ns"]; ok && h.Count > 0 {
				hists[key+"/fs.read_ns"] = h
			}
			live.Store(snap)
			liveRing.Store(fs.TraceRing())
		}
	}
	t.Notes = append(t.Notes,
		"per-cell cache counters and fs.read_ns histograms ride in the -json report",
		"cache sized to the working set; +writeback also buffers overwrites in DRAM frames")
	return t, metrics, hists, nil
}
