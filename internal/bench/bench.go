// Package bench contains one runner per table and figure in the paper's
// evaluation (§IV). Each runner builds fresh file systems on fresh simulated
// devices, drives the same workload the paper used, and returns a Table
// whose rows/series mirror the published plot, so `mgspbench` and the
// testing.B wrappers in bench_test.go can regenerate every result.
package bench

import (
	"fmt"
	"strings"

	"mgsp/internal/core"
	"mgsp/internal/ext4"
	"mgsp/internal/libnvmmio"
	"mgsp/internal/nova"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Scale controls experiment sizing. The paper runs 1 GiB files for 60 s on
// real hardware; the simulated runs use a smaller file and a fixed op count,
// which preserves every steady-state effect the figures show.
type Scale struct {
	FileSize   int64
	Ops        int // per-thread ops for single-thread runs
	DBScale    int // divisor applied to database workload sizes
	MaxThreads int
}

// Quick is the scale used by unit benches and CI.
func Quick() Scale {
	return Scale{FileSize: 32 << 20, Ops: 1500, DBScale: 4, MaxThreads: 8}
}

// Full approximates the paper's setup.
func Full() Scale {
	return Scale{FileSize: 256 << 20, Ops: 6000, DBScale: 1, MaxThreads: 16}
}

// Smoke is the merge-gate scale: a seconds-long slice of every experiment,
// just enough to prove the harness end to end and emit schema-valid JSON.
func Smoke() Scale {
	return Scale{FileSize: 4 << 20, Ops: 200, DBScale: 16, MaxThreads: 2}
}

// Table is one reproduced figure/table. The JSON tags are part of the
// mgsp-bench report schema (see json.go), so renaming them is a schema bump.
type Table struct {
	ID    string      `json:"id"`
	Title string      `json:"title"`
	Unit  string      `json:"unit"`
	Cols  []string    `json:"cols"`
	Rows  []string    `json:"rows"`
	Cells [][]float64 `json:"cells"` // [row][col]
	Notes []string    `json:"notes,omitempty"`
}

// NewTable allocates the cell grid.
func NewTable(id, title, unit string, cols, rows []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{ID: id, Title: title, Unit: unit, Cols: cols, Rows: rows, Cells: cells}
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	rowW := 12
	for _, r := range t.Rows {
		if len(r)+2 > rowW {
			rowW = len(r) + 2
		}
	}
	colW := 10
	for _, c := range t.Cols {
		if len(c)+2 > colW {
			colW = len(c) + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (%s) ==\n", t.ID, t.Title, t.Unit)
	fmt.Fprintf(&b, "%-*s", rowW, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", colW, c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", rowW, r)
		for j := range t.Cols {
			fmt.Fprintf(&b, "%*.2f", colW, t.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Cell looks a value up by names (test helper).
func (t *Table) Cell(row, col string) float64 {
	ri, ci := -1, -1
	for i, r := range t.Rows {
		if r == row {
			ri = i
		}
	}
	for j, c := range t.Cols {
		if c == col {
			ci = j
		}
	}
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("bench: no cell (%q, %q) in %s", row, col, t.ID))
	}
	return t.Cells[ri][ci]
}

// System is a file system under evaluation.
type System struct {
	Name string
	Make func(devSize int64) vfs.FS
}

// devSizeFor leaves room for logs, metadata, and CoW slack.
func devSizeFor(fileSize int64) int64 {
	s := fileSize*4 + (64 << 20)
	return s
}

// MakeExt4 builds an Ext4 instance in the given mode.
func MakeExt4(mode ext4.Mode) System {
	return System{Name: mode.String(), Make: func(devSize int64) vfs.FS {
		return ext4.New(nvm.New(devSize, sim.DefaultCosts()), mode)
	}}
}

// MakeNOVA builds a NOVA instance.
func MakeNOVA() System {
	return System{Name: "NOVA", Make: func(devSize int64) vfs.FS {
		return nova.New(nvm.New(devSize, sim.DefaultCosts()))
	}}
}

// MakeLibnvmmio builds a Libnvmmio instance.
func MakeLibnvmmio() System {
	return System{Name: "Libnvmmio", Make: func(devSize int64) vfs.FS {
		return libnvmmio.New(nvm.New(devSize, sim.DefaultCosts()))
	}}
}

// MakeMGSP builds an MGSP instance with the given options.
func MakeMGSP(name string, opts core.Options) System {
	return System{Name: name, Make: func(devSize int64) vfs.FS {
		return core.MustNew(nvm.New(devSize, sim.DefaultCosts()), opts)
	}}
}

// FourSystems returns the paper's standard comparison set.
func FourSystems() []System {
	return []System{
		MakeExt4(ext4.DAX),
		MakeNOVA(),
		MakeLibnvmmio(),
		MakeMGSP("MGSP", core.DefaultOptions()),
	}
}
