package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"mgsp/internal/obs"
)

// ReportSchema versions the machine-readable bench output (`mgspbench
// -json`). Bump it whenever a field is renamed or its meaning changes;
// ValidateReport rejects foreign schemas so downstream tooling never
// misreads an artifact.
const ReportSchema = "mgsp-bench/v1"

// ReportConfig records the knobs the run was executed with.
type ReportConfig struct {
	Scale      string `json:"scale"` // quick | full | smoke
	FileSize   int64  `json:"file_size"`
	Ops        int    `json:"ops"`
	DBScale    int    `json:"db_scale"`
	MaxThreads int    `json:"max_threads"`
}

// Report is one mgspbench invocation's machine-readable result: the
// experiment set, the scale configuration, every produced table (throughput,
// WA, tps, ...), plus — when the instrumented `core` experiment ran — the
// obs metrics (write-amplification ratio, MGL contention counters) and
// latency histograms (p50/p95/p99 per op) keyed as "<workload>/<metric>".
type Report struct {
	Schema     string                      `json:"schema"`
	Experiment string                      `json:"experiment"`
	Config     ReportConfig                `json:"config"`
	Tables     []*Table                    `json:"tables"`
	Metrics    map[string]float64          `json:"metrics,omitempty"`
	Hists      map[string]obs.HistSnapshot `json:"histograms,omitempty"`
}

// BuildReport assembles a report from an mgspbench run.
func BuildReport(experiment, scaleName string, sc Scale, tables []*Table,
	metrics map[string]float64, hists map[string]obs.HistSnapshot) *Report {
	return &Report{
		Schema:     ReportSchema,
		Experiment: experiment,
		Config: ReportConfig{
			Scale:      scaleName,
			FileSize:   sc.FileSize,
			Ops:        sc.Ops,
			DBScale:    sc.DBScale,
			MaxThreads: sc.MaxThreads,
		},
		Tables:  tables,
		Metrics: metrics,
		Hists:   hists,
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path.
func (r *Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateReport decodes and structurally validates a report produced by
// WriteJSON: schema match, a named experiment, and per-table cell grids
// whose dimensions agree with their row/column headers.
func ValidateReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Experiment == "" {
		return nil, fmt.Errorf("bench: report names no experiment")
	}
	if len(r.Tables) == 0 {
		return nil, fmt.Errorf("bench: report has no tables")
	}
	for _, t := range r.Tables {
		if t.ID == "" {
			return nil, fmt.Errorf("bench: table with empty id")
		}
		if len(t.Cells) != len(t.Rows) {
			return nil, fmt.Errorf("bench: table %s: %d cell rows for %d row names", t.ID, len(t.Cells), len(t.Rows))
		}
		for i, row := range t.Cells {
			if len(row) != len(t.Cols) {
				return nil, fmt.Errorf("bench: table %s row %d: %d cells for %d columns", t.ID, i, len(row), len(t.Cols))
			}
		}
	}
	for name, h := range r.Hists {
		if h.Count < 0 || h.P50 > h.Max || h.P95 > h.Max || h.P99 > h.Max {
			return nil, fmt.Errorf("bench: histogram %q is inconsistent: %+v", name, h)
		}
	}
	for name, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("bench: metric %q is %v", name, v)
		}
		// Cache-tier counters are monotone; a negative value means the
		// producer mislabelled a derived quantity under the cache prefix.
		if strings.Contains(name, "/cache.") && v < 0 {
			return nil, fmt.Errorf("bench: cache metric %q is negative: %v", name, v)
		}
	}
	// The many-core ladder's reason to exist is proving disjoint writers do
	// not serialize on MGSP's own structures: a report that ran fig10s must
	// carry the disjoint try-fail rate, and the rate must be inside the
	// budget the per-worker home-slot design promises (ISSUE 8 acceptance).
	if reportHasExperiment(r.Experiment, "fig10s") {
		const key = "fig10s/mgl_try_fails_per_op.disjoint-rand"
		v, ok := r.Metrics[key]
		if !ok {
			return nil, fmt.Errorf("bench: experiment %q includes fig10s but no %s metric", r.Experiment, key)
		}
		if v > 0.05 {
			return nil, fmt.Errorf("bench: %s = %.4f exceeds the 0.05 budget: disjoint writers are serializing", key, v)
		}
	}
	// The mixed experiment exists to compare cache-on vs cache-off; a report
	// claiming to include it but carrying no cache counters is malformed.
	if reportHasExperiment(r.Experiment, "mixed") {
		found := false
		for name := range r.Metrics {
			if strings.Contains(name, "/cache.hits") {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: experiment %q includes mixed but no cache.hits metric", r.Experiment)
		}
	}
	return &r, nil
}

// reportHasExperiment reports whether the raw -exp string names exp, either
// via "all" or as one element of the comma-separated list.
func reportHasExperiment(raw, exp string) bool {
	if raw == "all" {
		return true
	}
	for _, e := range strings.Split(raw, ",") {
		if strings.TrimSpace(e) == exp {
			return true
		}
	}
	return false
}
