package bench

import (
	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// Cleaner measures what the background cleaner & checkpoint subsystem buys
// on a sustained random-overwrite workload (no experiment in the paper
// corresponds to this — the paper's logs only drain at file close): the
// steady-state shadow-log footprint, the post-crash Mount time, how much of
// the metadata log the recovery actually replayed versus skipped as
// pre-checkpoint, and the background media traffic the cleaner spent to get
// there.
func Cleaner(sc Scale) (*Table, error) {
	t := NewTable("cleaner", "background cleaner: sustained overwrite, then crash recovery", "mixed",
		[]string{"log-blocks", "recovery-ms", "replayed", "skipped", "checkpoints", "bg-MiB"},
		[]string{"cleaner-off", "cleaner-on"})
	for i, on := range []bool{false, true} {
		r, err := runSustained(sc.FileSize, sc.Ops*4, 1, on)
		if err != nil {
			return nil, err
		}
		t.Cells[i][0] = float64(r.logBlocks)
		t.Cells[i][1] = r.recoveryMs
		t.Cells[i][2] = float64(r.replayed)
		t.Cells[i][3] = float64(r.skipped)
		t.Cells[i][4] = float64(r.checkpoints)
		t.Cells[i][5] = r.bgMiB
	}
	t.Notes = append(t.Notes, "log-blocks: 4 KiB shadow-log blocks held at steady state (the cleaner bounds this)")
	t.Notes = append(t.Notes, "recovery-ms: virtual Mount time after a crash (checkpoint skips pre-epoch replay and write-back)")
	return t, nil
}

// cleanerOpts is the configuration the cleaner rows run with: a pass every
// 200 µs of virtual time, at most 4096 blocks reclaimed per pass.
func cleanerOpts() core.Options {
	o := core.DefaultOptions()
	o.CleanerInterval = 200_000
	o.CleanerBudget = 4096
	return o
}

type sustainedResult struct {
	logBlocks   int64 // steady-state shadow-log footprint before the crash
	recoveryMs  float64
	replayed    int64
	skipped     int64
	checkpoints int64
	bgMiB       float64 // media writes attributed to the cleaner's context
}

// runSustained drives ops random 4 KiB overwrites (the cleaner running
// cooperatively when enabled), samples the steady-state log footprint, then
// crashes mid-write and measures recovery.
func runSustained(fileSize int64, ops int, seed int64, cleanerOn bool) (sustainedResult, error) {
	var r sustainedResult
	opts := core.DefaultOptions()
	if cleanerOn {
		opts = cleanerOpts()
	}
	dev := nvm.New(devSizeFor(fileSize), sim.DefaultCosts())
	fs := core.MustNew(dev, opts)
	ctx := sim.NewCtx(0, seed)
	f, err := fs.Create(ctx, "data")
	if err != nil {
		return r, err
	}
	chunk := make([]byte, 1<<20)
	for off := int64(0); off < fileSize; off += 1 << 20 {
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			return r, err
		}
	}

	// Sustained-overwrite phase with a 90/10 hot/cold skew (the shape
	// cleaners exist for): the cold 90 % of the file goes quiet and its fill
	// logs become reclaimable, while the hot 10 % churns. This is where the
	// cleaner-off log grows without bound and the cleaner-on log reaches a
	// steady state.
	buf := make([]byte, 4096)
	hotPages := fileSize / 10 / 4096
	randOff := func() int64 {
		if ctx.Rand.Intn(10) != 0 {
			return ctx.Rand.Int63n(hotPages) * 4096
		}
		return (hotPages + ctx.Rand.Int63n(fileSize/4096-hotPages)) * 4096
	}
	for i := 0; i < ops; i++ {
		if _, err := f.WriteAt(ctx, buf, randOff()); err != nil {
			return r, err
		}
	}
	r.logBlocks = fs.LogBlocks()
	if c := fs.Cleaner(); c != nil {
		r.checkpoints = c.Stats().Checkpoints
		r.bgMiB = float64(c.MediaWriteBytes()) / (1 << 20)
	}

	// Crash a short way into continued load, then recover.
	dev.ArmCrash(500, seed*31+7)
	func() {
		defer func() {
			if rec := recover(); rec != nil && rec != nvm.ErrCrashed {
				panic(rec)
			}
		}()
		for {
			if _, err := f.WriteAt(ctx, buf, randOff()); err != nil {
				return
			}
		}
	}()
	dev.DisarmCrash()
	dev.Recover()

	rctx := sim.NewCtx(1, seed)
	fs2, err := core.Mount(rctx, dev, opts)
	if err != nil {
		return r, err
	}
	r.recoveryMs = float64(rctx.Now()) / 1e6
	r.replayed = fs2.Stats().EntriesReplayed.Load()
	r.skipped = fs2.Stats().EntriesSkipped.Load()
	return r, nil
}
