package bench

import (
	"fmt"

	"mgsp/internal/ext4"
	"mgsp/internal/fio"
)

// runFIO builds a fresh instance of sys and runs one FIO configuration.
func runFIO(sys System, sc Scale, cfg fio.Config) (fio.Result, error) {
	fs := sys.Make(devSizeFor(sc.FileSize))
	cfg.FileSize = sc.FileSize
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = sc.Ops
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return fio.Run(fs, cfg)
}

// Fig1 reproduces Figure 1: 4 KiB write performance of Ext4 under different
// consistency modes with and without per-op fsync, Ext4-DAX, and Libnvmmio.
func Fig1(sc Scale) (*Table, error) {
	type cfg struct {
		name  string
		sys   System
		fsync int
	}
	configs := []cfg{
		{"Ext4-wb", MakeExt4(ext4.Writeback), 0},
		{"Ext4-wb-sync", MakeExt4(ext4.Writeback), 1},
		{"Ext4-ordered", MakeExt4(ext4.Ordered), 0},
		{"Ext4-ordered-sync", MakeExt4(ext4.Ordered), 1},
		{"Ext4-journal", MakeExt4(ext4.Journal), 0},
		{"Ext4-journal-sync", MakeExt4(ext4.Journal), 1},
		{"Ext4-DAX", MakeExt4(ext4.DAX), 0},
		{"Ext4-DAX-sync", MakeExt4(ext4.DAX), 1},
		{"Libnvmmio", MakeLibnvmmio(), 0},
		{"Libnvmmio-sync", MakeLibnvmmio(), 1},
	}
	rows := make([]string, len(configs))
	for i, c := range configs {
		rows[i] = c.name
	}
	t := NewTable("fig1", "4KB write performance under consistency/sync requirements", "MiB/s", []string{"throughput"}, rows)
	for i, c := range configs {
		res, err := runFIO(c.sys, sc, fio.Config{Op: fio.SeqWrite, BS: 4096, Threads: 1, FsyncEvery: c.fsync})
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", c.name, err)
		}
		t.Cells[i][0] = res.ThroughputMBps()
	}
	return t, nil
}

// Fig7 reproduces Figure 7: 4K sequential write vs fsync interval.
func Fig7(sc Scale) (*Table, error) {
	systems := []System{MakeExt4(ext4.DAX), MakeLibnvmmio(), MakeMGSP("MGSP", mgspDefault())}
	intervals := []int{1, 10, 100, 1000, 0}
	rows := make([]string, len(intervals))
	for i, iv := range intervals {
		if iv == 0 {
			rows[i] = "no-fsync"
		} else {
			rows[i] = fmt.Sprintf("fsync-%d", iv)
		}
	}
	t := NewTable("fig7", "4K sequential write vs fsync interval", "MiB/s", names(systems), rows)
	for j, sys := range systems {
		for i, iv := range intervals {
			res, err := runFIO(sys, sc, fio.Config{Op: fio.SeqWrite, BS: 4096, Threads: 1, FsyncEvery: iv})
			if err != nil {
				return nil, fmt.Errorf("fig7 %s fsync-%d: %w", sys.Name, iv, err)
			}
			t.Cells[i][j] = res.ThroughputMBps()
		}
	}
	return t, nil
}

// fig8Sizes is the paper's granularity sweep: fine (<4K) and coarse (>=4K).
var fig8Sizes = []int{256, 512, 1024, 2048, 4096, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// Fig8 reproduces Figure 8: (a) seq write, (b) rand write, (c) seq read,
// (d) rand read across request sizes, with fsync after every operation.
func Fig8(sc Scale, op fio.Op) (*Table, error) {
	sub := map[fio.Op]string{fio.SeqWrite: "a-seq-write", fio.RandWrite: "b-rand-write", fio.SeqRead: "c-seq-read", fio.RandRead: "d-rand-read"}[op]
	systems := FourSystems()
	rows := make([]string, len(fig8Sizes))
	for i, s := range fig8Sizes {
		rows[i] = sizeName(s)
	}
	t := NewTable("fig8"+sub[:1], "Fig8("+sub+"): "+op.String()+" across request sizes", "MiB/s", names(systems), rows)
	for j, sys := range systems {
		for i, bs := range fig8Sizes {
			ops := sc.Ops
			if bs >= 64<<10 {
				ops = sc.Ops / 8 // large requests move far more bytes
			}
			res, err := runFIO(sys, sc, fio.Config{Op: op, BS: bs, Threads: 1, FsyncEvery: 1, OpsPerThread: ops})
			if err != nil {
				return nil, fmt.Errorf("fig8 %s %s: %w", sys.Name, rows[i], err)
			}
			t.Cells[i][j] = res.ThroughputMBps()
		}
	}
	return t, nil
}

// Fig9 reproduces Figure 9: 4K mixed read/write across write ratios,
// normalized to Ext4-DAX.
func Fig9(sc Scale) (*Table, error) {
	ratios := []int{10, 30, 50, 70, 90}
	base := MakeExt4(ext4.DAX)
	others := []System{MakeLibnvmmio(), MakeNOVA(), MakeMGSP("MGSP", mgspDefault())}
	rows := make([]string, len(ratios))
	for i, r := range ratios {
		rows[i] = fmt.Sprintf("write-%d%%", r)
	}
	t := NewTable("fig9", "4K mixed R/W normalized to Ext4-DAX", "x Ext4-DAX", names(others), rows)
	for i, r := range ratios {
		cfg := fio.Config{Op: fio.Mixed, BS: 4096, Threads: 1, FsyncEvery: 1, WriteRatio: r}
		baseRes, err := runFIO(base, sc, cfg)
		if err != nil {
			return nil, err
		}
		for j, sys := range others {
			res, err := runFIO(sys, sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s: %w", sys.Name, err)
			}
			t.Cells[i][j] = res.ThroughputMBps() / baseRes.ThroughputMBps()
		}
	}
	return t, nil
}

// Fig10 reproduces Figure 10: multi-thread scalability on one file for the
// given block size and access pattern.
func Fig10(sc Scale, bs int, op fio.Op) (*Table, error) {
	systems := FourSystems()
	var threads []int
	for th := 1; th <= sc.MaxThreads; th *= 2 {
		threads = append(threads, th)
	}
	rows := make([]string, len(threads))
	for i, th := range threads {
		rows[i] = fmt.Sprintf("%d-threads", th)
	}
	t := NewTable(fmt.Sprintf("fig10-%s-%s", sizeName(bs), op), fmt.Sprintf("scalability, %s %s", sizeName(bs), op), "MiB/s", names(systems), rows)
	for j, sys := range systems {
		for i, th := range threads {
			res, err := runFIO(sys, sc, fio.Config{Op: op, BS: bs, Threads: th, FsyncEvery: 1, OpsPerThread: sc.Ops / 2})
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %d threads: %w", sys.Name, th, err)
			}
			t.Cells[i][j] = res.ThroughputMBps()
		}
	}
	return t, nil
}

// TableII reproduces Table II: write amplification (media bytes per user
// byte) for random writes at 1K/4K/16K under different sync regimes.
func TableII(sc Scale) (*Table, error) {
	type variant struct {
		name  string
		sys   System
		fsync int
	}
	variants := []variant{
		{"Libnvmmio", MakeLibnvmmio(), 1},
		{"Libnvmmio-100", MakeLibnvmmio(), 100},
		{"Libnvmmio-wo-sync", MakeLibnvmmio(), 0},
		{"MGSP", MakeMGSP("MGSP", mgspDefault()), 1},
	}
	sizes := []int{1024, 4096, 16 << 10}
	cols := make([]string, len(variants))
	for j, v := range variants {
		cols[j] = v.name
	}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = sizeName(s)
	}
	t := NewTable("table2", "write amplification, random write", "ratio", cols, rows)
	for i, bs := range sizes {
		for j, v := range variants {
			res, err := runFIO(v.sys, sc, fio.Config{Op: fio.RandWrite, BS: bs, Threads: 1, FsyncEvery: v.fsync})
			if err != nil {
				return nil, fmt.Errorf("table2 %s %s: %w", v.name, rows[i], err)
			}
			t.Cells[i][j] = res.WriteAmplification()
		}
	}
	return t, nil
}

func names(systems []System) []string {
	out := make([]string, len(systems))
	for i, s := range systems {
		out[i] = s.Name
	}
	return out
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
