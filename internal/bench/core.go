package bench

import (
	"sync/atomic"

	"mgsp/internal/core"
	"mgsp/internal/fio"
	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// live holds the most recent obs snapshot published by an instrumented run,
// for `mgspbench -listen` (the /metrics endpoints read it per request).
var live atomic.Pointer[obs.Snapshot]

// LiveSnapshot returns the most recently published obs snapshot, or nil
// before the first instrumented run completes.
func LiveSnapshot() *obs.Snapshot { return live.Load() }

// liveRing holds the trace ring of the most recent instrumented FS.
var liveRing atomic.Pointer[obs.TraceRing]

// LiveTraceRing returns the most recent instrumented run's trace ring (nil
// before the first run).
func LiveTraceRing() *obs.TraceRing { return liveRing.Load() }

// coreMetricKeys are the registry counters the core experiment exports into
// the bench report, per workload: metadata-log and MGL contention, plus the
// optimization-engagement counters the paper's Figure 13 story rests on.
var coreMetricKeys = []string{
	"core.meta_cas_retries",
	"core.mgl_try_fails",
	"core.mgl_intent_drops",
	"core.greedy_ops",
	"core.descends",
	"core.meta_entries",
}

// coreHistKeys are the latency histograms exported per workload.
var coreHistKeys = []string{
	"fs.write_ns", "fs.read_ns", "fs.fsync_ns",
	"mgl.acquire_ns", "mlog.probe_distance",
}

// Core runs the instrumented MGSP op benchmark: 4 KiB sequential write with
// per-op fsync, multi-threaded random write, and sequential/random read,
// each on a fresh MGSP instance. Beyond the usual throughput table it
// returns the obs-registry metrics and latency histograms of each workload,
// keyed "<workload>/<metric>" — the payload `mgspbench -json` emits and
// `mgspstat` renders.
func Core(sc Scale) (*Table, map[string]float64, map[string]obs.HistSnapshot, error) {
	type wl struct {
		name    string
		op      fio.Op
		threads int
		fsync   int
	}
	threads := sc.MaxThreads
	if threads > 4 {
		threads = 4
	}
	wls := []wl{
		{"seq-write-fsync1", fio.SeqWrite, 1, 1},
		{"rand-write", fio.RandWrite, threads, 0},
		{"seq-read", fio.SeqRead, 1, 0},
		{"rand-read", fio.RandRead, threads, 0},
	}
	rows := make([]string, len(wls))
	for i, w := range wls {
		rows[i] = w.name
	}
	t := NewTable("core", "MGSP instrumented op benchmark (4 KiB)", "MiB/s | KIOPS | WA",
		[]string{"MiB/s", "KIOPS", "WA"}, rows)
	metrics := make(map[string]float64)
	hists := make(map[string]obs.HistSnapshot)

	for i, w := range wls {
		fs := core.MustNew(nvm.New(devSizeFor(sc.FileSize), sim.DefaultCosts()), core.DefaultOptions())
		res, err := fio.Run(fs, fio.Config{
			Op:           w.op,
			FileSize:     sc.FileSize,
			BS:           4096,
			Threads:      w.threads,
			FsyncEvery:   w.fsync,
			OpsPerThread: sc.Ops,
			Seed:         42 + int64(i),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		t.Cells[i][0] = res.ThroughputMBps()
		t.Cells[i][1] = res.KIOPS()
		t.Cells[i][2] = res.WriteAmplification()

		snap := fs.Obs().Snapshot()
		// The measured window's WA (fio resets media counters at the ramp
		// barrier); the registry's live wa.ratio spans the whole run
		// including layout, so the windowed figure is the one exported.
		metrics[w.name+"/wa.ratio"] = res.WriteAmplification()
		for _, k := range coreMetricKeys {
			metrics[w.name+"/"+k] = snap.Values[k]
		}
		for _, k := range coreHistKeys {
			if h, ok := snap.Hists[k]; ok && h.Count > 0 {
				hists[w.name+"/"+k] = h
			}
		}
		live.Store(snap)
		liveRing.Store(fs.TraceRing())
	}
	t.Notes = append(t.Notes,
		"per-workload obs metrics and latency histograms ride in the -json report")
	return t, metrics, hists, nil
}
