package bench

import (
	"fmt"

	"mgsp/internal/torture"
)

// Torture is the smoke-mode entry point for the concurrent crash-consistency
// harness (internal/torture): per seed, one completion run plus a sweep of
// uniformly sampled crash indices, four writers racing on the shared file,
// with the op-atomicity oracle checked after every recovery. It is not a
// performance figure — the reported numbers are coverage (crash points
// actually hit) — and any oracle violation fails the experiment with the
// harness's deterministic repro line.
func Torture(sc Scale) (*Table, error) {
	seeds := 2
	samples := sc.Ops / 100
	if samples < 10 {
		samples = 10
	}
	rows := make([]string, seeds)
	for s := range rows {
		rows[s] = fmt.Sprintf("seed-%d", s)
	}
	t := NewTable("torture", "concurrent crash-consistency sweep (4 writers)", "count",
		[]string{"samples", "crashed", "media-ops", "violations"}, rows)
	for s := 0; s < seeds; s++ {
		res, err := torture.Sweep(torture.Config{Writers: 4, Seed: int64(s)}, samples, int64(s)*7919+5)
		if err != nil {
			return nil, err
		}
		t.Cells[s][0] = float64(res.Samples)
		t.Cells[s][1] = float64(res.Crashed)
		t.Cells[s][2] = float64(res.TotalOps)
		t.Cells[s][3] = float64(len(res.Violations))
		if len(res.Violations) != 0 {
			return nil, fmt.Errorf("torture: %s", res.Violations[0])
		}
	}
	t.Notes = append(t.Notes,
		"oracle: every region at an op boundary, WriteMulti all-or-nothing, snapshots frozen, allocator clean",
		"violations replay deterministically: go test ./internal/torture -run TestTortureReplay -torture.*")
	return t, nil
}
