package bench

// This file holds the server-side experiments (mgspd workloads). Unlike
// the figure experiments, which drive core in-process in virtual time,
// these push bytes through the server's protocol and group-commit batcher —
// so the numbers that matter are the batching ones (ops per WriteMulti,
// metadata entries per acked write), not simulated-media MiB/s.

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"mgsp/internal/obs"
	"mgsp/internal/server"
	"mgsp/internal/server/client"
)

// serveEnv abstracts where the server lives: started in-process (addr ""),
// or a live mgspd reached over TCP. Both are driven through the client
// package, so the protocol path is identical.
type serveEnv struct {
	srv    *server.Server // nil in live mode
	addr   string
	conns  []*client.Client
	tenant string
}

func newServeEnv(addr, tenant string) (*serveEnv, error) {
	env := &serveEnv{addr: addr, tenant: tenant}
	if addr == "" {
		srv, err := server.New(server.Config{
			BatchWait: 500 * time.Microsecond,
		})
		if err != nil {
			return nil, err
		}
		env.srv = srv
	}
	return env, nil
}

func (e *serveEnv) client() (*client.Client, error) {
	var c *client.Client
	var err error
	if e.srv != nil {
		cc, sc := net.Pipe()
		go e.srv.ServeConn(sc)
		c, err = client.New(cc, e.tenant)
	} else {
		c, err = client.Dial(e.addr, e.tenant)
	}
	if err != nil {
		return nil, err
	}
	e.conns = append(e.conns, c)
	return c, nil
}

// snapshot fetches the server's merged obs snapshot through whichever side
// we have (STAT over the wire in live mode keeps it honest).
func (e *serveEnv) snapshot() (*obs.Snapshot, error) {
	if len(e.conns) == 0 {
		return nil, fmt.Errorf("bench: no connection for STAT")
	}
	raw, err := e.conns[0].Stat()
	if err != nil {
		return nil, err
	}
	return obs.ParseSnapshot(raw)
}

func (e *serveEnv) close() {
	for _, c := range e.conns {
		c.Close()
	}
	e.conns = nil
	if e.srv != nil {
		e.srv.Close()
	}
}

// serveCols are the columns both server experiments report.
var serveCols = []string{"writes/s", "reads/s", "mean batch", "meta/ack", "shed"}

// fillServeStats computes the batching columns from a snapshot delta.
func fillServeStats(t *Table, row int, before, after *obs.Snapshot) {
	d := after.Diff(before)
	if h, ok := d.Hists["server.batch_size"]; ok {
		t.Cells[row][2] = h.Mean
	}
	var meta float64
	for name, v := range d.Values {
		if strings.HasSuffix(name, ".core.meta_entries") {
			meta += v
		}
	}
	if acked := d.Values["server.writes_acked"]; acked > 0 {
		t.Cells[row][3] = meta / acked
	}
	t.Cells[row][4] = d.Values["server.shed"]
}

// threadRows picks the client-count axis from the scale.
func threadRows(sc Scale) []int {
	counts := []int{1}
	if h := sc.MaxThreads / 2; h > 1 {
		counts = append(counts, h)
	}
	if sc.MaxThreads > counts[len(counts)-1] {
		counts = append(counts, sc.MaxThreads)
	}
	return counts
}

// KV is the `-exp kv` experiment: concurrent clients doing 256B–1KiB point
// writes into a shared 4 KiB-slotted keyspace, then point reads — the
// workload ISSUE 6's coalescing acceptance criterion describes. addr ""
// runs an in-process server; otherwise the workload drives a live mgspd.
func KV(sc Scale, addr string) (*Table, error) {
	counts := threadRows(sc)
	rows := make([]string, len(counts))
	for i, n := range counts {
		rows[i] = fmt.Sprintf("%d clients", n)
	}
	t := NewTable("serve-kv", "mgspd KV point writes/reads", "ops/s (wall) + batching", serveCols, rows)
	t.Notes = append(t.Notes,
		"mean batch = ops per WriteMulti group commit; meta/ack = metadata-log entries per acked write (<1 means the flush is amortized)")

	const slots = 1024
	const slotSize = 4096
	for ri, n := range counts {
		env, err := newServeEnv(addr, "bench-kv")
		if err != nil {
			return nil, err
		}
		err = func() error {
			files := make([]*client.File, n)
			for i := 0; i < n; i++ {
				c, err := env.client()
				if err != nil {
					return err
				}
				if files[i], err = c.Open("kv", true); err != nil {
					return err
				}
			}
			before, err := env.snapshot()
			if err != nil {
				return err
			}

			start := time.Now()
			errs := make(chan error, n)
			for i := 0; i < n; i++ {
				go func(i int) {
					rng := rand.New(rand.NewSource(int64(i) + 1))
					buf := make([]byte, 1024)
					for j := 0; j < sc.Ops; j++ {
						size := 256 + rng.Intn(769)
						for k := range buf[:size] {
							buf[k] = byte(i + j + k)
						}
						off := int64(rng.Intn(slots)) * slotSize
						if _, err := files[i].WriteAt(buf[:size], off); err != nil && err != server.ErrBusy {
							errs <- fmt.Errorf("client %d write %d: %w", i, j, err)
							return
						}
					}
					errs <- nil
				}(i)
			}
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					return err
				}
			}
			writeDur := time.Since(start)

			start = time.Now()
			for i := 0; i < n; i++ {
				go func(i int) {
					rng := rand.New(rand.NewSource(int64(i) + 1001))
					buf := make([]byte, 1024)
					for j := 0; j < sc.Ops; j++ {
						off := int64(rng.Intn(slots)) * slotSize
						if _, err := files[i].ReadAt(buf, off); err != nil {
							errs <- fmt.Errorf("client %d read %d: %w", i, j, err)
							return
						}
					}
					errs <- nil
				}(i)
			}
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					return err
				}
			}
			readDur := time.Since(start)

			after, err := env.snapshot()
			if err != nil {
				return err
			}
			ops := float64(n * sc.Ops)
			t.Cells[ri][0] = ops / writeDur.Seconds()
			t.Cells[ri][1] = ops / readDur.Seconds()
			fillServeStats(t, ri, before, after)
			return nil
		}()
		env.close()
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Ingest is the `-exp ingest` experiment: each client appends variable-size
// records to its own log file — the NVLog-shaped traffic where every write
// extends the file and the shadow log only grows until the cleaner (or
// close-time write-back) catches up.
func Ingest(sc Scale, addr string) (*Table, error) {
	counts := threadRows(sc)
	rows := make([]string, len(counts))
	for i, n := range counts {
		rows[i] = fmt.Sprintf("%d writers", n)
	}
	t := NewTable("serve-ingest", "mgspd log ingestion (append-heavy)", "ops/s (wall) + batching", serveCols, rows)
	t.Notes = append(t.Notes, "each writer appends 256B-1KiB records to a private log; reads/s is the tail re-read rate")

	for ri, n := range counts {
		env, err := newServeEnv(addr, "bench-ingest")
		if err != nil {
			return nil, err
		}
		err = func() error {
			files := make([]*client.File, n)
			for i := 0; i < n; i++ {
				c, err := env.client()
				if err != nil {
					return err
				}
				if files[i], err = c.Open(fmt.Sprintf("log%d", i), true); err != nil {
					return err
				}
			}
			before, err := env.snapshot()
			if err != nil {
				return err
			}

			start := time.Now()
			errs := make(chan error, n)
			tails := make([]int64, n)
			for i := 0; i < n; i++ {
				go func(i int) {
					rng := rand.New(rand.NewSource(int64(i) + 42))
					buf := make([]byte, 1024)
					var cursor int64
					for j := 0; j < sc.Ops; j++ {
						size := 256 + rng.Intn(769)
						for k := range buf[:size] {
							buf[k] = byte(j + k)
						}
						if _, err := files[i].WriteAt(buf[:size], cursor); err != nil && err != server.ErrBusy {
							errs <- fmt.Errorf("writer %d append %d: %w", i, j, err)
							return
						} else if err == nil {
							cursor += int64(size)
						}
					}
					tails[i] = cursor
					errs <- nil
				}(i)
			}
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					return err
				}
			}
			writeDur := time.Since(start)

			// Tail re-read: the consumer catching up on what it ingested.
			start = time.Now()
			var reads int
			for i := 0; i < n; i++ {
				buf := make([]byte, 4096)
				for off := int64(0); off < tails[i]; off += 4096 {
					if _, err := files[i].ReadAt(buf, off); err != nil {
						return fmt.Errorf("tail read %d@%d: %w", i, off, err)
					}
					reads++
				}
			}
			readDur := time.Since(start)

			after, err := env.snapshot()
			if err != nil {
				return err
			}
			t.Cells[ri][0] = float64(n*sc.Ops) / writeDur.Seconds()
			if reads > 0 {
				t.Cells[ri][1] = float64(reads) / readDur.Seconds()
			}
			fillServeStats(t, ri, before, after)
			return nil
		}()
		env.close()
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
