package bench

import (
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/fio"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// fig10sOps are the access patterns of the many-core ladder. The disjoint
// row is the scalability acid test: workers never share a block, so every
// failed try-lock or metadata-log collision measured there is self-inflicted
// serialization, not workload contention.
var fig10sOps = []struct {
	name     string
	op       fio.Op
	disjoint bool
}{
	{"seq-write", fio.SeqWrite, false},
	{"rand-write", fio.RandWrite, false},
	{"disjoint-rand", fio.RandWrite, true},
}

// fig10sThreads is the ladder for a scale: powers of two from 1 up to
// 4*MaxThreads, capped at 64 (smoke: 1–8, quick: 1–32, full: 1–64). The
// cap matches the metadata log's 64 home areas — beyond that, workers share
// areas by construction and the per-worker story ends.
func fig10sThreads(sc Scale) []int {
	max := sc.MaxThreads * 4
	if max > 64 {
		max = 64
	}
	var out []int
	for th := 1; th <= max; th *= 2 {
		out = append(out, th)
	}
	return out
}

// Fig10Scale extends Figure 10 into the many-core regime: MGSP only, 1 KiB
// writes with per-op fsync, thread ladder to 64. Beyond throughput it
// exports the contention counters the per-worker home-slot design is judged
// by — `fig10s/mgl_try_fails_per_op.disjoint` is the merge gate
// (ValidateReport rejects reports where disjoint writers fail more than
// 0.05 try-locks per write).
func Fig10Scale(sc Scale) (*Table, map[string]float64, error) {
	threads := fig10sThreads(sc)
	rows := make([]string, len(threads))
	for i, th := range threads {
		rows[i] = fmt.Sprintf("%d-threads", th)
	}
	cols := make([]string, len(fig10sOps))
	for j, w := range fig10sOps {
		cols[j] = w.name
	}
	t := NewTable("fig10s", "many-core scalability, 1K write, MGSP", "MiB/s", cols, rows)
	metrics := make(map[string]float64)

	for j, w := range fig10sOps {
		var base float64
		for i, th := range threads {
			fs := core.MustNew(nvm.New(devSizeFor(sc.FileSize), sim.DefaultCosts()), core.DefaultOptions())
			res, err := fio.Run(fs, fio.Config{
				Op:           w.op,
				Disjoint:     w.disjoint,
				FileSize:     sc.FileSize,
				BS:           1024,
				Threads:      th,
				FsyncEvery:   1,
				OpsPerThread: sc.Ops / 2,
				Seed:         1700 + int64(j),
			})
			if err != nil {
				return nil, nil, fmt.Errorf("fig10s %s %d threads: %w", w.name, th, err)
			}
			t.Cells[i][j] = res.ThroughputMBps()
			if th == 1 {
				base = res.ThroughputMBps()
			}
			if i == len(threads)-1 {
				// Top rung: export the contention profile of the whole run
				// (layout + ramp + measured; the registry counters are never
				// reset, so writes is the matching denominator).
				snap := fs.Obs().Snapshot()
				writes := snap.Values["core.writes"]
				if writes > 0 {
					metrics["fig10s/mgl_try_fails_per_op."+w.name] = snap.Values["core.mgl_try_fails"] / writes
					metrics["fig10s/meta_cas_retries_per_op."+w.name] = snap.Values["core.meta_cas_retries"] / writes
				}
				if base > 0 {
					metrics["fig10s/speedup."+w.name] = res.ThroughputMBps() / base
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"disjoint-rand confines each worker's random offsets to its own stripe (fio Disjoint)",
		"gate: fig10s/mgl_try_fails_per_op.disjoint-rand <= 0.05 (mgspstat -validate)")
	return t, metrics, nil
}
