package bench

import (
	"strings"
	"testing"

	"mgsp/internal/fio"
	"mgsp/internal/sqlite"
)

// tiny returns a scale small enough for unit testing while preserving
// steady-state behaviour.
func tiny() Scale {
	return Scale{FileSize: 8 << 20, Ops: 300, DBScale: 10, MaxThreads: 4}
}

func TestFig1Shape(t *testing.T) {
	tb, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Per-op fsync must hurt every page-cache mode.
	for _, mode := range []string{"Ext4-wb", "Ext4-ordered", "Ext4-journal"} {
		if tb.Cell(mode+"-sync", "throughput") >= tb.Cell(mode, "throughput") {
			t.Errorf("%s: sync variant not slower", mode)
		}
	}
	// Libnvmmio without sync beats Libnvmmio with sync by a wide margin.
	if tb.Cell("Libnvmmio-sync", "throughput")*1.5 >= tb.Cell("Libnvmmio", "throughput") {
		t.Error("Libnvmmio sync penalty missing")
	}
}

func TestFig7Shape(t *testing.T) {
	tb, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// MGSP is essentially flat across sync intervals (each op is already a
	// synchronized atomic operation).
	flat := tb.Cell("fsync-1", "MGSP") / tb.Cell("no-fsync", "MGSP")
	if flat < 0.85 {
		t.Errorf("MGSP drops %.2fx with fsync-1; the paper shows no drop", flat)
	}
	// Libnvmmio collapses with frequent fsync relative to none.
	drop := tb.Cell("fsync-1", "Libnvmmio") / tb.Cell("no-fsync", "Libnvmmio")
	if drop > 0.7 {
		t.Errorf("Libnvmmio fsync-1 retains %.2fx of no-sync throughput; paper shows a large drop", drop)
	}
	// MGSP beats Libnvmmio and Ext4-DAX under per-op sync.
	if tb.Cell("fsync-1", "MGSP") <= tb.Cell("fsync-1", "Libnvmmio") ||
		tb.Cell("fsync-1", "MGSP") <= tb.Cell("fsync-1", "Ext4-DAX") {
		t.Error("MGSP does not win at fsync-1")
	}
}

func TestFig8WriteShape(t *testing.T) {
	tb, err := Fig8(tiny(), fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []string{"1K", "4K", "16K"} {
		mgsp := tb.Cell(size, "MGSP")
		if mgsp <= tb.Cell(size, "Libnvmmio") {
			t.Errorf("%s: MGSP (%.1f) does not beat Libnvmmio (%.1f)", size, mgsp, tb.Cell(size, "Libnvmmio"))
		}
		if mgsp <= tb.Cell(size, "Ext4-DAX") {
			t.Errorf("%s: MGSP (%.1f) does not beat Ext4-DAX (%.1f)", size, mgsp, tb.Cell(size, "Ext4-DAX"))
		}
	}
	// Fine-grained: MGSP clearly beats NOVA (which pays CoW page writes).
	if tb.Cell("1K", "MGSP") < 1.3*tb.Cell("1K", "NOVA") {
		t.Errorf("1K: MGSP/NOVA = %.2f, want >= 1.3 (paper: 1.69-2.06x)",
			tb.Cell("1K", "MGSP")/tb.Cell("1K", "NOVA"))
	}
}

func TestFig9Shape(t *testing.T) {
	tb, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// MGSP improves on Ext4-DAX at every ratio; Libnvmmio falls to or below
	// Ext4-DAX once writes reach half the mix.
	for _, r := range tb.Rows {
		if tb.Cell(r, "MGSP") < 1.1 {
			t.Errorf("%s: MGSP only %.2fx Ext4-DAX", r, tb.Cell(r, "MGSP"))
		}
	}
	if tb.Cell("write-90%", "Libnvmmio") > 1.1 {
		t.Errorf("write-90%%: Libnvmmio %.2fx Ext4-DAX; paper shows it below baseline at high write ratios",
			tb.Cell("write-90%", "Libnvmmio"))
	}
}

func TestFig10Shape(t *testing.T) {
	tb, err := Fig10(tiny(), 4096, fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	// MGSP scales: 4 threads beat 1 thread clearly.
	if tb.Cell("4-threads", "MGSP") < 1.8*tb.Cell("1-threads", "MGSP") {
		t.Errorf("MGSP 4-thread speedup %.2fx, want >= 1.8",
			tb.Cell("4-threads", "MGSP")/tb.Cell("1-threads", "MGSP"))
	}
	// Ext4-DAX is inode-lock bound: nearly flat.
	if tb.Cell("4-threads", "Ext4-DAX") > 1.5*tb.Cell("1-threads", "Ext4-DAX") {
		t.Errorf("Ext4-DAX scales %.2fx; the inode lock should prevent that",
			tb.Cell("4-threads", "Ext4-DAX")/tb.Cell("1-threads", "Ext4-DAX"))
	}
	// MGSP wins at max threads.
	if tb.Cell("4-threads", "MGSP") <= tb.Cell("4-threads", "Ext4-DAX") {
		t.Error("MGSP does not win multithreaded")
	}
}

func TestTableIIShape(t *testing.T) {
	tb, err := TableII(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range tb.Rows {
		if wa := tb.Cell(size, "Libnvmmio"); wa < 1.7 || wa > 2.5 {
			t.Errorf("%s Libnvmmio WA = %.2f, paper ~2.0", size, wa)
		}
		if wa := tb.Cell(size, "Libnvmmio-wo-sync"); wa > 1.3 {
			t.Errorf("%s Libnvmmio-wo-sync WA = %.2f, paper ~1.0", size, wa)
		}
		if wa := tb.Cell(size, "MGSP"); wa > 1.4 {
			t.Errorf("%s MGSP WA = %.2f, paper ~1.0-1.1", size, wa)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tb, err := Fig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The full system beats bare Ext4-DAX in every case, and each case's
	// full configuration is at least as good as the shadow-log-only start.
	for _, c := range tb.Rows {
		full := tb.Cell(c, "+optimizations")
		if full < 1.5 {
			t.Errorf("%s: full MGSP only %.2fx Ext4-DAX (paper: ~3-4x)", c, full)
		}
		if full < tb.Cell(c, "+shadow-log")*0.9 {
			t.Errorf("%s: optimizations lost ground vs shadow log alone", c)
		}
	}
	// Multi-threaded case: MGL is the dominant contributor over file lock.
	if tb.Cell("4K-4thr", "+MGL") < 1.5*tb.Cell("4K-4thr", "+multi-granularity") {
		t.Errorf("4K-4thr: MGL adds only %.2fx over file locking",
			tb.Cell("4K-4thr", "+MGL")/tb.Cell("4K-4thr", "+multi-granularity"))
	}
}

func TestFig11Runs(t *testing.T) {
	tb, err := Fig11(tiny(), sqlite.Off)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range tb.Rows {
		if tb.Cell(op, "MGSP") <= 0 {
			t.Errorf("%s: zero MGSP throughput", op)
		}
	}
}

func TestFig12Runs(t *testing.T) {
	tb, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cell("OFF", "MGSP") <= 0 || tb.Cell("WAL", "MGSP") <= 0 {
		t.Fatal("zero tpmC")
	}
}

func TestRecoveryRuns(t *testing.T) {
	tb, err := Recovery(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if tb.Cells[i][0] <= 0 {
			t.Errorf("%s: zero recovery time", tb.Rows[i])
		}
	}
}

func TestTableFormat(t *testing.T) {
	tb := NewTable("x", "demo", "u", []string{"a"}, []string{"r"})
	tb.Cells[0][0] = 3.14
	out := tb.Format()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.14") {
		t.Fatalf("format output missing content:\n%s", out)
	}
}
