package nvm

import (
	"bytes"
	"testing"
	"testing/quick"

	"mgsp/internal/sim"
)

func newTestDevice(size int64) (*Device, *sim.Ctx) {
	return New(size, sim.ZeroCosts()), sim.NewCtx(0, 1)
}

func TestWriteReadRoundTrip(t *testing.T) {
	d, ctx := newTestDevice(4096)
	data := []byte("hello, persistent world")
	d.Write(ctx, data, 100)
	buf := make([]byte, len(data))
	d.Read(ctx, buf, 100)
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
}

func TestTemporalWriteIsVolatileUntilFlushed(t *testing.T) {
	d, ctx := newTestDevice(4096)
	data := []byte("volatile until flushed")
	d.Write(ctx, data, 0)

	if got := d.InspectDurable(0, len(data)); bytes.Equal(got, data) {
		t.Fatal("temporal write reached durable image before flush")
	}
	d.DropVolatile()
	buf := make([]byte, len(data))
	d.Read(ctx, buf, 0)
	if bytes.Equal(buf, data) {
		t.Fatal("unflushed write survived DropVolatile")
	}

	d.Write(ctx, data, 0)
	d.Flush(ctx, 0, len(data))
	if got := d.InspectDurable(0, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("flushed write missing from durable image: %q", got)
	}
	d.DropVolatile()
	d.Read(ctx, buf, 0)
	if !bytes.Equal(buf, data) {
		t.Fatal("flushed write lost after DropVolatile")
	}
}

func TestWriteNTIsImmediatelyDurable(t *testing.T) {
	d, ctx := newTestDevice(4096)
	data := []byte("non-temporal store")
	d.WriteNT(ctx, data, 256)
	if got := d.InspectDurable(256, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("WriteNT not durable: %q", got)
	}
}

func TestFlushOnlyDirtyLines(t *testing.T) {
	d, ctx := newTestDevice(4096)
	d.Write(ctx, make([]byte, 64), 0) // dirty exactly one line
	before := d.Stats().MediaWriteBytes.Load()
	n := d.Flush(ctx, 0, 4096)
	if n != 64 {
		t.Fatalf("flushed %d bytes, want 64 (only dirty lines)", n)
	}
	if got := d.Stats().MediaWriteBytes.Load() - before; got != 64 {
		t.Fatalf("media bytes = %d, want 64", got)
	}
	// Second flush has nothing to do.
	if n := d.Flush(ctx, 0, 4096); n != 0 {
		t.Fatalf("re-flush wrote %d bytes, want 0", n)
	}
}

func TestStore8AtomicityAndDurability(t *testing.T) {
	d, ctx := newTestDevice(4096)
	d.Store8(ctx, 64, 0xdeadbeefcafef00d)
	if got := d.Load8(64); got != 0xdeadbeefcafef00d {
		t.Fatalf("Load8 = %#x", got)
	}
	d.DropVolatile()
	if got := d.Load8(64); got != 0xdeadbeefcafef00d {
		t.Fatalf("Store8 not durable: %#x", got)
	}
}

func TestCAS8(t *testing.T) {
	d, ctx := newTestDevice(4096)
	d.Store8(ctx, 0, 10)
	if d.CAS8(ctx, 0, 11, 20) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if !d.CAS8(ctx, 0, 10, 20) {
		t.Fatal("CAS with right expected value failed")
	}
	d.DropVolatile()
	if got := d.Load8(0); got != 20 {
		t.Fatalf("CAS result not durable: %d", got)
	}
}

func TestUnaligned8ByteAccessPanics(t *testing.T) {
	d, ctx := newTestDevice(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Store8 did not panic")
		}
	}()
	d.Store8(ctx, 3, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	d, ctx := newTestDevice(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range write did not panic")
		}
	}()
	d.Write(ctx, make([]byte, 10), 4090)
}

func TestCrashInjectionTearsInFlightOp(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d, ctx := newTestDevice(4096)
		pattern := bytes.Repeat([]byte{0xAB}, 256)
		d.ArmCrash(0, seed) // crash on the very next media op
		func() {
			defer func() {
				if r := recover(); r != ErrCrashed {
					t.Fatalf("seed %d: panic = %v, want ErrCrashed", seed, r)
				}
			}()
			d.WriteNT(ctx, pattern, 0)
			t.Fatalf("seed %d: WriteNT survived armed crash", seed)
		}()
		if !d.Crashed() {
			t.Fatalf("seed %d: device not marked crashed", seed)
		}
		// The durable image must hold an 8-byte-granular prefix of the write.
		got := d.InspectDurable(0, 256)
		torn := 0
		for torn < 256 && got[torn] == 0xAB {
			torn++
		}
		if torn%8 != 0 {
			t.Fatalf("seed %d: tear point %d not 8-byte aligned", seed, torn)
		}
		for _, b := range got[torn:] {
			if b != 0 {
				t.Fatalf("seed %d: non-prefix bytes persisted", seed)
			}
		}
		d.Recover()
		if d.Crashed() {
			t.Fatal("Recover did not clear crashed state")
		}
		// Post-recovery the volatile view equals the durable image.
		buf := make([]byte, 256)
		d.Read(ctx, buf, 0)
		if !bytes.Equal(buf, got) {
			t.Fatalf("seed %d: post-recovery view differs from durable image", seed)
		}
	}
}

func TestCrashAfterNOps(t *testing.T) {
	d, ctx := newTestDevice(4096)
	d.ArmCrash(3, 7) // allow exactly 3 media ops
	d.WriteNT(ctx, []byte{1}, 0)
	d.WriteNT(ctx, []byte{2}, 64)
	d.WriteNT(ctx, []byte{3}, 128)
	func() {
		defer func() { recover() }()
		d.WriteNT(ctx, []byte{4}, 192)
		t.Fatal("4th media op survived")
	}()
	if !d.Crashed() {
		t.Fatal("device should have crashed on op 4")
	}
}

func TestOpsOnCrashedDevicePanic(t *testing.T) {
	d, ctx := newTestDevice(4096)
	d.ArmCrash(0, 1)
	func() { defer func() { recover() }(); d.WriteNT(ctx, []byte{1}, 0) }()
	defer func() {
		if recover() != ErrCrashed {
			t.Fatal("op on crashed device did not panic with ErrCrashed")
		}
	}()
	d.Read(ctx, make([]byte, 1), 0)
}

func TestVirtualTimeCharges(t *testing.T) {
	costs := sim.DefaultCosts()
	d := New(1<<20, costs)
	ctx := sim.NewCtx(0, 1)

	t0 := ctx.Now()
	d.Read(ctx, make([]byte, 4096), 0)
	readCost := ctx.Now() - t0
	if readCost < costs.NVMReadLat {
		t.Fatalf("read charged %dns, want >= latency %dns", readCost, costs.NVMReadLat)
	}

	t0 = ctx.Now()
	d.WriteNT(ctx, make([]byte, 4096), 0)
	writeCost := ctx.Now() - t0
	if writeCost <= readCost {
		t.Fatalf("4K write (%dns) must cost more than 4K read (%dns) on Optane-like media", writeCost, readCost)
	}

	t0 = ctx.Now()
	d.Fence(ctx)
	if got := ctx.Now() - t0; got != costs.Fence {
		t.Fatalf("fence charged %dns, want %dns", got, costs.Fence)
	}
}

func TestStatsCounters(t *testing.T) {
	d, ctx := newTestDevice(1 << 16)
	d.WriteNT(ctx, make([]byte, 1024), 0)
	if got := d.Stats().MediaWriteBytes.Load(); got != 1024 {
		t.Fatalf("MediaWriteBytes = %d, want 1024", got)
	}
	d.Read(ctx, make([]byte, 100), 0)
	if got := d.Stats().MediaReadBytes.Load(); got != 100 {
		t.Fatalf("MediaReadBytes = %d, want 100", got)
	}
	d.Fence(ctx)
	if got := d.Stats().Fences.Load(); got != 1 {
		t.Fatalf("Fences = %d, want 1", got)
	}
	d.ResetStats()
	if d.Stats().MediaWriteBytes.Load() != 0 || d.Stats().MediaReadBytes.Load() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

// TestDurabilityProperty: any flushed write survives DropVolatile, any
// unflushed write does not leak into the durable image beyond line sharing.
func TestDurabilityProperty(t *testing.T) {
	f := func(off uint16, sz uint8, fill byte, doFlush bool) bool {
		d, ctx := newTestDevice(1 << 17)
		o := int64(off)
		n := int(sz)%512 + 1
		data := bytes.Repeat([]byte{fill | 1}, n) // never zero
		d.Write(ctx, data, o)
		if doFlush {
			d.Persist(ctx, o, n)
		}
		d.DropVolatile()
		buf := make([]byte, n)
		d.Read(ctx, buf, o)
		if doFlush {
			return bytes.Equal(buf, data)
		}
		return !bytes.Equal(buf, data) || fill|1 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistIsFlushPlusFence(t *testing.T) {
	d, ctx := newTestDevice(4096)
	d.Write(ctx, []byte{42}, 0)
	d.Persist(ctx, 0, 1)
	if d.Stats().Fences.Load() != 1 {
		t.Fatal("Persist must fence")
	}
	if got := d.InspectDurable(0, 1); got[0] != 42 {
		t.Fatal("Persist must flush")
	}
}
