package nvm

import (
	"testing"

	"mgsp/internal/sim"
)

// Per-worker media-op attribution: every persistence-affecting operation is
// charged to the issuing Ctx.ID and the totals add up to MediaOps.
func TestWorkerOpAttribution(t *testing.T) {
	d := New(1<<20, sim.ZeroCosts())
	a := sim.NewCtx(3, 1)
	b := sim.NewCtx(7, 2)

	buf := make([]byte, 64)
	d.WriteNT(a, buf, 0)
	d.WriteNT(a, buf, 64)
	d.Store8(a, 128, 42)
	d.WriteNT(b, buf, 256)
	if !d.CAS8(b, 320, 0, 1) {
		t.Fatal("CAS8 failed on zeroed device")
	}
	d.Write(b, buf, 512) // temporal store: no media op until Flush
	if n := d.Flush(b, 512, 64); n == 0 {
		t.Fatal("Flush persisted nothing")
	}

	st := d.Stats()
	if got := st.WorkerOps(3); got != 3 {
		t.Fatalf("worker 3 ops = %d, want 3", got)
	}
	if got := st.WorkerOps(7); got != 3 {
		t.Fatalf("worker 7 ops = %d, want 3", got)
	}
	if got := st.WorkerOps(99); got != 0 {
		t.Fatalf("unknown worker ops = %d, want 0", got)
	}
	var sum int64
	for _, n := range st.Workers() {
		sum += n
	}
	if total := st.MediaOps.Load(); sum != total {
		t.Fatalf("per-worker sum %d != MediaOps %d", sum, total)
	}

	d.ResetStats()
	if len(d.Stats().Workers()) != 0 {
		t.Fatal("ResetStats did not clear worker attribution")
	}
}

// CrashInfo attributes the torn operation to the worker that issued it, and
// the OnCrash hook fires exactly once before the panic unwinds.
func TestCrashInfoAndHook(t *testing.T) {
	d := New(1<<20, sim.ZeroCosts())
	a := sim.NewCtx(5, 1)
	buf := make([]byte, 64)
	d.WriteNT(a, buf, 0)

	if op, w := d.CrashInfo(); op != -1 || w != -1 {
		t.Fatalf("CrashInfo before crash = (%d, %d), want (-1, -1)", op, w)
	}

	hooks := 0
	var hookOp int64
	var hookWorker int
	d.OnCrash(func(worker int, mediaOp int64) {
		hooks++
		hookWorker, hookOp = worker, mediaOp
	})
	d.ArmCrash(2, 99)

	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if r != ErrCrashed {
					panic(r)
				}
				c = true
			}
		}()
		d.WriteNT(a, buf, 64)  // survives: 1st media op since arming
		d.WriteNT(a, buf, 128) // survives: 2nd
		d.WriteNT(a, buf, 192) // torn: device-lifetime media op 4
		return false
	}()
	if !crashed {
		t.Fatal("device did not crash at the armed fail point")
	}
	op, w := d.CrashInfo()
	if w != 5 {
		t.Fatalf("crash worker = %d, want 5", w)
	}
	if op != 4 {
		t.Fatalf("crash media op = %d, want 4 (device-lifetime index)", op)
	}
	if hooks != 1 || hookWorker != w || hookOp != op {
		t.Fatalf("OnCrash fired %d times with (%d, %d), want once with (%d, %d)",
			hooks, hookWorker, hookOp, w, op)
	}

	d.Recover()
	if op2, w2 := d.CrashInfo(); op2 != op || w2 != w {
		t.Fatal("CrashInfo did not survive Recover")
	}
	d.ArmCrash(100, 1)
	if op3, w3 := d.CrashInfo(); op3 != -1 || w3 != -1 {
		t.Fatalf("CrashInfo after re-arm = (%d, %d), want (-1, -1)", op3, w3)
	}
}
