package nvm

import (
	"bytes"
	"testing"

	"mgsp/internal/sim"
)

func TestImageSaveLoadRoundTrip(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	d.WriteNT(ctx, bytes.Repeat([]byte{0x5E}, 8192), 4096)
	d.Write(ctx, []byte("volatile"), 0) // unflushed: must not survive

	var img bytes.Buffer
	if err := d.Save(&img); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadImage(&img, func(size int64) *Device {
		return New(size, sim.ZeroCosts())
	})
	if err != nil {
		t.Fatal(err)
	}
	got := d2.Inspect(4096, 8192)
	if !bytes.Equal(got, bytes.Repeat([]byte{0x5E}, 8192)) {
		t.Fatal("durable data lost across save/load")
	}
	if bytes.Equal(d2.Inspect(0, 8), []byte("volatile")) {
		t.Fatal("volatile data leaked into the image")
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(bytes.NewReader([]byte("not an image at all")), func(size int64) *Device {
		return New(size, sim.ZeroCosts())
	}); err == nil {
		t.Fatal("garbage accepted as image")
	}
}
