package nvm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// imageMagic identifies a serialized device image.
const imageMagic = 0x4d475350_4e564d31 // "MGSPNVM1"

// Save writes the device's durable image to w (what would survive a crash;
// the volatile overlay is deliberately not included). The format is a
// 16-byte header (magic, size) followed by the raw bytes.
func (d *Device) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(d.durable)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(d.durable); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadImage reads a device image saved with Save, constructing the device
// via mk and returning it in its post-crash state (volatile view equal to
// the durable image).
func LoadImage(r io.Reader, mk func(size int64) *Device) (*Device, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("nvm: short image header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("nvm: not a device image")
	}
	size := int64(binary.LittleEndian.Uint64(hdr[8:]))
	d := mk(size)
	if d.Size() < size {
		return nil, fmt.Errorf("nvm: image size %d exceeds device %d", size, d.Size())
	}
	if _, err := io.ReadFull(br, d.durable[:size]); err != nil {
		return nil, fmt.Errorf("nvm: short image body: %w", err)
	}
	copy(d.mem, d.durable)
	return d, nil
}
