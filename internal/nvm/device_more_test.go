package nvm

import (
	"bytes"
	"sync"
	"testing"

	"mgsp/internal/sim"
)

// TestConcurrentDisjointDeviceAccess: concurrent workers on disjoint ranges
// keep data integrity and sane counters.
func TestConcurrentDisjointDeviceAccess(t *testing.T) {
	d := New(16<<20, sim.ZeroCosts())
	const workers = 8
	const region = 1 << 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id))
			base := int64(id) * region
			pat := bytes.Repeat([]byte{byte(id + 1)}, 4096)
			for i := 0; i < 100; i++ {
				off := base + int64(i%200)*4096
				if i%2 == 0 {
					d.WriteNT(ctx, pat, off)
				} else {
					d.Write(ctx, pat, off)
					d.Persist(ctx, off, 4096)
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		got := d.Inspect(int64(w)*region, 4096)
		for i, b := range got {
			if b != byte(w+1) {
				t.Fatalf("worker %d byte %d = %d", w, i, b)
			}
		}
	}
	if d.Stats().MediaWriteBytes.Load() == 0 || d.Stats().Flushes.Load() == 0 {
		t.Fatal("counters did not advance")
	}
}

// TestCrashDuringFlushTearsAtLineGranularity: an armed Flush persists a
// prefix of its dirty lines, the last possibly torn at 8-byte granularity.
func TestCrashDuringFlushTears(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := New(1<<16, sim.ZeroCosts())
		ctx := sim.NewCtx(0, 1)
		data := bytes.Repeat([]byte{0xCE}, 1024) // 16 lines
		d.Write(ctx, data, 0)
		d.ArmCrash(0, seed)
		func() {
			defer func() {
				if r := recover(); r != ErrCrashed {
					t.Fatalf("seed %d: %v", seed, r)
				}
			}()
			d.Flush(ctx, 0, 1024)
		}()
		got := d.InspectDurable(0, 1024)
		// Every 8-byte unit is either fully old (zero) or fully new.
		for u := 0; u < 1024; u += 8 {
			unit := got[u : u+8]
			allNew := bytes.Equal(unit, data[u:u+8])
			allOld := bytes.Equal(unit, make([]byte, 8))
			if !allNew && !allOld {
				t.Fatalf("seed %d: unit %d torn inside 8 bytes", seed, u)
			}
		}
		d.Recover()
	}
}

// TestCAS8CrashMayOrMayNotPersist: an armed CAS8 leaves either value, never
// garbage.
func TestCAS8Crash(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := New(4096, sim.ZeroCosts())
		ctx := sim.NewCtx(0, 1)
		d.Store8(ctx, 0, 111)
		d.ArmCrash(0, seed)
		func() {
			defer func() { recover() }()
			d.CAS8(ctx, 0, 111, 222)
		}()
		d.Recover()
		v := d.Load8(0)
		if v != 111 && v != 222 {
			t.Fatalf("seed %d: CAS8 crash left %d", seed, v)
		}
	}
}

// TestTimelineBandwidthCap: enough concurrent traffic saturates the
// channels, capping aggregate throughput near channels/writePerByte.
func TestTimelineBandwidthCap(t *testing.T) {
	costs := sim.DefaultCosts()
	d := New(256<<20, costs)
	const workers = 16
	const opsPer = 200
	ctxs := make([]*sim.Ctx, workers)
	var wg sync.WaitGroup
	for i := range ctxs {
		ctxs[i] = sim.NewCtx(i, int64(i))
		wg.Add(1)
		go func(id int, ctx *sim.Ctx) {
			defer wg.Done()
			buf := make([]byte, 64<<10)
			base := int64(id) * (8 << 20)
			for j := 0; j < opsPer; j++ {
				d.WriteNT(ctx, buf, base+int64(j%64)*(64<<10))
			}
		}(i, ctxs[i])
	}
	wg.Wait()
	elapsed := sim.MaxTime(ctxs)
	bytesTotal := int64(workers * opsPer * (64 << 10))
	gbps := float64(bytesTotal) / float64(elapsed) // bytes per ns = GB/s
	// Aggregate cap = channels / writePerByte = 4 / 0.45 ~ 8.9 GB/s.
	cap := float64(costs.Channels) / costs.NVMWritePerByte
	if gbps > cap*1.15 {
		t.Fatalf("aggregate %.1f GB/s exceeds the %.1f GB/s device cap", gbps, cap)
	}
	if gbps < cap*0.5 {
		t.Fatalf("aggregate %.1f GB/s far below cap %.1f: contention model too pessimistic", gbps, cap)
	}
}
