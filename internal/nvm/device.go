// Package nvm simulates a byte-addressable non-volatile memory device (Intel
// Optane DC PMem in the paper's testbed) with the properties that matter for
// crash-consistency research:
//
//   - a volatile CPU-cache overlay: temporal stores (Write) are visible to
//     readers immediately but are lost on crash until flushed;
//   - explicit persistence: Flush moves cache lines to the durable image,
//     WriteNT models non-temporal stores that bypass the cache, Store8 models
//     the 8-byte atomic persistent stores that designs like MGSP and BPFS
//     build commit protocols from;
//   - media accounting: every byte that reaches the durable image is counted,
//     which is how the write-amplification experiment (Table II) is measured;
//   - deterministic crash injection: the device can be armed to fail after N
//     media operations, tearing the in-flight operation at 8-byte granularity,
//     after which only the durable image survives.
//
// All operations charge virtual time to the caller's sim.Ctx using the cost
// model in internal/sim and reserve bandwidth on a shared timeline, so the
// device is also the performance model shared by every simulated file system.
package nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"unsafe"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// LineSize is the CPU cache-line size in bytes.
const LineSize = 64

// ErrCrashed is the panic value raised when the device hits an armed fail
// point, and the error returned by operations on a crashed device.
var ErrCrashed = errors.New("nvm: device crashed")

// Stats aggregates media-level counters. All fields are monotonically
// increasing and safe to read concurrently. The fields are obs.Counter so
// the whole struct registers into an obs.Registry (see Register) without
// changing any accessor call site.
type Stats struct {
	// MediaWriteBytes counts bytes that reached the durable image (the
	// denominator of Table II is the user bytes; this is the numerator).
	MediaWriteBytes obs.Counter
	// MediaReadBytes counts bytes read through the device interface.
	MediaReadBytes obs.Counter
	// Flushes counts Flush calls that persisted at least one line.
	Flushes obs.Counter
	// Fences counts Fence calls.
	Fences obs.Counter
	// MediaOps counts persistence-affecting operations (used by the crash
	// injector's fail-after counter).
	MediaOps obs.Counter

	// workerOps attributes media operations to the sim.Ctx.ID that issued
	// them. Concurrent crash harnesses use it to report which writers were
	// actually driving the device when the fail point hit.
	workerOps sync.Map // int -> *atomic.Int64
}

// Register publishes the media counters into r under prefix (e.g. "nvm."):
// media_write_bytes, media_read_bytes, flushes, fences, media_ops.
func (s *Stats) Register(r *obs.Registry, prefix string) {
	r.RegisterCounter(prefix+"media_write_bytes", &s.MediaWriteBytes)
	r.RegisterCounter(prefix+"media_read_bytes", &s.MediaReadBytes)
	r.RegisterCounter(prefix+"flushes", &s.Flushes)
	r.RegisterCounter(prefix+"fences", &s.Fences)
	r.RegisterCounter(prefix+"media_ops", &s.MediaOps)
}

func (s *Stats) noteWorker(id int) {
	v, ok := s.workerOps.Load(id)
	if !ok {
		v, _ = s.workerOps.LoadOrStore(id, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// WorkerOps returns the number of media operations issued by the worker with
// the given sim.Ctx.ID.
func (s *Stats) WorkerOps(id int) int64 {
	if v, ok := s.workerOps.Load(id); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// Workers returns a snapshot of per-worker media-op counts keyed by
// sim.Ctx.ID.
func (s *Stats) Workers() map[int]int64 {
	out := make(map[int]int64)
	s.workerOps.Range(func(k, v any) bool {
		out[k.(int)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Device is a simulated NVM DIMM set. It is safe for concurrent use by
// multiple workers as long as they do not write overlapping byte ranges
// concurrently without synchronization (the same contract real hardware
// gives software).
type Device struct {
	mem     []byte          // current contents (volatile view: caches + media)
	durable []byte          // what survives a crash
	dirty   []atomic.Uint64 // one bit per cache line: mem differs from durable

	costs    sim.Costs
	timeline *sim.Timeline

	stats Stats

	// Crash injection.
	failAfter   atomic.Int64 // remaining media ops before crash; <0 = disarmed
	crashed     atomic.Bool
	crashRand   *rand.Rand
	crashMu     sync.Mutex
	crashOp     int64 // device-lifetime index of the torn media op (0 = none)
	crashWorker int   // sim.Ctx.ID whose operation hit the fail point
	onCrash     func(worker int, mediaOp int64)
}

// New creates a device of the given size (rounded up to a cache line) with
// the supplied cost model.
func New(size int64, costs sim.Costs) *Device {
	if size <= 0 {
		panic("nvm: non-positive device size")
	}
	size = (size + LineSize - 1) / LineSize * LineSize
	ch := costs.Channels
	if ch < 1 {
		ch = 1
	}
	d := &Device{
		mem:      make([]byte, size),
		durable:  make([]byte, size),
		dirty:    make([]atomic.Uint64, (size/LineSize+63)/64),
		costs:    costs,
		timeline: sim.NewTimeline(ch),
	}
	d.failAfter.Store(-1)
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.mem)) }

// Stats returns the device's media counters.
func (d *Device) Stats() *Stats { return &d.stats }

// Costs returns the device's cost model.
func (d *Device) Costs() *sim.Costs { return &d.costs }

// Timeline returns the shared bandwidth timeline (exposed so kernel-path
// simulations can charge DMA-like transfers against the same bandwidth).
func (d *Device) Timeline() *sim.Timeline { return d.timeline }

func (d *Device) check(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(d.mem)) {
		panic(fmt.Sprintf("nvm: out of range access off=%d len=%d size=%d", off, n, len(d.mem)))
	}
	if d.crashed.Load() {
		panic(ErrCrashed)
	}
}

// Read copies n=len(buf) bytes at off into buf, charging read latency and
// bandwidth. Reads observe the volatile view (caches included), like loads on
// real hardware.
func (d *Device) Read(ctx *sim.Ctx, buf []byte, off int64) {
	d.check(off, len(buf))
	copy(buf, d.mem[off:off+int64(len(buf))])
	d.stats.MediaReadBytes.Add(int64(len(buf)))
	if ctx.Tally != nil {
		ctx.Tally.ReadBytes.Add(int64(len(buf)))
	}
	ctx.Advance(d.costs.NVMReadLat)
	d.timeline.Reserve(ctx, int64(float64(len(buf))*d.costs.NVMReadPerByte))
}

// Write performs a temporal store: data becomes visible to readers
// immediately but is volatile until the covering lines are flushed. The cost
// charged here is the store cost; media bandwidth is charged at Flush time.
func (d *Device) Write(ctx *sim.Ctx, data []byte, off int64) {
	d.check(off, len(data))
	copy(d.mem[off:off+int64(len(data))], data)
	d.markDirty(off, len(data))
	ctx.Advance(d.costs.DRAMCopyCost(len(data)))
}

// WriteNT performs a non-temporal store: data is written to the durable image
// directly (the paper's PMDK path uses ntstore + fence; with ADR, stores that
// reach the write-pending queue are in the persistence domain). Media write
// bandwidth is charged immediately.
func (d *Device) WriteNT(ctx *sim.Ctx, data []byte, off int64) {
	d.check(off, len(data))
	d.hitFailPoint(ctx, func(rng *rand.Rand) {
		// Tear the write at 8-byte granularity: persist a random prefix.
		k := rng.Intn(len(data)/8+1) * 8
		if k > len(data) {
			k = len(data)
		}
		copy(d.mem[off:off+int64(k)], data[:k])
		copy(d.durable[off:off+int64(k)], data[:k])
	})
	copy(d.mem[off:off+int64(len(data))], data)
	copy(d.durable[off:off+int64(len(data))], data)
	d.clearDirty(off, len(data))
	d.stats.MediaWriteBytes.Add(int64(len(data)))
	d.stats.MediaOps.Add(1)
	d.stats.noteWorker(ctx.ID)
	if ctx.Tally != nil {
		ctx.Tally.WriteBytes.Add(int64(len(data)))
	}
	ctx.Advance(d.costs.NVMWriteLat)
	d.timeline.Reserve(ctx, d.costs.WriteCost(len(data))-d.costs.NVMWriteLat)
}

// Flush persists all dirty cache lines intersecting [off, off+n), charging
// clwb issue costs and media write bandwidth for the lines actually written.
// It returns the number of bytes persisted.
func (d *Device) Flush(ctx *sim.Ctx, off int64, n int) int {
	d.check(off, n)
	if n == 0 {
		return 0
	}
	first := off / LineSize
	last := (off + int64(n) - 1) / LineSize
	var lines []int64
	for l := first; l <= last; l++ {
		if d.testDirty(l) {
			lines = append(lines, l)
		}
	}
	if len(lines) == 0 {
		return 0
	}
	d.hitFailPoint(ctx, func(rng *rand.Rand) {
		// Persist a random prefix of the lines; the last persisted line may
		// itself be torn at 8-byte granularity.
		k := rng.Intn(len(lines) + 1)
		for i := 0; i < k; i++ {
			d.persistLine(lines[i], LineSize)
		}
		if k < len(lines) {
			d.persistLine(lines[k], rng.Intn(LineSize/8+1)*8)
		}
	})
	for _, l := range lines {
		d.persistLine(l, LineSize)
		d.clearDirtyLine(l)
	}
	nb := len(lines) * LineSize
	d.stats.MediaWriteBytes.Add(int64(nb))
	d.stats.Flushes.Add(1)
	d.stats.MediaOps.Add(1)
	d.stats.noteWorker(ctx.ID)
	if ctx.Tally != nil {
		ctx.Tally.WriteBytes.Add(int64(nb))
	}
	ctx.Advance(int64(len(lines)) * d.costs.CacheLineFlush)
	d.timeline.Reserve(ctx, d.costs.WriteCost(nb)-d.costs.NVMWriteLat)
	return nb
}

func (d *Device) persistLine(line int64, bytes int) {
	if bytes <= 0 {
		return
	}
	off := line * LineSize
	copy(d.durable[off:off+int64(bytes)], d.mem[off:off+int64(bytes)])
}

// Fence models an sfence: it orders prior flushes/non-temporal stores and
// charges the drain cost. In this model Flush and WriteNT persist eagerly, so
// Fence affects timing only; "flushed but not fenced" anomalies are outside
// the simulated fault model (see DESIGN.md).
func (d *Device) Fence(ctx *sim.Ctx) {
	if d.crashed.Load() {
		panic(ErrCrashed)
	}
	d.stats.Fences.Add(1)
	ctx.Advance(d.costs.Fence)
}

// Persist is the common clwb-loop + sfence sequence (PMDK's pmem_persist).
func (d *Device) Persist(ctx *sim.Ctx, off int64, n int) {
	d.Flush(ctx, off, n)
	d.Fence(ctx)
}

// Load8 atomically reads the 8-byte word at off (must be 8-byte aligned).
// It charges no time; callers model their own access costs.
func (d *Device) Load8(off int64) uint64 {
	d.check8(off)
	return (*atomic.Uint64)(unsafe.Pointer(&d.mem[off])).Load()
}

// Store8 atomically writes an 8-byte word and persists it immediately
// (ntstore of an aligned quadword + fence). This is the primitive that
// 8-byte-atomic commit protocols rely on.
func (d *Device) Store8(ctx *sim.Ctx, off int64, v uint64) {
	d.check8(off)
	d.hitFailPoint(ctx, func(rng *rand.Rand) {
		if rng.Intn(2) == 1 { // the store may or may not have reached media
			(*atomic.Uint64)(unsafe.Pointer(&d.mem[off])).Store(v)
			(*atomic.Uint64)(unsafe.Pointer(&d.durable[off])).Store(v)
		}
	})
	(*atomic.Uint64)(unsafe.Pointer(&d.mem[off])).Store(v)
	(*atomic.Uint64)(unsafe.Pointer(&d.durable[off])).Store(v)
	d.stats.MediaWriteBytes.Add(8)
	d.stats.MediaOps.Add(1)
	d.stats.noteWorker(ctx.ID)
	if ctx.Tally != nil {
		ctx.Tally.WriteBytes.Add(8)
	}
	ctx.Advance(d.costs.NVMWriteLat)
}

// CAS8 performs an atomic compare-and-swap on the 8-byte word at off,
// persisting the new value on success.
func (d *Device) CAS8(ctx *sim.Ctx, off int64, old, new uint64) bool {
	d.check8(off)
	ctx.Advance(d.costs.Atomic)
	if !(*atomic.Uint64)(unsafe.Pointer(&d.mem[off])).CompareAndSwap(old, new) {
		return false
	}
	d.hitFailPoint(ctx, func(rng *rand.Rand) {
		if rng.Intn(2) == 1 {
			(*atomic.Uint64)(unsafe.Pointer(&d.durable[off])).Store(new)
		}
	})
	(*atomic.Uint64)(unsafe.Pointer(&d.durable[off])).Store(new)
	d.stats.MediaWriteBytes.Add(8)
	d.stats.MediaOps.Add(1)
	d.stats.noteWorker(ctx.ID)
	if ctx.Tally != nil {
		ctx.Tally.WriteBytes.Add(8)
	}
	ctx.Advance(d.costs.NVMWriteLat)
	return true
}

func (d *Device) check8(off int64) {
	if off%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned 8-byte access at %d", off))
	}
	d.check(off, 8)
}

// ---- dirty-line bitmap ----

func (d *Device) markDirty(off int64, n int) {
	first := off / LineSize
	last := (off + int64(n) - 1) / LineSize
	for l := first; l <= last; l++ {
		w := &d.dirty[l/64]
		bit := uint64(1) << uint(l%64)
		for {
			old := w.Load()
			if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
				break
			}
		}
	}
}

func (d *Device) clearDirty(off int64, n int) {
	first := off / LineSize
	last := (off + int64(n) - 1) / LineSize
	for l := first; l <= last; l++ {
		d.clearDirtyLine(l)
	}
}

func (d *Device) clearDirtyLine(l int64) {
	w := &d.dirty[l/64]
	bit := uint64(1) << uint(l%64)
	for {
		old := w.Load()
		if old&bit == 0 || w.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

func (d *Device) testDirty(l int64) bool {
	return d.dirty[l/64].Load()&(uint64(1)<<uint(l%64)) != 0
}

// ---- crash injection ----

// ArmCrash arms the fail point: after n more media operations the device
// crashes, tearing the in-flight operation using a PRNG seeded with seed.
func (d *Device) ArmCrash(n int64, seed int64) {
	d.crashMu.Lock()
	d.crashRand = rand.New(rand.NewSource(seed))
	d.crashOp = 0
	d.crashWorker = 0
	d.crashMu.Unlock()
	d.failAfter.Store(n)
}

// DisarmCrash disables the fail point.
func (d *Device) DisarmCrash() { d.failAfter.Store(-1) }

// OnCrash registers fn to be invoked exactly once at the crash instant,
// after the in-flight operation has been torn but before the crash panic
// unwinds. Concurrent harnesses use it to capture which operations were in
// flight at the moment of failure. Set it before ArmCrash; pass nil to
// clear.
func (d *Device) OnCrash(fn func(worker int, mediaOp int64)) {
	d.crashMu.Lock()
	d.onCrash = fn
	d.crashMu.Unlock()
}

func (d *Device) hitFailPoint(ctx *sim.Ctx, tear func(*rand.Rand)) {
	if d.failAfter.Load() < 0 {
		return
	}
	if d.failAfter.Add(-1) != -1 {
		return
	}
	d.crashMu.Lock()
	rng := d.crashRand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	tear(rng)
	// The torn operation itself never reaches the MediaOps counter (it
	// panics below), so its index is one past everything counted so far.
	d.crashOp = d.stats.MediaOps.Load() + 1
	d.crashWorker = ctx.ID
	fn := d.onCrash
	worker, op := d.crashWorker, d.crashOp
	d.crashMu.Unlock()
	d.crashed.Store(true)
	if fn != nil {
		fn(worker, op)
	}
	panic(ErrCrashed)
}

// Crashed reports whether the device has hit its fail point.
func (d *Device) Crashed() bool { return d.crashed.Load() }

// CrashInfo reports where the armed crash landed: the device-lifetime index
// of the media operation that was torn (counted from device creation, not
// from ArmCrash) and the sim.Ctx.ID of the worker that issued it. It returns
// (-1, -1) if the device has not crashed since the last ArmCrash. The values
// survive Recover so post-mortem analysis can still attribute the crash.
func (d *Device) CrashInfo() (mediaOp int64, worker int) {
	d.crashMu.Lock()
	defer d.crashMu.Unlock()
	if d.crashOp == 0 {
		return -1, -1
	}
	return d.crashOp, d.crashWorker
}

// Recover simulates machine restart: the volatile view is discarded and
// reset to the durable image, and the device becomes usable again. The
// caller is responsible for discarding all software state (file system
// objects, locks) built on the previous incarnation.
func (d *Device) Recover() {
	copy(d.mem, d.durable)
	for i := range d.dirty {
		d.dirty[i].Store(0)
	}
	d.crashed.Store(false)
	d.failAfter.Store(-1)
}

// DropVolatile discards unflushed data without marking the device crashed
// (used by tests that want to inspect "what would survive" repeatedly).
func (d *Device) DropVolatile() {
	copy(d.mem, d.durable)
	for i := range d.dirty {
		d.dirty[i].Store(0)
	}
}

// Inspect returns a copy of n bytes of the volatile view at off without
// charging any virtual time (verification helper).
func (d *Device) Inspect(off int64, n int) []byte {
	if off < 0 || off+int64(n) > int64(len(d.mem)) {
		panic("nvm: inspect out of range")
	}
	out := make([]byte, n)
	copy(out, d.mem[off:off+int64(n)])
	return out
}

// InspectDurable returns a copy of n bytes of the durable image at off
// without charging any virtual time.
func (d *Device) InspectDurable(off int64, n int) []byte {
	if off < 0 || off+int64(n) > int64(len(d.durable)) {
		panic("nvm: inspect out of range")
	}
	out := make([]byte, n)
	copy(out, d.durable[off:off+int64(n)])
	return out
}

// ResetStats zeroes the media counters (between benchmark phases).
func (d *Device) ResetStats() {
	d.stats.MediaWriteBytes.Store(0)
	d.stats.MediaReadBytes.Store(0)
	d.stats.Flushes.Store(0)
	d.stats.Fences.Store(0)
	d.stats.MediaOps.Store(0)
	d.stats.workerOps.Range(func(k, _ any) bool {
		d.stats.workerOps.Delete(k)
		return true
	})
}
