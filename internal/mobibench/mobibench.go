// Package mobibench reimplements the SQLite portion of Mobibench as used in
// the paper's Figure 11: basic insert/update/delete transactions, each an
// autocommitted statement against one table, measured as transactions per
// second of virtual time.
package mobibench

import (
	"fmt"

	"mgsp/internal/sim"
	"mgsp/internal/sqlite"
	"mgsp/internal/vfs"
)

// Config sizes the workload.
type Config struct {
	// Records preloaded before the update/delete phases.
	Records int
	// Ops per measured phase.
	Ops int
	// ValueSize is the record payload (Mobibench default inserts ~100 B
	// text columns).
	ValueSize int
	Seed      int64
}

// DefaultConfig mirrors Mobibench defaults scaled for simulation.
func DefaultConfig() Config {
	return Config{Records: 2000, Ops: 500, ValueSize: 100, Seed: 42}
}

// Result reports per-phase transaction rates.
type Result struct {
	FS   string
	Mode sqlite.JournalMode

	InsertTPS float64
	UpdateTPS float64
	DeleteTPS float64
}

// Run executes the three phases against a fresh database on fs.
func Run(fs vfs.FS, mode sqlite.JournalMode, cfg Config) (Result, error) {
	if cfg.Ops <= 0 || cfg.Records < cfg.Ops {
		return Result{}, fmt.Errorf("mobibench: need Records >= Ops > 0")
	}
	ctx := sim.NewCtx(0, cfg.Seed)
	db, err := sqlite.Open(ctx, fs, "mobibench.db", mode)
	if err != nil {
		return Result{}, err
	}
	defer db.Close(ctx)
	if err := db.CreateTable(ctx, "tbl"); err != nil {
		return Result{}, err
	}
	res := Result{FS: fs.Name(), Mode: mode}
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("rec%08d", i)) }

	// Preload all but the measured inserts.
	for i := cfg.Ops; i < cfg.Records; i++ {
		if err := db.Exec(ctx, func(tx *sqlite.Txn) error {
			return tx.Insert(ctx, "tbl", key(i), val)
		}); err != nil {
			return Result{}, err
		}
	}

	phase := func(op func(i int) error) (float64, error) {
		t0 := ctx.Now()
		for i := 0; i < cfg.Ops; i++ {
			if err := op(i); err != nil {
				return 0, err
			}
		}
		dt := ctx.Now() - t0
		if dt == 0 {
			return 0, nil
		}
		return float64(cfg.Ops) / (float64(dt) / 1e9), nil
	}

	if res.InsertTPS, err = phase(func(i int) error {
		return db.Exec(ctx, func(tx *sqlite.Txn) error { return tx.Insert(ctx, "tbl", key(i), val) })
	}); err != nil {
		return Result{}, err
	}
	if res.UpdateTPS, err = phase(func(i int) error {
		k := key(ctx.Rand.Intn(cfg.Records))
		return db.Exec(ctx, func(tx *sqlite.Txn) error { return tx.Insert(ctx, "tbl", k, val) })
	}); err != nil {
		return Result{}, err
	}
	if res.DeleteTPS, err = phase(func(i int) error {
		return db.Exec(ctx, func(tx *sqlite.Txn) error {
			_, err := tx.Delete(ctx, "tbl", key(i))
			return err
		})
	}); err != nil {
		return Result{}, err
	}
	return res, nil
}
