package mobibench

import (
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/ext4"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/sqlite"
)

func TestRunBothModes(t *testing.T) {
	cfg := Config{Records: 300, Ops: 100, ValueSize: 100, Seed: 1}
	for _, mode := range []sqlite.JournalMode{sqlite.WAL, sqlite.Off} {
		fs := ext4.New(nvm.New(96<<20, sim.DefaultCosts()), ext4.DAX)
		res, err := Run(fs, mode, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.InsertTPS <= 0 || res.UpdateTPS <= 0 || res.DeleteTPS <= 0 {
			t.Fatalf("%v: zero TPS: %+v", mode, res)
		}
	}
}

func TestRunOnMGSP(t *testing.T) {
	cfg := Config{Records: 300, Ops: 100, ValueSize: 100, Seed: 1}
	fs := core.MustNew(nvm.New(96<<20, sim.DefaultCosts()), core.DefaultOptions())
	res, err := Run(fs, sqlite.WAL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InsertTPS <= 0 {
		t.Fatal("no insert throughput")
	}
}

func TestBadConfig(t *testing.T) {
	fs := ext4.New(nvm.New(32<<20, sim.ZeroCosts()), ext4.DAX)
	if _, err := Run(fs, sqlite.WAL, Config{Records: 10, Ops: 100}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
