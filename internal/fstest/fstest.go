// Package fstest provides a differential test battery that every simulated
// file system must pass: read-your-writes against an in-memory reference
// model under randomized operation sequences, size semantics, truncation, and
// concurrent disjoint-range writers. Per-system durability/crash semantics
// are asserted in each system's own tests and in internal/crashtest.
package fstest

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Factory creates a fresh file system instance on a fresh device.
type Factory func(t *testing.T) vfs.FS

// Run executes the battery against the file system produced by factory.
func Run(t *testing.T, factory Factory) {
	t.Run("CreateOpenRemove", func(t *testing.T) { testCreateOpenRemove(t, factory(t)) })
	t.Run("WriteReadRoundTrip", func(t *testing.T) { testWriteRead(t, factory(t)) })
	t.Run("ExtendAndHoles", func(t *testing.T) { testExtendAndHoles(t, factory(t)) })
	t.Run("Truncate", func(t *testing.T) { testTruncate(t, factory(t)) })
	t.Run("RandomDifferential", func(t *testing.T) { testRandomDifferential(t, factory(t)) })
	t.Run("SmallUnalignedWrites", func(t *testing.T) { testSmallUnaligned(t, factory(t)) })
	t.Run("ConcurrentDisjointWriters", func(t *testing.T) { testConcurrentDisjoint(t, factory(t)) })
	t.Run("ConcurrentReadersWriters", func(t *testing.T) { testConcurrentReadersWriter(t, factory(t)) })
	t.Run("CloseReopen", func(t *testing.T) { testCloseReopen(t, factory(t)) })
}

func testCreateOpenRemove(t *testing.T, fs vfs.FS) {
	ctx := sim.NewCtx(0, 1)
	if _, err := fs.Open(ctx, "missing"); err != vfs.ErrNotExist {
		t.Fatalf("Open(missing) err = %v, want ErrNotExist", err)
	}
	f, err := fs.Create(ctx, "a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.WriteAt(ctx, []byte("x"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f2, err := fs.Open(ctx, "a")
	if err != nil {
		t.Fatalf("Open after close: %v", err)
	}
	if f2.Size() != 1 {
		t.Fatalf("size = %d, want 1", f2.Size())
	}
	if err := f2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := fs.Open(ctx, "a"); err != vfs.ErrNotExist {
		t.Fatalf("Open(removed) err = %v, want ErrNotExist", err)
	}
	if err := fs.Remove(ctx, "a"); err != vfs.ErrNotExist {
		t.Fatalf("Remove(missing) err = %v, want ErrNotExist", err)
	}
}

func testWriteRead(t *testing.T, fs vfs.FS) {
	ctx := sim.NewCtx(0, 1)
	f := mustCreate(t, fs, ctx, "f")
	defer f.Close(ctx)

	data := seqBytes(10000)
	if n, err := f.WriteAt(ctx, data, 0); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatalf("Fsync: %v", err)
	}
	buf := make([]byte, len(data))
	if n, err := f.ReadAt(ctx, buf, 0); err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read data differs from written data")
	}
	// Interior overwrite.
	patch := bytes.Repeat([]byte{0xEE}, 777)
	f.WriteAt(ctx, patch, 1234)
	copy(data[1234:], patch)
	f.ReadAt(ctx, buf, 0)
	if !bytes.Equal(buf, data) {
		t.Fatal("interior overwrite not visible")
	}
}

func testExtendAndHoles(t *testing.T, fs vfs.FS) {
	ctx := sim.NewCtx(0, 1)
	f := mustCreate(t, fs, ctx, "f")
	defer f.Close(ctx)

	// Write far beyond EOF: the hole must read back as zeros.
	if _, err := f.WriteAt(ctx, []byte("tail"), 100000); err != nil {
		t.Fatalf("WriteAt beyond EOF: %v", err)
	}
	if f.Size() != 100004 {
		t.Fatalf("size = %d, want 100004", f.Size())
	}
	buf := make([]byte, 4096)
	if n, err := f.ReadAt(ctx, buf, 50000); err != nil || n != 4096 {
		t.Fatalf("ReadAt hole = %d, %v", n, err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x, want 0", i, b)
		}
	}
	// Read straddling EOF is short.
	if n, _ := f.ReadAt(ctx, buf, 100000); n != 4 {
		t.Fatalf("read at EOF = %d bytes, want 4", n)
	}
	// Read past EOF reads nothing.
	if n, _ := f.ReadAt(ctx, buf, 200000); n != 0 {
		t.Fatalf("read past EOF = %d bytes, want 0", n)
	}
}

func testTruncate(t *testing.T, fs vfs.FS) {
	ctx := sim.NewCtx(0, 1)
	f := mustCreate(t, fs, ctx, "f")
	defer f.Close(ctx)

	f.WriteAt(ctx, seqBytes(8192), 0)
	if err := f.Truncate(ctx, 1000); err != nil {
		t.Fatalf("Truncate down: %v", err)
	}
	if f.Size() != 1000 {
		t.Fatalf("size = %d, want 1000", f.Size())
	}
	if err := f.Truncate(ctx, 5000); err != nil {
		t.Fatalf("Truncate up: %v", err)
	}
	buf := make([]byte, 5000)
	if n, err := f.ReadAt(ctx, buf, 0); err != nil || n != 5000 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	want := make([]byte, 5000)
	copy(want, seqBytes(1000))
	if !bytes.Equal(buf, want) {
		t.Fatal("truncate up did not zero the extension")
	}
}

// testRandomDifferential runs a long randomized op sequence against an
// in-memory reference and checks full-file equality periodically.
func testRandomDifferential(t *testing.T, fs vfs.FS) {
	ctx := sim.NewCtx(0, 99)
	f := mustCreate(t, fs, ctx, "f")
	defer f.Close(ctx)

	const maxSize = 1 << 20
	ref := make([]byte, 0, maxSize)
	rng := rand.New(rand.NewSource(12345))

	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // write
			off := int64(rng.Intn(maxSize / 2))
			n := rng.Intn(64*1024) + 1
			data := make([]byte, n)
			rng.Read(data)
			if _, err := f.WriteAt(ctx, data, off); err != nil {
				t.Fatalf("op %d WriteAt(%d,%d): %v", op, off, n, err)
			}
			if need := off + int64(n); need > int64(len(ref)) {
				ref = append(ref, make([]byte, need-int64(len(ref)))...)
			}
			copy(ref[off:], data)
		case 6, 7, 8: // read
			if len(ref) == 0 {
				continue
			}
			off := int64(rng.Intn(len(ref)))
			n := rng.Intn(32*1024) + 1
			buf := make([]byte, n)
			got, err := f.ReadAt(ctx, buf, off)
			if err != nil {
				t.Fatalf("op %d ReadAt(%d,%d): %v", op, off, n, err)
			}
			want := len(ref) - int(off)
			if want > n {
				want = n
			}
			if got != want {
				t.Fatalf("op %d ReadAt length = %d, want %d", op, got, want)
			}
			if !bytes.Equal(buf[:got], ref[off:off+int64(got)]) {
				t.Fatalf("op %d ReadAt(%d,%d) content mismatch", op, off, n)
			}
		case 9: // fsync
			if err := f.Fsync(ctx); err != nil {
				t.Fatalf("op %d Fsync: %v", op, err)
			}
		}
		if op%100 == 99 {
			checkWholeFile(t, ctx, f, ref, op)
		}
	}
	checkWholeFile(t, ctx, f, ref, -1)
}

func testSmallUnaligned(t *testing.T, fs vfs.FS) {
	ctx := sim.NewCtx(0, 7)
	f := mustCreate(t, fs, ctx, "f")
	defer f.Close(ctx)

	ref := make([]byte, 20000)
	// Many tiny unaligned writes crossing block and cache-line boundaries.
	for i := 0; i < 300; i++ {
		off := int64((i * 67) % 19000)
		n := i%93 + 1
		data := bytes.Repeat([]byte{byte(i + 1)}, n)
		f.WriteAt(ctx, data, off)
		copy(ref[off:], data)
		if i%37 == 0 {
			f.Fsync(ctx)
		}
	}
	buf := make([]byte, len(ref))
	n, err := f.ReadAt(ctx, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], ref[:n]) {
		t.Fatal("unaligned write content mismatch")
	}
}

func testConcurrentDisjoint(t *testing.T, fs vfs.FS) {
	setup := sim.NewCtx(100, 1)
	f := mustCreate(t, fs, setup, "f")
	const workers = 4
	const region = 256 * 1024
	// Preallocate so concurrent writers do not race on extension.
	f.WriteAt(setup, make([]byte, workers*region), 0)
	f.Fsync(setup)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id))
			base := int64(id) * region
			for i := 0; i < 50; i++ {
				off := base + int64(ctx.Rand.Intn(region-4096))
				data := bytes.Repeat([]byte{byte(id + 1)}, 1+ctx.Rand.Intn(4096))
				if _, err := f.WriteAt(ctx, data, off); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				if i%10 == 0 {
					if err := f.Fsync(ctx); err != nil {
						t.Errorf("worker %d fsync: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Every byte in worker w's region is either 0 or w+1.
	buf := make([]byte, workers*region)
	f.ReadAt(setup, buf, 0)
	for w := 0; w < workers; w++ {
		for i := 0; i < region; i++ {
			b := buf[w*region+i]
			if b != 0 && b != byte(w+1) {
				t.Fatalf("worker %d region byte %d = %d (cross-region corruption)", w, i, b)
			}
		}
	}
	f.Close(setup)
}

func testConcurrentReadersWriter(t *testing.T, fs vfs.FS) {
	setup := sim.NewCtx(100, 1)
	f := mustCreate(t, fs, setup, "f")
	defer f.Close(setup)
	const n = 64 * 1024
	f.WriteAt(setup, bytes.Repeat([]byte{0xAA}, n), 0)
	f.Fsync(setup)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One writer flips 4K chunks between two valid fill patterns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := sim.NewCtx(0, 3)
		for i := 0; i < 100; i++ {
			pat := byte(0xAA)
			if i%2 == 1 {
				pat = 0xBB
			}
			off := int64(ctx.Rand.Intn(n/4096)) * 4096
			f.WriteAt(ctx, bytes.Repeat([]byte{pat}, 4096), off)
		}
		close(stop)
	}()
	// Readers check that each aligned 4K chunk is uniformly one pattern
	// (write atomicity at the granularity our writer uses).
	for r := 1; r <= 2; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id))
			buf := make([]byte, 4096)
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := int64(ctx.Rand.Intn(n/4096)) * 4096
				f.ReadAt(ctx, buf, off)
				first := buf[0]
				if first != 0xAA && first != 0xBB {
					t.Errorf("unexpected byte %#x", first)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func testCloseReopen(t *testing.T, fs vfs.FS) {
	ctx := sim.NewCtx(0, 1)
	f := mustCreate(t, fs, ctx, "f")
	data := seqBytes(33333)
	f.WriteAt(ctx, data, 0)
	f.Fsync(ctx)
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Operations on a closed handle fail.
	if _, err := f.WriteAt(ctx, []byte("x"), 0); err != vfs.ErrClosed {
		t.Fatalf("WriteAt on closed = %v, want ErrClosed", err)
	}
	f2, err := fs.Open(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close(ctx)
	buf := make([]byte, len(data))
	if n, err := f2.ReadAt(ctx, buf, 0); err != nil || n != len(data) {
		t.Fatalf("ReadAt after reopen = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost across close/reopen")
	}
}

func checkWholeFile(t *testing.T, ctx *sim.Ctx, f vfs.File, ref []byte, op int) {
	t.Helper()
	if f.Size() != int64(len(ref)) {
		t.Fatalf("after op %d: size = %d, want %d", op, f.Size(), len(ref))
	}
	if len(ref) == 0 {
		return
	}
	buf := make([]byte, len(ref))
	n, err := f.ReadAt(ctx, buf, 0)
	if err != nil || n != len(ref) {
		t.Fatalf("after op %d: whole-file read = %d, %v", op, n, err)
	}
	if !bytes.Equal(buf, ref) {
		for i := range ref {
			if buf[i] != ref[i] {
				t.Fatalf("after op %d: first mismatch at byte %d: got %#x want %#x", op, i, buf[i], ref[i])
			}
		}
	}
}

func mustCreate(t *testing.T, fs vfs.FS, ctx *sim.Ctx, name string) vfs.File {
	t.Helper()
	f, err := fs.Create(ctx, name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	return f
}

func seqBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i/251)
	}
	return b
}
