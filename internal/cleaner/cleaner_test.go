package cleaner

import (
	"testing"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// fakeTarget scripts PassResults and records calls.
type fakeTarget struct {
	results []PassResult
	budgets []int64
	ckptOK  bool
	ckpts   int
}

func (t *fakeTarget) CleanPass(ctx *sim.Ctx, budget int64) PassResult {
	t.budgets = append(t.budgets, budget)
	if len(t.results) == 0 {
		return PassResult{Wrapped: true}
	}
	r := t.results[0]
	t.results = t.results[1:]
	return r
}

func (t *fakeTarget) Checkpoint(ctx *sim.Ctx) bool {
	t.ckpts++
	return t.ckptOK
}

func newTestCleaner(tg *fakeTarget, cfg Config) *Cleaner {
	return New(tg, cfg, sim.NewCtx(99, 1))
}

func TestMaybeRunGatesOnInterval(t *testing.T) {
	tg := &fakeTarget{ckptOK: true}
	c := newTestCleaner(tg, Config{Interval: 1000, Budget: 7})
	if c.MaybeRun(999) {
		t.Fatal("ran before the interval elapsed")
	}
	if !c.MaybeRun(1000) {
		t.Fatal("did not run at the interval")
	}
	if got := c.Stats().Passes; got != 1 {
		t.Fatalf("passes = %d, want 1", got)
	}
	if len(tg.budgets) != 1 || tg.budgets[0] != 7 {
		t.Fatalf("budgets = %v, want [7]", tg.budgets)
	}
	// The next pass is gated a full interval after the first finished.
	if c.MaybeRun(c.Ctx().Now() + c.Interval() - 1) {
		t.Fatal("ran again before the next interval")
	}
	if !c.MaybeRun(c.Ctx().Now() + c.Interval()) {
		t.Fatal("did not run at the next interval")
	}
}

func TestCheckpointOnlyOnWrappedPass(t *testing.T) {
	tg := &fakeTarget{
		ckptOK: true,
		results: []PassResult{
			{Wrapped: false}, // budget cut the pass short
			{Wrapped: true},
		},
	}
	c := newTestCleaner(tg, Config{Interval: 10})
	c.Force(10)
	if tg.ckpts != 0 {
		t.Fatal("checkpoint taken after a partial pass")
	}
	c.Force(c.Ctx().Now() + 10)
	if tg.ckpts != 1 || c.Stats().Checkpoints != 1 {
		t.Fatalf("ckpts = %d (stat %d), want 1", tg.ckpts, c.Stats().Checkpoints)
	}
}

func TestFailedCheckpointNotCounted(t *testing.T) {
	tg := &fakeTarget{ckptOK: false, results: []PassResult{{Wrapped: true}}}
	c := newTestCleaner(tg, Config{Interval: 10})
	c.Force(10)
	if tg.ckpts != 1 {
		t.Fatal("checkpoint not attempted")
	}
	if c.Stats().Checkpoints != 0 {
		t.Fatal("failed checkpoint counted")
	}
}

func TestAdaptiveBackoff(t *testing.T) {
	tg := &fakeTarget{
		ckptOK: true,
		results: []PassResult{
			{Contended: 3, SubtreesCleaned: 1, Wrapped: true}, // back off
			{Contended: 5, SubtreesCleaned: 0, Wrapped: true}, // back off again
			{Contended: 0, SubtreesCleaned: 2, Wrapped: true}, // recover
			{Contended: 0, SubtreesCleaned: 0, Wrapped: true}, // recover to floor
		},
	}
	c := newTestCleaner(tg, Config{Interval: 100, MaxBackoff: 4})
	c.Force(100)
	if got := c.Interval(); got != 200 {
		t.Fatalf("interval after contention = %d, want 200", got)
	}
	c.Force(c.Ctx().Now())
	if got := c.Interval(); got != 400 {
		t.Fatalf("interval after more contention = %d, want 400", got)
	}
	// MaxBackoff=4 caps at 400: another contended pass must not double.
	tg.results = append(tg.results[:0],
		PassResult{Contended: 9, Wrapped: true},
		PassResult{Contended: 0, Wrapped: true},
		PassResult{Contended: 0, Wrapped: true},
		PassResult{Contended: 0, Wrapped: true})
	c.Force(c.Ctx().Now())
	if got := c.Interval(); got != 400 {
		t.Fatalf("interval exceeded MaxBackoff cap: %d", got)
	}
	c.Force(c.Ctx().Now())
	if got := c.Interval(); got != 200 {
		t.Fatalf("interval after calm pass = %d, want 200", got)
	}
	c.Force(c.Ctx().Now())
	c.Force(c.Ctx().Now())
	if got := c.Interval(); got != 100 {
		t.Fatalf("interval did not return to the floor: %d", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	tg := &fakeTarget{
		ckptOK: true,
		results: []PassResult{
			{BlocksReclaimed: 10, SubtreesCleaned: 2, Contended: 1, Wrapped: true},
			{BlocksReclaimed: 5, Wrapped: true},
		},
	}
	c := newTestCleaner(tg, Config{Interval: 10})
	c.Force(10)
	c.Force(c.Ctx().Now())
	s := c.Stats()
	if s.Passes != 2 || s.BlocksReclaimed != 15 || s.Contended != 1 || s.Checkpoints != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMediaWriteBytesWithoutTally(t *testing.T) {
	c := newTestCleaner(&fakeTarget{}, Config{Interval: 10})
	if c.MediaWriteBytes() != 0 {
		t.Fatal("tally-less cleaner reported media bytes")
	}
	c.Ctx().Tally = &sim.MediaTally{}
	c.Ctx().Tally.WriteBytes.Add(123)
	if c.MediaWriteBytes() != 123 {
		t.Fatal("tally not read")
	}
}

// TestLagBlocksTracksLatestPass pins the LagBlocks contract: zero before any
// pass has completed, then exactly the LogBlocksAfter of the most recent
// pass — a last-value gauge, not a running delta — and the registered
// cleaner.lag_blocks metric reads the same number.
func TestLagBlocksTracksLatestPass(t *testing.T) {
	tg := &fakeTarget{
		ckptOK: true,
		results: []PassResult{
			{Wrapped: true, LogBlocksAfter: 120, BlocksReclaimed: 30},
			{Wrapped: true, LogBlocksAfter: 85, BlocksReclaimed: 35},
			{Wrapped: true, LogBlocksAfter: 0},
		},
	}
	c := newTestCleaner(tg, Config{Interval: 10})
	if got := c.LagBlocks(); got != 0 {
		t.Fatalf("LagBlocks before any pass = %d, want 0", got)
	}
	r := obs.NewRegistry()
	c.Register(r, "cleaner.")

	c.Force(10)
	if got := c.LagBlocks(); got != 120 {
		t.Fatalf("LagBlocks after pass 1 = %d, want 120", got)
	}
	if got := r.Snapshot().Values["cleaner.lag_blocks"]; got != 120 {
		t.Fatalf("cleaner.lag_blocks = %g, want 120 (gauge must read the same number)", got)
	}

	c.Force(c.Ctx().Now() + 10)
	if got := c.LagBlocks(); got != 85 {
		t.Fatalf("LagBlocks after pass 2 = %d, want 85 (latest pass, not a sum)", got)
	}

	// A pass that drains the log entirely drops the gauge back to zero.
	c.Force(c.Ctx().Now() + 10)
	if got := c.LagBlocks(); got != 0 {
		t.Fatalf("LagBlocks after drained pass = %d, want 0", got)
	}
}
