// Package cleaner schedules MGSP's background cleaning and checkpointing:
// an epoch-based pass over the open files that writes cold shadow subtrees
// back to their fallback, returns the freed log blocks to the allocator, and
// persists a checkpoint record so recovery can skip pre-checkpoint metadata
// replay. The paper has no online cleaner (logs live until file close); this
// subsystem bounds the log footprint and the recovery time of long-running
// workloads without touching the per-operation protocol.
//
// The package knows nothing about trees or logs — core.FS implements Target
// — so the scheduling policy (interval, budget, adaptive backoff) is
// testable against a fake in isolation.
package cleaner

import (
	"runtime"
	"sync/atomic"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// PassResult reports one cleaning pass.
type PassResult struct {
	// BlocksReclaimed counts log blocks returned to the allocator.
	BlocksReclaimed int64
	// SubtreesCleaned counts cold subtrees written back and reclaimed.
	SubtreesCleaned int
	// Contended counts subtrees skipped because foreground operations held
	// their locks — the adaptive-backoff signal.
	Contended int
	// Wrapped is true when the pass covered the whole namespace (no budget
	// cut-off), making a checkpoint meaningful.
	Wrapped bool
	// LogBlocksAfter is the number of live shadow-log blocks left on the
	// device when the pass finished — the blocks the cleaner has not (yet)
	// reclaimed, whether hot, contended, or over budget. It is the cleaner's
	// lag signal: a value that keeps rising across passes means foreground
	// writes are outrunning reclamation.
	LogBlocksAfter int64
}

// Target is the file system the cleaner drives (implemented by core.FS).
type Target interface {
	// CleanPass incrementally writes back cold subtrees under try-locks,
	// reclaiming at most budget log blocks (0 = unbounded) and resuming from
	// the previous pass's cursor.
	CleanPass(ctx *sim.Ctx, budget int64) PassResult
	// Checkpoint quiesces in-flight operations and persists a checkpoint
	// record; false means the quiesce gave up and no record was written.
	Checkpoint(ctx *sim.Ctx) bool
}

// Config sets the cleaning policy.
type Config struct {
	// Interval is the virtual-time period between passes (nanoseconds).
	Interval int64
	// Budget caps the blocks reclaimed per pass; 0 = unbounded.
	Budget int64
	// MaxBackoff bounds the contention backoff: the effective interval never
	// exceeds Interval*MaxBackoff. Defaults to 64.
	MaxBackoff int64
}

// Cleaner runs cleaning passes in virtual time. The simulation has no
// free-running threads, so foreground workers call MaybeRun after each
// operation and the first to notice the interval elapsed donates its
// goroutine; the pass's work is charged to the cleaner's private context,
// modeling a background thread that contends for media bandwidth without
// inflating any foreground clock.
type Cleaner struct {
	target Target
	cfg    Config
	ctx    *sim.Ctx

	running  atomic.Bool
	nextAt   atomic.Int64
	interval atomic.Int64

	passes      atomic.Int64
	reclaimed   atomic.Int64
	contended   atomic.Int64
	checkpoints atomic.Int64
	lagBlocks   atomic.Int64 // LogBlocksAfter of the most recent pass
}

// New builds a cleaner over target; ctx is the cleaner's private context
// (its virtual clock, and media tally if attribution is wanted).
func New(target Target, cfg Config, ctx *sim.Ctx) *Cleaner {
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 64
	}
	c := &Cleaner{target: target, cfg: cfg, ctx: ctx}
	c.interval.Store(cfg.Interval)
	c.nextAt.Store(cfg.Interval)
	return c
}

// MaybeRun runs one pass if the interval has elapsed at virtual time now.
// Cheap when it is not yet time; at most one pass runs at once (concurrent
// callers simply return). Reports whether a pass ran.
func (c *Cleaner) MaybeRun(now int64) bool {
	if now < c.nextAt.Load() {
		return false
	}
	if !c.running.CompareAndSwap(false, true) {
		return false
	}
	defer c.running.Store(false)
	if now < c.nextAt.Load() {
		return false // another pass got here first
	}
	c.run(now)
	return true
}

// Force runs a pass unconditionally (tools and tests), waiting out any pass
// already in flight.
func (c *Cleaner) Force(now int64) {
	for !c.running.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	defer c.running.Store(false)
	c.run(now)
}

func (c *Cleaner) run(now int64) {
	if now > c.ctx.Now() {
		c.ctx.AdvanceTo(now)
	}
	res := c.target.CleanPass(c.ctx, c.cfg.Budget)
	c.passes.Add(1)
	c.reclaimed.Add(res.BlocksReclaimed)
	c.contended.Add(int64(res.Contended))
	c.lagBlocks.Store(res.LogBlocksAfter)
	if res.Wrapped && c.target.Checkpoint(c.ctx) {
		c.checkpoints.Add(1)
	}
	c.adapt(res)
	c.nextAt.Store(c.ctx.Now() + c.interval.Load())
}

// adapt is the contention backoff: a pass that skipped more subtrees to
// foreground lock conflicts than it cleaned doubles the interval (bounded by
// MaxBackoff); a conflict-free pass halves it back toward the configured
// floor. This keeps the cleaner off hot locks so enabling it does not
// regress the locking ablations.
func (c *Cleaner) adapt(res PassResult) {
	cur := c.interval.Load()
	switch {
	case res.Contended > res.SubtreesCleaned:
		if next := cur * 2; next <= c.cfg.Interval*c.cfg.MaxBackoff {
			c.interval.Store(next)
		}
	case res.Contended == 0 && cur > c.cfg.Interval:
		next := cur / 2
		if next < c.cfg.Interval {
			next = c.cfg.Interval
		}
		c.interval.Store(next)
	}
}

// Stats is a snapshot of the cleaner's cumulative counters.
type Stats struct {
	Passes          int64
	BlocksReclaimed int64
	Contended       int64
	Checkpoints     int64
}

// Stats returns the counters.
func (c *Cleaner) Stats() Stats {
	return Stats{
		Passes:          c.passes.Load(),
		BlocksReclaimed: c.reclaimed.Load(),
		Contended:       c.contended.Load(),
		Checkpoints:     c.checkpoints.Load(),
	}
}

// Register publishes the policy-level view into an obs registry under
// prefix: the adaptive (backed-off) interval, foreground lock contention,
// and the media traffic attributed to the cleaner's private context — the
// scheduling state the core-side pass counters cannot show.
func (c *Cleaner) Register(r *obs.Registry, prefix string) {
	r.RegisterFunc(prefix+"interval_ns", func() float64 { return float64(c.interval.Load()) })
	r.RegisterFunc(prefix+"contended", func() float64 { return float64(c.contended.Load()) })
	r.RegisterFunc(prefix+"media_write_bytes", func() float64 { return float64(c.MediaWriteBytes()) })
	r.RegisterFunc(prefix+"lag_blocks", func() float64 { return float64(c.LagBlocks()) })
}

// LagBlocks returns the live shadow-log blocks left behind by the most
// recent cleaning pass (0 before the first pass completes). This is the
// number the server's admission control compares against its high-water
// thresholds, and the same number `mgspstat` reads as cleaner.lag_blocks —
// one source of truth for "how far behind is the cleaner".
func (c *Cleaner) LagBlocks() int64 { return c.lagBlocks.Load() }

// Interval returns the current (possibly backed-off) pass interval.
func (c *Cleaner) Interval() int64 { return c.interval.Load() }

// Ctx returns the cleaner's private context.
func (c *Cleaner) Ctx() *sim.Ctx { return c.ctx }

// MediaWriteBytes returns the media write traffic attributed to the
// cleaner's context (0 when no tally is attached).
func (c *Cleaner) MediaWriteBytes() int64 {
	if c.ctx.Tally == nil {
		return 0
	}
	return c.ctx.Tally.WriteBytes.Load()
}
