// Package vfs defines the common file-system interface implemented by every
// system under evaluation (Ext4/Ext4-DAX, NOVA, Libnvmmio, MGSP), so that the
// FIO-like workload generator, the SQLite-like engine, and the crash-test
// harness can drive any of them interchangeably — the same role the POSIX
// syscall layer and LD_PRELOAD interception play in the paper's artifact.
package vfs

import (
	"errors"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// Errors shared by all file-system implementations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrClosed   = errors.New("vfs: file is closed")
	ErrReadOnly = errors.New("vfs: operation not permitted")
)

// FS is a mounted file system on a simulated NVM device.
type FS interface {
	// Name returns the system's display name ("Ext4-DAX", "NOVA", ...).
	Name() string
	// Create creates (or truncates) a file and opens it.
	Create(ctx *sim.Ctx, name string) (File, error)
	// Open opens an existing file.
	Open(ctx *sim.Ctx, name string) (File, error)
	// Remove deletes a file that is not currently open.
	Remove(ctx *sim.Ctx, name string) error
	// Device exposes the underlying device for media-level accounting.
	Device() *nvm.Device
}

// File is an open file handle. Implementations must support concurrent calls
// from different workers (each with its own sim.Ctx), providing whatever
// isolation the modeled system provides.
type File interface {
	// ReadAt reads len(p) bytes at offset off. Short reads at EOF return the
	// number of bytes read and no error (callers know the file size).
	ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error)
	// WriteAt writes len(p) bytes at offset off, extending the file if
	// needed, and returns the number of bytes written.
	WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error)
	// Fsync makes previously written data durable according to the modeled
	// system's semantics (a no-op for systems with synchronous operations).
	Fsync(ctx *sim.Ctx) error
	// Truncate sets the file size.
	Truncate(ctx *sim.Ctx, size int64) error
	// Size returns the current file size in bytes.
	Size() int64
	// Close releases the handle. For MGSP this triggers log write-back when
	// the last handle closes (§III-D of the paper).
	Close(ctx *sim.Ctx) error
}

// ConsistencyLevel describes the crash-consistency guarantee a system gives,
// used by the crash-test harness to know what to assert.
type ConsistencyLevel int

const (
	// MetadataOnly: file data may be garbage after a crash (Ext4-DAX).
	MetadataOnly ConsistencyLevel = iota
	// SyncAtomic: data up to the last successful fsync is durable and the
	// fsync boundary is atomic (Libnvmmio).
	SyncAtomic
	// OpAtomic: every completed write is durable and an interrupted write is
	// all-or-nothing (NOVA, MGSP).
	OpAtomic
)

// Guarantees is implemented by file systems to advertise their consistency
// level to the crash-test harness.
type Guarantees interface {
	Consistency() ConsistencyLevel
}
