package cache

import (
	"bytes"
	"sync"
	"testing"

	"mgsp/internal/sim"
)

const bs = 4096

func filled(b byte) []byte {
	buf := make([]byte, bs)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestReadMissThenInstallHit(t *testing.T) {
	p := New(64, bs)
	dst := make([]byte, bs)
	if p.Read(0, 3, dst, 0) {
		t.Fatal("read of empty pool must miss")
	}
	if !p.Install(0, 3, filled(0xAB), false) {
		t.Fatal("install into empty pool must succeed")
	}
	if !p.Read(0, 3, dst, 0) {
		t.Fatal("read after install must hit")
	}
	if !bytes.Equal(dst, filled(0xAB)) {
		t.Fatal("hit returned wrong content")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestReadPartialOffset(t *testing.T) {
	p := New(64, bs)
	buf := filled(0)
	copy(buf[100:], []byte("hello"))
	p.Install(7, 0, buf, false)
	dst := make([]byte, 5)
	if !p.Read(7, 0, dst, 100) {
		t.Fatal("expected hit")
	}
	if string(dst) != "hello" {
		t.Fatalf("got %q", dst)
	}
}

func TestKeyIsolation(t *testing.T) {
	p := New(64, bs)
	p.Install(1, 5, filled(0x11), false)
	dst := make([]byte, bs)
	if p.Read(2, 5, dst, 0) {
		t.Fatal("different slot must miss")
	}
	if p.Read(1, 6, dst, 0) {
		t.Fatal("different block must miss")
	}
}

func TestPatchVisibleAndCoW(t *testing.T) {
	p := New(64, bs)
	p.Install(0, 0, filled(0x00), false)
	dst := make([]byte, bs)
	p.Read(0, 0, dst, 0) // hold a reference to the pre-patch buffer
	before := dst

	if !p.Patch(0, 0, 10, []byte{0xFF, 0xFF}, false) {
		t.Fatal("patch of present frame must succeed")
	}
	after := make([]byte, bs)
	p.Read(0, 0, after, 0)
	if after[10] != 0xFF || after[11] != 0xFF || after[9] != 0 {
		t.Fatal("patch content wrong")
	}
	// Copy-on-write: the earlier copy must be untouched.
	if before[10] != 0 {
		t.Fatal("patch mutated a published buffer in place")
	}
	if p.Patch(9, 9, 0, []byte{1}, false) {
		t.Fatal("patch of absent frame must fail")
	}
}

func TestDirtyLifecycle(t *testing.T) {
	p := New(64, bs)
	p.Install(0, 0, filled(0x01), false)
	if p.DirtyCount() != 0 {
		t.Fatal("clean install must not count dirty")
	}
	if !p.Patch(0, 0, 0, []byte{0x02}, true) {
		t.Fatal("dirty patch failed")
	}
	if p.DirtyCount() != 1 {
		t.Fatalf("DirtyCount=%d, want 1", p.DirtyCount())
	}
	// Re-dirtying must not double count.
	p.Patch(0, 0, 1, []byte{0x03}, true)
	if p.DirtyCount() != 1 {
		t.Fatalf("DirtyCount=%d after second patch, want 1", p.DirtyCount())
	}
	slots := p.DirtySlots()
	if len(slots) != 1 || slots[0] != 0 {
		t.Fatalf("DirtySlots=%v", slots)
	}
	dirty := p.CollectDirty(0)
	if len(dirty) != 1 || dirty[0].Block != 0 {
		t.Fatalf("CollectDirty=%v", dirty)
	}
	if dirty[0].Data[0] != 0x02 || dirty[0].Data[1] != 0x03 {
		t.Fatal("collected content wrong")
	}
	if !p.MarkClean(dirty[0]) {
		t.Fatal("MarkClean of unchanged frame must succeed")
	}
	if p.DirtyCount() != 0 {
		t.Fatal("MarkClean must drop the dirty count")
	}
}

func TestMarkCleanVersionGuard(t *testing.T) {
	p := New(64, bs)
	p.Install(0, 0, filled(0x01), true)
	dirty := p.CollectDirty(0)
	// A buffered write re-patches the frame while the drain is mid-flight.
	p.Patch(0, 0, 0, []byte{0x55}, true)
	if p.MarkClean(dirty[0]) {
		t.Fatal("MarkClean must refuse: frame was re-patched since collection")
	}
	if p.DirtyCount() != 1 {
		t.Fatal("re-patched frame must stay dirty")
	}
	// The next collection sees the newer content and cleans fine.
	dirty = p.CollectDirty(0)
	if dirty[0].Data[0] != 0x55 {
		t.Fatal("second collection returned stale content")
	}
	if !p.MarkClean(dirty[0]) {
		t.Fatal("second MarkClean must succeed")
	}
}

func TestCleanInstallDoesNotClobberDirty(t *testing.T) {
	p := New(64, bs)
	p.Install(0, 0, filled(0x01), true)
	// A read-side miss fill racing the buffered write must not overwrite
	// the (newer) buffered content.
	if !p.Install(0, 0, filled(0x02), false) {
		t.Fatal("clean install over dirty must report success (frame present)")
	}
	dst := make([]byte, bs)
	p.Read(0, 0, dst, 0)
	if dst[0] != 0x01 {
		t.Fatal("clean install clobbered dirty frame content")
	}
	if p.DirtyCount() != 1 {
		t.Fatal("frame must remain dirty")
	}
}

func TestClockEvictionSkipsDirty(t *testing.T) {
	p := New(1, bs) // one set, `ways` frames
	if p.Frames() != ways {
		t.Fatalf("Frames=%d, want %d", p.Frames(), ways)
	}
	// Fill the set: one dirty frame, rest clean.
	p.Install(0, 0, filled(0x00), true)
	for b := int64(1); b < ways; b++ {
		p.Install(0, b, filled(byte(b)), false)
	}
	// Overflow: a new block must evict a clean frame, never the dirty one.
	if !p.Install(0, 100, filled(0x64), false) {
		t.Fatal("install must evict a clean frame")
	}
	dst := make([]byte, bs)
	if !p.Read(0, 0, dst, 0) {
		t.Fatal("dirty frame must never be evicted")
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", p.Stats().Evictions)
	}
}

func TestAllDirtySetRefusesInstall(t *testing.T) {
	p := New(1, bs)
	for b := int64(0); b < ways; b++ {
		p.Install(0, b, filled(byte(b)), true)
	}
	if p.Install(0, 100, filled(0x64), false) {
		t.Fatal("install into an all-dirty set must refuse")
	}
	// After draining one frame the set accepts again.
	d := p.CollectDirty(0)
	p.MarkClean(d[0])
	if !p.Install(0, 100, filled(0x64), false) {
		t.Fatal("install must succeed after a drain freed a frame")
	}
}

func TestInvalidateSlot(t *testing.T) {
	p := New(64, bs)
	p.Install(3, 0, filled(0x01), true)
	p.Install(3, 1, filled(0x02), false)
	p.Install(4, 0, filled(0x03), false)
	p.InvalidateSlot(3)
	dst := make([]byte, bs)
	if p.Read(3, 0, dst, 0) || p.Read(3, 1, dst, 0) {
		t.Fatal("invalidated slot must miss")
	}
	if !p.Read(4, 0, dst, 0) {
		t.Fatal("other slots must survive invalidation")
	}
	if p.DirtyCount() != 0 {
		t.Fatal("invalidation must release dirty accounting")
	}
}

// TestOptimisticReadHammer races latch-free readers against patchers: under
// -race this validates the seqlock protocol (atomics + immutable buffers),
// and the uniformity check validates that no reader ever observes a torn
// (half-patched) block.
func TestOptimisticReadHammer(t *testing.T) {
	p := New(8, bs)
	p.Install(0, 0, filled(0x00), false)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, bs)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !p.Read(0, 0, dst, 0) {
					t.Error("frame vanished")
					return
				}
				first := dst[0]
				for i := range dst {
					if dst[i] != first {
						t.Errorf("torn read: dst[0]=%#x dst[%d]=%#x", first, i, dst[i])
						return
					}
				}
			}
		}()
	}
	for v := byte(1); v <= 200; v++ {
		if !p.Patch(0, 0, 0, filled(v), false) {
			t.Fatal("patch failed")
		}
	}
	close(stop)
	wg.Wait()
}

// fakeTarget counts FlushPass invocations and clears the pool's dirty
// frames the way core's drain would.
type fakeTarget struct {
	pool   *Pool
	passes int
}

func (ft *fakeTarget) FlushPass(ctx *sim.Ctx) FlushResult {
	ft.passes++
	var drained int64
	for _, slot := range ft.pool.DirtySlots() {
		for _, d := range ft.pool.CollectDirty(slot) {
			if ft.pool.MarkClean(d) {
				drained++
			}
		}
	}
	return FlushResult{Drained: drained, DirtyAfter: ft.pool.DirtyCount()}
}

func TestFlusherIntervalTrigger(t *testing.T) {
	p := New(64, bs)
	ft := &fakeTarget{pool: p}
	fl := NewFlusher(ft, p, 1000, 1<<40, sim.NewCtx(99, 0))
	if fl.MaybeRun(999) {
		t.Fatal("must not fire before the interval")
	}
	if !fl.MaybeRun(1000) {
		t.Fatal("must fire at the interval")
	}
	if ft.passes != 1 {
		t.Fatalf("passes=%d, want 1", ft.passes)
	}
}

func TestFlusherWatermarkTrigger(t *testing.T) {
	p := New(64, bs)
	ft := &fakeTarget{pool: p}
	fl := NewFlusher(ft, p, 1<<40, 2, sim.NewCtx(99, 0))
	p.Install(0, 0, filled(1), true)
	if fl.MaybeRun(0) {
		t.Fatal("below watermark, frozen clock: must not fire")
	}
	p.Install(0, 1, filled(2), true)
	// Virtual time never advances (the ZeroCosts/torture regime) — the
	// watermark alone must trigger the drain.
	if !fl.MaybeRun(0) {
		t.Fatal("at watermark the flusher must fire even at now=0")
	}
	if p.DirtyCount() != 0 {
		t.Fatal("pass must have drained the pool")
	}
	if fl.Drained() != 2 {
		t.Fatalf("Drained=%d, want 2", fl.Drained())
	}
}
