// The flusher is the write-back drain companion to the frame pool: the
// donated-goroutine scheduler (same shape as internal/cleaner) that turns
// dirty DRAM frames back into durable shadow-log commits. Like the cleaner,
// it has no free-running thread — foreground workers call MaybeRun after
// each operation and the first to notice either trigger donates its
// goroutine, with the pass's media work charged to the flusher's private
// context.
//
// Two triggers, because the torture harness runs under sim.ZeroCosts where
// virtual time never advances: an interval in virtual nanoseconds (the
// steady-state cadence) and a dirty-frame watermark (fires regardless of
// the clock once enough acked write-back data is buffered). Either alone
// would be wrong — interval-only never drains under frozen time,
// watermark-only lets a trickle of dirty frames sit forever.
package cache

import (
	"runtime"
	"sync/atomic"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// FlushResult reports one drain pass.
type FlushResult struct {
	// Drained counts frames made durable and marked clean by the pass.
	Drained int64
	// DirtyAfter is the pool's dirty-frame count when the pass finished —
	// nonzero when frames were re-dirtied mid-drain or a file's drain failed.
	DirtyAfter int64
}

// FlushTarget is the file system the flusher drives (implemented by
// core.FS): one pass drains every file that owns dirty frames, batching
// per-file block runs into WriteMulti through the shadow-log commit path.
type FlushTarget interface {
	FlushPass(ctx *sim.Ctx) FlushResult
}

// Flusher schedules drain passes in virtual time. At most one pass runs at
// once; concurrent MaybeRun callers return immediately.
type Flusher struct {
	target    FlushTarget
	pool      *Pool
	interval  int64
	watermark int64
	ctx       *sim.Ctx

	running atomic.Bool
	nextAt  atomic.Int64

	passes  atomic.Int64
	drained atomic.Int64
}

// NewFlusher builds a flusher over target draining pool. interval is the
// virtual-time period between passes; watermark (≥1 enforced) is the dirty
// frame count that triggers an immediate pass. ctx is the flusher's private
// context (its clock, and media tally for attribution).
func NewFlusher(target FlushTarget, pool *Pool, interval, watermark int64, ctx *sim.Ctx) *Flusher {
	if watermark < 1 {
		watermark = 1
	}
	f := &Flusher{target: target, pool: pool, interval: interval, watermark: watermark, ctx: ctx}
	f.nextAt.Store(interval)
	return f
}

// MaybeRun runs one drain pass if the interval has elapsed at virtual time
// now or the pool is at the dirty watermark. Cheap when neither holds.
// Reports whether a pass ran.
func (f *Flusher) MaybeRun(now int64) bool {
	if now < f.nextAt.Load() && f.pool.dirty.Load() < f.watermark {
		return false
	}
	if !f.running.CompareAndSwap(false, true) {
		return false
	}
	defer f.running.Store(false)
	if now < f.nextAt.Load() && f.pool.dirty.Load() < f.watermark {
		return false // another pass got here first
	}
	f.run(now)
	return true
}

// Force runs a pass unconditionally (Fsync-independent tests and tools),
// waiting out any pass already in flight.
func (f *Flusher) Force(now int64) {
	for !f.running.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	defer f.running.Store(false)
	f.run(now)
}

func (f *Flusher) run(now int64) {
	if now > f.ctx.Now() {
		f.ctx.AdvanceTo(now)
	}
	res := f.target.FlushPass(f.ctx)
	f.passes.Add(1)
	f.drained.Add(res.Drained)
	f.nextAt.Store(f.ctx.Now() + f.interval)
}

// Passes returns the number of drain passes run.
func (f *Flusher) Passes() int64 { return f.passes.Load() }

// Drained returns the cumulative frames made durable by drain passes.
func (f *Flusher) Drained() int64 { return f.drained.Load() }

// Watermark returns the dirty-frame trigger threshold.
func (f *Flusher) Watermark() int64 { return f.watermark }

// Ctx returns the flusher's private context.
func (f *Flusher) Ctx() *sim.Ctx { return f.ctx }

// MediaWriteBytes returns the media write traffic attributed to the
// flusher's context (0 when no tally is attached) — the write-back drain
// share of total media traffic.
func (f *Flusher) MediaWriteBytes() int64 {
	if f.ctx.Tally == nil {
		return 0
	}
	return f.ctx.Tally.WriteBytes.Load()
}

// Register publishes the flusher's scheduling view into r under prefix
// (core uses "flusher."): pass/drain counters and attributed media bytes.
func (f *Flusher) Register(r *obs.Registry, prefix string) {
	r.RegisterFunc(prefix+"passes", func() float64 { return float64(f.passes.Load()) })
	r.RegisterFunc(prefix+"drained", func() float64 { return float64(f.drained.Load()) })
	r.RegisterFunc(prefix+"media_write_bytes", func() float64 { return float64(f.MediaWriteBytes()) })
}
