// Package cache is MGSP's volatile DRAM frame tier: a fixed-capacity,
// set-associative pool of block-sized frames keyed by (file slot, block)
// sitting between the vfs API and the shadow tree. Reads are optimistic and
// latch-free — a reader copies from a frame and validates a per-frame
// version counter (Lersch et al.'s optimistic-consistency protocol), never
// taking a latch on the hit path — while installs, patches, and clock
// eviction serialize on a per-set mutex that is only ever held across pure
// DRAM work, never across a media operation.
//
// Crash consistency never depends on this package: frames are volatile,
// dirty frames hold acked-but-undurable write-back data that only becomes
// durable when core drains it through the ordinary shadow-log commit path
// (WriteMulti batches), and a remount always starts from an empty pool. A
// torn flusher mid-drain is therefore indistinguishable from unbatched
// writes — see DESIGN.md §13.
//
// Concurrency protocol (the part -race cares about): every frame field that
// the latch-free reader touches is atomic, and frame content lives behind an
// atomic.Pointer to an immutable buffer. Mutations never write a published
// buffer in place — they copy, patch the copy, and swap the pointer inside
// an odd/even seqlock window on the version counter. A reader that observed
// an even version before and after its copy saw one consistent (key, data)
// pair; anything else retries and finally falls back to the set latch, so a
// present frame is never silently bypassed (write-back correctness: a miss
// must imply the media is current).
package cache

import (
	"sync"
	"sync/atomic"

	"mgsp/internal/obs"
)

// ways is the set associativity. Eight frames per set keeps the optimistic
// probe short (at most eight version loads) while giving the clock hand
// enough clean candidates that a single pinned-dirty frame cannot stall
// eviction for a whole set.
const ways = 8

// optimisticRetries bounds the latch-free attempts before a read escalates
// to the set latch. Conflicts are short (a patch is one buffer swap), so one
// retry usually suffices; the bound keeps the worst case finite.
const optimisticRetries = 3

// frame is one cached block. All fields the latch-free read path touches are
// atomics; data points to an immutable buffer (copy-on-write on every patch).
// ver is the seqlock: odd while a mutation is in progress, bumped to a new
// even value when it publishes. slot is -1 while the frame is empty.
type frame struct {
	ver   atomic.Uint64 //mgsp:seqlock
	slot  atomic.Int64
	block atomic.Int64
	data  atomic.Pointer[[]byte]
	dirty atomic.Bool
	ref   atomic.Bool // clock reference bit
}

// set is one associativity set: a mutex serializing mutations (pure DRAM,
// never held across media ops) and a clock hand for eviction.
type set struct {
	mu     sync.Mutex
	hand   int
	frames [ways]frame
}

// Pool is the frame pool. The zero value is not usable; call New.
type Pool struct {
	sets      []set
	mask      int64
	blockSize int64

	// Metrics (registered under "cache." by Register). dirty is the live
	// dirty-frame count, also the flusher's watermark signal.
	hits         obs.Counter
	misses       obs.Counter
	evictions    obs.Counter
	readRetry    obs.Counter
	flushBatches obs.Counter
	dirty        atomic.Int64
}

// New builds a pool of at least `frames` block-sized frames. The set count
// rounds up to a power of two, so the real capacity can exceed the request
// by up to one set; Frames reports the actual value.
func New(frames int, blockSize int64) *Pool {
	if frames < 1 {
		frames = 1
	}
	nsets := 1
	for nsets*ways < frames {
		nsets <<= 1
	}
	p := &Pool{sets: make([]set, nsets), mask: int64(nsets - 1), blockSize: blockSize}
	for s := range p.sets {
		for w := range p.sets[s].frames {
			p.sets[s].frames[w].slot.Store(-1)
		}
	}
	return p
}

// Frames returns the pool capacity in frames.
func (p *Pool) Frames() int { return len(p.sets) * ways }

// BlockSize returns the frame size in bytes.
func (p *Pool) BlockSize() int64 { return p.blockSize }

// DirtyCount returns the number of dirty frames (the flusher watermark).
func (p *Pool) DirtyCount() int64 { return p.dirty.Load() }

func (p *Pool) setFor(slot int, block int64) *set {
	// Fibonacci-style mix so files sharing low block numbers spread out.
	h := (uint64(block)*0x9E3779B97F4A7C15 + uint64(slot)*0xFF51AFD7ED558CCD)
	return &p.sets[int64(h>>32)&p.mask]
}

// Read copies len(dst) bytes at byte offset off within the cached (slot,
// block) frame into dst. It is latch-free on the hit path: copy, then
// validate the version; on repeated conflicts it escalates to the set latch
// so a present frame is never bypassed (in write-back mode the frame may be
// the only holder of acked data, so "fall through to media" is only sound
// when the frame is truly absent). Returns false only on a true miss.
func (p *Pool) Read(slot int, block int64, dst []byte, off int) bool {
	s := p.setFor(slot, block)
	hit, retries, escalate := readOptimistic(s, slot, block, dst, off)
	if retries > 0 {
		p.readRetry.Add(retries)
	}
	if escalate {
		// Optimistic attempts kept colliding with patches: take the latch once.
		s.mu.Lock()
		defer s.mu.Unlock()
		if f := s.find(slot, block); f != nil {
			copy(dst, (*f.data.Load())[off:off+len(dst)])
			f.ref.Store(true)
			p.hits.Add(1)
			return true
		}
		p.misses.Add(1)
		return false
	}
	if hit {
		p.hits.Add(1)
		return true
	}
	p.misses.Add(1)
	return false
}

// readOptimistic runs the latch-free attempts over the set. Its seqlock read
// sections are pure copies — all metric accounting is returned to the caller,
// because an effect inside an unvalidated section cannot be rolled back when
// the validation fails. escalate reports that every attempt conflicted and
// the caller must retry under the set latch.
func readOptimistic(s *set, slot int, block int64, dst []byte, off int) (hit bool, retries int64, escalate bool) {
	for attempt := 0; attempt < optimisticRetries; attempt++ {
		conflict := false
		for w := range s.frames {
			f := &s.frames[w]
			v1 := f.ver.Load()
			if v1&1 != 0 {
				conflict = true
				continue
			}
			if f.slot.Load() != int64(slot) || f.block.Load() != block {
				// Re-validate before ruling the frame out: if it mutated under
				// us the identity snapshot is stale, and "absent" must not be
				// concluded from it (write-back: a miss falls through to media).
				if f.ver.Load() != v1 {
					conflict = true
				}
				continue
			}
			data := f.data.Load()
			if data == nil {
				if f.ver.Load() != v1 {
					conflict = true
				}
				continue
			}
			copy(dst, (*data)[off:off+len(dst)])
			if f.ver.Load() == v1 {
				f.ref.Store(true)
				return true, retries, false
			}
			conflict = true
		}
		if !conflict {
			return false, retries, false
		}
		retries++
	}
	return false, retries, true
}

// find locates the frame for (slot, block) in s. Callers hold s.mu.
func (s *set) find(slot int, block int64) *frame {
	for w := range s.frames {
		f := &s.frames[w]
		if f.slot.Load() == int64(slot) && f.block.Load() == block && f.data.Load() != nil {
			return f
		}
	}
	return nil
}

// publish runs one seqlock-protected mutation of f. Callers hold the set
// mutex (so writers never collide and the odd window is exclusive).
func publish(f *frame, mutate func()) {
	f.ver.Add(1) // odd: mutation in progress
	mutate()
	f.ver.Add(1) // even: published
}

// Install inserts a clean-or-dirty frame for (slot, block), taking ownership
// of data (callers must not touch it afterwards; len(data) must equal the
// block size). If the key is already present the existing frame's content is
// replaced — unless it is dirty and the install is clean, in which case the
// buffered content wins and the install is a no-op (the dirty frame is at
// least as new as anything read from media). The victim is an empty way or
// the clock's next clean frame; a set whose frames are all dirty refuses
// (returns false) — dirty frames are pinned until drained, which is what
// makes "miss implies media is current" hold in write-back mode.
func (p *Pool) Install(slot int, block int64, data []byte, dirty bool) bool {
	s := p.setFor(slot, block)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.find(slot, block); f != nil {
		if f.dirty.Load() && !dirty {
			f.ref.Store(true)
			return true
		}
		if dirty && !f.dirty.Load() {
			p.dirty.Add(1)
		}
		publish(f, func() {
			f.data.Store(&data)
			f.dirty.Store(dirty)
		})
		f.ref.Store(true)
		return true
	}
	f := s.victim(p)
	if f == nil {
		return false
	}
	if dirty {
		p.dirty.Add(1)
	}
	publish(f, func() {
		f.slot.Store(int64(slot))
		f.block.Store(block)
		f.data.Store(&data)
		f.dirty.Store(dirty)
	})
	f.ref.Store(true)
	return true
}

// victim picks an empty way, or sweeps the clock hand over clean frames
// (second chance on the ref bit), skipping dirty ones. Callers hold s.mu.
func (s *set) victim(p *Pool) *frame {
	for w := range s.frames {
		if s.frames[w].data.Load() == nil {
			return &s.frames[w]
		}
	}
	// Two sweeps: the first clears ref bits, the second must find a clean
	// frame unless every frame is dirty.
	for sweep := 0; sweep < 2*ways; sweep++ {
		f := &s.frames[s.hand]
		s.hand = (s.hand + 1) % ways
		if f.dirty.Load() {
			continue
		}
		if f.ref.Swap(false) {
			continue
		}
		p.evictions.Add(1)
		return f
	}
	return nil
}

// Patch overlays p[...] at byte offset off of the cached (slot, block)
// frame, copy-on-write: the published buffer is never written in place.
// markDirty=true is the write-back buffered path (the frame becomes the only
// holder of the acked data until drained); markDirty=false mirrors a
// committed direct write and leaves the dirty flag as it was. Returns false
// when the frame is absent — the caller then falls back to the direct path.
func (p *Pool) Patch(slot int, block int64, off int, data []byte, markDirty bool) bool {
	s := p.setFor(slot, block)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.find(slot, block)
	if f == nil {
		return false
	}
	old := *f.data.Load()
	buf := make([]byte, len(old))
	copy(buf, old)
	copy(buf[off:], data)
	if markDirty && !f.dirty.Load() {
		p.dirty.Add(1)
	}
	publish(f, func() {
		f.data.Store(&buf)
		if markDirty {
			f.dirty.Store(true)
		}
	})
	f.ref.Store(true)
	return true
}

// DirtyFrame is one dirty frame captured by CollectDirty: the block, the
// immutable content buffer at capture time, and the version that lets
// MarkClean detect a concurrent re-patch.
type DirtyFrame struct {
	Block int64
	Data  []byte
	f     *frame
	s     *set
	ver   uint64
}

// CollectDirty snapshots the dirty frames of one file slot. The returned
// buffers are the frames' immutable published content — safe to read (and
// hand to a media write) without any latch, because patches swap buffers
// instead of mutating them.
func (p *Pool) CollectDirty(slot int) []DirtyFrame {
	var out []DirtyFrame
	for i := range p.sets {
		s := &p.sets[i]
		s.mu.Lock()
		for w := range s.frames {
			f := &s.frames[w]
			if f.dirty.Load() && f.slot.Load() == int64(slot) {
				out = append(out, DirtyFrame{
					Block: f.block.Load(),
					Data:  *f.data.Load(),
					f:     f,
					s:     s,
					ver:   f.ver.Load(),
				})
			}
		}
		s.mu.Unlock()
	}
	return out
}

// DirtySlots returns the distinct file slots that currently own dirty
// frames — the flusher's work list.
func (p *Pool) DirtySlots() []int {
	seen := map[int]bool{}
	var out []int
	for i := range p.sets {
		s := &p.sets[i]
		s.mu.Lock()
		for w := range s.frames {
			f := &s.frames[w]
			if f.dirty.Load() {
				if slot := int(f.slot.Load()); !seen[slot] {
					seen[slot] = true
					out = append(out, slot)
				}
			}
		}
		s.mu.Unlock()
	}
	return out
}

// MarkClean clears the dirty flag of a collected frame — but only if its
// version is unchanged since CollectDirty. A version bump means a buffered
// write re-patched the frame while its old content was being drained; the
// frame then stays dirty and the next drain picks up the newer content.
// Reports whether the frame was cleaned.
func (p *Pool) MarkClean(d DirtyFrame) bool {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.f.ver.Load() != d.ver || !d.f.dirty.Load() {
		return false
	}
	d.f.dirty.Store(false)
	p.dirty.Add(-1)
	return true
}

// InvalidateSlot drops every frame (clean or dirty) belonging to the file
// slot — remove, truncate, and create-over-existing, where the cached
// content no longer describes the file. Dropped dirty frames are acked but
// undurable write-back data; all three callers are destroying that data at
// the file level anyway.
func (p *Pool) InvalidateSlot(slot int) {
	for i := range p.sets {
		s := &p.sets[i]
		s.mu.Lock()
		for w := range s.frames {
			f := &s.frames[w]
			if f.slot.Load() != int64(slot) || f.data.Load() == nil {
				continue
			}
			if f.dirty.Load() {
				p.dirty.Add(-1)
			}
			publish(f, func() {
				f.slot.Store(-1)
				f.data.Store(nil)
				f.dirty.Store(false)
			})
			f.ref.Store(false)
		}
		s.mu.Unlock()
	}
}

// NoteFlushBatch counts one drained WriteMulti batch (cache.flush_batches).
func (p *Pool) NoteFlushBatch() { p.flushBatches.Add(1) }

// Stats is a point-in-time copy of the pool counters, for tests.
type Stats struct {
	Hits, Misses, Evictions, ReadRetries, FlushBatches, DirtyFrames int64
}

// Stats returns the counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:         p.hits.Load(),
		Misses:       p.misses.Load(),
		Evictions:    p.evictions.Load(),
		ReadRetries:  p.readRetry.Load(),
		FlushBatches: p.flushBatches.Load(),
		DirtyFrames:  p.dirty.Load(),
	}
}

// Register publishes the pool metrics into r under prefix (core uses
// "cache."): hit/miss/eviction/optimistic-retry counters, the flush-batch
// counter the drain path bumps, and the live dirty-frame gauge.
func (p *Pool) Register(r *obs.Registry, prefix string) {
	r.RegisterCounter(prefix+"hits", &p.hits)
	r.RegisterCounter(prefix+"misses", &p.misses)
	r.RegisterCounter(prefix+"evictions", &p.evictions)
	r.RegisterCounter(prefix+"read_retry", &p.readRetry)
	r.RegisterCounter(prefix+"flush_batches", &p.flushBatches)
	r.RegisterFunc(prefix+"dirty_frames", func() float64 { return float64(p.dirty.Load()) })
}
