package core

// The core side of the DRAM cache tier (DESIGN.md §13): frame coherence for
// committed writes, the write-back buffered-ack fast path, and the drain
// machinery that turns dirty frames back into shadow-log commits. The pool
// itself (frames, optimistic reads, eviction) lives in internal/cache; this
// file owns everything that needs the tree, the locks, or the commit path.
//
// Drain lock order: flushMu → (inFlight window) → node locks → sizeMu.
// Drains never take fs.mu — FlushPass pins files through fs.mu *before*
// draining, and the synchronous drain points (Fsync, Close, Truncate,
// Snapshot, multi-block reads) all sit before their callers' fs.mu/sizeMu
// acquisitions.

import (
	"sort"

	"mgsp/internal/cache"
	"mgsp/internal/sim"
)

// flushBatchMax caps the updates per drained WriteMulti batch: one batch is
// one failure-atomic commit (a crash tears between batches, never inside
// one), and one metadata-log entry chain amortized over up to this many
// frames — the write-coalescing that keeps write-back WA below the
// write-through baseline.
const flushBatchMax = 16

// tryBufferedWrite attempts the write-back ack-from-DRAM path: a
// single-block overwrite strictly inside the current size whose block is
// already framed patches the frame dirty and returns true. Anything else —
// block boundary crossing, size extension, unframed block — returns false
// and the caller runs the ordinary direct commit (which then installs the
// frame, so the next overwrite of the block buffers).
func (f *file) tryBufferedWrite(p []byte, off int64) bool {
	block := off / LeafSpan
	end := off + int64(len(p))
	if end > (block+1)*LeafSpan || end > f.size.Load() {
		return false
	}
	return f.fs.pcache.Patch(f.pf.Slot(), block, int(off-block*LeafSpan), p, true)
}

// patchFrames brings cached frames up to date with a just-committed write of
// p at off. Callers hold the op's node W locks (readers excluded) and, under
// write-back, flushMu (drains excluded). Present frames are patched in place
// — including dirty ones, which keep their dirty flag so any not-yet-drained
// buffered bytes around the patch still drain (the merged content equals the
// latest logical content either way). Absent frames are installed only for
// fully covered blocks, warming the cache for write-then-read.
func (f *file) patchFrames(p []byte, off int64) {
	pc := f.fs.pcache
	slot := f.pf.Slot()
	end := off + int64(len(p))
	for block := off / LeafSpan; block*LeafSpan < end; block++ {
		blockLo := block * LeafSpan
		lo := max(off, blockLo)
		hi := min(end, blockLo+LeafSpan)
		chunk := p[lo-off : hi-off]
		if pc.Patch(slot, block, int(lo-blockLo), chunk, false) {
			continue
		}
		if lo == blockLo && hi == blockLo+LeafSpan {
			buf := make([]byte, LeafSpan)
			copy(buf, chunk)
			pc.Install(slot, block, buf, false)
		}
	}
}

// drainFile synchronously makes every dirty frame of this file durable —
// the write-back durability points (Fsync, Close, Truncate, Snapshot,
// multi-block reads) call it directly.
func (f *file) drainFile(ctx *sim.Ctx) error {
	_, err := f.drainFrames(ctx)
	return err
}

// drainFrames drains this file's dirty frames through the shadow-log commit
// path: collect under flushMu, sort by block, batch contiguous-run-friendly
// groups into failure-atomic WriteMulti commits, then mark clean (version-
// guarded: a frame re-patched mid-drain stays dirty and drains again with
// the newer content). Holding flushMu across the commits is what makes a
// drain safe against direct writes — they would otherwise commit newer
// content that a stale frame buffer then overwrites.
func (f *file) drainFrames(ctx *sim.Ctx) (int64, error) {
	fs := f.fs
	if fs.pcache.DirtyCount() == 0 {
		return 0, nil
	}
	f.flushMu.Lock(ctx)
	defer f.flushMu.Unlock(ctx)
	dirty := fs.pcache.CollectDirty(f.pf.Slot())
	if len(dirty) == 0 {
		return 0, nil
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].Block < dirty[j].Block })
	size := f.size.Load()
	var drained int64
	for lo := 0; lo < len(dirty); lo += flushBatchMax {
		batch := dirty[lo:min(lo+flushBatchMax, len(dirty))]
		updates := make([]Update, 0, len(batch))
		kept := make([]cache.DirtyFrame, 0, len(batch))
		for _, d := range batch {
			off := d.Block * LeafSpan
			if off >= size {
				// Wholly beyond EOF (a truncate raced the buffering): the
				// frame holds zeros with no logical bytes behind them.
				// Nothing to persist; unpin it from its set.
				if fs.pcache.MarkClean(d) {
					drained++
				}
				continue
			}
			data := d.Data
			if end := off + int64(len(data)); end > size {
				// Clamp to size so a drain never extends the file (bytes
				// beyond EOF in a frame are zeros, not content) — which also
				// keeps drains off the size-publish path entirely.
				data = data[:size-off]
			}
			updates = append(updates, Update{Off: off, Data: data})
			kept = append(kept, d)
		}
		if len(updates) == 0 {
			continue
		}
		err := func() error {
			// In-flight window for the checkpoint/snapshot quiesce; quiet
			// exit — a drain donating into another background pass would
			// self-deadlock on flushMu.
			fs.inFlight.Add(1)
			defer fs.opExitQuiet()
			_, _, err := f.writeMulti(ctx, updates, false)
			return err
		}()
		if err != nil {
			return drained, err
		}
		for _, d := range kept {
			if fs.pcache.MarkClean(d) {
				drained++
			}
		}
		fs.pcache.NoteFlushBatch()
	}
	return drained, nil
}

// FlushPass implements cache.FlushTarget: one background drain pass over
// every file that owns dirty frames. Files are pinned through fs.mu exactly
// like the cleaner's pass does (drains themselves never touch fs.mu); a
// dirty slot with no live file is a frame set orphaned by a concurrent
// remove and is simply invalidated.
func (fs *FS) FlushPass(ctx *sim.Ctx) cache.FlushResult {
	var res cache.FlushResult
	for _, slot := range fs.pcache.DirtySlots() {
		fs.mu.Lock(ctx)
		var f *file
		for _, cand := range fs.files {
			if cand.pf.Slot() == slot {
				f = cand
				break
			}
		}
		if f != nil {
			f.refs.Add(1) // pin against concurrent close/remove
		}
		fs.mu.Unlock(ctx)
		if f == nil {
			fs.pcache.InvalidateSlot(slot)
			continue
		}
		drained, err := f.drainFrames(ctx)
		res.Drained += drained
		fs.unrefCleaned(ctx, f)
		if err != nil {
			break
		}
	}
	res.DirtyAfter = fs.pcache.DirtyCount()
	return res
}
