package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestLazyIntentionDescend exercises the coarse-vs-sticky-intention path
// directly: worker A leaves sticky IW intentions on a subtree via fine
// writes; worker B then coarse-writes the covering node. B must descend to
// child locks (not deadlock waiting for A's never-released intentions) and
// both results must be correct.
func TestLazyIntentionDescend(t *testing.T) {
	opts := DefaultOptions()
	opts.Degree = 4 // 4K leaves, 16K, 64K, ... spans
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)

	setup := sim.NewCtx(9, 1)
	f0, _ := fs.Create(setup, "f")
	f0.WriteAt(setup, bytes.Repeat([]byte{0xAA}, 256*1024), 0)

	ctxA := sim.NewCtx(0, 1)
	hA, _ := fs.Open(ctxA, "f")
	ctxB := sim.NewCtx(1, 2)
	hB, _ := fs.Open(ctxB, "f")

	// A: fine writes leave sticky IW on the 16K/64K ancestors.
	for i := 0; i < 8; i++ {
		hA.WriteAt(ctxA, bytes.Repeat([]byte{0xA1}, 512), int64(i)*4096)
	}
	ff := fs.files["f"]
	sh := ff.intentShard(ctxA.ID)
	sh.mu.Lock()
	stickies := len(sh.m[ctxA.ID])
	sh.mu.Unlock()
	if stickies == 0 {
		t.Fatal("no sticky intentions cached (lazy cleaning inactive)")
	}

	// B: coarse 64K write covering A's subtree, with a watchdog.
	done := make(chan struct{})
	go func() {
		hB.WriteAt(ctxB, bytes.Repeat([]byte{0xB2}, 64*1024), 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("coarse writer deadlocked on sticky intentions")
	}

	got := make([]byte, 64*1024)
	hB.ReadAt(ctxB, got, 0)
	for i, b := range got {
		if b != 0xB2 {
			t.Fatalf("byte %d = %#x after coarse write", i, b)
		}
	}
	// A can still write afterwards (its cached path was partially revoked).
	hA.WriteAt(ctxA, bytes.Repeat([]byte{0xA3}, 512), 0)
	hA.ReadAt(ctxA, got[:512], 0)
	if got[0] != 0xA3 {
		t.Fatal("fine writer broken after coarse descend")
	}
}

// TestLazyDescendConcurrentStress: coarse and fine writers hammer the same
// subtree concurrently under lazy cleaning; watchdogged for deadlock and
// verified for block-level atomicity.
func TestLazyDescendConcurrentStress(t *testing.T) {
	opts := DefaultOptions()
	opts.Degree = 4
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	setup := sim.NewCtx(9, 1)
	f0, _ := fs.Create(setup, "f")
	f0.WriteAt(setup, make([]byte, 256*1024), 0)

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id))
			h, _ := fs.Open(ctx, "f")
			defer h.Close(ctx)
			for i := 0; i < 60; i++ {
				if id%2 == 0 {
					// Fine writer: 512B within a random leaf.
					off := int64(ctx.Rand.Intn(256*1024/512)) * 512
					h.WriteAt(ctx, bytes.Repeat([]byte{byte(id + 1)}, 512), off)
				} else {
					// Coarse writer: aligned 64K node.
					off := int64(ctx.Rand.Intn(4)) * 64 * 1024
					h.WriteAt(ctx, bytes.Repeat([]byte{byte(id + 1)}, 64*1024), off)
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("mixed coarse/fine stress deadlocked")
	}
	// Every 512B unit must hold exactly one writer's pattern (or zero).
	buf := make([]byte, 256*1024)
	h, _ := fs.Open(setup, "f")
	h.ReadAt(setup, buf, 0)
	for u := 0; u < len(buf); u += 512 {
		first := buf[u]
		for i := u; i < u+512; i++ {
			if buf[i] != first {
				t.Fatalf("unit at %d torn: %#x vs %#x", u, first, buf[i])
			}
		}
	}
}

// TestGreedyHandoff: the first op from a second worker demotes greedy
// locking permanently, draining any in-flight greedy op first.
func TestGreedyHandoff(t *testing.T) {
	fs, _ := newTestFS(DefaultOptions())
	setup := sim.NewCtx(7, 1)
	h, _ := fs.Create(setup, "f")
	h.WriteAt(setup, make([]byte, 64*1024), 0)
	ff := fs.files["f"]

	// Single worker: greedy stays available.
	ctxA := sim.NewCtx(0, 1)
	hA := h
	hA.WriteAt(setup, make([]byte, 4096), 0) // worker 7 established
	if ff.multiUser.Load() {
		t.Fatal("single-user file demoted prematurely")
	}
	// A second worker's op flips it.
	hA.WriteAt(ctxA, make([]byte, 4096), 4096)
	if !ff.multiUser.Load() {
		t.Fatal("second worker did not demote greedy locking")
	}
	if ff.greedyActive.Load() != 0 {
		t.Fatal("greedyActive leaked")
	}
}
