package core

import (
	"sync"
	"sync/atomic"

	"mgsp/internal/cache"
	"mgsp/internal/cleaner"
	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// metaLogEntries is the total metadata-log capacity: 64 per-worker home
// areas of 16 entries each (slot 0 of each area is its persistent cursor,
// see meta.go). 15 op slots per area comfortably cover one worker's
// longest chained commit plus a live snapshot mark or two.
const metaLogEntries = metaAreas * metaAreaSlots

// cleanerWorker is the sim worker id of the background cleaner's private
// context, far above any foreground worker id so lock bookings and media
// attribution never collide with user operations.
const cleanerWorker = 1 << 20

// flusherWorker is the sim worker id of the write-back flusher's private
// context (see internal/cache), distinct from every foreground worker and
// from the cleaner.
const flusherWorker = 1 << 21

// defaultFlushInterval is the write-back drain cadence when Options leaves
// FlushInterval zero: 100 µs of virtual time, a handful of foreground ops at
// simulated NVM latencies.
const defaultFlushInterval = 100_000

// MetaBytes returns the metadata reservation MGSP needs on a device of the
// given size: the lock-free metadata log, the checkpoint cell, plus the node
// directory (records for every possible leaf plus interior slack).
func MetaBytes(devSize int64) int64 {
	records := devSize/LeafSpan + devSize/LeafSpan/16 + 1024
	return int64((metaLogEntries+1)*entrySize) + records*recSize
}

// FS is a mounted MGSP instance.
type FS struct {
	prov  *pmfile.Provider
	dev   *nvm.Device
	costs *sim.Costs
	opts  Options

	dir     *directory
	mlog    *metaLog
	ckptOff int64 // device offset of the checkpoint cell

	opSeq atomic.Uint32 // group ids for chained metadata entries

	// epoch is the current cleaner epoch; committed metadata entries are
	// stamped with its low 8 bits so recovery can skip entries the checkpoint
	// already covers. Stays 0 (and is never persisted anywhere) while the
	// cleaner is disabled.
	epoch    atomic.Uint64
	inFlight atomic.Int64 // operations between claim and retire (quiesce)

	cleaner   *cleaner.Cleaner
	cleanGen  atomic.Int64 // cleaner pass generation, for node coldness
	cleanName string       // resume cursor: next file name ...
	cleanOff  int64        // ... and offset within it

	// pcache is the volatile DRAM frame tier (nil when CacheFrames is 0);
	// flusher is its write-back drain scheduler (nil unless WriteBack).
	// Neither holds any persistent state: Mount always starts them empty,
	// so recovery is cache-independent by construction (DESIGN.md §13).
	pcache  *cache.Pool
	flusher *cache.Flusher

	// snapSeq is the global snapshot sequence: every snapshot takes a fresh
	// id from it, and every node record stores the value current at its
	// creation (birth). Volatile; Mount restores a value at least as large as
	// any persisted id, which is all monotonicity needs.
	snapSeq atomic.Uint64
	// snapAdmin serializes snapshot creation and drop across the FS (both are
	// rare control-plane operations; data-plane CoW never takes it).
	snapAdmin sim.Mutex

	mu    sim.Mutex
	files map[string]*file

	// optGate arms the optimistic lock-free read path (optread.go): set once
	// at mkFS when the configuration supports it, so disabled configurations
	// pay nothing (writerEnter/writerExit return immediately).
	optGate bool

	stats Stats

	// Observability: one registry per FS (probes hold direct pointers; the
	// registry is only walked at snapshot time) plus the flight-recorder
	// trace ring. The histograms record virtual nanoseconds except
	// hProbeDist (metadata-log claim probe distance, in slots).
	obsReg     *obs.Registry
	trace      *obs.TraceRing
	hWrite     *obs.Histogram // fs.write_ns
	hRead      *obs.Histogram // fs.read_ns
	hFsync     *obs.Histogram // fs.fsync_ns
	hWritev    *obs.Histogram // fs.writev_ns
	hSnapshot  *obs.Histogram // fs.snapshot_ns
	hMGLAcq    *obs.Histogram // mgl.acquire_ns
	hProbeDist *obs.Histogram // mlog.probe_distance
	hMount     *obs.Histogram // recovery.mount_ns
	hCleanPass *obs.Histogram // cleaner.pass_ns
}

// New formats an MGSP file system over the device with the given options.
func New(dev *nvm.Device, opts Options) (*FS, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	prov := pmfile.New(dev, MetaBytes(dev.Size()))
	fs := mkFS(prov, opts)
	fs.invalidateCheckpointCell()
	return fs, nil
}

// invalidateCheckpointCell zeroes any leftover checkpoint header and
// directory high-water mark on a reused device: New formats a fresh file
// system, so a stale checkpoint would corrupt a later Mount. Fresh (all-zero)
// devices are left untouched, keeping cleaner-disabled runs bit-identical.
func (fs *FS) invalidateCheckpointCell() {
	dirty := false
	offs := []int64{ckptEpoch, ckptPasses, ckptReclaimed, ckptCksum, ckptDirHW}
	for _, o := range offs {
		if fs.dev.Load8(fs.ckptOff+o) != 0 {
			dirty = true
		}
	}
	if !dirty {
		return
	}
	ctx := sim.NewCtx(cleanerWorker, 0)
	for _, o := range offs {
		fs.dev.Store8(ctx, fs.ckptOff+o, 0)
	}
	fs.dev.Fence(ctx)
}

// MustNew is New for tests and benchmarks with known-good options.
func MustNew(dev *nvm.Device, opts Options) *FS {
	fs, err := New(dev, opts)
	if err != nil {
		panic(err)
	}
	return fs
}

func mkFS(prov *pmfile.Provider, opts Options) *FS {
	metaStart, metaSize := prov.MetaRegion()
	mlogBytes := int64(metaLogEntries * entrySize)
	ckptOff := metaStart + mlogBytes
	fs := &FS{
		prov:    prov,
		dev:     prov.Device(),
		costs:   prov.Costs(),
		opts:    opts,
		mlog:    newMetaLog(prov.Device(), metaStart, metaLogEntries),
		dir:     newDirectory(prov.Device(), ckptOff+entrySize, metaSize-mlogBytes-entrySize),
		ckptOff: ckptOff,
		files:   make(map[string]*file),
	}
	fs.dir.hwCell = ckptOff + ckptDirHW
	// The optimistic read path needs MGL (per-node versions live in the MGL
	// locks) and no DRAM cache tier (frame installs happen under R locks).
	fs.optGate = opts.OptimisticReads && opts.Locking == LockMGL && opts.CacheFrames == 0
	fs.initObs()
	if opts.CleanerInterval > 0 {
		fs.dir.tracking = true
		cctx := sim.NewCtx(cleanerWorker, 0)
		cctx.Tally = &sim.MediaTally{}
		fs.cleaner = cleaner.New(fs, cleaner.Config{
			Interval: opts.CleanerInterval,
			Budget:   opts.CleanerBudget,
		}, cctx)
		fs.cleaner.Register(fs.obsReg, "cleaner.")
	}
	if opts.CacheFrames > 0 {
		fs.pcache = cache.New(opts.CacheFrames, LeafSpan)
		fs.pcache.Register(fs.obsReg, "cache.")
		if opts.WriteBack {
			interval := opts.FlushInterval
			if interval == 0 {
				interval = defaultFlushInterval
			}
			// Watermark at a quarter of the pool: the flusher fires early once
			// enough acked data is buffered, which also keeps write-back live
			// under frozen virtual time (sim.ZeroCosts, the torture harness).
			watermark := int64(fs.pcache.Frames() / 4)
			fctx := sim.NewCtx(flusherWorker, 0)
			fctx.Tally = &sim.MediaTally{}
			fs.flusher = cache.NewFlusher(fs, fs.pcache, interval, watermark, fctx)
			fs.flusher.Register(fs.obsReg, "flusher.")
		}
	}
	return fs
}

// traceRingSlots sizes the flight recorder: recent events kept per worker
// shard. Small on purpose — the ring is volatile diagnostic state, not a log.
const traceRingSlots = 256

// initObs builds the per-FS metric registry, trace ring, and latency
// histograms, then wires them to the stat structs the probes update: the
// core counters, the device's media counters (under "nvm."), the derived
// write-amplification ratio, and the metadata-log contention probes.
func (fs *FS) initObs() {
	r := obs.NewRegistry()
	fs.obsReg = r
	fs.trace = obs.NewTraceRing(traceRingSlots)
	fs.stats.register(r)
	fs.dev.Stats().Register(r, "nvm.")
	media := &fs.dev.Stats().MediaWriteBytes
	user := &fs.stats.UserWriteBytes
	r.RegisterFunc("wa.ratio", func() float64 {
		u := user.Load()
		if u == 0 {
			return 0
		}
		return float64(media.Load()) / float64(u)
	})
	fs.hWrite = r.Histogram("fs.write_ns")
	fs.hRead = r.Histogram("fs.read_ns")
	fs.hFsync = r.Histogram("fs.fsync_ns")
	fs.hWritev = r.Histogram("fs.writev_ns")
	fs.hSnapshot = r.Histogram("fs.snapshot_ns")
	fs.hMGLAcq = r.Histogram("mgl.acquire_ns")
	fs.hProbeDist = r.Histogram("mlog.probe_distance")
	fs.hMount = r.Histogram("recovery.mount_ns")
	fs.hCleanPass = r.Histogram("cleaner.pass_ns")
	fs.mlog.probeDist = fs.hProbeDist
	fs.mlog.casRetries = &fs.stats.MetaCASRetries
	fs.mlog.cursorWrites = &fs.stats.MetaCursorWrites
}

// Name implements vfs.FS.
func (fs *FS) Name() string { return "MGSP" }

// Device implements vfs.FS.
func (fs *FS) Device() *nvm.Device { return fs.dev }

// Options returns the configuration in effect.
func (fs *FS) Options() Options { return fs.opts }

// Cache returns the DRAM frame pool, nil when the cache tier is disabled.
func (fs *FS) Cache() *cache.Pool { return fs.pcache }

// Flusher returns the write-back drain scheduler, nil unless WriteBack.
func (fs *FS) Flusher() *cache.Flusher { return fs.flusher }

// Consistency implements vfs.Guarantees: every MGSP operation is a
// synchronized atomic operation (§IV-A).
func (fs *FS) Consistency() vfs.ConsistencyLevel { return vfs.OpAtomic }

// file is an MGSP-managed file: the pm file (whose mapping is the root
// log) plus the multi-granularity shadow log tree.
type file struct {
	fs   *FS
	pf   *pmfile.File
	name string

	root      atomic.Pointer[node]
	minSearch atomic.Pointer[node]

	treeMu sim.Mutex // tree structure growth, record/log creation
	sizeMu sim.Mutex // size extension
	size   atomic.Int64

	// flushMu serializes write-back drains against direct (media-committing)
	// writes of this file, so a drain can never overwrite a newer committed
	// block with stale frame content. Only taken when the flusher exists;
	// ordered after fs.mu release and before node locks / sizeMu.
	flushMu sim.Mutex

	flock sim.RWMutex // used in LockFile mode

	// Sticky intention locks per worker (lazy intention cleaning), striped
	// by worker hash: the bookkeeping map is consulted on every MGL
	// acquisition, and a single mutex over it serializes all workers on the
	// file even when their lock sets are disjoint.
	intents [intentStripes]intentShard

	refs    atomic.Int32
	removed bool

	// Greedy-locking safety: greedy ops skip ancestor intentions, which is
	// only sound while exactly one worker uses the file. The first op seen
	// from a second worker permanently demotes the file to full MGL, after
	// draining any in-flight greedy op.
	lastWorker   atomic.Int64 // worker id + 1; 0 = none yet
	multiUser    atomic.Bool
	greedyActive atomic.Int64

	// cleanerBusy is nonzero while the background cleaner works on this
	// file's tree; greedy ops must then take real locks so the cleaner's
	// subtree try-locks actually exclude them.
	cleanerBusy atomic.Int64

	// Optimistic-read gate (optread.go): optWS/optWF count writer-section
	// enters/exits (unequal = a mutator is active), optRd counts registered
	// lock-free readers (writers drain it before mutating). Volatile DRAM
	// state, unmetered in virtual time.
	optWS, optWF, optRd atomic.Int64

	// maxLiveSnap is the newest live snapshot id of this file (0 = none).
	// Nonzero switches writes into copy-on-write mode: any committed mutation
	// of a recorded node pins the node's frozen state first, and overwrites
	// of valid units relocate to a fresh log block instead of toggling
	// through the (frozen) fallback.
	maxLiveSnap atomic.Uint64
	snapMu      sync.Mutex       // guards snaps and pins (taken after treeMu)
	snaps       []*snapshot      // live snapshots, ascending id
	pins        map[*node][]*pin // per-node frozen views, ascending pin id
}

// workerIntent tracks which intention modes a worker holds on a node.
type workerIntent struct{ ir, iw bool }

// intentStripes is the number of sticky-intent map shards per file (power
// of two). The map is keyed by worker, so worker-hash striping partitions
// it exactly: two workers on different stripes never contend.
const intentStripes = 8

// intentShard is one stripe of a file's sticky-intent bookkeeping.
type intentShard struct {
	mu sync.Mutex
	m  map[int]map[*node]*workerIntent
}

// intentShard returns the stripe owning worker's sticky intents.
func (f *file) intentShard(worker int) *intentShard {
	return &f.intents[sim.WorkerHash(worker)&(intentStripes-1)]
}

func (fs *FS) newFile(pf *pmfile.File, name string) *file {
	f := &file{fs: fs, pf: pf, name: name}
	for i := range f.intents {
		f.intents[i].m = make(map[int]map[*node]*workerIntent)
	}
	return f
}

// Create implements vfs.FS.
func (fs *FS) Create(ctx *sim.Ctx, name string) (vfs.File, error) {
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	if f := fs.files[name]; f != nil {
		if f.maxLiveSnap.Load() != 0 {
			// Truncating the tree would destroy the pinned views.
			return nil, ErrHasSnapshots
		}
		if fs.cleaner != nil {
			// The cleaner walks the tree under sizeMu; discarding it out from
			// underneath would free logs mid-walk.
			f.sizeMu.Lock(ctx)
			defer f.sizeMu.Unlock(ctx)
		}
		f.discardTree(ctx)
		if fs.pcache != nil {
			// The file keeps its pm slot but loses all content; cached frames
			// (including unsynced write-back data — Create destroys it at the
			// file level anyway) no longer describe it.
			fs.pcache.InvalidateSlot(f.pf.Slot())
		}
		if _, err := fs.prov.Create(ctx, name); err != nil {
			return nil, err
		}
		f.size.Store(0)
		f.refs.Add(1)
		return &handle{f: f}, nil
	}
	pf, err := fs.prov.Create(ctx, name)
	if err != nil {
		return nil, err
	}
	f := fs.newFile(pf, name)
	fs.files[name] = f
	f.refs.Add(1)
	return &handle{f: f}, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(ctx *sim.Ctx, name string) (vfs.File, error) {
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	f := fs.files[name]
	if f == nil {
		return nil, vfs.ErrNotExist
	}
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp) // open + mmap setup
	f.refs.Add(1)
	return &handle{f: f}, nil
}

// Remove implements vfs.FS.
func (fs *FS) Remove(ctx *sim.Ctx, name string) error {
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	f := fs.files[name]
	if f == nil {
		return vfs.ErrNotExist
	}
	if f.maxLiveSnap.Load() != 0 {
		return ErrHasSnapshots
	}
	delete(fs.files, name)
	f.removed = true
	if f.refs.Load() == 0 {
		f.discardTree(ctx)
	}
	if fs.pcache != nil {
		// prov.Remove frees the pm slot immediately (even with open handles),
		// and Create reuses the lowest free slot — stale frames keyed by this
		// slot would leak into the next file. Dirty frames dropped here were
		// acked-but-unsynced write-back data of a now-removed file.
		fs.pcache.InvalidateSlot(f.pf.Slot())
	}
	return fs.prov.Remove(ctx, name)
}

// discardTree releases every node's log and record without write-back
// (truncate/remove paths; Close uses writeback instead).
func (f *file) discardTree(ctx *sim.Ctx) {
	// Discard holds no node locks; drain optimistic readers so none copies
	// from a log block being freed.
	f.writerEnter()
	defer f.writerExit()
	if r := f.root.Load(); r != nil {
		f.releaseSubtree(ctx, r)
	}
	f.root.Store(nil)
	f.minSearch.Store(nil)
	f.releaseAllIntents(ctx)
}

func (f *file) releaseSubtree(ctx *sim.Ctx, n *node) {
	for i := range n.children {
		if c := n.children[i].Load(); c != nil {
			f.releaseSubtree(ctx, c)
		}
	}
	if n.logOff != 0 {
		f.fs.prov.Alloc().Free(ctx, n.logOff, n.span/LeafSpan)
		n.logOff = 0
	}
	if n.recIdx >= 0 {
		f.fs.dir.clear(ctx, n.recIdx)
		n.recIdx = -1
	}
	n.word.Store(0)
}

// releaseAllIntents drops every worker's sticky intention locks (file close).
func (f *file) releaseAllIntents(ctx *sim.Ctx) {
	for i := range f.intents {
		sh := &f.intents[i]
		sh.mu.Lock()
		for w, m := range sh.m {
			for n, wi := range m {
				if wi.ir {
					n.lock.Unlock(ctx, lockIR)
				}
				if wi.iw {
					n.lock.Unlock(ctx, lockIW)
				}
			}
			delete(sh.m, w)
		}
		sh.mu.Unlock()
	}
}

// handle is an open MGSP descriptor.
type handle struct {
	f      *file
	closed bool
}

var _ vfs.File = (*handle)(nil)

// Size implements vfs.File.
func (h *handle) Size() int64 { return h.f.size.Load() }

// Fsync implements vfs.File: MGSP operations are already synchronized
// atomic operations, so fsync has nothing to persist (§IV, Figure 7).
func (h *handle) Fsync(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	fs := h.f.fs
	start := ctx.Now()
	if fs.flusher != nil {
		// Fsync is the write-back durability point: drain this file's dirty
		// frames through the shadow-log commit path before fencing.
		if err := h.f.drainFile(ctx); err != nil {
			return err
		}
	}
	fs.dev.Fence(ctx)
	dur := ctx.Now() - start
	fs.hFsync.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpFsync, h.f.pf.Slot(), 0, 0, dur)
	return nil
}

// Close implements vfs.File. When the last handle closes, all shadow logs
// are written back into the file and the metadata is released (§III-D).
func (h *handle) Close(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	h.closed = true
	f := h.f
	ctx.Advance(f.fs.costs.Syscall)
	if f.fs.flusher != nil {
		// Close is a durability point too (lastRefGone writes the tree back);
		// drain before fs.mu — drains take node locks, never fs.mu.
		if err := f.drainFile(ctx); err != nil {
			return err
		}
	}
	f.fs.mu.Lock(ctx)
	defer f.fs.mu.Unlock(ctx)
	if f.refs.Add(-1) == 0 {
		f.lastRefGone(ctx)
	}
	return nil
}

// lastRefGone runs the last-reference work: discard for removed files,
// write-back otherwise. Callers hold fs.mu.
func (f *file) lastRefGone(ctx *sim.Ctx) {
	if f.removed {
		f.discardTree(ctx)
	} else {
		f.writeback(ctx)
	}
}

// Truncate implements vfs.File.
func (h *handle) Truncate(ctx *sim.Ctx, size int64) error {
	if h.closed {
		return vfs.ErrClosed
	}
	f := h.f
	if f.maxLiveSnap.Load() != 0 {
		return ErrHasSnapshots
	}
	ctx.Advance(f.fs.costs.Syscall + f.fs.costs.VFSOp)
	// Truncate mutates outside node locks (discard/write-back, size, file
	// zeroing); drain optimistic readers for the whole section. The nested
	// enters from discardTree/writeback below pair up harmlessly.
	f.writerEnter()
	defer f.writerExit()
	if f.fs.flusher != nil {
		// Make buffered write-back data durable before resizing: a shrink
		// must not lose acked writes below the new size. Drain takes node
		// locks and therefore runs before sizeMu (write-path lock order).
		if err := f.drainFile(ctx); err != nil {
			return err
		}
	}
	f.sizeMu.Lock(ctx)
	defer f.sizeMu.Unlock(ctx)
	old := f.size.Load()
	switch {
	case size == 0 && old > 0:
		// Truncate-to-zero (e.g. a WAL reset): every log is superseded, so
		// discard the tree outright — no write-back needed.
		f.discardTree(ctx)
		f.pf.MarkUnwritten(0)
	case size < old:
		// Partial shrink: write back then zero the vacated range so later
		// growth exposes no stale bytes. Rare control-plane op; the simple
		// full write-back keeps the tree and file coherent.
		f.writeback(ctx)
		if err := f.pf.EnsureCapacity(ctx, old); err != nil {
			return err
		}
		blockEnd := (size + LeafSpan - 1) / LeafSpan * LeafSpan
		if blockEnd > old {
			blockEnd = old
		}
		if blockEnd > size {
			f.pf.DirectWrite(ctx, make([]byte, blockEnd-size), size)
			// The zeros must be durable before the size word below commits
			// the shrink: a crash between the two would otherwise recover the
			// new size over stale tail bytes that a later growth re-exposes.
			f.pf.Fence(ctx)
		}
		f.pf.MarkUnwritten((size + LeafSpan - 1) / LeafSpan)
	}
	f.size.Store(size)
	f.pf.SetSize(ctx, size)
	if f.fs.pcache != nil {
		// Frames covering vacated blocks are stale (a later regrowth must
		// read zeros); dropping the whole slot is the simple safe choice for
		// this rare control-plane op. All dirty data was drained above.
		f.fs.pcache.InvalidateSlot(f.pf.Slot())
	}
	return nil
}

func (h *handle) guard() error {
	if h.closed {
		return vfs.ErrClosed
	}
	return nil
}
