package core

// Background cleaning (see internal/cleaner and DESIGN.md §7): incremental,
// resumable write-back of cold shadow subtrees under MGL try-locks, bulk log
// reclamation, and the checkpoint protocol that lets Mount skip both the
// full directory scan and pre-checkpoint metadata replay. The paper has no
// online cleaner; everything here is off (and bit-identical to the paper
// protocol) unless Options.CleanerInterval is set.

import (
	"runtime"
	"sort"

	"mgsp/internal/alloc"
	"mgsp/internal/cleaner"
	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
)

// Cleaner returns the background cleaner, or nil when disabled.
func (fs *FS) Cleaner() *cleaner.Cleaner { return fs.cleaner }

// LogBlocks returns the 4 KiB device blocks currently held by shadow logs:
// allocator usage minus the blocks backing the files themselves and minus
// blocks parked in per-worker allocation caches (set in the bitmap but
// logically free). This is the quantity the cleaner bounds on
// sustained-overwrite workloads, and the high-water signal the server's
// admission control throttles on. Safe from any goroutine — including
// concurrently with Create (the old Files() iteration was not).
func (fs *FS) LogBlocks() int64 {
	a := fs.prov.Alloc()
	return a.UsedBlocks() - a.Cached() - fs.prov.BackingPages()
}

// opExit leaves an operation's in-flight window and donates this goroutine
// to the cleaner when its interval has elapsed (cooperative scheduling: the
// simulation has no free-running background threads, so foreground workers
// host the passes; the work is charged to the cleaner's private context).
// Registered as a defer before the lock-release defer, so (LIFO) the pass
// never starts while the operation still holds node locks.
func (fs *FS) opExit(ctx *sim.Ctx) {
	fs.inFlight.Add(-1)
	if fs.cleaner != nil {
		fs.cleaner.MaybeRun(ctx.Now())
	}
	if fs.flusher != nil {
		fs.flusher.MaybeRun(ctx.Now())
	}
}

// opExitQuiet leaves the in-flight window without donating to background
// work. Used by the flusher's own drain commits: a drain donating into
// another drain pass would self-deadlock on flushMu.
func (fs *FS) opExitQuiet() {
	fs.inFlight.Add(-1)
}

// touchNode stamps n and its ancestors with the current cleaner generation
// so the cleaner treats the path as hot. The walk stops at the first
// ancestor already stamped (everything above it is at least as fresh).
// No-op while the cleaner is disabled.
func (f *file) touchNode(n *node) {
	if f.fs.cleaner == nil {
		return
	}
	gen := f.fs.cleanGen.Load()
	for a := n; a != nil; a = a.parent {
		if a.touch.Swap(gen) >= gen {
			break
		}
	}
}

// CleanPass implements cleaner.Target: one incremental sweep over the open
// files (sorted by name, resuming at the previous pass's cursor), writing
// cold shadow subtrees back and reclaiming their logs. budget caps the
// blocks reclaimed (0 = unbounded). Only one pass runs at a time (enforced
// by the cleaner's running flag), so the cursor fields need no lock.
func (fs *FS) CleanPass(ctx *sim.Ctx, budget int64) cleaner.PassResult {
	var res cleaner.PassResult
	began := ctx.Now()
	gen := fs.cleanGen.Add(1)
	remaining := budget
	if remaining <= 0 {
		remaining = 1 << 62
	}

	fs.mu.Lock(ctx)
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	fs.mu.Unlock(ctx)
	sort.Strings(names)
	start := 0
	for i, name := range names {
		if name >= fs.cleanName {
			start = i
			break
		}
	}
	rot := append(names[start:], names[:start]...)

	wrapped := true
	for _, name := range rot {
		fs.mu.Lock(ctx)
		f := fs.files[name]
		if f != nil {
			f.refs.Add(1) // pin against concurrent close/remove
		}
		fs.mu.Unlock(ctx)
		if f == nil {
			continue
		}
		startOff := int64(0)
		if name == fs.cleanName {
			startOff = fs.cleanOff
		}
		done, resumeOff := f.cleanFile(ctx, gen, startOff, &remaining, &res)
		fs.unrefCleaned(ctx, f)
		if !done {
			fs.cleanName = name
			fs.cleanOff = resumeOff
			wrapped = false
			break
		}
	}
	if wrapped {
		fs.cleanName = ""
		fs.cleanOff = 0
	}
	res.Wrapped = wrapped
	res.LogBlocksAfter = fs.LogBlocks()
	fs.stats.CleanerPasses.Add(1)
	fs.stats.BlocksReclaimed.Add(res.BlocksReclaimed)
	dur := ctx.Now() - began
	fs.hCleanPass.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpCleanerPass, 0, 0, res.BlocksReclaimed, dur)
	return res
}

// unrefCleaned drops the cleaner's pin on f, running the usual
// last-reference work if every handle closed during the pass.
func (fs *FS) unrefCleaned(ctx *sim.Ctx, f *file) {
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	if f.refs.Add(-1) == 0 {
		f.lastRefGone(ctx)
	}
}

// cleanFile sweeps one file's tree from startOff. done=false with a resume
// offset means the budget ran out mid-file.
func (f *file) cleanFile(ctx *sim.Ctx, gen, startOff int64, remaining *int64, res *cleaner.PassResult) (bool, int64) {
	if f.root.Load() == nil {
		return true, 0
	}
	if f.maxLiveSnap.Load() != 0 {
		// Live snapshots freeze the fallback and pin log blocks; write-back
		// and reclamation would tear the frozen views. Skip the whole file —
		// its logs are reclaimed once the last snapshot is dropped.
		return true, 0
	}
	// Suspend greedy locking while the cleaner works on this tree: a greedy
	// op takes one covering lock and skips ancestors, which would bypass the
	// subtree try-locks below. Same drain protocol as multi-user demotion.
	f.cleanerBusy.Add(1)
	defer f.cleanerBusy.Add(-1)
	for f.greedyActive.Load() != 0 {
		runtime.Gosched()
	}
	// The cleaner's merge/reclaim writes run under subtree try-locks, but
	// optimistic readers take none — drain them for the sweep, like any
	// other mutating section.
	f.writerEnter()
	defer f.writerExit()
	// In LockFile mode the exclusive file lock stands in for all subtree
	// locks. Taken before sizeMu to match WriteAt's flock -> sizeMu order
	// (size publish happens under the op's file lock).
	if f.fs.opts.Locking == LockFile {
		f.flock.Lock(ctx)
		defer f.flock.Unlock(ctx)
	}
	// sizeMu excludes truncate and create-over-existing, which discard the
	// tree wholesale, for the duration of the walk.
	f.sizeMu.Lock(ctx)
	defer f.sizeMu.Unlock(ctx)
	root := f.root.Load()
	if root == nil {
		return true, 0
	}
	return f.cleanWalk(ctx, root, gen, startOff, remaining, res)
}

// cleanWalk descends the tree looking for cold subtrees: children whose
// touch stamp is at least two generations old (a full interval of grace).
// Hot interiors are recursed into, so a cold corner of a hot file is still
// found.
func (f *file) cleanWalk(ctx *sim.Ctx, n *node, gen, startOff int64, remaining *int64, res *cleaner.PassResult) (bool, int64) {
	ctx.Advance(f.fs.costs.IndexStep)
	if n.leaf {
		return true, 0
	}
	cs := n.childSpan(f.fs.opts.Degree)
	ci := int64(0)
	if startOff > n.offset() {
		ci = (startOff - n.offset()) / cs
	}
	for ; ci < int64(f.fs.opts.Degree); ci++ {
		c := n.children[ci].Load()
		if c == nil {
			continue
		}
		if *remaining <= 0 {
			return false, c.offset()
		}
		if c.touch.Load()+1 < gen {
			f.cleanSubtree(ctx, c, remaining, res)
			continue
		}
		if !c.leaf {
			childStart := startOff
			if childStart < c.offset() {
				childStart = c.offset()
			}
			if done, resume := f.cleanWalk(ctx, c, gen, childStart, remaining, res); !done {
				return false, resume
			}
		}
	}
	return true, 0
}

// cleanSubtree write-locks the cold subtree at c (plus IW on its ancestors,
// root-first, all try-locks — any conflict means a foreground op is active
// there and the cleaner backs off), preserves the live content, and reclaims
// every log and record below. Where the content goes depends on the
// ancestors, mirroring the read path's resolution order:
//
//   - an ancestor with its existing bit clear cuts reads off above c, so the
//     whole subtree is superseded garbage: reclaim with no write-back;
//   - otherwise, with a valid ancestor fb, reads of c's span fall back to
//     fb's log — not the file — once c's bits are gone, so c's newer units
//     are merged into fb's log in place (crash-safe: every byte the merge
//     overwrites in fb's log is shadowed by a still-persisted valid bit in
//     c's subtree until the records below c are cleared after the fence);
//   - with no valid ancestor the fallback is the file itself and the close
//     path's write-back applies.
func (f *file) cleanSubtree(ctx *sim.Ctx, c *node, remaining *int64, res *cleaner.PassResult) {
	var held []lockedNode
	if f.fs.opts.Locking == LockMGL {
		var anc []*node
		for a := c.parent; a != nil; a = a.parent {
			anc = append(anc, a)
		}
		for i, j := 0, len(anc)-1; i < j; i, j = i+1, j-1 {
			anc[i], anc[j] = anc[j], anc[i]
		}
		for _, a := range anc {
			if !a.lock.TryLock(ctx, lockIW) {
				f.releaseLocked(ctx, held)
				f.fs.stats.MGLTryFails.Add(1)
				res.Contended++
				return
			}
			held = append(held, lockedNode{a, lockIW})
		}
		if !f.tryLockSubtreeW(ctx, c, &held) {
			f.releaseLocked(ctx, held)
			f.fs.stats.MGLTryFails.Add(1)
			res.Contended++
			return
		}
	}
	defer f.releaseLocked(ctx, held)

	cut := false
	var fb *node // deepest valid ancestor = the fallback target
	for a := c.parent; a != nil; a = a.parent {
		if a.word.Load()&bitExisting == 0 {
			cut = true
			break
		}
		if fb == nil && a.valid() {
			fb = a
		}
	}
	switch {
	case cut:
		// Unreachable by reads: garbage, no write-back.
	case fb != nil:
		f.wbMerge(ctx, c, c.offset(), c.offset()+c.span, nil, fb)
		f.fs.dev.Fence(ctx)
	default:
		f.wbWalk(ctx, c, c.offset(), c.offset()+c.span, nil)
		f.fs.dev.Fence(ctx)
	}
	freed := f.reclaimSubtree(ctx, c)
	if freed > 0 {
		*remaining -= freed
		res.BlocksReclaimed += freed
		res.SubtreesCleaned++
	}
}

// wbMerge copies the units of [lo,hi) whose source of truth lies inside c's
// subtree (lastValid tracks valid interiors below c, like wbWalk) into dst's
// log; units already served by dst need no copy.
func (f *file) wbMerge(ctx *sim.Ctx, n *node, lo, hi int64, lastValid, dst *node) {
	size := f.size.Load()
	if lo >= size {
		return
	}
	if hi > size {
		hi = size
	}
	if n.leaf {
		unit := int64(LeafSpan / f.subBits())
		word := n.word.Load()
		off := n.offset()
		for cur := lo; cur < hi; {
			u := (cur - off) / unit
			uEnd := off + (u+1)*unit
			if uEnd > hi {
				uEnd = hi
			}
			if word&(1<<uint(u)) != 0 {
				f.copyToLog(ctx, n, cur, uEnd, dst)
			} else if lastValid != nil {
				f.copyToLog(ctx, lastValid, cur, uEnd, dst)
			}
			cur = uEnd
		}
		return
	}
	if n.word.Load()&bitValid != 0 {
		lastValid = n
	}
	if n.word.Load()&bitExisting == 0 {
		if lastValid != nil {
			f.copyToLog(ctx, lastValid, lo, hi, dst)
		}
		return
	}
	cs := n.childSpan(f.fs.opts.Degree)
	for cur := lo; cur < hi; {
		ci := (cur - n.offset()) / cs
		cEnd := n.offset() + (ci+1)*cs
		if cEnd > hi {
			cEnd = hi
		}
		if c := n.children[ci].Load(); c != nil {
			f.wbMerge(ctx, c, cur, cEnd, lastValid, dst)
		} else if lastValid != nil {
			f.copyToLog(ctx, lastValid, cur, cEnd, dst)
		}
		cur = cEnd
	}
}

// copyToLog moves [lo,hi) from src's log into dst's log in bounded chunks.
func (f *file) copyToLog(ctx *sim.Ctx, src *node, lo, hi int64, dst *node) {
	buf := make([]byte, wbChunk)
	for lo < hi {
		n := int64(wbChunk)
		if n > hi-lo {
			n = hi - lo
		}
		f.fs.dev.Read(ctx, buf[:n], src.logOff+(lo-src.offset()))
		f.fs.dev.WriteNT(ctx, buf[:n], dst.logOff+(lo-dst.offset()))
		lo += n
	}
}

// tryLockSubtreeW write-locks every node of the subtree rooted at n. Sticky
// intentions left by lazy cleaning are not real users: on an intent-only
// conflict it takes IW on n and descends to the children, materializing
// absent ones so no unlocked path into the subtree remains (the try-lock
// analogue of lockCoarse's descent).
func (f *file) tryLockSubtreeW(ctx *sim.Ctx, n *node, held *[]lockedNode) bool {
	ok, intentOnly := n.lock.TryLockHint(ctx, lockW)
	if ok {
		*held = append(*held, lockedNode{n, lockW})
		return true
	}
	if !intentOnly || n.leaf {
		return false
	}
	if !n.lock.TryLock(ctx, lockIW) {
		return false
	}
	*held = append(*held, lockedNode{n, lockIW})
	for i := int64(0); i < int64(f.fs.opts.Degree); i++ {
		c := f.ensureChild(ctx, n, i)
		if !f.tryLockSubtreeW(ctx, c, held) {
			return false
		}
	}
	return true
}

// releaseLocked drops try-locked nodes in reverse acquisition order.
func (f *file) releaseLocked(ctx *sim.Ctx, held []lockedNode) {
	for i := len(held) - 1; i >= 0; i-- {
		held[i].n.lock.Unlock(ctx, held[i].mode)
	}
}

// reclaimSubtree retires every record and frees every log at and below n:
// records are cleared and volatile words zeroed bottom-up, then one fence,
// then the blocks return to the allocator in bulk — so a crash mid-reclaim
// never leaves a live record pointing at a reusable log block. Returns the
// freed block count.
func (f *file) reclaimSubtree(ctx *sim.Ctx, n *node) int64 {
	var exts []alloc.Extent
	f.gatherReclaim(ctx, n, &exts)
	if len(exts) == 0 {
		return 0
	}
	f.fs.dev.Fence(ctx)
	var blocks int64
	for _, e := range exts {
		blocks += e.N
	}
	f.fs.prov.Alloc().FreeBulk(ctx, exts)
	return blocks
}

func (f *file) gatherReclaim(ctx *sim.Ctx, n *node, exts *[]alloc.Extent) {
	for i := range n.children {
		if c := n.children[i].Load(); c != nil {
			f.gatherReclaim(ctx, c, exts)
		}
	}
	if n.recIdx >= 0 {
		f.fs.dir.clear(ctx, n.recIdx)
		n.recIdx = -1
	}
	if n.logOff != 0 {
		*exts = append(*exts, alloc.Extent{Off: n.logOff, N: n.span / LeafSpan})
		n.logOff = 0
	}
	n.word.Store(0)
	n.stale.Store(false)
}

// quiesceSpins bounds the checkpoint quiesce; with cooperative scheduling
// every in-flight operation is actively running on its own goroutine, so
// the window is microscopic and the bound exists only as a safety valve.
const quiesceSpins = 10000

// Checkpoint implements cleaner.Target: bump the epoch, drain in-flight
// operations (any op that read the old epoch has retired its metadata-log
// entry by the time inFlight reaches zero — it increments inFlight before
// reading the epoch), then persist the checkpoint cell. A false return
// abandons the attempt; the stray epoch bump is harmless, since entries
// stamped with the newer epoch simply replay.
func (fs *FS) Checkpoint(ctx *sim.Ctx) bool {
	e := fs.epoch.Add(1)
	for i := 0; fs.inFlight.Load() != 0; i++ {
		if i >= quiesceSpins {
			return false
		}
		runtime.Gosched()
	}
	writeCheckpointCell(ctx, fs.dev, fs.ckptOff, checkpoint{
		epoch:     e,
		passes:    uint64(fs.stats.CleanerPasses.Load()),
		reclaimed: uint64(fs.stats.BlocksReclaimed.Load()),
	})
	fs.stats.CheckpointsTaken.Add(1)
	fs.trace.Record(ctx.ID, obs.OpCheckpoint, 0, 0, int64(e), 0)
	return true
}

// DropCheckpoint erases the checkpoint header on a device image (keeping
// the directory high-water mark, which stays valid on its own), forcing the
// next Mount down the full-replay path. Crash tests use it to assert that
// recovery with and without the checkpoint reaches identical contents.
func DropCheckpoint(ctx *sim.Ctx, dev *nvm.Device) {
	off := pmfile.MetaStart() + int64(metaLogEntries)*entrySize
	for _, o := range []int64{ckptEpoch, ckptPasses, ckptReclaimed, ckptCksum} {
		dev.Store8(ctx, off+o, 0)
	}
	dev.Fence(ctx)
}
