package core

import (
	"fmt"
	"sort"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// Update is one range of a multi-range atomic write.
type Update struct {
	Off  int64
	Data []byte
}

// WriteMulti applies several discontiguous updates as ONE failure-atomic
// operation: all ranges become visible together or not at all. This is the
// transaction-level atomicity the paper lists as future work (§IV-D: "we
// hope to add related designs in future work so that existing database
// software can obtain corresponding performance gains without
// modification") — it falls out of MGSP's commit protocol naturally, since
// a metadata-log entry chain can carry the bitmap flips of any number of
// shadowed ranges and commits with a single entry persist.
func (h *handle) WriteMulti(ctx *sim.Ctx, updates []Update) error {
	if err := h.guard(); err != nil {
		return err
	}
	if len(updates) == 0 {
		return nil
	}
	f := h.f
	fs := f.fs
	fs.stats.Writes.Add(ctx.ID, 1)
	began := ctx.Now()
	var userBytes int64
	for _, u := range updates {
		userBytes += int64(len(u.Data))
	}
	fs.stats.UserWriteBytes.Add(ctx.ID, userBytes)
	// In-flight window for the checkpoint quiesce; exits after lock release
	// (LIFO defers), see WriteAt.
	fs.inFlight.Add(1)
	defer fs.opExit(ctx)
	if fs.flusher != nil {
		// Same drain exclusion as WriteAt's direct path.
		f.flushMu.Lock(ctx)
		defer f.flushMu.Unlock(ctx)
	}
	var lo, maxEnd int64
	var err error
	if lo, maxEnd, err = f.writeMulti(ctx, updates, true); err != nil {
		return err
	}
	f.updateMinSearch(lo, maxEnd)
	dur := ctx.Now() - began
	fs.hWritev.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpWriteMulti, f.pf.Slot(), lo, maxEnd-lo, dur)
	return nil
}

// writeMulti is the shared multi-range commit body, also the write-back
// drain's door into the shadow-log protocol (internal/cache batches dirty
// frames here — DESIGN.md §13). acct distinguishes user calls (frame
// patching; the wrapper above did the stats) from drains (content came FROM
// the frames, nothing to patch; drain media traffic is attributed via the
// flusher's ctx.Tally, not the user counters). Callers own the in-flight
// window and — under write-back — flushMu; this function manages neither.
// Returns the op's extent [lo, maxEnd) for the caller's bookkeeping.
func (f *file) writeMulti(ctx *sim.Ctx, updates []Update, acct bool) (int64, int64, error) {
	fs := f.fs
	// Drain optimistic readers before mutating anything they might copy.
	f.writerEnter()
	defer f.writerExit()
	// Validate and find the op's extent.
	var maxEnd int64
	lo := updates[0].Off
	for _, u := range updates {
		if u.Off < 0 {
			return 0, 0, fmt.Errorf("core: negative offset %d", u.Off)
		}
		if end := u.Off + int64(len(u.Data)); end > maxEnd {
			maxEnd = end
		}
		if u.Off < lo {
			lo = u.Off
		}
	}
	for i, u := range updates {
		for _, v := range updates[i+1:] {
			if u.Off < v.Off+int64(len(v.Data)) && v.Off < u.Off+int64(len(u.Data)) {
				return 0, 0, fmt.Errorf("core: overlapping updates at %d and %d", u.Off, v.Off)
			}
		}
	}
	if err := f.pf.EnsureCapacity(ctx, maxEnd); err != nil {
		return 0, 0, err
	}
	f.ensureTree(ctx, f.pf.Capacity())

	entry := fs.mlog.claim(ctx, ctx.ID)

	// Decompose every update and lock the union in offset order.
	start := f.searchStart(ctx, lo, maxEnd)
	type part struct {
		seg  segment
		data []byte
	}
	var parts []part
	var allSegs []segment
	for _, u := range updates {
		if len(u.Data) == 0 {
			continue
		}
		segs := f.cover(ctx, f.root.Load(), u.Off, u.Off+int64(len(u.Data)), nil)
		for _, s := range segs {
			parts = append(parts, part{seg: s, data: u.Data[s.lo-u.Off : s.hi-u.Off]})
			allSegs = append(allSegs, s)
		}
	}
	sortSegments(allSegs)
	// Dedupe segments sharing a node (two updates in one leaf): W locks are
	// not reentrant.
	dedup := allSegs[:0]
	for _, s := range allSegs {
		if k := len(dedup) - 1; k >= 0 && dedup[k].n == s.n {
			if s.hi > dedup[k].hi {
				dedup[k].hi = s.hi
			}
			continue
		}
		dedup = append(dedup, s)
	}
	allSegs = dedup
	locks := f.lockOp(ctx, start, allSegs, true)
	defer f.release(ctx, locks)

	f.setExistingPath(ctx, ancestorsOf(allSegs))

	// Group leaf parts per node: several updates may land in one leaf, and
	// each sub-unit must shadow-toggle exactly once per operation.
	var writes []dataWrite
	var changes []wordChange
	leafRanges := make(map[*node][]rangeData)
	var leafOrder []*node
	for _, p := range parts {
		if p.seg.n.leaf {
			if _, ok := leafRanges[p.seg.n]; !ok {
				leafOrder = append(leafOrder, p.seg.n)
			}
			leafRanges[p.seg.n] = append(leafRanges[p.seg.n], rangeData{p.seg.lo, p.seg.hi, p.data})
		} else {
			w, c, err := f.planInterior(ctx, p.seg, p.data)
			if err != nil {
				return 0, 0, err
			}
			writes = append(writes, w)
			changes = append(changes, c)
		}
	}
	for _, n := range leafOrder {
		var err error
		writes, changes, err = f.planLeafRanges(ctx, n, leafRanges[n], writes, changes)
		if err != nil {
			return 0, 0, err
		}
	}
	for _, w := range writes {
		f.writeTo(ctx, w)
	}
	fs.dev.Fence(ctx)

	newSize := f.size.Load()
	if maxEnd > newSize {
		newSize = maxEnd
	}
	f.commitChanges(ctx, entry, lo, maxEnd-lo, newSize, changes)

	// Deferred unlock: SetSize persists the size word (a media op), and a
	// crash-injection panic there must not leak sizeMu to other workers.
	if maxEnd > f.size.Load() {
		func() {
			f.sizeMu.Lock(ctx)
			defer f.sizeMu.Unlock(ctx)
			if maxEnd > f.size.Load() {
				f.size.Store(maxEnd)
				f.pf.SetSize(ctx, maxEnd)
			}
		}()
	}
	fs.mlog.retire(ctx, entry)
	if acct && fs.pcache != nil {
		// Committed: bring overlapping frames up to date while the W locks
		// still exclude readers (release is deferred).
		for _, u := range updates {
			f.patchFrames(u.Data, u.Off)
		}
	}
	return lo, maxEnd, nil
}

func sortSegments(segs []segment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].lo < segs[j].lo })
}
