package core

import (
	"errors"

	"mgsp/internal/nvm"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
)

// CorruptDirectoryRecord deliberately damages an MGSP image so that fsck
// integration tests can assert Mount refuses it. It picks an in-use
// directory record, plants a committed single-entry metadata-log chain that
// flips that record's bitmap word, and then clears the record's tag — the
// state a lost directory store would leave behind. Mount must fail with
// "metadata entry references unknown record" rather than replay a flip into
// a record it cannot identify. It returns the index of the corrupted record.
//
// The image must be quiescent (no mounted FS using the device).
func CorruptDirectoryRecord(dev *nvm.Device, opts Options) (int64, error) {
	if err := opts.validate(); err != nil {
		return -1, err
	}
	ctx := sim.NewCtx(0, 0)
	prov, err := pmfile.Recover(ctx, dev, MetaBytes(dev.Size()))
	if err != nil {
		return -1, err
	}
	fs := mkFS(prov, opts)

	// Victim: the first live (non-pin) record of an existing file.
	victim := int64(-1)
	slot := -1
	for idx := int64(0); idx < fs.dir.cap; idx++ {
		tag := dev.Load8(fs.dir.off(idx) + recTag)
		if tag&tagInUse == 0 || tag&tagSnap != 0 {
			continue
		}
		s, _, _ := unpackTag(tag)
		for _, pf := range prov.Files() {
			if pf.Slot() == s {
				victim, slot = idx, s
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		return -1, errors.New("core: no in-use directory record to corrupt")
	}

	// A free metadata-log entry to plant the orphaned chain in.
	entry := -1
	var ebuf [entrySize]byte
	for i := 0; i < fs.mlog.entries; i++ {
		dev.Read(ctx, ebuf[:], fs.mlog.off(i))
		if _, ok := decodeEntry(ebuf[:]); !ok {
			entry = i
			break
		}
	}
	if entry < 0 {
		return -1, errors.New("core: metadata log full; cannot plant entry")
	}

	epoch := uint8(0)
	if ck, ok := readCheckpointCell(dev, fs.ckptOff); ok {
		epoch = uint8(ck.epoch) // not pre-checkpoint, so replay cannot skip it
	}
	fs.mlog.commit(ctx, entry, slot, 0, 8, 8,
		[]bitmapSlot{{recIdx: victim, old: 0, new: 1}}, 0, 0, 1, epoch)
	dev.Store8(ctx, fs.dir.off(victim)+recTag, 0)
	dev.Fence(ctx)
	return victim, nil
}
