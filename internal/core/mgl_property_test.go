package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestMGLStripeBijection pins the hashing property the sharded fast paths
// are built on: foreground worker IDs 0..intentStripes-1 map to pairwise
// distinct sticky-intent stripes, and 0..metaAreas-1 map to pairwise
// distinct metadata-log home areas. If the hash loses the bijection, two
// "disjoint" workers silently share a stripe (map-lock contention) or a
// home area (claim CAS contention) and the fig10 scaling story falls over
// without any test failing — so the property is pinned here.
func TestMGLStripeBijection(t *testing.T) {
	stripes := make(map[int]int)
	for w := 0; w < intentStripes; w++ {
		s := sim.WorkerHash(w) & (intentStripes - 1)
		if prev, dup := stripes[s]; dup {
			t.Errorf("workers %d and %d share intent stripe %d", prev, w, s)
		}
		stripes[s] = w
	}
	areas := make(map[int]int)
	for w := 0; w < metaAreas; w++ {
		a := sim.WorkerHash(w) % metaAreas
		if prev, dup := areas[a]; dup {
			t.Errorf("workers %d and %d share metadata home area %d", prev, w, a)
		}
		areas[a] = w
	}
}

// TestMGLDisjointWritersTryFailBudget is the contention property the
// many-core design is judged by: writers confined to disjoint regions must
// observe core.mgl_try_fails/op <= 0.05 — the same budget mgspstat enforces
// on the fig10s disjoint-rand ladder. The counter only moves when a
// try-acquisition genuinely loses (the background cleaner's subtree
// try-locks), so the cleaner runs live during the workload: disjoint
// writers keep only their own subtrees hot, and the generation stamps must
// steer the cleaner away from them.
func TestMGLDisjointWritersTryFailBudget(t *testing.T) {
	for _, writers := range []int{8, 16} {
		writers := writers
		t.Run(fmt.Sprintf("writers=%d", writers), func(t *testing.T) {
			opts := DefaultOptions()
			opts.CleanerInterval = 50_000
			opts.CleanerBudget = 64
			dev := nvm.New(256<<20, sim.DefaultCosts())
			fs := MustNew(dev, opts)

			setup := sim.NewCtx(100, 1)
			const region = 1 << 20
			f0, _ := fs.Create(setup, "f")
			f0.WriteAt(setup, make([]byte, writers*region), 0)

			const opsPer = 60
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					ctx := sim.NewCtx(id, int64(id)*71+5)
					h, err := fs.Open(ctx, "f")
					if err != nil {
						t.Errorf("open: %v", err)
						return
					}
					defer h.Close(ctx)
					base := int64(id) * region
					pat := bytes.Repeat([]byte{byte(id + 1)}, 1024)
					for i := 0; i < opsPer; i++ {
						h.WriteAt(ctx, pat, base+int64(ctx.Rand.Intn(region-1024)))
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			if fs.stats.CleanerPasses.Load() == 0 {
				t.Fatal("cleaner never ran: the try-fail budget was not exercised")
			}
			ops := int64(writers * opsPer)
			fails := fs.stats.MGLTryFails.Load()
			if perOp := float64(fails) / float64(ops); perOp > 0.05 {
				t.Fatalf("disjoint writers: %d try-fails over %d ops = %.3f/op, budget 0.05 (cleaner passes: %d)",
					fails, ops, perOp, fs.stats.CleanerPasses.Load())
			}
		})
	}
}

// TestMGLSharedPrefixSerialization is the other half of the contention
// property: when writers DO share a lock prefix — every op inside one 256K
// subtree, many ops on the very same leaf — MGL must serialize them into
// block-atomic history. Eight workers hammer four shared 4 KiB blocks while
// readers (on the optimistic lock-free path) continuously check that no
// block ever reads as an interleaving of two writers, and the final state
// of every block must be exactly one writer's fill.
func TestMGLSharedPrefixSerialization(t *testing.T) {
	opts := DefaultOptions()
	opts.OptimisticReads = true
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)

	setup := sim.NewCtx(100, 1)
	f0, _ := fs.Create(setup, "f")
	f0.WriteAt(setup, make([]byte, 256*1024), 0)

	const (
		writers = 8
		iters   = 60
		blocks  = 4
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id)*31+7)
			h, _ := fs.Open(ctx, "f")
			defer h.Close(ctx)
			pat := bytes.Repeat([]byte{byte(id + 1)}, 4096)
			for i := 0; i < iters; i++ {
				h.WriteAt(ctx, pat, int64((i+id)%blocks)*4096)
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(id int) {
			defer readerWG.Done()
			ctx := sim.NewCtx(20+id, int64(id)+99)
			h, _ := fs.Open(ctx, "f")
			defer h.Close(ctx)
			buf := make([]byte, 4096)
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := ctx.Rand.Intn(blocks)
				h.ReadAt(ctx, buf, int64(b)*4096)
				first := buf[0]
				for i, x := range buf {
					if x != first {
						t.Errorf("block %d interleaved: byte 0 = %#x, byte %d = %#x", b, first, i, x)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	got := make([]byte, blocks*4096)
	h, _ := fs.Open(setup, "f")
	h.ReadAt(setup, got, 0)
	for b := 0; b < blocks; b++ {
		blk := got[b*4096 : (b+1)*4096]
		if blk[0] == 0 || blk[0] > writers {
			t.Fatalf("block %d final byte %#x is no writer's fill", b, blk[0])
		}
		for i, x := range blk {
			if x != blk[0] {
				t.Fatalf("block %d final state interleaved at byte %d (%#x vs %#x)", b, i, x, blk[0])
			}
		}
	}
	// The readers must actually have exercised the optimistic machinery —
	// served lock-free or counted a fallback — or the serialization check
	// above silently ran on the locked path only.
	if fs.stats.OptReads.Load()+fs.stats.OptReadFallbacks.Load() == 0 {
		t.Fatal("optimistic read path never engaged")
	}
}

// TestMGLLockMatrixOptimistic extends the Table-I matrix to the optimistic
// read path's version protocol: for every mode, holding it leaves the node
// version odd exactly for W (lock-free walkers must bail), and a full
// hold/release cycle moves the version exactly for W (post-copy validation
// must fail for readers that overlapped a writer, and must NOT spuriously
// fail for readers that overlapped IR/IW/R holders).
func TestMGLLockMatrixOptimistic(t *testing.T) {
	for _, held := range []lockMode{lockIR, lockIW, lockR, lockW} {
		held := held
		t.Run(held.String(), func(t *testing.T) {
			var l mglLock
			holder := sim.NewCtx(0, 1)
			v0 := l.ver.Load()
			if v0&1 != 0 {
				t.Fatal("fresh lock version odd")
			}
			l.Lock(holder, held)
			mid := l.ver.Load()
			if wantOdd := held == lockW; (mid&1 == 1) != wantOdd {
				t.Fatalf("version %d while %v held: odd=%v, want %v", mid, held, mid&1 == 1, wantOdd)
			}
			l.Unlock(holder, held)
			v1 := l.ver.Load()
			if v1&1 != 0 {
				t.Fatalf("version %d odd after release", v1)
			}
			if held == lockW {
				if v1 == v0 {
					t.Fatal("W hold/release left the version unchanged: overlapping optimistic reads would validate stale data")
				}
			} else if v1 != v0 {
				t.Fatalf("%v hold/release moved the version %d -> %d: optimistic readers would spuriously fall back", held, v0, v1)
			}
		})
	}
}

// TestMGLLockMatrixSticky extends the Table-I matrix to the striped
// sticky-intent path: a worker holds IR/IW as a STICKY intention (cached in
// its intent stripe, never released by the idle owner) and a second worker
// acquires R/W on the same node through lockCoarse. Compatible cells must
// grant without descending; incompatible cells must descend to child locks
// (lazy intention cleaning) instead of blocking on the sticky holder — and
// the sticky bookkeeping must live in the holder's own stripe.
func TestMGLLockMatrixSticky(t *testing.T) {
	for _, held := range []lockMode{lockIR, lockIW} {
		for _, want := range []lockMode{lockR, lockW} {
			held, want := held, want
			t.Run(held.String()+"-"+want.String(), func(t *testing.T) {
				opts := smallTreeOpts()
				if !opts.LazyIntentionCleaning {
					t.Fatal("fixture must run with lazy intention cleaning")
				}
				dev := nvm.New(64<<20, sim.ZeroCosts())
				fs := MustNew(dev, opts)
				setup := sim.NewCtx(100, 1)
				f0, _ := fs.Create(setup, "f")
				f0.WriteAt(setup, make([]byte, 256*1024), 0)
				ff := fs.files["f"]

				ctxA := sim.NewCtx(0, 1)
				ctxB := sim.NewCtx(1, 2)
				// A 64 KiB interior node (degree 4: 4K leaves, 16K, 64K spans).
				target := ff.ensureChild(ctxA, ff.root.Load(), 0)
				if target.leaf {
					t.Fatalf("fixture node is a leaf (span %d)", target.span)
				}

				olA := &opLocks{}
				ff.acquireIntent(ctxA, target, held, olA)
				sh := ff.intentShard(ctxA.ID)
				sh.mu.Lock()
				wi := sh.m[ctxA.ID][target]
				sh.mu.Unlock()
				if wi == nil {
					t.Fatal("sticky intent not recorded in the holder's stripe")
				}

				d0 := fs.stats.Descends.Load()
				olB := &opLocks{write: want == lockW}
				done := make(chan struct{})
				go func() {
					ff.lockCoarse(ctxB, target, want, olB)
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatalf("lockCoarse(%v) blocked on a sticky %v that will never release", want, held)
				}
				descended := fs.stats.Descends.Load() > d0
				if ok := compatible(held, want); descended == ok {
					t.Fatalf("lockCoarse(%v) against sticky %v: descended=%v, compatible=%v",
						want, held, descended, ok)
				}
				ff.release(ctxB, olB)
				ff.dropStickyIntent(ctxA, target)
			})
		}
	}
}
