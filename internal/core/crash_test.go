package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// crashRun executes setup, arms the device at fail point `fail`, runs op,
// and reports whether the crash fired. On crash it recovers the device and
// returns the remounted FS.
func crashRun(t *testing.T, opts Options, fail int64, setup, op func(*sim.Ctx, *FS)) (*FS, bool) {
	t.Helper()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	setup(ctx, fs)

	dev.ArmCrash(fail, fail*7+3)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != nvm.ErrCrashed {
					panic(r)
				}
				crashed = true
			}
		}()
		op(ctx, fs)
	}()
	dev.DisarmCrash()
	if !crashed {
		return fs, false
	}
	dev.Recover()
	fs2, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatalf("fail=%d: Mount after crash: %v", fail, err)
	}
	return fs2, true
}

// TestCrashSweepSingleWriteAtomicity sweeps every media-op fail point
// through one 4 KiB overwrite and asserts all-or-nothing.
func TestCrashSweepSingleWriteAtomicity(t *testing.T) {
	opts := smallTreeOpts()
	oldData := bytes.Repeat([]byte{0xAA}, 16384)
	newData := bytes.Repeat([]byte{0xBB}, 4096)

	for fail := int64(0); ; fail++ {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 4096)
			})
		ctx := sim.NewCtx(9, 9)
		f, err := fs.Open(ctx, "f")
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		got := make([]byte, 16384)
		n, _ := f.ReadAt(ctx, got, 0)
		if n != 16384 {
			t.Fatalf("fail=%d: short read %d", fail, n)
		}
		want := append([]byte{}, oldData...)
		if bytes.Equal(got[4096:8192], newData) {
			copy(want[4096:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: torn write visible at byte %d (got %#x)", fail, crashed, i, got[i])
				}
			}
		}
		if !crashed {
			if fail == 0 {
				t.Fatal("sweep never crashed")
			}
			return
		}
	}
}

// TestCrashSweepFineWrite does the same for a sub-block (700 B, unaligned)
// write, which exercises the sub-unit toggle and RMW paths.
func TestCrashSweepFineWrite(t *testing.T) {
	opts := smallTreeOpts()
	oldData := bytes.Repeat([]byte{0x11}, 8192)
	newData := bytes.Repeat([]byte{0x22}, 700)

	for fail := int64(0); ; fail++ {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
				f.WriteAt(ctx, bytes.Repeat([]byte{0x33}, 100), 3000) // seed fine-grained state
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 2900)
			})
		ctx := sim.NewCtx(9, 9)
		f, _ := fs.Open(ctx, "f")
		got := make([]byte, 8192)
		f.ReadAt(ctx, got, 0)

		want := append([]byte{}, oldData...)
		copy(want[3000:], bytes.Repeat([]byte{0x33}, 100))
		if bytes.Equal(got[2900:3600], newData) {
			copy(want[2900:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: byte %d got %#x want %#x", fail, crashed, i, got[i], want[i])
				}
			}
		}
		if !crashed {
			return
		}
	}
}

// TestCrashSweepCoarseWrite exercises the interior-node toggle: a 64 KiB
// aligned write at degree 4 (span 16K and 64K nodes exist).
func TestCrashSweepCoarseWrite(t *testing.T) {
	opts := smallTreeOpts()
	oldData := bytes.Repeat([]byte{0x44}, 256*1024)
	newData := bytes.Repeat([]byte{0x55}, 64*1024)

	for fail := int64(0); ; fail++ {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
				f.WriteAt(ctx, oldData[:64*1024], 64*1024) // toggle some state
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 64*1024)
			})
		ctx := sim.NewCtx(9, 9)
		f, _ := fs.Open(ctx, "f")
		got := make([]byte, 256*1024)
		f.ReadAt(ctx, got, 0)
		want := append([]byte{}, oldData...)
		if bytes.Equal(got[64*1024:128*1024], newData) {
			copy(want[64*1024:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: byte %d got %#x want %#x", fail, crashed, i, got[i], want[i])
				}
			}
		}
		if !crashed {
			return
		}
	}
}

// TestCrashRandomizedWorkload runs a scripted random workload, crashes at a
// random media-op index, and checks the recovered file matches the
// reference at some op boundary >= the last completed op (operation-level
// atomicity: each write is all-or-nothing and ordered).
func TestCrashRandomizedWorkload(t *testing.T) {
	opts := smallTreeOpts()
	const fileSize = 128 * 1024
	const opsTotal = 60

	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 131))
		// Pre-generate the op sequence so we can replay references.
		type wr struct {
			off int64
			n   int
			pat byte
		}
		var script []wr
		for i := 0; i < opsTotal; i++ {
			script = append(script, wr{
				off: int64(rng.Intn(fileSize - 70000)),
				n:   rng.Intn(65536) + 1,
				pat: byte(i + 1),
			})
		}
		fail := int64(rng.Intn(800) + 1)

		dev := nvm.New(128<<20, sim.ZeroCosts())
		fs := MustNew(dev, opts)
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		f.WriteAt(ctx, make([]byte, fileSize), 0) // dense base

		completed := -1
		dev.ArmCrash(fail, int64(trial))
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			for i, w := range script {
				f.WriteAt(ctx, bytes.Repeat([]byte{w.pat}, w.n), w.off)
				completed = i
			}
		}()
		dev.DisarmCrash()
		dev.Recover()
		fs2, err := Mount(ctx, dev, opts)
		if err != nil {
			t.Fatalf("trial %d: Mount: %v", trial, err)
		}
		ctx2 := sim.NewCtx(1, 2)
		f2, err := fs2.Open(ctx2, "f")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make([]byte, fileSize)
		f2.ReadAt(ctx2, got, 0)

		// Build the two acceptable states: all ops through `completed`, or
		// additionally the (committed-before-crash) op completed+1.
		ref := make([]byte, fileSize)
		for i := 0; i <= completed; i++ {
			w := script[i]
			for j := 0; j < w.n; j++ {
				ref[w.off+int64(j)] = w.pat
			}
		}
		if bytes.Equal(got, ref) {
			continue
		}
		if completed+1 < len(script) {
			w := script[completed+1]
			for j := 0; j < w.n; j++ {
				ref[w.off+int64(j)] = w.pat
			}
			if bytes.Equal(got, ref) {
				continue
			}
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d (fail=%d, completed=%d): recovered state is not an op boundary; first diff at %d: got %#x want %#x",
					trial, fail, completed, i, got[i], ref[i])
			}
		}
	}
}

// TestRecoveryIdempotent: mounting twice yields the same content.
func TestRecoveryIdempotent(t *testing.T) {
	opts := smallTreeOpts()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, bytes.Repeat([]byte{9}, 100000), 0)
	dev.ArmCrash(40, 99)
	func() {
		defer func() { recover() }()
		for i := 0; i < 100; i++ {
			f.WriteAt(ctx, bytes.Repeat([]byte{byte(i)}, 3000), int64(i*900))
		}
	}()
	dev.Recover()
	fs2, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := fs2.Open(ctx, "f")
	a := make([]byte, 100000)
	f2.ReadAt(ctx, a, 0)

	dev.DropVolatile()
	fs3, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatalf("second mount: %v", err)
	}
	f3, _ := fs3.Open(ctx, "f")
	b := make([]byte, 100000)
	f3.ReadAt(ctx, b, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("recovery is not idempotent")
	}
}

// TestCrashDuringRecoveryWriteback: crash during Mount's write-back, then
// mount again — content must still be correct (write-back is idempotent).
func TestCrashDuringRecovery(t *testing.T) {
	opts := smallTreeOpts()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	want := bytes.Repeat([]byte{0xE1}, 50000)
	f.WriteAt(ctx, want, 0)
	f.WriteAt(ctx, want[:8192], 8192)

	dev.DropVolatile()
	for fail := int64(1); fail < 200; fail += 13 {
		dev.ArmCrash(fail, fail)
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			if _, err := Mount(ctx, dev, opts); err != nil {
				panic(fmt.Sprintf("mount error: %v", err))
			}
		}()
		dev.DisarmCrash()
		dev.Recover()
	}
	fs4, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatalf("final mount: %v", err)
	}
	f4, _ := fs4.Open(ctx, "f")
	got := make([]byte, 50000)
	f4.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("content corrupted by crash during recovery")
	}
}

// TestCrashSweepChainedCommit: a write whose decomposition needs more than
// ten bitmap slots commits through a metadata-log entry chain; the chain
// must be all-or-nothing at every fail point (incomplete chains are
// discarded at recovery).
func TestCrashSweepChainedCommit(t *testing.T) {
	opts := DefaultOptions() // degree 64: a 128K+1K-offset write spans 30+ leaves
	oldData := bytes.Repeat([]byte{0x51}, 256*1024)
	newData := bytes.Repeat([]byte{0x62}, 128*1024)

	for fail := int64(0); ; fail += 3 {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 1024) // unaligned: many leaf targets
			})
		ctx := sim.NewCtx(9, 9)
		f, _ := fs.Open(ctx, "f")
		got := make([]byte, 256*1024)
		f.ReadAt(ctx, got, 0)
		want := append([]byte{}, oldData...)
		if bytes.Equal(got[1024:1024+128*1024], newData) {
			copy(want[1024:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: chained commit torn at byte %d (got %#x)", fail, crashed, i, got[i])
				}
			}
		}
		if !crashed {
			if fail == 0 {
				t.Fatal("sweep never crashed")
			}
			return
		}
	}
}
