package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// crashRun executes setup, arms the device at fail point `fail`, runs op,
// and reports whether the crash fired. On crash it recovers the device and
// returns the remounted FS.
func crashRun(t *testing.T, opts Options, fail int64, setup, op func(*sim.Ctx, *FS)) (*FS, bool) {
	t.Helper()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	setup(ctx, fs)

	dev.ArmCrash(fail, fail*7+3)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != nvm.ErrCrashed {
					panic(r)
				}
				crashed = true
			}
		}()
		op(ctx, fs)
	}()
	dev.DisarmCrash()
	if !crashed {
		return fs, false
	}
	dev.Recover()
	fs2, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatalf("fail=%d: Mount after crash: %v", fail, err)
	}
	return fs2, true
}

// TestCrashSweepSingleWriteAtomicity sweeps every media-op fail point
// through one 4 KiB overwrite and asserts all-or-nothing.
func TestCrashSweepSingleWriteAtomicity(t *testing.T) {
	opts := smallTreeOpts()
	oldData := bytes.Repeat([]byte{0xAA}, 16384)
	newData := bytes.Repeat([]byte{0xBB}, 4096)

	for fail := int64(0); ; fail++ {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 4096)
			})
		ctx := sim.NewCtx(9, 9)
		f, err := fs.Open(ctx, "f")
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		got := make([]byte, 16384)
		n, _ := f.ReadAt(ctx, got, 0)
		if n != 16384 {
			t.Fatalf("fail=%d: short read %d", fail, n)
		}
		want := append([]byte{}, oldData...)
		if bytes.Equal(got[4096:8192], newData) {
			copy(want[4096:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: torn write visible at byte %d (got %#x)", fail, crashed, i, got[i])
				}
			}
		}
		if !crashed {
			if fail == 0 {
				t.Fatal("sweep never crashed")
			}
			return
		}
	}
}

// TestCrashSweepFineWrite does the same for a sub-block (700 B, unaligned)
// write, which exercises the sub-unit toggle and RMW paths.
func TestCrashSweepFineWrite(t *testing.T) {
	opts := smallTreeOpts()
	oldData := bytes.Repeat([]byte{0x11}, 8192)
	newData := bytes.Repeat([]byte{0x22}, 700)

	for fail := int64(0); ; fail++ {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
				f.WriteAt(ctx, bytes.Repeat([]byte{0x33}, 100), 3000) // seed fine-grained state
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 2900)
			})
		ctx := sim.NewCtx(9, 9)
		f, _ := fs.Open(ctx, "f")
		got := make([]byte, 8192)
		f.ReadAt(ctx, got, 0)

		want := append([]byte{}, oldData...)
		copy(want[3000:], bytes.Repeat([]byte{0x33}, 100))
		if bytes.Equal(got[2900:3600], newData) {
			copy(want[2900:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: byte %d got %#x want %#x", fail, crashed, i, got[i], want[i])
				}
			}
		}
		if !crashed {
			return
		}
	}
}

// TestCrashSweepCoarseWrite exercises the interior-node toggle: a 64 KiB
// aligned write at degree 4 (span 16K and 64K nodes exist).
func TestCrashSweepCoarseWrite(t *testing.T) {
	opts := smallTreeOpts()
	oldData := bytes.Repeat([]byte{0x44}, 256*1024)
	newData := bytes.Repeat([]byte{0x55}, 64*1024)

	for fail := int64(0); ; fail++ {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
				f.WriteAt(ctx, oldData[:64*1024], 64*1024) // toggle some state
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 64*1024)
			})
		ctx := sim.NewCtx(9, 9)
		f, _ := fs.Open(ctx, "f")
		got := make([]byte, 256*1024)
		f.ReadAt(ctx, got, 0)
		want := append([]byte{}, oldData...)
		if bytes.Equal(got[64*1024:128*1024], newData) {
			copy(want[64*1024:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: byte %d got %#x want %#x", fail, crashed, i, got[i], want[i])
				}
			}
		}
		if !crashed {
			return
		}
	}
}

// TestCrashRandomizedWorkload runs a scripted random workload, crashes at a
// random media-op index, and checks the recovered file matches the
// reference at some op boundary >= the last completed op (operation-level
// atomicity: each write is all-or-nothing and ordered).
func TestCrashRandomizedWorkload(t *testing.T) {
	opts := smallTreeOpts()
	const fileSize = 128 * 1024
	const opsTotal = 60

	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 131))
		// Pre-generate the op sequence so we can replay references.
		type wr struct {
			off int64
			n   int
			pat byte
		}
		var script []wr
		for i := 0; i < opsTotal; i++ {
			script = append(script, wr{
				off: int64(rng.Intn(fileSize - 70000)),
				n:   rng.Intn(65536) + 1,
				pat: byte(i + 1),
			})
		}
		fail := int64(rng.Intn(800) + 1)

		dev := nvm.New(128<<20, sim.ZeroCosts())
		fs := MustNew(dev, opts)
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		f.WriteAt(ctx, make([]byte, fileSize), 0) // dense base

		completed := -1
		dev.ArmCrash(fail, int64(trial))
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			for i, w := range script {
				f.WriteAt(ctx, bytes.Repeat([]byte{w.pat}, w.n), w.off)
				completed = i
			}
		}()
		dev.DisarmCrash()
		dev.Recover()
		fs2, err := Mount(ctx, dev, opts)
		if err != nil {
			t.Fatalf("trial %d: Mount: %v", trial, err)
		}
		ctx2 := sim.NewCtx(1, 2)
		f2, err := fs2.Open(ctx2, "f")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make([]byte, fileSize)
		f2.ReadAt(ctx2, got, 0)

		// Build the two acceptable states: all ops through `completed`, or
		// additionally the (committed-before-crash) op completed+1.
		ref := make([]byte, fileSize)
		for i := 0; i <= completed; i++ {
			w := script[i]
			for j := 0; j < w.n; j++ {
				ref[w.off+int64(j)] = w.pat
			}
		}
		if bytes.Equal(got, ref) {
			continue
		}
		if completed+1 < len(script) {
			w := script[completed+1]
			for j := 0; j < w.n; j++ {
				ref[w.off+int64(j)] = w.pat
			}
			if bytes.Equal(got, ref) {
				continue
			}
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d (fail=%d, completed=%d): recovered state is not an op boundary; first diff at %d: got %#x want %#x",
					trial, fail, completed, i, got[i], ref[i])
			}
		}
	}
}

// TestRecoveryIdempotent: mounting twice yields the same content.
func TestRecoveryIdempotent(t *testing.T) {
	opts := smallTreeOpts()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, bytes.Repeat([]byte{9}, 100000), 0)
	dev.ArmCrash(40, 99)
	func() {
		defer func() { recover() }()
		for i := 0; i < 100; i++ {
			f.WriteAt(ctx, bytes.Repeat([]byte{byte(i)}, 3000), int64(i*900))
		}
	}()
	dev.Recover()
	fs2, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := fs2.Open(ctx, "f")
	a := make([]byte, 100000)
	f2.ReadAt(ctx, a, 0)

	dev.DropVolatile()
	fs3, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatalf("second mount: %v", err)
	}
	f3, _ := fs3.Open(ctx, "f")
	b := make([]byte, 100000)
	f3.ReadAt(ctx, b, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("recovery is not idempotent")
	}
}

// TestCrashDuringRecoveryWriteback: crash during Mount's write-back, then
// mount again — content must still be correct (write-back is idempotent).
func TestCrashDuringRecovery(t *testing.T) {
	opts := smallTreeOpts()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	want := bytes.Repeat([]byte{0xE1}, 50000)
	f.WriteAt(ctx, want, 0)
	f.WriteAt(ctx, want[:8192], 8192)

	dev.DropVolatile()
	for fail := int64(1); fail < 200; fail += 13 {
		dev.ArmCrash(fail, fail)
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			if _, err := Mount(ctx, dev, opts); err != nil {
				panic(fmt.Sprintf("mount error: %v", err))
			}
		}()
		dev.DisarmCrash()
		dev.Recover()
	}
	fs4, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatalf("final mount: %v", err)
	}
	f4, _ := fs4.Open(ctx, "f")
	got := make([]byte, 50000)
	f4.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("content corrupted by crash during recovery")
	}
}

// TestCrashSweepChainedCommit: a write whose decomposition needs more than
// ten bitmap slots commits through a metadata-log entry chain; the chain
// must be all-or-nothing at every fail point (incomplete chains are
// discarded at recovery).
func TestCrashSweepChainedCommit(t *testing.T) {
	opts := DefaultOptions() // degree 64: a 128K+1K-offset write spans 30+ leaves
	oldData := bytes.Repeat([]byte{0x51}, 256*1024)
	newData := bytes.Repeat([]byte{0x62}, 128*1024)

	for fail := int64(0); ; fail += 3 {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 1024) // unaligned: many leaf targets
			})
		ctx := sim.NewCtx(9, 9)
		f, _ := fs.Open(ctx, "f")
		got := make([]byte, 256*1024)
		f.ReadAt(ctx, got, 0)
		want := append([]byte{}, oldData...)
		if bytes.Equal(got[1024:1024+128*1024], newData) {
			copy(want[1024:], newData)
		}
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fail=%d crashed=%v: chained commit torn at byte %d (got %#x)", fail, crashed, i, got[i])
				}
			}
		}
		if !crashed {
			if fail == 0 {
				t.Fatal("sweep never crashed")
			}
			return
		}
	}
}

// TestCrashSweepSlotReuseResurrection regresses the retired-entry
// resurrection hazard in the metadata log's slot-reuse protocol. One worker
// issues enough single-entry writes to wrap its 15-slot home-area rotation
// several times, so later commits land in slots holding retired corpses of
// earlier ops with identical length fields. A torn re-commit then persists
// only a short prefix of the new entry — and with a retire that zeroed only
// the length word, a prefix stopping before the checksum field would revive
// the corpse bit-identically for recovery to replay over state that later
// completed ops had already moved past. The sweep hits every media-op index,
// so some fail points land exactly on those reused-slot commits with every
// possible tear prefix; the oracle requires each region to hold the pattern
// of its last completed write (or the one in-flight write), uniformly.
func TestCrashSweepSlotReuseResurrection(t *testing.T) {
	opts := smallTreeOpts()
	const (
		regions    = 4
		regionSize = 4096
		ops        = 24 // wraps the 15-op home rotation: commits 16..24 reuse retired slots
	)

	for fail := int64(0); ; fail++ {
		completed := 0
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, make([]byte, regions*regionSize), 0)
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				for i := 0; i < ops; i++ {
					pat := bytes.Repeat([]byte{byte(i + 1)}, regionSize)
					f.WriteAt(ctx, pat, int64(i%regions)*regionSize)
					completed = i + 1
				}
			})
		ctx := sim.NewCtx(9, 9)
		f, err := fs.Open(ctx, "f")
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		got := make([]byte, regions*regionSize)
		if n, _ := f.ReadAt(ctx, got, 0); n != len(got) {
			t.Fatalf("fail=%d: short read %d", fail, n)
		}
		for r := 0; r < regions; r++ {
			// The last completed write on region r, if any, and the one write
			// that may have been in flight at the crash.
			last := byte(0)
			for i := completed - 1; i >= 0; i-- {
				if i%regions == r {
					last = byte(i + 1)
					break
				}
			}
			inflight := byte(0)
			if completed < ops && completed%regions == r {
				inflight = byte(completed + 1)
			}
			region := got[r*regionSize : (r+1)*regionSize]
			pat := region[0]
			if pat != last && (inflight == 0 || pat != inflight) {
				t.Fatalf("fail=%d completed=%d: region %d regressed to pattern %#x (want %#x or in-flight %#x) — retired entry resurrected",
					fail, completed, r, pat, last, inflight)
			}
			for j, b := range region {
				if b != pat {
					t.Fatalf("fail=%d completed=%d: region %d torn at byte %d (%#x vs %#x)",
						fail, completed, r, j, b, pat)
				}
			}
		}
		if !crashed {
			if fail == 0 {
				t.Fatal("sweep never crashed")
			}
			if completed != ops {
				t.Fatalf("uncrashed run completed %d/%d ops", completed, ops)
			}
			return
		}
	}
}

// TestCrashSweepCursorPublish sweeps fail points through raw metadata-log
// traffic — claims that publish area cursors, spill into a neighbor area,
// commit, and retire — and checks the two stitching invariants recovery's
// bounded per-area scan relies on, at every crash point:
//
//   - ordering: a valid op entry never sits in a slot above its area's
//     valid durable cursor (claims persist the cursor before returning);
//   - no resurrection: a slot decodes to at most the entry most recently
//     committed there; once its retire has returned, it decodes as dead.
//
// The spill phase holds >15 claims from one worker so the cursor publish
// path runs in a neighboring area too (crash between the two areas' slot
// publishes is one of the swept points).
func TestCrashSweepCursorPublish(t *testing.T) {
	const entries = metaAreas * metaAreaSlots

	for fail := int64(1); ; fail++ {
		dev := nvm.New(1<<20, sim.ZeroCosts())
		ctx := sim.NewCtx(0, 1)
		m := newMetaLog(dev, 0, entries)

		// attempt[i] is the group id of the entry most recently committed (or
		// being committed) in slot i; retired[i] is set once retire returns.
		attempt := make(map[int]uint32)
		retired := make(map[int]bool)
		group := uint32(0)
		doCommit := func(i, w int) {
			group++
			attempt[i] = group
			delete(retired, i)
			m.commit(ctx, i, w, int64(i)*4096, 4096, 1<<20,
				[]bitmapSlot{{recIdx: int64(i), old: 1, new: 2}}, group, 0, 1, 1)
		}

		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrCrashed {
						panic(r)
					}
					crashed = true
				}
			}()
			dev.ArmCrash(fail, fail*13+5)
			// Phase 1: worker 3 claims 20 entries without retiring — the home
			// area fills at 15 and the rest spill into the next area, with a
			// cursor publish in each.
			held := make([]int, 0, 20)
			for k := 0; k < 20; k++ {
				i := m.claim(ctx, 3)
				doCommit(i, 3)
				held = append(held, i)
			}
			for _, i := range held {
				m.retire(ctx, i)
				retired[i] = true
			}
			// Phase 2: claim/commit/retire cycles from several workers; worker
			// 3's claims reuse the phase-1 slots (the ABA window).
			for k := 0; k < 30; k++ {
				w := k % 5
				i := m.claim(ctx, w)
				doCommit(i, w)
				m.retire(ctx, i)
				retired[i] = true
			}
		}()
		dev.DisarmCrash()
		if !crashed {
			if fail == 1 {
				t.Fatal("sweep never crashed")
			}
			return
		}
		dev.Recover()

		m2 := newMetaLog(dev, 0, entries)
		for i := 0; i < entries; i++ {
			if i%metaAreaSlots == 0 {
				continue // cursor slots
			}
			var buf [entrySize]byte
			for j := 0; j < entrySize; j += 8 {
				binary.LittleEndian.PutUint64(buf[j:], dev.Load8(m2.off(i)+int64(j)))
			}
			e, ok := decodeEntry(buf[:])
			if !ok {
				continue
			}
			if e.kind == entKindCursor {
				t.Fatalf("fail=%d: cursor entry decoded in op slot %d", fail, i)
			}
			if retired[i] {
				t.Fatalf("fail=%d: slot %d decodes valid (group %d) after its retire returned — resurrected corpse",
					fail, i, e.group)
			}
			if g, ok := attempt[i]; !ok || e.group != g {
				t.Fatalf("fail=%d: slot %d decodes group %d, last commit attempt there was group %d — stale incarnation revived",
					fail, i, e.group, g)
			}
			a, s := i/metaAreaSlots, i%metaAreaSlots
			if hw, ok := m2.readCursor(a); ok && s > hw {
				t.Fatalf("fail=%d: valid entry in area %d slot %d above durable cursor %d — bounded scan would miss it",
					fail, a, s, hw)
			}
		}
	}
}
