package core

import (
	"bytes"
	"reflect"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// fuzzSeedEntries commits one entry of every kind/width through the real
// metaLog encoders and returns the raw bytes, so the fuzzer starts from
// valid corpus entries rather than having to forge a CRC.
func fuzzSeedEntries() [][]byte {
	dev := nvm.New(1<<20, sim.ZeroCosts())
	ctx := sim.NewCtx(0, 1)
	m := newMetaLog(dev, 0, 16)

	m.commit(ctx, 0, 3, 4096, 8192, 1<<20,
		[]bitmapSlot{{recIdx: 7, old: 0x00ff, new: 0xff00}}, 9, 0, 1, 2) // 64-byte op
	m.commit(ctx, 1, 5, 0, 64, 1<<16, []bitmapSlot{
		{recIdx: 1, old: 1, new: 3}, {recIdx: 2, old: 0, new: 1}, {recIdx: 3, old: 7, new: 0xf},
		{recIdx: 4, old: 0, new: 0x10}, {recIdx: 5, old: 2, new: 6},
	}, 12, 1, 2, 0) // 128-byte op chain member
	m.commitSnap(ctx, 2, 4, 512, 1024, 1<<18,
		[]snapSlot{{recIdx: 11, kind: snapSlotWord, old: 1, new: 3}}, 0, 0, 1, 1) // 64-byte snap-op
	m.commitSnap(ctx, 3, 4, 0, 4096, 1<<18, []snapSlot{
		{recIdx: 11, kind: snapSlotWord, old: 1, new: 3},
		{recIdx: 12, kind: snapSlotLogSwap, logOff: 1 << 14},
	}, 7, 0, 1, 1) // 128-byte snap-op with a log swap
	m.commitSnapshotMark(ctx, 4, entKindSnapCreate, 2, 9, 1<<12, 1)
	m.commitSnapshotMark(ctx, 5, entKindSnapDrop, 2, 9, 0, 1)

	out := make([][]byte, 0, 6)
	for i := 0; i < 6; i++ {
		buf := make([]byte, entrySize)
		dev.Read(ctx, buf, m.off(i))
		out = append(out, buf)
	}
	return out
}

// coveredBytes reports how many leading bytes of a decoded entry are under
// its checksum — the short-flush width commit actually persisted.
func coveredBytes(e logEntry) int {
	switch e.kind {
	case entKindOp:
		if len(e.slots) <= 2 {
			return 64
		}
	case entKindOpSnap:
		if len(e.snaps) <= 1 {
			return 64
		}
	case entKindSnapCreate, entKindSnapDrop, entKindCursor:
		return 64
	}
	return entrySize
}

// FuzzDecodeEntry drives decodeEntry with arbitrary 128-byte records and
// checks the crash-safety contract of the metadata log:
//
//   - decode never panics, whatever the bytes (a torn or scribbled entry is
//     data, not a crash);
//   - any single-bit flip inside the checksummed prefix of a valid entry is
//     rejected — a corrupted entry must read as "retired", never replay;
//   - flips past the checksummed prefix (bytes the short flush never wrote)
//     leave the decode bit-identical.
func FuzzDecodeEntry(f *testing.F) {
	for _, seed := range fuzzSeedEntries() {
		f.Add(seed)
	}
	f.Add(make([]byte, entrySize))
	f.Add(bytes.Repeat([]byte{0xff}, entrySize))

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := make([]byte, entrySize)
		copy(buf, data)
		e, ok := decodeEntry(buf)
		if !ok {
			return
		}
		n := coveredBytes(e)
		flipped := make([]byte, entrySize)
		for bit := 0; bit < n*8; bit++ {
			copy(flipped, buf)
			flipped[bit/8] ^= 1 << (bit % 8)
			if fe, fok := decodeEntry(flipped); fok {
				t.Fatalf("bit flip at %d (covered %d bytes) accepted: %+v", bit, n, fe)
			}
		}
		for bit := n * 8; bit < entrySize*8; bit++ {
			copy(flipped, buf)
			flipped[bit/8] ^= 1 << (bit % 8)
			fe, fok := decodeEntry(flipped)
			if !fok || !reflect.DeepEqual(fe, e) {
				t.Fatalf("flip at uncovered bit %d changed the decode (ok=%v)", bit, fok)
			}
		}
	})
}

// fuzzSeedCursors persists per-worker area cursors through the real
// writeCursor encoder and returns the raw 64-byte-significant entries (padded
// to entrySize), so the cursor fuzzer starts from checksum-valid corpus.
func fuzzSeedCursors() [][]byte {
	dev := nvm.New(1<<20, sim.ZeroCosts())
	ctx := sim.NewCtx(0, 1)
	m := newMetaLog(dev, 0, metaAreas*metaAreaSlots)

	out := make([][]byte, 0, 3)
	for _, c := range []struct{ a, hw int }{{0, 1}, {3, metaAreaOpSlots}, {metaAreas - 1, 7}} {
		m.writeCursor(ctx, c.a, c.hw)
		buf := make([]byte, entrySize)
		dev.Read(ctx, buf, m.off(c.a*metaAreaSlots))
		out = append(out, buf)
	}
	return out
}

// FuzzDecodeCursor drives the per-worker area-cursor decode path
// (decodeEntry + cursorBound) with arbitrary bytes. The cursor is an upper
// bound only — recovery falls back to a full-area scan when it is missing —
// but an ACCEPTED cursor is load-bearing for the bounded scan, so the
// contract is strict:
//
//   - decode never panics, whatever the bytes;
//   - cursorBound only accepts entries of kind entKindCursor whose area id
//     matches and whose high-water lies in [1, metaAreaOpSlots] — a
//     checksummed-but-foreign entry (wrong area, scribbled offset) must not
//     bound another area's scan;
//   - any single-bit flip inside the checksummed 64-byte prefix of a valid
//     cursor is rejected, so a torn cursor write degrades to the full scan
//     instead of truncating it.
func FuzzDecodeCursor(f *testing.F) {
	for _, seed := range fuzzSeedCursors() {
		f.Add(seed)
	}
	f.Add(make([]byte, entrySize))
	f.Add(bytes.Repeat([]byte{0xff}, entrySize))

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := make([]byte, entrySize)
		copy(buf, data)
		e, ok := decodeEntry(buf)
		if !ok {
			for a := 0; a < metaAreas; a++ {
				if hw, bok := cursorBound(e, a); bok {
					t.Fatalf("cursorBound accepted an invalid decode (area %d, hw %d)", a, hw)
				}
			}
			return
		}
		accepted := 0
		for a := 0; a < metaAreas; a++ {
			hw, bok := cursorBound(e, a)
			if !bok {
				continue
			}
			accepted++
			if e.kind != entKindCursor {
				t.Fatalf("cursorBound accepted kind %d as a cursor", e.kind)
			}
			if e.fileSlot != a {
				t.Fatalf("cursorBound bound area %d with area %d's cursor", a, e.fileSlot)
			}
			if hw < 1 || hw > metaAreaOpSlots {
				t.Fatalf("cursorBound returned out-of-range high-water %d", hw)
			}
		}
		if accepted > 1 {
			t.Fatalf("cursor accepted by %d distinct areas", accepted)
		}
		if e.kind != entKindCursor {
			return
		}
		flipped := make([]byte, entrySize)
		for bit := 0; bit < 64*8; bit++ {
			copy(flipped, buf)
			flipped[bit/8] ^= 1 << (bit % 8)
			if fe, fok := decodeEntry(flipped); fok {
				t.Fatalf("cursor bit flip at %d accepted: %+v", bit, fe)
			}
		}
	})
}
