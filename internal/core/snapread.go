package core

import (
	"fmt"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// snapHandle is a read-only vfs.File over one snapshot's frozen image. Reads
// resolve through the same radix tree as live reads, but every node's
// (word, logOff) is replaced by the snapshot's view: the serving pin if the
// node was mutated after the snapshot, the live state otherwise, and
// "nonexistent" for nodes recorded after the snapshot froze.
type snapHandle struct {
	f      *file
	s      *snapshot
	closed bool
}

func (h *snapHandle) Size() int64 { return h.s.size }

func (h *snapHandle) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	return 0, vfs.ErrReadOnly
}

func (h *snapHandle) Truncate(ctx *sim.Ctx, size int64) error { return vfs.ErrReadOnly }

// Fsync is a no-op: a snapshot is durable from the moment its create mark
// committed.
func (h *snapHandle) Fsync(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	return nil
}

func (h *snapHandle) Close(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	h.closed = true
	h.s.handles.Add(-1)
	ctx.Advance(h.f.fs.costs.Syscall)
	return nil
}

func (h *snapHandle) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	f := h.f
	f.fs.stats.SnapshotReads.Add(1)
	size := h.s.size
	if off >= size || len(p) == 0 {
		return 0, nil
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	end := off + int64(n)
	root := f.root.Load()
	if root == nil {
		// No live tree: the file bytes are the frozen truth (and they stay
		// frozen — write-back is deferred while snapshots live).
		f.pf.DirectRead(ctx, p[:n], off)
		return n, nil
	}
	// Same MGL read locking as live reads: snapshot readers run concurrently
	// with each other and with writers outside the locked ranges.
	began := ctx.Now()
	start := f.searchStart(ctx, off, end)
	segs := f.readCover(ctx, start, off, end, nil)
	locks := f.lockOp(ctx, start, segs, false)
	f.snapWalk(ctx, root, h.s.id, off, end, 0, 0, p[:n], off)
	f.release(ctx, locks)
	f.fs.trace.Record(ctx.ID, obs.OpSnapRead, f.pf.Slot(), off, int64(n), ctx.Now()-began)
	return n, nil
}

// snapNodeView returns the (word, logOff) snapshot sid sees at node n.
// Nodes recorded at or after the snapshot froze are invisible: leaves expose
// no valid units; interiors still descend (existing-only) because tree
// growth re-parents older nodes under newer roots.
func (f *file) snapNodeView(n *node, sid uint64) (uint64, int64) {
	if n.birth.Load() >= sid {
		if n.leaf {
			return 0, 0
		}
		return bitExisting, 0
	}
	if p := f.pinFor(n, sid); p != nil {
		return p.word, p.logOff
	}
	return n.word.Load(), n.logOff
}

// snapWalk mirrors walkResolve with per-node views. The fallback source is
// carried explicitly as (lvLog, lvOff) — the nearest ancestor whose VIEW is
// valid, reading at lvLog + (pos - lvOff); lvLog == 0 means the file itself.
func (f *file) snapWalk(ctx *sim.Ctx, n *node, sid uint64, lo, hi, lvLog, lvOff int64, buf []byte, base int64) {
	ctx.Advance(f.fs.costs.IndexStep)
	word, logOff := f.snapNodeView(n, sid)
	if n.leaf {
		f.snapLeaf(ctx, n, sid, word, logOff, lo, hi, lvLog, lvOff, buf, base)
		return
	}
	if word&bitValid != 0 && logOff != 0 {
		lvLog, lvOff = logOff, n.offset()
	}
	if word&bitExisting == 0 {
		f.snapReadFrom(ctx, sid, lvLog, lvOff, lo, hi, buf[lo-base:hi-base])
		return
	}
	cs := n.childSpan(f.fs.opts.Degree)
	for cur := lo; cur < hi; {
		ci := (cur - n.offset()) / cs
		cEnd := n.offset() + (ci+1)*cs
		if cEnd > hi {
			cEnd = hi
		}
		if c := n.children[ci].Load(); c != nil {
			f.snapWalk(ctx, c, sid, cur, cEnd, lvLog, lvOff, buf, base)
		} else {
			f.snapReadFrom(ctx, sid, lvLog, lvOff, cur, cEnd, buf[cur-base:cEnd-base])
		}
		cur = cEnd
	}
}

// snapLeaf serves [lo,hi) within one leaf under the snapshot's view word,
// coalescing adjacent units with the same source.
func (f *file) snapLeaf(ctx *sim.Ctx, n *node, sid uint64, word uint64, logOff, lo, hi, lvLog, lvOff int64, buf []byte, base int64) {
	unit := int64(LeafSpan / f.subBits())
	off := n.offset()
	for cur := lo; cur < hi; {
		u := (cur - off) / unit
		uEnd := off + (u+1)*unit
		fromLeaf := word&(1<<uint(u)) != 0 && logOff != 0
		for uEnd < hi {
			nu := (uEnd - off) / unit
			if (word&(1<<uint(nu)) != 0 && logOff != 0) != fromLeaf {
				break
			}
			uEnd += unit
		}
		if uEnd > hi {
			uEnd = hi
		}
		if fromLeaf {
			f.fs.dev.Read(ctx, buf[cur-base:uEnd-base], logOff+(cur-off))
		} else {
			f.snapReadFrom(ctx, sid, lvLog, lvOff, cur, uEnd, buf[cur-base:uEnd-base])
		}
		cur = uEnd
	}
}

// snapReadFrom reads [lo,hi) from the carried fallback source (lvLog == 0 =
// the file). The caller already clamped the whole read to the frozen size,
// so no zero-fill is needed here; sid is kept for symmetry/debugging.
func (f *file) snapReadFrom(ctx *sim.Ctx, sid uint64, lvLog, lvOff, lo, hi int64, out []byte) {
	_ = sid
	if hi <= lo {
		return
	}
	if lvLog == 0 {
		f.pf.DirectRead(ctx, out, lo)
	} else {
		f.fs.dev.Read(ctx, out, lvLog+(lo-lvOff))
	}
}
