package core

import (
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// Micro-benchmarks of MGSP primitives. They report virtual nanoseconds per
// operation (vns/op) — the cost-model time an op takes on the simulated
// Optane — alongside Go's own wall-clock ns/op (the simulator's speed).
func benchFS(b *testing.B) (*FS, *sim.Ctx, interface {
	WriteAt(*sim.Ctx, []byte, int64) (int, error)
	ReadAt(*sim.Ctx, []byte, int64) (int, error)
}) {
	b.Helper()
	dev := nvm.New(256<<20, sim.DefaultCosts())
	fs := MustNew(dev, DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	f, err := fs.Create(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	for off := int64(0); off < 32<<20; off += 1 << 20 {
		f.WriteAt(ctx, buf, off)
	}
	return fs, ctx, f
}

func benchWrite(b *testing.B, size int, stride int64) {
	_, ctx, f := benchFS(b)
	buf := make([]byte, size)
	t0 := ctx.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * stride) % (16 << 20)
		if _, err := f.WriteAt(ctx, buf, off); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Now()-t0)/float64(b.N), "vns/op")
}

func BenchmarkCoreWrite512B(b *testing.B) { benchWrite(b, 512, 512) }
func BenchmarkCoreWrite4K(b *testing.B)   { benchWrite(b, 4096, 4096) }
func BenchmarkCoreWrite256K(b *testing.B) { benchWrite(b, 256<<10, 256<<10) }

func BenchmarkCoreRead4K(b *testing.B) {
	_, ctx, f := benchFS(b)
	buf := make([]byte, 4096)
	t0 := ctx.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * 4096) % (16 << 20)
		if _, err := f.ReadAt(ctx, buf, off); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Now()-t0)/float64(b.N), "vns/op")
}

func BenchmarkCoreRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := nvm.New(128<<20, sim.DefaultCosts())
		fs := MustNew(dev, DefaultOptions())
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		f.WriteAt(ctx, make([]byte, 16<<20), 0)
		wbuf := make([]byte, 4096)
		for j := 0; j < 2000; j++ {
			f.WriteAt(ctx, wbuf, ctx.Rand.Int63n(16<<20-4096)&^4095)
		}
		dev.DropVolatile()
		rctx := sim.NewCtx(1, 1)
		b.StartTimer()
		if _, err := Mount(rctx, dev, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if i == b.N-1 {
			b.ReportMetric(float64(rctx.Now())/1e6, "recovery-vms")
		}
	}
}
