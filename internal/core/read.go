package core

import (
	"fmt"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// ReadAt implements vfs.File: lock the range (greedy or MGL with IR/R),
// then assemble the latest data per the valid/existing bitmaps (§III-D).
func (h *handle) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if err := h.guard(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	f := h.f
	fs := f.fs
	fs.stats.Reads.Add(ctx.ID, 1)
	began := ctx.Now()
	size := f.size.Load()
	if off >= size || len(p) == 0 {
		return 0, nil
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	fs.stats.UserReadBytes.Add(ctx.ID, int64(n))
	end := off + int64(n)

	// Optimistic lock-free path (DESIGN.md §14): register in the Dekker gate,
	// walk without locks, validate node versions after the copy. Any failure
	// falls through to the locked path below. Gated to MGL without a cache
	// tier, so the cache block never races this.
	if fs.optGate && f.readOptimistic(ctx, p[:n], off, began) {
		return n, nil
	}

	// Cache tier (DESIGN.md §13). Single-block reads try the optimistic
	// latch-free frame probe first: hit means one DRAM copy instead of a tree
	// walk plus media reads. A multi-block read under write-back must drain
	// first — dirty frames may hold acked data newer than the media the tree
	// walk below would read.
	block := off / LeafSpan
	single := fs.pcache != nil && end <= (block+1)*LeafSpan
	if single {
		if fs.pcache.Read(f.pf.Slot(), block, p[:n], int(off-block*LeafSpan)) {
			ctx.Advance(fs.costs.IndexStep + fs.costs.DRAMCopyCost(n))
			dur := ctx.Now() - began
			fs.hRead.Observe(dur)
			fs.trace.Record(ctx.ID, obs.OpRead, f.pf.Slot(), off, int64(n), dur)
			return n, nil
		}
	} else if fs.flusher != nil && fs.pcache.DirtyCount() > 0 {
		if err := f.drainFile(ctx); err != nil {
			return 0, err
		}
	}

	root := f.root.Load()
	if root == nil {
		// Nothing was ever written through MGSP in this incarnation; the
		// file itself is the only source. No frame install here: this path
		// holds no locks, so a fill could clobber a racing writer's newer
		// frame content.
		f.pf.DirectRead(ctx, p[:n], off)
		dur := ctx.Now() - began
		fs.hRead.Observe(dur)
		fs.trace.Record(ctx.ID, obs.OpRead, f.pf.Slot(), off, int64(n), dur)
		return n, nil
	}

	start := f.searchStart(ctx, off, end)
	segs := f.readCover(ctx, start, off, end, nil)
	locks := f.lockOp(ctx, start, segs, false)
	if single {
		// Miss fill: resolve the whole block while the R locks pin its
		// content, install it clean, and serve the request from the copy.
		// Install refuses to overwrite a present dirty frame, so a buffered
		// write that slipped in between the probe and here wins.
		blockLo := block * LeafSpan
		buf := make([]byte, LeafSpan)
		f.resolveData(ctx, blockLo, blockLo+LeafSpan, buf)
		copy(p[:n], buf[off-blockLo:])
		fs.pcache.Install(f.pf.Slot(), block, buf, false)
	} else {
		f.resolveData(ctx, off, end, p[:n])
	}
	f.release(ctx, locks)
	f.updateMinSearch(off, end)
	dur := ctx.Now() - began
	fs.hRead.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpRead, f.pf.Slot(), off, int64(n), dur)
	return n, nil
}

// readCover decomposes [lo,hi) into lock targets without creating nodes:
// recursion descends only into existing children; absent subtrees are
// covered by locking the current node once.
func (f *file) readCover(ctx *sim.Ctx, n *node, lo, hi int64, out []segment) []segment {
	ctx.Advance(f.fs.costs.IndexStep)
	if n.leaf || (f.fs.opts.MultiGranularity && lo == n.offset() && hi == n.offset()+n.span && n.parent != nil) {
		return append(out, segment{n: n, lo: lo, hi: hi})
	}
	cs := n.childSpan(f.fs.opts.Degree)
	self := false
	for cur := lo; cur < hi; {
		ci := (cur - n.offset()) / cs
		cEnd := n.offset() + (ci+1)*cs
		if cEnd > hi {
			cEnd = hi
		}
		if c := n.children[ci].Load(); c != nil {
			out = f.readCover(ctx, c, cur, cEnd, out)
		} else if !self {
			// Lock this node (R) once to cover every absent child range.
			out = append(out, segment{n: n, lo: cur, hi: cEnd})
			self = true
		}
		cur = cEnd
	}
	return out
}

// resolveData fills buf with the latest content of [lo, hi), walking the
// bitmaps: a node's private log wins where its valid bit is set, descendants
// win where existing leads to deeper valid bits, and the fallback is the
// nearest valid ancestor or ultimately the file. Bytes at or beyond the
// file size read as zeros.
func (f *file) resolveData(ctx *sim.Ctx, lo, hi int64, buf []byte) {
	root := f.root.Load()
	if root == nil {
		f.readFrom(ctx, nil, lo, hi, buf)
		return
	}
	f.walkResolve(ctx, root, lo, hi, nil, buf, lo)
}

func (f *file) walkResolve(ctx *sim.Ctx, n *node, lo, hi int64, lastValid *node, buf []byte, base int64) {
	ctx.Advance(f.fs.costs.IndexStep)
	if n.leaf {
		f.resolveLeaf(ctx, n, lo, hi, lastValid, buf, base)
		return
	}
	if n.word.Load()&bitValid != 0 {
		lastValid = n
	}
	if n.word.Load()&bitExisting == 0 {
		f.readFrom(ctx, lastValid, lo, hi, buf[lo-base:hi-base])
		return
	}
	cs := n.childSpan(f.fs.opts.Degree)
	for cur := lo; cur < hi; {
		ci := (cur - n.offset()) / cs
		cEnd := n.offset() + (ci+1)*cs
		if cEnd > hi {
			cEnd = hi
		}
		if c := n.children[ci].Load(); c != nil {
			f.walkResolve(ctx, c, cur, cEnd, lastValid, buf, base)
		} else {
			f.readFrom(ctx, lastValid, cur, cEnd, buf[cur-base:cEnd-base])
		}
		cur = cEnd
	}
}

// resolveLeaf serves [lo,hi) within one leaf, unit by unit, coalescing
// adjacent units with the same source.
func (f *file) resolveLeaf(ctx *sim.Ctx, n *node, lo, hi int64, lastValid *node, buf []byte, base int64) {
	unit := int64(LeafSpan / f.subBits())
	word := n.word.Load()
	off := n.offset()
	for cur := lo; cur < hi; {
		u := (cur - off) / unit
		uEnd := off + (u+1)*unit
		fromLeaf := word&(1<<uint(u)) != 0
		// Extend across units with the same source.
		for uEnd < hi {
			nu := (uEnd - off) / unit
			if (word&(1<<uint(nu)) != 0) != fromLeaf {
				break
			}
			uEnd += unit
		}
		if uEnd > hi {
			uEnd = hi
		}
		if fromLeaf {
			f.fs.dev.Read(ctx, buf[cur-base:uEnd-base], n.logOff+(cur-off))
		} else {
			f.readFrom(ctx, lastValid, cur, uEnd, buf[cur-base:uEnd-base])
		}
		cur = uEnd
	}
}

// readFrom reads [lo,hi) from src's log (nil = the file), zero-filling
// bytes at or beyond the file size.
func (f *file) readFrom(ctx *sim.Ctx, src *node, lo, hi int64, out []byte) {
	size := f.size.Load()
	valid := hi
	if valid > size {
		valid = size
	}
	if valid > lo {
		if src == nil {
			f.pf.DirectRead(ctx, out[:valid-lo], lo)
		} else {
			f.fs.dev.Read(ctx, out[:valid-lo], src.logOff+(lo-src.offset()))
		}
	}
	for i := valid - lo; i < hi-lo; i++ {
		if i >= 0 {
			out[i] = 0
		}
	}
}
