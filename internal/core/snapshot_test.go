package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%97)
	}
	return b
}

// TestSnapshotReadsFrozenImage: a snapshot keeps serving the pre-snapshot
// bytes while the live file moves on, across in-place toggles, CoW
// relocations, and file growth past the frozen size.
func TestSnapshotReadsFrozenImage(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	f, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	imgA := fill(256<<10, 3)
	if _, err := f.WriteAt(ctx, imgA, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite a few blocks pre-snapshot so some leaves carry valid bits.
	copy(imgA[8192:12288], fill(4096, 77))
	if _, err := f.WriteAt(ctx, imgA[8192:12288], 8192); err != nil {
		t.Fatal(err)
	}

	id, err := fs.Snapshot(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}

	// Post-snapshot mutations: full-block overwrites (CoW relocation),
	// sub-block writes (partial units), and growth beyond the frozen size.
	live := append([]byte(nil), imgA...)
	for i := 0; i < 40; i++ {
		off := int64(i) * 4096
		data := fill(4096, byte(120+i))
		copy(live[off:], data)
		if _, err := f.WriteAt(ctx, data, off); err != nil {
			t.Fatal(err)
		}
	}
	small := fill(512, 201)
	copy(live[100000:], small)
	if _, err := f.WriteAt(ctx, small, 100000); err != nil {
		t.Fatal(err)
	}
	tail := fill(64<<10, 9)
	live = append(live, tail...)
	if _, err := f.WriteAt(ctx, tail, 256<<10); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(live))
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, live) {
		t.Fatal("live image diverged from reference")
	}

	sh, err := fs.OpenSnapshot(ctx, "f", id)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Size() != 256<<10 {
		t.Fatalf("frozen size = %d, want %d", sh.Size(), 256<<10)
	}
	frozen := make([]byte, sh.Size()+100)
	n, err := sh.ReadAt(ctx, frozen, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != sh.Size() {
		t.Fatalf("snapshot read %d bytes, want %d", n, sh.Size())
	}
	if !bytes.Equal(frozen[:n], imgA) {
		for i := range imgA {
			if frozen[i] != imgA[i] {
				t.Fatalf("snapshot diverged at %d: got %#x want %#x", i, frozen[i], imgA[i])
			}
		}
	}
	if err := sh.Close(ctx); err != nil {
		t.Fatal(err)
	}

	if err := fs.DropSnapshot(ctx, "f", id); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, live) {
		t.Fatal("live image changed after snapshot drop")
	}
	if rep := fs.AuditBlocks(); !rep.Clean() {
		t.Fatalf("post-drop audit: %d orphans %d unallocated", len(rep.Orphans), len(rep.Unallocated))
	}
}

// TestSnapshotLifecycleErrors covers the guard rails: unknown ids, busy
// drops, read-only handles, and destructive ops on snapped files.
func TestSnapshotLifecycleErrors(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, fill(8192, 1), 0)

	if _, err := fs.Snapshot(ctx, "nope"); err == nil {
		t.Fatal("Snapshot of missing file succeeded")
	}
	id, err := fs.Snapshot(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenSnapshot(ctx, "f", id+999); err != ErrSnapshotNotFound {
		t.Fatalf("open unknown id: %v", err)
	}
	sh, err := fs.OpenSnapshot(ctx, "f", id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WriteAt(ctx, []byte{1}, 0); err == nil {
		t.Fatal("snapshot handle accepted a write")
	}
	if err := sh.Truncate(ctx, 0); err == nil {
		t.Fatal("snapshot handle accepted a truncate")
	}
	if err := fs.DropSnapshot(ctx, "f", id); err != ErrSnapshotBusy {
		t.Fatalf("drop with open handle: %v", err)
	}
	if err := fs.Remove(ctx, "f"); err != ErrHasSnapshots {
		t.Fatalf("remove with snapshot: %v", err)
	}
	if err := f.Truncate(ctx, 0); err != ErrHasSnapshots {
		t.Fatalf("truncate with snapshot: %v", err)
	}
	if _, err := fs.Create(ctx, "f"); err != ErrHasSnapshots {
		t.Fatalf("create-over with snapshot: %v", err)
	}
	sh.Close(ctx)
	if err := fs.DropSnapshot(ctx, "f", id); err != nil {
		t.Fatal(err)
	}
	if err := fs.DropSnapshot(ctx, "f", id); err != ErrSnapshotNotFound {
		t.Fatalf("double drop: %v", err)
	}
	if err := fs.Remove(ctx, "f"); err != nil {
		t.Fatalf("remove after drop: %v", err)
	}
}

// TestSnapshotCreationConstantMediaWrites: taking a snapshot costs one
// metadata-log entry regardless of file size — O(metadata), no data copy.
func TestSnapshotCreationConstantMediaWrites(t *testing.T) {
	var costs []int64
	for _, mib := range []int64{1, 8, 64} {
		dev := nvm.New(256<<20, sim.ZeroCosts())
		fs := MustNew(dev, DefaultOptions())
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		data := fill(1<<20, 5)
		for off := int64(0); off < mib<<20; off += 1 << 20 {
			if _, err := f.WriteAt(ctx, data, off); err != nil {
				t.Fatal(err)
			}
		}
		before := dev.Stats().MediaWriteBytes.Load()
		curBefore := fs.stats.MetaCursorWrites.Load()
		if _, err := fs.Snapshot(ctx, "f"); err != nil {
			t.Fatal(err)
		}
		// An area-cursor persist (64 B) may ride along depending on how far
		// the home area's rotation advanced during setup — amortized log
		// bookkeeping, not part of the snapshot record. Normalize it out.
		cursors := fs.stats.MetaCursorWrites.Load() - curBefore
		cost := dev.Stats().MediaWriteBytes.Load() - before - 64*cursors
		costs = append(costs, cost)
		if cost > 256 {
			t.Fatalf("%d MiB file: snapshot wrote %d media bytes, want O(one log entry)", mib, cost)
		}
	}
	if costs[0] != costs[1] || costs[1] != costs[2] {
		t.Fatalf("snapshot cost varies with file size: %v", costs)
	}
}

// TestSnapshotFastPathUnchanged: with no live snapshot, repeated full-block
// overwrites keep the paper's 2-media-write shadow toggle — no pins, no CoW
// relocations, no extra bytes.
func TestSnapshotFastPathUnchanged(t *testing.T) {
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	block := fill(4096, 8)
	f.WriteAt(ctx, block, 0) // allocate log, record, capacity

	// Take and immediately drop a snapshot: afterwards no snapshot pins the
	// block, so the fast path must be fully restored too.
	id, err := fs.Snapshot(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.DropSnapshot(ctx, "f", id); err != nil {
		t.Fatal(err)
	}

	f.WriteAt(ctx, block, 0) // settle: first post-drop write may CoW once
	pins := fs.Stats().SnapshotPins.Load()
	cows := fs.Stats().SnapshotCoWRewrites.Load()
	before := dev.Stats().MediaWriteBytes.Load()
	const reps = 10
	for i := 0; i < reps; i++ {
		if _, err := f.WriteAt(ctx, block, 0); err != nil {
			t.Fatal(err)
		}
	}
	perOp := (dev.Stats().MediaWriteBytes.Load() - before) / reps
	// 2 media writes per op: the 4 KiB data store plus one metadata entry
	// commit (+ the 16-byte two-store retire: checksum kill then length).
	if perOp > 4096+entrySize+24 {
		t.Fatalf("fast-path overwrite costs %d media bytes/op, want <= %d", perOp, 4096+entrySize+24)
	}
	if fs.Stats().SnapshotPins.Load() != pins || fs.Stats().SnapshotCoWRewrites.Load() != cows {
		t.Fatal("snapshot machinery engaged with no live snapshot")
	}
}

// TestSnapshotCoWOverwriteCost: under a live snapshot, a repeated full-block
// overwrite relocates to a fresh block but still costs ~2 media writes (the
// superseded block is freed immediately once unpinned).
func TestSnapshotCoWOverwriteCost(t *testing.T) {
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	block := fill(4096, 8)
	f.WriteAt(ctx, block, 0)
	if _, err := fs.Snapshot(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	f.WriteAt(ctx, block, 0) // first CoW: pin + relocation
	fs.prov.Alloc().Drain(ctx) // empty shard caches: exact-count audit below
	used := fs.prov.Alloc().UsedBlocks()
	before := dev.Stats().MediaWriteBytes.Load()
	const reps = 10
	for i := 0; i < reps; i++ {
		if _, err := f.WriteAt(ctx, block, 0); err != nil {
			t.Fatal(err)
		}
	}
	perOp := (dev.Stats().MediaWriteBytes.Load() - before) / reps
	if perOp > 4096+2*entrySize+64 {
		t.Fatalf("snapped overwrite costs %d media bytes/op, want ~2 media writes", perOp)
	}
	fs.prov.Alloc().Drain(ctx)
	if got := fs.prov.Alloc().UsedBlocks(); got != used {
		t.Fatalf("steady-state CoW overwrites leak blocks: %d -> %d", used, got)
	}
}

// TestSnapshotSurvivesRemount: snapshots, their frozen images, and their
// pins come back after a crash-free unmount/remount and after replay.
func TestSnapshotSurvivesRemount(t *testing.T) {
	opts := smallTreeOpts()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	imgA := fill(128<<10, 3)
	f.WriteAt(ctx, imgA, 0)
	id, err := fs.Snapshot(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	live := append([]byte(nil), imgA...)
	for i := 0; i < 16; i++ {
		data := fill(4096, byte(50+i))
		copy(live[i*4096:], data)
		f.WriteAt(ctx, data, int64(i)*4096)
	}

	dev.DropVolatile()
	fs2, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := fs2.Snapshots(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != id || infos[0].Size != 128<<10 {
		t.Fatalf("recovered snapshot table: %+v", infos)
	}
	f2, _ := fs2.Open(ctx, "f")
	got := make([]byte, len(live))
	f2.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, live) {
		t.Fatal("live image wrong after remount")
	}
	sh, err := fs2.OpenSnapshot(ctx, "f", id)
	if err != nil {
		t.Fatal(err)
	}
	frozen := make([]byte, len(imgA))
	sh.ReadAt(ctx, frozen, 0)
	if !bytes.Equal(frozen, imgA) {
		t.Fatal("frozen image wrong after remount")
	}
	sh.Close(ctx)
	if rep := fs2.AuditBlocks(); !rep.Clean() {
		t.Fatalf("audit after remount: %d orphans %d unallocated", len(rep.Orphans), len(rep.Unallocated))
	}

	// Drop after remount: pins are collected, the image stays intact, and a
	// further remount shows an empty snapshot table.
	if err := fs2.DropSnapshot(ctx, "f", id); err != nil {
		t.Fatal(err)
	}
	f2.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, live) {
		t.Fatal("live image wrong after post-remount drop")
	}
	dev.DropVolatile()
	fs3, err := Mount(ctx, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if infos, _ := fs3.Snapshots(ctx, "f"); len(infos) != 0 {
		t.Fatalf("dropped snapshot resurrected: %+v", infos)
	}
	f3, _ := fs3.Open(ctx, "f")
	f3.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, live) {
		t.Fatal("live image wrong after final remount")
	}
	if rep := fs3.AuditBlocks(); !rep.Clean() {
		t.Fatalf("final audit: %d orphans %d unallocated", len(rep.Orphans), len(rep.Unallocated))
	}
}

// TestSnapshotStack: multiple snapshots of the same file each freeze their
// own point in time; dropping one leaves the others intact.
func TestSnapshotStack(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	f, _ := fs.Create(ctx, "f")
	const sz = 64 << 10
	images := make([][]byte, 0, 4)
	var ids []SnapID
	cur := fill(sz, 1)
	f.WriteAt(ctx, cur, 0)
	for g := 0; g < 3; g++ {
		id, err := fs.Snapshot(ctx, "f")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		images = append(images, append([]byte(nil), cur...))
		for i := 0; i < 6; i++ {
			off := int64((g*6+i)%(sz/4096)) * 4096
			data := fill(4096, byte(10*g+i+100))
			copy(cur[off:], data)
			if _, err := f.WriteAt(ctx, data, off); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func() {
		for k, id := range ids {
			if id == 0 {
				continue
			}
			sh, err := fs.OpenSnapshot(ctx, "f", id)
			if err != nil {
				t.Fatalf("snap %d: %v", id, err)
			}
			got := make([]byte, sz)
			sh.ReadAt(ctx, got, 0)
			sh.Close(ctx)
			if !bytes.Equal(got, images[k]) {
				t.Fatalf("snapshot %d image diverged", id)
			}
		}
		got := make([]byte, sz)
		f.ReadAt(ctx, got, 0)
		if !bytes.Equal(got, cur) {
			t.Fatal("live image diverged")
		}
	}
	check()
	// Drop the middle snapshot; the outer two must be unaffected.
	if err := fs.DropSnapshot(ctx, "f", ids[1]); err != nil {
		t.Fatal(err)
	}
	ids[1] = 0
	check()
	if err := fs.DropSnapshot(ctx, "f", ids[0]); err != nil {
		t.Fatal(err)
	}
	ids[0] = 0
	check()
	if err := fs.DropSnapshot(ctx, "f", ids[2]); err != nil {
		t.Fatal(err)
	}
	if rep := fs.AuditBlocks(); !rep.Clean() {
		t.Fatalf("audit: %d orphans %d unallocated", len(rep.Orphans), len(rep.Unallocated))
	}
}

// TestSnapshotConcurrentReadersAndWriters: snapshot readers run against
// live writers; every snapshot read must return exactly the frozen image.
func TestSnapshotConcurrentReadersAndWriters(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	f, _ := fs.Create(ctx, "f")
	const sz = 256 << 10
	img := fill(sz, 3)
	f.WriteAt(ctx, img, 0)
	id, err := fs.Snapshot(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct worker IDs: sticky intents and MGL holders are
			// keyed per worker, so goroutines must not share an ID.
			wctx := sim.NewCtx(1+w, int64(10+w))
			for i := 0; i < 200; i++ {
				off := int64((i*7+w*13)%(sz/4096)) * 4096
				if _, err := f.WriteAt(wctx, fill(4096, byte(i+w)), off); err != nil {
					errs <- fmt.Errorf("writer: %w", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rctx := sim.NewCtx(3+r, int64(20+r))
			sh, err := fs.OpenSnapshot(rctx, "f", id)
			if err != nil {
				errs <- err
				return
			}
			defer sh.Close(rctx)
			buf := make([]byte, 16<<10)
			for i := 0; i < 150; i++ {
				off := int64((i*11+r*29)%((sz-len(buf))/4096)) * 4096
				n, err := sh.ReadAt(rctx, buf, off)
				if err != nil {
					errs <- fmt.Errorf("snap read: %w", err)
					return
				}
				if !bytes.Equal(buf[:n], img[off:off+int64(n)]) {
					errs <- fmt.Errorf("snap read at %d saw live data", off)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := fs.DropSnapshot(ctx, "f", id); err != nil {
		t.Fatal(err)
	}
}
