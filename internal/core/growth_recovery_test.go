package core

import (
	"bytes"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestRecoveryAfterTreeGrowth regression-tests a data-loss bug: when the
// radix tree gains a level mid-run, the new root's existing bit lives only
// in DRAM (the node has no record yet). Recovery must restore such hints or
// the entire subtree becomes unreachable and write-back silently skips it.
func TestRecoveryAfterTreeGrowth(t *testing.T) {
	const fileSize = int64(16 << 20) // forces re-rooting past the 16M span
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "data")
	chunk := bytes.Repeat([]byte{0xAB}, 1<<20)
	for off := int64(0); off < fileSize; off += 1 << 20 {
		f.WriteAt(ctx, chunk, off) // coarse-valid interior nodes + growth
	}
	pat := bytes.Repeat([]byte{0xCD}, 4096)
	var offs []int64
	for i := 0; i < 300; i++ {
		off := ctx.Rand.Int63n(fileSize/4096) * 4096
		offs = append(offs, off)
		f.WriteAt(ctx, pat, off)
	}
	dev.DropVolatile()
	rctx := sim.NewCtx(1, 1)
	fs2, err := Mount(rctx, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := fs2.Open(rctx, "data")
	buf := make([]byte, 4096)
	for _, off := range offs {
		f2.ReadAt(rctx, buf, off)
		if !bytes.Equal(buf, pat) {
			t.Fatalf("block at %d lost after growth+recovery", off)
		}
	}
	// Untouched regions keep the layout pattern.
	f2.ReadAt(rctx, buf, 0)
	seen := map[int64]bool{}
	for _, o := range offs {
		seen[o] = true
	}
	if !seen[0] && buf[0] != 0xAB {
		t.Fatalf("layout data corrupted: %#x", buf[0])
	}
}
