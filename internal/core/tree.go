package core

import (
	"fmt"
	"sync/atomic"

	"mgsp/internal/sim"
)

// LeafSpan is the leaf log granularity (one 4 KiB block).
const LeafSpan = 4096

// node is one radix-tree node of the Multi-granularity Shadow Log. A node
// at span s covers file bytes [idx*s, (idx+1)*s). Its private log (logOff)
// holds the span's latest data wherever the node's valid bit is set; the
// fallback for unset ranges is the nearest ancestor with a valid log, or
// ultimately the file itself (the root's "log" is the file's memory map).
type node struct {
	span int64
	idx  int64
	leaf bool

	parent   *node
	children []atomic.Pointer[node] // nil for leaves; slots filled on demand

	recIdx int64 // node directory record index (-1 until persisted)
	logOff int64 // device offset of the private log; 0 = not allocated

	// word is the volatile mirror of the persistent bitmap word:
	// leaf: SubBits valid bits (bit i covers sub-unit i);
	// interior: bit 0 = valid (private log live), bit 1 = existing
	// (descendants may hold valid logs).
	word atomic.Uint64

	// stale marks that descendants carry superseded valid bits that must be
	// cleared before existing is set again (lazy bitmap cleaning, §III-B2).
	stale atomic.Bool

	// birth is the global snapshot sequence when the node's record was
	// created (persisted in the record). A snapshot with id <= birth treats
	// the node's committed state as nonexistent: everything the node carries
	// was committed after that snapshot froze.
	birth atomic.Uint64

	// snapSeq is the newest live snapshot id this node has been
	// copy-on-write-checked against; writes re-check (and pin the current
	// state) whenever the file's newest snapshot is newer. Volatile —
	// recovery rebuilds it from the pin records.
	snapSeq atomic.Uint64

	// touch is the cleaner generation of the last write touching this node;
	// a subtree whose touch lags the current generation is cold and eligible
	// for write-back. Only maintained while the cleaner is enabled.
	touch atomic.Int64

	lock mglLock
}

const (
	bitValid    = uint64(1) << 0
	bitExisting = uint64(1) << 1
)

func (n *node) offset() int64 { return n.idx * n.span }

func (n *node) valid() bool    { return !n.leaf && n.word.Load()&bitValid != 0 }
func (n *node) existing() bool { return !n.leaf && n.word.Load()&bitExisting != 0 }

// String formats the node for debugging.
func (n *node) String() string {
	return fmt.Sprintf("node(span=%d idx=%d word=%#x)", n.span, n.idx, n.word.Load())
}

// childSpan returns the span of n's children under degree d.
func (n *node) childSpan(d int) int64 { return n.span / int64(d) }

// child returns the i-th child or nil.
func (n *node) child(i int64) *node {
	return n.children[i].Load()
}

// ---- tree operations (on file) ----

// ensureTree grows the tree height until the root span covers capacity.
// Volatile-only: new roots start with word existing=1 (a safe
// over-approximation recomputed lazily) persisted via their records when
// first needed; the previous root simply becomes child 0.
func (f *file) ensureTree(ctx *sim.Ctx, capacity int64) {
	if r := f.root.Load(); r != nil && r.span >= capacity {
		return
	}
	f.treeMu.Lock(ctx)
	defer f.treeMu.Unlock(ctx)
	d := int64(f.fs.opts.Degree)
	r := f.root.Load()
	if r == nil {
		span := int64(LeafSpan)
		for span < capacity {
			span *= d
		}
		f.root.Store(f.newNode(ctx, nil, span, 0))
		return
	}
	for r.span < capacity {
		nr := f.newNode(ctx, nil, r.span*d, 0)
		if r.word.Load() != 0 || r.stale.Load() || subtreeHasLogs(r) {
			nr.word.Store(bitExisting)
			f.persistWordIfRecorded(ctx, nr)
		}
		r.parent = nr
		nr.children[0].Store(r)
		f.root.Store(nr)
		r = nr
	}
}

// persistWordIfRecorded pushes a node's volatile word to its record when
// one exists (hint updates on nodes not yet in the directory stay volatile;
// recovery over-approximates existing bits, which is safe).
func (f *file) persistWordIfRecorded(ctx *sim.Ctx, n *node) {
	if n.recIdx >= 0 {
		f.fs.dir.setWord(ctx, n.recIdx, n.word.Load())
	}
}

func subtreeHasLogs(n *node) bool {
	if n.word.Load() != 0 {
		return true
	}
	for i := range n.children {
		if c := n.children[i].Load(); c != nil && subtreeHasLogs(c) {
			return true
		}
	}
	return false
}

// newNode builds a volatile node; its persistent record is created lazily by
// ensureRecord when the node first participates in a committed operation.
func (f *file) newNode(ctx *sim.Ctx, parent *node, span, idx int64) *node {
	n := &node{span: span, idx: idx, parent: parent, leaf: span == LeafSpan, recIdx: -1}
	n.birth.Store(f.fs.snapSeq.Load())
	if !n.leaf {
		n.children = make([]atomic.Pointer[node], f.fs.opts.Degree)
	}
	ctx.Advance(f.fs.costs.IndexStep)
	return n
}

// ensureChild returns the i-th child of n, creating it (volatile) if absent.
func (f *file) ensureChild(ctx *sim.Ctx, n *node, i int64) *node {
	if c := n.children[i].Load(); c != nil {
		return c
	}
	f.treeMu.Lock(ctx)
	defer f.treeMu.Unlock(ctx)
	if c := n.children[i].Load(); c != nil {
		return c
	}
	c := f.newNode(ctx, n, n.childSpan(f.fs.opts.Degree), n.idx*int64(f.fs.opts.Degree)+i)
	n.children[i].Store(c)
	return c
}

// ensureRecord persists the node's directory record (tag + logOff + word +
// birth sequence) so the metadata log can reference it and recovery can
// rebuild the tree. The birth sequence is the current global snapshot
// sequence: any already-live snapshot predates every bit this record will
// ever commit, so snapshot readers skip it.
func (f *file) ensureRecord(ctx *sim.Ctx, n *node) {
	if n.recIdx >= 0 {
		return
	}
	f.treeMu.Lock(ctx)
	defer f.treeMu.Unlock(ctx)
	if n.recIdx >= 0 {
		return
	}
	birth := f.fs.snapSeq.Load()
	n.birth.Store(birth)
	n.recIdx = f.fs.dir.create(ctx, packTag(f.pf.Slot(), f.spanExp(n.span), n.idx),
		n.logOff, n.word.Load(), birth, 0)
}

// spanExp returns e such that span == LeafSpan * Degree^e.
func (f *file) spanExp(span int64) int {
	e := 0
	for s := int64(LeafSpan); s < span; s *= int64(f.fs.opts.Degree) {
		e++
	}
	return e
}

// ensureLog allocates the node's private log (span bytes, contiguous) and
// persists the location in its record. Safe before commit: a log referenced
// by a record whose valid bit is clear is simply unused after a crash.
func (f *file) ensureLog(ctx *sim.Ctx, n *node) error {
	if n.logOff != 0 {
		return nil
	}
	f.ensureRecord(ctx, n)
	f.treeMu.Lock(ctx)
	defer f.treeMu.Unlock(ctx)
	if n.logOff != 0 {
		return nil
	}
	off, err := f.fs.prov.Alloc().AllocContig(ctx, n.span/LeafSpan)
	if err != nil {
		return err
	}
	f.fs.dir.setLogOff(ctx, n.recIdx, off)
	n.logOff = off
	return nil
}

// lastValidLog walks up from n's parent and returns the nearest ancestor
// with a valid private log, or nil meaning the file itself.
func (f *file) lastValidLog(n *node) *node {
	for a := n.parent; a != nil; a = a.parent {
		if a.valid() {
			return a
		}
	}
	return nil
}

// segment is a resolved covering target: the byte range [lo, hi) of the
// file handled at node n (n spans exactly [lo,hi) unless n is a leaf
// handling a partial range).
type segment struct {
	n      *node
	lo, hi int64
}

// cover decomposes [lo, hi) into maximal aligned node targets, creating
// nodes along the way — Algorithm 1's traversal, minus the data movement.
// With MultiGranularity off, every target is a leaf.
func (f *file) cover(ctx *sim.Ctx, n *node, lo, hi int64, out []segment) []segment {
	ctx.Advance(f.fs.costs.IndexStep)
	if n.leaf {
		return append(out, segment{n: n, lo: lo, hi: hi})
	}
	if f.fs.opts.MultiGranularity && lo == n.offset() && hi == n.offset()+n.span && n.parent != nil {
		// Whole-node coverage: handle at this granularity (never the root —
		// the root's log is the file, and in-place whole-file writes would
		// not be failure-atomic).
		return append(out, segment{n: n, lo: lo, hi: hi})
	}
	cs := n.childSpan(f.fs.opts.Degree)
	for cur := lo; cur < hi; {
		ci := (cur - n.offset()) / cs
		cEnd := n.offset() + (ci+1)*cs
		if cEnd > hi {
			cEnd = hi
		}
		c := f.ensureChild(ctx, n, ci)
		out = f.cover(ctx, c, cur, cEnd, out)
		cur = cEnd
	}
	return out
}

// searchStart picks the traversal starting node: the cached minimum search
// tree if it covers the range, else its adjacent sibling, else the root
// (§III-B1, "minimum search tree").
func (f *file) searchStart(ctx *sim.Ctx, lo, hi int64) *node {
	root := f.root.Load()
	if !f.fs.opts.MinSearchTree {
		return root
	}
	if m := f.minSearch.Load(); m != nil {
		if covers(m, lo, hi) {
			f.fs.stats.MinSearchHits.Add(1)
			return m
		}
		ctx.Advance(f.fs.costs.IndexStep)
		if sib := f.sibling(m); sib != nil && covers(sib, lo, hi) {
			f.fs.stats.MinSearchHits.Add(1)
			return sib
		}
	}
	f.fs.stats.MinSearchMisses.Add(1)
	return root
}

func covers(n *node, lo, hi int64) bool {
	return n.offset() <= lo && hi <= n.offset()+n.span
}

// sibling returns the next node at the same level, if created.
func (f *file) sibling(n *node) *node {
	p := n.parent
	if p == nil {
		return nil
	}
	i := n.idx % int64(f.fs.opts.Degree)
	if i+1 >= int64(f.fs.opts.Degree) {
		return nil
	}
	return p.children[i+1].Load()
}

// updateMinSearch caches the smallest created subtree covering [lo, hi).
func (f *file) updateMinSearch(lo, hi int64) {
	if !f.fs.opts.MinSearchTree {
		return
	}
	n := f.root.Load()
	for !n.leaf {
		cs := n.childSpan(f.fs.opts.Degree)
		ci := (lo - n.offset()) / cs
		if (hi-1-n.offset())/cs != ci {
			break
		}
		c := n.children[ci].Load()
		if c == nil {
			break
		}
		n = c
	}
	f.minSearch.Store(n)
}

// pathTo returns the ancestors of target from the given start node (nearest
// first is NOT required; returned root-first for lock ordering).
func pathTo(start, target *node) []*node {
	var rev []*node
	for a := target.parent; a != nil; a = a.parent {
		rev = append(rev, a)
		if a == start {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
