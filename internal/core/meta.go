package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// ---- node directory ----
//
// Every tree node that has participated in a committed operation owns a
// 64-byte persistent record: tag (file slot, span exponent, index), the
// private log location, and the bitmap word that commit operations update
// with 8-byte atomic stores. Recovery rebuilds all trees by scanning the
// records; record allocation itself is volatile (a free list), rebuilt by
// the same scan.

const (
	recSize    = 64
	recTag     = 0
	recLogOff  = 8
	recWord    = 16
	recBirth   = 24 // global snapshot sequence when the record was created
	recSnapID  = 32 // pin records: the snapshot sequence the pin freezes up to

	tagInUse = uint64(1) << 63
	// tagSnap marks a snapshot pin record: a frozen (logOff, word) copy of a
	// tree node taken at first copy-on-write after a snapshot. Pin records
	// share the directory with live node records but are not part of any
	// live tree; recovery routes them to the per-file pin tables.
	tagSnap = uint64(1) << 62
)

func packTag(slot int, spanExp int, idx int64) uint64 {
	return tagInUse | uint64(slot)<<48 | uint64(spanExp)<<40 | uint64(idx)
}

func unpackTag(tag uint64) (slot, spanExp int, idx int64) {
	return int(tag >> 48 & 0x3FFF), int(tag >> 40 & 0xFF), int64(tag & (1<<40 - 1))
}

type directory struct {
	dev  *nvm.Device
	base int64
	cap  int64

	mu   sim.Mutex
	next int64
	free []int64

	// hwCell, when tracking is set, is the device offset of the persisted
	// directory high-water mark (the ckptDirHW word of the checkpoint cell);
	// hwPersisted caches the last bound written. The mark never shrinks:
	// record indices are reused through the free list, so lowering it could
	// put live records beyond the recovery scan.
	hwCell      int64
	tracking    bool
	hwPersisted int64
}

func newDirectory(dev *nvm.Device, base, size int64) *directory {
	return &directory{dev: dev, base: base, cap: size / recSize}
}

func (d *directory) off(idx int64) int64 { return d.base + idx*recSize }

// create persists a fresh record (tag with all flag bits already set, log
// location, bitmap word, birth sequence, and — for pin records — the pinned
// snapshot sequence) and returns its index. The body persists and is fenced
// before the tag store publishes it.
func (d *directory) create(ctx *sim.Ctx, tag uint64, logOff int64, word, birth, snapID uint64) int64 {
	// Deferred unlock: noteHighWater issues media ops, and a crash-injection
	// panic there must not leak d.mu to the other workers.
	idx := func() int64 {
		d.mu.Lock(ctx)
		defer d.mu.Unlock(ctx)
		var idx int64
		if len(d.free) > 0 {
			idx = d.free[len(d.free)-1]
			d.free = d.free[:len(d.free)-1]
		} else {
			if d.next >= d.cap {
				panic("core: node directory full")
			}
			idx = d.next
			d.next++
		}
		d.noteHighWater(ctx, idx)
		return idx
	}()

	var buf [recSize]byte
	binary.LittleEndian.PutUint64(buf[recLogOff:], uint64(logOff))
	binary.LittleEndian.PutUint64(buf[recWord:], word)
	binary.LittleEndian.PutUint64(buf[recBirth:], birth)
	binary.LittleEndian.PutUint64(buf[recSnapID:], snapID)
	d.dev.WriteNT(ctx, buf[8:], d.off(idx)+8)
	d.dev.Fence(ctx)
	d.dev.Store8(ctx, d.off(idx)+recTag, tag)
	return idx
}

func (d *directory) setLogOff(ctx *sim.Ctx, idx, logOff int64) {
	d.dev.Store8(ctx, d.off(idx)+recLogOff, uint64(logOff))
	d.dev.Fence(ctx)
}

// setWord atomically updates a record's bitmap word (the commit action).
func (d *directory) setWord(ctx *sim.Ctx, idx int64, w uint64) {
	d.dev.Store8(ctx, d.off(idx)+recWord, w)
}

// clear retires a record (file close / remove).
func (d *directory) clear(ctx *sim.Ctx, idx int64) {
	d.dev.Store8(ctx, d.off(idx)+recTag, 0)
	d.mu.Lock(ctx)
	d.free = append(d.free, idx)
	d.mu.Unlock(ctx)
}

// hwChunk is the rounding granularity of the persisted high-water mark, so
// steady-state record churn does not cost a persist per allocation.
const hwChunk = 1024

// noteHighWater persists an upper bound (exclusive) on live record indices so
// recovery can stop its directory scan early. Callers hold d.mu (or are the
// single-threaded mount path). No-op unless tracking is enabled.
func (d *directory) noteHighWater(ctx *sim.Ctx, idx int64) {
	if !d.tracking || idx < d.hwPersisted {
		return
	}
	hw := (idx/hwChunk + 1) * hwChunk
	if hw > d.cap {
		hw = d.cap
	}
	d.hwPersisted = hw
	d.dev.Store8(ctx, d.hwCell, uint64(hw))
	d.dev.Fence(ctx)
}

// ---- lock-free metadata log (§III-C1) ----

const (
	entrySize  = 128
	entrySlots = 10

	entLen    = 0
	entSlot   = 8
	entOffset = 16
	entSize   = 24
	entMeta   = 32 // count(8b) | chainIdx(8b) | chainLen(8b) | epoch(8b) | group(32b)
	entCksum  = 40
	entData   = 48 // 10 slots x 8 bytes (16 bytes for snap-op slots)
)

// Entry kinds, packed into the high byte of the entSlot word (file slots
// occupy only the low byte). Kind 0 keeps the paper's original op-entry
// format bit-identical.
const (
	entKindOp         = 0 // bitmap-flip operation entry (original format)
	entKindSnapCreate = 1 // live snapshot: stays in the log until dropped
	entKindSnapDrop   = 2 // snapshot drop in progress (transient)
	entKindOpSnap     = 3 // op entry with 16-byte slots (word flips + log swaps)
	entKindCursor     = 4 // per-worker area cursor: persisted claim high-water
)

// ---- per-worker home areas ----
//
// The metadata log is organized as metaAreas home areas of metaAreaSlots
// entries each (ROART's NVMMgr gives every thread a thread-local persistent
// area for the same reason: a single shared claim array makes every op a
// cross-core CAS fight). Worker IDs hash to a home area; with at most
// metaAreas foreground workers the hash is a bijection and claims are
// entirely contention-free. Slot 0 of each area is reserved for the area's
// cursor entry (entKindCursor): a checksummed record of the highest op slot
// ever claimed in the area, persisted BEFORE the claiming op may commit, so
// recovery can stop scanning an area at its cursor instead of walking every
// slot of a 16x larger log. The cursor is an upper bound only — if it is
// torn or missing, recovery falls back to scanning the whole area, so it is
// never load-bearing for crash consistency.
const (
	metaAreas     = 64
	metaAreaSlots = 16
	// metaAreaOpSlots is the per-area op-entry capacity (slot 0 is the cursor).
	metaAreaOpSlots = metaAreaSlots - 1
)

// Snap-op slot kinds (entKindOpSnap entries).
const (
	snapSlotWord    = 0 // bitmap word transition, like bitmapSlot
	snapSlotLogSwap = 1 // record's private log replaced by a fresh block
)

// snapOpSlots is the 16-byte-slot capacity of one entKindOpSnap entry.
const snapOpSlots = 5

// snapSlot is one 16-byte slot of an entKindOpSnap entry: a word transition
// (kind snapSlotWord) or a private-log replacement (kind snapSlotLogSwap,
// payload = the new log offset). Copy-on-write commits need both for one
// node, atomically, which is why these ops use the wide format.
type snapSlot struct {
	recIdx   int64
	kind     int
	old, new uint16
	logOff   int64
}

// bitmapSlot records one node's bitmap transition: the record index, the
// old word (undo) and the new word (redo). Only valid bits need recording;
// existing bits are recovered as safe over-approximations.
type bitmapSlot struct {
	recIdx   int64
	old, new uint16
}

// metaLog is the fixed array of 128-byte entries organized into per-worker
// home areas (metaAreaSlots entries each, slot 0 the area cursor) and
// claimed lock-free: a worker probes its home area first and spills to
// neighboring areas only when the home is full. Logs smaller than one area
// (unit-test fixtures) run in legacy flat mode with no areas or cursors.
type metaLog struct {
	dev     *nvm.Device
	base    int64
	entries int
	areas   int // entries / metaAreaSlots; 0 = legacy flat probing
	claims  []atomic.Bool

	// areaHW caches each area's claim high-water (the highest op slot index
	// ever claimed); areaDurable records whether the device cursor entry is
	// known valid. Publishes go through pubMu so the persisted cursor is
	// monotone even when two workers spill into one area concurrently.
	// areaCur is a volatile rotation hint: the next op slot a claim probes
	// first, giving each area round-robin reuse instead of hammering slot 1.
	areaHW      []atomic.Uint32
	areaDurable []atomic.Bool
	areaCur     []atomic.Uint32
	pubMu       []sync.Mutex

	// Observability: probeDist records the probe distance of each claim
	// (0 = first candidate free) and casRetries counts slots lost to a
	// concurrent claimer — together they expose metadata-log contention.
	// cursorWrites counts cursor persists (each is a 64B WriteNT + fence).
	// newMetaLog installs private defaults; FS.initObs re-points them at the
	// registry-backed metrics.
	probeDist    *obs.Histogram
	casRetries   *obs.Counter
	cursorWrites *obs.Counter
}

func newMetaLog(dev *nvm.Device, base int64, entries int) *metaLog {
	m := &metaLog{dev: dev, base: base, entries: entries, claims: make([]atomic.Bool, entries),
		probeDist: &obs.Histogram{}, casRetries: &obs.Counter{}, cursorWrites: &obs.Counter{}}
	if entries >= metaAreaSlots {
		m.areas = entries / metaAreaSlots
		m.areaHW = make([]atomic.Uint32, m.areas)
		m.areaDurable = make([]atomic.Bool, m.areas)
		m.areaCur = make([]atomic.Uint32, m.areas)
		m.pubMu = make([]sync.Mutex, m.areas)
		m.seedCursors()
	}
	return m
}

func (m *metaLog) off(i int) int64 { return m.base + int64(i)*entrySize }

// homeArea maps a worker ID to its home area. Foreground workers 0..63 get
// perfectly disjoint homes (the hash is a bijection on the low six bits);
// sparse background IDs (cleaner, flusher, harness setup) spread via the
// xor-folds instead of all aliasing area 0.
func (m *metaLog) homeArea(worker int) int {
	return sim.WorkerHash(worker) % m.areas
}

// claim obtains a private entry for the worker: hash to the home area, probe
// its op slots from the rotation hint, spill to successive areas when full
// (§III-C1's linear probing, lifted from slot granularity to area
// granularity). It spins only if every entry is claimed. Before returning,
// the area's cursor is raised (and persisted, with a fence) to cover the
// claimed slot — the ordering invariant recovery's bounded scan relies on:
// no entry ever commits in a slot above its area's durable cursor.
func (m *metaLog) claim(ctx *sim.Ctx, worker int) int {
	if m.areas == 0 {
		h := (worker * 0x9E3779B1) & (m.entries - 1)
		for {
			for p := 0; p < m.entries; p++ {
				i := (h + p) & (m.entries - 1)
				ctx.Advance(m.dev.Costs().Atomic)
				if m.claims[i].CompareAndSwap(false, true) {
					m.probeDist.Observe(int64(p))
					return i
				}
				m.casRetries.Add(1)
			}
		}
	}
	home := m.homeArea(worker)
	probes := 0
	for {
		for r := 0; r < m.areas; r++ {
			a := home + r
			if a >= m.areas {
				a -= m.areas
			}
			base := a * metaAreaSlots
			cur := int(m.areaCur[a].Load()) % metaAreaOpSlots
			for p := 0; p < metaAreaOpSlots; p++ {
				s := 1 + (cur+p)%metaAreaOpSlots
				i := base + s
				ctx.Advance(m.dev.Costs().Atomic)
				if m.claims[i].CompareAndSwap(false, true) {
					m.probeDist.Observe(int64(probes))
					m.areaCur[a].Store(uint32((cur + p + 1) % metaAreaOpSlots))
					m.publishHW(ctx, a, s)
					return i
				}
				m.casRetries.Add(1)
				probes++
			}
		}
	}
}

// publishHW raises area a's durable cursor to cover op slot s. The fast path
// is one atomic load: once the cursor covers the area's whole rotation it
// never moves again, so steady state pays no media traffic. The slow path
// serializes per area (deferred unlock: the cursor write is a crash-point
// media op) and re-checks under the lock so the persisted value is monotone.
// The volatile mirror is stored only AFTER the cursor entry is durable —
// a concurrent claimer that reads hw >= s may therefore commit immediately.
func (m *metaLog) publishHW(ctx *sim.Ctx, a, s int) {
	if uint32(s) <= m.areaHW[a].Load() && m.areaDurable[a].Load() {
		return
	}
	m.pubMu[a].Lock()
	defer m.pubMu[a].Unlock()
	hw := m.areaHW[a].Load()
	if uint32(s) > hw {
		hw = uint32(s)
	} else if m.areaDurable[a].Load() {
		return
	}
	m.writeCursor(ctx, a, int(hw))
	m.areaHW[a].Store(hw)
	m.areaDurable[a].Store(true)
	m.cursorWrites.Add(1)
}

// writeCursor persists area a's cursor entry (slot 0): kind entKindCursor,
// the area id in the slot word, the high-water in the offset field, fenced.
func (m *metaLog) writeCursor(ctx *sim.Ctx, a, hw int) {
	var buf [entrySize]byte
	binary.LittleEndian.PutUint64(buf[entLen:], 1)
	binary.LittleEndian.PutUint64(buf[entSlot:], uint64(a)|uint64(entKindCursor)<<56)
	binary.LittleEndian.PutUint64(buf[entOffset:], uint64(hw))
	binary.LittleEndian.PutUint64(buf[entCksum:], entryChecksum(buf[:64]))
	m.dev.WriteNT(ctx, buf[:64], m.off(a*metaAreaSlots))
	m.dev.Fence(ctx)
}

// cursorBound validates a decoded entry as area a's cursor and returns its
// claim high-water. The range check keeps a checksummed-but-foreign value
// (another area's cursor, a scribbled offset) from sending recovery's
// bounded scan outside the area's op slots.
func cursorBound(e logEntry, a int) (hw int, ok bool) {
	if e.kind != entKindCursor || e.fileSlot != a {
		return 0, false
	}
	if e.offset < 1 || e.offset > metaAreaOpSlots {
		return 0, false
	}
	return int(e.offset), true
}

// readCursor decodes area a's cursor entry straight off the device (mount
// path; unmetered like the checkpoint-cell read).
func (m *metaLog) readCursor(a int) (hw int, ok bool) {
	var buf [entrySize]byte
	off := m.off(a * metaAreaSlots)
	for i := 0; i < 64; i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], m.dev.Load8(off+int64(i)))
	}
	e, ok := decodeEntry(buf[:])
	if !ok {
		return 0, false
	}
	return cursorBound(e, a)
}

// seedCursors initializes the volatile high-water mirrors from the device.
// A fresh device decodes no cursors and every area starts at zero; a reused
// device seeds the persisted bounds so publishes stay monotone across
// mounts (a lower fresh claim must not shrink the durable cursor while
// older entries could still sit above it).
func (m *metaLog) seedCursors() {
	for a := 0; a < m.areas; a++ {
		if hw, ok := m.readCursor(a); ok {
			m.areaHW[a].Store(uint32(hw))
			m.areaDurable[a].Store(true)
		}
	}
}

// floorHW raises area bookkeeping for a kept (still-claimed) entry found by
// recovery — live snapshot marks survive mounts in their slots, and the
// volatile high-water must cover them so later publishes never persist a
// cursor below a live entry. Volatile only: if the device cursor already
// covered i it stays valid, and if it was torn the area scans fully until
// a future publish rewrites it at or above this floor.
func (m *metaLog) floorHW(i int) {
	if m.areas == 0 {
		return
	}
	a := i / metaAreaSlots
	s := uint32(i % metaAreaSlots)
	for {
		hw := m.areaHW[a].Load()
		if s <= hw || m.areaHW[a].CompareAndSwap(hw, s) {
			return
		}
	}
}

// commit persists one entry of an operation's chain: header + slots +
// checksum, flushing only the first 64 bytes when two or fewer bitmap slots
// are used ("MGSP will only flush part of one metadata log entry"). Most
// operations need a single entry; ops whose decomposition touches more than
// ten nodes chain several, identified by a group id, and the chain commits
// atomically because entries persist in order and recovery only applies
// complete chains.
func (m *metaLog) commit(ctx *sim.Ctx, i int, fileSlot int, offset, length, fileSize int64,
	slots []bitmapSlot, group uint32, chainIdx, chainLen int, epoch uint8) {
	if len(slots) > entrySlots {
		panic(fmt.Sprintf("core: %d bitmap slots exceed the %d per entry", len(slots), entrySlots))
	}
	var buf [entrySize]byte
	binary.LittleEndian.PutUint64(buf[entLen:], uint64(length))
	binary.LittleEndian.PutUint64(buf[entSlot:], uint64(fileSlot))
	binary.LittleEndian.PutUint64(buf[entOffset:], uint64(offset))
	binary.LittleEndian.PutUint64(buf[entSize:], uint64(fileSize))
	meta := uint64(len(slots)) | uint64(chainIdx)<<8 | uint64(chainLen)<<16 |
		uint64(epoch)<<24 | uint64(group)<<32
	binary.LittleEndian.PutUint64(buf[entMeta:], meta)
	for k, s := range slots {
		binary.LittleEndian.PutUint64(buf[entData+k*8:],
			uint64(uint32(s.recIdx))|uint64(s.old)<<32|uint64(s.new)<<48)
	}
	n := entrySize
	if len(slots) <= 2 {
		n = 64
	}
	binary.LittleEndian.PutUint64(buf[entCksum:], entryChecksum(buf[:n]))
	m.dev.WriteNT(ctx, buf[:n], m.off(i))
	m.dev.Fence(ctx)
}

// commitSnap persists one entry of a snapshot-mode operation chain: same
// header layout as commit, but kind entKindOpSnap with 16-byte slots so a
// copy-on-write log swap (new log offset) can ride in the same atomic entry
// as the node's word flip.
func (m *metaLog) commitSnap(ctx *sim.Ctx, i int, fileSlot int, offset, length, fileSize int64,
	slots []snapSlot, group uint32, chainIdx, chainLen int, epoch uint8) {
	if len(slots) > snapOpSlots {
		panic(fmt.Sprintf("core: %d snap slots exceed the %d per entry", len(slots), snapOpSlots))
	}
	var buf [entrySize]byte
	binary.LittleEndian.PutUint64(buf[entLen:], uint64(length))
	binary.LittleEndian.PutUint64(buf[entSlot:], uint64(fileSlot)|uint64(entKindOpSnap)<<56)
	binary.LittleEndian.PutUint64(buf[entOffset:], uint64(offset))
	binary.LittleEndian.PutUint64(buf[entSize:], uint64(fileSize))
	meta := uint64(len(slots)) | uint64(chainIdx)<<8 | uint64(chainLen)<<16 |
		uint64(epoch)<<24 | uint64(group)<<32
	binary.LittleEndian.PutUint64(buf[entMeta:], meta)
	for k, s := range slots {
		binary.LittleEndian.PutUint64(buf[entData+k*16:],
			uint64(uint32(s.recIdx))|uint64(s.kind)<<32)
		var payload uint64
		if s.kind == snapSlotLogSwap {
			payload = uint64(s.logOff)
		} else {
			payload = uint64(s.old) | uint64(s.new)<<16
		}
		binary.LittleEndian.PutUint64(buf[entData+k*16+8:], payload)
	}
	n := entrySize
	if len(slots) <= 1 {
		n = 64
	}
	binary.LittleEndian.PutUint64(buf[entCksum:], entryChecksum(buf[:n]))
	m.dev.WriteNT(ctx, buf[:n], m.off(i))
	m.dev.Fence(ctx)
}

// commitSnapshotMark persists a snapshot lifecycle entry (entKindSnapCreate
// or entKindSnapDrop): the snapshot sequence number rides in the offset
// field and the frozen file size in the size field. A create entry is the
// snapshot's commit point and persistent existence — it is NOT retired until
// the snapshot is dropped, so it permanently occupies one metadata-log slot.
func (m *metaLog) commitSnapshotMark(ctx *sim.Ctx, i, kind, fileSlot int, snapID uint64, fileSize int64, epoch uint8) {
	var buf [entrySize]byte
	binary.LittleEndian.PutUint64(buf[entLen:], 1)
	binary.LittleEndian.PutUint64(buf[entSlot:], uint64(fileSlot)|uint64(kind)<<56)
	binary.LittleEndian.PutUint64(buf[entOffset:], snapID)
	binary.LittleEndian.PutUint64(buf[entSize:], uint64(fileSize))
	binary.LittleEndian.PutUint64(buf[entMeta:], uint64(epoch)<<24)
	binary.LittleEndian.PutUint64(buf[entCksum:], entryChecksum(buf[:64]))
	m.dev.WriteNT(ctx, buf[:64], m.off(i))
	m.dev.Fence(ctx)
}

// retire marks the entry outdated ("the length in the log will be set to 0")
// and releases the claim.
func (m *metaLog) retire(ctx *sim.Ctx, i int) {
	// Kill the checksum before the length. Zeroing only the length leaves a
	// checksum-valid corpse in the slot: when the slot is reused, a torn
	// re-commit persists some 8-byte-aligned prefix of the new entry over the
	// old bytes, and a prefix that stops before the checksum field revives the
	// length word while the header fields (file slot, offset, size) often
	// match the old entry byte for byte — resurrecting the retired entry
	// bit-identically, with its stale undo/redo words, for recovery to replay
	// over state that later operations have long since moved past. With the
	// checksum zeroed first, a torn prefix short of the new checksum fails
	// validation, and one past it fails over the stale slot data.
	m.dev.Store8(ctx, m.off(i)+entCksum, 0)
	m.dev.Store8(ctx, m.off(i)+entLen, 0)
	m.claims[i].Store(false)
}

// entryChecksum hashes the entry with the checksum field zeroed.
func entryChecksum(b []byte) uint64 {
	var tmp [entrySize]byte
	copy(tmp[:], b)
	for i := entCksum; i < entCksum+8; i++ {
		tmp[i] = 0
	}
	return uint64(crc32.ChecksumIEEE(tmp[:len(b)]))
}

// logEntry is a decoded metadata-log entry.
type logEntry struct {
	kind     int
	fileSlot int
	offset   int64 // snapshot entries: the snapshot sequence number
	length   int64
	fileSize int64
	slots    []bitmapSlot
	snaps    []snapSlot // entKindOpSnap only
	group    uint32
	chainIdx int
	chainLen int
	epoch    uint8
}

// ---- checkpoint cell ----
//
// One extra 128-byte cell between the metadata log and the node directory
// persists the cleaner's checkpoint: the epoch below which Mount may skip
// metadata-log replay (everything older has been written back to the
// fallback), plus cumulative pass counters for tools. The cell's ckptDirHW
// word independently tracks the directory high-water mark so recovery can
// bound its record scan; it is written by noteHighWater and deliberately
// excluded from the header checksum.

const (
	ckptEpoch     = 0
	ckptPasses    = 8
	ckptReclaimed = 16
	ckptCksum     = 24
	ckptHdrBytes  = 32
	ckptDirHW     = 56
)

type checkpoint struct {
	epoch     uint64
	passes    uint64
	reclaimed uint64
}

// writeCheckpointCell persists the checkpoint header with one non-temporal
// write and a fence. A torn header fails the CRC and reads as "no
// checkpoint", which only costs recovery speed, never correctness.
func writeCheckpointCell(ctx *sim.Ctx, dev *nvm.Device, off int64, ck checkpoint) {
	var buf [ckptHdrBytes]byte
	binary.LittleEndian.PutUint64(buf[ckptEpoch:], ck.epoch)
	binary.LittleEndian.PutUint64(buf[ckptPasses:], ck.passes)
	binary.LittleEndian.PutUint64(buf[ckptReclaimed:], ck.reclaimed)
	binary.LittleEndian.PutUint64(buf[ckptCksum:], uint64(crc32.ChecksumIEEE(buf[:ckptCksum])))
	dev.WriteNT(ctx, buf[:], off)
	dev.Fence(ctx)
}

// readCheckpointCell decodes the checkpoint header; ok is false when no
// checkpoint was ever taken (epoch 0, or an all-zero cell) or the header is
// torn.
func readCheckpointCell(dev *nvm.Device, off int64) (ck checkpoint, ok bool) {
	var buf [ckptHdrBytes]byte
	for i := 0; i < ckptHdrBytes; i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], dev.Load8(off+int64(i)))
	}
	if binary.LittleEndian.Uint64(buf[ckptCksum:]) != uint64(crc32.ChecksumIEEE(buf[:ckptCksum])) {
		return ck, false
	}
	ck.epoch = binary.LittleEndian.Uint64(buf[ckptEpoch:])
	ck.passes = binary.LittleEndian.Uint64(buf[ckptPasses:])
	ck.reclaimed = binary.LittleEndian.Uint64(buf[ckptReclaimed:])
	return ck, ck.epoch > 0
}

// decodeEntry validates and decodes a metadata log entry read from the
// device; ok is false for retired or torn entries.
func decodeEntry(b []byte) (e logEntry, ok bool) {
	e.length = int64(binary.LittleEndian.Uint64(b[entLen:]))
	if e.length == 0 {
		return e, false
	}
	slotWord := binary.LittleEndian.Uint64(b[entSlot:])
	e.kind = int(slotWord >> 56)
	meta := binary.LittleEndian.Uint64(b[entMeta:])
	count := int(meta & 0xFF)
	var n int
	switch e.kind {
	case entKindOp:
		if count > entrySlots {
			return e, false
		}
		n = entrySize
		if count <= 2 {
			n = 64
		}
	case entKindOpSnap:
		if count > snapOpSlots {
			return e, false
		}
		n = entrySize
		if count <= 1 {
			n = 64
		}
	case entKindSnapCreate, entKindSnapDrop:
		if count != 0 {
			return e, false
		}
		n = 64
	case entKindCursor:
		// Area cursors carry no slots: the area id rides in the file-slot
		// field and the claim high-water in the offset field.
		if count != 0 {
			return e, false
		}
		n = 64
	default:
		return e, false
	}
	if entryChecksum(b[:n]) != binary.LittleEndian.Uint64(b[entCksum:]) {
		return e, false
	}
	e.fileSlot = int(slotWord & (1<<56 - 1))
	e.offset = int64(binary.LittleEndian.Uint64(b[entOffset:]))
	e.fileSize = int64(binary.LittleEndian.Uint64(b[entSize:]))
	e.chainIdx = int(meta >> 8 & 0xFF)
	e.chainLen = int(meta >> 16 & 0xFF)
	e.epoch = uint8(meta >> 24)
	e.group = uint32(meta >> 32)
	for k := 0; k < count; k++ {
		if e.kind == entKindOpSnap {
			a := binary.LittleEndian.Uint64(b[entData+k*16:])
			p := binary.LittleEndian.Uint64(b[entData+k*16+8:])
			s := snapSlot{recIdx: int64(uint32(a)), kind: int(a >> 32 & 0xFF)}
			if s.kind == snapSlotLogSwap {
				s.logOff = int64(p)
			} else {
				s.old = uint16(p)
				s.new = uint16(p >> 16)
			}
			e.snaps = append(e.snaps, s)
			continue
		}
		w := binary.LittleEndian.Uint64(b[entData+k*8:])
		e.slots = append(e.slots, bitmapSlot{
			recIdx: int64(uint32(w)),
			old:    uint16(w >> 32),
			new:    uint16(w >> 48),
		})
	}
	return e, true
}
