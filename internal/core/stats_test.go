package core

import (
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestStatsOptimizationsEngage asserts the paper's optimizations actually
// fire: greedy locking on single-user files, minimum-search-tree hits on
// sequential access, and shadow toggles in both directions on overwrites.
func TestStatsOptimizationsEngage(t *testing.T) {
	fs := MustNew(nvm.New(64<<20, sim.ZeroCosts()), DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 1<<20), 0)

	st := fs.Stats()
	base := st.GreedyOps.Load()
	for i := 0; i < 64; i++ {
		f.WriteAt(ctx, make([]byte, 4096), int64(i%16)*4096)
	}
	if st.GreedyOps.Load()-base < 60 {
		t.Fatalf("greedy ops = %d of 64 single-user writes", st.GreedyOps.Load()-base)
	}
	if st.MinSearchHits.Load() == 0 {
		t.Fatal("minimum search tree never hit on a sequential workload")
	}
	if st.ToggleToLog.Load() == 0 || st.ToggleToFallback.Load() == 0 {
		t.Fatalf("shadow toggles one-sided: toLog=%d toFallback=%d",
			st.ToggleToLog.Load(), st.ToggleToFallback.Load())
	}
	if st.Writes.Load() == 0 || st.MetaEntries.Load() == 0 {
		t.Fatal("op counters not advancing")
	}
}

// TestStatsTogglesMatchDataWrites: for aligned single-unit writes, each op
// produces exactly one toggle (the zero-copy invariant, §III-B1).
func TestStatsToggleInvariant(t *testing.T) {
	fs := MustNew(nvm.New(64<<20, sim.ZeroCosts()), DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 64*1024), 0)
	st := fs.Stats()
	t0 := st.ToggleToLog.Load() + st.ToggleToFallback.Load()
	const ops = 50
	for i := 0; i < ops; i++ {
		f.WriteAt(ctx, make([]byte, 4096), int64(i%8)*4096)
	}
	got := st.ToggleToLog.Load() + st.ToggleToFallback.Load() - t0
	// A full-leaf write toggles each sub-unit once (coalesced into one data
	// write by planning); any other count means re-toggling within an op.
	want := int64(ops * DefaultOptions().SubBits)
	if got != want {
		t.Fatalf("aligned 4K writes produced %d sub-unit toggles, want %d", got, want)
	}
}
