package core

// Per-file instant snapshots over the multi-granularity shadow tree (see
// DESIGN.md §8). A snapshot freezes the file's current crash-consistent
// image in O(metadata): creation quiesces in-flight operations and persists
// one metadata-log entry (entKindSnapCreate) — no data is copied. Writes
// that would disturb frozen state first "pin" the affected node: a pin is a
// tagSnap directory record holding the node's committed (word, logOff) and a
// reference count on the log block, after which the write relocates any
// overwrite of valid data to a fresh block (copy-on-write) instead of
// toggling through the fallback, which is frozen while snapshots live.

import (
	"runtime"
	"sort"
	"sync/atomic"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Snapshot errors.
var (
	// ErrHasSnapshots is returned by Remove, Truncate and create-over-existing
	// while the file has live snapshots (they would destroy pinned state).
	ErrHasSnapshots = &snapErr{"core: file has live snapshots"}
	// ErrSnapshotNotFound is returned for an unknown or already-dropped id.
	ErrSnapshotNotFound = &snapErr{"core: no such snapshot"}
	// ErrSnapshotBusy is returned by DropSnapshot while handles are open.
	ErrSnapshotBusy = &snapErr{"core: snapshot has open handles"}
)

type snapErr struct{ s string }

func (e *snapErr) Error() string { return e.s }

// SnapID identifies one snapshot of one file (ids are FS-global and
// monotone; 0 is never a valid id).
type SnapID uint64

// SnapInfo describes one live snapshot for tools and tests.
type SnapInfo struct {
	ID           SnapID
	Size         int64 // frozen file size
	Epoch        uint8 // cleaner epoch at creation
	Pins         int64 // pin records serving this snapshot
	PinnedBlocks int64 // 4 KiB log blocks kept alive for this snapshot's view
}

// snapshot is one live per-file snapshot. Its persistent existence is the
// unretired entKindSnapCreate metadata-log entry at index `entry`.
type snapshot struct {
	id       uint64
	size     int64
	epoch    uint8
	entry    int
	handles  atomic.Int32
	dropping bool // set under f.snapMu; blocks new OpenSnapshot
}

// pin is a frozen view of one tree node, created at the first mutation after
// a snapshot: it serves every snapshot with id <= pin.id (lookup picks the
// smallest pin id >= the snapshot id; newer pins freeze later states). The
// pin holds one allocator reference on logOff while the frozen word actually
// reads from it.
type pin struct {
	recIdx int64
	id     uint64
	logOff int64
	word   uint64
}

// pinRefsLog reports whether a frozen (word, logOff) view reads from the log
// block — leaves through any valid sub-unit bit, interiors only when the
// valid bit is set (an existing-only word never touches the node's log).
func pinRefsLog(leaf bool, word uint64) bool {
	if leaf {
		return word != 0
	}
	return word&bitValid != 0
}

// Snapshot freezes the named file's current image and returns its id. The
// call is O(metadata): one 64-byte log entry plus fences, independent of
// file size. The snapshot holds a file reference (deferring close-time
// write-back) until dropped.
func (fs *FS) Snapshot(ctx *sim.Ctx, name string) (SnapID, error) {
	began := ctx.Now()
	fs.snapAdmin.Lock(ctx)
	defer fs.snapAdmin.Unlock(ctx)

	fs.mu.Lock(ctx)
	f := fs.files[name]
	if f == nil {
		fs.mu.Unlock(ctx)
		return 0, vfs.ErrNotExist
	}
	f.refs.Add(1)
	fs.mu.Unlock(ctx)

	if fs.flusher != nil {
		// Every write acked before this snapshot call must be in the frozen
		// image; buffered write-back data only exists in DRAM frames until
		// drained. Drain first — writes buffered after this point are
		// concurrent with the snapshot and may legitimately land on either
		// side of the freeze.
		if err := f.drainFile(ctx); err != nil {
			fs.unrefCleaned(ctx, f)
			return 0, err
		}
	}

	id := fs.snapSeq.Add(1)
	entry := fs.mlog.claim(ctx, ctx.ID)
	// Publish copy-on-write mode first, then wait out operations that may
	// have read the old value mid-plan: any operation starting after the
	// quiesce observes the new id and pins before mutating.
	f.maxLiveSnap.Store(id)
	for fs.inFlight.Load() != 0 {
		runtime.Gosched()
	}
	size := f.size.Load()
	epoch := uint8(fs.epoch.Load())
	// Commit point: the create entry stays claimed (and unretired) until the
	// snapshot is dropped — it IS the snapshot's persistent existence.
	fs.mlog.commitSnapshotMark(ctx, entry, entKindSnapCreate, f.pf.Slot(), id, size, epoch)

	f.snapMu.Lock()
	f.snaps = append(f.snaps, &snapshot{id: id, size: size, epoch: epoch, entry: entry})
	f.snapMu.Unlock()
	fs.stats.SnapshotsTaken.Add(1)
	dur := ctx.Now() - began
	fs.hSnapshot.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpSnapshot, f.pf.Slot(), 0, int64(id), dur)
	return SnapID(id), nil
}

// OpenSnapshot returns a read-only handle onto the frozen image. Reads take
// the same MGL read locks as live reads, so they run concurrently with
// writers (which hold conflicting W locks only briefly per operation).
func (fs *FS) OpenSnapshot(ctx *sim.Ctx, name string, id SnapID) (vfs.File, error) {
	fs.mu.Lock(ctx)
	f := fs.files[name]
	fs.mu.Unlock(ctx)
	if f == nil {
		return nil, vfs.ErrNotExist
	}
	f.snapMu.Lock()
	s := f.findSnapLocked(uint64(id))
	if s == nil || s.dropping {
		f.snapMu.Unlock()
		return nil, ErrSnapshotNotFound
	}
	s.handles.Add(1)
	f.snapMu.Unlock()
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	return &snapHandle{f: f, s: s}, nil
}

// DropSnapshot removes a snapshot: it persists a transient drop entry,
// retires the create entry (the durable drop point), garbage-collects every
// pin no remaining snapshot needs, and releases the snapshot's file
// reference (triggering write-back if the file is otherwise closed).
func (fs *FS) DropSnapshot(ctx *sim.Ctx, name string, id SnapID) error {
	fs.snapAdmin.Lock(ctx)
	defer fs.snapAdmin.Unlock(ctx)

	fs.mu.Lock(ctx)
	f := fs.files[name]
	fs.mu.Unlock(ctx)
	if f == nil {
		return vfs.ErrNotExist
	}
	f.snapMu.Lock()
	s := f.findSnapLocked(uint64(id))
	if s == nil || s.dropping {
		f.snapMu.Unlock()
		return ErrSnapshotNotFound
	}
	if s.handles.Load() != 0 {
		f.snapMu.Unlock()
		return ErrSnapshotBusy
	}
	s.dropping = true
	f.snapMu.Unlock()

	// Drop intent, then the commit point: retiring the create entry is the
	// single atomic action after which recovery no longer resurrects the
	// snapshot; the transient drop entry lets Mount finish an interrupted pin
	// GC (orphan pins are collected either way).
	de := fs.mlog.claim(ctx, ctx.ID)
	fs.mlog.commitSnapshotMark(ctx, de, entKindSnapDrop, f.pf.Slot(), uint64(id), 0, uint8(fs.epoch.Load()))
	fs.mlog.retire(ctx, s.entry)

	// Deferred unlocks here and below: pin GC and write-back issue media
	// ops, and a crash-injection panic mid-section must not leak the lock to
	// workers that still have to unwind through their own shields.
	func() {
		f.snapMu.Lock()
		defer f.snapMu.Unlock()
		for i, sn := range f.snaps {
			if sn == s {
				f.snaps = append(f.snaps[:i], f.snaps[i+1:]...)
				break
			}
		}
		var max uint64
		for _, sn := range f.snaps {
			if sn.id > max {
				max = sn.id
			}
		}
		f.maxLiveSnap.Store(max)
		f.gcPinsLocked(ctx)
	}()

	fs.mlog.retire(ctx, de)
	fs.stats.SnapshotsDropped.Add(1)
	fs.trace.Record(ctx.ID, obs.OpSnapDrop, f.pf.Slot(), 0, int64(id), 0)

	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	if f.refs.Add(-1) == 0 {
		f.lastRefGone(ctx)
	}
	return nil
}

// Snapshots lists the named file's live snapshots (ascending id) with their
// pin footprint.
func (fs *FS) Snapshots(ctx *sim.Ctx, name string) ([]SnapInfo, error) {
	fs.mu.Lock(ctx)
	f := fs.files[name]
	fs.mu.Unlock(ctx)
	if f == nil {
		return nil, vfs.ErrNotExist
	}
	f.snapMu.Lock()
	defer f.snapMu.Unlock()
	out := make([]SnapInfo, 0, len(f.snaps))
	for _, s := range f.snaps {
		info := SnapInfo{ID: SnapID(s.id), Size: s.size, Epoch: s.epoch}
		for n, ps := range f.pins {
			for _, p := range ps {
				if p.id >= s.id {
					info.Pins++
					if p.logOff != 0 && pinRefsLog(n.leaf, p.word) {
						info.PinnedBlocks += n.span / LeafSpan
					}
					break // smallest pin id >= s.id serves this snapshot
				}
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// findSnapLocked returns the live snapshot with the given id; callers hold
// f.snapMu.
func (f *file) findSnapLocked(id uint64) *snapshot {
	for _, s := range f.snaps {
		if s.id == id {
			return s
		}
	}
	return nil
}

// cowPin freezes n's committed state for every live snapshot that can still
// see it. It MUST run before the calling operation commits any mutation of
// the node (word flip, log swap, lazy-clean zeroing): the pin record plus
// the block reference are all a snapshot reader needs, and the allocator
// reference count is what later writes consult to keep the zero-copy toggle
// fast path on unshared blocks. Idempotent per (node, newest snapshot).
// Lock order: callers may hold treeMu; cowPin takes only snapMu and the
// directory/allocator mutexes.
func (f *file) cowPin(ctx *sim.Ctx, n *node) {
	m := f.maxLiveSnap.Load()
	if m == 0 || n.recIdx < 0 || n.snapSeq.Load() >= m {
		return
	}
	if n.birth.Load() >= m {
		// Recorded after the newest snapshot: invisible to every live one.
		n.snapSeq.Store(m)
		return
	}
	f.snapMu.Lock()
	defer f.snapMu.Unlock()
	if n.snapSeq.Load() >= m {
		return
	}
	word := n.word.Load()
	logOff := n.logOff
	rec := f.fs.dir.create(ctx, packTag(f.pf.Slot(), f.spanExp(n.span), n.idx)|tagSnap,
		logOff, word, n.birth.Load(), m)
	if logOff != 0 && pinRefsLog(n.leaf, word) {
		f.fs.prov.Alloc().Ref(ctx, logOff, n.span/LeafSpan)
	}
	if f.pins == nil {
		f.pins = make(map[*node][]*pin)
	}
	f.pins[n] = append(f.pins[n], &pin{recIdx: rec, id: m, logOff: logOff, word: word})
	n.snapSeq.Store(m)
	f.fs.stats.SnapshotPins.Add(1)
}

// pinFor returns the pin serving snapshot sid on node n (the smallest pin id
// >= sid), or nil when the live state is the right view.
func (f *file) pinFor(n *node, sid uint64) *pin {
	f.snapMu.Lock()
	defer f.snapMu.Unlock()
	for _, p := range f.pins[n] {
		if p.id >= sid {
			return p
		}
	}
	return nil
}

// gcPinsLocked drops every pin no remaining snapshot needs: a pin survives
// only if it is some live snapshot's smallest pin id >= that snapshot's id.
// Callers hold f.snapMu. Nodes are visited in (span, idx) order, not map
// order: the retire stores are media ops, and the torture harness's serial
// replay mode needs the media-op stream to be a pure function of the op
// sequence.
func (f *file) gcPinsLocked(ctx *sim.Ctx) {
	nodes := make([]*node, 0, len(f.pins))
	for n := range f.pins {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].span != nodes[j].span {
			return nodes[i].span > nodes[j].span
		}
		return nodes[i].idx < nodes[j].idx
	})
	for _, n := range nodes {
		ps := f.pins[n]
		needed := make(map[*pin]bool, len(ps))
		for _, s := range f.snaps {
			for _, p := range ps { // ascending id
				if p.id >= s.id {
					needed[p] = true
					break
				}
			}
		}
		var kept []*pin
		for _, p := range ps {
			if needed[p] {
				kept = append(kept, p)
				continue
			}
			f.fs.dir.clear(ctx, p.recIdx)
			if p.logOff != 0 && pinRefsLog(n.leaf, p.word) {
				f.fs.prov.Alloc().Free(ctx, p.logOff, n.span/LeafSpan)
			}
		}
		if len(kept) == 0 {
			delete(f.pins, n)
		} else {
			f.pins[n] = kept
		}
	}
}
