package core

// Optimistic lock-free reads. Under MGL every read pays lock acquisitions
// proportional to its cover — pure overhead when nothing is writing the
// file, which is the common case for read-mostly shards at high worker
// counts. The optimistic path serves a read with zero MGL traffic:
//
//  1. the reader registers in the file's Dekker-style gate (optRd) and
//     bails if any writer section is open (optWS != optWF);
//  2. it walks the tree lock-free, recording each visited node's version
//     (mglLock.ver, odd while a W holder is active) and bailing on odd;
//  3. it copies the data exactly like the locked resolve path;
//  4. it validates that every recorded version is unchanged and that no
//     writer entered the file (optWS unmoved), else falls back.
//
// Writers are drained the other way around: every mutating section calls
// writerEnter, which publishes the section (optWS) and then spins until no
// reader is registered. Registered readers never block — the walk takes no
// locks — so the spin is bounded by one in-flight copy. Readers that
// register after the publish observe optWS != optWF and bail immediately,
// so writers cannot starve. The per-node versions are a second, independent
// guard: even a mutation path that missed a gate call is caught as long as
// it holds W locks, which all foreground mutators do.
//
// The gate counters are volatile DRAM state (like the greedy-locking
// bookkeeping) and unmetered in virtual time; the walk itself charges the
// same IndexStep and media costs as the locked path.

import (
	"runtime"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// writerEnter opens a mutating section on the file: publish, then drain
// registered optimistic readers. No-op unless the optimistic path is armed
// (fs.optGate), keeping every other configuration bit-identical.
func (f *file) writerEnter() {
	if !f.fs.optGate {
		return
	}
	f.optWS.Add(1)
	for f.optRd.Load() != 0 {
		runtime.Gosched()
	}
}

// writerExit closes the mutating section. Callers pair it with writerEnter
// via defer so a crash-injection panic cannot leave the gate open forever
// (readers would then fall back on every attempt — safe, but pointless).
func (f *file) writerExit() {
	if !f.fs.optGate {
		return
	}
	f.optWF.Add(1)
}

// nodeVer is one recorded (node, version) observation of the lock-free walk.
type nodeVer struct {
	n *node
	v uint64
}

// readOptimistic attempts the lock-free read of [off, off+len(p)). It
// reports false when the attempt was abandoned — the caller must then run
// the ordinary locked path, which fully overwrites p.
func (f *file) readOptimistic(ctx *sim.Ctx, p []byte, off int64, began int64) bool {
	root := f.root.Load()
	if root == nil {
		return false
	}
	fs := f.fs
	f.optRd.Add(1)
	defer f.optRd.Add(-1)
	ws := f.optWS.Load()
	if ws != f.optWF.Load() {
		fs.stats.OptReadFallbacks.Add(ctx.ID, 1)
		return false
	}
	end := off + int64(len(p))
	vers := make([]nodeVer, 0, 8)
	if !f.walkOpt(ctx, root, off, end, nil, p, off, &vers) {
		fs.stats.OptReadFallbacks.Add(ctx.ID, 1)
		return false
	}
	// Validate after the copy: every visited node's version unchanged (and
	// even), and no writer section opened since registration.
	for _, nv := range vers {
		if nv.n.lock.ver.Load() != nv.v {
			fs.stats.OptReadFallbacks.Add(ctx.ID, 1)
			return false
		}
	}
	if f.optWS.Load() != ws {
		fs.stats.OptReadFallbacks.Add(ctx.ID, 1)
		return false
	}
	fs.stats.OptReads.Add(ctx.ID, 1)
	f.updateMinSearch(off, end)
	dur := ctx.Now() - began
	fs.hRead.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpRead, f.pf.Slot(), off, int64(len(p)), dur)
	return true
}

// walkOpt mirrors walkResolve with version recording: the structure and the
// cost accounting are identical, but every visited node's version is checked
// (bail on odd: a writer holds W right now) and remembered for post-copy
// validation. The leaf/fallback copies reuse the locked path's helpers,
// which are themselves lock-free.
func (f *file) walkOpt(ctx *sim.Ctx, n *node, lo, hi int64, lastValid *node, buf []byte, base int64, vers *[]nodeVer) bool {
	v := n.lock.ver.Load()
	if v&1 != 0 {
		return false
	}
	*vers = append(*vers, nodeVer{n, v})
	ctx.Advance(f.fs.costs.IndexStep)
	if n.leaf {
		f.resolveLeaf(ctx, n, lo, hi, lastValid, buf, base)
		return true
	}
	if n.word.Load()&bitValid != 0 {
		lastValid = n
	}
	if n.word.Load()&bitExisting == 0 {
		f.readFrom(ctx, lastValid, lo, hi, buf[lo-base:hi-base])
		return true
	}
	cs := n.childSpan(f.fs.opts.Degree)
	for cur := lo; cur < hi; {
		ci := (cur - n.offset()) / cs
		cEnd := n.offset() + (ci+1)*cs
		if cEnd > hi {
			cEnd = hi
		}
		if c := n.children[ci].Load(); c != nil {
			if !f.walkOpt(ctx, c, cur, cEnd, lastValid, buf, base, vers) {
				return false
			}
		} else {
			f.readFrom(ctx, lastValid, cur, cEnd, buf[cur-base:cEnd-base])
		}
		cur = cEnd
	}
	return true
}
