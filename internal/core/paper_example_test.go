package core

import (
	"bytes"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestPaperFigure4And5 replays the worked example of the paper's Figures 4
// and 5: a degree-2 tree over a 32 KiB region, minimum update granularity
// 2 KiB (two valid bits per 4 KiB leaf), and three writes:
//
//	(1) 32 KiB at offset 0        — coarse write covering the whole region
//	(2)  2 KiB at offset 16 KiB   — fine-grained update of half a leaf
//	(3) 14 KiB at offset 18 KiB   — multi-granularity write: per Figure 4 it
//	    decomposes into a 2 KiB leaf remainder (reusing write (2)'s leaf log,
//	    "so there is no space wasted in this case"), one 4 KiB leaf, and one
//	    8 KiB interior log
//
// In the figure the 32 KiB root's log is the file itself; here the mapping
// is larger than the file, so the figure's root corresponds to the 32 KiB
// node whose private log plays the same role. The bitmap states of Figure 5
// then map one-to-one.
func TestPaperFigure4And5(t *testing.T) {
	opts := Options{
		Degree:           2,
		SubBits:          2, // 2 KiB minimum update granularity, as in the figure
		MultiGranularity: true,
		Locking:          LockMGL,
	}
	dev := nvm.New(32<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	h, _ := fs.Create(ctx, "fig4")

	ref := make([]byte, 32*1024)

	// Write (1): 32 KiB to the empty file — one coarse log at the 32 KiB
	// granularity (the figure's "root log").
	w1 := bytes.Repeat([]byte{0x11}, 32*1024)
	h.WriteAt(ctx, w1, 0)
	copy(ref, w1)

	f := fs.files["fig4"]
	node32 := f.root.Load()
	for node32.span > 32*1024 {
		c := node32.child(0)
		if c == nil {
			t.Fatalf("no populated path down to the 32K node (span %d)", node32.span)
		}
		node32 = c
	}
	if !node32.valid() {
		t.Fatal("after (1): the 32K node must hold the coarse log (the figure's root)")
	}
	if node32.existing() {
		t.Fatal("after (1): no descendants exist yet — existing must be clear")
	}
	if node32.child(0) != nil || node32.child(1) != nil {
		t.Fatal("after (1): the figure creates no 16K children for a whole-region write")
	}

	// Write (2): 2 KiB at offset 16 KiB — the first half of the leaf at
	// 16K..20K. Figure 5 marks that leaf "10" (first sub-unit valid) and
	// sets existing bits up the path.
	w2 := bytes.Repeat([]byte{0x22}, 2*1024)
	h.WriteAt(ctx, w2, 16*1024)
	copy(ref[16*1024:], w2)

	if got := node32.word.Load(); got != bitValid|bitExisting {
		t.Fatalf("after (2): 32K node word = %02b, want valid+existing (the figure's root '11')", got)
	}
	right16 := node32.child(1) // 16K..32K
	if right16 == nil {
		t.Fatal("after (2): the 16K node on the path was not created")
	}
	if right16.valid() || !right16.existing() {
		t.Fatalf("after (2): 16K node word = %02b, want existing-only (data lives above and below it)", right16.word.Load())
	}
	if node32.child(0) != nil {
		t.Fatal("after (2): the untouched left 16K subtree must stay uncreated")
	}
	right8 := right16.child(0) // 16K..24K
	if right8 == nil || right8.valid() || !right8.existing() {
		t.Fatal("after (2): the 8K node on the path must be existing-only")
	}
	leaf16 := right8.child(0) // 16K..20K
	if leaf16 == nil {
		t.Fatal("after (2): the target leaf was not created")
	}
	if leaf16.word.Load() != 0b01 { // bit 0 = first 2 KiB sub-unit
		t.Fatalf("after (2): leaf bitmap = %02b, want first-half-only (the figure's '10')", leaf16.word.Load())
	}

	// Write (3): 14 KiB at offset 18 KiB. Figure 4: "two 4K logs and one 8K
	// log for this write. The 4KB log in the second fine-grained write can
	// be reused."
	w3 := bytes.Repeat([]byte{0x33}, 14*1024)
	h.WriteAt(ctx, w3, 18*1024)
	copy(ref[18*1024:], w3)

	// The reused leaf: second sub-unit toggles into the same leaf log → 11.
	if leaf16.word.Load() != 0b11 {
		t.Fatalf("after (3): reused leaf bitmap = %02b, want 11", leaf16.word.Load())
	}
	// 20K..24K: whole-leaf target, fully valid.
	leaf20 := right8.child(1)
	if leaf20 == nil || leaf20.word.Load() != 0b11 {
		t.Fatal("after (3): the 20K..24K leaf must be fully valid")
	}
	// 24K..32K: handled as one 8 KiB coarse log, no children.
	right8b := right16.child(1)
	if right8b == nil || !right8b.valid() {
		t.Fatal("after (3): the 24K..32K node must hold a valid 8K coarse log")
	}
	if right8b.child(0) != nil || right8b.child(1) != nil {
		t.Fatal("after (3): the 8K coarse write must not create leaves")
	}
	// Path bits: the 16K node gains nothing but existing; the 32K node keeps
	// valid (it still holds 0..16K) + existing.
	if right16.valid() || !right16.existing() {
		t.Fatalf("after (3): 16K node word = %02b, want existing-only", right16.word.Load())
	}
	if got := node32.word.Load(); got != bitValid|bitExisting {
		t.Fatalf("after (3): 32K node word = %02b, want valid+existing", got)
	}

	// Contents must match the reference model throughout.
	got := make([]byte, len(ref))
	h.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, ref) {
		t.Fatal("content mismatch after the figure's write sequence")
	}

	// Figure 4's caption: "the additional space required for each
	// granularity of logs does not exceed the file size."
	perLevel := map[int64]int64{}
	var walk func(n *node)
	walk = func(n *node) {
		if n.logOff != 0 {
			perLevel[n.span] += n.span
		}
		for i := range n.children {
			if c := n.children[i].Load(); c != nil {
				walk(c)
			}
		}
	}
	walk(f.root.Load())
	for span, total := range perLevel {
		if total > 32*1024 {
			t.Fatalf("span-%d logs use %d bytes, exceeding the file size", span, total)
		}
	}
}
