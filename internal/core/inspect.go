package core

import (
	"fmt"
	"sort"
	"strings"

	"mgsp/internal/nvm"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
)

// Inspect produces a read-only forensic report of an MGSP device image: the
// file table, per-file shadow-log record census (by granularity, with valid
// and existing bit counts), and the metadata-log state — what a repair tool
// would examine before deciding to Mount. The device is not modified.
func Inspect(dev *nvm.Device, opts Options) (string, error) {
	if err := opts.validate(); err != nil {
		return "", err
	}
	ctx := sim.NewCtx(0, 0)
	prov, err := pmfile.Recover(ctx, dev, MetaBytes(dev.Size()))
	if err != nil {
		return "", err
	}
	fs := mkFS(prov, opts)

	var b strings.Builder
	fmt.Fprintf(&b, "MGSP image: device %d MiB, degree %d, sub-bits %d\n\n",
		dev.Size()>>20, opts.Degree, opts.SubBits)

	// File table.
	type fileInfo struct {
		name string
		pf   *pmfile.File
	}
	var files []fileInfo
	for name, pf := range prov.Files() {
		files = append(files, fileInfo{name, pf})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	bySlot := make(map[int]string)
	for _, fi := range files {
		bySlot[fi.pf.Slot()] = fi.name
	}
	fmt.Fprintf(&b, "files: %d\n", len(files))
	for _, fi := range files {
		fmt.Fprintf(&b, "  %-24s slot=%-3d size=%-12d capacity=%d\n",
			fi.name, fi.pf.Slot(), fi.pf.Size(), fi.pf.Capacity())
	}

	// Record census per file and span.
	type key struct {
		slot    int
		spanExp int
	}
	type census struct {
		records, valid, existing int
		logBytes                 int64
	}
	// Snapshot pin records are censused separately: they are frozen copies,
	// not live tree state.
	type pinRec struct {
		slot    int
		spanExp int
		nidx    int64
		id      uint64
		word    uint64
		logOff  int64
	}
	var pinRecs []pinRec
	counts := make(map[key]*census)
	total := 0
	for idx := int64(0); idx < fs.dir.cap; idx++ {
		tag := dev.Load8(fs.dir.off(idx) + recTag)
		if tag&tagInUse == 0 {
			continue
		}
		slot, spanExp, nidx := unpackTag(tag)
		word := dev.Load8(fs.dir.off(idx) + recWord)
		logOff := int64(dev.Load8(fs.dir.off(idx) + recLogOff))
		if tag&tagSnap != 0 {
			pinRecs = append(pinRecs, pinRec{slot, spanExp, nidx,
				dev.Load8(fs.dir.off(idx) + recSnapID), word, logOff})
			continue
		}
		total++
		k := key{slot, spanExp}
		c := counts[k]
		if c == nil {
			c = &census{}
			counts[k] = c
		}
		c.records++
		if spanExp == 0 {
			if word != 0 {
				c.valid++
			}
		} else {
			if word&bitValid != 0 {
				c.valid++
			}
			if word&bitExisting != 0 {
				c.existing++
			}
		}
		if logOff != 0 {
			span := int64(LeafSpan)
			for e := 0; e < spanExp; e++ {
				span *= int64(opts.Degree)
			}
			c.logBytes += span
		}
	}
	fmt.Fprintf(&b, "\nshadow-log records: %d\n", total)
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].slot != keys[j].slot {
			return keys[i].slot < keys[j].slot
		}
		return keys[i].spanExp > keys[j].spanExp
	})
	for _, k := range keys {
		c := counts[k]
		span := int64(LeafSpan)
		for e := 0; e < k.spanExp; e++ {
			span *= int64(opts.Degree)
		}
		name := bySlot[k.slot]
		if name == "" {
			name = fmt.Sprintf("(orphaned slot %d)", k.slot)
		}
		fmt.Fprintf(&b, "  %-24s span=%-10s records=%-6d valid=%-6d existing=%-6d log-space=%s\n",
			name, fmtSize(span), c.records, c.valid, c.existing, fmtSize(c.logBytes))
	}

	// Metadata log. Snapshot create entries are long-lived (they ARE the live
	// snapshots); everything else is an in-flight operation.
	kindName := map[int]string{
		entKindOp:         "op",
		entKindSnapCreate: "snap-create",
		entKindSnapDrop:   "snap-drop",
		entKindOpSnap:     "op-cow",
	}
	type snapEnt struct {
		idx int
		e   logEntry
	}
	var snapCreates []snapEnt
	dropIDs := make(map[uint64]bool)
	live, cursors := 0, 0
	var ebuf [entrySize]byte
	var liveLines []string
	for i := 0; i < fs.mlog.entries; i++ {
		dev.Read(ctx, ebuf[:], fs.mlog.off(i))
		e, ok := decodeEntry(ebuf[:])
		if !ok {
			continue
		}
		switch e.kind {
		case entKindSnapCreate:
			snapCreates = append(snapCreates, snapEnt{i, e})
			continue
		case entKindSnapDrop:
			dropIDs[uint64(e.offset)] = true
		case entKindCursor:
			// Area bookkeeping, not an in-flight operation: the cursor only
			// bounds recovery's scan of its area (DESIGN.md §14.2).
			cursors++
			continue
		}
		live++
		slots := len(e.slots) + len(e.snaps)
		liveLines = append(liveLines, fmt.Sprintf(
			"  entry %-3d kind=%-11s file-slot=%d off=%d len=%d size=%d slots=%d chain=%d/%d group=%d",
			i, kindName[e.kind], e.fileSlot, e.offset, e.length, e.fileSize, slots, e.chainIdx+1, e.chainLen, e.group))
	}
	fmt.Fprintf(&b, "\nmetadata log: %d entries, %d live (uncommitted or unreplayed), %d area cursors\n",
		fs.mlog.entries, live, cursors)
	for _, l := range liveLines {
		b.WriteString(l + "\n")
	}
	if live > 0 {
		b.WriteString("  -> Mount would complete these operations during recovery\n")
	}

	// Snapshot table: live snapshots (create entry present, no cancelling
	// drop) with the blocks their pins keep alive. A pin serves a snapshot
	// when it is that node's smallest pin id >= the snapshot id; only those
	// blocks are chargeable to the snapshot.
	fmt.Fprintf(&b, "\nsnapshots: %d live\n", func() int {
		n := 0
		for _, sc := range snapCreates {
			if !dropIDs[uint64(sc.e.offset)] {
				n++
			}
		}
		return n
	}())
	sort.Slice(snapCreates, func(i, j int) bool {
		return uint64(snapCreates[i].e.offset) < uint64(snapCreates[j].e.offset)
	})
	type nodeKey struct {
		slot    int
		spanExp int
		nidx    int64
	}
	pinsByNode := make(map[nodeKey][]pinRec)
	for _, p := range pinRecs {
		k := nodeKey{p.slot, p.spanExp, p.nidx}
		pinsByNode[k] = append(pinsByNode[k], p)
	}
	for _, ps := range pinsByNode {
		sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	}
	for _, sc := range snapCreates {
		id := uint64(sc.e.offset)
		if dropIDs[id] {
			fmt.Fprintf(&b, "  snap %-6d file-slot=%d (drop in progress; Mount completes it)\n", id, sc.e.fileSlot)
			continue
		}
		var pins, blocks int64
		for k, ps := range pinsByNode {
			if k.slot != sc.e.fileSlot {
				continue
			}
			for _, p := range ps {
				if p.id >= id {
					pins++
					if p.logOff != 0 && pinRefsLog(k.spanExp == 0, p.word) {
						span := int64(LeafSpan)
						for e := 0; e < k.spanExp; e++ {
							span *= int64(opts.Degree)
						}
						blocks += span / LeafSpan
					}
					break
				}
			}
		}
		name := bySlot[sc.e.fileSlot]
		if name == "" {
			name = fmt.Sprintf("(slot %d)", sc.e.fileSlot)
		}
		fmt.Fprintf(&b, "  snap %-6d %-24s frozen-size=%-12d epoch=%-3d pins=%-5d pinned-blocks=%d\n",
			id, name, sc.e.fileSize, sc.e.epoch, pins, blocks)
	}
	if len(pinRecs) > 0 {
		fmt.Fprintf(&b, "  pin records: %d total\n", len(pinRecs))
	}

	// Checkpoint cell (background cleaner).
	if ck, ok := readCheckpointCell(dev, fs.ckptOff); ok {
		fmt.Fprintf(&b, "\ncheckpoint: epoch=%d cleaner-passes=%d blocks-reclaimed=%d\n",
			ck.epoch, ck.passes, ck.reclaimed)
		fmt.Fprintf(&b, "  -> Mount skips replay of metadata entries stamped before epoch %d\n", ck.epoch)
	} else {
		b.WriteString("\ncheckpoint: none (full replay on Mount)\n")
	}
	if hw := int64(dev.Load8(fs.ckptOff + ckptDirHW)); hw > 0 {
		fmt.Fprintf(&b, "directory high-water mark: %d of %d records scanned on Mount\n", hw, fs.dir.cap)
	}
	return b.String(), nil
}

func fmtSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
