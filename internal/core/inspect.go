package core

import (
	"fmt"
	"sort"
	"strings"

	"mgsp/internal/nvm"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
)

// Inspect produces a read-only forensic report of an MGSP device image: the
// file table, per-file shadow-log record census (by granularity, with valid
// and existing bit counts), and the metadata-log state — what a repair tool
// would examine before deciding to Mount. The device is not modified.
func Inspect(dev *nvm.Device, opts Options) (string, error) {
	if err := opts.validate(); err != nil {
		return "", err
	}
	ctx := sim.NewCtx(0, 0)
	prov, err := pmfile.Recover(ctx, dev, MetaBytes(dev.Size()))
	if err != nil {
		return "", err
	}
	fs := mkFS(prov, opts)

	var b strings.Builder
	fmt.Fprintf(&b, "MGSP image: device %d MiB, degree %d, sub-bits %d\n\n",
		dev.Size()>>20, opts.Degree, opts.SubBits)

	// File table.
	type fileInfo struct {
		name string
		pf   *pmfile.File
	}
	var files []fileInfo
	for name, pf := range prov.Files() {
		files = append(files, fileInfo{name, pf})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	bySlot := make(map[int]string)
	for _, fi := range files {
		bySlot[fi.pf.Slot()] = fi.name
	}
	fmt.Fprintf(&b, "files: %d\n", len(files))
	for _, fi := range files {
		fmt.Fprintf(&b, "  %-24s slot=%-3d size=%-12d capacity=%d\n",
			fi.name, fi.pf.Slot(), fi.pf.Size(), fi.pf.Capacity())
	}

	// Record census per file and span.
	type key struct {
		slot    int
		spanExp int
	}
	type census struct {
		records, valid, existing int
		logBytes                 int64
	}
	counts := make(map[key]*census)
	total := 0
	for idx := int64(0); idx < fs.dir.cap; idx++ {
		tag := dev.Load8(fs.dir.off(idx) + recTag)
		if tag&tagInUse == 0 {
			continue
		}
		total++
		slot, spanExp, _ := unpackTag(tag)
		word := dev.Load8(fs.dir.off(idx) + recWord)
		logOff := int64(dev.Load8(fs.dir.off(idx) + recLogOff))
		k := key{slot, spanExp}
		c := counts[k]
		if c == nil {
			c = &census{}
			counts[k] = c
		}
		c.records++
		if spanExp == 0 {
			if word != 0 {
				c.valid++
			}
		} else {
			if word&bitValid != 0 {
				c.valid++
			}
			if word&bitExisting != 0 {
				c.existing++
			}
		}
		if logOff != 0 {
			span := int64(LeafSpan)
			for e := 0; e < spanExp; e++ {
				span *= int64(opts.Degree)
			}
			c.logBytes += span
		}
	}
	fmt.Fprintf(&b, "\nshadow-log records: %d\n", total)
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].slot != keys[j].slot {
			return keys[i].slot < keys[j].slot
		}
		return keys[i].spanExp > keys[j].spanExp
	})
	for _, k := range keys {
		c := counts[k]
		span := int64(LeafSpan)
		for e := 0; e < k.spanExp; e++ {
			span *= int64(opts.Degree)
		}
		name := bySlot[k.slot]
		if name == "" {
			name = fmt.Sprintf("(orphaned slot %d)", k.slot)
		}
		fmt.Fprintf(&b, "  %-24s span=%-10s records=%-6d valid=%-6d existing=%-6d log-space=%s\n",
			name, fmtSize(span), c.records, c.valid, c.existing, fmtSize(c.logBytes))
	}

	// Metadata log.
	live := 0
	var ebuf [entrySize]byte
	var liveLines []string
	for i := 0; i < fs.mlog.entries; i++ {
		dev.Read(ctx, ebuf[:], fs.mlog.off(i))
		e, ok := decodeEntry(ebuf[:])
		if !ok {
			continue
		}
		live++
		liveLines = append(liveLines, fmt.Sprintf(
			"  entry %-3d file-slot=%d off=%d len=%d size=%d slots=%d chain=%d/%d group=%d",
			i, e.fileSlot, e.offset, e.length, e.fileSize, len(e.slots), e.chainIdx+1, e.chainLen, e.group))
	}
	fmt.Fprintf(&b, "\nmetadata log: %d entries, %d live (uncommitted or unreplayed)\n", fs.mlog.entries, live)
	for _, l := range liveLines {
		b.WriteString(l + "\n")
	}
	if live > 0 {
		b.WriteString("  -> Mount would complete these operations during recovery\n")
	}

	// Checkpoint cell (background cleaner).
	if ck, ok := readCheckpointCell(dev, fs.ckptOff); ok {
		fmt.Fprintf(&b, "\ncheckpoint: epoch=%d cleaner-passes=%d blocks-reclaimed=%d\n",
			ck.epoch, ck.passes, ck.reclaimed)
		fmt.Fprintf(&b, "  -> Mount skips replay of metadata entries stamped before epoch %d\n", ck.epoch)
	} else {
		b.WriteString("\ncheckpoint: none (full replay on Mount)\n")
	}
	if hw := int64(dev.Load8(fs.ckptOff + ckptDirHW)); hw > 0 {
		fmt.Fprintf(&b, "directory high-water mark: %d of %d records scanned on Mount\n", hw, fs.dir.cap)
	}
	return b.String(), nil
}

func fmtSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
