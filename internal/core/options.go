// Package core implements Multi-Granularity Shadow Paging (MGSP), the
// paper's contribution: a user-space crash-consistency layer for memory-
// mapped I/O on NVM built from
//
//   - shadow logging (§III-B): each tree node's log and its nearest valid
//     ancestor's log alternate between redo and undo roles, so every user
//     write costs exactly one data write — no double write, no checkpoint;
//   - a multi-granularity radix tree (MSL): each level logs at one
//     granularity (leaf 4 KiB with sub-block valid bits, coarser spans
//     above), chosen per write to minimize write amplification and metadata;
//   - bitmap metadata with lazy cleaning (§III-B2);
//   - a lock-free metadata log for operation-level atomicity (§III-C1);
//   - multiple-granularity locking with greedy locking, lazy intention
//     cleaning, and a minimum-search-tree cache (§III-C2).
//
// The package implements vfs.FS/vfs.File so the FIO and SQLite workloads can
// drive it interchangeably with the baselines, plus Mount for crash recovery.
//
// The locking discipline below is declared for the lockorder vet pass
// (cmd/mgspvet, DESIGN.md §15), which checks every blocking acquisition in
// this package and its importers against it interprocedurally:
//
//mgsp:lock-order FS.snapAdmin < FS.mu < file.sizeMu
//mgsp:lock-order FS.mu < file.snapMu
//mgsp:lock-order file.flushMu < file.treeMu < file.snapMu
//mgsp:lock-order file.flushMu < file.sizeMu
//mgsp:lock-order file.flock < file.sizeMu
//
// node.lock self-nests by protocol: lockOp and lockCoarse always descend the
// radix tree parent-before-child, so intra-class nesting cannot cycle.
//
//mgsp:lock-order-self node.lock
package core

import "fmt"

// LockMode selects the isolation strategy (the Figure 13 ablation axis).
type LockMode int

const (
	// LockMGL uses multiple-granularity locking over the radix tree.
	LockMGL LockMode = iota
	// LockFile takes a single file-level readers-writer lock per operation
	// (the coarse baseline the paper's "fine-grained locking" bar beats).
	LockFile
)

// Options configures an MGSP instance. The zero value is not valid; use
// DefaultOptions (the full system) or start from it for ablations.
type Options struct {
	// Degree is the radix tree fan-out (the paper uses 64: granularity
	// ladder 4K / 256K / 16M / 1G ...).
	Degree int
	// SubBits is the number of valid bits per leaf: the minimum update
	// granularity is 4096/SubBits bytes (the paper discusses 2 bits -> 2 KiB
	// and uses up to 64 B fine-grained units; the default 8 gives 512 B).
	// Must be a power of two between 1 and 16 (bitmap slots reserve 16 bits).
	SubBits int
	// MultiGranularity enables coarse-grained targets and leaf sub-block
	// updates. When false every write is handled at fixed 4 KiB granularity
	// with read-modify-write for partial blocks — the plain "shadow log"
	// baseline of Figure 13.
	MultiGranularity bool
	// Locking selects file-level or multiple-granularity locking.
	Locking LockMode
	// GreedyLocking enables the single-lock fast path when the file has one
	// reference (§III-C2, "greedy locking").
	GreedyLocking bool
	// LazyIntentionCleaning keeps intention locks cached across operations;
	// conflicting coarse acquirers descend to child locks instead of
	// waiting (§III-C2, "lazy cleaning for intention lock").
	LazyIntentionCleaning bool
	// MinSearchTree enables the cached minimum search subtree (§III-B1).
	MinSearchTree bool
	// OptimisticReads serves reads lock-free when possible: the reader
	// registers in a per-file Dekker gate, walks the tree without taking MGL
	// locks, copies, then validates that no writer entered the file and that
	// every visited node's version is unchanged and even — bailing to the
	// ordinary locked path otherwise. Active only under LockMGL with the
	// DRAM cache tier disabled (frame installs need the R locks); writers
	// drain registered readers before mutating, so correctness never depends
	// on the validation alone. See optread.go.
	OptimisticReads bool
	// CleanerInterval is the virtual-time period (nanoseconds) between
	// background cleaner passes: cold shadow subtrees are written back, their
	// log blocks reclaimed, and a checkpoint record persisted so Mount skips
	// replay of pre-checkpoint metadata entries (see internal/cleaner and
	// DESIGN.md §7). Zero disables the cleaner — the paper's behavior, where
	// logs are only written back at close and during recovery — leaving all
	// existing ablations bit-identical. Negative values are invalid.
	CleanerInterval int64
	// CleanerBudget caps the log blocks one cleaner pass may reclaim; the
	// next pass resumes where the previous one stopped. Zero means an
	// unbounded pass; negative values are invalid. Ignored while
	// CleanerInterval is zero.
	CleanerBudget int64
	// CacheFrames enables the DRAM page-cache tier (internal/cache, DESIGN.md
	// §13) with at least that many 4 KiB frames (rounded up to the pool's set
	// geometry). Reads hit frames via the optimistic latch-free protocol
	// instead of the media; committed writes keep frames coherent. Zero
	// disables the cache — every ablation and recovery path is bit-identical
	// to the uncached system. Negative values are invalid.
	CacheFrames int
	// WriteBack relaxes single-block overwrites to cache-buffered
	// acknowledgements: the write lands in a dirty frame and becomes durable
	// when the background flusher drains it through WriteMulti, at Fsync, or
	// at Close — the explicit-sync contract mmap/msync applications already
	// live with. Crash consistency is unchanged (drains commit through the
	// shadow log; a torn drain is indistinguishable from unbatched writes),
	// only the durability point of unsynced writes moves. Requires
	// CacheFrames > 0. False keeps strict write-through.
	WriteBack bool
	// FlushInterval is the virtual-time period (nanoseconds) between
	// write-back flusher passes; the flusher also fires early when a quarter
	// of the pool is dirty. Zero means a 100 µs default; negative values are
	// invalid. Ignored unless WriteBack is set.
	FlushInterval int64
}

// DefaultOptions returns the full MGSP configuration evaluated in the paper.
// The background cleaner is off by default (the paper has no online cleaner);
// set CleanerInterval to enable it for sustained-write workloads.
func DefaultOptions() Options {
	return Options{
		Degree:                64,
		SubBits:               8,
		MultiGranularity:      true,
		Locking:               LockMGL,
		GreedyLocking:         true,
		LazyIntentionCleaning: true,
		MinSearchTree:         true,
		OptimisticReads:       true,
	}
}

func (o Options) validate() error {
	if o.Degree < 2 || o.Degree > 1024 {
		return fmt.Errorf("core: Degree %d out of range [2,1024]", o.Degree)
	}
	if o.SubBits < 1 || o.SubBits > 16 || o.SubBits&(o.SubBits-1) != 0 {
		return fmt.Errorf("core: SubBits %d must be a power of two in [1,16]", o.SubBits)
	}
	if o.CleanerInterval < 0 {
		return fmt.Errorf("core: CleanerInterval %d must not be negative", o.CleanerInterval)
	}
	if o.CleanerBudget < 0 {
		return fmt.Errorf("core: CleanerBudget %d must not be negative", o.CleanerBudget)
	}
	if o.CacheFrames < 0 {
		return fmt.Errorf("core: CacheFrames %d must not be negative", o.CacheFrames)
	}
	if o.FlushInterval < 0 {
		return fmt.Errorf("core: FlushInterval %d must not be negative", o.FlushInterval)
	}
	if o.WriteBack && o.CacheFrames == 0 {
		return fmt.Errorf("core: WriteBack requires CacheFrames > 0")
	}
	return nil
}
