package core

import (
	"runtime"
	"sort"

	"mgsp/internal/sim"
)

// lockedNode records one acquired lock for release.
type lockedNode struct {
	n    *node
	mode lockMode
}

// opLocks is everything an operation acquired, released in reverse order.
type opLocks struct {
	file     bool // file-level lock held
	write    bool
	greedy   bool // holds a greedyActive reference
	acquired []lockedNode
}

// lockOp acquires isolation for an operation over segments (already in
// offset order): file-level lock, greedy single lock, or the full MGL plan
// (intentions on ancestors top-down, then R/W on targets in offset order).
func (f *file) lockOp(ctx *sim.Ctx, start *node, segs []segment, write bool) *opLocks {
	began := ctx.Now()
	ol := &opLocks{write: write}
	if f.fs.opts.Locking == LockFile {
		if write {
			f.flock.Lock(ctx)
		} else {
			f.flock.RLock(ctx)
		}
		ol.file = true
		f.fs.hMGLAcq.Observe(ctx.Now() - began)
		return ol
	}
	mode := lockR
	if write {
		mode = lockW
	}
	if f.tryGreedy(ctx) {
		// Greedy locking: one lock at the minimum-search-tree root covers
		// the whole operation (§III-C2), skipping ancestor intentions —
		// sound only while a single worker uses the file (tryGreedy).
		ol.greedy = true
		f.fs.stats.GreedyOps.Add(ctx.ID, 1)
		f.lockCoarse(ctx, start, mode, ol)
		f.fs.hMGLAcq.Observe(ctx.Now() - began)
		return ol
	}
	if f.fs.opts.GreedyLocking {
		// The greedy fast path was configured but unavailable (multi-user
		// demotion, open handles, or a busy cleaner). This is a standing
		// capacity condition, not a failed try-lock: at 2+ workers every
		// single op runs demoted, and counting it as MGLTryFails made the
		// lock fast path read as a try-fail storm (fails ~= ops in
		// BENCH_smoke) when nothing was spinning at all.
		f.fs.stats.GreedyDemotions.Add(ctx.ID, 1)
	}

	// Intentions on the union of target ancestries, root-first then by
	// offset; sticky under lazy cleaning.
	intent := lockIR
	if write {
		intent = lockIW
	}
	ancestors := ancestorsOf(segs)
	for _, a := range ancestors {
		f.acquireIntent(ctx, a, intent, ol)
	}
	for _, s := range segs {
		f.lockCoarse(ctx, s.n, mode, ol)
	}
	f.fs.hMGLAcq.Observe(ctx.Now() - began)
	return ol
}

// tryGreedy decides whether this operation may use greedy locking and, if
// so, registers it. A second worker's first op flips the file to multi-user
// and waits for in-flight greedy ops to drain, so a greedy op can never
// overlap a full-MGL op.
func (f *file) tryGreedy(ctx *sim.Ctx) bool {
	if !f.fs.opts.GreedyLocking {
		return false
	}
	me := int64(ctx.ID) + 1
	if !f.multiUser.Load() {
		last := f.lastWorker.Load()
		switch {
		case last == 0:
			f.lastWorker.Store(me)
		case last != me:
			// A second worker appeared: demote permanently and wait out any
			// in-flight greedy op before proceeding with full MGL.
			f.multiUser.Store(true)
			for f.greedyActive.Load() != 0 {
				runtime.Gosched()
			}
		}
	}
	if f.multiUser.Load() || f.refs.Load() != 1 || f.cleanerBusy.Load() != 0 {
		return false
	}
	f.greedyActive.Add(1)
	if f.multiUser.Load() || f.cleanerBusy.Load() != 0 {
		// Same drain protocol as multi-user demotion: the cleaner sets
		// cleanerBusy then waits for greedyActive to reach zero, so this
		// re-check after publishing our greedy claim closes the race.
		f.greedyActive.Add(-1)
		return false
	}
	return true
}

// ancestorsOf returns the deduplicated ancestors of all segment nodes,
// ordered top-down (larger spans first) then by offset.
func ancestorsOf(segs []segment) []*node {
	seen := make(map[*node]bool)
	var out []*node
	for _, s := range segs {
		for a := s.n.parent; a != nil; a = a.parent {
			if seen[a] {
				break // higher ancestors already collected
			}
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].span != out[j].span {
			return out[i].span > out[j].span
		}
		return out[i].offset() < out[j].offset()
	})
	return out
}

// acquireIntent takes an intention lock on an ancestor. Under lazy cleaning
// the lock is sticky: it stays held across operations (released at file
// close), so repeat accesses to the same path skip the acquisition entirely.
func (f *file) acquireIntent(ctx *sim.Ctx, a *node, mode lockMode, ol *opLocks) {
	if !f.fs.opts.LazyIntentionCleaning {
		a.lock.Lock(ctx, mode)
		ol.acquired = append(ol.acquired, lockedNode{a, mode})
		return
	}
	sh := f.intentShard(ctx.ID)
	sh.mu.Lock()
	m := sh.m[ctx.ID]
	if m == nil {
		m = make(map[*node]*workerIntent)
		sh.m[ctx.ID] = m
	}
	wi := m[a]
	if wi == nil {
		wi = &workerIntent{}
		m[a] = wi
	}
	have := (mode == lockIR && wi.ir) || (mode == lockIW && wi.iw)
	if !have {
		// Mark intent before unlocking the map so a concurrent release
		// (close) sees it; acquisition itself can block, so drop the map
		// lock first.
		if mode == lockIR {
			wi.ir = true
		} else {
			wi.iw = true
		}
	}
	sh.mu.Unlock()
	if !have {
		a.lock.Lock(ctx, mode)
	}
}

// dropStickyIntent releases this worker's sticky intention on n (needed
// before W/R-locking n itself, or the worker would self-conflict).
func (f *file) dropStickyIntent(ctx *sim.Ctx, n *node) {
	if !f.fs.opts.LazyIntentionCleaning {
		return
	}
	sh := f.intentShard(ctx.ID)
	sh.mu.Lock()
	m := sh.m[ctx.ID]
	var wi *workerIntent
	if m != nil {
		wi = m[n]
	}
	if wi != nil {
		delete(m, n)
	}
	sh.mu.Unlock()
	if wi != nil {
		f.fs.stats.MGLIntentDrops.Add(1)
		if wi.ir {
			n.lock.Unlock(ctx, lockIR)
		}
		if wi.iw {
			n.lock.Unlock(ctx, lockIW)
		}
	}
}

// lockCoarse acquires R/W on n. Under lazy cleaning, a conflict caused only
// by (sticky) intention locks makes it descend: it takes an op-scoped
// intention on n, materializes all children, and locks them instead —
// recursion bottoms out at real R/W locks or leaves.
func (f *file) lockCoarse(ctx *sim.Ctx, n *node, mode lockMode, ol *opLocks) {
	f.dropStickyIntent(ctx, n)
	if !f.fs.opts.LazyIntentionCleaning {
		n.lock.Lock(ctx, mode)
		ol.acquired = append(ol.acquired, lockedNode{n, mode})
		return
	}
	if n.lock.LockLazy(ctx, mode) {
		ol.acquired = append(ol.acquired, lockedNode{n, mode})
		return
	}
	if n.leaf {
		// Leaves never carry intentions; LockLazy cannot report descent.
		panic("core: intention conflict on a leaf")
	}
	f.fs.stats.Descends.Add(ctx.ID, 1)
	intent := lockIR
	if mode == lockW {
		intent = lockIW
	}
	n.lock.Lock(ctx, intent) // op-scoped marker so coarser lockers conflict
	ol.acquired = append(ol.acquired, lockedNode{n, intent})
	for i := int64(0); i < int64(f.fs.opts.Degree); i++ {
		c := f.ensureChild(ctx, n, i)
		f.lockCoarse(ctx, c, mode, ol)
	}
}

// release drops everything in reverse acquisition order.
func (f *file) release(ctx *sim.Ctx, ol *opLocks) {
	if ol.file {
		if ol.write {
			f.flock.Unlock(ctx)
		} else {
			f.flock.RUnlock(ctx)
		}
		return
	}
	for i := len(ol.acquired) - 1; i >= 0; i-- {
		ln := ol.acquired[i]
		ln.n.lock.Unlock(ctx, ln.mode)
	}
	if ol.greedy {
		f.greedyActive.Add(-1)
	}
}
