package core

import "mgsp/internal/obs"

// Stats exposes MGSP-internal counters so tests and tools can verify that
// the paper's optimizations actually engage (the Figure 13 story is only
// credible if, say, greedy locking demonstrably fires on single-user files
// and the minimum search tree demonstrably absorbs traversals). The fields
// are obs.Counter — same Add/Load/Store surface as atomic.Int64 — so the
// struct registers wholesale into the file system's obs.Registry at mount
// time while every existing accessor keeps working unchanged.
type Stats struct {
	// Writes and Reads count user operations. These and the byte tallies
	// below are obs.ShardedCounter: they are bumped on every single op by
	// every worker, and at 16-64 workers a shared counter cell becomes a
	// coherence hotspot of its own (the probes must never be the
	// contention they are supposed to measure). Sharded adds take the
	// worker id; Load sums the cells.
	Writes obs.ShardedCounter
	Reads  obs.ShardedCounter
	// UserWriteBytes / UserReadBytes count user payload bytes moved, the
	// logical side of the write-amplification ratio (media bytes over user
	// bytes) exported as wa.ratio.
	UserWriteBytes obs.ShardedCounter
	UserReadBytes  obs.ShardedCounter
	// ToggleToLog counts shadow toggles that placed new data in a node's
	// private log (redo role); ToggleToFallback counts toggles that wrote
	// through to the fallback (undo role). Their sum is the data-write count
	// of the shadow log — equal user writes at matching granularity.
	ToggleToLog      obs.Counter
	ToggleToFallback obs.Counter
	// MinSearchHits / MinSearchMisses count cached-subtree lookups.
	MinSearchHits   obs.Counter
	MinSearchMisses obs.Counter
	// GreedyOps counts operations that used the single-lock fast path;
	// Descends counts coarse acquisitions that descended past sticky
	// intentions (lazy cleaning at work). Both fire once per op — sharded.
	GreedyOps obs.ShardedCounter
	Descends  obs.ShardedCounter
	// MGLTryFails counts failed MGL try-acquisitions: racing lock attempts
	// that genuinely lost (cleaner try-locks, contended hint probes).
	// GreedyDemotions counts operations that wanted the greedy single-lock
	// fast path but ran demoted (multi-user file, open handles, busy
	// cleaner) — a capacity condition, not a lock-acquisition failure.
	// Earlier revisions folded demotions into MGLTryFails, which made the
	// counter read as a try-lock storm (~1 fail per op at 2+ workers) when
	// no try-lock was ever attempted. MGLIntentDrops counts sticky
	// intentions cleaned from ancestor nodes.
	MGLTryFails     obs.Counter
	GreedyDemotions obs.ShardedCounter
	MGLIntentDrops  obs.Counter
	// OptReads counts reads served by the optimistic lock-free path
	// (per-node version validation after the copy); OptReadFallbacks counts
	// optimistic attempts that bailed to the locked path (writer active,
	// version moved, or a precondition failed mid-walk).
	OptReads         obs.ShardedCounter
	OptReadFallbacks obs.ShardedCounter
	// MetaEntries counts metadata-log entries committed (including chain
	// extensions). MetaCASRetries counts claim-slot CAS attempts that lost
	// to a concurrent claimer and had to probe on. MetaCursorWrites counts
	// per-worker area cursor persists (64B + fence each; steady state is
	// zero once every area's cursor covers its rotation).
	MetaEntries      obs.ShardedCounter
	MetaCASRetries   obs.Counter
	MetaCursorWrites obs.Counter
	// CleanerPasses, BlocksReclaimed and CheckpointsTaken count background
	// cleaner activity: completed passes, 4 KiB log blocks returned to the
	// allocator, and checkpoint records persisted. All zero while the
	// cleaner is disabled.
	CleanerPasses    obs.Counter
	BlocksReclaimed  obs.Counter
	CheckpointsTaken obs.Counter
	// EntriesReplayed / EntriesSkipped count metadata-log entries applied vs
	// skipped (stamped before the checkpoint epoch) during Mount recovery.
	// SlotsBounded counts log slots recovery did NOT have to scan because a
	// valid area cursor bounded the area (the per-worker home-slot payoff).
	EntriesReplayed obs.Counter
	EntriesSkipped  obs.Counter
	SlotsBounded    obs.Counter
	// SnapshotsTaken / SnapshotsDropped count snapshot lifecycle events.
	SnapshotsTaken   obs.Counter
	SnapshotsDropped obs.Counter
	// SnapshotPins counts copy-on-write pins created (frozen node views);
	// SnapshotCoWRewrites counts writes that relocated a node's log to a
	// fresh block because the old one was frozen or pin-shared. Both stay
	// zero while no snapshot is live — the zero-copy fast path is untouched.
	SnapshotPins        obs.Counter
	SnapshotCoWRewrites obs.Counter
	// SnapshotReads counts reads served through snapshot handles.
	SnapshotReads obs.Counter
	// BufferedWrites counts write-back WriteAt calls acknowledged from a
	// dirty cache frame without touching the media (drained later by the
	// flusher). Zero unless Options.WriteBack is enabled.
	BufferedWrites obs.Counter
}

// register publishes every counter into r under the "core." prefix.
func (s *Stats) register(r *obs.Registry) {
	for _, c := range []struct {
		name string
		c    *obs.Counter
	}{
		{"core.toggle_to_log", &s.ToggleToLog},
		{"core.toggle_to_fallback", &s.ToggleToFallback},
		{"core.min_search_hits", &s.MinSearchHits},
		{"core.min_search_misses", &s.MinSearchMisses},
		{"core.mgl_try_fails", &s.MGLTryFails},
		{"core.mgl_intent_drops", &s.MGLIntentDrops},
		{"core.meta_cas_retries", &s.MetaCASRetries},
		{"core.meta_cursor_writes", &s.MetaCursorWrites},
		{"core.cleaner_passes", &s.CleanerPasses},
		{"core.blocks_reclaimed", &s.BlocksReclaimed},
		{"core.checkpoints_taken", &s.CheckpointsTaken},
		{"core.entries_replayed", &s.EntriesReplayed},
		{"core.entries_skipped", &s.EntriesSkipped},
		{"core.recovery_slots_bounded", &s.SlotsBounded},
		{"core.snapshots_taken", &s.SnapshotsTaken},
		{"core.snapshots_dropped", &s.SnapshotsDropped},
		{"core.snapshot_pins", &s.SnapshotPins},
		{"core.snapshot_cow_rewrites", &s.SnapshotCoWRewrites},
		{"core.snapshot_reads", &s.SnapshotReads},
		{"core.buffered_writes", &s.BufferedWrites},
	} {
		r.RegisterCounter(c.name, c.c)
	}
	for _, c := range []struct {
		name string
		c    *obs.ShardedCounter
	}{
		{"core.writes", &s.Writes},
		{"core.reads", &s.Reads},
		{"core.user_write_bytes", &s.UserWriteBytes},
		{"core.user_read_bytes", &s.UserReadBytes},
		{"core.greedy_ops", &s.GreedyOps},
		{"core.greedy_demotions", &s.GreedyDemotions},
		{"core.descends", &s.Descends},
		{"core.opt_reads", &s.OptReads},
		{"core.opt_read_fallbacks", &s.OptReadFallbacks},
		{"core.meta_entries", &s.MetaEntries},
	} {
		r.RegisterSharded(c.name, c.c)
	}
}

// Stats returns the live counters.
func (fs *FS) Stats() *Stats { return &fs.stats }

// Obs returns the file system's metric registry (one per FS, populated at
// mount with core, nvm, and derived metrics plus the latency histograms).
func (fs *FS) Obs() *obs.Registry { return fs.obsReg }

// TraceRing returns the file system's flight recorder, nil when tracing was
// not enabled.
func (fs *FS) TraceRing() *obs.TraceRing { return fs.trace }
