package core

import "mgsp/internal/obs"

// Stats exposes MGSP-internal counters so tests and tools can verify that
// the paper's optimizations actually engage (the Figure 13 story is only
// credible if, say, greedy locking demonstrably fires on single-user files
// and the minimum search tree demonstrably absorbs traversals). The fields
// are obs.Counter — same Add/Load/Store surface as atomic.Int64 — so the
// struct registers wholesale into the file system's obs.Registry at mount
// time while every existing accessor keeps working unchanged.
type Stats struct {
	// Writes and Reads count user operations.
	Writes obs.Counter
	Reads  obs.Counter
	// UserWriteBytes / UserReadBytes count user payload bytes moved, the
	// logical side of the write-amplification ratio (media bytes over user
	// bytes) exported as wa.ratio.
	UserWriteBytes obs.Counter
	UserReadBytes  obs.Counter
	// ToggleToLog counts shadow toggles that placed new data in a node's
	// private log (redo role); ToggleToFallback counts toggles that wrote
	// through to the fallback (undo role). Their sum is the data-write count
	// of the shadow log — equal user writes at matching granularity.
	ToggleToLog      obs.Counter
	ToggleToFallback obs.Counter
	// MinSearchHits / MinSearchMisses count cached-subtree lookups.
	MinSearchHits   obs.Counter
	MinSearchMisses obs.Counter
	// GreedyOps counts operations that used the single-lock fast path;
	// Descends counts coarse acquisitions that descended past sticky
	// intentions (lazy cleaning at work).
	GreedyOps obs.Counter
	Descends  obs.Counter
	// MGLTryFails counts failed try-acquisitions (greedy fast path misses
	// and cleaner try-locks that lost the race); MGLIntentDrops counts
	// sticky intentions cleaned from ancestor nodes.
	MGLTryFails    obs.Counter
	MGLIntentDrops obs.Counter
	// MetaEntries counts metadata-log entries committed (including chain
	// extensions). MetaCASRetries counts claim-slot CAS attempts that lost
	// to a concurrent claimer and had to probe on.
	MetaEntries    obs.Counter
	MetaCASRetries obs.Counter
	// CleanerPasses, BlocksReclaimed and CheckpointsTaken count background
	// cleaner activity: completed passes, 4 KiB log blocks returned to the
	// allocator, and checkpoint records persisted. All zero while the
	// cleaner is disabled.
	CleanerPasses    obs.Counter
	BlocksReclaimed  obs.Counter
	CheckpointsTaken obs.Counter
	// EntriesReplayed / EntriesSkipped count metadata-log entries applied vs
	// skipped (stamped before the checkpoint epoch) during Mount recovery.
	EntriesReplayed obs.Counter
	EntriesSkipped  obs.Counter
	// SnapshotsTaken / SnapshotsDropped count snapshot lifecycle events.
	SnapshotsTaken   obs.Counter
	SnapshotsDropped obs.Counter
	// SnapshotPins counts copy-on-write pins created (frozen node views);
	// SnapshotCoWRewrites counts writes that relocated a node's log to a
	// fresh block because the old one was frozen or pin-shared. Both stay
	// zero while no snapshot is live — the zero-copy fast path is untouched.
	SnapshotPins        obs.Counter
	SnapshotCoWRewrites obs.Counter
	// SnapshotReads counts reads served through snapshot handles.
	SnapshotReads obs.Counter
	// BufferedWrites counts write-back WriteAt calls acknowledged from a
	// dirty cache frame without touching the media (drained later by the
	// flusher). Zero unless Options.WriteBack is enabled.
	BufferedWrites obs.Counter
}

// register publishes every counter into r under the "core." prefix.
func (s *Stats) register(r *obs.Registry) {
	for _, c := range []struct {
		name string
		c    *obs.Counter
	}{
		{"core.writes", &s.Writes},
		{"core.reads", &s.Reads},
		{"core.user_write_bytes", &s.UserWriteBytes},
		{"core.user_read_bytes", &s.UserReadBytes},
		{"core.toggle_to_log", &s.ToggleToLog},
		{"core.toggle_to_fallback", &s.ToggleToFallback},
		{"core.min_search_hits", &s.MinSearchHits},
		{"core.min_search_misses", &s.MinSearchMisses},
		{"core.greedy_ops", &s.GreedyOps},
		{"core.descends", &s.Descends},
		{"core.mgl_try_fails", &s.MGLTryFails},
		{"core.mgl_intent_drops", &s.MGLIntentDrops},
		{"core.meta_entries", &s.MetaEntries},
		{"core.meta_cas_retries", &s.MetaCASRetries},
		{"core.cleaner_passes", &s.CleanerPasses},
		{"core.blocks_reclaimed", &s.BlocksReclaimed},
		{"core.checkpoints_taken", &s.CheckpointsTaken},
		{"core.entries_replayed", &s.EntriesReplayed},
		{"core.entries_skipped", &s.EntriesSkipped},
		{"core.snapshots_taken", &s.SnapshotsTaken},
		{"core.snapshots_dropped", &s.SnapshotsDropped},
		{"core.snapshot_pins", &s.SnapshotPins},
		{"core.snapshot_cow_rewrites", &s.SnapshotCoWRewrites},
		{"core.snapshot_reads", &s.SnapshotReads},
		{"core.buffered_writes", &s.BufferedWrites},
	} {
		r.RegisterCounter(c.name, c.c)
	}
}

// Stats returns the live counters.
func (fs *FS) Stats() *Stats { return &fs.stats }

// Obs returns the file system's metric registry (one per FS, populated at
// mount with core, nvm, and derived metrics plus the latency histograms).
func (fs *FS) Obs() *obs.Registry { return fs.obsReg }

// TraceRing returns the file system's flight recorder, nil when tracing was
// not enabled.
func (fs *FS) TraceRing() *obs.TraceRing { return fs.trace }
