package core

import "sync/atomic"

// Stats exposes MGSP-internal counters so tests and tools can verify that
// the paper's optimizations actually engage (the Figure 13 story is only
// credible if, say, greedy locking demonstrably fires on single-user files
// and the minimum search tree demonstrably absorbs traversals).
type Stats struct {
	// Writes and Reads count user operations.
	Writes atomic.Int64
	Reads  atomic.Int64
	// ToggleToLog counts shadow toggles that placed new data in a node's
	// private log (redo role); ToggleToFallback counts toggles that wrote
	// through to the fallback (undo role). Their sum is the data-write count
	// of the shadow log — equal user writes at matching granularity.
	ToggleToLog      atomic.Int64
	ToggleToFallback atomic.Int64
	// MinSearchHits / MinSearchMisses count cached-subtree lookups.
	MinSearchHits   atomic.Int64
	MinSearchMisses atomic.Int64
	// GreedyOps counts operations that used the single-lock fast path;
	// Descends counts coarse acquisitions that descended past sticky
	// intentions (lazy cleaning at work).
	GreedyOps atomic.Int64
	Descends  atomic.Int64
	// MetaEntries counts metadata-log entries committed (including chain
	// extensions).
	MetaEntries atomic.Int64
	// CleanerPasses, BlocksReclaimed and CheckpointsTaken count background
	// cleaner activity: completed passes, 4 KiB log blocks returned to the
	// allocator, and checkpoint records persisted. All zero while the
	// cleaner is disabled.
	CleanerPasses    atomic.Int64
	BlocksReclaimed  atomic.Int64
	CheckpointsTaken atomic.Int64
	// EntriesReplayed / EntriesSkipped count metadata-log entries applied vs
	// skipped (stamped before the checkpoint epoch) during Mount recovery.
	EntriesReplayed atomic.Int64
	EntriesSkipped  atomic.Int64
	// SnapshotsTaken / SnapshotsDropped count snapshot lifecycle events.
	SnapshotsTaken   atomic.Int64
	SnapshotsDropped atomic.Int64
	// SnapshotPins counts copy-on-write pins created (frozen node views);
	// SnapshotCoWRewrites counts writes that relocated a node's log to a
	// fresh block because the old one was frozen or pin-shared. Both stay
	// zero while no snapshot is live — the zero-copy fast path is untouched.
	SnapshotPins        atomic.Int64
	SnapshotCoWRewrites atomic.Int64
	// SnapshotReads counts reads served through snapshot handles.
	SnapshotReads atomic.Int64
}

// Stats returns the live counters.
func (fs *FS) Stats() *Stats { return &fs.stats }
