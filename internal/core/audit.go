package core

import (
	"sort"

	"mgsp/internal/sim"
)

// AuditReport is the result of AuditBlocks: a full accounting of the data
// region. Orphans are allocated blocks no file extent, live shadow log, or
// snapshot pin reaches (leaked space); Unallocated are reachable blocks the
// allocator does not consider in use (double-accounting — should never
// happen and indicates metadata corruption).
type AuditReport struct {
	Allocated   int64 // blocks the allocator holds
	Reachable   int64 // distinct blocks reachable from metadata
	Orphans     []int64
	Unallocated []int64
}

// Clean reports whether every allocated block is accounted for.
func (r *AuditReport) Clean() bool {
	return len(r.Orphans) == 0 && len(r.Unallocated) == 0
}

// AuditBlocks cross-checks the allocator against everything that can
// legitimately own a data-region block: file extents, live tree node logs,
// and snapshot pin logs. Intended for quiescent file systems (fsck right
// after Mount); it takes no locks.
func (fs *FS) AuditBlocks() AuditReport {
	// Worker shard caches hold blocks that are allocated but referenced by
	// nothing; on the quiescent file systems this audit is specified for,
	// returning them first keeps them from reading as leaks.
	fs.prov.Alloc().Drain(sim.NewCtx(0, 0))
	bs := fs.prov.Alloc().BlockSize()
	reach := make(map[int64]bool)
	addRun := func(off, blocks int64) {
		for i := int64(0); i < blocks; i++ {
			reach[off+i*bs] = true
		}
	}
	for _, f := range fs.files {
		for _, e := range f.pf.PhysExtents() {
			addRun(e.Off, e.N)
		}
		if r := f.root.Load(); r != nil {
			auditWalk(r, addRun)
		}
		for n, ps := range f.pins {
			for _, p := range ps {
				if p.logOff != 0 && pinRefsLog(n.leaf, p.word) {
					addRun(p.logOff, n.span/LeafSpan)
				}
			}
		}
	}
	var rep AuditReport
	rep.Reachable = int64(len(reach))
	fs.prov.Alloc().Range(func(off int64, refs int) bool {
		rep.Allocated++
		if !reach[off] {
			rep.Orphans = append(rep.Orphans, off)
		}
		return true
	})
	for off := range reach {
		if !fs.prov.Alloc().Allocated(off) {
			rep.Unallocated = append(rep.Unallocated, off)
		}
	}
	sort.Slice(rep.Unallocated, func(i, j int) bool { return rep.Unallocated[i] < rep.Unallocated[j] })
	return rep
}

// auditWalk adds every live shadow log in the subtree. A log is reachable
// the moment its record points at it (even with all valid bits clear — the
// block is legitimately retained for reuse).
func auditWalk(n *node, addRun func(off, blocks int64)) {
	if n.logOff != 0 {
		addRun(n.logOff, n.span/LeafSpan)
	}
	for i := range n.children {
		if c := n.children[i].Load(); c != nil {
			auditWalk(c, addRun)
		}
	}
}
