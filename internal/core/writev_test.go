package core

import (
	"bytes"
	"math/rand"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func TestWriteMultiBasic(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	h, _ := fs.Create(ctx, "f")
	hh := h.(*handle)
	base := bytes.Repeat([]byte{0x10}, 64*1024)
	h.WriteAt(ctx, base, 0)

	err := hh.WriteMulti(ctx, []Update{
		{Off: 100, Data: bytes.Repeat([]byte{0xA1}, 300)},
		{Off: 9000, Data: bytes.Repeat([]byte{0xA2}, 5000)},
		{Off: 40000, Data: bytes.Repeat([]byte{0xA3}, 4096)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, base...)
	copy(want[100:], bytes.Repeat([]byte{0xA1}, 300))
	copy(want[9000:], bytes.Repeat([]byte{0xA2}, 5000))
	copy(want[40000:], bytes.Repeat([]byte{0xA3}, 4096))
	got := make([]byte, len(base))
	h.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("multi-write content mismatch")
	}
}

func TestWriteMultiSameLeaf(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	h, _ := fs.Create(ctx, "f")
	hh := h.(*handle)
	h.WriteAt(ctx, bytes.Repeat([]byte{0x55}, 8192), 0)

	// Three updates inside one 4K leaf, two sharing a 512B unit.
	err := hh.WriteMulti(ctx, []Update{
		{Off: 10, Data: bytes.Repeat([]byte{1}, 50)},
		{Off: 100, Data: bytes.Repeat([]byte{2}, 50)}, // same unit as the first
		{Off: 3000, Data: bytes.Repeat([]byte{3}, 500)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x55}, 8192)
	copy(want[10:], bytes.Repeat([]byte{1}, 50))
	copy(want[100:], bytes.Repeat([]byte{2}, 50))
	copy(want[3000:], bytes.Repeat([]byte{3}, 500))
	got := make([]byte, 8192)
	h.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, want) {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("byte %d: got %#x want %#x", i, got[i], want[i])
			}
		}
	}
}

func TestWriteMultiOverlapRejected(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	h, _ := fs.Create(ctx, "f")
	hh := h.(*handle)
	err := hh.WriteMulti(ctx, []Update{
		{Off: 0, Data: make([]byte, 100)},
		{Off: 50, Data: make([]byte, 100)},
	})
	if err == nil {
		t.Fatal("overlapping updates accepted")
	}
}

// TestWriteMultiCrashAtomicity: all ranges commit together or not at all —
// the transaction-level atomicity the paper leaves as future work.
func TestWriteMultiCrashAtomicity(t *testing.T) {
	opts := smallTreeOpts()
	for fail := int64(1); ; fail += 2 {
		dev := nvm.New(64<<20, sim.ZeroCosts())
		fs := MustNew(dev, opts)
		ctx := sim.NewCtx(0, fail)
		h, _ := fs.Create(ctx, "f")
		hh := h.(*handle)
		h.WriteAt(ctx, bytes.Repeat([]byte{0xEE}, 128*1024), 0)

		updates := []Update{
			{Off: 500, Data: bytes.Repeat([]byte{1}, 2000)},
			{Off: 30000, Data: bytes.Repeat([]byte{2}, 8192)},
			{Off: 100000, Data: bytes.Repeat([]byte{3}, 700)},
		}
		dev.ArmCrash(fail, fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrCrashed {
						panic(r)
					}
					crashed = true
				}
			}()
			hh.WriteMulti(ctx, updates)
		}()
		if !crashed {
			if fail == 1 {
				t.Fatal("sweep never crashed")
			}
			return
		}
		dev.Recover()
		fs2, err := Mount(ctx, dev, opts)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		f2, _ := fs2.Open(ctx, "f")
		got := make([]byte, 128*1024)
		f2.ReadAt(ctx, got, 0)

		before := bytes.Repeat([]byte{0xEE}, 128*1024)
		after := append([]byte{}, before...)
		for _, u := range updates {
			copy(after[u.Off:], u.Data)
		}
		if !bytes.Equal(got, before) && !bytes.Equal(got, after) {
			t.Fatalf("fail=%d: multi-write was not atomic", fail)
		}
	}
}

// TestWriteMultiRandomizedDifferential: random disjoint update batches
// match a reference model.
func TestWriteMultiRandomizedDifferential(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	h, _ := fs.Create(ctx, "f")
	hh := h.(*handle)
	const size = 256 * 1024
	ref := make([]byte, size)
	h.WriteAt(ctx, ref, 0)
	rng := rand.New(rand.NewSource(99))

	for round := 0; round < 40; round++ {
		// Build 1-5 disjoint updates by slicing the file into lanes.
		k := rng.Intn(5) + 1
		lane := int64(size / 5)
		var ups []Update
		for i := 0; i < k; i++ {
			off := int64(i)*lane + rng.Int63n(lane/2)
			n := rng.Intn(int(lane/2)) + 1
			data := bytes.Repeat([]byte{byte(round*7 + i + 1)}, n)
			ups = append(ups, Update{Off: off, Data: data})
			copy(ref[off:], data)
		}
		if err := hh.WriteMulti(ctx, ups); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	got := make([]byte, size)
	h.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, ref) {
		t.Fatal("differential mismatch after WriteMulti rounds")
	}
}
