package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestMetaLogClaimCollision: workers whose ids hash to the same entry must
// linear-probe to distinct entries, concurrently.
func TestMetaLogClaimCollision(t *testing.T) {
	dev := nvm.New(1<<20, sim.ZeroCosts())
	ml := newMetaLog(dev, 0, 32)
	const workers = 16
	results := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(0, int64(id)) // same worker id 0: worst case
			results <- ml.claim(ctx, 0)
		}(w)
	}
	wg.Wait()
	close(results)
	seen := make(map[int]bool)
	for i := range results {
		if seen[i] {
			t.Fatalf("entry %d claimed twice under collision", i)
		}
		seen[i] = true
	}
}

// TestFixedGranularityCrashSweep: the shadow-log-only ablation must still be
// operation-atomic.
func TestFixedGranularityCrashSweep(t *testing.T) {
	opts := DefaultOptions()
	opts.MultiGranularity = false
	opts.Locking = LockFile
	opts.GreedyLocking = false
	opts.LazyIntentionCleaning = false
	opts.MinSearchTree = false

	oldData := bytes.Repeat([]byte{0x77}, 32*1024)
	newData := bytes.Repeat([]byte{0x88}, 5000) // unaligned, multi-block

	for fail := int64(0); ; fail++ {
		fs, crashed := crashRun(t, opts, fail,
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Create(ctx, "f")
				f.WriteAt(ctx, oldData, 0)
			},
			func(ctx *sim.Ctx, fs *FS) {
				f, _ := fs.Open(ctx, "f")
				f.WriteAt(ctx, newData, 3000)
			})
		ctx := sim.NewCtx(9, 9)
		f, _ := fs.Open(ctx, "f")
		got := make([]byte, 32*1024)
		f.ReadAt(ctx, got, 0)
		want := append([]byte{}, oldData...)
		if bytes.Equal(got[3000:8000], newData) {
			copy(want[3000:], newData)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("fail=%d: fixed-granularity write torn", fail)
		}
		if !crashed {
			return
		}
	}
}

// TestSubBits16FineWrites: the finest configuration (256 B units) gives the
// lowest write amplification for 256 B writes.
func TestSubBits16FineWrites(t *testing.T) {
	run := func(subBits int) float64 {
		opts := DefaultOptions()
		opts.SubBits = subBits
		dev := nvm.New(64<<20, sim.ZeroCosts())
		fs := MustNew(dev, opts)
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		f.WriteAt(ctx, make([]byte, 64*1024), 0)
		dev.ResetStats()
		unit := int64(4096 / subBits)
		const ops = 64
		for i := 0; i < ops; i++ {
			f.WriteAt(ctx, make([]byte, 256), (int64(i)*5%128)*unit)
		}
		return float64(dev.Stats().MediaWriteBytes.Load()) / float64(ops*256)
	}
	wa16 := run(16) // 256B units: exact fit
	wa2 := run(2)   // 2K units: 8x padding
	if wa16 > 1.5 {
		t.Fatalf("SubBits=16 WA for 256B writes = %.2f, want ~1", wa16)
	}
	if wa2 < 4 {
		t.Fatalf("SubBits=2 WA for 256B writes = %.2f, want ~8 (padding to 2K units)", wa2)
	}
}

// TestConcurrentReadersScaleUnderMGL: pure readers on disjoint ranges do not
// serialize in virtual time (IR/R compatibility).
func TestConcurrentReadersScale(t *testing.T) {
	dev := nvm.New(64<<20, sim.DefaultCosts())
	fs := MustNew(dev, DefaultOptions())
	setup := sim.NewCtx(99, 1)
	f, _ := fs.Create(setup, "f")
	f.WriteAt(setup, make([]byte, 4<<20), 0)

	run := func(workers int) int64 {
		ctxs := make([]*sim.Ctx, workers)
		var wg sync.WaitGroup
		for i := range ctxs {
			ctxs[i] = sim.NewCtx(i, int64(i))
			ctxs[i].AdvanceTo(setup.Now())
			wg.Add(1)
			go func(c *sim.Ctx, id int) {
				defer wg.Done()
				h, _ := fs.Open(c, "f")
				defer h.Close(c)
				buf := make([]byte, 4096)
				base := int64(id) * (1 << 20)
				for j := 0; j < 100; j++ {
					h.ReadAt(c, buf, base+int64(j%200)*4096)
				}
			}(ctxs[i], i)
		}
		wg.Wait()
		return sim.MaxTime(ctxs) - setup.Now()
	}
	t1 := run(1)
	t4 := run(4)
	if t4 > t1*2 {
		t.Fatalf("4 readers took %dns vs 1 reader %dns: readers serialized", t4, t1)
	}
}

// TestEmptyFileReads: reads on empty/fresh files are well-behaved.
func TestEmptyFileReads(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	f, _ := fs.Create(ctx, "f")
	buf := make([]byte, 100)
	if n, err := f.ReadAt(ctx, buf, 0); n != 0 || err != nil {
		t.Fatalf("empty read = %d, %v", n, err)
	}
	if n, err := f.ReadAt(ctx, buf, 1<<30); n != 0 || err != nil {
		t.Fatalf("far read = %d, %v", n, err)
	}
	if _, err := f.WriteAt(ctx, nil, 0); err != nil {
		t.Fatalf("empty write: %v", err)
	}
}

// TestManyFiles: the node directory and metadata log are shared across
// files without interference.
func TestManyFiles(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	const files = 30
	handles := make([]interface {
		WriteAt(*sim.Ctx, []byte, int64) (int, error)
		ReadAt(*sim.Ctx, []byte, int64) (int, error)
	}, files)
	for i := range handles {
		h, err := fs.Create(ctx, string(rune('a'+i%26))+string(rune('0'+i/26)))
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		h.WriteAt(ctx, bytes.Repeat([]byte{byte(i + 1)}, 20000), 0)
	}
	for i, h := range handles {
		buf := make([]byte, 20000)
		h.ReadAt(ctx, buf, 0)
		for j, b := range buf {
			if b != byte(i+1) {
				t.Fatalf("file %d byte %d = %d (cross-file corruption)", i, j, b)
			}
		}
	}
}

// TestMetaLogWaitsWhenFull: with every op slot claimed, a new claim waits
// until one is retired (the paper's §III-C1 overflow behaviour). A
// 32-entry log spans two home areas whose slot 0 is each area's cursor,
// leaving 2*metaAreaOpSlots claimable op slots.
func TestMetaLogWaitsWhenFull(t *testing.T) {
	dev := nvm.New(1<<20, sim.ZeroCosts())
	ml := newMetaLog(dev, 0, 32)
	ctx := sim.NewCtx(0, 1)
	var held []int
	for i := 0; i < 2*metaAreaOpSlots; i++ {
		held = append(held, ml.claim(ctx, i))
	}
	got := make(chan int)
	go func() {
		c := sim.NewCtx(99, 2)
		got <- ml.claim(c, 99)
	}()
	select {
	case i := <-got:
		t.Fatalf("claim on a full log returned %d immediately", i)
	case <-time.After(50 * time.Millisecond):
	}
	ml.retire(ctx, held[7])
	select {
	case i := <-got:
		if i != held[7] {
			t.Fatalf("waiter got entry %d, want the retired %d", i, held[7])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("claim never observed the retirement")
	}
	for _, i := range held {
		if i != held[7] {
			ml.retire(ctx, i)
		}
	}
}
