package core

import (
	"bytes"
	"testing"

	"mgsp/internal/fstest"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

func newTestFS(opts Options) (*FS, *sim.Ctx) {
	return MustNew(nvm.New(128<<20, sim.ZeroCosts()), opts), sim.NewCtx(0, 1)
}

func smallTreeOpts() Options {
	o := DefaultOptions()
	o.Degree = 4 // deeper trees exercise more machinery on small files
	return o
}

func TestBatteryDefault(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return MustNew(nvm.New(128<<20, sim.ZeroCosts()), DefaultOptions())
	})
}

func TestBatteryDegree4(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return MustNew(nvm.New(128<<20, sim.ZeroCosts()), smallTreeOpts())
	})
}

func TestBatteryCacheWriteThrough(t *testing.T) {
	o := DefaultOptions()
	o.CacheFrames = 64
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return MustNew(nvm.New(128<<20, sim.ZeroCosts()), o)
	})
}

func TestBatteryCacheWriteBack(t *testing.T) {
	o := DefaultOptions()
	o.CacheFrames = 64
	o.WriteBack = true
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return MustNew(nvm.New(128<<20, sim.ZeroCosts()), o)
	})
}

func TestBatteryFixedGranularity(t *testing.T) {
	o := DefaultOptions()
	o.MultiGranularity = false
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return MustNew(nvm.New(128<<20, sim.ZeroCosts()), o)
	})
}

func TestBatteryFileLock(t *testing.T) {
	o := DefaultOptions()
	o.Locking = LockFile
	o.GreedyLocking = false
	o.LazyIntentionCleaning = false
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return MustNew(nvm.New(128<<20, sim.ZeroCosts()), o)
	})
}

func TestBatteryNoOptimizations(t *testing.T) {
	o := DefaultOptions()
	o.GreedyLocking = false
	o.LazyIntentionCleaning = false
	o.MinSearchTree = false
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return MustNew(nvm.New(128<<20, sim.ZeroCosts()), o)
	})
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Degree: 1, SubBits: 8, MultiGranularity: true},
		{Degree: 64, SubBits: 3},
		{Degree: 64, SubBits: 32},
		{Degree: 2000, SubBits: 8},
	}
	for i, o := range bad {
		if _, err := New(nvm.New(4<<20, sim.ZeroCosts()), o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

// TestShadowLogZeroCopy is the core claim of Figure 3: N repeated writes to
// the same block cost N block writes (plus metadata), not 2N.
func TestShadowLogZeroCopy(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 4096), 0)
	dev := fs.Device()
	dev.ResetStats()

	const ops = 100
	for i := 0; i < ops; i++ {
		f.WriteAt(ctx, make([]byte, 4096), 0)
	}
	media := dev.Stats().MediaWriteBytes.Load()
	wa := float64(media) / float64(ops*4096)
	if wa > 1.1 {
		t.Fatalf("repeated-overwrite WA = %.3f, want ~1 (shadow log must not double-write)", wa)
	}
	if wa < 1.0 {
		t.Fatalf("WA = %.3f < 1: impossible, accounting bug", wa)
	}
}

// TestShadowToggleAlternates: consecutive writes to one block alternate
// between the leaf log and the fallback, and reads always see the newest.
func TestShadowToggleAlternates(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	f, _ := fs.Create(ctx, "f")
	buf := make([]byte, 4096)
	for i := 0; i < 7; i++ {
		pat := bytes.Repeat([]byte{byte(i + 1)}, 4096)
		f.WriteAt(ctx, pat, 8192)
		f.ReadAt(ctx, buf, 8192)
		if !bytes.Equal(buf, pat) {
			t.Fatalf("iteration %d: read does not see newest data", i)
		}
	}
}

// TestFineGrainedWriteAmplification: sub-block writes log only the sub-unit
// (512 B with default SubBits=8), unlike fixed-granularity mode.
func TestFineGrainedWriteAmplification(t *testing.T) {
	run := func(opts Options) float64 {
		fs, ctx := newTestFS(opts)
		f, _ := fs.Create(ctx, "f")
		f.WriteAt(ctx, make([]byte, 64*1024), 0)
		dev := fs.Device()
		dev.ResetStats()
		const ops = 64
		for i := 0; i < ops; i++ {
			f.WriteAt(ctx, make([]byte, 512), int64(i)*1024)
		}
		return float64(dev.Stats().MediaWriteBytes.Load()) / float64(ops*512)
	}
	multi := run(DefaultOptions())
	fixed := func() Options { o := DefaultOptions(); o.MultiGranularity = false; return o }()
	fixedWA := run(fixed)
	if multi > 1.5 {
		t.Fatalf("multi-granularity 512B WA = %.2f, want near 1", multi)
	}
	if fixedWA < 6 {
		t.Fatalf("fixed-granularity 512B WA = %.2f, want ~8 (full 4K per 512B)", fixedWA)
	}
}

// TestCoarseGrainedSingleMetadataUpdate: a 256 KiB aligned write (one
// interior node at degree 64) commits with a single bitmap slot.
func TestCoarseGrainedSingleMetadataUpdate(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 1<<20), 0)
	dev := fs.Device()
	dev.ResetStats()
	f.WriteAt(ctx, make([]byte, 256*1024), 0)
	media := dev.Stats().MediaWriteBytes.Load()
	// 256K data + metadata entry (64B partial flush) + word + small extras.
	if media > 256*1024+4096 {
		t.Fatalf("256K write cost %d media bytes: coarse granularity not used", media)
	}
}

// TestEveryWriteDurableWithoutFsync: MGSP operations are synchronized.
func TestEveryWriteDurableWithoutFsync(t *testing.T) {
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, smallTreeOpts())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	data := bytes.Repeat([]byte{0x3C}, 10000)
	f.WriteAt(ctx, data, 777)

	dev.DropVolatile()
	fs2, err := Mount(ctx, dev, smallTreeOpts())
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	f2, err := fs2.Open(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 10777 {
		t.Fatalf("recovered size = %d, want 10777", f2.Size())
	}
	got := make([]byte, 10000)
	f2.ReadAt(ctx, got, 777)
	if !bytes.Equal(got, data) {
		t.Fatal("write lost across crash without fsync")
	}
}

// TestCloseWritesBackAndReleases: after close, data is in the file proper
// and all log space is reclaimed.
func TestCloseWritesBackAndReleases(t *testing.T) {
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, smallTreeOpts())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	data := bytes.Repeat([]byte{0x5B}, 50000)
	f.WriteAt(ctx, data, 0)
	f.WriteAt(ctx, bytes.Repeat([]byte{0x6C}, 1000), 100) // fine overwrite
	copy(data[100:], bytes.Repeat([]byte{0x6C}, 1000))
	used := fs.prov.Alloc().UsedBlocks()
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	after := fs.prov.Alloc().UsedBlocks()
	if after >= used {
		t.Fatalf("close reclaimed nothing: %d -> %d blocks", used, after)
	}
	// Reopen and verify content comes straight from the file.
	f2, err := fs.Open(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	f2.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("content wrong after close/reopen write-back")
	}
}

// TestMetadataLogClaims: concurrent workers each get distinct entries.
func TestMetadataLogClaims(t *testing.T) {
	fs, _ := newTestFS(DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	seen := make(map[int]bool)
	var idxs []int
	for w := 0; w < 64; w++ {
		i := fs.mlog.claim(ctx, w)
		if seen[i] {
			t.Fatalf("entry %d claimed twice", i)
		}
		seen[i] = true
		idxs = append(idxs, i)
	}
	for _, i := range idxs {
		fs.mlog.retire(ctx, i)
	}
	// All released: claiming again succeeds.
	i := fs.mlog.claim(ctx, 0)
	fs.mlog.retire(ctx, i)
}

// TestMetadataEntryRoundTrip exercises encode/decode incl. partial flush.
func TestMetadataEntryRoundTrip(t *testing.T) {
	dev := nvm.New(1<<20, sim.ZeroCosts())
	ml := newMetaLog(dev, 0, 32)
	ctx := sim.NewCtx(0, 1)

	slots := []bitmapSlot{{recIdx: 7, old: 0x3, new: 0xC}, {recIdx: 9, old: 0, new: 1}}
	ml.commit(ctx, 3, 5, 1234, 999, 55555, slots, 42, 0, 1, 0)
	e, ok := decodeEntry(dev.Inspect(ml.off(3), entrySize))
	if !ok {
		t.Fatal("committed entry does not decode")
	}
	if e.fileSlot != 5 || e.offset != 1234 || e.length != 999 || e.fileSize != 55555 ||
		e.group != 42 || e.chainLen != 1 || len(e.slots) != 2 {
		t.Fatalf("decoded entry mismatch: %+v", e)
	}
	if e.slots[0] != (bitmapSlot{7, 0x3, 0xC}) {
		t.Fatalf("slot mismatch: %+v", e.slots[0])
	}
	ml.retire(ctx, 3)
	if _, ok := decodeEntry(dev.Inspect(ml.off(3), entrySize)); ok {
		t.Fatal("retired entry still decodes as live")
	}
}

func TestMetadataEntryPartialFlushIs64Bytes(t *testing.T) {
	dev := nvm.New(1<<20, sim.ZeroCosts())
	ml := newMetaLog(dev, 0, 32)
	ctx := sim.NewCtx(0, 1)
	dev.ResetStats()
	ml.commit(ctx, 0, 1, 0, 100, 100, []bitmapSlot{{1, 0, 1}}, 1, 0, 1, 0)
	if w := dev.Stats().MediaWriteBytes.Load(); w != 64 {
		t.Fatalf("1-slot entry flushed %d bytes, want 64 (partial flush)", w)
	}
	dev.ResetStats()
	slots := make([]bitmapSlot, 5)
	for i := range slots {
		slots[i] = bitmapSlot{recIdx: int64(i), new: 1}
	}
	ml.commit(ctx, 1, 1, 0, 100, 100, slots, 2, 0, 1, 0)
	if w := dev.Stats().MediaWriteBytes.Load(); w != entrySize {
		t.Fatalf("5-slot entry flushed %d bytes, want %d", w, entrySize)
	}
}

// TestTornEntryRejected: a torn metadata entry fails its checksum.
func TestTornEntryRejected(t *testing.T) {
	dev := nvm.New(1<<20, sim.ZeroCosts())
	ml := newMetaLog(dev, 0, 32)
	ctx := sim.NewCtx(0, 1)
	ml.commit(ctx, 0, 1, 0, 100, 100, []bitmapSlot{{1, 0, 1}}, 1, 0, 1, 0)
	// Corrupt one byte inside the flushed area.
	dev.Write(ctx, []byte{0xFF}, ml.off(0)+20)
	dev.Flush(ctx, ml.off(0)+20, 1)
	if _, ok := decodeEntry(dev.Inspect(ml.off(0), entrySize)); ok {
		t.Fatal("corrupted entry passed its checksum")
	}
}

// TestLargeUnalignedWriteChainsEntries: >10 bitmap slots commit atomically
// via a chained entry group.
func TestLargeUnalignedWriteChains(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	f, _ := fs.Create(ctx, "f")
	// 128 KiB at a 1 KiB offset: 32+ leaf targets at degree 64.
	data := bytes.Repeat([]byte{0xD7}, 128*1024)
	if _, err := f.WriteAt(ctx, data, 1024); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	f.ReadAt(ctx, got, 1024)
	if !bytes.Equal(got, data) {
		t.Fatal("chained-commit write round trip failed")
	}
}

// TestMinSearchTreeCacheHit: sequential ops reuse the cached subtree.
func TestMinSearchTreeCache(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 1<<20), 0)
	ff := fs.files["f"]
	f.WriteAt(ctx, make([]byte, 4096), 4096)
	m := ff.minSearch.Load()
	if m == nil {
		t.Fatal("min search tree not cached")
	}
	if m.span >= ff.root.Load().span {
		t.Fatal("min search tree did not shrink below the root")
	}
	if !covers(m, 4096, 8192) {
		t.Fatal("cached subtree does not cover the last op")
	}
}

func TestConsistencyLevel(t *testing.T) {
	fs, _ := newTestFS(DefaultOptions())
	if fs.Consistency() != vfs.OpAtomic {
		t.Fatal("MGSP must advertise op-level atomicity")
	}
}

// TestSizeRestoredFromMetadataEntry: the entry's fileSize field recovers an
// extension even when the crash hits before the size store.
func TestSizeInMetadataEntry(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 100), 0)
	if f.Size() != 100 {
		t.Fatalf("size = %d", f.Size())
	}
}

// TestRemoveReclaimsEverything.
func TestRemoveReclaims(t *testing.T) {
	fs, ctx := newTestFS(smallTreeOpts())
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 1<<20), 0)
	f.WriteAt(ctx, make([]byte, 512), 5) // force fine-grained logs
	f.Close(ctx)
	if err := fs.Remove(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	fs.prov.Alloc().Drain(ctx) // flush shard caches: exact-count audit below
	if used := fs.prov.Alloc().UsedBlocks(); used != 0 {
		t.Fatalf("%d blocks leaked after remove", used)
	}
}
