package core

import (
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// waPhase runs `ops` aligned 4 KiB overwrites of the same block and returns
// the media/user byte ratio of just that phase, measured through the obs
// registry (the same wa.ratio derivation mgspbench reports, but as a diff so
// setup traffic is excluded).
func waPhase(t *testing.T, fs *FS, ctx *sim.Ctx, h interface {
	WriteAt(*sim.Ctx, []byte, int64) (int, error)
}, ops int) float64 {
	t.Helper()
	before := fs.Obs().Snapshot()
	buf := make([]byte, 4096)
	for i := 0; i < ops; i++ {
		buf[0] = byte(i)
		if _, err := h.WriteAt(ctx, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	d := fs.Obs().Snapshot().Diff(before)
	user := d.Values["core.user_write_bytes"]
	if user == 0 {
		t.Fatal("no user bytes recorded")
	}
	return d.Values["nvm.media_write_bytes"] / user
}

// TestWriteAmplificationOverwriteBound is the paper's Table II invariant as
// a property test: repeated aligned 4 KiB overwrites with no snapshot pinned
// ride the shadow-toggle fast path, so media bytes stay within 2x of user
// bytes (the true figure is ~1.02: 4096 data + one 64-byte log entry + the
// 8-byte word flip). Taking a snapshot forces copy-on-write — relocation
// writes, pin records, and wide log-swap entries — so the per-phase ratio
// must strictly rise.
func TestWriteAmplificationOverwriteBound(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	h, err := fs.Create(ctx, "wa")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)

	// Warm up: first write allocates the tree path, record, and log block.
	if _, err := h.WriteAt(ctx, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}

	const ops = 200
	plain := waPhase(t, fs, ctx, h, ops)
	if plain > 2.0 {
		t.Fatalf("steady-state overwrite WA = %.3f, want <= 2.0", plain)
	}

	if _, err := fs.Snapshot(ctx, "wa"); err != nil {
		t.Fatal(err)
	}
	cow := waPhase(t, fs, ctx, h, ops)
	if cow <= plain {
		t.Fatalf("post-snapshot WA = %.3f, want > plain %.3f (CoW must cost more)", cow, plain)
	}
	if fs.Stats().SnapshotCoWRewrites.Load() == 0 {
		t.Fatal("snapshot phase never took the CoW path")
	}

	// The registry's live wa.ratio agrees with a manual recomputation.
	s := fs.Obs().Snapshot()
	want := s.Values["nvm.media_write_bytes"] / s.Values["core.user_write_bytes"]
	if got := s.Values["wa.ratio"]; got != want {
		t.Fatalf("wa.ratio = %v, want %v", got, want)
	}
}

// TestWriteAmplificationMultiBlock extends the bound across a larger working
// set: sequential then random-ish aligned overwrites over 64 blocks.
func TestWriteAmplificationMultiBlock(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	h, err := fs.Create(ctx, "wa2")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	const blocks = 64
	buf := make([]byte, 4096)
	for b := 0; b < blocks; b++ {
		if _, err := h.WriteAt(ctx, buf, int64(b)*4096); err != nil {
			t.Fatal(err)
		}
	}
	before := fs.Obs().Snapshot()
	for i := 0; i < 4*blocks; i++ {
		buf[0] = byte(i)
		off := int64(i*37%blocks) * 4096
		if _, err := h.WriteAt(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	d := fs.Obs().Snapshot().Diff(before)
	ratio := d.Values["nvm.media_write_bytes"] / d.Values["core.user_write_bytes"]
	if ratio > 2.0 {
		t.Fatalf("multi-block overwrite WA = %.3f, want <= 2.0", ratio)
	}
}

// TestObsWiredThroughFS sanity-checks the probe plumbing end to end: one
// write/read/fsync must populate the op histograms, the trace ring, and the
// nvm counters registered under the FS registry.
func TestObsWiredThroughFS(t *testing.T) {
	fs, ctx := newTestFS(DefaultOptions())
	h, err := fs.Create(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	if _, err := h.WriteAt(ctx, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 5)
	if _, err := h.ReadAt(ctx, p, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Fsync(ctx); err != nil {
		t.Fatal(err)
	}
	s := fs.Obs().Snapshot()
	for _, name := range []string{"fs.write_ns", "fs.read_ns", "fs.fsync_ns"} {
		if s.Hists[name].Count == 0 {
			t.Errorf("histogram %q never observed", name)
		}
	}
	if s.Hists["mlog.probe_distance"].Count == 0 {
		t.Error("mlog.probe_distance never observed")
	}
	if s.Values["core.writes"] != 1 || s.Values["core.user_write_bytes"] != 5 {
		t.Errorf("core counters: writes=%v user_write_bytes=%v",
			s.Values["core.writes"], s.Values["core.user_write_bytes"])
	}
	if s.Values["nvm.media_write_bytes"] == 0 {
		t.Error("nvm counters not registered")
	}
	ops := map[string]bool{}
	for _, e := range fs.TraceRing().Events() {
		ops[e.Op] = true
	}
	for _, op := range []string{"write", "read", "fsync"} {
		if !ops[op] {
			t.Errorf("trace ring missing op %q (have %v)", op, ops)
		}
	}
}

// TestCleanerPolicyRegistered: enabling the cleaner must publish its
// scheduling state (adaptive interval) into the FS registry.
func TestCleanerPolicyRegistered(t *testing.T) {
	opts := DefaultOptions()
	opts.CleanerInterval = 1 << 20
	fs, _ := newTestFS(opts)
	s := fs.Obs().Snapshot()
	if got := s.Values["cleaner.interval_ns"]; got != float64(opts.CleanerInterval) {
		t.Fatalf("cleaner.interval_ns = %v, want %v", got, opts.CleanerInterval)
	}
	if _, ok := s.Values["cleaner.contended"]; !ok {
		t.Fatal("cleaner.contended not registered")
	}
}

// TestMountObservesRecovery: a crash + Mount must time the recovery and drop
// an OpRecovery trace event on the NEW fs.
func TestMountObservesRecovery(t *testing.T) {
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	h, err := fs.Create(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	dev.DropVolatile() // simulate power loss: only the durable image survives
	dev.Recover()
	fs2, err := Mount(sim.NewCtx(0, 2), dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Obs().Snapshot().Hists["recovery.mount_ns"].Count != 1 {
		t.Error("recovery.mount_ns not observed on Mount")
	}
	found := false
	for _, e := range fs2.TraceRing().Events() {
		if e.Op == "recovery" {
			found = true
		}
	}
	if !found {
		t.Error("no recovery event in the mounted fs's trace ring")
	}
}
