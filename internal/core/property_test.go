package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestDifferentialAcrossConfigurations runs a randomized op sequence against
// an in-memory reference for a matrix of tree shapes and feature toggles —
// the content must be identical regardless of configuration.
func TestDifferentialAcrossConfigurations(t *testing.T) {
	configs := []Options{
		DefaultOptions(),
		{Degree: 2, SubBits: 2, MultiGranularity: true, Locking: LockMGL, GreedyLocking: true, LazyIntentionCleaning: true, MinSearchTree: true},
		{Degree: 16, SubBits: 16, MultiGranularity: true, Locking: LockMGL},
		{Degree: 64, SubBits: 1, MultiGranularity: true, Locking: LockMGL, MinSearchTree: true},
		{Degree: 8, SubBits: 8, MultiGranularity: false, Locking: LockFile},
		{Degree: 4, SubBits: 4, MultiGranularity: true, Locking: LockMGL, LazyIntentionCleaning: true},
	}
	const fileSize = 1 << 20
	for ci, opts := range configs {
		fs := MustNew(nvm.New(64<<20, sim.ZeroCosts()), opts)
		ctx := sim.NewCtx(0, int64(ci))
		f, err := fs.Create(ctx, "f")
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4242)) // same workload for every config
		ref := make([]byte, fileSize)
		for op := 0; op < 250; op++ {
			off := rng.Int63n(fileSize - 70000)
			n := rng.Intn(65536) + 1
			pat := byte(op%253 + 1)
			f.WriteAt(ctx, bytes.Repeat([]byte{pat}, n), off)
			for j := int64(0); j < int64(n); j++ {
				ref[off+j] = pat
			}
			if op%25 == 24 {
				lo := rng.Int63n(fileSize / 2)
				ln := rng.Intn(100000) + 1
				if lo+int64(ln) > fileSize {
					ln = int(fileSize - lo)
				}
				buf := make([]byte, ln)
				got, _ := f.ReadAt(ctx, buf, lo)
				want := ref[lo:]
				if int64(len(want)) > int64(got) {
					want = want[:got]
				}
				if !bytes.Equal(buf[:got], want) {
					t.Fatalf("config %d (%+v): op %d: read mismatch", ci, opts, op)
				}
			}
		}
		// Close writes everything back; reopen and verify against the file.
		f.Close(ctx)
		f2, _ := fs.Open(ctx, "f")
		buf := make([]byte, fileSize)
		n, _ := f2.ReadAt(ctx, buf, 0)
		if !bytes.Equal(buf[:n], ref[:n]) {
			t.Fatalf("config %d: post-writeback content mismatch", ci)
		}
	}
}

// TestBitmapReachabilityInvariant: after arbitrary writes, every node with
// any bits set must be reachable (every proper ancestor has existing=1),
// unless it is shadowed by a staleness marker on some ancestor.
func TestBitmapReachabilityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		opts := DefaultOptions()
		opts.Degree = 4
		fs := MustNew(nvm.New(64<<20, sim.ZeroCosts()), opts)
		ctx := sim.NewCtx(0, seed)
		fh, _ := fs.Create(ctx, "f")
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 120; op++ {
			off := rng.Int63n(1 << 19)
			n := rng.Intn(1<<16) + 1
			fh.WriteAt(ctx, make([]byte, n), off)
		}
		ff := fs.files["f"]
		root := ff.root.Load()
		if root == nil {
			return true
		}
		return checkReach(root, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// checkReach walks the tree: under a node with existing=0, descendant bits
// are permitted only when a staleness marker shadows them.
func checkReach(n *node, shadowed bool) bool {
	if n.leaf {
		return shadowed || n.word.Load() == 0 || true // leaf bits need a reachable path, checked by parent
	}
	childShadowed := shadowed || !n.existing()
	hasStale := n.stale.Load()
	for i := range n.children {
		c := n.children[i].Load()
		if c == nil {
			continue
		}
		w := c.word.Load()
		if w != 0 && childShadowed && !shadowed {
			// Bits below an existing=0 node: legal only with the stale
			// marker (lazy cleaning) somewhere shadowing them.
			if !hasStale && !n.stale.Load() {
				return false
			}
		}
		if !checkReach(c, childShadowed) {
			return false
		}
	}
	return true
}

// TestWriteAmplificationBounds: across random workloads, MGSP's media
// writes stay within a small constant of user bytes (no double write), and
// fixed-granularity mode amplifies sub-block writes by ~blocksize/writesize.
func TestWriteAmplificationBounds(t *testing.T) {
	f := func(seed int64) bool {
		dev := nvm.New(64<<20, sim.ZeroCosts())
		fs := MustNew(dev, DefaultOptions())
		ctx := sim.NewCtx(0, seed)
		fh, _ := fs.Create(ctx, "f")
		fh.WriteAt(ctx, make([]byte, 1<<20), 0)
		dev.ResetStats()
		rng := rand.New(rand.NewSource(seed))
		var user int64
		for op := 0; op < 150; op++ {
			// 512-byte-aligned writes avoid RMW padding, isolating the
			// shadow-log property itself.
			units := int64(rng.Intn(8) + 1)
			off := rng.Int63n((1<<20-8*512)/512) * 512
			n := units * 512
			fh.WriteAt(ctx, make([]byte, n), off)
			user += n
		}
		media := dev.Stats().MediaWriteBytes.Load()
		wa := float64(media) / float64(user)
		return wa >= 1.0 && wa < 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryEquivalenceProperty: for random crash points, remounting and
// reading must equal the pre-crash content at an op boundary.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	opts := DefaultOptions()
	opts.Degree = 8
	const fileSize = 1 << 18
	f := func(seed int64) bool {
		dev := nvm.New(64<<20, sim.ZeroCosts())
		fs := MustNew(dev, opts)
		ctx := sim.NewCtx(0, seed)
		fh, _ := fs.Create(ctx, "f")
		fh.WriteAt(ctx, make([]byte, fileSize), 0)
		rng := rand.New(rand.NewSource(seed))

		type wr struct {
			off int64
			n   int
			pat byte
		}
		var script []wr
		for i := 0; i < 30; i++ {
			script = append(script, wr{rng.Int63n(fileSize - 40000), rng.Intn(32768) + 1, byte(i + 1)})
		}
		fail := rng.Int63n(400) + 1
		dev.ArmCrash(fail, seed)
		completed := -1
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			for i, w := range script {
				fh.WriteAt(ctx, bytes.Repeat([]byte{w.pat}, w.n), w.off)
				completed = i
			}
		}()
		dev.DisarmCrash()
		dev.Recover()
		fs2, err := Mount(ctx, dev, opts)
		if err != nil {
			return false
		}
		f2, err := fs2.Open(ctx, "f")
		if err != nil {
			return false
		}
		got := make([]byte, fileSize)
		f2.ReadAt(ctx, got, 0)
		ref := make([]byte, fileSize)
		for i := 0; i <= completed; i++ {
			w := script[i]
			for j := 0; j < w.n; j++ {
				ref[w.off+int64(j)] = w.pat
			}
		}
		if bytes.Equal(got, ref) {
			return true
		}
		if completed+1 < len(script) {
			w := script[completed+1]
			for j := 0; j < w.n; j++ {
				ref[w.off+int64(j)] = w.pat
			}
			return bytes.Equal(got, ref)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestMinSearchTreeNeverChangesResults: with and without the cache, reads
// after identical writes agree byte for byte.
func TestMinSearchTreeNeverChangesResults(t *testing.T) {
	run := func(enable bool) []byte {
		opts := DefaultOptions()
		opts.MinSearchTree = enable
		fs := MustNew(nvm.New(64<<20, sim.ZeroCosts()), opts)
		ctx := sim.NewCtx(0, 3)
		f, _ := fs.Create(ctx, "f")
		rng := rand.New(rand.NewSource(77))
		for op := 0; op < 200; op++ {
			off := rng.Int63n(1 << 19)
			n := rng.Intn(9000) + 1
			f.WriteAt(ctx, bytes.Repeat([]byte{byte(op)}, n), off)
		}
		buf := make([]byte, 1<<19+16384)
		n, _ := f.ReadAt(ctx, buf, 0)
		return buf[:n]
	}
	if !bytes.Equal(run(true), run(false)) {
		t.Fatal("minimum search tree changed read results")
	}
}
