package core

import (
	"sync"
	"sync/atomic"

	"mgsp/internal/sim"
)

// lockMode is one of the four Multiple Granularity Locking modes from
// Table I of the paper (Gray et al.'s classic hierarchy).
type lockMode int

const (
	lockIR lockMode = iota // intention read
	lockIW                 // intention write
	lockR                  // read (shared)
	lockW                  // write (exclusive)
	numModes
)

// String returns the mode's Table I abbreviation.
func (m lockMode) String() string {
	return [...]string{"IR", "IW", "R", "W"}[m]
}

// compatible implements the paper's Table I.
//
//	     IR  IW  R   W
//	IR   ok  ok  ok  -
//	IW   ok  ok  -   -
//	R    ok  -   ok  -
//	W    -   -   -   -
func compatible(held, want lockMode) bool {
	switch want {
	case lockIR:
		return held != lockW
	case lockIW:
		return held == lockIR || held == lockIW
	case lockR:
		return held == lockIR || held == lockR
	default: // lockW
		return false
	}
}

// conflictSet lists, per mode, the modes it conflicts with.
var conflictSet = [numModes][]lockMode{
	lockIR: {lockW},
	lockIW: {lockR, lockW},
	lockR:  {lockIW, lockW},
	lockW:  {lockIR, lockIW, lockR, lockW},
}

const lockCostAtomic = 20 // ns; MGSP uses GCC atomic builtins, not futexes

// mglLock is one tree node's lock. Real mutual exclusion uses counters and
// a condition variable; virtual-time contention books per-mode interval
// lists so that only sections that genuinely overlap in virtual time
// serialize (see sim.Mutex for why high-water marks are wrong under bursty
// goroutine scheduling).
type mglLock struct {
	mu   sync.Mutex
	cond *sync.Cond

	ir, iw, r, w int

	ivs    [numModes]sim.GapList
	starts map[holderKey]int64

	// ver is the node's optimistic-read version: bumped (under mu) when a W
	// holder is granted and again when it releases, so the value is odd
	// exactly while an exclusive writer is active. Lock-free readers record
	// it per visited node and re-validate after copying (optread.go); W
	// excludes W, so single increments keep the parity exact.
	ver atomic.Uint64
}

type holderKey struct {
	ctx  *sim.Ctx
	mode lockMode
}

func (l *mglLock) init() {
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
		l.starts = make(map[holderKey]int64)
	}
}

// grantable reports whether mode can be granted given current holders,
// per the compatibility table.
func (l *mglLock) grantable(mode lockMode) bool {
	switch mode {
	case lockIR:
		return l.w == 0
	case lockIW:
		return l.w == 0 && l.r == 0
	case lockR:
		return l.w == 0 && l.iw == 0
	default: // lockW
		return l.w == 0 && l.r == 0 && l.iw == 0 && l.ir == 0
	}
}

// Lock acquires mode, blocking until compatible.
func (l *mglLock) Lock(ctx *sim.Ctx, mode lockMode) {
	l.mu.Lock()
	l.init()
	for !l.grantable(mode) {
		l.cond.Wait()
	}
	l.grant(ctx, mode)
	l.mu.Unlock()
	ctx.Advance(lockCostAtomic)
}

// TryLock acquires mode only if immediately grantable.
func (l *mglLock) TryLock(ctx *sim.Ctx, mode lockMode) bool {
	l.mu.Lock()
	l.init()
	if !l.grantable(mode) {
		l.mu.Unlock()
		return false
	}
	l.grant(ctx, mode)
	l.mu.Unlock()
	ctx.Advance(lockCostAtomic)
	return true
}

// TryLockHint is TryLock, additionally reporting on failure whether the
// conflict came only from intention holders (no R/W): the background cleaner
// then descends to child locks — the try-lock analogue of LockLazy's
// handling of sticky intentions — instead of counting an idle worker's
// cached intent as real contention.
func (l *mglLock) TryLockHint(ctx *sim.Ctx, mode lockMode) (ok, intentOnly bool) {
	l.mu.Lock()
	l.init()
	if !l.grantable(mode) {
		intentOnly = l.r == 0 && l.w == 0
		l.mu.Unlock()
		return false, intentOnly
	}
	l.grant(ctx, mode)
	l.mu.Unlock()
	ctx.Advance(lockCostAtomic)
	return true, false
}

// LockLazy acquires mode, except that when the only remaining conflict is
// intention locks it returns false instead of waiting — sticky intentions
// left by lazy cleaning are never released by their (idle) owners, so the
// caller must descend and lock children instead (§III-C2, "lazy cleaning for
// intention lock": "MGSP will try to obtain read/write locks on all child
// nodes when other locks conflict with intention locks"). It still blocks on
// R/W conflicts, which are always op-scoped.
func (l *mglLock) LockLazy(ctx *sim.Ctx, mode lockMode) bool {
	l.mu.Lock()
	l.init()
	for {
		if l.grantable(mode) {
			l.grant(ctx, mode)
			l.mu.Unlock()
			ctx.Advance(lockCostAtomic)
			return true
		}
		if l.r == 0 && l.w == 0 {
			l.mu.Unlock()
			return false
		}
		l.cond.Wait()
	}
}

// grant books the section start: the earliest virtual point at or after the
// acquirer's clock that is free of every conflicting mode's sections.
func (l *mglLock) grant(ctx *sim.Ctx, mode lockMode) {
	pos := ctx.Now()
	for {
		p := pos
		for _, c := range conflictSet[mode] {
			p = l.ivs[c].FindStart(p, 1)
		}
		if p == pos {
			break
		}
		pos = p
	}
	l.starts[holderKey{ctx, mode}] = pos
	ctx.AdvanceTo(pos)
	switch mode {
	case lockIR:
		l.ir++
	case lockIW:
		l.iw++
	case lockR:
		l.r++
	case lockW:
		l.w++
		l.ver.Add(1) // odd: exclusive writer active
	}
}

// Unlock releases mode, booking the holder's virtual section in the first
// gap free of all conflicting modes' sections (pushing the holder's clock
// if the tentative placement collided).
func (l *mglLock) Unlock(ctx *sim.Ctx, mode lockMode) {
	l.mu.Lock()
	l.init()
	k := holderKey{ctx, mode}
	if start, ok := l.starts[k]; ok {
		delete(l.starts, k)
		dur := ctx.Now() - start
		if dur < 1 {
			dur = 1
		}
		pos := start
		for {
			p := pos
			for _, c := range conflictSet[mode] {
				p = l.ivs[c].FindStart(p, dur)
			}
			if p == pos {
				break
			}
			pos = p
		}
		l.ivs[mode].Insert(pos, pos+dur)
		ctx.Advance(pos - start)
	}
	switch mode {
	case lockIR:
		l.ir--
	case lockIW:
		l.iw--
	case lockR:
		l.r--
	case lockW:
		l.w--
		l.ver.Add(1) // even again: writer gone, version moved
	}
	if l.ir < 0 || l.iw < 0 || l.r < 0 || l.w < 0 {
		panic("core: mgl lock underflow")
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}
