package core

import (
	"mgsp/internal/sim"
)

const wbChunk = 64 * 1024

// writeback copies every shadow log's live data back into the file and
// releases the tree — the close path of §III-D ("when a file is no longer
// opened by any thread, MGSP will write all logs back to the original file
// and release related metadata"), also used as the final stage of recovery.
func (f *file) writeback(ctx *sim.Ctx) {
	// Write-back holds no node locks; drain optimistic readers so none reads
	// a log block mid-release or the file mid-copy.
	f.writerEnter()
	defer f.writerExit()
	root := f.root.Load()
	if root != nil {
		f.wbWalk(ctx, root, root.offset(), root.offset()+root.span, nil)
		f.fs.dev.Fence(ctx)
		f.releaseSubtree(ctx, root)
	}
	f.root.Store(nil)
	f.minSearch.Store(nil)
	f.releaseAllIntents(ctx)
}

// wbWalk copies the latest content of [lo,hi) into the file wherever the
// source of truth is a private log.
func (f *file) wbWalk(ctx *sim.Ctx, n *node, lo, hi int64, lastValid *node) {
	size := f.size.Load()
	if lo >= size {
		return
	}
	if hi > size {
		hi = size
	}
	if n.leaf {
		unit := int64(LeafSpan / f.subBits())
		word := n.word.Load()
		off := n.offset()
		for cur := lo; cur < hi; {
			u := (cur - off) / unit
			uEnd := off + (u+1)*unit
			if uEnd > hi {
				uEnd = hi
			}
			if word&(1<<uint(u)) != 0 {
				f.copyToFile(ctx, n, cur, uEnd)
			} else if lastValid != nil {
				f.copyToFile(ctx, lastValid, cur, uEnd)
			}
			cur = uEnd
		}
		return
	}
	if n.word.Load()&bitValid != 0 {
		lastValid = n
	}
	if n.word.Load()&bitExisting == 0 {
		if lastValid != nil {
			f.copyToFile(ctx, lastValid, lo, hi)
		}
		return
	}
	cs := n.childSpan(f.fs.opts.Degree)
	for cur := lo; cur < hi; {
		ci := (cur - n.offset()) / cs
		cEnd := n.offset() + (ci+1)*cs
		if cEnd > hi {
			cEnd = hi
		}
		if c := n.children[ci].Load(); c != nil {
			f.wbWalk(ctx, c, cur, cEnd, lastValid)
		} else if lastValid != nil {
			f.copyToFile(ctx, lastValid, cur, cEnd)
		}
		cur = cEnd
	}
}

// copyToFile moves [lo,hi) from src's log into the file in bounded chunks.
func (f *file) copyToFile(ctx *sim.Ctx, src *node, lo, hi int64) {
	if err := f.pf.EnsureCapacity(ctx, hi); err != nil {
		return
	}
	buf := make([]byte, wbChunk)
	for lo < hi {
		n := int64(wbChunk)
		if n > hi-lo {
			n = hi - lo
		}
		f.fs.dev.Read(ctx, buf[:n], src.logOff+(lo-src.offset()))
		f.pf.DirectWrite(ctx, buf[:n], lo)
		lo += n
	}
}
