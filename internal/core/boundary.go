package core

// Op-boundary predicate shared by the crash harnesses (internal/crashtest,
// internal/torture). MGSP advertises operation-level atomicity
// (vfs.OpAtomic): after a crash and recovery, every byte region must read as
// exactly one of the states an operation boundary could have left — never a
// torn interleaving of two ops and never a partially applied op. The
// harnesses express each check as "the recovered bytes equal one of these
// candidate images".

// MatchCandidate returns the index of the first candidate image equal to
// got, or -1 if the recovered bytes match none of them — an op-atomicity
// violation. Candidates shorter or longer than got never match.
func MatchCandidate(got []byte, cands [][]byte) int {
	for i, c := range cands {
		if len(c) != len(got) {
			continue
		}
		if FirstDivergence(got, c) == -1 {
			return i
		}
	}
	return -1
}

// FirstDivergence returns the offset of the first byte where a and b differ
// (comparing the shorter length), or -1 if they are equal. Harnesses use it
// to report where a torn region starts.
func FirstDivergence(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
