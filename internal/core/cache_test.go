package core

import (
	"bytes"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func cacheOpts(frames int, writeBack bool) Options {
	o := DefaultOptions()
	o.CacheFrames = frames
	o.WriteBack = writeBack
	return o
}

// fill returns a page of repeated b with a distinguishing first byte.
func page(b byte) []byte {
	buf := make([]byte, LeafSpan)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestCacheOptionValidation(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	bad := DefaultOptions()
	bad.CacheFrames = -1
	if _, err := New(dev, bad); err == nil {
		t.Fatal("negative CacheFrames must be rejected")
	}
	bad = DefaultOptions()
	bad.WriteBack = true
	if _, err := New(dev, bad); err == nil {
		t.Fatal("WriteBack without CacheFrames must be rejected")
	}
	bad = DefaultOptions()
	bad.CacheFrames = 8
	bad.FlushInterval = -5
	if _, err := New(dev, bad); err == nil {
		t.Fatal("negative FlushInterval must be rejected")
	}
}

// TestCacheReadHitContent checks the basic hit path: a read that fills a
// frame, a second read served from it, and content equality throughout —
// including after a committed overwrite (frame coherence via patchFrames).
func TestCacheReadHitContent(t *testing.T) {
	fs, ctx := newTestFS(cacheOpts(64, false))
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	want := page(0x11)
	if _, err := h.WriteAt(ctx, want, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, LeafSpan)
	for i := 0; i < 3; i++ {
		if _, err := h.ReadAt(ctx, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d: wrong content", i)
		}
	}
	if fs.Cache().Stats().Hits == 0 {
		t.Fatal("repeated reads must hit the cache")
	}
	// Committed overwrite → the cached frame must follow.
	want2 := page(0x22)
	if _, err := h.WriteAt(ctx, want2[:100], 50); err != nil {
		t.Fatal(err)
	}
	copy(want[50:150], want2[:100])
	if _, err := h.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cached frame stale after committed overwrite")
	}
}

// TestCacheReadStepUp is the acceptance-criteria latency claim in unit-test
// form: with real costs, a cached re-read of a block is measurably cheaper
// in virtual time than the first (media) read.
func TestCacheReadStepUp(t *testing.T) {
	read := func(opts Options) int64 {
		fs := MustNew(nvm.New(64<<20, sim.DefaultCosts()), opts)
		ctx := sim.NewCtx(0, 1)
		h, err := fs.Create(ctx, "f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt(ctx, page(1), 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, LeafSpan)
		t0 := ctx.Now()
		for i := 0; i < 10; i++ {
			if _, err := h.ReadAt(ctx, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		return ctx.Now() - t0
	}
	cached := read(cacheOpts(64, false))
	uncached := read(DefaultOptions())
	if cached >= uncached {
		t.Fatalf("cached reads (%d ns) not cheaper than uncached (%d ns)", cached, uncached)
	}
}

// TestWriteBackReadYourWrites: an acked buffered write must be visible to a
// subsequent read before any drain happened.
func TestWriteBackReadYourWrites(t *testing.T) {
	fs, ctx := newTestFS(cacheOpts(1024, true))
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	// Seed three blocks (direct commits; installs frames).
	for b := int64(0); b < 3; b++ {
		if _, err := h.WriteAt(ctx, page(byte(b)), b*LeafSpan); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite block 1 — with a framed block and no size change this
	// buffers in DRAM.
	if _, err := h.WriteAt(ctx, page(0x77), LeafSpan); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().BufferedWrites.Load() == 0 {
		t.Fatal("overwrite of a framed block must take the buffered path")
	}
	got := make([]byte, LeafSpan)
	if _, err := h.ReadAt(ctx, got, LeafSpan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0x77)) {
		t.Fatal("read did not observe the acked buffered write")
	}
	// A multi-block read spanning the dirty block must also see it (the
	// read drains first).
	wide := make([]byte, 3*LeafSpan)
	if _, err := h.ReadAt(ctx, wide, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wide[LeafSpan:2*LeafSpan], page(0x77)) {
		t.Fatal("multi-block read missed buffered data")
	}
}

// TestWriteBackFsyncDrains: Fsync is the durability point — afterwards no
// dirty frames remain and the data is on media (visible after remount).
func TestWriteBackFsyncDrains(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := MustNew(dev, cacheOpts(1024, true))
	ctx := sim.NewCtx(0, 1)
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, page(0x01), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, page(0x99), 0); err != nil { // buffered
		t.Fatal(err)
	}
	if err := h.Fsync(ctx); err != nil {
		t.Fatal(err)
	}
	if n := fs.Cache().DirtyCount(); n != 0 {
		t.Fatalf("dirty frames after Fsync: %d", n)
	}
	if fs.Cache().Stats().FlushBatches == 0 {
		t.Fatal("Fsync drain must count a flush batch")
	}
	// Remount: the drained content must be durable, entirely from the
	// shadow log — the new FS starts with an empty pool.
	rctx := sim.NewCtx(1, 1)
	fs2, err := Mount(rctx, dev, cacheOpts(1024, true))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := fs2.Open(rctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, LeafSpan)
	if _, err := h2.ReadAt(rctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0x99)) {
		t.Fatal("fsynced buffered write not durable across remount")
	}
}

// TestWriteBackWACeiling is the satellite CI property: write-back batching
// must not regress write amplification — the steady-state overwrite WA
// stays at or below the 2.0 bound the uncached system guarantees (Table II
// allows 2x only for unaligned RMW; aligned overwrites sit near 1).
func TestWriteBackWACeiling(t *testing.T) {
	fs, ctx := newTestFS(cacheOpts(1024, true))
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	// Warm: create 8 blocks directly.
	for b := int64(0); b < 8; b++ {
		if _, err := h.WriteAt(ctx, page(byte(b)), b*LeafSpan); err != nil {
			t.Fatal(err)
		}
	}
	before := fs.Obs().Snapshot()
	buf := make([]byte, LeafSpan)
	for i := 0; i < 200; i++ {
		buf[0] = byte(i)
		if _, err := h.WriteAt(ctx, buf, int64(i%8)*LeafSpan); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			if err := h.Fsync(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.Fsync(ctx); err != nil {
		t.Fatal(err)
	}
	d := fs.Obs().Snapshot().Diff(before)
	user := d.Values["core.user_write_bytes"]
	if user == 0 {
		t.Fatal("no user bytes recorded")
	}
	wa := d.Values["nvm.media_write_bytes"] / user
	if wa > 2.0 {
		t.Fatalf("write-back WA = %.3f, exceeds the 2.0 bound", wa)
	}
	if fs.Stats().BufferedWrites.Load() == 0 {
		t.Fatal("phase must exercise the buffered path")
	}
	if fs.Cache().Stats().FlushBatches == 0 {
		t.Fatal("phase must exercise batched drains")
	}
}

// TestCacheInvalidation: remove, create-over, and truncate must drop stale
// frames — especially across pm-slot reuse (Remove frees the slot even with
// the cache holding frames keyed by it).
func TestCacheInvalidation(t *testing.T) {
	fs, ctx := newTestFS(cacheOpts(64, false))
	h, err := fs.Create(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, page(0xAA), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, LeafSpan)
	if _, err := h.ReadAt(ctx, got, 0); err != nil { // warm the frame
		t.Fatal(err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	// New file reuses pm slot 0; its blocks must not surface "a"'s frames.
	h2, err := fs.Create(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.WriteAt(ctx, page(0xBB), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0xBB)) {
		t.Fatal("stale frame leaked across pm-slot reuse")
	}

	// Truncate-to-zero then regrow: reads must see zeros / new data, not
	// the pre-truncate frame.
	if err := h2.Truncate(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.WriteAt(ctx, []byte{0xCC}, 0); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 16)
	if _, err := h2.ReadAt(ctx, small, 0); err != nil {
		t.Fatal(err)
	}
	if small[0] != 0xCC || small[1] != 0x00 {
		t.Fatalf("post-truncate read wrong: % x", small[:4])
	}

	// Create over an existing open file resets content; frames must go too.
	if _, err := fs.Create(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	n, err := h2.ReadAt(ctx, small, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("create-over-existing left readable bytes: n=%d % x", n, small[:4])
	}
}

// TestWriteBackSnapshotIncludesBuffered: a snapshot taken after an acked
// buffered write must freeze that write's content.
func TestWriteBackSnapshotIncludesBuffered(t *testing.T) {
	fs, ctx := newTestFS(cacheOpts(1024, true))
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, page(0x01), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, page(0x55), 0); err != nil { // buffered
		t.Fatal(err)
	}
	id, err := fs.Snapshot(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite after the snapshot; the frozen image must keep 0x55.
	if _, err := h.WriteAt(ctx, page(0x02), 0); err != nil {
		t.Fatal(err)
	}
	sh, err := fs.OpenSnapshot(ctx, "f", id)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, LeafSpan)
	if _, err := sh.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0x55)) {
		t.Fatalf("snapshot image missing pre-snapshot buffered write: got %#x", got[0])
	}
	live := make([]byte, LeafSpan)
	if _, err := h.ReadAt(ctx, live, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, page(0x02)) {
		t.Fatal("live content wrong after snapshot")
	}
}

// TestWriteBackFlusherRuns: with a tiny pool the dirty watermark alone
// (virtual time frozen under ZeroCosts) must trigger background drains.
func TestWriteBackFlusherRuns(t *testing.T) {
	fs, ctx := newTestFS(cacheOpts(8, true))
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 4; b++ {
		if _, err := h.WriteAt(ctx, page(byte(b)), b*LeafSpan); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := h.WriteAt(ctx, page(byte(i)), int64(i%4)*LeafSpan); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Flusher().Passes() == 0 {
		t.Fatal("watermark must have triggered background drain passes")
	}
	if fs.Flusher().Drained() == 0 {
		t.Fatal("background passes must have drained frames")
	}
}

// TestCacheObsMetrics: the satellite metric names must all be present in an
// obs snapshot of a cache-enabled FS.
func TestCacheObsMetrics(t *testing.T) {
	fs, ctx := newTestFS(cacheOpts(64, true))
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, page(1), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, LeafSpan)
	if _, err := h.ReadAt(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	snap := fs.Obs().Snapshot()
	for _, name := range []string{
		"cache.hits", "cache.misses", "cache.evictions",
		"cache.dirty_frames", "cache.flush_batches", "cache.read_retry",
		"flusher.passes", "flusher.drained", "flusher.media_write_bytes",
		"core.buffered_writes",
	} {
		if _, ok := snap.Values[name]; !ok {
			t.Errorf("metric %q missing from obs snapshot", name)
		}
	}
}
