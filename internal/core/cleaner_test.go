package core

import (
	"bytes"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
)

// cleanerOpts enables the cleaner with an interval too large to ever
// self-fire, so tests drive passes explicitly via CleanPass/Checkpoint.
func cleanerOpts() Options {
	o := smallTreeOpts()
	o.CleanerInterval = 1 << 60
	return o
}

func TestOptionsRejectNegativeCleaner(t *testing.T) {
	dev := nvm.New(8<<20, sim.ZeroCosts())
	o := DefaultOptions()
	o.CleanerInterval = -1
	if _, err := New(dev, o); err == nil {
		t.Fatal("negative CleanerInterval accepted")
	}
	o = DefaultOptions()
	o.CleanerBudget = -5
	if _, err := New(dev, o); err == nil {
		t.Fatal("negative CleanerBudget accepted")
	}
}

// fillPerLeaf writes pat over size bytes in 4 KiB ops (leaf-granularity
// shadows, so every log is below the root and reclaimable).
func fillPerLeaf(t *testing.T, ctx *sim.Ctx, fs *FS, name string, size int64, seed byte) []byte {
	t.Helper()
	f, err := fs.Create(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]byte, size)
	for off := int64(0); off < size; off += 4096 {
		pat := byte(int(seed) + int(off/4096))
		chunk := bytes.Repeat([]byte{pat}, 4096)
		copy(ref[off:], chunk)
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

func readBack(t *testing.T, ctx *sim.Ctx, fs *FS, name string, size int64) []byte {
	t.Helper()
	f, err := fs.Open(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCleanPassReclaimsAndPreserves: two passes (the first only establishes
// generation age) must write all cold subtrees back, drop the log footprint
// to zero, and leave the contents byte-identical; writes afterwards must
// still work.
func TestCleanPassReclaimsAndPreserves(t *testing.T) {
	fs, ctx := newTestFS(cleanerOpts())
	const size = 64 * 1024
	ref := fillPerLeaf(t, ctx, fs, "f", size, 1)
	if fs.LogBlocks() == 0 {
		t.Fatal("no shadow logs after writes; test is vacuous")
	}

	fs.CleanPass(ctx, 0) // warm-up: everything is one generation old at most
	res := fs.CleanPass(ctx, 0)
	if !res.Wrapped {
		t.Fatalf("unbounded pass did not wrap: %+v", res)
	}
	if res.SubtreesCleaned == 0 || res.BlocksReclaimed == 0 {
		t.Fatalf("second pass cleaned nothing: %+v", res)
	}
	if lb := fs.LogBlocks(); lb != 0 {
		t.Fatalf("log blocks after full clean = %d, want 0", lb)
	}
	if got := readBack(t, ctx, fs, "f", size); !bytes.Equal(got, ref) {
		t.Fatal("contents changed by cleaning")
	}
	if fs.Stats().CleanerPasses.Load() != 2 || fs.Stats().BlocksReclaimed.Load() != res.BlocksReclaimed {
		t.Fatal("cleaner stats not maintained")
	}

	// The tree must be fully writable again after reclamation.
	f, err := fs.Open(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	post := bytes.Repeat([]byte{0xEE}, 8192)
	if _, err := f.WriteAt(ctx, post, 12288); err != nil {
		t.Fatal(err)
	}
	copy(ref[12288:], post)
	if got := readBack(t, ctx, fs, "f", size); !bytes.Equal(got, ref) {
		t.Fatal("contents wrong after post-clean write")
	}
}

// TestCleanPassBudgetResumes: a tiny budget cuts the pass short
// (Wrapped=false) before the second file and the cursor lets later passes
// finish the job.
func TestCleanPassBudgetResumes(t *testing.T) {
	fs, ctx := newTestFS(cleanerOpts())
	const size = 64 * 1024
	refA := fillPerLeaf(t, ctx, fs, "a", size, 7)
	refB := fillPerLeaf(t, ctx, fs, "b", size, 31)

	fs.CleanPass(ctx, 1) // warm-up
	res := fs.CleanPass(ctx, 1)
	if res.Wrapped {
		t.Fatalf("budget-1 pass wrapped: %+v", res)
	}
	if res.BlocksReclaimed == 0 {
		t.Fatalf("budget-1 pass reclaimed nothing: %+v", res)
	}
	for i := 0; i < 64 && fs.LogBlocks() != 0; i++ {
		fs.CleanPass(ctx, 1)
	}
	if lb := fs.LogBlocks(); lb != 0 {
		t.Fatalf("resumed passes left %d log blocks", lb)
	}
	if got := readBack(t, ctx, fs, "a", size); !bytes.Equal(got, refA) {
		t.Fatal("file a changed by budgeted cleaning")
	}
	if got := readBack(t, ctx, fs, "b", size); !bytes.Equal(got, refB) {
		t.Fatal("file b changed by budgeted cleaning")
	}
}

// TestCheckpointEpochSkipsStaleEntries (white-box): a complete metadata-log
// chain stamped with a pre-checkpoint epoch must be skipped by replay — it
// may reference records the cleaner has since retired, and replaying it here
// would visibly corrupt the file (the entry zeroes a live leaf bitmap).
func TestCheckpointEpochSkipsStaleEntries(t *testing.T) {
	opts := cleanerOpts()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	const size = 64 * 1024
	ref := fillPerLeaf(t, ctx, fs, "f", size, 3)

	if !fs.Checkpoint(ctx) {
		t.Fatal("checkpoint did not quiesce an idle FS")
	}
	if fs.Stats().CheckpointsTaken.Load() != 1 {
		t.Fatal("CheckpointsTaken not counted")
	}

	// Forge a committed-but-unretired entry from before the checkpoint: epoch
	// 0, flipping a live leaf's bitmap to zero.
	f := fs.files["f"]
	leaf := findRecordedLeaf(f.root.Load())
	if leaf == nil {
		t.Fatal("no recorded leaf to reference")
	}
	i := fs.mlog.claim(ctx, 0)
	fs.mlog.commit(ctx, i, f.pf.Slot(), 0, 4096, f.size.Load(),
		[]bitmapSlot{{recIdx: leaf.recIdx, old: uint16(leaf.word.Load()), new: 0}},
		0xC1EA, 0, 1, 0)

	dev.Recover()
	rctx := sim.NewCtx(1, 1)
	fs2, err := Mount(rctx, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := fs2.Stats().EntriesSkipped.Load(); n == 0 {
		t.Fatal("pre-checkpoint entry was not skipped")
	}
	if n := fs2.Stats().EntriesReplayed.Load(); n != 0 {
		t.Fatalf("replayed %d entries; expected none", n)
	}
	if got := readBack(t, rctx, fs2, "f", size); !bytes.Equal(got, ref) {
		t.Fatal("stale entry was applied: contents corrupted")
	}
}

func findRecordedLeaf(n *node) *node {
	if n == nil {
		return nil
	}
	if n.leaf {
		if n.recIdx >= 0 && n.word.Load() != 0 {
			return n
		}
		return nil
	}
	for i := range n.children {
		if r := findRecordedLeaf(n.children[i].Load()); r != nil {
			return r
		}
	}
	return nil
}

// TestCheckpointRefusesWhileInFlight: the quiesce gives up (and writes no
// record) while an operation is inside its in-flight window.
func TestCheckpointRefusesWhileInFlight(t *testing.T) {
	fs, ctx := newTestFS(cleanerOpts())
	fs.inFlight.Add(1)
	if fs.Checkpoint(ctx) {
		t.Fatal("checkpoint succeeded with an op in flight")
	}
	fs.inFlight.Add(-1)
	if fs.Stats().CheckpointsTaken.Load() != 0 {
		t.Fatal("failed checkpoint counted")
	}
	if !fs.Checkpoint(ctx) {
		t.Fatal("checkpoint failed on an idle FS")
	}
}

// TestCrashDuringCleaning sweeps fail points through a clean+checkpoint
// cycle: a crash anywhere inside the cleaner must never change the file's
// recovered contents (cleaning is logically invisible).
func TestCrashDuringCleaning(t *testing.T) {
	opts := cleanerOpts()
	const size = 48 * 1024
	for fail := int64(1); ; fail += 5 {
		dev := nvm.New(128<<20, sim.ZeroCosts())
		fs := MustNew(dev, opts)
		ctx := sim.NewCtx(0, fail)
		ref := fillPerLeaf(t, ctx, fs, "f", size, 11)

		dev.ArmCrash(fail, fail*13+5)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrCrashed {
						panic(r)
					}
					crashed = true
				}
			}()
			fs.CleanPass(ctx, 0)
			fs.CleanPass(ctx, 0)
			fs.Checkpoint(ctx)
		}()
		dev.DisarmCrash()
		if !crashed {
			if lb := fs.LogBlocks(); lb != 0 {
				t.Fatalf("uncrashed clean left %d log blocks", lb)
			}
			return
		}
		dev.Recover()
		rctx := sim.NewCtx(1, fail)
		fs2, err := Mount(rctx, dev, opts)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		if got := readBack(t, rctx, fs2, "f", size); !bytes.Equal(got, ref) {
			t.Fatalf("fail=%d: contents changed by crashed cleaning", fail)
		}
	}
}

// TestCleanerOffByteIdentical: with the cleaner disabled (the default), the
// device image after a workload must be byte-for-byte what the seed protocol
// produces — cleaner plumbing must add no media traffic. Guarded by the
// epoch stamp using a reserved-zero byte of the metadata-log meta word and
// the directory high-water mark staying unwritten without a cleaner.
func TestCleanerOffByteIdentical(t *testing.T) {
	run := func() *nvm.Device {
		dev := nvm.New(32<<20, sim.ZeroCosts())
		fs := MustNew(dev, smallTreeOpts())
		ctx := sim.NewCtx(0, 42)
		f, err := fs.Create(ctx, "f")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := f.WriteAt(ctx, bytes.Repeat([]byte{byte(i + 1)}, 3000), int64(i*2500)); err != nil {
				t.Fatal(err)
			}
		}
		return dev
	}
	var a, b bytes.Buffer
	if err := run().Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := run().Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cleaner-off runs are not deterministic")
	}
	// The checkpoint cell region must be untouched (all zero) without a
	// cleaner.
	dev := run()
	off := pmfile.MetaStart() + int64(metaLogEntries)*entrySize
	for _, o := range []int64{ckptEpoch, ckptPasses, ckptReclaimed, ckptCksum, ckptDirHW} {
		if dev.Load8(off+o) != 0 {
			t.Fatalf("checkpoint cell word at +%d written without a cleaner", o)
		}
	}
}
