package core

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func TestCompatibilityTable(t *testing.T) {
	// Table I of the paper.
	want := map[[2]lockMode]bool{
		{lockIR, lockIR}: true, {lockIR, lockIW}: true, {lockIR, lockR}: true, {lockIR, lockW}: false,
		{lockIW, lockIR}: true, {lockIW, lockIW}: true, {lockIW, lockR}: false, {lockIW, lockW}: false,
		{lockR, lockIR}: true, {lockR, lockIW}: false, {lockR, lockR}: true, {lockR, lockW}: false,
		{lockW, lockIR}: false, {lockW, lockIW}: false, {lockW, lockR}: false, {lockW, lockW}: false,
	}
	for k, v := range want {
		if compatible(k[0], k[1]) != v {
			t.Errorf("compatible(%v, %v) = %v, want %v", k[0], k[1], !v, v)
		}
	}
}

// TestGrantableMatchesCompatibility: grantable(M) must equal "M compatible
// with every held mode" for all count combinations.
func TestGrantableMatchesCompatibility(t *testing.T) {
	f := func(ir, iw, r, w uint8) bool {
		l := &mglLock{ir: int(ir % 3), iw: int(iw % 3), r: int(r % 3), w: int(w % 2)}
		for _, m := range []lockMode{lockIR, lockIW, lockR, lockW} {
			want := true
			for held, n := range map[lockMode]int{lockIR: l.ir, lockIW: l.iw, lockR: l.r, lockW: l.w} {
				if n > 0 && !compatible(held, m) {
					want = false
				}
			}
			if l.grantable(m) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMGLBasicExclusion(t *testing.T) {
	var l mglLock
	ctx := sim.NewCtx(0, 1)
	l.Lock(ctx, lockIW)
	if l.TryLock(ctx, lockR) {
		t.Fatal("R granted alongside IW")
	}
	if !l.TryLock(ctx, lockIR) {
		t.Fatal("IR refused alongside IW")
	}
	l.Unlock(ctx, lockIW)
	l.Unlock(ctx, lockIR)
	l.Lock(ctx, lockW)
	for _, m := range []lockMode{lockIR, lockIW, lockR, lockW} {
		if l.TryLock(ctx, m) {
			t.Fatalf("%v granted alongside W", m)
		}
	}
	l.Unlock(ctx, lockW)
}

// TestMGLVirtualTimeIRParallel: IR holders never serialize virtual time.
func TestMGLVirtualTimeParallel(t *testing.T) {
	var l mglLock
	a, b := sim.NewCtx(0, 1), sim.NewCtx(1, 2)
	l.Lock(a, lockIR)
	a.Advance(1000)
	l.Unlock(a, lockIR)
	l.Lock(b, lockIR)
	if b.Now() >= 1000 {
		t.Fatalf("second IR serialized to %d (must only pay the acquisition cost)", b.Now())
	}
	l.Unlock(b, lockIR)
	// But a writer observes both.
	w := sim.NewCtx(2, 3)
	l.Lock(w, lockW)
	if w.Now() < 1000 {
		t.Fatalf("writer did not observe IR release: %d", w.Now())
	}
	l.Unlock(w, lockW)
}

// TestConcurrentMixedGranularity stresses fine writers + coarse writers +
// readers on one file, with a watchdog for deadlock, under every lock
// configuration.
func TestConcurrentMixedGranularity(t *testing.T) {
	configs := map[string]Options{
		"full": DefaultOptions(),
		"noLazy": func() Options {
			o := DefaultOptions()
			o.LazyIntentionCleaning = false
			return o
		}(),
		"noGreedyNoLazy": func() Options {
			o := DefaultOptions()
			o.GreedyLocking = false
			o.LazyIntentionCleaning = false
			return o
		}(),
		"fileLock": func() Options {
			o := DefaultOptions()
			o.Locking = LockFile
			return o
		}(),
		"degree4": func() Options {
			o := smallTreeOpts()
			return o
		}(),
	}
	for name, opts := range configs {
		opts := opts
		t.Run(name, func(t *testing.T) {
			dev := nvm.New(256<<20, sim.ZeroCosts())
			fs := MustNew(dev, opts)
			setup := sim.NewCtx(100, 1)
			f0, _ := fs.Create(setup, "f")
			const region = 1 << 20
			const workers = 6
			f0.WriteAt(setup, make([]byte, workers*region), 0)

			done := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					ctx := sim.NewCtx(id, int64(id))
					h, err := fs.Open(ctx, "f")
					if err != nil {
						t.Errorf("open: %v", err)
						return
					}
					defer h.Close(ctx)
					base := int64(id) * region
					buf := make([]byte, 256*1024)
					for i := 0; i < 60; i++ {
						switch i % 4 {
						case 0: // fine write
							h.WriteAt(ctx, bytes.Repeat([]byte{byte(id + 1)}, 300), base+int64(ctx.Rand.Intn(region-512)))
						case 1: // block write
							h.WriteAt(ctx, bytes.Repeat([]byte{byte(id + 1)}, 4096), base+int64(ctx.Rand.Intn(region/4096-1))*4096)
						case 2: // coarse write (256K aligned)
							off := base + int64(ctx.Rand.Intn(region/(256*1024)))*256*1024
							h.WriteAt(ctx, bytes.Repeat([]byte{byte(id + 1)}, 256*1024), off)
						case 3: // read own region
							h.ReadAt(ctx, buf, base+int64(ctx.Rand.Intn(region/2)))
						}
					}
				}(w)
			}
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("deadlock: concurrent mixed-granularity run did not finish")
			}
			if t.Failed() {
				return
			}
			// Cross-region isolation: every byte is 0 or owner's pattern.
			buf := make([]byte, workers*region)
			h, _ := fs.Open(setup, "f")
			h.ReadAt(setup, buf, 0)
			for w := 0; w < workers; w++ {
				for i := 0; i < region; i++ {
					b := buf[w*region+i]
					if b != 0 && b != byte(w+1) {
						t.Fatalf("worker %d region byte %d = %d: isolation violated", w, i, b)
					}
				}
			}
		})
	}
}

// TestMGLLockMatrix drives every (held, want) pair of Table I through every
// acquisition path. For each cell it checks, with one worker holding `held`:
//
//   - TryLock(want) succeeds exactly when the table says compatible;
//   - TryLockHint(want) agrees, and on failure reports intentOnly exactly
//     when the blocking holder is an intention mode (IR/IW) — the signal
//     that tells the cleaner to descend instead of treating sticky intent
//     as contention;
//   - LockLazy(want) grants when compatible, refuses (without blocking)
//     when only intention holders conflict, and blocks until release when a
//     real R/W holder conflicts.
//
// The local lock `l` is an mglLock driven with two distinct holder contexts;
// its intra-class nesting is the multi-holder semantics under test, so the
// class is declared self-ordered for the lockorder pass:
//
//mgsp:lock-order-self l
func TestMGLLockMatrix(t *testing.T) {
	modes := []lockMode{lockIR, lockIW, lockR, lockW}
	for _, held := range modes {
		for _, want := range modes {
			held, want := held, want
			t.Run(held.String()+"-"+want.String(), func(t *testing.T) {
				ok := compatible(held, want)
				intention := held == lockIR || held == lockIW

				var l mglLock
				holder := sim.NewCtx(0, 1)
				other := sim.NewCtx(1, 2)
				l.Lock(holder, held)

				if got := l.TryLock(other, want); got != ok {
					t.Fatalf("TryLock(%v) with %v held = %v, want %v", want, held, got, ok)
				}
				if ok {
					l.Unlock(other, want)
				}

				got, intentOnly := l.TryLockHint(other, want)
				if got != ok {
					t.Fatalf("TryLockHint(%v) with %v held = %v, want %v", want, held, got, ok)
				}
				if ok {
					l.Unlock(other, want)
				} else if intentOnly != intention {
					t.Fatalf("TryLockHint(%v) with %v held: intentOnly = %v, want %v",
						want, held, intentOnly, intention)
				}

				switch {
				case ok:
					if !l.LockLazy(other, want) {
						t.Fatalf("LockLazy(%v) with compatible %v held refused", want, held)
					}
					l.Unlock(other, want)
				case intention:
					// Sticky intent: refuse immediately, never wait for an
					// owner that will not release.
					if l.LockLazy(other, want) {
						t.Fatalf("LockLazy(%v) granted against conflicting %v", want, held)
					}
				default:
					// Op-scoped R/W conflict: must block, then acquire once
					// the holder releases.
					acquired := make(chan struct{})
					go func() {
						if l.LockLazy(other, want) {
							close(acquired)
						}
					}()
					select {
					case <-acquired:
						t.Fatalf("LockLazy(%v) returned while %v still held", want, held)
					case <-time.After(20 * time.Millisecond):
					}
					l.Unlock(holder, held)
					select {
					case <-acquired:
					case <-time.After(10 * time.Second):
						t.Fatalf("LockLazy(%v) never acquired after %v release", want, held)
					}
					l.Unlock(other, want)
					return // holder already released
				}
				l.Unlock(holder, held)
			})
		}
	}
}

// TestOverlappingWritersAtomicity: two workers repeatedly write the SAME
// 4 KiB-aligned block with distinct fill patterns; the block must always
// read uniformly (no interleaving), under MGL.
func TestOverlappingWritersAtomicity(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := MustNew(dev, DefaultOptions())
	setup := sim.NewCtx(100, 1)
	f0, _ := fs.Create(setup, "f")
	f0.WriteAt(setup, make([]byte, 64*1024), 0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id))
			h, _ := fs.Open(ctx, "f")
			defer h.Close(ctx)
			pat := bytes.Repeat([]byte{byte(id + 1)}, 4096)
			for i := 0; i < 200; i++ {
				h.WriteAt(ctx, pat, 8192)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := sim.NewCtx(5, 5)
		h, _ := fs.Open(ctx, "f")
		defer h.Close(ctx)
		buf := make([]byte, 4096)
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.ReadAt(ctx, buf, 8192)
			first := buf[0]
			for i, b := range buf {
				if b != first {
					t.Errorf("mixed block: byte 0 = %d, byte %d = %d", first, i, b)
					return
				}
			}
		}
	}()
	// Close stop after the writers finish.
	go func() {
		time.Sleep(50 * time.Millisecond)
	}()
	wgWriters := make(chan struct{})
	go func() {
		// crude: wait until writers are done by re-checking; simpler: just
		// give readers a bounded run.
		time.Sleep(200 * time.Millisecond)
		close(stop)
		close(wgWriters)
	}()
	wg.Wait()
	<-wgWriters
}
