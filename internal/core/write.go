package core

import (
	"fmt"

	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// dataWrite is one pending shadow-log store: data to be written at absolute
// file offset abs into dst's private log, or into the file itself when dst
// is nil (the root log is the file's memory map). logOff, when nonzero,
// overrides the destination with an explicit device offset — a copy-on-write
// relocation target that only becomes dst's log at commit time.
type dataWrite struct {
	dst    *node
	abs    int64
	data   []byte
	logOff int64
}

// wordChange is a planned bitmap transition for one node, becoming a
// metadata-log slot at commit time. newLogOff, when nonzero, additionally
// swaps the node's private log to a freshly allocated block (snapshot
// copy-on-write); oldLogOff is the block whose live reference is released
// after the swap commits.
type wordChange struct {
	n         *node
	old, new  uint64
	markStale bool
	newLogOff int64
	oldLogOff int64
}

// WriteAt implements vfs.File: one failure-atomic MGSP write (§III-D).
func (h *handle) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if err := h.guard(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	f := h.f
	fs := f.fs
	fs.stats.Writes.Add(ctx.ID, 1)
	fs.stats.UserWriteBytes.Add(ctx.ID, int64(len(p)))
	began := ctx.Now()
	// Write-back fast path (DESIGN.md §13): a single-block overwrite whose
	// block is already framed lands in the dirty frame and is acknowledged at
	// DRAM cost; the flusher drains it through the shadow-log commit path
	// later (or Fsync does, synchronously). Overwrites only — size-extending
	// writes always commit directly so f.size/metadata stay shadow-log-owned.
	if fs.flusher != nil && f.tryBufferedWrite(p, off) {
		ctx.Advance(fs.costs.IndexStep + fs.costs.DRAMCopyCost(len(p)))
		fs.stats.BufferedWrites.Add(1)
		dur := ctx.Now() - began
		fs.hWrite.Observe(dur)
		fs.trace.Record(ctx.ID, obs.OpWrite, f.pf.Slot(), off, int64(len(p)), dur)
		fs.flusher.MaybeRun(ctx.Now())
		return len(p), nil
	}
	// Enter the in-flight window (checkpoint quiesce) first; the deferred
	// exit runs after the lock release below (LIFO), so the cleaner's
	// piggyback pass never starts while this op holds node locks.
	fs.inFlight.Add(1)
	defer fs.opExit(ctx)
	// Drain optimistic readers before mutating anything they might copy.
	f.writerEnter()
	defer f.writerExit()
	if fs.flusher != nil {
		// Direct writes exclude drains for the whole op (frame patches below
		// must not interleave with a drain collecting stale content). LIFO
		// with the defers above: locks release, flushMu releases, then opExit
		// donates — never into a pass that would self-deadlock here.
		f.flushMu.Lock(ctx)
		defer f.flushMu.Unlock(ctx)
	}
	end := off + int64(len(p))

	// Make room: file capacity (underlying fallocate+mmap) and tree height.
	if err := f.pf.EnsureCapacity(ctx, end); err != nil {
		return 0, err
	}
	f.ensureTree(ctx, f.pf.Capacity())

	// Claim a private metadata log entry (lock-free, §III-C1).
	entry := fs.mlog.claim(ctx, ctx.ID)

	// Locate targets (Algorithm 1's traversal) and lock (§III-C2).
	start := f.searchStart(ctx, off, end)
	segs := f.cover(ctx, start, off, end, nil)
	locks := f.lockOp(ctx, start, segs, true)
	defer f.release(ctx, locks)

	// Set existing bits down the paths, cleaning lazily-invalidated
	// descendants on the way (§III-B2).
	f.setExistingPath(ctx, ancestorsOf(segs))

	// Plan: per-target shadow-log destination, data writes, word changes.
	var writes []dataWrite
	var changes []wordChange
	for _, s := range segs {
		if s.n.leaf {
			var err error
			writes, changes, err = f.planLeaf(ctx, s, p[s.lo-off:s.hi-off], writes, changes)
			if err != nil {
				return 0, err
			}
		} else {
			w, c, err := f.planInterior(ctx, s, p[s.lo-off:s.hi-off])
			if err != nil {
				return 0, err
			}
			writes = append(writes, w)
			changes = append(changes, c)
		}
	}

	// Shadow-data phase: every store lands in a location that is not the
	// current source of truth, so nothing is visible until commit.
	for _, w := range writes {
		f.writeTo(ctx, w)
	}
	fs.dev.Fence(ctx)

	// Commit: persist the metadata log entry (chained if >10 slots), then
	// apply the bitmap words.
	newSize := f.size.Load()
	if end > newSize {
		newSize = end
	}
	f.commitChanges(ctx, entry, off, int64(len(p)), newSize, changes)

	// Publish the new size (also recorded in the entry for recovery).
	// Deferred unlock: SetSize persists the size word (a media op), and a
	// crash-injection panic there must not leak sizeMu to other workers.
	if end > f.size.Load() {
		func() {
			f.sizeMu.Lock(ctx)
			defer f.sizeMu.Unlock(ctx)
			if end > f.size.Load() {
				f.size.Store(end)
				f.pf.SetSize(ctx, end)
			}
		}()
	}

	fs.mlog.retire(ctx, entry)
	if fs.pcache != nil {
		// Committed: bring overlapping frames up to date while the W locks
		// still exclude readers (release is deferred).
		f.patchFrames(p, off)
	}
	f.updateMinSearch(off, end)
	dur := ctx.Now() - began
	fs.hWrite.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpWrite, f.pf.Slot(), off, int64(len(p)), dur)
	return len(p), nil
}

// commitChanges writes the metadata-log entry chain and applies the words.
func (f *file) commitChanges(ctx *sim.Ctx, entry int, off, length, newSize int64, changes []wordChange) {
	fs := f.fs
	for _, c := range changes {
		if c.newLogOff != 0 {
			f.commitChangesSnap(ctx, entry, off, length, newSize, changes)
			return
		}
	}
	slots := make([]bitmapSlot, len(changes))
	for i, c := range changes {
		if c.n.recIdx < 0 {
			panic("core: committing a node without a record")
		}
		slots[i] = bitmapSlot{recIdx: c.n.recIdx, old: uint16(c.old), new: uint16(c.new)}
	}
	chainLen := (len(slots) + entrySlots - 1) / entrySlots
	if chainLen == 0 {
		chainLen = 1
	}
	group := fs.opSeq.Add(1)
	// Stamp the current cleaner epoch (0 forever while the cleaner is off).
	// Read inside the in-flight window: the checkpoint quiesce waits for this
	// op to retire, so an entry can never carry an epoch older than a
	// checkpoint that excludes it.
	epoch := uint8(fs.epoch.Load())
	extra := make([]int, 0, chainLen-1)
	for i := 1; i < chainLen; i++ {
		e := fs.mlog.claim(ctx, ctx.ID+i)
		extra = append(extra, e)
		lo := i * entrySlots
		hi := lo + entrySlots
		if hi > len(slots) {
			hi = len(slots)
		}
		fs.mlog.commit(ctx, e, f.pf.Slot(), off, length, newSize, slots[lo:hi], group, i, chainLen, epoch)
	}
	first := slots
	if len(first) > entrySlots {
		first = first[:entrySlots]
	}
	// The first entry persists last: it completes the chain, making it the
	// commit point.
	fs.mlog.commit(ctx, entry, f.pf.Slot(), off, length, newSize, first, group, 0, chainLen, epoch)
	fs.stats.MetaEntries.Add(ctx.ID, int64(chainLen))

	for _, c := range changes {
		c.n.word.Store(c.new)
		fs.dir.setWord(ctx, c.n.recIdx, c.new)
		if c.markStale {
			c.n.stale.Store(true)
		}
	}
	for _, e := range extra {
		fs.mlog.retire(ctx, e)
	}
}

// commitChangesSnap commits an operation that includes copy-on-write log
// swaps, using the wide entKindOpSnap format: each node contributes a word
// slot, plus a log-swap slot when its private log was relocated, and the
// chain commits atomically (first entry last). After the commit point the
// swaps are applied (record logOff updated, node repointed) and the old
// blocks' live references released — snapshot pins keep them alive for as
// long as any frozen view still reads them.
func (f *file) commitChangesSnap(ctx *sim.Ctx, entry int, off, length, newSize int64, changes []wordChange) {
	fs := f.fs
	slots := make([]snapSlot, 0, len(changes)+2)
	for _, c := range changes {
		if c.n.recIdx < 0 {
			panic("core: committing a node without a record")
		}
		slots = append(slots, snapSlot{recIdx: c.n.recIdx, kind: snapSlotWord,
			old: uint16(c.old), new: uint16(c.new)})
		if c.newLogOff != 0 {
			slots = append(slots, snapSlot{recIdx: c.n.recIdx, kind: snapSlotLogSwap,
				logOff: c.newLogOff})
		}
	}
	chainLen := (len(slots) + snapOpSlots - 1) / snapOpSlots
	if chainLen == 0 {
		chainLen = 1
	}
	group := fs.opSeq.Add(1)
	epoch := uint8(fs.epoch.Load())
	extra := make([]int, 0, chainLen-1)
	for i := 1; i < chainLen; i++ {
		e := fs.mlog.claim(ctx, ctx.ID+i)
		extra = append(extra, e)
		lo := i * snapOpSlots
		hi := lo + snapOpSlots
		if hi > len(slots) {
			hi = len(slots)
		}
		fs.mlog.commitSnap(ctx, e, f.pf.Slot(), off, length, newSize, slots[lo:hi], group, i, chainLen, epoch)
	}
	first := slots
	if len(first) > snapOpSlots {
		first = first[:snapOpSlots]
	}
	fs.mlog.commitSnap(ctx, entry, f.pf.Slot(), off, length, newSize, first, group, 0, chainLen, epoch)
	fs.stats.MetaEntries.Add(ctx.ID, int64(chainLen))

	for _, c := range changes {
		c.n.word.Store(c.new)
		fs.dir.setWord(ctx, c.n.recIdx, c.new)
		if c.newLogOff != 0 {
			fs.dir.setLogOff(ctx, c.n.recIdx, c.newLogOff)
			c.n.logOff = c.newLogOff
		}
		if c.markStale {
			c.n.stale.Store(true)
		}
	}
	for _, c := range changes {
		if c.newLogOff != 0 && c.oldLogOff != 0 {
			fs.prov.Alloc().Free(ctx, c.oldLogOff, c.n.span/LeafSpan)
		}
	}
	for _, e := range extra {
		fs.mlog.retire(ctx, e)
	}
}

// writeTo performs one pending store.
func (f *file) writeTo(ctx *sim.Ctx, w dataWrite) {
	if w.logOff != 0 {
		f.fs.dev.WriteNT(ctx, w.data, w.logOff+(w.abs-w.dst.offset()))
		return
	}
	if w.dst == nil {
		f.pf.DirectWrite(ctx, w.data, w.abs)
		return
	}
	f.fs.dev.WriteNT(ctx, w.data, w.dst.logOff+(w.abs-w.dst.offset()))
}

// planInterior handles a full-span target: the shadow toggle at coarse
// granularity. If the node's log is not the source of truth, the new data
// goes there (redo role); if it is, the new data goes to the fallback
// (nearest valid ancestor's log, or the file) and the node's bit flips off
// (undo role) — either way exactly one data write (§III-B1, Figure 3).
func (f *file) planInterior(ctx *sim.Ctx, s segment, data []byte) (dataWrite, wordChange, error) {
	n := s.n
	f.touchNode(n)
	snap := f.maxLiveSnap.Load() != 0
	if snap {
		f.cowPin(ctx, n)
	}
	f.ensureRecord(ctx, n)
	old := n.word.Load()
	if snap && (old&bitValid != 0 || (n.logOff != 0 && f.fs.prov.Alloc().RefCount(n.logOff) > 1)) {
		// Copy-on-write: the fallback and any pin-shared block are frozen, so
		// neither the undo toggle nor an in-place redo into a shared log is
		// allowed. Relocate the whole span to a fresh block; the old block's
		// live reference is released when the swap commits (pins keep it
		// alive as long as a snapshot reads it).
		newOff, err := f.fs.prov.Alloc().AllocContig(ctx, n.span/LeafSpan)
		if err != nil {
			return dataWrite{}, wordChange{}, err
		}
		f.fs.stats.SnapshotCoWRewrites.Add(1)
		return dataWrite{dst: n, abs: s.lo, data: data, logOff: newOff},
			wordChange{n: n, old: old, new: bitValid, markStale: old&bitExisting != 0,
				newLogOff: newOff, oldLogOff: n.logOff},
			nil
	}
	var dst *node
	var newWord uint64
	if old&bitValid != 0 {
		dst = f.lastValidLog(n) // nil = the file
		newWord = 0
		f.fs.stats.ToggleToFallback.Add(1)
	} else {
		if err := f.ensureLog(ctx, n); err != nil {
			return dataWrite{}, wordChange{}, err
		}
		dst = n
		newWord = bitValid
		f.fs.stats.ToggleToLog.Add(1)
	}
	return dataWrite{dst: dst, abs: s.lo, data: data},
		wordChange{n: n, old: old, new: newWord, markStale: old&bitExisting != 0},
		nil
}

// rangeData is one disjoint byte range of new data within a leaf.
type rangeData struct {
	lo, hi int64
	data   []byte
}

// planLeaf handles a leaf target: per-sub-unit shadow toggles with
// read-modify-write completion for partially covered units ("there will
// still be some redundant writes if the write is not aligned").
func (f *file) planLeaf(ctx *sim.Ctx, s segment, data []byte,
	writes []dataWrite, changes []wordChange) ([]dataWrite, []wordChange, error) {
	return f.planLeafRanges(ctx, s.n, []rangeData{{s.lo, s.hi, data}}, writes, changes)
}

// planLeafRanges plans one leaf's shadow toggle for any number of disjoint
// new-data ranges (WriteMulti may land several updates in one leaf; each
// sub-unit must toggle exactly once per operation).
func (f *file) planLeafRanges(ctx *sim.Ctx, n *node, ranges []rangeData,
	writes []dataWrite, changes []wordChange) ([]dataWrite, []wordChange, error) {
	f.touchNode(n)
	snap := f.maxLiveSnap.Load() != 0
	if snap {
		f.cowPin(ctx, n)
	}
	f.ensureRecord(ctx, n)
	unit := int64(LeafSpan / f.subBits())
	base := n.offset()

	old := n.word.Load()
	newWord := old
	fallback := f.lastValidLog(n)

	// Snapshot copy-on-write: while snapshots live, the fallback (ancestor
	// logs / the file) is frozen and pin-shared blocks must not be written.
	// If this operation would overwrite a valid unit in place or store into a
	// shared block, relocate the whole leaf log to a fresh block: surviving
	// valid units are copied over, hit units toggle ON in the new block, and
	// the (word, logOff) pair swaps atomically at commit.
	var newOff int64
	if snap && n.logOff != 0 {
		need := f.fs.prov.Alloc().RefCount(n.logOff) > 1
		if !need && old != 0 {
			for u := int64(0); u < int64(f.subBits()); u++ {
				if old&(1<<uint(u)) == 0 {
					continue
				}
				ulo, uhi := base+u*unit, base+(u+1)*unit
				for _, r := range ranges {
					if r.lo < uhi && ulo < r.hi {
						need = true
						break
					}
				}
				if need {
					break
				}
			}
		}
		if need {
			var err error
			newOff, err = f.fs.prov.Alloc().Alloc(ctx)
			if err != nil {
				return writes, changes, err
			}
			f.fs.stats.SnapshotCoWRewrites.Add(1)
		}
	}

	for u := int64(0); u < int64(f.subBits()); u++ {
		ulo := base + u*unit
		uhi := ulo + unit
		bit := uint64(1) << uint(u)
		// Collect the ranges intersecting this unit.
		var hit []rangeData
		covered := int64(0)
		for _, r := range ranges {
			if r.lo < uhi && ulo < r.hi {
				hit = append(hit, r)
				lo, hi := r.lo, r.hi
				if lo < ulo {
					lo = ulo
				}
				if hi > uhi {
					hi = uhi
				}
				covered += hi - lo
			}
		}
		if len(hit) == 0 {
			if newOff != 0 && old&bit != 0 {
				// Untouched valid unit: its content must follow the leaf to
				// the relocated block.
				buf := make([]byte, unit)
				f.fs.dev.Read(ctx, buf, n.logOff+u*unit)
				writes = appendWrite(writes, dataWrite{dst: n, abs: ulo, data: buf, logOff: newOff})
			}
			continue
		}
		var dst *node
		var dstOff int64
		if newOff != 0 {
			dst = n
			dstOff = newOff
			newWord |= bit
		} else if old&bit == 0 {
			if err := f.ensureLog(ctx, n); err != nil {
				return writes, changes, err
			}
			dst = n
			newWord |= bit
			f.fs.stats.ToggleToLog.Add(1)
		} else {
			dst = fallback
			newWord &^= bit
			f.fs.stats.ToggleToFallback.Add(1)
		}
		full := len(hit) == 1 && hit[0].lo <= ulo && hit[0].hi >= uhi
		if full {
			r := hit[0]
			writes = appendWrite(writes, dataWrite{dst: dst, abs: ulo, data: r.data[ulo-r.lo : uhi-r.lo], logOff: dstOff})
			continue
		}
		// Partial unit: complete with the current latest content unless the
		// hits jointly cover it, then patch every hit in.
		buf := make([]byte, unit)
		if covered < unit {
			f.resolveData(ctx, ulo, uhi, buf)
		}
		for _, r := range hit {
			lo, hi := r.lo, r.hi
			if lo < ulo {
				lo = ulo
			}
			if hi > uhi {
				hi = uhi
			}
			copy(buf[lo-ulo:], r.data[lo-r.lo:hi-r.lo])
		}
		writes = appendWrite(writes, dataWrite{dst: dst, abs: ulo, data: buf, logOff: dstOff})
	}
	wc := wordChange{n: n, old: old, new: newWord}
	if newOff != 0 {
		wc.newLogOff, wc.oldLogOff = newOff, n.logOff
	}
	return writes, append(changes, wc), nil
}

// appendWrite coalesces contiguous stores to the same destination.
func appendWrite(writes []dataWrite, w dataWrite) []dataWrite {
	if k := len(writes) - 1; k >= 0 {
		last := &writes[k]
		if last.dst == w.dst && last.logOff == w.logOff && last.abs+int64(len(last.data)) == w.abs {
			last.data = append(last.data[:len(last.data):len(last.data)], w.data...)
			return writes
		}
	}
	return append(writes, w)
}

// subBits returns the effective leaf valid-bit count (1 in fixed-granularity
// mode: whole-block logging only).
func (f *file) subBits() int {
	if !f.fs.opts.MultiGranularity {
		return 1
	}
	return f.fs.opts.SubBits
}

// setExistingPath sets the existing bit on every ancestor (root-first),
// performing the deferred child cleaning where a coarse update left stale
// descendants (§III-B2, lazy cleaning for bitmap).
func (f *file) setExistingPath(ctx *sim.Ctx, ancestors []*node) {
	snap := f.maxLiveSnap.Load() != 0
	for _, a := range ancestors {
		if a.stale.Load() {
			f.cleanChildren(ctx, a)
		}
		if !a.existing() {
			if snap {
				// Freeze existing=0 first: a snapshot that saw this node as a
				// cut must not start descending into children populated after
				// it froze.
				f.cowPin(ctx, a)
			}
			f.ensureRecord(ctx, a)
			w := a.word.Load() | bitExisting
			a.word.Store(w)
			f.fs.dir.setWord(ctx, a.recIdx, w)
		}
	}
}

// cleanChildren clears the (stale) bitmap words of a's direct children,
// pushing the staleness marker one level down — the amortized subtree
// invalidation.
func (f *file) cleanChildren(ctx *sim.Ctx, a *node) {
	f.treeMu.Lock(ctx)
	defer f.treeMu.Unlock(ctx)
	if !a.stale.Load() {
		return
	}
	snap := f.maxLiveSnap.Load() != 0
	for i := range a.children {
		c := a.children[i].Load()
		if c == nil {
			continue
		}
		w := c.word.Load()
		if w != 0 {
			if snap {
				// The zeroed word hides state a snapshot may still need; pin
				// the child first. The pin's block reference also forces the
				// next write to this child onto a fresh block instead of the
				// (now frozen) one.
				f.cowPin(ctx, c)
			}
			c.word.Store(0)
			if c.recIdx >= 0 {
				f.fs.dir.setWord(ctx, c.recIdx, 0)
			}
		}
		if !c.leaf && (w&bitExisting != 0 || c.stale.Load()) {
			c.stale.Store(true)
		}
	}
	f.fs.dev.Fence(ctx)
	a.stale.Store(false)
}
