package core

import (
	"fmt"
	"sort"

	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
)

// Mount rebuilds an MGSP file system from a device image after a crash and
// runs the §III-D recovery protocol:
//
//  1. the underlying file table (pmfile) is recovered;
//  2. the node directory is scanned, rebuilding every file's radix tree and
//     re-registering the shadow logs with the volatile allocator;
//  3. unretired metadata-log entries with valid checksums are replayed,
//     completing the interrupted operations' bitmap flips ("by comparing the
//     bitmap saved in the metadata log with the actual bitmap, MGSP can
//     complete the remaining metadata modification");
//  4. lazy-cleaning staleness markers are recomputed;
//  5. every log is written back into its file ("and then write all the logs
//     back"), leaving a clean tree.
//
// The virtual time charged to ctx during Mount is the recovery time the
// paper reports (186 ms for a 1 GiB file with 48 K log entries).
func Mount(ctx *sim.Ctx, dev *nvm.Device, opts Options) (*FS, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	began := ctx.Now()
	prov, err := pmfile.Recover(ctx, dev, MetaBytes(dev.Size()))
	if err != nil {
		return nil, err
	}
	fs := mkFS(prov, opts)

	// Checkpoint fast path: a persisted checkpoint means the cleaner wrote
	// back everything up to its epoch, and the directory high-water mark
	// bounds the record scan. The mark is honored even when this mount runs
	// without a cleaner — and kept maintained (tracking), or later records
	// could land beyond a bound a future mount still trusts.
	ck, ckOK := readCheckpointCell(dev, fs.ckptOff)
	if ckOK {
		fs.epoch.Store(ck.epoch)
	}
	scanTo := fs.dir.cap
	if hw := int64(dev.Load8(fs.ckptOff + ckptDirHW)); hw > 0 {
		if hw < scanTo {
			scanTo = hw
		}
		fs.dir.tracking = true
		fs.dir.hwPersisted = hw
	}

	bySlot := make(map[int]*file)
	for name, pf := range prov.Files() {
		f := fs.newFile(pf, name)
		f.size.Store(pf.Size())
		fs.files[name] = f
		bySlot[pf.Slot()] = f
	}

	// Pass 2: node directory scan. Live tree records rebuild the radix trees;
	// snapshot pin records (tagSnap) are collected and attached after the
	// snapshot table itself is recovered from the metadata log, because
	// whether a pin is still needed depends on which snapshots are live.
	// Blocks are re-registered with MarkRef: a log block may legitimately be
	// referenced by a live record AND one or more pins.
	type pendPin struct {
		f      *file
		span   int64
		nidx   int64
		recIdx int64
		id     uint64
		logOff int64
		word   uint64
	}
	var pendPins []pendPin
	var maxSeq uint64 // running max of births, pin ids and snapshot ids
	nodes := make(map[int64]*node) // recIdx -> node
	var buf [recSize]byte
	var maxIdx int64 = -1
	used := make(map[int64]bool)
	for idx := int64(0); idx < scanTo; idx++ {
		tag := dev.Load8(fs.dir.off(idx) + recTag)
		ctx.Advance(fs.costs.IndexStep)
		if tag&tagInUse == 0 {
			continue
		}
		dev.Read(ctx, buf[:], fs.dir.off(idx))
		slot, spanExp, nidx := unpackTag(tag)
		f := bySlot[slot]
		if f == nil {
			// Record of a removed file: retire it.
			fs.dir.clear(ctx, idx)
			continue
		}
		span := int64(LeafSpan)
		for e := 0; e < spanExp; e++ {
			span *= int64(opts.Degree)
		}
		logOff := int64(le64(buf[recLogOff:]))
		word := le64(buf[recWord:])
		birth := le64(buf[recBirth:])
		if birth > maxSeq {
			maxSeq = birth
		}
		used[idx] = true
		if idx > maxIdx {
			maxIdx = idx
		}
		if tag&tagSnap != 0 {
			id := le64(buf[recSnapID:])
			if id > maxSeq {
				maxSeq = id
			}
			if logOff != 0 && pinRefsLog(span == LeafSpan, word) {
				fs.prov.Alloc().MarkRef(logOff, span/LeafSpan)
			}
			pendPins = append(pendPins, pendPin{f, span, nidx, idx, id, logOff, word})
			continue
		}
		n, err := f.attachNode(ctx, span, nidx)
		if err != nil {
			return nil, fmt.Errorf("core: record %d: %w", idx, err)
		}
		n.recIdx = idx
		n.logOff = logOff
		n.word.Store(word)
		n.birth.Store(birth)
		if logOff != 0 {
			fs.prov.Alloc().MarkRef(logOff, span/LeafSpan)
		}
		nodes[idx] = n
	}
	fs.dir.next = maxIdx + 1
	for idx := int64(0); idx <= maxIdx; idx++ {
		if !used[idx] {
			fs.dir.free = append(fs.dir.free, idx)
		}
	}
	if fs.dir.tracking && maxIdx >= 0 {
		// First mount with tracking on an image that had no mark yet: persist
		// a bound covering everything the scan found.
		fs.dir.noteHighWater(ctx, maxIdx)
	}

	// Pass 3: metadata log replay — complete chains only. Snapshot lifecycle
	// entries are routed out of the chain grouping: a live create entry is a
	// live snapshot (it deliberately outlives operations and predates any
	// checkpoint epoch), and a drop entry cancels its create (the drop
	// committed before the create was retired).
	type chainKey struct {
		slot  int
		group uint32
	}
	type liveCreate struct {
		idx int
		e   logEntry
	}
	var creates []liveCreate
	dropped := make(map[uint64]bool)
	chains := make(map[chainKey][]logEntry)
	var ebuf [entrySize]byte
	scanSlot := func(i int) {
		dev.Read(ctx, ebuf[:], fs.mlog.off(i))
		e, ok := decodeEntry(ebuf[:])
		if !ok {
			return
		}
		switch e.kind {
		case entKindCursor:
			// Area bookkeeping, not an operation; its fileSlot is an area id
			// and must never be grouped into a file's chains.
		case entKindSnapCreate:
			creates = append(creates, liveCreate{i, e})
		case entKindSnapDrop:
			dropped[uint64(e.offset)] = true
		default:
			chains[chainKey{e.fileSlot, e.group}] = append(chains[chainKey{e.fileSlot, e.group}], e)
		}
	}
	if fs.mlog.areas == 0 {
		for i := 0; i < fs.mlog.entries; i++ {
			scanSlot(i)
		}
	} else {
		// Per-worker home areas: each area's durable cursor (seeded from the
		// device when the log was attached) is an upper bound on committed op
		// slots — no entry ever commits above its area's persisted cursor, so
		// the scan stops there. A torn or missing cursor only widens the scan
		// back to the full area; it is never load-bearing for correctness.
		for a := 0; a < fs.mlog.areas; a++ {
			bound := metaAreaOpSlots
			if fs.mlog.areaDurable[a].Load() {
				bound = int(fs.mlog.areaHW[a].Load())
				fs.stats.SlotsBounded.Add(int64(metaAreaOpSlots - bound))
			}
			base := a * metaAreaSlots
			for s := 1; s <= bound; s++ {
				scanSlot(base + s)
			}
		}
	}
	ckEpoch := uint8(fs.epoch.Load())
	for key, es := range chains {
		if len(es) != es[0].chainLen {
			continue // incomplete chain: the operation never committed
		}
		if ckOK && int8(es[0].epoch-ckEpoch) < 0 {
			// Stamped strictly before the checkpoint epoch (signed 8-bit
			// window): the cleaner already wrote those subtrees back, so the
			// entry's bitmap flips are dead and may reference records the
			// cleaner has since retired.
			fs.stats.EntriesSkipped.Add(int64(len(es)))
			continue
		}
		f := bySlot[key.slot]
		if f == nil {
			continue
		}
		fs.stats.EntriesReplayed.Add(int64(len(es)))
		for _, e := range es {
			for _, s := range e.slots {
				n := nodes[s.recIdx]
				if n == nil {
					return nil, fmt.Errorf("core: metadata entry references unknown record %d", s.recIdx)
				}
				n.word.Store(uint64(s.new))
				fs.dir.setWord(ctx, s.recIdx, uint64(s.new))
			}
			for _, s := range e.snaps {
				n := nodes[s.recIdx]
				if n == nil {
					return nil, fmt.Errorf("core: metadata entry references unknown record %d", s.recIdx)
				}
				switch s.kind {
				case snapSlotWord:
					n.word.Store(uint64(s.new))
					fs.dir.setWord(ctx, s.recIdx, uint64(s.new))
				case snapSlotLogSwap:
					// Complete the copy-on-write relocation: repoint the
					// record at the fresh block (crashed before the swap was
					// applied) or do nothing (the record already points
					// there). The superseded block stays alive only through
					// its snapshot pins.
					if n.logOff != s.logOff {
						old := n.logOff
						fs.dir.setLogOff(ctx, s.recIdx, s.logOff)
						n.logOff = s.logOff
						fs.prov.Alloc().MarkRef(s.logOff, n.span/LeafSpan)
						if old != 0 {
							fs.prov.Alloc().Free(ctx, old, n.span/LeafSpan)
						}
					}
				}
			}
			if e.fileSize > f.size.Load() {
				f.size.Store(e.fileSize)
				f.pf.SetSize(ctx, e.fileSize)
			}
		}
	}

	// Rebuild the snapshot table: a snapshot is live iff its create entry is
	// live and no drop entry cancels it. Live create entries keep their log
	// slot (and its claim) — they are retired only by DropSnapshot.
	keep := make(map[int]bool)
	for _, lc := range creates {
		f := bySlot[lc.e.fileSlot]
		id := uint64(lc.e.offset)
		if f == nil || dropped[id] {
			continue // zeroed below; pins become orphans and are collected
		}
		keep[lc.idx] = true
		fs.mlog.claims[lc.idx].Store(true)
		// The live mark occupies its slot indefinitely; the volatile area
		// high-water must cover it so no later cursor persists below it.
		fs.mlog.floorHW(lc.idx)
		f.snaps = append(f.snaps, &snapshot{id: id, size: lc.e.fileSize, epoch: lc.e.epoch, entry: lc.idx})
		f.refs.Add(1)
		if id > f.maxLiveSnap.Load() {
			f.maxLiveSnap.Store(id)
		}
		if id > maxSeq {
			maxSeq = id
		}
	}
	for _, f := range fs.files {
		sort.Slice(f.snaps, func(i, j int) bool { return f.snaps[i].id < f.snaps[j].id })
	}
	for i := 0; i < fs.mlog.entries; i++ {
		if keep[i] {
			continue
		}
		if fs.mlog.areas > 0 && i%metaAreaSlots == 0 {
			// Area cursor slot: a valid cursor keeps bounding future mounts
			// (a torn one stays torn and the area simply scans fully).
			continue
		}
		// Checksum first, then length — same anti-resurrection order as
		// metaLog.retire: a slot must never hold a checksum-valid corpse that
		// a torn future commit could revive by rewriting the length word.
		// Already-clean slots (the common case on a mostly-idle log) are
		// skipped so the sweep doesn't pay two stores per empty slot.
		off := fs.mlog.off(i)
		if dev.Load8(off+entLen) == 0 && dev.Load8(off+entCksum) == 0 {
			continue
		}
		dev.Store8(ctx, off+entCksum, 0)
		dev.Store8(ctx, off+entLen, 0)
	}
	dev.Fence(ctx)

	// Attach pins to their nodes; orphans (no live snapshot old enough to
	// need them — e.g. a crash between pin creation and the operation's
	// commit, or an interrupted drop) release their record and block
	// reference.
	for _, pp := range pendPins {
		needed := false
		for _, s := range pp.f.snaps {
			if s.id <= pp.id {
				needed = true
				break
			}
		}
		if !needed {
			fs.dir.clear(ctx, pp.recIdx)
			if pp.logOff != 0 && pinRefsLog(pp.span == LeafSpan, pp.word) {
				fs.prov.Alloc().Free(ctx, pp.logOff, pp.span/LeafSpan)
			}
			continue
		}
		n, err := pp.f.attachNode(ctx, pp.span, pp.nidx)
		if err != nil {
			return nil, fmt.Errorf("core: pin record %d: %w", pp.recIdx, err)
		}
		if pp.f.pins == nil {
			pp.f.pins = make(map[*node][]*pin)
		}
		pp.f.pins[n] = append(pp.f.pins[n], &pin{recIdx: pp.recIdx, id: pp.id, logOff: pp.logOff, word: pp.word})
		if pp.id > n.snapSeq.Load() {
			n.snapSeq.Store(pp.id)
		}
	}
	for _, f := range fs.files {
		for _, ps := range f.pins {
			sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
		}
	}
	fs.snapSeq.Store(maxSeq)

	// Pass 4+5: restore lost existing-bit hints, recompute staleness
	// markers, then write all logs back. Files with live snapshots keep
	// their trees: write-back would overwrite the frozen fallback.
	for _, f := range fs.files {
		if r := f.root.Load(); r != nil {
			restoreExisting(r)
			recomputeStale(r)
		}
		if f.maxLiveSnap.Load() == 0 {
			f.writeback(ctx)
		}
	}
	dur := ctx.Now() - began
	fs.hMount.Observe(dur)
	fs.trace.Record(ctx.ID, obs.OpRecovery, 0, 0,
		fs.stats.EntriesReplayed.Load(), dur)
	return fs, nil
}

// restoreExisting rebuilds the existing bits of interior nodes that have no
// persistent record (e.g. a root added by mid-run tree growth whose hint
// only ever lived in DRAM). existing=1 is a safe over-approximation, so any
// unrecorded node with live descendants gets it; recorded nodes keep their
// persisted word — a committed existing=0 legitimately shadows stale
// descendants and must not be resurrected. Returns whether the subtree
// carries any bits.
func restoreExisting(n *node) bool {
	if n.leaf {
		return n.word.Load() != 0
	}
	childLive := false
	for i := range n.children {
		if c := n.children[i].Load(); c != nil {
			if restoreExisting(c) {
				childLive = true
			}
		}
	}
	if childLive && n.recIdx < 0 {
		n.word.Store(n.word.Load() | bitExisting)
	}
	return n.word.Load() != 0
}

// attachNode finds or creates the (span, idx) node in f's tree, growing the
// tree to the persisted capacity first.
func (f *file) attachNode(ctx *sim.Ctx, span, idx int64) (*node, error) {
	capacity := f.pf.Capacity()
	if capacity < span*(idx+1) {
		capacity = span * (idx + 1)
	}
	f.ensureTree(ctx, capacity)
	cur := f.root.Load()
	if span > cur.span {
		return nil, fmt.Errorf("node span %d exceeds root span %d", span, cur.span)
	}
	for cur.span > span {
		cs := cur.childSpan(f.fs.opts.Degree)
		ci := (idx*span - cur.offset()) / cs
		if ci < 0 || ci >= int64(f.fs.opts.Degree) {
			return nil, fmt.Errorf("node (span=%d idx=%d) outside tree", span, idx)
		}
		cur = f.ensureChild(ctx, cur, ci)
	}
	if cur.idx != idx {
		return nil, fmt.Errorf("node index mismatch: got %d want %d", cur.idx, idx)
	}
	return cur, nil
}

// recomputeStale rebuilds the volatile lazy-cleaning markers: an interior
// node whose existing bit is clear but whose descendants still carry bits
// has a stale subtree. Returns whether the subtree carries any bits.
func recomputeStale(n *node) bool {
	if n.leaf {
		return n.word.Load() != 0
	}
	childBits := false
	for i := range n.children {
		if c := n.children[i].Load(); c != nil {
			if recomputeStale(c) {
				childBits = true
			}
		}
	}
	if childBits && n.word.Load()&bitExisting == 0 {
		n.stale.Store(true)
	}
	return childBits || n.word.Load() != 0
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
