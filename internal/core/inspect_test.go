package core

import (
	"strings"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func TestInspectReportsStructures(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := MustNew(dev, DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "alpha")
	f.WriteAt(ctx, make([]byte, 1<<20), 0)
	f.WriteAt(ctx, make([]byte, 512), 100)

	// Crash mid-op so a live metadata entry remains.
	dev.ArmCrash(2, 1)
	func() {
		defer func() { recover() }()
		f.WriteAt(ctx, make([]byte, 4096), 8192)
	}()
	dev.Recover()

	report, err := Inspect(dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alpha", "slot=0", "shadow-log records:", "metadata log:"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// Inspect must not modify the device: a second run is identical.
	report2, err := Inspect(dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report != report2 {
		t.Fatal("Inspect is not read-only/deterministic")
	}
	// And Mount must still succeed afterwards.
	if _, err := Mount(sim.NewCtx(1, 1), dev, DefaultOptions()); err != nil {
		t.Fatalf("Mount after Inspect: %v", err)
	}
}

func TestInspectRejectsBadOptions(t *testing.T) {
	dev := nvm.New(4<<20, sim.ZeroCosts())
	bad := DefaultOptions()
	bad.Degree = 0
	if _, err := Inspect(dev, bad); err == nil {
		t.Fatal("invalid options accepted")
	}
}
