package alloc

import (
	"sync"
	"testing"
	"testing/quick"

	"mgsp/internal/sim"
)

func newTestAllocator(start, size, bs int64) (*Allocator, *sim.Ctx) {
	costs := sim.ZeroCosts()
	return New(start, size, bs, &costs), sim.NewCtx(0, 1)
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a, ctx := newTestAllocator(0, 64*4096, 4096)
	off, err := a.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if off%4096 != 0 {
		t.Fatalf("offset %d not block aligned", off)
	}
	if !a.Allocated(off) {
		t.Fatal("block not marked allocated")
	}
	a.Free(ctx, off, 1)
	if a.Allocated(off) {
		t.Fatal("block still allocated after free")
	}
	a.Drain(ctx) // return the refill batch's cached residue
	if a.FreeBlocks() != 64 {
		t.Fatalf("free blocks = %d, want 64", a.FreeBlocks())
	}
}

func TestAllocRespectsRegionStart(t *testing.T) {
	a, ctx := newTestAllocator(1<<20, 16*4096, 4096)
	off, err := a.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if off < 1<<20 {
		t.Fatalf("offset %d below region start", off)
	}
}

func TestAllocContig(t *testing.T) {
	a, ctx := newTestAllocator(0, 64*4096, 4096)
	off, err := a.AllocContig(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		if !a.Allocated(off + i*4096) {
			t.Fatalf("block %d of contig run not allocated", i)
		}
	}
	if a.FreeBlocks() != 48 {
		t.Fatalf("free blocks = %d, want 48", a.FreeBlocks())
	}
}

func TestAllocExhaustion(t *testing.T) {
	a, ctx := newTestAllocator(0, 4*4096, 4096)
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(ctx); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(ctx); err != ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestContigExhaustionWithFragmentation(t *testing.T) {
	a, ctx := newTestAllocator(0, 8*4096, 4096)
	var offs []int64
	for i := 0; i < 8; i++ {
		off, err := a.Alloc(ctx)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free every other block: 4 free blocks but no contiguous pair.
	for i := 0; i < 8; i += 2 {
		a.Free(ctx, offs[i], 1)
	}
	if _, err := a.AllocContig(ctx, 2); err != ErrNoSpace {
		t.Fatalf("fragmented contig alloc err = %v, want ErrNoSpace", err)
	}
	if _, err := a.Alloc(ctx); err != nil {
		t.Fatalf("single-block alloc should succeed: %v", err)
	}
}

func TestContigWrapAroundHint(t *testing.T) {
	a, ctx := newTestAllocator(0, 8*4096, 4096)
	// Push the hint near the end, then free the start and ask for a run
	// that only fits at the start.
	first, err := a.AllocContig(ctx, 6)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(ctx, first, 6)
	if _, err := a.AllocContig(ctx, 2); err != nil { // blocks 6,7
		t.Fatal(err)
	}
	off, err := a.AllocContig(ctx, 6) // must wrap to block 0
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Fatalf("wrap-around alloc at %d, want 0", off)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a, ctx := newTestAllocator(0, 4*4096, 4096)
	off, _ := a.Alloc(ctx)
	a.Free(ctx, off, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(ctx, off, 1)
}

func TestFreeBulk(t *testing.T) {
	a, ctx := newTestAllocator(0, 64*4096, 4096)
	var exts []Extent
	for _, n := range []int64{3, 1, 5} {
		off, err := a.AllocContig(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		exts = append(exts, Extent{Off: off, N: n})
	}
	a.Drain(ctx) // the n=1 alloc rode the shard cache; return its batch
	if a.FreeBlocks() != 64-9 {
		t.Fatalf("free = %d, want %d", a.FreeBlocks(), 64-9)
	}
	a.FreeBulk(ctx, exts)
	if a.FreeBlocks() != 64 || a.UsedBlocks() != 0 {
		t.Fatalf("after FreeBulk: free=%d used=%d, want 64/0", a.FreeBlocks(), a.UsedBlocks())
	}
	// The released runs are allocatable again.
	if _, err := a.AllocContig(ctx, 9); err != nil {
		t.Fatalf("realloc after FreeBulk: %v", err)
	}
	a.FreeBulk(ctx, nil) // no-op
}

func TestFreeBulkDoubleFreePanics(t *testing.T) {
	a, ctx := newTestAllocator(0, 8*4096, 4096)
	off, _ := a.AllocContig(ctx, 2)
	a.Free(ctx, off, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeBulk double free did not panic")
		}
	}()
	a.FreeBulk(ctx, []Extent{{Off: off, N: 2}})
}

func TestMarkAllocatedForRecovery(t *testing.T) {
	a, _ := newTestAllocator(0, 8*4096, 4096)
	if err := a.MarkAllocated(4096, 2); err != nil {
		t.Fatal(err)
	}
	if !a.Allocated(4096) || !a.Allocated(8192) {
		t.Fatal("MarkAllocated did not mark")
	}
	if err := a.MarkAllocated(8192, 1); err == nil {
		t.Fatal("re-marking allocated block must error")
	}
	if a.FreeBlocks() != 6 {
		t.Fatalf("free = %d, want 6", a.FreeBlocks())
	}
}

func TestReset(t *testing.T) {
	a, ctx := newTestAllocator(0, 8*4096, 4096)
	for i := 0; i < 8; i++ {
		a.Alloc(ctx)
	}
	a.Reset()
	if a.FreeBlocks() != 8 || a.UsedBlocks() != 0 {
		t.Fatal("Reset did not free all blocks")
	}
}

// TestNoOverlapProperty: any interleaving of allocations yields
// non-overlapping block runs.
func TestNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		a, ctx := newTestAllocator(0, 1024*4096, 4096)
		type run struct{ off, n int64 }
		var runs []run
		for _, s := range sizes {
			n := int64(s)%8 + 1
			off, err := a.AllocContig(ctx, n)
			if err != nil {
				return true // exhaustion is fine
			}
			for _, r := range runs {
				if off < r.off+r.n*4096 && r.off < off+n*4096 {
					return false // overlap
				}
			}
			runs = append(runs, run{off, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a, _ := newTestAllocator(0, 4096*4096, 4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id))
			var mine []int64
			for i := 0; i < 200; i++ {
				off, err := a.Alloc(ctx)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				mine = append(mine, off)
				if len(mine) > 10 {
					a.Free(ctx, mine[0], 1)
					mine = mine[1:]
				}
			}
			for _, off := range mine {
				a.Free(ctx, off, 1)
			}
		}(w)
	}
	wg.Wait()
	a.Drain(sim.NewCtx(0, 0))
	if a.UsedBlocks() != 0 {
		t.Fatalf("leak: %d blocks still used", a.UsedBlocks())
	}
}

// TestShardCacheRefill verifies the single-block fast path: the first alloc
// pulls a refill batch into the worker's shard, subsequent allocs are cache
// hits that touch neither the global lock nor the bitmap scan, and Drain
// returns exactly the cached residue.
func TestShardCacheRefill(t *testing.T) {
	a, ctx := newTestAllocator(0, 64*4096, 4096)
	first, err := a.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.UsedBlocks(); got != refillBatch {
		t.Fatalf("after first alloc UsedBlocks = %d, want refill batch %d", got, refillBatch)
	}
	seen := map[int64]bool{first: true}
	for i := 1; i < refillBatch; i++ {
		off, err := a.Alloc(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			t.Fatalf("cache handed out duplicate block %d", off)
		}
		seen[off] = true
		if got := a.UsedBlocks(); got != refillBatch {
			t.Fatalf("cache hit %d grew UsedBlocks to %d", i, got)
		}
	}
	// Batch exhausted: the next alloc refills again.
	if _, err := a.Alloc(ctx); err != nil {
		t.Fatal(err)
	}
	if got := a.UsedBlocks(); got != 2*refillBatch {
		t.Fatalf("second refill UsedBlocks = %d, want %d", got, 2*refillBatch)
	}
	if got := a.Drain(ctx); got != refillBatch-1 {
		t.Fatalf("Drain released %d, want %d", got, refillBatch-1)
	}
	if got := a.UsedBlocks(); got != int64(refillBatch)+1 {
		t.Fatalf("after drain UsedBlocks = %d, want %d", got, refillBatch+1)
	}
}

// TestShardCacheStealUnderPressure fills the device through one worker's
// shard, then has a worker on a different shard allocate: the global pool is
// empty but the first shard's cache must be reclaimed rather than returning
// ErrNoSpace while free blocks exist.
func TestShardCacheStealUnderPressure(t *testing.T) {
	a, _ := newTestAllocator(0, 32*4096, 4096)
	// Worker 0 allocates 17 blocks; with free dropping below 2*refillBatch
	// the refills degrade to singles, but earlier batches leave a cached
	// surplus on worker 0's shard.
	c0 := sim.NewCtx(0, 1)
	for i := 0; i < 17; i++ {
		if _, err := a.Alloc(c0); err != nil {
			t.Fatalf("warm alloc %d: %v", i, err)
		}
	}
	// A worker hashing to a different shard drains the rest of the device.
	c1 := sim.NewCtx(1, 2)
	got := 0
	for {
		if _, err := a.Alloc(c1); err != nil {
			break
		}
		got++
	}
	if used := a.UsedBlocks(); used != 32 {
		t.Fatalf("device not fully allocatable under shard hoarding: used %d of 32", used)
	}
	if got < 1 {
		t.Fatal("second worker allocated nothing despite cached free blocks")
	}
}

func TestUsedBlocks(t *testing.T) {
	a, ctx := newTestAllocator(0, 16*4096, 4096)
	a.AllocContig(ctx, 5)
	if got := a.UsedBlocks(); got != 5 {
		t.Fatalf("UsedBlocks = %d, want 5", got)
	}
}

// TestRefcounts drives the snapshot-pinning reference-count path through a
// table of scenarios, including double frees and refcount underflow, which
// must panic rather than silently hand one block to two owners.
func TestRefcounts(t *testing.T) {
	cases := []struct {
		name      string
		run       func(a *Allocator, ctx *sim.Ctx)
		wantPanic bool
		wantUsed  int64
	}{
		{
			name: "ref then free keeps block until last unref",
			run: func(a *Allocator, ctx *sim.Ctx) {
				off, _ := a.Alloc(ctx)
				a.Ref(ctx, off, 1) // refs = 2
				a.Free(ctx, off, 1)
				if !a.Allocated(off) {
					panic("block freed while still referenced")
				}
				if got := a.RefCount(off); got != 1 {
					panic("refcount after unref wrong")
				}
				a.Free(ctx, off, 1)
			},
			wantUsed: 0,
		},
		{
			name: "fresh alloc starts at refcount 1",
			run: func(a *Allocator, ctx *sim.Ctx) {
				off, _ := a.Alloc(ctx)
				if a.RefCount(off) != 1 {
					panic("fresh block refcount != 1")
				}
			},
			wantUsed: 1,
		},
		{
			name: "double free panics",
			run: func(a *Allocator, ctx *sim.Ctx) {
				off, _ := a.Alloc(ctx)
				a.Free(ctx, off, 1)
				a.Free(ctx, off, 1)
			},
			wantPanic: true,
		},
		{
			name: "refcount underflow via FreeBulk panics",
			run: func(a *Allocator, ctx *sim.Ctx) {
				off, _ := a.AllocContig(ctx, 4)
				a.FreeBulk(ctx, []Extent{{Off: off, N: 4}})
				a.FreeBulk(ctx, []Extent{{Off: off, N: 4}})
			},
			wantPanic: true,
		},
		{
			name: "FreeBulk partial underflow panics",
			run: func(a *Allocator, ctx *sim.Ctx) {
				off, _ := a.AllocContig(ctx, 2)
				a.Ref(ctx, off, 1) // first block refs=2, second refs=1
				a.FreeBulk(ctx, []Extent{{Off: off, N: 2}})
				// First block survives (refs 1), second is free again.
				a.FreeBulk(ctx, []Extent{{Off: off, N: 2}})
			},
			wantPanic: true,
		},
		{
			name: "ref of unallocated block panics",
			run: func(a *Allocator, ctx *sim.Ctx) {
				a.Ref(ctx, 0, 1)
			},
			wantPanic: true,
		},
		{
			name: "MarkRef allocates then bumps",
			run: func(a *Allocator, ctx *sim.Ctx) {
				a.MarkRef(4096, 2)
				a.MarkRef(4096, 1)
				if a.RefCount(4096) != 2 || a.RefCount(2*4096) != 1 {
					panic("MarkRef counts wrong")
				}
				a.Free(ctx, 4096, 2) // 4096 down to 1 ref, 8192 freed
				a.Free(ctx, 4096, 1)
			},
			wantUsed: 0,
		},
		{
			name: "bulk free of multi-ref extent",
			run: func(a *Allocator, ctx *sim.Ctx) {
				off, _ := a.AllocContig(ctx, 8)
				a.Ref(ctx, off, 8)
				a.FreeBulk(ctx, []Extent{{Off: off, N: 8}})
				for i := int64(0); i < 8; i++ {
					if !a.Allocated(off + i*4096) {
						panic("pinned extent freed early")
					}
				}
				a.FreeBulk(ctx, []Extent{{Off: off, N: 8}})
			},
			wantUsed: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, ctx := newTestAllocator(0, 64*4096, 4096)
			panicked := false
			func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				tc.run(a, ctx)
			}()
			if panicked != tc.wantPanic {
				t.Fatalf("panicked = %v, want %v", panicked, tc.wantPanic)
			}
			if !tc.wantPanic {
				a.Drain(ctx)
				if got := a.UsedBlocks(); got != tc.wantUsed {
					t.Fatalf("UsedBlocks = %d, want %d", got, tc.wantUsed)
				}
			}
		})
	}
}

func TestRangeVisitsAllocatedBlocks(t *testing.T) {
	a, ctx := newTestAllocator(0, 16*4096, 4096)
	off, _ := a.AllocContig(ctx, 3)
	a.Ref(ctx, off+4096, 1)
	var offs []int64
	var counts []int
	a.Range(func(o int64, refs int) bool {
		offs = append(offs, o)
		counts = append(counts, refs)
		return true
	})
	if len(offs) != 3 || offs[0] != off || counts[1] != 2 || counts[0] != 1 {
		t.Fatalf("Range = %v / %v", offs, counts)
	}
}
