// Package alloc provides a block allocator for regions of the simulated NVM
// device. Allocation state lives in DRAM and is rebuilt after a crash by each
// file system's recovery scan (the approach NOVA takes: the kernel keeps the
// free list volatile and reconstructs it from the persistent logs at mount).
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"mgsp/internal/sim"
)

// ErrNoSpace is returned when the region cannot satisfy an allocation.
var ErrNoSpace = errors.New("alloc: out of space")

const (
	// allocShards is the number of per-worker free-list shards fed by the
	// global bitmap. Power of two so worker hashes reduce with a mask.
	allocShards = 16
	// refillBatch is how many single blocks one global scan pulls into a
	// shard. The global mutex is a sim.Mutex, so every critical section
	// books exclusive VIRTUAL time — at 16+ workers a per-op acquisition
	// serializes the whole fleet no matter how short the real section is.
	// Batching moves that cost to one booking per refillBatch allocations.
	refillBatch = 8
)

// allocShard is one worker-sharded free list: device offsets of single
// blocks pre-allocated from the global bitmap (bit set, refcount 1) and
// parked here for lock-free handout. The mutex is a plain sync.Mutex —
// shard traffic is worker-private by construction, so it models no
// virtual-time contention; a cached pop charges only the cost model's
// Atomic latency.
type allocShard struct {
	mu   sync.Mutex
	free []int64
	_    [40]byte // keep neighboring shards off one cache line
}

// Allocator hands out fixed-size blocks from a contiguous device region.
// It is safe for concurrent use; each allocation charges the cost model's
// BlockAlloc time to the caller (amortized over a refill batch for
// single-block allocations, which ride per-worker shard caches).
type Allocator struct {
	mu        sim.Mutex
	start     int64
	blockSize int64
	nblocks   int64
	free      int64
	hint      int64
	bitmap    []uint64 // 1 = allocated
	refs      []uint16 // per-block reference count; nonzero iff bitmap bit set
	costs     *sim.Costs

	shards [allocShards]allocShard
}

// New creates an allocator over [start, start+size) with the given block
// size. size is truncated to a whole number of blocks.
func New(start, size, blockSize int64, costs *sim.Costs) *Allocator {
	if blockSize <= 0 || start < 0 || size < blockSize {
		panic(fmt.Sprintf("alloc: bad region start=%d size=%d bs=%d", start, size, blockSize))
	}
	n := size / blockSize
	return &Allocator{
		start:     start,
		blockSize: blockSize,
		nblocks:   n,
		free:      n,
		bitmap:    make([]uint64, (n+63)/64),
		refs:      make([]uint16, n),
		costs:     costs,
	}
}

// BlockSize returns the allocation unit in bytes.
func (a *Allocator) BlockSize() int64 { return a.blockSize }

// FreeBlocks returns the number of unallocated blocks.
func (a *Allocator) FreeBlocks() int64 {
	return a.free // benign racy read; exact under the caller's own sync
}

// Alloc allocates one block and returns its device offset.
func (a *Allocator) Alloc(ctx *sim.Ctx) (int64, error) {
	return a.AllocContig(ctx, 1)
}

// AllocContig allocates n contiguous blocks and returns the device offset of
// the first. Multi-block requests use a next-fit scan from the last
// allocation point under the global lock; single-block requests — the leaf
// shadow-log hot path — come from the caller's worker shard, refilled in
// batches so the global lock's virtual-time section is paid once per
// refillBatch blocks instead of once per op.
func (a *Allocator) AllocContig(ctx *sim.Ctx, n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("alloc: bad count %d", n)
	}
	if n == 1 {
		return a.allocSingle(ctx)
	}
	a.mu.Lock(ctx)
	defer a.mu.Unlock(ctx)
	ctx.Advance(a.costs.BlockAlloc)
	if a.free < n {
		return 0, ErrNoSpace
	}
	if b, ok := a.scan(a.hint, a.nblocks, n); ok {
		return a.take(b, n), nil
	}
	if b, ok := a.scan(0, a.hint, n); ok {
		return a.take(b, n), nil
	}
	return 0, ErrNoSpace
}

// allocSingle pops the worker's shard cache, refilling it from the global
// bitmap when empty. Cached blocks are already allocated (bitmap bit set,
// refcount 1), so a hit costs one real mutex — never contended across
// workers that hash to different shards — plus the Atomic model cost.
func (a *Allocator) allocSingle(ctx *sim.Ctx) (int64, error) {
	s := &a.shards[sim.WorkerHash(ctx.ID)&(allocShards-1)]
	s.mu.Lock()
	if k := len(s.free); k > 0 {
		off := s.free[k-1]
		s.free = s.free[:k-1]
		s.mu.Unlock()
		ctx.Advance(a.costs.Atomic)
		return off, nil
	}
	s.mu.Unlock()

	blocks, err := a.allocSingles(ctx, refillBatch)
	if err != nil {
		// The global pool may be empty only because other shards are
		// hoarding; pull their caches back and retry once. Lock order is
		// safe: Drain takes shard locks with a.mu released, like this path.
		if errors.Is(err, ErrNoSpace) && a.Drain(ctx) > 0 {
			blocks, err = a.allocSingles(ctx, 1)
		}
		if err != nil {
			return 0, err
		}
	}
	if len(blocks) > 1 {
		s.mu.Lock()
		s.free = append(s.free, blocks[1:]...)
		s.mu.Unlock()
	}
	return blocks[0], nil
}

// allocSingles takes up to want single blocks from the global bitmap under
// one lock section and one BlockAlloc charge. Under space pressure it
// degrades to taking one block so a batch refill cannot starve other
// workers on a nearly full device.
func (a *Allocator) allocSingles(ctx *sim.Ctx, want int64) ([]int64, error) {
	a.mu.Lock(ctx)
	defer a.mu.Unlock(ctx)
	ctx.Advance(a.costs.BlockAlloc)
	if a.free < want*2 {
		want = 1
	}
	var out []int64
	for int64(len(out)) < want && a.free > 0 {
		b, ok := a.scan(a.hint, a.nblocks, 1)
		if !ok {
			b, ok = a.scan(0, a.hint, 1)
		}
		if !ok {
			break
		}
		out = append(out, a.take(b, 1))
	}
	if len(out) == 0 {
		return nil, ErrNoSpace
	}
	return out, nil
}

// Drain returns every shard-cached block to the global pool and reports how
// many blocks it released. Offline audits (fsck's leak check walks the
// trees against the bitmap) and space-pressure recovery call it; cached
// blocks are allocated-but-unreferenced by design and would otherwise read
// as leaks or phantom usage.
func (a *Allocator) Drain(ctx *sim.Ctx) int {
	var cached []int64
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		cached = append(cached, s.free...)
		s.free = s.free[:0]
		s.mu.Unlock()
	}
	if len(cached) == 0 {
		return 0
	}
	a.mu.Lock(ctx)
	defer a.mu.Unlock(ctx)
	for _, off := range cached {
		a.unref(a.blockOf(off), off)
	}
	return len(cached)
}

// Cached reports how many blocks are parked in per-worker shard caches:
// set in the bitmap but logically free. Footprint metrics (the core layer's
// live log-block count) subtract it so cache residue never reads as usage.
func (a *Allocator) Cached() int64 {
	var n int64
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		n += int64(len(s.free))
		s.mu.Unlock()
	}
	return n
}

// scan searches [lo, hi) for n consecutive free blocks.
func (a *Allocator) scan(lo, hi, n int64) (int64, bool) {
	run := int64(0)
	runStart := int64(0)
	for b := lo; b < hi; {
		w := a.bitmap[b/64]
		if w == ^uint64(0) && b%64 == 0 && b+64 <= hi {
			run = 0
			b += 64
			continue
		}
		if a.test(b) {
			run = 0
		} else {
			if run == 0 {
				runStart = b
			}
			run++
			if run == n {
				return runStart, true
			}
		}
		b++
		// Fast-skip fully-allocated words when not in a run.
		if run == 0 && b%64 == 0 {
			for b+64 <= hi && a.bitmap[b/64] == ^uint64(0) {
				b += 64
			}
		}
	}
	return 0, false
}

func (a *Allocator) take(b, n int64) int64 {
	for i := b; i < b+n; i++ {
		a.set(i)
		a.refs[i] = 1
	}
	a.free -= n
	a.hint = b + n
	if a.hint >= a.nblocks {
		a.hint = 0
	}
	return a.start + b*a.blockSize
}

// Free drops one reference on each of the n blocks starting at device offset
// off, releasing a block when its count reaches zero. Freeing an unallocated
// block (a double free / refcount underflow) panics: it means a caller lost
// track of block ownership, which on real hardware would hand the same NVM
// block to two files.
func (a *Allocator) Free(ctx *sim.Ctx, off int64, n int64) {
	b := a.blockOf(off)
	a.mu.Lock(ctx)
	defer a.mu.Unlock(ctx)
	for i := b; i < b+n; i++ {
		a.unref(i, off)
	}
}

// unref drops one reference on block i; callers hold a.mu. off is the caller's
// extent offset, for the panic message only.
func (a *Allocator) unref(i, off int64) {
	if !a.test(i) || a.refs[i] == 0 {
		panic(fmt.Sprintf("alloc: double free of block %d (off %d)", i, off))
	}
	a.refs[i]--
	if a.refs[i] == 0 {
		a.clear(i)
		a.free++
	}
}

// Ref takes one additional reference on each of the n blocks starting at off
// (snapshot pinning). The blocks must be allocated.
func (a *Allocator) Ref(ctx *sim.Ctx, off, n int64) {
	b := a.blockOf(off)
	a.mu.Lock(ctx)
	defer a.mu.Unlock(ctx)
	for i := b; i < b+n; i++ {
		if !a.test(i) {
			panic(fmt.Sprintf("alloc: ref of unallocated block %d (off %d)", i, off))
		}
		if a.refs[i] == ^uint16(0) {
			panic(fmt.Sprintf("alloc: refcount overflow on block %d (off %d)", i, off))
		}
		a.refs[i]++
	}
}

// RefCount returns the reference count of the block containing off (0 when
// free). Racy by nature; exact only under the caller's own synchronization.
func (a *Allocator) RefCount(off int64) int {
	return int(a.refs[a.blockOf(off)])
}

// Extent names one contiguous run of blocks for batch release: the device
// offset of the first block and the block count.
type Extent struct {
	Off int64
	N   int64
}

// FreeBulk releases many extents under a single lock acquisition. The
// background cleaner returns an entire subtree's logs at once; freeing them
// block-run by block-run would serialize every foreground allocation behind
// the cleaner's lock traffic. Validation matches Free (double frees and
// refcount underflows panic).
func (a *Allocator) FreeBulk(ctx *sim.Ctx, exts []Extent) {
	if len(exts) == 0 {
		return
	}
	a.mu.Lock(ctx)
	defer a.mu.Unlock(ctx)
	for _, e := range exts {
		b := a.blockOf(e.Off)
		for i := b; i < b+e.N; i++ {
			a.unref(i, e.Off)
		}
	}
}

// MarkAllocated records blocks as in use without charging time; recovery
// scans use it to rebuild DRAM state from persistent metadata. Marking an
// already-allocated block is an error (it indicates a recovery bug).
func (a *Allocator) MarkAllocated(off, n int64) error {
	b := a.blockOf(off)
	for i := b; i < b+n; i++ {
		if a.test(i) {
			return fmt.Errorf("alloc: block %d already allocated during recovery", i)
		}
		a.set(i)
		a.refs[i] = 1
	}
	a.free -= n
	return nil
}

// MarkRef is the recovery-scan variant of MarkAllocated for blocks that may
// legitimately be referenced by several persistent records (a live tree node
// and one or more snapshot pins): the first mark allocates the block, later
// marks bump its reference count.
func (a *Allocator) MarkRef(off, n int64) {
	b := a.blockOf(off)
	for i := b; i < b+n; i++ {
		if a.test(i) {
			a.refs[i]++
			continue
		}
		a.set(i)
		a.refs[i] = 1
		a.free--
	}
}

// Reset frees every block (between benchmark phases).
func (a *Allocator) Reset() {
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		s.free = s.free[:0]
		s.mu.Unlock()
	}
	for i := range a.bitmap {
		a.bitmap[i] = 0
	}
	for i := range a.refs {
		a.refs[i] = 0
	}
	a.free = a.nblocks
	a.hint = 0
}

// Range calls fn for every allocated block (device offset, reference count)
// in address order until fn returns false. Racy against concurrent
// allocation; intended for offline audits (fsck) and reports.
func (a *Allocator) Range(fn func(off int64, refs int) bool) {
	for i := int64(0); i < a.nblocks; i++ {
		if a.test(i) {
			if !fn(a.start+i*a.blockSize, int(a.refs[i])) {
				return
			}
		}
	}
}

// Allocated reports whether the block containing off is allocated.
func (a *Allocator) Allocated(off int64) bool { return a.test(a.blockOf(off)) }

// UsedBlocks returns the number of allocated blocks.
func (a *Allocator) UsedBlocks() int64 {
	var used int64
	for _, w := range a.bitmap {
		used += int64(bits.OnesCount64(w))
	}
	return used
}

func (a *Allocator) blockOf(off int64) int64 {
	if off < a.start || (off-a.start)%a.blockSize != 0 {
		panic(fmt.Sprintf("alloc: offset %d not a block boundary (start %d bs %d)", off, a.start, a.blockSize))
	}
	b := (off - a.start) / a.blockSize
	if b >= a.nblocks {
		panic(fmt.Sprintf("alloc: offset %d beyond region", off))
	}
	return b
}

func (a *Allocator) test(b int64) bool { return a.bitmap[b/64]&(1<<uint(b%64)) != 0 }
func (a *Allocator) set(b int64)       { a.bitmap[b/64] |= 1 << uint(b%64) }
func (a *Allocator) clear(b int64)     { a.bitmap[b/64] &^= 1 << uint(b%64) }
