package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Schedule records the interleaving of operations across concurrent workers:
// each operation is a Span stamped with globally ordered begin/end sequence
// numbers and the device media-op counter at both edges. Crash harnesses use
// the record two ways: the sequence numbers give a sound happens-before
// order for oracle checking (span A definitely precedes span B iff A ended
// before B began), and the per-worker op traces plus media-op counters are
// the replay contract — a serial re-execution that issues the same per-worker
// traces reproduces the same media-op stream bit-identically.
type Schedule struct {
	mu    sync.Mutex
	seq   int64
	spans []*Span
	crash int64 // sequence number at the crash instant (0 = no crash seen)
}

// Span is one recorded operation. StartSeq/EndSeq are drawn from a single
// global counter, so comparing them across workers is meaningful; EndSeq is
// zero while the operation is in flight (and stays zero forever if the
// worker died at a crash).
type Span struct {
	Worker   int
	Index    int    // per-worker operation index
	Label    string // operation kind, for the dump
	StartSeq int64
	EndSeq   int64
	StartOp  int64 // device media-op counter when the operation began
	EndOp    int64 // media-op counter when it returned (0 while in flight)
	Tag      int64 // caller-owned correlation id (e.g. oracle op table index)
}

// InFlight reports whether the span's operation never returned.
func (s *Span) InFlight() bool { return s.EndSeq == 0 }

// Before reports whether s definitely completed before t began. In-flight
// spans precede nothing: their effects may land at any point up to the
// crash.
func (s *Span) Before(t *Span) bool { return s.EndSeq != 0 && s.EndSeq < t.StartSeq }

// NewSchedule returns an empty recorder.
func NewSchedule() *Schedule { return &Schedule{} }

// Begin records the start of an operation and returns its span. Call it
// before the operation's first device access so that any observable effect
// is covered by the span.
func (s *Schedule) Begin(worker, index int, label string, mediaOp int64) *Span {
	s.mu.Lock()
	s.seq++
	sp := &Span{
		Worker:   worker,
		Index:    index,
		Label:    label,
		StartSeq: s.seq,
		StartOp:  mediaOp,
	}
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
	return sp
}

// End records the operation's return. Operations interrupted by a crash
// never call End and stay in flight.
func (s *Schedule) End(sp *Span, mediaOp int64) {
	s.mu.Lock()
	s.seq++
	sp.EndSeq = s.seq
	sp.EndOp = mediaOp
	s.mu.Unlock()
}

// MarkCrash stamps the crash instant into the global order, so the dump
// shows which spans were still open when the device died.
func (s *Schedule) MarkCrash() {
	s.mu.Lock()
	s.seq++
	s.crash = s.seq
	s.mu.Unlock()
}

// CrashSeq returns the sequence number recorded by MarkCrash, or 0.
func (s *Schedule) CrashSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crash
}

// Spans returns the recorded spans in begin order. The returned slice is a
// snapshot; the spans themselves are shared, so callers must quiesce the
// workers (join or crash) before reading EndSeq.
func (s *Schedule) Spans() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.spans...)
}

// InFlightSpans returns the spans whose operations never returned.
func (s *Schedule) InFlightSpans() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Span
	for _, sp := range s.spans {
		if sp.InFlight() {
			out = append(out, sp)
		}
	}
	return out
}

// String dumps the schedule as one line per worker in begin order, with
// in-flight operations marked. It is the human-readable half of a violation
// report; the machine-readable half is the (seed, writers, crash) repro
// triple.
func (s *Schedule) String() string {
	s.mu.Lock()
	spans := append([]*Span(nil), s.spans...)
	crash := s.crash
	s.mu.Unlock()

	byWorker := make(map[int][]*Span)
	var workers []int
	for _, sp := range spans {
		if _, ok := byWorker[sp.Worker]; !ok {
			workers = append(workers, sp.Worker)
		}
		byWorker[sp.Worker] = append(byWorker[sp.Worker], sp)
	}
	sort.Ints(workers)

	var b strings.Builder
	if crash != 0 {
		fmt.Fprintf(&b, "crash at seq %d\n", crash)
	}
	for _, w := range workers {
		fmt.Fprintf(&b, "worker %d:", w)
		for _, sp := range byWorker[w] {
			if sp.InFlight() {
				fmt.Fprintf(&b, " %s#%d[%d..crash)", sp.Label, sp.Index, sp.StartSeq)
			} else {
				fmt.Fprintf(&b, " %s#%d[%d..%d]", sp.Label, sp.Index, sp.StartSeq, sp.EndSeq)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
