package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCtxClock(t *testing.T) {
	c := NewCtx(1, 42)
	if c.Now() != 0 {
		t.Fatalf("new ctx time = %d, want 0", c.Now())
	}
	c.Advance(100)
	c.Advance(-5) // negative advances are ignored
	if c.Now() != 100 {
		t.Fatalf("time = %d, want 100", c.Now())
	}
	c.AdvanceTo(50) // backwards AdvanceTo is ignored
	if c.Now() != 100 {
		t.Fatalf("time = %d, want 100", c.Now())
	}
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Fatalf("time = %d, want 250", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset time = %d, want 0", c.Now())
	}
}

func TestMaxTime(t *testing.T) {
	a, b := NewCtx(0, 0), NewCtx(1, 0)
	a.Advance(10)
	b.Advance(30)
	if got := MaxTime([]*Ctx{a, b}); got != 30 {
		t.Fatalf("MaxTime = %d, want 30", got)
	}
	if got := MaxTime(nil); got != 0 {
		t.Fatalf("MaxTime(nil) = %d, want 0", got)
	}
}

// TestMutexSerializesVirtualTime checks the core property of the model:
// critical sections serialize virtual time across workers.
func TestMutexSerializesVirtualTime(t *testing.T) {
	var m Mutex
	const workers = 8
	const sections = 100
	const sectionCost = 7

	var wg sync.WaitGroup
	ctxs := make([]*Ctx, workers)
	for i := range ctxs {
		ctxs[i] = NewCtx(i, int64(i))
		wg.Add(1)
		go func(c *Ctx) {
			defer wg.Done()
			for j := 0; j < sections; j++ {
				m.Lock(c)
				c.Advance(sectionCost)
				m.Unlock(c)
			}
		}(ctxs[i])
	}
	wg.Wait()
	// All critical sections are mutually exclusive in virtual time, so the
	// maximum clock must be at least the total serialized work.
	want := int64(workers * sections * sectionCost)
	if got := MaxTime(ctxs); got < want {
		t.Fatalf("MaxTime = %d, want >= %d (virtual time must serialize)", got, want)
	}
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	c := NewCtx(0, 0)
	if !m.TryLock(c) {
		t.Fatal("TryLock on free mutex failed")
	}
	c2 := NewCtx(1, 0)
	if m.TryLock(c2) {
		t.Fatal("TryLock on held mutex succeeded")
	}
	c.Advance(99)
	m.Unlock(c)
	if !m.TryLock(c2) {
		t.Fatal("TryLock after unlock failed")
	}
	if c2.Now() < 99 {
		t.Fatalf("TryLock did not propagate vrelease: now=%d", c2.Now())
	}
	m.Unlock(c2)
}

// TestRWMutexReadersOverlap verifies that pure readers do not serialize
// virtual time with one another.
func TestRWMutexReadersOverlap(t *testing.T) {
	var rw RWMutex
	const workers = 8
	const sections = 50
	const sectionCost = 11

	var wg sync.WaitGroup
	ctxs := make([]*Ctx, workers)
	for i := range ctxs {
		ctxs[i] = NewCtx(i, int64(i))
		wg.Add(1)
		go func(c *Ctx) {
			defer wg.Done()
			for j := 0; j < sections; j++ {
				rw.RLock(c)
				c.Advance(sectionCost)
				rw.RUnlock(c)
			}
		}(ctxs[i])
	}
	wg.Wait()
	// Each reader's own clock is exactly its own work; no cross-reader
	// serialization may occur.
	for i, c := range ctxs {
		if c.Now() != sections*sectionCost {
			t.Fatalf("reader %d clock = %d, want %d (readers must overlap)", i, c.Now(), sections*sectionCost)
		}
	}
}

// TestRWMutexWriterExcludesReaders verifies the interval semantics: a
// writer section may not overlap reader sections and vice versa, while a
// reader whose virtual time falls before a writer section may backfill.
func TestRWMutexWriterExcludesReaders(t *testing.T) {
	var rw RWMutex
	r := NewCtx(0, 0)
	w := NewCtx(1, 0)

	rw.RLock(r)
	r.Advance(500)
	rw.RUnlock(r) // reader section [0, 500)

	rw.Lock(w)
	if w.Now() < 500 {
		t.Fatalf("writer clock = %d, want >= 500 (writer may not overlap the reader section)", w.Now())
	}
	w.Advance(100)
	rw.Unlock(w) // writer section [500, 600)

	// A reader starting virtually inside the writer section is pushed past
	// it.
	r2 := NewCtx(2, 0)
	r2.AdvanceTo(550)
	rw.RLock(r2)
	if r2.Now() != 600 {
		t.Fatalf("reader inside writer section got clock %d, want 600", r2.Now())
	}
	rw.RUnlock(r2)

	// A reader whose virtual time precedes the writer section backfills the
	// free time before it.
	r3 := NewCtx(3, 0)
	rw.RLock(r3)
	if r3.Now() != 0 {
		t.Fatalf("backfilling reader got clock %d, want 0", r3.Now())
	}
	rw.RUnlock(r3)
}

func TestRWMutexTryLocks(t *testing.T) {
	var rw RWMutex
	a, b := NewCtx(0, 0), NewCtx(1, 0)
	if !rw.TryRLock(a) {
		t.Fatal("TryRLock on free lock failed")
	}
	if rw.TryLock(b) {
		t.Fatal("TryLock succeeded with reader held")
	}
	if !rw.TryRLock(b) {
		t.Fatal("second TryRLock failed")
	}
	rw.RUnlock(a)
	rw.RUnlock(b)
	if !rw.TryLock(a) {
		t.Fatal("TryLock on free lock failed")
	}
	if rw.TryRLock(b) {
		t.Fatal("TryRLock succeeded with writer held")
	}
	rw.Unlock(a)
}

// TestTimelineSerializesBandwidth verifies that a single-channel timeline
// fully serializes reservations in virtual time.
func TestTimelineSerializesBandwidth(t *testing.T) {
	tl := NewTimeline(1)
	const workers = 4
	const per = 25
	const dur = 13
	var wg sync.WaitGroup
	ctxs := make([]*Ctx, workers)
	for i := range ctxs {
		ctxs[i] = NewCtx(i, 0)
		wg.Add(1)
		go func(c *Ctx) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tl.Reserve(c, dur)
			}
		}(ctxs[i])
	}
	wg.Wait()
	want := int64(workers * per * dur)
	if got := MaxTime(ctxs); got < want {
		t.Fatalf("MaxTime = %d, want >= %d (single channel must serialize)", got, want)
	}
}

// TestTimelineChannelsParallelize verifies that n channels allow up to n-way
// overlap.
func TestTimelineChannelsParallelize(t *testing.T) {
	tl := NewTimeline(4)
	ctxs := make([]*Ctx, 4)
	for i := range ctxs {
		ctxs[i] = NewCtx(i, 0)
		tl.Reserve(ctxs[i], 100)
	}
	// Sequential goroutine-free reservations from distinct zero-time workers
	// must each land on a fresh channel.
	for i, c := range ctxs {
		if c.Now() != 100 {
			t.Fatalf("worker %d time = %d, want 100 (channels must parallelize)", i, c.Now())
		}
	}
}

func TestTimelineReset(t *testing.T) {
	tl := NewTimeline(2)
	c := NewCtx(0, 0)
	tl.Reserve(c, 50)
	tl.Reset()
	c2 := NewCtx(1, 0)
	tl.Reserve(c2, 10)
	if c2.Now() != 10 {
		t.Fatalf("post-reset reserve time = %d, want 10", c2.Now())
	}
}

func TestCostsRoundingProperties(t *testing.T) {
	costs := DefaultCosts()
	// Property: write cost is monotonic in n and respects media-block
	// rounding (cost of n equals cost of n rounded up to MediaBlock).
	f := func(n uint16) bool {
		nn := int(n)
		if nn == 0 {
			return costs.WriteCost(0) == 0
		}
		rounded := (nn + costs.MediaBlock - 1) / costs.MediaBlock * costs.MediaBlock
		return costs.WriteCost(nn) == costs.WriteCost(rounded) &&
			costs.WriteCost(nn) > 0 &&
			costs.ReadCost(nn) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCostsAreFree(t *testing.T) {
	z := ZeroCosts()
	if z.WriteCost(4096) != 0 || z.ReadCost(4096) != 0 || z.FlushCost(4096) != 0 || z.DRAMCopyCost(4096) != 0 {
		t.Fatal("ZeroCosts must charge nothing")
	}
}

func TestFlushCostPerLine(t *testing.T) {
	c := DefaultCosts()
	if got, want := c.FlushCost(1), c.CacheLineFlush; got != want {
		t.Fatalf("FlushCost(1) = %d, want %d", got, want)
	}
	if got, want := c.FlushCost(65), 2*c.CacheLineFlush; got != want {
		t.Fatalf("FlushCost(65) = %d, want %d", got, want)
	}
}
