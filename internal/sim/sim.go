// Package sim provides the virtual-time simulation substrate shared by every
// file system and workload in this repository.
//
// The reproduction replaces wall-clock measurement on Intel Optane hardware
// with deterministic virtual time: each worker carries a virtual clock, every
// modeled action (media access, cache-line flush, fence, syscall, ...) advances
// that clock by an amount taken from a calibrated cost model, and
// synchronization primitives carry virtual release times across goroutines so
// that lock contention serializes virtual time exactly the way it serializes
// real time. Shared hardware resources with finite bandwidth (the persistent
// memory DIMMs behind the integrated memory controller) are modeled by a
// Timeline that workers reserve service slots on.
//
// Virtual time makes every benchmark in this repository deterministic for a
// fixed seed and nearly independent of the Go scheduler and garbage collector,
// while preserving the relative performance shapes the paper reports.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// MediaTally accumulates the media traffic attributable to one worker (or one
// subsystem, e.g. the background cleaner). The device-wide counters in
// nvm.Stats cannot separate foreground from background traffic; a context
// carrying a tally gets its own per-byte attribution on top of them.
type MediaTally struct {
	ReadBytes  atomic.Int64
	WriteBytes atomic.Int64
}

// Ctx is a per-worker simulation context. Exactly one goroutine may use a Ctx
// at a time; workloads create one Ctx per worker thread.
type Ctx struct {
	// ID identifies the worker (the paper hashes thread IDs to claim
	// metadata-log entries; we hash Ctx.ID).
	ID int
	// Rand is the worker-private PRNG used by workload generators.
	Rand *rand.Rand
	// Tally, when non-nil, receives per-context media traffic attribution
	// from the device (benchmarks use it to report background-writer I/O
	// separately from foreground I/O).
	Tally *MediaTally

	now int64 // virtual nanoseconds
}

// NewCtx returns a worker context with the given id and seed.
func NewCtx(id int, seed int64) *Ctx {
	return &Ctx{ID: id, Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the worker's current virtual time in nanoseconds.
func (c *Ctx) Now() int64 { return c.now }

// Advance moves the worker's virtual clock forward by d nanoseconds.
func (c *Ctx) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the worker's clock to t if t is later than the current time.
func (c *Ctx) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero (used between benchmark phases).
func (c *Ctx) Reset() { c.now = 0 }

// String implements fmt.Stringer for debugging.
func (c *Ctx) String() string { return fmt.Sprintf("ctx(%d)@%dns", c.ID, c.now) }

// MaxTime returns the latest virtual time across worker contexts. Throughput
// for a multi-worker run is total work divided by MaxTime, mirroring how FIO
// reports aggregate bandwidth for a fixed runtime.
func MaxTime(ctxs []*Ctx) int64 {
	var m int64
	for _, c := range ctxs {
		if c.now > m {
			m = c.now
		}
	}
	return m
}

// Mutex is a mutual-exclusion lock that models contention in virtual time:
// each critical section books a busy interval, and a later acquirer starts
// its section at the earliest free point at or after its own virtual clock.
// Sections that genuinely overlap in virtual time therefore serialize, while
// a worker whose goroutine happened to run late in real time can backfill
// free virtual time instead of queueing behind the other workers' entire
// histories. The zero value is an unlocked mutex.
type Mutex struct {
	mu       sync.Mutex
	sections GapList
	cur      int64 // current holder's virtual section start
}

// Lock acquires the mutex and moves ctx to the start of a free virtual slot.
func (m *Mutex) Lock(ctx *Ctx) {
	m.mu.Lock()
	m.cur = m.sections.FindStart(ctx.now, 1)
	ctx.AdvanceTo(m.cur)
}

// TryLock attempts to acquire the mutex without blocking and reports whether
// it succeeded.
func (m *Mutex) TryLock(ctx *Ctx) bool {
	if !m.mu.TryLock() {
		return false
	}
	m.cur = m.sections.FindStart(ctx.now, 1)
	ctx.AdvanceTo(m.cur)
	return true
}

// Unlock releases the mutex, booking the just-finished virtual section.
// The section's true length is only known now; if the tentative start
// overlaps other sections, the whole section (and the holder's clock) is
// pushed to the first gap that fits — this is what serializes genuinely
// contended critical sections.
func (m *Mutex) Unlock(ctx *Ctx) {
	dur := ctx.now - m.cur
	if dur < 1 {
		dur = 1
	}
	start := m.sections.FindStart(m.cur, dur)
	ctx.Advance(start - m.cur)
	m.sections.Insert(start, start+dur)
	m.mu.Unlock()
}

// RWMutex is a readers-writer lock modeling contention in virtual time:
// reader sections may overlap one another but not writer sections, and
// writer sections overlap nothing.
type RWMutex struct {
	mu sync.RWMutex

	bk      sync.Mutex // bookkeeping below
	wIvs    GapList    // writer sections
	rIvs    GapList    // reader sections (coalesced)
	wCur    int64
	rStarts map[*Ctx]int64
}

// RLock acquires a read lock.
func (rw *RWMutex) RLock(ctx *Ctx) {
	rw.mu.RLock()
	rw.noteReader(ctx)
}

// TryRLock attempts to acquire a read lock without blocking.
func (rw *RWMutex) TryRLock(ctx *Ctx) bool {
	if !rw.mu.TryRLock() {
		return false
	}
	rw.noteReader(ctx)
	return true
}

func (rw *RWMutex) noteReader(ctx *Ctx) {
	rw.bk.Lock()
	pos := rw.wIvs.FindStart(ctx.now, 1)
	if rw.rStarts == nil {
		rw.rStarts = make(map[*Ctx]int64)
	}
	rw.rStarts[ctx] = pos
	rw.bk.Unlock()
	ctx.AdvanceTo(pos)
}

// RUnlock releases a read lock. Reader sections may overlap one another but
// not writer sections; an overlapping reader is pushed past the writers.
func (rw *RWMutex) RUnlock(ctx *Ctx) {
	rw.bk.Lock()
	pos, ok := rw.rStarts[ctx]
	if ok {
		delete(rw.rStarts, ctx)
		dur := ctx.now - pos
		if dur < 1 {
			dur = 1
		}
		start := rw.wIvs.FindStart(pos, dur)
		rw.rIvs.Insert(start, start+dur)
		rw.bk.Unlock()
		ctx.Advance(start - pos)
		rw.mu.RUnlock()
		return
	}
	rw.bk.Unlock()
	rw.mu.RUnlock()
}

// Lock acquires the write lock.
func (rw *RWMutex) Lock(ctx *Ctx) {
	rw.mu.Lock()
	rw.noteWriter(ctx)
}

// TryLock attempts to acquire the write lock without blocking.
func (rw *RWMutex) TryLock(ctx *Ctx) bool {
	if !rw.mu.TryLock() {
		return false
	}
	rw.noteWriter(ctx)
	return true
}

func (rw *RWMutex) noteWriter(ctx *Ctx) {
	rw.bk.Lock()
	pos := ctx.now
	for {
		p := rw.wIvs.FindStart(pos, 1)
		p = rw.rIvs.FindStart(p, 1)
		if p == pos {
			break
		}
		pos = p
	}
	rw.wCur = pos
	rw.bk.Unlock()
	ctx.AdvanceTo(pos)
}

// Unlock releases the write lock, placing the full section in the first
// gap free of both reader and writer sections.
func (rw *RWMutex) Unlock(ctx *Ctx) {
	rw.bk.Lock()
	dur := ctx.now - rw.wCur
	if dur < 1 {
		dur = 1
	}
	pos := rw.wCur
	for {
		p := rw.wIvs.FindStart(pos, dur)
		p = rw.rIvs.FindStart(p, dur)
		if p == pos {
			break
		}
		pos = p
	}
	rw.wIvs.Insert(pos, pos+dur)
	rw.bk.Unlock()
	ctx.Advance(pos - rw.wCur)
	rw.mu.Unlock()
}

// Timeline models a shared finite-bandwidth resource (the PM DIMMs behind
// the memory controller). Workers reserve service intervals in virtual time;
// when the resource is saturated a reservation is pushed later, advancing
// the worker's virtual clock. Multiple channels model internal parallelism
// (the paper's testbed interleaves four Optane DIMMs).
//
// Reservations are kept as per-channel interval gap-lists rather than a
// single high-water mark: the Go scheduler may run one worker's entire
// virtual lifetime before another worker starts, so a late-scheduled worker
// whose virtual clock is far in the "past" must be able to backfill gaps
// that were genuinely free at its virtual time — otherwise concurrent
// workloads would serialize behind each other's future reservations.
type Timeline struct {
	channels []tlChannel
}

type tlChannel struct {
	mu sync.Mutex
	gl GapList
}

// NewTimeline returns a timeline with n parallel channels (n >= 1).
func NewTimeline(n int) *Timeline {
	if n < 1 {
		n = 1
	}
	return &Timeline{channels: make([]tlChannel, n)}
}

// Reserve books dur nanoseconds of service starting no earlier than ctx's
// current time on the channel that can complete it first, and advances ctx
// to the completion time. Probing starts at the worker's home channel (a
// hash of Ctx.ID) so that start-time ties — the common case on an idle or
// lightly loaded timeline — spread across channels instead of all breaking
// toward channel 0; best-fit still wins whenever a strictly earlier start
// exists elsewhere, so saturation behavior is unchanged.
func (t *Timeline) Reserve(ctx *Ctx, dur int64) {
	if dur <= 0 {
		return
	}
	n := len(t.channels)
	home := WorkerHash(ctx.ID) % n
	best := -1
	var bestStart int64
	for i := 0; i < n; i++ {
		ch := home + i
		if ch >= n {
			ch -= n
		}
		s := t.channels[ch].probe(ctx.now, dur)
		if best < 0 || s < bestStart {
			best, bestStart = ch, s
		}
	}
	start := t.channels[best].book(ctx.now, dur)
	ctx.AdvanceTo(start + dur)
}

// WorkerHash mixes a worker ID into a well-spread non-negative value. Worker
// IDs are not dense — foreground workers count 0..N-1 but background actors
// use sparse power-of-two IDs (cleaner 1<<20, flusher 1<<21) — so a plain
// modulus would collide them all onto slot 0. The xor-folds pull high bits
// down before the multiplicative scramble; for IDs 0..63 the low six bits
// remain a bijection (the folds are identity there and the multiplier is
// odd), which gives small worker fleets perfectly disjoint homes in any
// power-of-two table of at least their size.
func WorkerHash(id int) int {
	h := uint32(id)
	h ^= h >> 16
	h ^= h >> 8
	h *= 0x9E3779B1
	return int(h & 0x7FFFFFFF)
}

// probe returns where a reservation would start (without booking).
func (c *tlChannel) probe(at, dur int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gl.FindStart(at, dur)
}

// book reserves [start, start+dur) at the earliest feasible start >= at.
func (c *tlChannel) book(at, dur int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.gl.FindStart(at, dur)
	c.gl.Insert(start, start+dur)
	return start
}

// Reset clears all reservations (between benchmark phases).
func (t *Timeline) Reset() {
	for i := range t.channels {
		c := &t.channels[i]
		c.mu.Lock()
		c.gl.Reset()
		c.mu.Unlock()
	}
}
