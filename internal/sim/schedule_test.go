package sim

import (
	"strings"
	"sync"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSchedule()
	a := s.Begin(0, 0, "write", 10)
	b := s.Begin(1, 0, "write", 12)
	s.End(a, 15)
	c := s.Begin(0, 1, "fsync", 15)
	s.End(c, 16)
	s.MarkCrash()

	if !a.Before(c) {
		t.Fatal("a ended before c began but Before() is false")
	}
	if b.Before(c) {
		t.Fatal("in-flight span must precede nothing")
	}
	if a.Before(b) {
		t.Fatal("a overlapped b (a ended after b began) but Before() is true")
	}
	if !b.InFlight() {
		t.Fatal("b never ended; InFlight() should be true")
	}
	if got := s.InFlightSpans(); len(got) != 1 || got[0] != b {
		t.Fatalf("InFlightSpans = %v, want [b]", got)
	}
	if s.CrashSeq() == 0 {
		t.Fatal("MarkCrash did not record a sequence number")
	}

	dump := s.String()
	for _, want := range []string{"crash at seq", "worker 0:", "worker 1:", "..crash)"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

// Concurrent Begin/End must hand out unique, strictly increasing sequence
// numbers (the oracle's happens-before order depends on it).
func TestScheduleConcurrentSeqUnique(t *testing.T) {
	s := NewSchedule()
	var wg sync.WaitGroup
	const workers, ops = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				sp := s.Begin(w, i, "op", int64(i))
				s.End(sp, int64(i))
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[int64]bool)
	for _, sp := range s.Spans() {
		if sp.InFlight() {
			t.Fatal("joined worker left an in-flight span")
		}
		if sp.EndSeq <= sp.StartSeq {
			t.Fatalf("span end %d <= start %d", sp.EndSeq, sp.StartSeq)
		}
		for _, q := range []int64{sp.StartSeq, sp.EndSeq} {
			if seen[q] {
				t.Fatalf("sequence number %d issued twice", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != workers*ops*2 {
		t.Fatalf("recorded %d edges, want %d", len(seen), workers*ops*2)
	}
}
