package sim

// GapList is a sorted, coalesced set of busy intervals in virtual time. It
// is the core of contention modeling: a critical section or bandwidth
// reservation books an interval, and later requests find the earliest free
// point at or after their own virtual time — allowing a worker whose
// goroutine was scheduled late in *real* time to backfill virtual-time gaps
// that were genuinely free. All methods require external synchronization.
type GapList struct {
	ivs   []interval
	floor int64 // pruned-history boundary: nothing books before it
}

type interval struct{ start, end int64 }

// maxIntervals bounds memory; older history is pruned and its end becomes
// the floor.
const maxIntervals = 1024

// FindStart locates the earliest point >= at from which dur nanoseconds are
// free.
func (g *GapList) FindStart(at, dur int64) int64 {
	if at < g.floor {
		at = g.floor
	}
	lo, hi := 0, len(g.ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.ivs[mid].end <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := at
	for i := lo; i < len(g.ivs); i++ {
		if g.ivs[i].start-pos >= dur {
			break
		}
		if g.ivs[i].end > pos {
			pos = g.ivs[i].end
		}
	}
	return pos
}

// Insert books [start, end) as busy, coalescing neighbours and pruning old
// history. Zero-length sections still book one nanosecond so the point in
// time is occupied.
func (g *GapList) Insert(start, end int64) {
	g.insert(interval{start, end})
}

// insert books iv, coalescing neighbours and pruning old history.
func (g *GapList) insert(iv interval) {
	if iv.end <= iv.start {
		iv.end = iv.start + 1
	}
	lo, hi := 0, len(g.ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.ivs[mid].start < iv.start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && g.ivs[lo-1].end >= iv.start {
		lo--
		if g.ivs[lo].end > iv.end {
			iv.end = g.ivs[lo].end
		}
		iv.start = g.ivs[lo].start
		g.ivs = append(g.ivs[:lo], g.ivs[lo+1:]...)
	}
	for lo < len(g.ivs) && g.ivs[lo].start <= iv.end {
		if g.ivs[lo].end > iv.end {
			iv.end = g.ivs[lo].end
		}
		g.ivs = append(g.ivs[:lo], g.ivs[lo+1:]...)
	}
	g.ivs = append(g.ivs, interval{})
	copy(g.ivs[lo+1:], g.ivs[lo:])
	g.ivs[lo] = iv
	if len(g.ivs) > maxIntervals {
		half := len(g.ivs) / 2
		g.floor = g.ivs[half-1].end
		g.ivs = append(g.ivs[:0], g.ivs[half:]...)
	}
}

// Reset clears all bookings.
func (g *GapList) Reset() {
	g.ivs = g.ivs[:0]
	g.floor = 0
}
