package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGapListBasics(t *testing.T) {
	var g GapList
	if got := g.FindStart(100, 10); got != 100 {
		t.Fatalf("empty list FindStart = %d, want 100", got)
	}
	g.Insert(100, 200)
	if got := g.FindStart(100, 10); got != 200 {
		t.Fatalf("FindStart inside booked = %d, want 200", got)
	}
	if got := g.FindStart(0, 50); got != 0 {
		t.Fatalf("FindStart before booked = %d, want 0 (gap fits)", got)
	}
	if got := g.FindStart(0, 150); got != 200 {
		t.Fatalf("FindStart with gap too small = %d, want 200", got)
	}
	if got := g.FindStart(150, 1); got != 200 {
		t.Fatalf("FindStart mid-interval = %d, want 200", got)
	}
}

func TestGapListCoalescing(t *testing.T) {
	var g GapList
	g.Insert(0, 10)
	g.Insert(10, 20)
	g.Insert(20, 30)
	if len(g.ivs) != 1 {
		t.Fatalf("adjacent intervals not coalesced: %v", g.ivs)
	}
	g.Insert(50, 60)
	g.Insert(25, 55) // bridges both
	if len(g.ivs) != 1 || g.ivs[0] != (interval{0, 60}) {
		t.Fatalf("bridge not coalesced: %v", g.ivs)
	}
}

func TestGapListZeroLength(t *testing.T) {
	var g GapList
	g.Insert(5, 5) // books at least 1ns
	if got := g.FindStart(5, 1); got != 6 {
		t.Fatalf("zero-length insert did not occupy its point: FindStart = %d", got)
	}
}

// TestGapListProperties: after random insertions, the list is sorted,
// disjoint, and FindStart never lands inside a booked interval.
func TestGapListProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g GapList
		for i := 0; i < 200; i++ {
			s := rng.Int63n(10000)
			g.Insert(s, s+rng.Int63n(50)+1)
		}
		for i := 1; i < len(g.ivs); i++ {
			if g.ivs[i-1].end >= g.ivs[i].start {
				return false // overlap or not coalesced
			}
			if g.ivs[i-1].start >= g.ivs[i].start {
				return false // unsorted
			}
		}
		for i := 0; i < 50; i++ {
			at := rng.Int63n(12000)
			dur := rng.Int63n(100) + 1
			pos := g.FindStart(at, dur)
			if pos < at {
				return false
			}
			// [pos, pos+dur) must be free.
			for _, iv := range g.ivs {
				if pos < iv.end && iv.start < pos+dur {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGapListPruning(t *testing.T) {
	var g GapList
	// Far more disjoint intervals than the cap.
	for i := 0; i < 3*maxIntervals; i++ {
		s := int64(i) * 10
		g.Insert(s, s+5)
	}
	if len(g.ivs) > maxIntervals {
		t.Fatalf("list not pruned: %d intervals", len(g.ivs))
	}
	if g.floor == 0 {
		t.Fatal("pruning did not raise the floor")
	}
	// Booking below the floor is clamped up.
	if got := g.FindStart(0, 1); got < g.floor {
		t.Fatalf("FindStart(0) = %d below floor %d", got, g.floor)
	}
}

func TestGapListReset(t *testing.T) {
	var g GapList
	g.Insert(0, 100)
	g.Reset()
	if got := g.FindStart(0, 10); got != 0 {
		t.Fatalf("after reset FindStart = %d", got)
	}
}
