package sim

// Costs is the calibrated cost model used to charge virtual time for hardware
// and kernel actions. The defaults approximate the paper's testbed: 3rd-gen
// Xeon (Ice Lake) with four interleaved 128 GB Optane DC PMem 200 DIMMs.
//
// Sources for the default magnitudes: Izraelevitz et al., "Basic Performance
// Measurements of the Intel Optane DC Persistent Memory Module" (the paper's
// reference [20]) for media latency/bandwidth asymmetry, and common published
// microbenchmarks for syscall/page-fault/TLB-shootdown costs. Only relative
// magnitudes matter for reproducing the paper's shapes.
type Costs struct {
	// NVMReadLat is the latency of touching an uncached line on PM media.
	NVMReadLat int64
	// NVMReadPerByte is the reciprocal sequential read bandwidth (ns/byte).
	NVMReadPerByte float64
	// NVMWriteLat is the store-to-media acceptance latency (write enters the
	// WPQ quickly; sustained cost is bandwidth-bound).
	NVMWriteLat int64
	// NVMWritePerByte is the reciprocal write bandwidth (ns/byte); Optane
	// writes are roughly 3x slower than reads.
	NVMWritePerByte float64
	// CacheLineFlush is the cost of one clwb/clflushopt issue.
	CacheLineFlush int64
	// Fence is the cost of an sfence draining prior flushes.
	Fence int64
	// Syscall is the user->kernel->user round trip (trap, entry/exit work).
	Syscall int64
	// PageFault is a minor fault with page-table fixup.
	PageFault int64
	// TLBShootdown is the cost of remote TLB invalidation IPIs, paid by
	// shadow-paging designs that remap pages (NOVA atomic-mmap, CoW relink).
	TLBShootdown int64
	// DRAMPerByte is the reciprocal DRAM copy bandwidth (page cache copies).
	DRAMPerByte float64
	// DRAMLat is the latency of a DRAM cache-missing access.
	DRAMLat int64
	// Atomic is the cost of a CAS/atomic RMW on a contended line.
	Atomic int64
	// LockAcq is the uncontended lock acquire+release bookkeeping cost.
	LockAcq int64
	// IndexStep is one pointer-chase step in an in-DRAM index (radix/extent
	// tree traversal, hash probe).
	IndexStep int64
	// JournalCommit is the fixed jbd2 commit-record handling cost (excluding
	// the journal block writes themselves).
	JournalCommit int64
	// BlockAlloc is the fixed cost of one block/extent allocation decision.
	BlockAlloc int64
	// CtxSwitch is a thread context switch (sleeping lock handoff, kthread
	// wakeup).
	CtxSwitch int64
	// VFSOp is the in-kernel VFS + iomap/page-cache path overhead of one
	// read/write beyond the raw trap cost (charged by kernel file systems,
	// not by user-space libraries — this asymmetry is the "long software
	// stack" the paper's introduction targets).
	VFSOp int64
	// FsyncPath is the in-kernel fsync bookkeeping beyond the trap and the
	// journal I/O itself.
	FsyncPath int64
	// Channels is the PM interleave parallelism (number of DIMM channels).
	Channels int
	// MediaBlock is the internal PM access granularity in bytes (Optane's
	// 3D-XPoint media works on 256 B blocks; smaller writes are
	// read-modify-written by the DIMM controller).
	MediaBlock int
}

// DefaultCosts returns the Optane-calibrated cost model used by all benches.
func DefaultCosts() Costs {
	return Costs{
		NVMReadLat:      170,   // ns random read latency
		NVMReadPerByte:  0.15,  // ~6.6 GB/s aggregate sequential read
		NVMWriteLat:     90,    // ns ntstore acceptance
		NVMWritePerByte: 0.45,  // ~2.2 GB/s aggregate sequential write
		CacheLineFlush:  25,    // clwb issue
		Fence:           100,   // sfence drain
		Syscall:         600,   // ~0.6 us round trip (post-KPTI)
		PageFault:       1800,  // minor fault
		TLBShootdown:    4000,  // IPI broadcast + waits
		DRAMPerByte:     0.035, // ~28 GB/s copy
		DRAMLat:         80,
		Atomic:          20,
		LockAcq:         25,
		IndexStep:       12,
		JournalCommit:   900,
		BlockAlloc:      120,
		CtxSwitch:       1500,
		VFSOp:           550,
		FsyncPath:       350,
		Channels:        4,
		MediaBlock:      256,
	}
}

// ZeroCosts returns a cost model in which every action is free. Unit tests use
// it so that functional assertions do not depend on the performance model.
func ZeroCosts() Costs {
	return Costs{Channels: 1, MediaBlock: 256}
}

// ReadCost returns the virtual-time cost of reading n bytes from PM media.
func (c *Costs) ReadCost(n int) int64 {
	if n <= 0 {
		return 0
	}
	return c.NVMReadLat + int64(float64(n)*c.NVMReadPerByte)
}

// WriteCost returns the virtual-time cost of writing n bytes to PM media,
// accounting for the device's internal block granularity (a write smaller
// than MediaBlock still occupies a full media block of write bandwidth).
func (c *Costs) WriteCost(n int) int64 {
	if n <= 0 {
		return 0
	}
	if c.MediaBlock > 0 {
		n = roundUp(n, c.MediaBlock)
	}
	return c.NVMWriteLat + int64(float64(n)*c.NVMWritePerByte)
}

// DRAMCopyCost returns the cost of copying n bytes within DRAM.
func (c *Costs) DRAMCopyCost(n int) int64 {
	if n <= 0 {
		return 0
	}
	return c.DRAMLat + int64(float64(n)*c.DRAMPerByte)
}

// FlushCost returns the cost of issuing cache-line flushes covering n bytes.
func (c *Costs) FlushCost(n int) int64 {
	if n <= 0 {
		return 0
	}
	lines := int64((n + 63) / 64)
	return lines * c.CacheLineFlush
}

func roundUp(n, unit int) int {
	if unit <= 0 {
		return n
	}
	return (n + unit - 1) / unit * unit
}
