package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket i holds values whose bit
// length is i, i.e. v in [2^(i-1), 2^i), with bucket 0 holding exactly 0.
// 64 buckets cover every non-negative int64, so Observe never range-checks.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed histogram for latency-like values
// (virtual nanoseconds, probe distances, retry counts). Observe is four
// atomic operations and allocation-free; quantiles are resolved from the
// bucket upper bounds, which for log2 buckets means a worst-case
// overestimate of 2x — the right trade for a hot-path histogram whose job
// is spotting order-of-magnitude shifts between runs.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to 0). No-op while
// Disabled is set or on a nil histogram (an unwired probe).
func (h *Histogram) Observe(v int64) {
	if h == nil || Disabled {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return (int64(1) << uint(i)) - 1
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// upper edge of the bucket holding the q-th observation, capped at the true
// maximum. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			ub := bucketUpper(i)
			if m := h.max.Load(); ub > m {
				ub = m
			}
			return ub
		}
	}
	return h.max.Load()
}

// HistSnapshot is a point-in-time copy of a histogram, JSON-stable for the
// bench schema.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	// Buckets are the non-empty log2 buckets as [bitLen, count] pairs, so
	// snapshots stay small and diffs line up even when the shape shifts.
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, [2]int64{int64(i), n})
		}
	}
	return s
}
