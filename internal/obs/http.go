package obs

import (
	"net/http"
)

// Handler serves live metrics over HTTP:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the Snapshot JSON (mgsp-obs/v1), mgspstat's wire format
//	/trace         the trace ring as text (404 when no ring is wired)
//
// get is called per request and may return nil (503) before the first
// snapshot is published; ring may be nil.
func Handler(get func() *Snapshot, ring *TraceRing) http.Handler {
	mux := http.NewServeMux()
	withSnap := func(fn func(w http.ResponseWriter, s *Snapshot)) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			s := get()
			if s == nil {
				http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
				return
			}
			fn(w, s)
		}
	}
	mux.HandleFunc("/metrics", withSnap(func(w http.ResponseWriter, s *Snapshot) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WritePrometheus(w)
	}))
	mux.HandleFunc("/metrics.json", withSnap(func(w http.ResponseWriter, s *Snapshot) {
		w.Header().Set("Content-Type", "application/json")
		s.WriteJSON(w)
	}))
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if ring == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		ring.Format(w)
	})
	return mux
}
