package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Fatalf("Counter.Load = %d, want 3", got)
	}
	c.Store(0)
	if got := c.Load(); got != 0 {
		t.Fatalf("Counter.Load after Store(0) = %d, want 0", got)
	}
	var g Gauge
	g.Set(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("Gauge.Load = %d, want 42", got)
	}
}

// TestCounterConcurrent: N goroutines adding in parallel must never lose an
// increment (run under -race in the merge gate).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Counter.Load = %d, want %d", got, workers*per)
	}
}

// TestHistogramBucketBoundaries pins the log2 bucket mapping: value v lands
// in bucket bits.Len64(v), i.e. 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      int64
		bucket int64
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1025, 11}, {-5, 0},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := map[int64]int64{}
	for _, c := range cases {
		want[c.bucket]++
	}
	got := map[int64]int64{}
	for _, b := range s.Buckets {
		got[b[0]] = b[1]
	}
	for bucket, n := range want {
		if got[bucket] != n {
			t.Errorf("bucket %d: count %d, want %d (all: %v)", bucket, got[bucket], n, s.Buckets)
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	if s.Max != 1025 {
		t.Errorf("Max = %d, want 1025", s.Max)
	}
}

// TestHistogramQuantiles checks the quantile math: the reported quantile is
// an upper bound within the holding bucket, capped at the true max.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", h.Quantile(0.5))
	}
	// 100 observations of 10 (bucket 4, upper 15) and 1 of 1000.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	h.Observe(1000)
	if p50 := h.Quantile(0.50); p50 != 15 {
		t.Errorf("p50 = %d, want 15 (upper bound of 10's bucket)", p50)
	}
	// p99 rank = ceil-ish of 0.99*101 = 100 -> still the 10s bucket.
	if p99 := h.Quantile(0.99); p99 != 15 {
		t.Errorf("p99 = %d, want 15", p99)
	}
	if p100 := h.Quantile(1.0); p100 != 1000 {
		t.Errorf("p100 = %d, want 1000 (capped at true max)", p100)
	}
	// A single-value histogram reports that exact value at every quantile
	// (upper bound capped at max).
	var one Histogram
	one.Observe(77)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := one.Quantile(q); got != 77 {
			t.Errorf("single-value q=%v = %d, want 77", q, got)
		}
	}
	if mean := one.Mean(); mean != 77 {
		t.Errorf("Mean = %v, want 77", mean)
	}
}

func TestHistogramDisabled(t *testing.T) {
	Disabled = true
	defer func() { Disabled = false }()
	var h Histogram
	h.Observe(123)
	if h.Count() != 0 {
		t.Fatalf("disabled Observe recorded: count=%d", h.Count())
	}
	var tr *TraceRing
	tr.Record(0, OpWrite, 0, 0, 0, 0) // nil ring: must not panic
}

func TestRegistrySnapshotDiffAndParse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops.total")
	c.Add(10)
	r.Gauge("queue.depth").Set(3)
	r.RegisterFunc("derived.ratio", func() float64 { return 1.5 })
	h := r.Histogram("lat.ns")
	h.Observe(100)
	h.Observe(200)

	s1 := r.Snapshot()
	if s1.Schema != SnapshotSchema {
		t.Fatalf("schema = %q", s1.Schema)
	}
	if s1.Values["ops.total"] != 10 || s1.Values["queue.depth"] != 3 || s1.Values["derived.ratio"] != 1.5 {
		t.Fatalf("bad values: %v", s1.Values)
	}
	if hs := s1.Hists["lat.ns"]; hs.Count != 2 || hs.Sum != 300 {
		t.Fatalf("bad hist snapshot: %+v", hs)
	}

	c.Add(5)
	h.Observe(400)
	s2 := r.Snapshot()
	d := s2.Diff(s1)
	if d.Values["ops.total"] != 5 {
		t.Errorf("diff ops.total = %v, want 5", d.Values["ops.total"])
	}
	if d.Values["queue.depth"] != 0 {
		t.Errorf("diff queue.depth = %v, want 0", d.Values["queue.depth"])
	}
	if dh := d.Hists["lat.ns"]; dh.Count != 1 || dh.Sum != 400 {
		t.Errorf("diff hist = %+v, want count=1 sum=400", dh)
	}

	// JSON round trip.
	var buf bytes.Buffer
	if err := s2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Values["ops.total"] != 15 {
		t.Errorf("parsed ops.total = %v", parsed.Values["ops.total"])
	}
	if _, err := ParseSnapshot([]byte(`{"schema":"other/v9","values":{}}`)); err == nil {
		t.Error("foreign schema accepted")
	}

	// Registered counters show up; re-registration replaces.
	var ext Counter
	ext.Add(7)
	r.RegisterCounter("ext.counter", &ext)
	if got := r.Snapshot().Values["ext.counter"]; got != 7 {
		t.Errorf("registered counter = %v, want 7", got)
	}

	// Text and Prometheus exporters include every metric name.
	text := s2.String()
	var prom bytes.Buffer
	if err := s2.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ops.total", "queue.depth", "derived.ratio"} {
		if !strings.Contains(text, name) {
			t.Errorf("String() missing %q", name)
		}
	}
	if !strings.Contains(prom.String(), "mgsp_ops_total") || !strings.Contains(prom.String(), "mgsp_lat_ns_count") {
		t.Errorf("Prometheus output missing rewritten names:\n%s", prom.String())
	}
}

// TestTraceRingWraparound: a shard must retain only its newest events after
// the ring wraps, and Events must come back seq-sorted.
func TestTraceRingWraparound(t *testing.T) {
	tr := NewTraceRing(8)
	const total = 100 // worker 0 only -> one shard, 8 slots, wraps 12x
	for i := 0; i < total; i++ {
		tr.Record(0, OpWrite, 1, int64(i)*4096, 4096, int64(i))
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("got %d events after wraparound, want 8", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(total - 8 + i + 1)
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Op != "write" || e.Worker != 0 || e.File != 1 {
			t.Errorf("event %d decoded wrong: %+v", i, e)
		}
		if e.Off != (int64(e.Seq)-1)*4096 {
			t.Errorf("event %d: off %d, want %d", i, e.Off, (int64(e.Seq)-1)*4096)
		}
	}
	var sb strings.Builder
	if err := tr.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 8 {
		t.Errorf("Format wrote %d lines, want 8", n)
	}
}

func TestTraceRingShardsAndFields(t *testing.T) {
	tr := NewTraceRing(16)
	// Workers spread across shards; negative-looking fields must round-trip.
	tr.Record(3, OpSnapshot, 200, 1<<40, 123, 456)
	tr.Record(19, OpFsync, 0, 0, 0, 9) // 19 & 15 == 3: same shard as worker 3
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Worker != 3 || evs[0].Op != "snapshot" || evs[0].File != 200 ||
		evs[0].Off != 1<<40 || evs[0].Len != 123 || evs[0].DurNS != 456 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Worker != 19 || evs[1].Op != "fsync" {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpWrite, OpRead, OpFsync, OpWriteMulti, OpSnapshot, OpSnapDrop,
		OpSnapRead, OpCleanerPass, OpCheckpoint, OpRecovery}
	seen := map[string]bool{}
	for _, o := range ops {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") || seen[s] {
			t.Errorf("op %d: bad or duplicate name %q", o, s)
		}
		seen[s] = true
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op name = %q", Op(99).String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(1)
	tr := NewTraceRing(8)
	tr.Record(0, OpWrite, 0, 0, 8, 1)
	h := Handler(func() *Snapshot { return r.Snapshot() }, tr)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "mgsp_a_b") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	code, body := get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json code=%d", code)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil || s.Values["a.b"] != 1 {
		t.Errorf("/metrics.json bad body: %v %q", err, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, "write") {
		t.Errorf("/trace: code=%d body=%q", code, body)
	}

	empty := Handler(func() *Snapshot { return nil }, nil)
	rec := httptest.NewRecorder()
	empty.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 503 {
		t.Errorf("nil snapshot: code=%d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	empty.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 404 {
		t.Errorf("nil ring /trace: code=%d, want 404", rec.Code)
	}
}

// BenchmarkDisabledHotPath is the disabled-mode overhead guard: with
// obs.Disabled set, the full per-op probe sequence (counter adds always run;
// histogram observes and trace records short-circuit) must not allocate.
func BenchmarkDisabledHotPath(b *testing.B) {
	Disabled = true
	defer func() { Disabled = false }()
	var c Counter
	var h Histogram
	tr := NewTraceRing(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(int64(i))
		tr.Record(i, OpWrite, 1, int64(i), 4096, int64(i))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(1)
		tr.Record(0, OpWrite, 1, 0, 4096, 1)
	}); allocs != 0 {
		b.Fatalf("disabled hot path allocates: %v allocs/op", allocs)
	}
}

// TestDisabledHotPathZeroAllocs asserts the same property in the regular
// test run, so the merge gate catches a regression without running benches.
func TestDisabledHotPathZeroAllocs(t *testing.T) {
	Disabled = true
	defer func() { Disabled = false }()
	var c Counter
	var h Histogram
	tr := NewTraceRing(64)
	if allocs := testing.AllocsPerRun(200, func() {
		c.Add(1)
		h.Observe(1)
		tr.Record(0, OpWrite, 1, 0, 4096, 1)
	}); allocs != 0 {
		t.Fatalf("disabled hot path allocates: %v allocs/op", allocs)
	}
}

// BenchmarkEnabledHotPath documents the enabled-path cost for comparison.
func BenchmarkEnabledHotPath(b *testing.B) {
	var c Counter
	var h Histogram
	tr := NewTraceRing(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(int64(i))
		tr.Record(i, OpWrite, 1, int64(i), 4096, int64(i))
	}
}

func TestBucketUpper(t *testing.T) {
	if bucketUpper(0) != 0 || bucketUpper(1) != 1 || bucketUpper(4) != 15 {
		t.Fatalf("bucketUpper: %d %d %d", bucketUpper(0), bucketUpper(1), bucketUpper(4))
	}
	if bucketUpper(63) <= 0 || bucketUpper(70) <= 0 {
		t.Fatal("bucketUpper must saturate, not overflow")
	}
}

func ExampleSnapshot_String() {
	r := NewRegistry()
	r.Counter("x").Add(2)
	fmt.Print(r.Snapshot().String())
	// Output: x 2
}
