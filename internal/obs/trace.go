package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Op is a traced operation kind.
type Op uint8

// Trace op kinds, one per instrumented layer entry point.
const (
	OpWrite Op = iota + 1
	OpRead
	OpFsync
	OpWriteMulti
	OpSnapshot
	OpSnapDrop
	OpSnapRead
	OpCleanerPass
	OpCheckpoint
	OpRecovery
)

// String returns the op's short name.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpFsync:
		return "fsync"
	case OpWriteMulti:
		return "writev"
	case OpSnapshot:
		return "snapshot"
	case OpSnapDrop:
		return "snap-drop"
	case OpSnapRead:
		return "snap-read"
	case OpCleanerPass:
		return "cleaner-pass"
	case OpCheckpoint:
		return "checkpoint"
	case OpRecovery:
		return "recovery"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one decoded trace record.
type Event struct {
	Seq    uint64 `json:"seq"`
	Worker int    `json:"worker"`
	Op     string `json:"op"`
	File   int    `json:"file"`
	Off    int64  `json:"off"`
	Len    int64  `json:"len"`
	DurNS  int64  `json:"dur_ns"`
}

const (
	ringShards    = 16 // workers hash here; must be a power of two
	slotWords     = 5  // seq, meta, off, len, dur
	minShardSlots = 8
)

// slot fields, all atomic so concurrent Record/Events stay race-free. A
// reader racing a wrapping writer can observe a mixed slot; Events filters
// the common tear (a new seq over old payload is detectable only by the
// writer, so this ring trades perfect consistency for a zero-lock hot
// path — it is a flight recorder, not an audit log).
type traceSlot struct {
	w [slotWords]atomic.Uint64
}

type traceShard struct {
	head  atomic.Uint64
	slots []traceSlot
}

// TraceRing is a fixed-size lock-free flight recorder: per-worker-shard
// rings of the most recent operations (kind, file, offset/len, global seq,
// duration), dumpable on demand, after recovery, and post-crash (the ring
// is volatile FS state, so the pre-crash FS object still holds it). Record
// is seven atomic operations, allocation-free, and short-circuited by
// Disabled.
type TraceRing struct {
	seq    atomic.Uint64
	mask   uint64
	shards [ringShards]traceShard
}

// NewTraceRing builds a ring holding perShard recent events per worker
// shard (rounded up to a power of two, minimum 8).
func NewTraceRing(perShard int) *TraceRing {
	n := minShardSlots
	for n < perShard {
		n <<= 1
	}
	t := &TraceRing{mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].slots = make([]traceSlot, n)
	}
	return t
}

// Record appends one event. Safe for concurrent use; no-op while Disabled
// is set or on a nil ring.
func (t *TraceRing) Record(worker int, op Op, file int, off, length, durNS int64) {
	if t == nil || Disabled {
		return
	}
	seq := t.seq.Add(1)
	sh := &t.shards[uint(worker)&(ringShards-1)]
	s := &sh.slots[sh.head.Add(1)&t.mask]
	s.w[0].Store(seq)
	s.w[1].Store(uint64(uint32(worker))<<32 | uint64(op)<<24 | uint64(uint32(file))&0xFFFFFF)
	s.w[2].Store(uint64(off))
	s.w[3].Store(uint64(length))
	s.w[4].Store(uint64(durNS))
}

// Events returns every recorded event, oldest first (by global sequence).
func (t *TraceRing) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		for j := range sh.slots {
			s := &sh.slots[j]
			seq := s.w[0].Load()
			if seq == 0 {
				continue
			}
			meta := s.w[1].Load()
			out = append(out, Event{
				Seq:    seq,
				Worker: int(int32(meta >> 32)),
				Op:     Op(meta >> 24 & 0xFF).String(),
				File:   int(meta & 0xFFFFFF),
				Off:    int64(s.w[2].Load()),
				Len:    int64(s.w[3].Load()),
				DurNS:  int64(s.w[4].Load()),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Format writes the events as aligned text, one line per event.
func (t *TraceRing) Format(w io.Writer) error {
	for _, e := range t.Events() {
		_, err := fmt.Fprintf(w, "#%-8d w%-4d %-12s file=%-3d off=%-10d len=%-8d dur=%dns\n",
			e.Seq, e.Worker, e.Op, e.File, e.Off, e.Len, e.DurNS)
		if err != nil {
			return err
		}
	}
	return nil
}
