package obs

import "sync/atomic"

// CounterShards is the number of independent cells in a ShardedCounter.
// Power of two so the worker hash reduces with a mask.
const CounterShards = 16

// counterCell is one shard of a ShardedCounter, padded out to a cache line
// so two shards never share one (the whole point is to stop hot counters
// from bouncing a single line between every core).
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a monotonically increasing counter split across
// per-worker cache-line-padded cells. A plain Counter is one atomic add —
// cheap in isolation, but at 16–64 workers every op slams the same cache
// line and the "free" instrumentation becomes a coherence hotspot on
// exactly the counters the hot path touches (writes, reads, byte tallies).
// Add takes the worker ID so each worker lands on a stable cell; Load sums
// the cells, which is fine for metrics that are read rarely (snapshots,
// validation) and written constantly.
//
// The zero value is ready to use. Load is not a point-in-time linearizable
// sum — concurrent adders may or may not be included — which matches the
// guarantees of every other counter in this package.
type ShardedCounter struct {
	cells [CounterShards]counterCell
}

// shardOf mixes sparse worker IDs (foreground 0..N-1, cleaner 1<<20,
// flusher 1<<21, harness setup IDs) into a cell index. Same finalizer as
// sim.WorkerHash, inlined to keep obs dependency-free.
func shardOf(worker int) int {
	h := uint32(worker)
	h ^= h >> 16
	h ^= h >> 8
	h *= 0x9E3779B1
	return int(h) & (CounterShards - 1)
}

// Add increments the worker's cell by d.
func (c *ShardedCounter) Add(worker int, d int64) {
	c.cells[shardOf(worker)].v.Add(d)
}

// Load returns the sum across all cells.
func (c *ShardedCounter) Load() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Store resets the counter to v (benchmark phase boundaries): cell 0 gets
// the value, every other cell is zeroed.
func (c *ShardedCounter) Store(v int64) {
	c.cells[0].v.Store(v)
	for i := 1; i < len(c.cells); i++ {
		c.cells[i].v.Store(0)
	}
}
