package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// SnapshotSchema versions the JSON form of a registry snapshot.
const SnapshotSchema = "mgsp-obs/v1"

// kind discriminates registered metrics.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindFunc
	kindHist
)

type metric struct {
	kind kind
	c    *Counter
	g    *Gauge
	f    func() float64
	h    *Histogram
}

// Registry is a named collection of metrics. One registry per file system
// (or device set): registration happens at mount time, off the hot path,
// and probes hold direct pointers to their metrics — the registry is only
// walked at snapshot/export time.
type Registry struct {
	mu sync.Mutex
	m  map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]metric)}
}

func (r *Registry) put(name string, mt metric) {
	r.mu.Lock()
	r.m[name] = mt
	r.mu.Unlock()
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if mt, ok := r.m[name]; ok && mt.kind == kindCounter {
		return mt.c
	}
	c := &Counter{}
	r.m[name] = metric{kind: kindCounter, c: c}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if mt, ok := r.m[name]; ok && mt.kind == kindGauge {
		return mt.g
	}
	g := &Gauge{}
	r.m[name] = metric{kind: kindGauge, g: g}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if mt, ok := r.m[name]; ok && mt.kind == kindHist {
		return mt.h
	}
	h := &Histogram{}
	r.m[name] = metric{kind: kindHist, h: h}
	return h
}

// RegisterCounter registers an externally owned counter (the migration path
// for pre-existing stats structs), replacing any previous registration.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.put(name, metric{kind: kindCounter, c: c})
}

// RegisterFunc registers a derived read-only metric, evaluated at snapshot
// time (e.g. a write-amplification ratio over two live counters).
func (r *Registry) RegisterFunc(name string, f func() float64) {
	r.put(name, metric{kind: kindFunc, f: f})
}

// RegisterSharded registers a ShardedCounter under name. The per-cell
// layout is an implementation detail; snapshots see the summed value, so a
// counter can move between Counter and ShardedCounter without changing any
// exported metric name.
func (r *Registry) RegisterSharded(name string, c *ShardedCounter) {
	r.put(name, metric{kind: kindFunc, f: func() float64 { return float64(c.Load()) }})
}

// Snapshot is a point-in-time copy of a registry, the unit every exporter
// consumes. Values holds counters, gauges, and derived metrics; Hists holds
// histogram snapshots.
type Snapshot struct {
	Schema string                  `json:"schema"`
	Values map[string]float64      `json:"values"`
	Hists  map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{Schema: SnapshotSchema, Values: make(map[string]float64, len(r.m))}
	for name, mt := range r.m {
		switch mt.kind {
		case kindCounter:
			s.Values[name] = float64(mt.c.Load())
		case kindGauge:
			s.Values[name] = float64(mt.g.Load())
		case kindFunc:
			s.Values[name] = mt.f()
		case kindHist:
			if s.Hists == nil {
				s.Hists = make(map[string]HistSnapshot)
			}
			s.Hists[name] = mt.h.Snapshot()
		}
	}
	return s
}

// Diff returns this snapshot with prev's counts subtracted: values and
// histogram count/sum/bucket totals are deltas, while quantiles and max
// keep the newer snapshot's view (quantiles of a difference are not
// recoverable from bucket deltas alone; the deltas themselves are).
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	out := &Snapshot{Schema: s.Schema, Values: make(map[string]float64, len(s.Values))}
	for name, v := range s.Values {
		out.Values[name] = v - prev.Values[name]
	}
	if s.Hists != nil {
		out.Hists = make(map[string]HistSnapshot, len(s.Hists))
		for name, h := range s.Hists {
			p := prev.Hists[name]
			d := h
			d.Count -= p.Count
			d.Sum -= p.Sum
			if d.Count > 0 {
				d.Mean = float64(d.Sum) / float64(d.Count)
			} else {
				d.Mean = 0
			}
			prevBuckets := make(map[int64]int64, len(p.Buckets))
			for _, b := range p.Buckets {
				prevBuckets[b[0]] = b[1]
			}
			d.Buckets = nil
			for _, b := range h.Buckets {
				if n := b[1] - prevBuckets[b[0]]; n != 0 {
					d.Buckets = append(d.Buckets, [2]int64{b[0], n})
				}
			}
			out.Hists[name] = d
		}
	}
	return out
}

// sortedNames returns m's keys in lexical order (stable exporter output).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSnapshot decodes a snapshot written by WriteJSON, rejecting foreign
// schemas.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("obs: schema %q, want %q", s.Schema, SnapshotSchema)
	}
	return &s, nil
}

// String renders the snapshot as aligned human-readable text.
func (s *Snapshot) String() string {
	var b strings.Builder
	w := 0
	for name := range s.Values {
		if len(name) > w {
			w = len(name)
		}
	}
	for name := range s.Hists {
		if len(name) > w {
			w = len(name)
		}
	}
	for _, name := range sortedNames(s.Values) {
		v := s.Values[name]
		if v == float64(int64(v)) {
			fmt.Fprintf(&b, "%-*s %d\n", w, name, int64(v))
		} else {
			fmt.Fprintf(&b, "%-*s %.4f\n", w, name, v)
		}
	}
	for _, name := range sortedNames(s.Hists) {
		h := s.Hists[name]
		fmt.Fprintf(&b, "%-*s n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d\n",
			w, name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}

// promName rewrites a dotted metric name into a Prometheus-legal one.
func promName(name string) string {
	return "mgsp_" + strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

// WritePrometheus writes the snapshot in Prometheus text exposition format:
// plain metrics as gauges, histograms as summaries (quantile labels plus
// _sum/_count/_max).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedNames(s.Values) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Values[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(s.Hists) {
		h := s.Hists[name]
		pn := promName(name)
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n%s_max %d\n",
			pn, pn, h.P50, pn, h.P95, pn, h.P99, pn, h.Sum, pn, h.Count, pn, h.Max)
		if err != nil {
			return err
		}
	}
	return nil
}
