// Package obs is MGSP's unified observability layer: an allocation-free
// metric registry (atomic counters, gauges, and log2-bucketed latency
// histograms), a fixed-size lock-free trace ring, and pluggable exporters
// (human text, JSON snapshots, Prometheus text, an HTTP endpoint).
//
// The paper's central claims are quantitative — every overwrite costs at
// most two media writes, write amplification stays near 1, MGL contention
// stays off the fast path — so the repro needs first-class instrumentation
// to keep those claims measurable as the system grows. Probes ride in every
// layer (core, nvm, cleaner, recovery) and report through one registry per
// file system, so `mgspbench -json` and `mgspstat` can emit and diff
// machine-readable BENCH_*.json artifacts.
//
// Cost discipline: counters are a single atomic add and are always live.
// Histograms and trace records are a handful of atomics and are
// short-circuited by Disabled, so the disabled hot path pays one branch and
// nothing else — no allocation on any path, enabled or not (enforced by a
// testing.B guard).
package obs

import "sync/atomic"

// Disabled short-circuits histogram observations and trace records (counter
// adds are kept: a single atomic, the floor the hot path already pays).
// Set it before file systems are built and do not toggle it while
// operations are in flight; reads are deliberately unsynchronized.
var Disabled bool

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so it can replace sync/atomic.Int64 fields in existing
// stats structs without changing any call site.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store resets the counter (benchmark phase boundaries).
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Gauge is an atomic last-value metric.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the last recorded value.
func (g *Gauge) Load() int64 { return g.v.Load() }
