package nova

import (
	"encoding/binary"
	"fmt"

	"mgsp/internal/alloc"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// Mount rebuilds a NOVA file system from the persistent image on dev — the
// recovery path after a crash. It scans the directory slots, replays each
// inode's log up to the committed tail to rebuild the DRAM radix trees, and
// reconstructs the volatile allocator state from the pages the logs
// reference (NOVA keeps its free lists in DRAM and rebuilds them at mount).
func Mount(ctx *sim.Ctx, dev *nvm.Device) (*FS, error) {
	fs := &FS{
		dev:   dev,
		costs: dev.Costs(),
		alloc: alloc.New(dirSize, dev.Size()-dirSize, pageSize, dev.Costs()),
		files: make(map[string]*inode),
		slots: make([]bool, maxFiles),
	}
	var slot [slotSize]byte
	for i := 0; i < maxFiles; i++ {
		dev.Read(ctx, slot[:], fs.slotOff(i))
		if binary.LittleEndian.Uint64(slot[slotFlags:]) != 1 {
			continue
		}
		nameLen := binary.LittleEndian.Uint64(slot[slotNameLen:])
		if nameLen > slotSize-slotName {
			return nil, fmt.Errorf("nova: slot %d has corrupt name length %d", i, nameLen)
		}
		head, tail := unpackRef(binary.LittleEndian.Uint64(slot[slotLogRef:]))
		ino := &inode{
			fs:      fs,
			name:    string(slot[slotName : slotName+nameLen]),
			slot:    i,
			pages:   make(map[int64]int64),
			logHead: head,
			logTail: tail,
		}
		if err := ino.replayLog(ctx); err != nil {
			return nil, fmt.Errorf("nova: inode %q: %w", ino.name, err)
		}
		fs.slots[i] = true
		fs.files[ino.name] = ino
	}
	return fs, nil
}

// replayLog walks the inode's log from head to the committed tail, applying
// each entry, then marks the surviving data pages and log pages allocated.
func (ino *inode) replayLog(ctx *sim.Ctx) error {
	fs := ino.fs
	if err := fs.alloc.MarkAllocated(ino.logHead, 1); err != nil {
		return err
	}
	ino.logPages = 1
	pos := ino.logHead
	var buf [entrySize]byte
	for pos != ino.logTail {
		if pos%pageSize == nextPtrOffset {
			next := int64(fs.dev.Load8(pos))
			if next == 0 {
				return fmt.Errorf("log chain broken at %d", pos)
			}
			if err := fs.alloc.MarkAllocated(next, 1); err != nil {
				return err
			}
			ino.logPages++
			pos = next
			continue
		}
		fs.dev.Read(ctx, buf[:], pos)
		e, ok := decodeEntry(buf[:])
		if !ok {
			return fmt.Errorf("corrupt log entry below committed tail at %d", pos)
		}
		ino.apply(ctx, e, false)
		ctx.Advance(fs.costs.IndexStep * 2)
		pos += entrySize
	}
	for _, blk := range ino.pages {
		if err := fs.alloc.MarkAllocated(blk, 1); err != nil {
			// Two live entries can reference one page only if a later write
			// superseded part of an earlier multi-page run; the radix holds
			// the survivor, so double marks indicate real corruption —
			// except pages shared between inodes, which cannot happen.
			return err
		}
	}
	return nil
}
