package nova

import (
	"bytes"
	"testing"

	"mgsp/internal/fstest"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

func TestBattery(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return New(nvm.New(96<<20, sim.ZeroCosts()))
	})
}

func TestEveryWriteDurableWithoutFsync(t *testing.T) {
	dev := nvm.New(16<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, 6000) // unaligned, multi-page
	f.WriteAt(ctx, data, 100)

	dev.DropVolatile()
	fs2, err := Mount(ctx, dev)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	f2, err := fs2.Open(ctx, "f")
	if err != nil {
		t.Fatalf("Open after remount: %v", err)
	}
	if f2.Size() != 6100 {
		t.Fatalf("recovered size = %d, want 6100", f2.Size())
	}
	buf := make([]byte, 6000)
	f2.ReadAt(ctx, buf, 100)
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost across remount without fsync (NOVA ops must be synchronous)")
	}
}

// TestCrashSweepWriteAtomicity crashes the device at every media-op index
// during a multi-page write and verifies the write is all-or-nothing.
func TestCrashSweepWriteAtomicity(t *testing.T) {
	const fileSize = 64 * 1024
	old := bytes.Repeat([]byte{0xAA}, fileSize)
	new_ := bytes.Repeat([]byte{0xBB}, 9000) // spans 3+ pages, unaligned

	for fail := int64(0); ; fail++ {
		dev := nvm.New(32<<20, sim.ZeroCosts())
		fs := New(dev)
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		f.WriteAt(ctx, old, 0)

		dev.ArmCrash(fail, fail+100)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrCrashed {
						panic(r)
					}
					crashed = true
				}
			}()
			f.WriteAt(ctx, new_, 1000)
		}()
		if !crashed {
			// The whole op completed before the fail point: sweep is done.
			if fail == 0 {
				t.Fatal("crash sweep never triggered")
			}
			return
		}
		dev.Recover()
		fs2, err := Mount(ctx, dev)
		if err != nil {
			t.Fatalf("fail=%d: Mount: %v", fail, err)
		}
		f2, err := fs2.Open(ctx, "f")
		if err != nil {
			t.Fatalf("fail=%d: Open: %v", fail, err)
		}
		buf := make([]byte, fileSize)
		n, _ := f2.ReadAt(ctx, buf, 0)
		want := make([]byte, fileSize)
		copy(want, old)
		if gotNew := bytes.Equal(buf[1000:1000+9000], new_); gotNew {
			copy(want[1000:], new_) // write committed: all of it must be there
		}
		if !bytes.Equal(buf[:n], want[:n]) {
			t.Fatalf("fail=%d: file is neither old nor new (torn write visible)", fail)
		}
	}
}

// TestSubPageWriteAmplification: a 1 KiB write must cost a full 4 KiB page
// plus a log entry (NOVA's CoW amplification, Figure 8/13 driver).
func TestSubPageWriteAmplification(t *testing.T) {
	dev := nvm.New(16<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 4096), 0)

	dev.ResetStats()
	f.WriteAt(ctx, make([]byte, 1024), 0)
	wrote := dev.Stats().MediaWriteBytes.Load()
	if wrote < 4096+entrySize {
		t.Fatalf("1K overwrite wrote %d media bytes, want >= %d (CoW page + entry)", wrote, 4096+entrySize)
	}
	if wrote > 4096+entrySize+64 {
		t.Fatalf("1K overwrite wrote %d media bytes, too much", wrote)
	}
}

// TestCoWReleasesOldPages: steady-state overwrites must not leak blocks.
func TestCoWReleasesOldPages(t *testing.T) {
	dev := nvm.New(16<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 16*4096), 0)
	used := fs.alloc.UsedBlocks()
	for i := 0; i < 50; i++ {
		f.WriteAt(ctx, make([]byte, 4096), int64(i%16)*4096)
	}
	// Only log pages may have grown.
	growth := fs.alloc.UsedBlocks() - used
	if growth > 2 {
		t.Fatalf("steady-state overwrites leaked %d blocks", growth)
	}
}

func TestLogPageChaining(t *testing.T) {
	dev := nvm.New(32<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	// More writes than one log page holds (63 entries).
	for i := 0; i < 200; i++ {
		f.WriteAt(ctx, []byte{byte(i)}, int64(i)*4096)
	}
	// Remount and verify everything replays across the chain.
	dev.DropVolatile()
	fs2, err := Mount(ctx, dev)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := fs2.Open(ctx, "f")
	buf := make([]byte, 1)
	for i := 0; i < 200; i++ {
		f2.ReadAt(ctx, buf, int64(i)*4096)
		if buf[0] != byte(i) {
			t.Fatalf("page %d = %d after chained-log replay, want %d", i, buf[0], byte(i))
		}
	}
}

func TestRemoveReclaimsSpace(t *testing.T) {
	dev := nvm.New(16<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 1<<20), 0)
	f.Close(ctx)
	if err := fs.Remove(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	fs.alloc.Drain(ctx) // flush shard caches: exact-count audit below
	if used := fs.alloc.UsedBlocks(); used != 0 {
		t.Fatalf("%d blocks leaked after remove", used)
	}
	// The slot must be reusable and the file gone after remount.
	dev.DropVolatile()
	fs2, err := Mount(ctx, dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Open(ctx, "f"); err != vfs.ErrNotExist {
		t.Fatalf("removed file visible after remount: %v", err)
	}
}

func TestFsyncIsCheap(t *testing.T) {
	dev := nvm.New(16<<20, sim.DefaultCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 4096), 0)
	before := dev.Stats().MediaWriteBytes.Load()
	f.Fsync(ctx)
	if got := dev.Stats().MediaWriteBytes.Load() - before; got != 0 {
		t.Fatalf("NOVA fsync wrote %d media bytes, want 0", got)
	}
}

func TestConsistencyLevel(t *testing.T) {
	fs := New(nvm.New(1<<20, sim.ZeroCosts()))
	if fs.Consistency() != vfs.OpAtomic {
		t.Fatal("NOVA must advertise op-level atomicity")
	}
}
