// Package nova simulates NOVA (Xu & Swanson, FAST'16), the kernel-space
// log-structured NVM file system the paper uses as its strong-consistency
// baseline. The properties the evaluation depends on are modeled faithfully:
//
//   - per-inode logs: every write appends a 64-byte entry describing the new
//     data pages and commits by atomically updating the 8-byte log tail, so
//     each operation is failure-atomic without fsync;
//   - copy-on-write data: writes allocate fresh 4 KiB pages; sub-page writes
//     read-modify-copy the old page, which is NOVA's write amplification on
//     fine-grained updates (Figure 8, Figure 13);
//   - a DRAM radix per inode maps logical pages to blocks, rebuilt from the
//     persistent log at mount/recovery (NOVA keeps allocator state volatile);
//   - writes to one inode serialize on the inode log lock (Figure 10).
//
// Operations still pay the kernel round-trip costs (NOVA is a kernel FS),
// though its log-structured read/write paths are considerably thinner than
// ext4's iomap/page-cache machinery (half the in-kernel VFS overhead here).
package nova

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"mgsp/internal/alloc"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

const (
	pageSize = 4096

	// Persistent layout: a directory table of inode slots at the device
	// start, then the block region for data and log pages.
	slotSize = 64
	maxFiles = 1024
	dirSize  = maxFiles * slotSize

	// Log entries.
	entrySize       = 64
	entriesPerPage  = pageSize/entrySize - 1 // last slot holds the next-page pointer
	nextPtrOffset   = int64(entriesPerPage * entrySize)
	entryTypeWrite  = 1
	entryTypeSetLen = 2
)

// FS is a mounted NOVA instance.
type FS struct {
	dev   *nvm.Device
	costs *sim.Costs
	alloc *alloc.Allocator

	mu    sim.Mutex // namespace lock
	files map[string]*inode
	slots []bool // directory slot usage
}

// New formats a fresh NOVA file system over the device.
func New(dev *nvm.Device) *FS {
	return &FS{
		dev:   dev,
		costs: dev.Costs(),
		alloc: alloc.New(dirSize, dev.Size()-dirSize, pageSize, dev.Costs()),
		files: make(map[string]*inode),
		slots: make([]bool, maxFiles),
	}
}

// Name implements vfs.FS.
func (fs *FS) Name() string { return "NOVA" }

// Device implements vfs.FS.
func (fs *FS) Device() *nvm.Device { return fs.dev }

// Consistency implements vfs.Guarantees: every NOVA operation is atomic and
// synchronous.
func (fs *FS) Consistency() vfs.ConsistencyLevel { return vfs.OpAtomic }

type inode struct {
	fs   *FS
	name string
	slot int

	lock sim.RWMutex // guards log appends and the radix

	size     int64
	pages    map[int64]int64 // logical page -> device offset (DRAM radix)
	logHead  int64           // device offset of first log page
	logTail  int64           // device offset of next free entry
	logPages int64           // chain length (GC trigger)
	refs     int
	removed  bool
}

// ---- directory slots (persistent) ----
//
// Slot layout (64 B): flags(8) logRef(8) nameLen(8) name(40).
// flags: 0 = free, 1 = live. logRef packs the log head page index (upper
// 24 bits) and the tail byte offset (lower 40 bits) into one word, so both
// ordinary commits AND whole-chain switches (log GC) publish with a single
// atomic store.

const (
	slotFlags   = 0
	slotLogRef  = 8
	slotNameLen = 16
	slotName    = 24 // 40 bytes of name
)

// packRef combines the head page and tail offset; unpackRef reverses it.
func packRef(head, tail int64) uint64 {
	return uint64(head/pageSize)<<40 | uint64(tail)
}

func unpackRef(ref uint64) (head, tail int64) {
	return int64(ref>>40) * pageSize, int64(ref & (1<<40 - 1))
}

func (fs *FS) slotOff(slot int) int64 { return int64(slot) * slotSize }

func (fs *FS) writeSlot(ctx *sim.Ctx, ino *inode) {
	off := fs.slotOff(ino.slot)
	var buf [slotSize]byte
	binary.LittleEndian.PutUint64(buf[slotFlags:], 1)
	binary.LittleEndian.PutUint64(buf[slotLogRef:], packRef(ino.logHead, ino.logTail))
	name := ino.name
	if len(name) > slotSize-slotName {
		name = name[:slotSize-slotName]
	}
	binary.LittleEndian.PutUint64(buf[slotNameLen:], uint64(len(name)))
	copy(buf[slotName:], name)
	fs.dev.WriteNT(ctx, buf[:], off)
	fs.dev.Fence(ctx)
}

func (fs *FS) clearSlot(ctx *sim.Ctx, slot int) {
	fs.dev.Store8(ctx, fs.slotOff(slot)+slotFlags, 0)
}

// commitTail atomically publishes the new log reference — the 8-byte atomic
// update that makes each NOVA operation failure-atomic (and that log GC
// reuses to switch whole chains).
func (ino *inode) commitTail(ctx *sim.Ctx) {
	ino.fs.dev.Store8(ctx, ino.fs.slotOff(ino.slot)+slotLogRef, packRef(ino.logHead, ino.logTail))
}

// ---- log entries ----

type logEntry struct {
	kind    uint32
	pgoff   int64 // first logical page
	npages  int64
	block   int64 // device offset of first data page (contiguous run)
	newSize int64
}

func (e *logEntry) encode() [entrySize]byte {
	var b [entrySize]byte
	binary.LittleEndian.PutUint32(b[0:], e.kind)
	binary.LittleEndian.PutUint64(b[8:], uint64(e.pgoff))
	binary.LittleEndian.PutUint64(b[16:], uint64(e.npages))
	binary.LittleEndian.PutUint64(b[24:], uint64(e.block))
	binary.LittleEndian.PutUint64(b[32:], uint64(e.newSize))
	binary.LittleEndian.PutUint32(b[60:], crc32.ChecksumIEEE(b[:60]))
	return b
}

func decodeEntry(b []byte) (logEntry, bool) {
	if crc32.ChecksumIEEE(b[:60]) != binary.LittleEndian.Uint32(b[60:]) {
		return logEntry{}, false
	}
	return logEntry{
		kind:    binary.LittleEndian.Uint32(b[0:]),
		pgoff:   int64(binary.LittleEndian.Uint64(b[8:])),
		npages:  int64(binary.LittleEndian.Uint64(b[16:])),
		block:   int64(binary.LittleEndian.Uint64(b[24:])),
		newSize: int64(binary.LittleEndian.Uint64(b[32:])),
	}, true
}

// appendEntry writes a log entry at the tail (allocating and linking a new
// log page when the current one is full), fences, and commits the tail.
func (ino *inode) appendEntry(ctx *sim.Ctx, e logEntry) error {
	fs := ino.fs
	if ino.logTail%pageSize == nextPtrOffset {
		// Current page full: link a fresh one.
		np, err := fs.alloc.Alloc(ctx)
		if err != nil {
			return err
		}
		curPage := ino.logTail - nextPtrOffset
		fs.dev.Store8(ctx, curPage+nextPtrOffset, uint64(np))
		ino.logTail = np
		ino.logPages++
	}
	buf := e.encode()
	fs.dev.WriteNT(ctx, buf[:], ino.logTail)
	fs.dev.Fence(ctx)
	ino.logTail += entrySize
	ino.commitTail(ctx)
	return nil
}

// apply folds a log entry into the DRAM radix (used by both the write path
// and recovery).
func (ino *inode) apply(ctx *sim.Ctx, e logEntry, freeOld bool) {
	switch e.kind {
	case entryTypeWrite:
		for i := int64(0); i < e.npages; i++ {
			pg := e.pgoff + i
			if old, ok := ino.pages[pg]; ok && freeOld {
				ino.fs.alloc.Free(ctx, old, 1)
			}
			ino.pages[pg] = e.block + i*pageSize
		}
		if e.newSize > ino.size {
			ino.size = e.newSize
		}
	case entryTypeSetLen:
		if e.newSize < ino.size {
			keep := (e.newSize + pageSize - 1) / pageSize
			for pg := range ino.pages {
				if pg >= keep {
					if freeOld {
						ino.fs.alloc.Free(ctx, ino.pages[pg], 1)
					}
					delete(ino.pages, pg)
				}
			}
		}
		ino.size = e.newSize
	}
}

// ---- vfs.FS ----

// Create implements vfs.FS.
func (fs *FS) Create(ctx *sim.Ctx, name string) (vfs.File, error) {
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	if ino := fs.files[name]; ino != nil {
		// Deferred unlock: truncation issues media ops, and a crash-injection
		// panic there must not leak the inode lock.
		err := func() error {
			ino.lock.Lock(ctx)
			defer ino.lock.Unlock(ctx)
			return ino.truncateLocked(ctx, 0)
		}()
		if err != nil {
			return nil, err
		}
		ino.refs++
		return &handle{ino: ino}, nil
	}
	slot := -1
	for i, used := range fs.slots {
		if !used {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("nova: directory full")
	}
	head, err := fs.alloc.Alloc(ctx) // first log page
	if err != nil {
		return nil, err
	}
	ino := &inode{
		fs: fs, name: name, slot: slot,
		pages:   make(map[int64]int64),
		logHead: head, logTail: head, logPages: 1,
	}
	fs.slots[slot] = true
	fs.files[name] = ino
	fs.writeSlot(ctx, ino)
	ino.refs++
	return &handle{ino: ino}, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(ctx *sim.Ctx, name string) (vfs.File, error) {
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	ino := fs.files[name]
	if ino == nil {
		return nil, vfs.ErrNotExist
	}
	ino.refs++
	return &handle{ino: ino}, nil
}

// Remove implements vfs.FS.
func (fs *FS) Remove(ctx *sim.Ctx, name string) error {
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	ino := fs.files[name]
	if ino == nil {
		return vfs.ErrNotExist
	}
	delete(fs.files, name)
	fs.slots[ino.slot] = false
	fs.clearSlot(ctx, ino.slot)
	ino.removed = true
	if ino.refs == 0 {
		ino.releaseAll(ctx)
	}
	return nil
}

func (ino *inode) releaseAll(ctx *sim.Ctx) {
	for _, blk := range ino.pages {
		ino.fs.alloc.Free(ctx, blk, 1)
	}
	ino.pages = map[int64]int64{}
	// Free the log chain.
	for pg := ino.logHead; pg != 0; {
		next := int64(ino.fs.dev.Load8(pg + nextPtrOffset))
		ino.fs.alloc.Free(ctx, pg, 1)
		pg = next
	}
	ino.logHead, ino.logTail = 0, 0
}

func (ino *inode) truncateLocked(ctx *sim.Ctx, size int64) error {
	shrink := size < ino.size
	if err := ino.appendAndApply(ctx, logEntry{kind: entryTypeSetLen, newSize: size}); err != nil {
		return err
	}
	// Maintain the invariant that allocated bytes beyond EOF are zero, so a
	// later extension exposes no stale data.
	if in := size % pageSize; shrink && in != 0 {
		if blk, ok := ino.pages[size/pageSize]; ok {
			zero := make([]byte, pageSize-in)
			ino.fs.dev.WriteNT(ctx, zero, blk+in)
			// Drain the zeroing before returning: the SetLen entry above is
			// already committed, and a caller's next commit must not be able
			// to persist ahead of these zeros.
			ino.fs.dev.Fence(ctx)
		}
	}
	return nil
}

func (ino *inode) appendAndApply(ctx *sim.Ctx, e logEntry) error {
	if err := ino.appendEntry(ctx, e); err != nil {
		return err
	}
	ino.apply(ctx, e, true)
	return ino.maybeGC(ctx)
}

// handle is an open descriptor.
type handle struct {
	ino    *inode
	closed bool
}

var _ vfs.File = (*handle)(nil)

// Size implements vfs.File.
func (h *handle) Size() int64 { return h.ino.size }

// Close implements vfs.File.
func (h *handle) Close(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	h.closed = true
	fs := h.ino.fs
	ctx.Advance(fs.costs.Syscall)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	h.ino.refs--
	if h.ino.refs == 0 && h.ino.removed {
		h.ino.releaseAll(ctx)
	}
	return nil
}

// Truncate implements vfs.File.
func (h *handle) Truncate(ctx *sim.Ctx, size int64) error {
	if h.closed {
		return vfs.ErrClosed
	}
	ino := h.ino
	ctx.Advance(ino.fs.costs.Syscall + ino.fs.costs.VFSOp)
	ino.lock.Lock(ctx)
	defer ino.lock.Unlock(ctx)
	return ino.truncateLocked(ctx, size)
}

// WriteAt implements vfs.File. Each call is one failure-atomic NOVA write.
func (h *handle) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("nova: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	ino := h.ino
	fs := ino.fs
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp/2)
	ino.lock.Lock(ctx)
	defer ino.lock.Unlock(ctx)

	end := off + int64(len(p))
	p0 := off / pageSize
	p1 := (end - 1) / pageSize
	n := p1 - p0 + 1

	blocks, err := fs.alloc.AllocContig(ctx, n)
	if err != nil {
		return 0, err
	}

	// Build each new page: CoW merge for partially-covered head/tail pages.
	var pagebuf [pageSize]byte
	for i := int64(0); i < n; i++ {
		pg := p0 + i
		pgStart := pg * pageSize
		lo, hi := off, end
		if lo < pgStart {
			lo = pgStart
		}
		if hi > pgStart+pageSize {
			hi = pgStart + pageSize
		}
		fullCover := lo == pgStart && hi == pgStart+pageSize
		dst := blocks + i*pageSize
		out := p[lo-off : hi-off]
		if !fullCover {
			// Read-modify-copy: old page (or zeros), patched with new bytes,
			// written out whole — NOVA's sub-page write amplification.
			if old, ok := ino.pages[pg]; ok {
				fs.dev.Read(ctx, pagebuf[:], old)
			} else {
				pagebuf = [pageSize]byte{}
			}
			copy(pagebuf[lo-pgStart:], out)
			out = pagebuf[:]
		}
		fs.dev.WriteNT(ctx, out, dst)
	}
	// CoW pages durable before the log entry referencing them commits: a
	// crash after the tail publish must replay onto fully-written pages.
	fs.dev.Fence(ctx)

	newSize := ino.size
	if end > newSize {
		newSize = end
	}
	if err := ino.appendAndApply(ctx, logEntry{
		kind: entryTypeWrite, pgoff: p0, npages: n, block: blocks, newSize: newSize,
	}); err != nil {
		return 0, err
	}
	return len(p), nil
}

// ReadAt implements vfs.File.
func (h *handle) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("nova: negative offset %d", off)
	}
	ino := h.ino
	fs := ino.fs
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp/2)
	ino.lock.RLock(ctx)
	defer ino.lock.RUnlock(ctx)

	if off >= ino.size {
		return 0, nil
	}
	n := len(p)
	if int64(n) > ino.size-off {
		n = int(ino.size - off)
	}
	read := 0
	for read < n {
		pos := off + int64(read)
		pg := pos / pageSize
		in := pos % pageSize
		chunk := pageSize - int(in)
		if chunk > n-read {
			chunk = n - read
		}
		ctx.Advance(fs.costs.IndexStep * 3) // radix walk
		if blk, ok := ino.pages[pg]; ok {
			fs.dev.Read(ctx, p[read:read+chunk], blk+in)
		} else {
			for i := read; i < read+chunk; i++ {
				p[i] = 0
			}
		}
		read += chunk
	}
	return n, nil
}

// Fsync implements vfs.File: NOVA operations are synchronous, so fsync is a
// kernel round trip and a fence.
func (h *handle) Fsync(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	ctx.Advance(h.ino.fs.costs.Syscall + h.ino.fs.costs.FsyncPath)
	h.ino.fs.dev.Fence(ctx)
	return nil
}
