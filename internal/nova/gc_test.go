package nova

import (
	"bytes"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestGCBoundsLogGrowth: heavy overwrites must not grow the log without
// bound once compaction kicks in.
func TestGCBoundsLogGrowth(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 64*1024), 0) // 16 pages of data

	for i := 0; i < 5000; i++ {
		f.WriteAt(ctx, make([]byte, 4096), int64(i%16)*4096)
	}
	ino := fs.files["f"]
	if ino.logPages > 2*gcLogPages {
		t.Fatalf("log grew to %d pages despite GC", ino.logPages)
	}
	// Space check: data pages + small log, not thousands of log pages.
	if used := fs.alloc.UsedBlocks(); used > 100 {
		t.Fatalf("%d blocks used after overwrite churn (log leak)", used)
	}
}

// TestGCPreservesContentAndRecovery: content survives compaction, both live
// and across a remount.
func TestGCPreservesContent(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	ref := make([]byte, 128*1024)
	f.WriteAt(ctx, ref, 0)
	for i := 0; i < 3000; i++ {
		off := ctx.Rand.Int63n(int64(len(ref)-5000)) &^ 511
		pat := bytes.Repeat([]byte{byte(i + 1)}, 512+ctx.Rand.Intn(4096))
		f.WriteAt(ctx, pat, off)
		copy(ref[off:], pat)
	}
	buf := make([]byte, len(ref))
	f.ReadAt(ctx, buf, 0)
	if !bytes.Equal(buf, ref) {
		t.Fatal("content diverged during GC churn")
	}
	dev.DropVolatile()
	fs2, err := Mount(ctx, dev)
	if err != nil {
		t.Fatalf("Mount after GC: %v", err)
	}
	f2, _ := fs2.Open(ctx, "f")
	f2.ReadAt(ctx, buf, 0)
	if !bytes.Equal(buf, ref) {
		t.Fatal("content lost across remount after GC")
	}
}

// TestGCCrashAtomicity: crashes during compaction leave a mountable,
// correct file (old or new chain, never a broken one).
func TestGCCrashAtomicity(t *testing.T) {
	for fail := int64(5); fail < 3000; fail += 97 {
		dev := nvm.New(64<<20, sim.ZeroCosts())
		fs := New(dev)
		ctx := sim.NewCtx(0, fail)
		f, _ := fs.Create(ctx, "f")
		ref := make([]byte, 64*1024)
		f.WriteAt(ctx, ref, 0)

		dev.ArmCrash(fail, fail)
		written := map[int64]byte{}
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			for i := 0; i < 2000; i++ {
				off := int64(i%16) * 4096
				pat := byte(i%250 + 1)
				if _, err := f.WriteAt(ctx, bytes.Repeat([]byte{pat}, 4096), off); err != nil {
					return
				}
				written[off] = pat
			}
		}()
		dev.DisarmCrash()
		dev.Recover()
		fs2, err := Mount(ctx, dev)
		if err != nil {
			t.Fatalf("fail=%d: Mount: %v", fail, err)
		}
		f2, err := fs2.Open(ctx, "f")
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		buf := make([]byte, 4096)
		for off, pat := range written {
			f2.ReadAt(ctx, buf, off)
			// The last write to this offset may have been in flight; accept
			// the recorded pattern or any older uniform pattern, but never a
			// torn page.
			first := buf[0]
			for i, b := range buf {
				if b != first {
					t.Fatalf("fail=%d: page %d torn at %d", fail, off, i)
				}
			}
			_ = pat
		}
	}
}
