package nova

import (
	"mgsp/internal/sim"
)

// Log garbage collection. NOVA compacts an inode's log when dead entries
// (superseded writes) accumulate: the live state is rewritten as a dense
// fresh chain and the inode's packed logRef word is switched to it with one
// 8-byte atomic store — the same commit primitive ordinary appends use, so
// a crash at any point leaves either the old chain or the new one, both
// decoding to the same radix state. Without GC, a long-lived file's log
// grows without bound (the FIO runs overwrite the same blocks thousands of
// times).

// gcLogPages triggers compaction once the chain exceeds this many pages
// while at least half the entries are dead.
const gcLogPages = 16

// maybeGC compacts the log when it has grown large and mostly dead. The
// caller holds the inode write lock.
func (ino *inode) maybeGC(ctx *sim.Ctx) error {
	if ino.logPages < gcLogPages {
		return nil
	}
	live := int64(len(ino.pages)) + 1 // worst case: one entry per radix page + size entry
	capacity := ino.logPages * int64(entriesPerPage)
	if live*2 > capacity {
		return nil
	}
	return ino.compactLog(ctx)
}

// compactLog rewrites the live state (radix contents + size) as one dense
// chain and atomically switches to it.
func (ino *inode) compactLog(ctx *sim.Ctx) error {
	fs := ino.fs
	newHead, err := fs.alloc.Alloc(ctx)
	if err != nil {
		return err
	}
	oldHead, oldTail := ino.logHead, ino.logTail

	cur := newHead
	pages := int64(1)
	emit := func(e logEntry) error {
		if cur%pageSize == nextPtrOffset {
			np, err := fs.alloc.Alloc(ctx)
			if err != nil {
				return err
			}
			fs.dev.Store8(ctx, cur, uint64(np))
			cur = np
			pages++
		}
		buf := e.encode()
		fs.dev.WriteNT(ctx, buf[:], cur)
		cur += entrySize
		return nil
	}
	// Coalesce physically contiguous page runs into single write entries.
	pgs := make([]int64, 0, len(ino.pages))
	for pg := range ino.pages {
		pgs = append(pgs, pg)
	}
	sortInt64s(pgs)
	for i := 0; i < len(pgs); {
		start := i
		for i+1 < len(pgs) &&
			pgs[i+1] == pgs[i]+1 &&
			ino.pages[pgs[i+1]] == ino.pages[pgs[i]]+pageSize {
			i++
		}
		run := pgs[start : i+1]
		if err := emit(logEntry{
			kind:   entryTypeWrite,
			pgoff:  run[0],
			npages: int64(len(run)),
			block:  ino.pages[run[0]],
		}); err != nil {
			return err
		}
		i++
	}
	if err := emit(logEntry{kind: entryTypeSetLen, newSize: ino.size}); err != nil {
		return err
	}
	fs.dev.Fence(ctx)

	// Atomic switch: one Store8 of the packed (head, tail) reference.
	ino.logHead, ino.logTail, ino.logPages = newHead, cur, pages
	ino.commitTail(ctx)

	// Reclaim the old chain; the tail page is the one containing oldTail
	// (or equal to it when the log ended exactly at a page boundary).
	for pg := oldHead; ; {
		last := oldTail >= pg && oldTail <= pg+nextPtrOffset
		var next int64
		if !last {
			next = int64(fs.dev.Load8(pg + nextPtrOffset))
		}
		fs.alloc.Free(ctx, pg, 1)
		if last || next == 0 {
			break
		}
		pg = next
	}
	return nil
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
