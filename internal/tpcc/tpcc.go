// Package tpcc implements the TPC-C workload over the internal/sqlite
// engine, as the paper's Figure 12 runs it against SQLite. The schema and
// the five transaction profiles follow the TPC-C specification with the
// standard mix (New-Order 45%, Payment 43%, Order-Status 4%, Delivery 4%,
// Stock-Level 4%), scaled down by configurable factors so runs finish in
// simulation. The headline metric is tpmC: New-Order transactions per
// virtual minute.
package tpcc

import (
	"encoding/binary"
	"fmt"

	"mgsp/internal/sim"
	"mgsp/internal/sqlite"
	"mgsp/internal/vfs"
)

// Config scales the database and run length.
type Config struct {
	Warehouses int
	// DistrictsPerWarehouse is 10 in the spec.
	Districts int
	// CustomersPerDistrict is 3000 in the spec; scaled down by default.
	Customers int
	// Items is 100000 in the spec; scaled down by default.
	Items int
	// Transactions is the measured transaction count.
	Transactions int
	Seed         int64
}

// DefaultConfig returns a laptop-scale TPC-C instance.
func DefaultConfig() Config {
	return Config{Warehouses: 2, Districts: 10, Customers: 120, Items: 1000, Transactions: 600, Seed: 7}
}

// Result aggregates the run.
type Result struct {
	FS   string
	Mode sqlite.JournalMode

	TpmC      float64 // New-Order transactions per virtual minute
	TotalTPS  float64
	NewOrders int
	Aborted   int
	VirtualNS int64
}

// tables
const (
	tWarehouse = "warehouse"
	tDistrict  = "district"
	tCustomer  = "customer"
	tCustIdx   = "customer_name" // secondary index: last name -> customer id
	tItem      = "item"
	tStock     = "stock"
	tOrder     = "orders"
	tNewOrder  = "new_order"
	tOrderLine = "order_line"
	tHistory   = "history"
)

var allTables = []string{tWarehouse, tDistrict, tCustomer, tCustIdx, tItem, tStock, tOrder, tNewOrder, tOrderLine, tHistory}

// lastName builds the spec's syllable-composed customer last name from a
// number (TPC-C §4.3.2.3).
func lastName(num int) string {
	syl := []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	return syl[num/100%10] + syl[num/10%10] + syl[num%10]
}

// nameKey is the secondary-index key: (w, d, name, cID) so equal names
// cluster and scan in customer-id order.
func nameKey(w, d int, name string, c int) []byte {
	k := make([]byte, 8+len(name)+4)
	binary.BigEndian.PutUint32(k[0:], uint32(w))
	binary.BigEndian.PutUint32(k[4:], uint32(d))
	copy(k[8:], name)
	binary.BigEndian.PutUint32(k[8+len(name):], uint32(c))
	return k
}

// ---- key encodings (big-endian composites preserve order) ----

func k1(a int) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(a))
	return b
}

func k2(a, b int) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint32(k[0:], uint32(a))
	binary.BigEndian.PutUint32(k[4:], uint32(b))
	return k
}

func k3(a, b, c int) []byte {
	k := make([]byte, 12)
	binary.BigEndian.PutUint32(k[0:], uint32(a))
	binary.BigEndian.PutUint32(k[4:], uint32(b))
	binary.BigEndian.PutUint32(k[8:], uint32(c))
	return k
}

func k4(a, b, c, d int) []byte {
	k := make([]byte, 16)
	binary.BigEndian.PutUint32(k[0:], uint32(a))
	binary.BigEndian.PutUint32(k[4:], uint32(b))
	binary.BigEndian.PutUint32(k[8:], uint32(c))
	binary.BigEndian.PutUint32(k[12:], uint32(d))
	return k
}

// ---- row encodings: fixed numeric fields + filler to realistic widths ----

type row struct{ b []byte }

func newRow(numFields, filler int) row {
	return row{b: make([]byte, numFields*8+filler)}
}

func (r row) getF(i int) int64 { return int64(binary.LittleEndian.Uint64(r.b[i*8:])) }
func (r row) setF(i int, v int64) {
	binary.LittleEndian.PutUint64(r.b[i*8:], uint64(v))
}

// Field indices per table (documented widths approximate TPC-C row sizes).
const (
	// warehouse: ytd; filler ~80 (name, address, tax).
	wYTD = 0
	// district: ytd, nextOID; filler ~90.
	dYTD, dNextOID = 0, 1
	// customer: balance, ytdPayment, paymentCnt, deliveryCnt, lastOrder;
	// filler ~500.
	cBalance, cYTDPayment, cPaymentCnt, cDeliveryCnt, cLastOrder = 0, 1, 2, 3, 4
	// stock: quantity, ytd, orderCnt, remoteCnt; filler ~280.
	sQuantity, sYTD, sOrderCnt, sRemoteCnt = 0, 1, 2, 3
	// item: price; filler ~70.
	iPrice = 0
	// order: cID, carrierID, olCnt, entryD; filler ~8.
	oCID, oCarrier, oOLCnt, oEntryD = 0, 1, 2, 3
	// order line: iID, supplyW, quantity, amount, deliveryD; filler ~24.
	olIID, olSupplyW, olQuantity, olAmount, olDeliveryD = 0, 1, 2, 3, 4
)

// Load populates a fresh TPC-C database.
func Load(ctx *sim.Ctx, db *sqlite.DB, cfg Config) error {
	for _, tbl := range allTables {
		if err := db.CreateTable(ctx, tbl); err != nil {
			return err
		}
	}
	return db.Exec(ctx, func(tx *sqlite.Txn) error {
		for i := 1; i <= cfg.Items; i++ {
			r := newRow(1, 70)
			r.setF(iPrice, int64(100+i%9900)) // cents
			if err := tx.Insert(ctx, tItem, k1(i), r.b); err != nil {
				return err
			}
		}
		for w := 1; w <= cfg.Warehouses; w++ {
			wr := newRow(1, 80)
			if err := tx.Insert(ctx, tWarehouse, k1(w), wr.b); err != nil {
				return err
			}
			for i := 1; i <= cfg.Items; i++ {
				sr := newRow(4, 280)
				sr.setF(sQuantity, int64(10+(i*7)%91))
				if err := tx.Insert(ctx, tStock, k2(w, i), sr.b); err != nil {
					return err
				}
			}
			for d := 1; d <= cfg.Districts; d++ {
				dr := newRow(2, 90)
				dr.setF(dNextOID, 1)
				if err := tx.Insert(ctx, tDistrict, k2(w, d), dr.b); err != nil {
					return err
				}
				for c := 1; c <= cfg.Customers; c++ {
					cr := newRow(5, 500)
					cr.setF(cBalance, -1000) // -10.00
					if err := tx.Insert(ctx, tCustomer, k3(w, d, c), cr.b); err != nil {
						return err
					}
					// Secondary index on the spec's syllable last name.
					if err := tx.Insert(ctx, tCustIdx, nameKey(w, d, lastName(c%1000), c), k1(c)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
}

// errAbort models the spec's 1% New-Order rollback (invalid item).
var errAbort = fmt.Errorf("tpcc: new-order abort (unused item)")

// Run loads the database and executes the transaction mix.
func Run(fs vfs.FS, mode sqlite.JournalMode, cfg Config) (Result, error) {
	ctx := sim.NewCtx(0, cfg.Seed)
	db, err := sqlite.Open(ctx, fs, "tpcc.db", mode)
	if err != nil {
		return Result{}, err
	}
	defer db.Close(ctx)
	if err := Load(ctx, db, cfg); err != nil {
		return Result{}, err
	}

	res := Result{FS: fs.Name(), Mode: mode}
	t0 := ctx.Now()
	for i := 0; i < cfg.Transactions; i++ {
		var err error
		switch p := ctx.Rand.Intn(100); {
		case p < 45:
			err = newOrder(ctx, db, cfg, &res)
		case p < 88:
			err = payment(ctx, db, cfg)
		case p < 92:
			err = orderStatus(ctx, db, cfg)
		case p < 96:
			err = delivery(ctx, db, cfg)
		default:
			err = stockLevel(ctx, db, cfg)
		}
		if err != nil && err != errAbort {
			return Result{}, err
		}
	}
	res.VirtualNS = ctx.Now() - t0
	if res.VirtualNS > 0 {
		res.TpmC = float64(res.NewOrders) / (float64(res.VirtualNS) / 1e9) * 60
		res.TotalTPS = float64(cfg.Transactions) / (float64(res.VirtualNS) / 1e9)
	}
	return res, nil
}

func getRow(ctx *sim.Ctx, tx *sqlite.Txn, table string, key []byte) (row, error) {
	v, err := tx.Get(ctx, table, key)
	if err != nil {
		return row{}, err
	}
	if v == nil {
		return row{}, fmt.Errorf("tpcc: missing row in %s", table)
	}
	return row{b: v}, nil
}

// newOrder is the spec's New-Order transaction: district sequence bump,
// customer read, per-line item read + stock update + order-line insert,
// order + new-order inserts. 1% of transactions roll back.
func newOrder(ctx *sim.Ctx, db *sqlite.DB, cfg Config, res *Result) error {
	w := 1 + ctx.Rand.Intn(cfg.Warehouses)
	d := 1 + ctx.Rand.Intn(cfg.Districts)
	c := 1 + ctx.Rand.Intn(cfg.Customers)
	nLines := 5 + ctx.Rand.Intn(11)
	abort := ctx.Rand.Intn(100) == 0

	err := db.Exec(ctx, func(tx *sqlite.Txn) error {
		dr, err := getRow(ctx, tx, tDistrict, k2(w, d))
		if err != nil {
			return err
		}
		oid := int(dr.getF(dNextOID))
		dr.setF(dNextOID, int64(oid+1))
		if err := tx.Insert(ctx, tDistrict, k2(w, d), dr.b); err != nil {
			return err
		}
		if _, err := getRow(ctx, tx, tCustomer, k3(w, d, c)); err != nil {
			return err
		}
		var total int64
		for l := 1; l <= nLines; l++ {
			item := 1 + ctx.Rand.Intn(cfg.Items)
			if abort && l == nLines {
				return errAbort // unused item id: roll the whole txn back
			}
			ir, err := getRow(ctx, tx, tItem, k1(item))
			if err != nil {
				return err
			}
			sr, err := getRow(ctx, tx, tStock, k2(w, item))
			if err != nil {
				return err
			}
			qty := int64(1 + ctx.Rand.Intn(10))
			q := sr.getF(sQuantity) - qty
			if q < 10 {
				q += 91
			}
			sr.setF(sQuantity, q)
			sr.setF(sYTD, sr.getF(sYTD)+qty)
			sr.setF(sOrderCnt, sr.getF(sOrderCnt)+1)
			if err := tx.Insert(ctx, tStock, k2(w, item), sr.b); err != nil {
				return err
			}
			ol := newRow(5, 24)
			ol.setF(olIID, int64(item))
			ol.setF(olSupplyW, int64(w))
			ol.setF(olQuantity, qty)
			ol.setF(olAmount, qty*ir.getF(iPrice))
			total += qty * ir.getF(iPrice)
			if err := tx.Insert(ctx, tOrderLine, k4(w, d, oid, l), ol.b); err != nil {
				return err
			}
		}
		or := newRow(4, 8)
		or.setF(oCID, int64(c))
		or.setF(oOLCnt, int64(nLines))
		if err := tx.Insert(ctx, tOrder, k3(w, d, oid), or.b); err != nil {
			return err
		}
		// Track the customer's latest order for Order-Status.
		cr, err := getRow(ctx, tx, tCustomer, k3(w, d, c))
		if err != nil {
			return err
		}
		cr.setF(cLastOrder, int64(oid))
		if err := tx.Insert(ctx, tCustomer, k3(w, d, c), cr.b); err != nil {
			return err
		}
		return tx.Insert(ctx, tNewOrder, k3(w, d, oid), []byte{1})
	})
	if err == nil {
		res.NewOrders++
	} else if err == errAbort {
		res.Aborted++
	}
	return err
}

// payment updates warehouse/district YTD and the customer balance, and
// records a history row.
func payment(ctx *sim.Ctx, db *sqlite.DB, cfg Config) error {
	w := 1 + ctx.Rand.Intn(cfg.Warehouses)
	d := 1 + ctx.Rand.Intn(cfg.Districts)
	c := 1 + ctx.Rand.Intn(cfg.Customers)
	byName := ctx.Rand.Intn(100) < 60            // the spec: 60% select by last name
	amount := int64(100 + ctx.Rand.Intn(500000)) // cents

	return db.Exec(ctx, func(tx *sqlite.Txn) error {
		if byName {
			var err error
			if c, err = customerByName(ctx, tx, w, d, lastName((1+ctx.Rand.Intn(cfg.Customers))%1000)); err != nil {
				return err
			}
			if c == 0 {
				c = 1 + ctx.Rand.Intn(cfg.Customers) // name not present at this scale
			}
		}
		wr, err := getRow(ctx, tx, tWarehouse, k1(w))
		if err != nil {
			return err
		}
		wr.setF(wYTD, wr.getF(wYTD)+amount)
		if err := tx.Insert(ctx, tWarehouse, k1(w), wr.b); err != nil {
			return err
		}
		dr, err := getRow(ctx, tx, tDistrict, k2(w, d))
		if err != nil {
			return err
		}
		dr.setF(dYTD, dr.getF(dYTD)+amount)
		if err := tx.Insert(ctx, tDistrict, k2(w, d), dr.b); err != nil {
			return err
		}
		cr, err := getRow(ctx, tx, tCustomer, k3(w, d, c))
		if err != nil {
			return err
		}
		cr.setF(cBalance, cr.getF(cBalance)-amount)
		cr.setF(cYTDPayment, cr.getF(cYTDPayment)+amount)
		cr.setF(cPaymentCnt, cr.getF(cPaymentCnt)+1)
		if err := tx.Insert(ctx, tCustomer, k3(w, d, c), cr.b); err != nil {
			return err
		}
		h := newRow(1, 40)
		h.setF(0, amount)
		hk := k4(w, d, c, int(cr.getF(cPaymentCnt)))
		return tx.Insert(ctx, tHistory, hk, h.b)
	})
}

// orderStatus reads a customer's most recent order and its lines; 60% of
// executions select the customer by last name through the secondary index.
func orderStatus(ctx *sim.Ctx, db *sqlite.DB, cfg Config) error {
	w := 1 + ctx.Rand.Intn(cfg.Warehouses)
	d := 1 + ctx.Rand.Intn(cfg.Districts)
	c := 1 + ctx.Rand.Intn(cfg.Customers)
	byName := ctx.Rand.Intn(100) < 60

	return db.Exec(ctx, func(tx *sqlite.Txn) error {
		if byName {
			cc, err := customerByName(ctx, tx, w, d, lastName((1+ctx.Rand.Intn(cfg.Customers))%1000))
			if err != nil {
				return err
			}
			if cc != 0 {
				c = cc
			}
		}
		cr, err := getRow(ctx, tx, tCustomer, k3(w, d, c))
		if err != nil {
			return err
		}
		last := int(cr.getF(cLastOrder))
		if last < 1 {
			return nil // customer has no orders yet
		}
		or, err := getRow(ctx, tx, tOrder, k3(w, d, last))
		if err != nil {
			return err
		}
		n := int(or.getF(oOLCnt))
		return tx.Scan(ctx, tOrderLine, k4(w, d, last, 1), k4(w, d, last, n+1), func(k, v []byte) bool {
			return true
		})
	})
}

// customerByName implements the spec's selection rule: collect matching
// customers ordered by id and take the one at position n/2 (0 = no match).
func customerByName(ctx *sim.Ctx, tx *sqlite.Txn, w, d int, name string) (int, error) {
	var ids []int
	lo := nameKey(w, d, name, 0)
	hi := nameKey(w, d, name, 1<<31-1)
	if err := tx.Scan(ctx, tCustIdx, lo, hi, func(k, v []byte) bool {
		ids = append(ids, int(binary.BigEndian.Uint32(v)))
		return true
	}); err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	return ids[len(ids)/2], nil
}

// delivery pops the oldest undelivered order of each district, stamps the
// carrier, and credits the customer.
func delivery(ctx *sim.Ctx, db *sqlite.DB, cfg Config) error {
	w := 1 + ctx.Rand.Intn(cfg.Warehouses)
	carrier := int64(1 + ctx.Rand.Intn(10))

	return db.Exec(ctx, func(tx *sqlite.Txn) error {
		for d := 1; d <= cfg.Districts; d++ {
			var oldest []byte
			if err := tx.Scan(ctx, tNewOrder, k3(w, d, 0), k3(w, d+1, 0), func(k, v []byte) bool {
				oldest = append([]byte{}, k...)
				return false
			}); err != nil {
				return err
			}
			if oldest == nil {
				continue
			}
			oid := int(binary.BigEndian.Uint32(oldest[8:]))
			if _, err := tx.Delete(ctx, tNewOrder, oldest); err != nil {
				return err
			}
			or, err := getRow(ctx, tx, tOrder, k3(w, d, oid))
			if err != nil {
				return err
			}
			or.setF(oCarrier, carrier)
			if err := tx.Insert(ctx, tOrder, k3(w, d, oid), or.b); err != nil {
				return err
			}
			var total int64
			n := int(or.getF(oOLCnt))
			if err := tx.Scan(ctx, tOrderLine, k4(w, d, oid, 1), k4(w, d, oid, n+1), func(k, v []byte) bool {
				total += row{b: v}.getF(olAmount)
				return true
			}); err != nil {
				return err
			}
			c := int(or.getF(oCID))
			cr, err := getRow(ctx, tx, tCustomer, k3(w, d, c))
			if err != nil {
				return err
			}
			cr.setF(cBalance, cr.getF(cBalance)+total)
			cr.setF(cDeliveryCnt, cr.getF(cDeliveryCnt)+1)
			if err := tx.Insert(ctx, tCustomer, k3(w, d, c), cr.b); err != nil {
				return err
			}
		}
		return nil
	})
}

// stockLevel counts recently-sold items with stock below a threshold.
func stockLevel(ctx *sim.Ctx, db *sqlite.DB, cfg Config) error {
	w := 1 + ctx.Rand.Intn(cfg.Warehouses)
	d := 1 + ctx.Rand.Intn(cfg.Districts)
	threshold := int64(10 + ctx.Rand.Intn(11))

	return db.Exec(ctx, func(tx *sqlite.Txn) error {
		dr, err := getRow(ctx, tx, tDistrict, k2(w, d))
		if err != nil {
			return err
		}
		next := int(dr.getF(dNextOID))
		lo := next - 20
		if lo < 1 {
			lo = 1
		}
		items := make(map[int64]bool)
		if err := tx.Scan(ctx, tOrderLine, k4(w, d, lo, 0), k4(w, d, next, 0), func(k, v []byte) bool {
			items[row{b: v}.getF(olIID)] = true
			return true
		}); err != nil {
			return err
		}
		low := 0
		for item := range items {
			sr, err := getRow(ctx, tx, tStock, k2(w, int(item)))
			if err != nil {
				return err
			}
			if sr.getF(sQuantity) < threshold {
				low++
			}
		}
		_ = low
		return nil
	})
}
