package tpcc

import (
	"encoding/binary"
	"testing"

	"mgsp/internal/ext4"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/sqlite"
	"mgsp/internal/vfs"
)

func backing() vfs.FS {
	return ext4.New(nvm.New(192<<20, sim.ZeroCosts()), ext4.DAX)
}

func tinyConfig() Config {
	return Config{Warehouses: 1, Districts: 3, Customers: 20, Items: 50, Transactions: 150, Seed: 3}
}

func TestRunCompletesBothModes(t *testing.T) {
	for _, mode := range []sqlite.JournalMode{sqlite.WAL, sqlite.Off} {
		fs := ext4.New(nvm.New(192<<20, sim.DefaultCosts()), ext4.DAX)
		res, err := Run(fs, mode, tinyConfig())
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.NewOrders == 0 {
			t.Fatalf("%v: no new-order transactions completed", mode)
		}
		if res.VirtualNS <= 0 || res.TpmC <= 0 {
			t.Fatalf("%v: no virtual time / tpmC: %+v", mode, res)
		}
	}
}

// TestConsistency runs the mix and then checks TPC-C consistency rules:
// (1) W_YTD = sum(D_YTD) per warehouse;
// (2) D_NEXT_O_ID - 1 = max order id per district;
// (3) every order's line count matches its order lines.
func TestConsistency(t *testing.T) {
	fs := backing()
	cfg := tinyConfig()
	ctx := sim.NewCtx(0, cfg.Seed)
	db, err := sqlite.Open(ctx, fs, "tpcc.db", sqlite.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(ctx, db, cfg); err != nil {
		t.Fatal(err)
	}
	res := Result{}
	for i := 0; i < 300; i++ {
		var err error
		switch i % 5 {
		case 0, 1:
			err = newOrder(ctx, db, cfg, &res)
		case 2, 3:
			err = payment(ctx, db, cfg)
		case 4:
			err = delivery(ctx, db, cfg)
		}
		if err != nil && err != errAbort {
			t.Fatal(err)
		}
	}

	db.Exec(ctx, func(tx *sqlite.Txn) error {
		for w := 1; w <= cfg.Warehouses; w++ {
			wr, err := getRow(ctx, tx, tWarehouse, k1(w))
			if err != nil {
				t.Fatal(err)
			}
			var sumD int64
			for d := 1; d <= cfg.Districts; d++ {
				dr, err := getRow(ctx, tx, tDistrict, k2(w, d))
				if err != nil {
					t.Fatal(err)
				}
				sumD += dr.getF(dYTD)

				// Rule 2: orders are dense up to nextOID-1.
				next := int(dr.getF(dNextOID))
				for oid := 1; oid < next; oid++ {
					or, err := getRow(ctx, tx, tOrder, k3(w, d, oid))
					if err != nil {
						t.Fatalf("w%d d%d order %d missing (next=%d)", w, d, oid, next)
					}
					// Rule 3: order lines are complete.
					n := int(or.getF(oOLCnt))
					count := 0
					tx.Scan(ctx, tOrderLine, k4(w, d, oid, 0), k4(w, d, oid+1, 0), func(k, v []byte) bool {
						count++
						return true
					})
					if count != n {
						t.Fatalf("w%d d%d o%d: %d lines, want %d", w, d, oid, count, n)
					}
				}
			}
			if wr.getF(wYTD) != sumD {
				t.Fatalf("warehouse %d: W_YTD %d != sum(D_YTD) %d", w, wr.getF(wYTD), sumD)
			}
		}
		return nil
	})
}

// TestAbortedNewOrderLeavesNoTrace: the 1% rollback must not leak partial
// state (district sequence, stock, order lines).
func TestAbortedNewOrderRollsBack(t *testing.T) {
	fs := backing()
	cfg := tinyConfig()
	ctx := sim.NewCtx(0, 99)
	db, err := sqlite.Open(ctx, fs, "tpcc.db", sqlite.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(ctx, db, cfg); err != nil {
		t.Fatal(err)
	}
	res := Result{}
	// Run new-orders until at least one abort happens.
	for res.Aborted == 0 {
		if err := newOrder(ctx, db, cfg, &res); err != nil && err != errAbort {
			t.Fatal(err)
		}
		if res.NewOrders+res.Aborted > 2000 {
			t.Skip("no abort sampled in 2000 transactions")
		}
	}
	// Dense order check again: aborted order ids must not exist.
	db.Exec(ctx, func(tx *sqlite.Txn) error {
		for d := 1; d <= cfg.Districts; d++ {
			dr, _ := getRow(ctx, tx, tDistrict, k2(1, d))
			next := int(dr.getF(dNextOID))
			count := 0
			tx.Scan(ctx, tOrder, k3(1, d, 0), k3(1, d+1, 0), func(k, v []byte) bool {
				count++
				return true
			})
			if count != next-1 {
				t.Fatalf("district %d: %d orders but next oid %d (aborted txn leaked)", d, count, next)
			}
		}
		return nil
	})
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	fs := backing()
	cfg := tinyConfig()
	ctx := sim.NewCtx(0, 5)
	db, _ := sqlite.Open(ctx, fs, "tpcc.db", sqlite.Off)
	if err := Load(ctx, db, cfg); err != nil {
		t.Fatal(err)
	}
	res := Result{}
	for i := 0; i < 30; i++ {
		if err := newOrder(ctx, db, cfg, &res); err != nil && err != errAbort {
			t.Fatal(err)
		}
	}
	countNew := func() int {
		n := 0
		db.Exec(ctx, func(tx *sqlite.Txn) error {
			return tx.Scan(ctx, tNewOrder, nil, nil, func(k, v []byte) bool { n++; return true })
		})
		return n
	}
	before := countNew()
	if before == 0 {
		t.Fatal("no new orders queued")
	}
	for i := 0; i < 3; i++ {
		if err := delivery(ctx, db, cfg); err != nil {
			t.Fatal(err)
		}
	}
	after := countNew()
	if after >= before {
		t.Fatalf("delivery consumed nothing: %d -> %d", before, after)
	}
	// Delivered orders must have carriers.
	db.Exec(ctx, func(tx *sqlite.Txn) error {
		or, err := getRow(ctx, tx, tOrder, k3(1, 1, 1))
		if err == nil && or.getF(oCarrier) == 0 {
			t.Fatal("oldest order delivered without carrier")
		}
		return nil
	})
}

func TestKeyEncodingOrder(t *testing.T) {
	a := k3(1, 2, 3)
	b := k3(1, 2, 10)
	c := k3(1, 3, 0)
	if !(string(a) < string(b) && string(b) < string(c)) {
		t.Fatal("composite keys do not sort correctly")
	}
	if binary.BigEndian.Uint32(k1(77)) != 77 {
		t.Fatal("k1 broken")
	}
}

func TestLastNameSyllables(t *testing.T) {
	if got := lastName(0); got != "BARBARBAR" {
		t.Fatalf("lastName(0) = %q", got)
	}
	if got := lastName(371); got != "PRICALLYOUGHT" {
		t.Fatalf("lastName(371) = %q", got)
	}
}

func TestCustomerByNameIndex(t *testing.T) {
	fs := backing()
	cfg := tinyConfig()
	ctx := sim.NewCtx(0, 1)
	db, _ := sqlite.Open(ctx, fs, "tpcc.db", sqlite.Off)
	if err := Load(ctx, db, cfg); err != nil {
		t.Fatal(err)
	}
	db.Exec(ctx, func(tx *sqlite.Txn) error {
		// Customer 3 has name lastName(3); the by-name lookup must find a
		// customer with that exact name.
		c, err := customerByName(ctx, tx, 1, 1, lastName(3))
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			t.Fatal("indexed customer not found by name")
		}
		if lastName(c%1000) != lastName(3) {
			t.Fatalf("wrong customer %d for name %s", c, lastName(3))
		}
		if c, _ := customerByName(ctx, tx, 1, 1, "NOSUCHNAME"); c != 0 {
			t.Fatalf("phantom customer %d for unknown name", c)
		}
		return nil
	})
}

func TestOrderStatusUsesCustomerLastOrder(t *testing.T) {
	fs := backing()
	cfg := tinyConfig()
	ctx := sim.NewCtx(0, 2)
	db, _ := sqlite.Open(ctx, fs, "tpcc.db", sqlite.Off)
	if err := Load(ctx, db, cfg); err != nil {
		t.Fatal(err)
	}
	res := Result{}
	for i := 0; i < 40; i++ {
		if err := newOrder(ctx, db, cfg, &res); err != nil && err != errAbort {
			t.Fatal(err)
		}
	}
	// Some customer must have a recorded last order consistent with the
	// orders table.
	found := false
	db.Exec(ctx, func(tx *sqlite.Txn) error {
		for c := 1; c <= cfg.Customers && !found; c++ {
			cr, err := getRow(ctx, tx, tCustomer, k3(1, 1, c))
			if err != nil {
				continue
			}
			if last := int(cr.getF(cLastOrder)); last > 0 {
				or, err := getRow(ctx, tx, tOrder, k3(1, 1, last))
				if err != nil {
					t.Fatalf("customer %d lastOrder %d missing from orders", c, last)
				}
				if int(or.getF(oCID)) != c {
					t.Fatalf("order %d belongs to %d, not %d", last, or.getF(oCID), c)
				}
				found = true
			}
		}
		return nil
	})
	if !found {
		t.Skip("no orders landed in district 1 this seed")
	}
	if err := orderStatus(ctx, db, cfg); err != nil {
		t.Fatal(err)
	}
}
