package ext4

import (
	"bytes"
	"testing"

	"mgsp/internal/fstest"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

func newFS(t *testing.T, mode Mode) *FS {
	t.Helper()
	return New(nvm.New(64<<20, sim.ZeroCosts()), mode)
}

func TestBatteryDAX(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS { return newFS(t, DAX) })
}

func TestBatteryOrdered(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS { return newFS(t, Ordered) })
}

func TestBatteryJournal(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS { return newFS(t, Journal) })
}

func TestBatteryWriteback(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS { return newFS(t, Writeback) })
}

func TestModeNames(t *testing.T) {
	want := map[Mode]string{DAX: "Ext4-DAX", Writeback: "Ext4-wb", Ordered: "Ext4-ordered", Journal: "Ext4-journal"}
	for m, n := range want {
		if m.String() != n {
			t.Errorf("mode %d name = %q, want %q", m, m.String(), n)
		}
	}
}

// TestDAXDataDurableWithoutFsync: DAX writes use non-temporal stores, so
// data survives a crash even without fsync (only metadata is at risk).
func TestDAXDataDurableWithoutFsync(t *testing.T) {
	dev := nvm.New(16<<20, sim.ZeroCosts())
	fs := New(dev, DAX)
	ctx := sim.NewCtx(0, 1)
	f, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 8192)
	f.WriteAt(ctx, data, 0)
	dev.DropVolatile()
	buf := make([]byte, len(data))
	f.ReadAt(ctx, buf, 0)
	if !bytes.Equal(buf, data) {
		t.Fatal("DAX write did not survive volatile drop")
	}
}

// TestPageCacheDataVolatileWithoutFsync: ordered-mode data written only to
// the page cache is lost if the machine dies before fsync — the motivation
// for Figure 1's -sync variants.
func TestPageCacheDataVolatileBeforeFsync(t *testing.T) {
	dev := nvm.New(16<<20, sim.ZeroCosts())
	fs := New(dev, Ordered)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	dev.ResetStats()
	data := bytes.Repeat([]byte{0x77}, 4096)
	f.WriteAt(ctx, data, 0)

	if w := dev.Stats().MediaWriteBytes.Load(); w != 0 {
		t.Fatalf("page-cache write reached media early: %d bytes", w)
	}
	f.Fsync(ctx)
	// After fsync, data must be on media at its home location.
	if w := dev.Stats().MediaWriteBytes.Load(); w < 4096 {
		t.Fatalf("fsync wrote only %d media bytes", w)
	}
}

// TestJournalModeDoublesDataWrites: data=journal writes each dirty page to
// the journal and to its home location.
func TestJournalModeDoubleWrite(t *testing.T) {
	mkBytes := func(mode Mode) int64 {
		dev := nvm.New(32<<20, sim.ZeroCosts())
		fs := New(dev, mode)
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		dev.ResetStats()
		f.WriteAt(ctx, make([]byte, 256*1024), 0)
		f.Fsync(ctx)
		return dev.Stats().MediaWriteBytes.Load()
	}
	ordered := mkBytes(Ordered)
	journal := mkBytes(Journal)
	if journal < ordered+256*1024 {
		t.Fatalf("journal mode wrote %d bytes, ordered %d; journal must double the data", journal, ordered)
	}
}

// TestDAXFsyncCheaperThanJournalModes: the DAX fsync path with no metadata
// change is a fence, not a journal commit.
func TestDAXFsyncCost(t *testing.T) {
	dev := nvm.New(16<<20, sim.DefaultCosts())
	fs := New(dev, DAX)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 4096), 0)
	f.Fsync(ctx) // first fsync commits metadata (size change)

	before := dev.Stats().MediaWriteBytes.Load()
	f.WriteAt(ctx, make([]byte, 4096), 0) // overwrite: no metadata change
	f.Fsync(ctx)
	wrote := dev.Stats().MediaWriteBytes.Load() - before
	if wrote != 4096 {
		t.Fatalf("steady-state DAX overwrite+fsync wrote %d media bytes, want 4096", wrote)
	}
}

// TestInodeLockSerializesWriters: concurrent writers to one file serialize
// on i_rwsem in virtual time — the Figure 10 scalability ceiling.
func TestInodeLockSerializesWriters(t *testing.T) {
	dev := nvm.New(64<<20, sim.DefaultCosts())
	fs := New(dev, DAX)
	setup := sim.NewCtx(9, 1)
	f, _ := fs.Create(setup, "f")
	f.WriteAt(setup, make([]byte, 1<<20), 0)

	run := func(workers int) int64 {
		dev.Timeline().Reset()
		ctxs := make([]*sim.Ctx, workers)
		done := make(chan struct{})
		for i := range ctxs {
			ctxs[i] = sim.NewCtx(i, int64(i))
			go func(c *sim.Ctx) {
				buf := make([]byte, 4096)
				for j := 0; j < 200; j++ {
					off := int64(c.Rand.Intn(256)) * 4096
					f.WriteAt(c, buf, off)
				}
				done <- struct{}{}
			}(ctxs[i])
		}
		for range ctxs {
			<-done
		}
		return sim.MaxTime(ctxs)
	}
	t1 := run(1)
	t4 := run(4)
	// 4 workers do 4x the ops; with a file-level lock the elapsed virtual
	// time must grow nearly 4x (no intra-file parallelism).
	if t4 < 3*t1 {
		t.Fatalf("4-thread time %d < 3x single-thread time %d: inode lock failed to serialize", t4, t1)
	}
}

func TestExtentLookupAcrossChunks(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := New(dev, DAX)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	// Force multiple extents by interleaving two files' growth.
	g, _ := fs.Create(ctx, "g")
	pat := func(b byte) []byte { return bytes.Repeat([]byte{b}, 512*1024) }
	f.WriteAt(ctx, pat(1), 0)
	g.WriteAt(ctx, pat(2), 0)
	f.WriteAt(ctx, pat(3), 512*1024)
	g.WriteAt(ctx, pat(4), 512*1024)

	buf := make([]byte, 512*1024)
	f.ReadAt(ctx, buf, 512*1024)
	for i, b := range buf {
		if b != 3 {
			t.Fatalf("byte %d = %d, want 3 (extent mapping broken)", i, b)
		}
	}
	g.ReadAt(ctx, buf, 0)
	for i, b := range buf {
		if b != 2 {
			t.Fatalf("byte %d = %d, want 2 (cross-file extent corruption)", i, b)
		}
	}
}

func TestConsistencyLevel(t *testing.T) {
	fs := newFS(t, DAX)
	if fs.Consistency() != vfs.MetadataOnly {
		t.Fatal("Ext4 must advertise metadata-only consistency")
	}
}
