package ext4

import (
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// journal models a JBD2-style physical journal: commits write a descriptor
// block, the payload blocks, and a commit record sequentially into a
// dedicated device region (wrapping around), serialized by a global lock —
// the shared-log contention the paper points at when discussing Ext4's
// scalability ("logging file systems ... require locking the metadata, such
// as the shared log area").
type journal struct {
	dev   *nvm.Device
	start int64
	size  int64

	mu      sim.Mutex
	head    int64 // next write offset relative to start
	seq     uint64
	commits int64
}

const journalBlock = 4096

func newJournal(dev *nvm.Device, start, size int64) *journal {
	return &journal{dev: dev, start: start, size: size / journalBlock * journalBlock}
}

// commit persists a transaction whose payload is the given logical blocks
// (page-sized buffers; nil entries stand for metadata blocks such as inode
// or bitmap updates, which are written as whole journal blocks too).
// It returns after the commit record is durable.
func (j *journal) commit(ctx *sim.Ctx, payload [][]byte, metaBlocks int) {
	j.mu.Lock(ctx)
	defer j.mu.Unlock(ctx)

	j.seq++
	ctx.Advance(j.dev.Costs().JournalCommit)

	blocks := 1 + len(payload) + metaBlocks + 1 // descriptor + payload + commit
	var zero [journalBlock]byte
	for i := 0; i < blocks; i++ {
		var buf []byte
		if k := i - 1; k >= 0 && k < len(payload) && payload[k] != nil {
			buf = payload[k]
			if len(buf) > journalBlock {
				buf = buf[:journalBlock]
			}
		} else {
			buf = zero[:]
		}
		if j.head+journalBlock > j.size {
			j.head = 0
		}
		j.dev.WriteNT(ctx, buf, j.start+j.head)
		if len(buf) < journalBlock {
			j.dev.WriteNT(ctx, zero[:journalBlock-len(buf)], j.start+j.head+int64(len(buf)))
		}
		j.head += journalBlock
	}
	j.dev.Fence(ctx)
	j.commits++
}
