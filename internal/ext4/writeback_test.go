package ext4

import (
	"bytes"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestThrottledWritebackDuringLargeWrite regression-tests the dirty-limit
// write-back path running inside an in-flight extending write (the page
// being written back lies beyond the published file size).
func TestThrottledWritebackDuringLargeWrite(t *testing.T) {
	dev := nvm.New(256<<20, sim.ZeroCosts())
	fs := New(dev, Ordered)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "big")
	// More than dirtyLimit pages in one logical stream of 1 MiB writes.
	chunk := bytes.Repeat([]byte{0xCD}, 1<<20)
	total := int64((dirtyLimit + 2048) * pageSize)
	for off := int64(0); off < total; off += 1 << 20 {
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	f.ReadAt(ctx, buf, total-1<<20)
	if !bytes.Equal(buf, chunk) {
		t.Fatal("tail data corrupted by throttled write-back")
	}
}
