package ext4

import (
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func TestJournalCommitWritesDescriptorPayloadCommit(t *testing.T) {
	dev := nvm.New(32<<20, sim.ZeroCosts())
	j := newJournal(dev, 0, 1<<20)
	ctx := sim.NewCtx(0, 1)
	dev.ResetStats()
	payload := [][]byte{make([]byte, journalBlock), make([]byte, journalBlock)}
	j.commit(ctx, payload, 1)
	// descriptor + 2 payload + 1 metadata + commit = 5 blocks.
	if got := dev.Stats().MediaWriteBytes.Load(); got != 5*journalBlock {
		t.Fatalf("commit wrote %d bytes, want %d", got, 5*journalBlock)
	}
	if dev.Stats().Fences.Load() == 0 {
		t.Fatal("commit did not fence")
	}
}

func TestJournalWrapsAround(t *testing.T) {
	dev := nvm.New(32<<20, sim.ZeroCosts())
	size := int64(16 * journalBlock)
	j := newJournal(dev, 4096, size)
	ctx := sim.NewCtx(0, 1)
	for i := 0; i < 30; i++ { // far more blocks than the region holds
		j.commit(ctx, nil, 1)
	}
	if j.head > j.size {
		t.Fatalf("journal head %d beyond region %d", j.head, j.size)
	}
	if j.commits != 30 {
		t.Fatalf("commits = %d", j.commits)
	}
}

func TestJournalSerializesCommitters(t *testing.T) {
	dev := nvm.New(32<<20, sim.DefaultCosts())
	j := newJournal(dev, 0, 1<<20)
	done := make(chan int64, 4)
	for w := 0; w < 4; w++ {
		go func(id int) {
			ctx := sim.NewCtx(id, int64(id))
			for i := 0; i < 20; i++ {
				j.commit(ctx, nil, 1)
			}
			done <- ctx.Now()
		}(w)
	}
	var max int64
	for i := 0; i < 4; i++ {
		if v := <-done; v > max {
			max = v
		}
	}
	// One commit is >= 3 block writes + fixed cost; 80 commits from 4
	// workers must serialize on the shared journal lock in virtual time.
	costs := dev.Costs()
	perCommit := costs.JournalCommit + 3*costs.WriteCost(journalBlock)
	if max < 60*perCommit/2 {
		t.Fatalf("4-worker commit time %d too low: journal lock failed to serialize", max)
	}
}
