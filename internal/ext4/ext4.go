// Package ext4 simulates the Ext4 file system in the four configurations the
// paper evaluates: the data=writeback, data=ordered, and data=journal page-
// cache modes (Figure 1) and Ext4-DAX, the direct-access mode used as the
// baseline and as MGSP's underlying file system throughout the evaluation.
//
// The model captures the costs that drive the paper's comparisons:
//
//   - every operation pays the kernel round trip (syscall + VFS/iomap path);
//   - writes hold the inode's i_rwsem exclusively, the file-level lock that
//     prevents intra-file write scaling (Figure 10);
//   - non-DAX modes buffer in the page cache and pay journal commits plus
//     write-back on fsync (double write in data=journal mode);
//   - DAX writes go straight to media with non-temporal stores; fsync only
//     commits metadata, so Ext4-DAX provides metadata-only crash consistency.
package ext4

import (
	"fmt"

	"mgsp/internal/alloc"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Mode selects the Ext4 configuration.
type Mode int

const (
	// DAX is Ext4-DAX: direct access, metadata-only consistency.
	DAX Mode = iota
	// Writeback is data=writeback: metadata journaled, data written back
	// with no ordering against commits.
	Writeback
	// Ordered is data=ordered (the Ext4 default): data written back before
	// the metadata commit.
	Ordered
	// Journal is data=journal: data goes through the journal too (double
	// write).
	Journal
)

// String returns the configuration's display name.
func (m Mode) String() string {
	switch m {
	case DAX:
		return "Ext4-DAX"
	case Writeback:
		return "Ext4-wb"
	case Ordered:
		return "Ext4-ordered"
	case Journal:
		return "Ext4-journal"
	}
	return fmt.Sprintf("Ext4(%d)", int(m))
}

const (
	pageSize = 4096
	// journalSize is the on-device journal region (Ext4 defaults to 128 MiB
	// for large file systems; we scale down with our smaller devices).
	journalSize = 16 << 20
	// dirtyLimit approximates the kernel's dirty-page threshold: beyond it,
	// writers are throttled into performing write-back themselves.
	dirtyLimit = 8192 // pages (32 MiB)
	// extentChunk is the allocation granularity in blocks (delayed-allocation
	// style batching keeps files mostly contiguous).
	extentChunk = 256
)

// FS is a mounted Ext4 instance.
type FS struct {
	dev     *nvm.Device
	mode    Mode
	costs   *sim.Costs
	alloc   *alloc.Allocator
	journal *journal

	mu    sim.Mutex // namespace lock
	files map[string]*inode
}

// New formats and mounts an Ext4 file system over the whole device.
func New(dev *nvm.Device, mode Mode) *FS {
	costs := dev.Costs()
	js := int64(journalSize)
	if js > dev.Size()/4 {
		js = dev.Size() / 4 / pageSize * pageSize
	}
	return &FS{
		dev:     dev,
		mode:    mode,
		costs:   costs,
		alloc:   alloc.New(js, dev.Size()-js, pageSize, costs),
		journal: newJournal(dev, 0, js),
		files:   make(map[string]*inode),
	}
}

// Name implements vfs.FS.
func (fs *FS) Name() string { return fs.mode.String() }

// Device implements vfs.FS.
func (fs *FS) Device() *nvm.Device { return fs.dev }

// Consistency implements vfs.Guarantees: Ext4 in any mode guarantees only
// metadata consistency for this workload model (data=journal protects data
// pages but not application-level write atomicity across fsync boundaries).
func (fs *FS) Consistency() vfs.ConsistencyLevel { return vfs.MetadataOnly }

// extent maps a run of logical pages to physical blocks.
type extent struct {
	logical  int64 // first logical page index
	physical int64 // device offset of first block
	pages    int64
}

type inode struct {
	fs   *FS
	name string

	lock sim.RWMutex // i_rwsem

	size      int64
	extents   []extent
	allocated int64 // logical pages with backing blocks (all pages < allocated)

	// Page cache (non-DAX modes).
	cache []byte
	dirty map[int64]struct{}

	metaDirty bool
	removed   bool
	refs      int
}

// Create implements vfs.FS.
func (fs *FS) Create(ctx *sim.Ctx, name string) (vfs.File, error) {
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	ino := fs.files[name]
	if ino == nil {
		ino = &inode{fs: fs, name: name, dirty: make(map[int64]struct{})}
		fs.files[name] = ino
		fs.journal.commit(ctx, nil, 1) // new inode + dir entry
	} else {
		// Deferred unlock: truncation issues media ops, and a crash-injection
		// panic there must not leak the inode lock.
		func() {
			ino.lock.Lock(ctx)
			defer ino.lock.Unlock(ctx)
			ino.truncateLocked(ctx, 0)
		}()
	}
	ino.refs++
	return &handle{ino: ino}, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(ctx *sim.Ctx, name string) (vfs.File, error) {
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	ino := fs.files[name]
	if ino == nil {
		return nil, vfs.ErrNotExist
	}
	ino.refs++
	return &handle{ino: ino}, nil
}

// Remove implements vfs.FS.
func (fs *FS) Remove(ctx *sim.Ctx, name string) error {
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	ino := fs.files[name]
	if ino == nil {
		return vfs.ErrNotExist
	}
	delete(fs.files, name)
	ino.removed = true
	if ino.refs == 0 {
		ino.releaseBlocks(ctx)
	}
	fs.journal.commit(ctx, nil, 1)
	return nil
}

func (ino *inode) releaseBlocks(ctx *sim.Ctx) {
	for _, e := range ino.extents {
		ino.fs.alloc.Free(ctx, e.physical, e.pages)
	}
	ino.extents = nil
	ino.allocated = 0
}

// ensureAllocated makes sure logical pages [0, pages) have backing blocks,
// journaling the extent-tree update.
func (ino *inode) ensureAllocated(ctx *sim.Ctx, pages int64) error {
	for ino.allocated < pages {
		want := pages - ino.allocated
		chunk := int64(extentChunk)
		if want > chunk {
			chunk = want
		}
		phys, err := ino.fs.alloc.AllocContig(ctx, chunk)
		if err != nil {
			// Fall back to the exact need, then to single blocks.
			if chunk > want {
				if phys, err = ino.fs.alloc.AllocContig(ctx, want); err != nil {
					if phys, err = ino.fs.alloc.Alloc(ctx); err != nil {
						return err
					}
					chunk = 1
				} else {
					chunk = want
				}
			} else {
				return err
			}
		} else if chunk > want {
			// Keep the full chunk as preallocation.
		}
		// Merge with the previous extent when physically contiguous.
		if n := len(ino.extents); n > 0 {
			last := &ino.extents[n-1]
			if last.physical+last.pages*pageSize == phys && last.logical+last.pages == ino.allocated {
				last.pages += chunk
				ino.allocated += chunk
				ino.metaDirty = true
				continue
			}
		}
		ino.extents = append(ino.extents, extent{logical: ino.allocated, physical: phys, pages: chunk})
		ino.allocated += chunk
		ino.metaDirty = true
	}
	return nil
}

// lookup maps a logical page to its physical block offset, charging the
// extent-tree search.
func (ino *inode) lookup(ctx *sim.Ctx, page int64) int64 {
	ctx.Advance(ino.fs.costs.IndexStep * 2)
	lo, hi := 0, len(ino.extents)
	for lo < hi {
		mid := (lo + hi) / 2
		e := ino.extents[mid]
		if page < e.logical {
			hi = mid
		} else if page >= e.logical+e.pages {
			lo = mid + 1
		} else {
			return e.physical + (page-e.logical)*pageSize
		}
	}
	panic(fmt.Sprintf("ext4: page %d of %q has no extent", page, ino.name))
}

// extentRun returns how many allocated pages from page onward are
// physically contiguous (bounded by the containing extent).
func (ino *inode) extentRun(page int64) int64 {
	for _, e := range ino.extents {
		if page >= e.logical && page < e.logical+e.pages {
			return e.logical + e.pages - page
		}
	}
	return 1
}

func (ino *inode) truncateLocked(ctx *sim.Ctx, size int64) {
	if size < ino.size {
		if int64(len(ino.cache)) > size {
			ino.cache = ino.cache[:size]
		}
	}
	if size > int64(len(ino.cache)) && ino.fs.mode != DAX {
		ino.cache = append(ino.cache, make([]byte, size-int64(len(ino.cache)))...)
	}
	if ino.fs.mode == DAX && size > ino.size {
		// Zero exactly [old EOF, new EOF) on media; whole-page zeroing would
		// clobber live bytes sharing the old EOF page.
		pages := (size + pageSize - 1) / pageSize
		if err := ino.ensureAllocated(ctx, pages); err == nil {
			ino.zeroRange(ctx, ino.size, size)
			// Zeros durable before whatever commit the caller issues next
			// records the new size.
			ino.fs.dev.Fence(ctx)
		}
	}
	ino.size = size
	ino.metaDirty = true
}

// handle is an open file descriptor.
type handle struct {
	ino    *inode
	closed bool
}

var _ vfs.File = (*handle)(nil)

// Size implements vfs.File.
func (h *handle) Size() int64 { return h.ino.size }

// Close implements vfs.File.
func (h *handle) Close(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	h.closed = true
	fs := h.ino.fs
	ctx.Advance(fs.costs.Syscall)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	h.ino.refs--
	if h.ino.refs == 0 && h.ino.removed {
		h.ino.releaseBlocks(ctx)
	}
	return nil
}

// Truncate implements vfs.File.
func (h *handle) Truncate(ctx *sim.Ctx, size int64) error {
	if h.closed {
		return vfs.ErrClosed
	}
	fs := h.ino.fs
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	h.ino.lock.Lock(ctx)
	defer h.ino.lock.Unlock(ctx)
	h.ino.truncateLocked(ctx, size)
	return nil
}

// WriteAt implements vfs.File.
func (h *handle) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("ext4: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	ino := h.ino
	fs := ino.fs
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	ino.lock.Lock(ctx)
	defer ino.lock.Unlock(ctx)

	end := off + int64(len(p))
	if fs.mode == DAX {
		pages := (end + pageSize - 1) / pageSize
		if err := ino.ensureAllocated(ctx, pages); err != nil {
			return 0, err
		}
		// Zero any hole between old EOF and the write start.
		if holeStart := ino.size; off > holeStart {
			ino.zeroRange(ctx, holeStart, off)
		}
		h.writeMedia(ctx, p, off)
		fs.dev.Fence(ctx)
	} else {
		if end > int64(len(ino.cache)) {
			ino.cache = append(ino.cache, make([]byte, end-int64(len(ino.cache)))...)
		}
		copy(ino.cache[off:], p)
		ctx.Advance(fs.costs.DRAMCopyCost(len(p)))
		for pg := off / pageSize; pg <= (end-1)/pageSize; pg++ {
			ino.dirty[pg] = struct{}{}
		}
		if len(ino.dirty) > dirtyLimit {
			h.writebackLocked(ctx, false)
		}
	}
	if end > ino.size {
		ino.size = end
		ino.metaDirty = true
	}
	return len(p), nil
}

// writeMedia writes p at logical offset off through the extent map with
// non-temporal stores, splitting at extent boundaries.
func (h *handle) writeMedia(ctx *sim.Ctx, p []byte, off int64) {
	ino := h.ino
	for len(p) > 0 {
		page := off / pageSize
		inPage := off % pageSize
		phys := ino.lookup(ctx, page)
		n := pageSize - int(inPage)
		if n > len(p) {
			n = len(p)
		}
		ino.fs.dev.WriteNT(ctx, p[:n], phys+inPage)
		p = p[n:]
		off += int64(n)
	}
}

func (ino *inode) zeroRange(ctx *sim.Ctx, from, to int64) {
	if to <= from {
		return
	}
	zero := make([]byte, pageSize)
	for from < to {
		n := int64(pageSize - from%pageSize)
		if n > to-from {
			n = to - from
		}
		phys := ino.lookup(ctx, from/pageSize)
		ino.fs.dev.WriteNT(ctx, zero[:n], phys+from%pageSize)
		from += n
	}
}

// ReadAt implements vfs.File.
func (h *handle) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("ext4: negative offset %d", off)
	}
	ino := h.ino
	fs := ino.fs
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp)
	ino.lock.RLock(ctx)
	defer ino.lock.RUnlock(ctx)

	if off >= ino.size {
		return 0, nil
	}
	n := len(p)
	if int64(n) > ino.size-off {
		n = int(ino.size - off)
	}
	if fs.mode == DAX {
		read := 0
		for read < n {
			pos := off + int64(read)
			page := pos / pageSize
			inPage := pos % pageSize
			if page >= ino.allocated {
				chunk := pageSize - int(inPage)
				if chunk > n-read {
					chunk = n - read
				}
				for i := read; i < read+chunk; i++ {
					p[i] = 0
				}
				read += chunk
				continue
			}
			// Read the whole run of pages within this extent in one
			// transfer (DAX reads stream through the mapping).
			phys := ino.lookup(ctx, page)
			run := ino.extentRun(page) * pageSize
			chunk := int(run - inPage)
			if chunk > n-read {
				chunk = n - read
			}
			fs.dev.Read(ctx, p[read:read+chunk], phys+inPage)
			read += chunk
		}
	} else {
		copy(p[:n], ino.cache[off:])
		ctx.Advance(fs.costs.DRAMCopyCost(n))
	}
	return n, nil
}

// Fsync implements vfs.File.
func (h *handle) Fsync(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	ino := h.ino
	fs := ino.fs
	ctx.Advance(fs.costs.Syscall + fs.costs.FsyncPath)
	ino.lock.Lock(ctx)
	defer ino.lock.Unlock(ctx)

	if fs.mode == DAX {
		fs.dev.Fence(ctx)
		if ino.metaDirty {
			fs.journal.commit(ctx, nil, 1)
			ino.metaDirty = false
		}
		return nil
	}
	h.writebackLocked(ctx, true)
	return nil
}

// writebackLocked flushes dirty pages per the journaling mode. When sync is
// false this is throttling write-back: data goes to disk but the commit is
// left to the periodic journal thread (modeled as metadata-only cost later).
func (h *handle) writebackLocked(ctx *sim.Ctx, sync bool) {
	ino := h.ino
	fs := ino.fs
	if len(ino.dirty) == 0 {
		if sync && ino.metaDirty {
			fs.journal.commit(ctx, nil, 1)
			ino.metaDirty = false
		}
		return
	}
	pages := make([]int64, 0, len(ino.dirty))
	maxPage := (ino.size + pageSize - 1) / pageSize
	for pg := range ino.dirty {
		pages = append(pages, pg)
		// Dirty pages can lie beyond the published size when throttling
		// write-back runs inside an in-flight extending write.
		if pg+1 > maxPage {
			maxPage = pg + 1
		}
	}
	if err := ino.ensureAllocated(ctx, maxPage); err != nil {
		return
	}
	var journalPayload [][]byte
	for _, pg := range pages {
		start := pg * pageSize
		endb := start + pageSize
		if endb > int64(len(ino.cache)) {
			endb = int64(len(ino.cache))
		}
		if start >= endb {
			delete(ino.dirty, pg)
			continue
		}
		buf := ino.cache[start:endb]
		if fs.mode == Journal {
			journalPayload = append(journalPayload, buf) // data through the journal
		}
		fs.dev.WriteNT(ctx, buf, ino.lookup(ctx, pg)) // write-back to home location
		delete(ino.dirty, pg)
	}
	fs.dev.Fence(ctx)
	if sync || fs.mode == Journal {
		fs.journal.commit(ctx, journalPayload, 1)
		ino.metaDirty = false
	}
}
