package crashtest

import (
	"bytes"
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// SnapConfig describes a snapshot-lifecycle sweep against MGSP. The scripted
// run is: pre-snapshot writes, Snapshot, copy-on-write overwrites (the first
// of which is the pin + relocation path), DropSnapshot, tail writes. The
// sweep crashes at every stride-th media op of that run and asserts after
// recovery that (a) the live file sits exactly at an operation boundary and
// (b) the snapshot, whenever it is live, serves the exact pre-snapshot image
// — never a torn mix — and is gone once the drop committed.
type SnapConfig struct {
	Opts     core.Options
	DevSize  int64
	FileSize int64
	// PreOps / PostOps / TailOps are the write counts before the snapshot,
	// between snapshot and drop, and after the drop.
	PreOps, PostOps, TailOps int
	MaxWrite                 int
	Seed                     int64
}

const (
	sopWrite = iota
	sopSnap
	sopDrop
)

type sop struct {
	kind int
	off  int64
	n    int
	pat  byte
}

func snapScript(cfg SnapConfig) []sop {
	ctx := sim.NewCtx(0, cfg.Seed)
	var ops []sop
	pat := byte(0)
	write := func() sop {
		pat = pat%254 + 1
		return sop{
			kind: sopWrite,
			off:  ctx.Rand.Int63n(cfg.FileSize - int64(cfg.MaxWrite)),
			n:    1 + ctx.Rand.Intn(cfg.MaxWrite),
			pat:  pat,
		}
	}
	for i := 0; i < cfg.PreOps; i++ {
		ops = append(ops, write())
	}
	ops = append(ops, sop{kind: sopSnap})
	for i := 0; i < cfg.PostOps; i++ {
		ops = append(ops, write())
	}
	ops = append(ops, sop{kind: sopDrop})
	for i := 0; i < cfg.TailOps; i++ {
		ops = append(ops, write())
	}
	return ops
}

// SnapSweep runs the snapshot-lifecycle script once per fail point.
func SnapSweep(cfg SnapConfig, stride int64) (Result, error) {
	script := snapScript(cfg)
	if stride < 1 {
		stride = 1
	}
	var res Result
	for fail := int64(1); ; fail += stride {
		done, err := snapRunOnce(script, cfg, fail)
		if err != nil {
			return res, fmt.Errorf("fail point %d: %w", fail, err)
		}
		if done {
			res.Completed = true
			return res, nil
		}
		res.CrashPoints++
	}
}

func snapRunOnce(script []sop, cfg SnapConfig, fail int64) (completedRun bool, err error) {
	dev := nvm.New(cfg.DevSize, sim.ZeroCosts())
	fs := core.MustNew(dev, cfg.Opts)
	ctx := sim.NewCtx(0, fail)
	const name = "snap.dat"
	f, err := fs.Create(ctx, name)
	if err != nil {
		return false, err
	}
	if _, err := f.WriteAt(ctx, make([]byte, cfg.FileSize), 0); err != nil {
		return false, err
	}
	if err := f.Fsync(ctx); err != nil {
		return false, err
	}

	// ref tracks the reference image as ops complete, so imgAtSnap below is
	// the exact logical content at snapshot time.
	ref := make([]byte, cfg.FileSize)
	apply := func(k int) {
		o := script[k]
		if o.kind != sopWrite {
			return
		}
		for j := 0; j < o.n; j++ {
			ref[o.off+int64(j)] = o.pat
		}
	}

	completed := -1
	var snapID core.SnapID
	var imgAtSnap []byte
	snapTaken, dropStarted, dropDone := false, false, false
	dev.ArmCrash(fail, fail*31+7)
	Shield(func() {
		for i, o := range script {
			switch o.kind {
			case sopWrite:
				if _, err := f.WriteAt(ctx, bytes.Repeat([]byte{o.pat}, o.n), o.off); err != nil {
					return
				}
				apply(i)
			case sopSnap:
				imgAtSnap = append([]byte(nil), ref...)
				id, err := fs.Snapshot(ctx, name)
				if err != nil {
					return
				}
				snapID, snapTaken = id, true
			case sopDrop:
				dropStarted = true
				if err := fs.DropSnapshot(ctx, name, snapID); err != nil {
					return
				}
				dropDone = true
			}
			completed = i
		}
	})
	dev.DisarmCrash()
	if !dev.Crashed() {
		return true, nil
	}
	dev.Recover()

	rctx := sim.NewCtx(1, fail)
	fs2, err := core.Mount(rctx, dev, cfg.Opts)
	if err != nil {
		return false, fmt.Errorf("recovery: %w", err)
	}
	f2, err := fs2.Open(rctx, name)
	if err != nil {
		return false, fmt.Errorf("open after recovery: %w", err)
	}
	got := make([]byte, cfg.FileSize)
	if _, err := f2.ReadAt(rctx, got, 0); err != nil {
		return false, err
	}

	// (a) The live file is at an operation boundary: the completed prefix
	// (ref as maintained during the run), possibly plus the single in-flight
	// write.
	cands := [][]byte{append([]byte(nil), ref...)}
	next := completed + 1
	for next < len(script) && script[next].kind != sopWrite {
		next++
	}
	if next < len(script) {
		apply(next)
		cands = append(cands, append([]byte(nil), ref...))
	}
	if core.MatchCandidate(got, cands) == -1 {
		return false, fmt.Errorf("live file is not at an operation boundary (completed=%d, diverges at byte %d)",
			completed, core.FirstDivergence(got, cands[0]))
	}

	// (b) Snapshot table consistency + frozen-image integrity.
	infos, err := fs2.Snapshots(rctx, name)
	if err != nil {
		return false, err
	}
	switch {
	case snapTaken && !dropStarted && len(infos) != 1:
		return false, fmt.Errorf("committed snapshot lost: %d listed", len(infos))
	case dropDone && len(infos) != 0:
		return false, fmt.Errorf("dropped snapshot resurrected: %d listed", len(infos))
	case !snapTaken && completed < len(script)-1 && len(infos) > 1:
		return false, fmt.Errorf("phantom snapshots: %d listed", len(infos))
	}
	for _, info := range infos {
		// Any live snapshot (committed, torn-creation survivor, or
		// torn-drop survivor) must serve the exact pre-snapshot image.
		sh, err := fs2.OpenSnapshot(rctx, name, info.ID)
		if err != nil {
			return false, fmt.Errorf("open snapshot %d: %w", info.ID, err)
		}
		if info.Size != cfg.FileSize {
			return false, fmt.Errorf("snapshot %d frozen size %d, want %d", info.ID, info.Size, cfg.FileSize)
		}
		frozen := make([]byte, info.Size)
		if _, err := sh.ReadAt(rctx, frozen, 0); err != nil {
			return false, err
		}
		sh.Close(rctx)
		if imgAtSnap == nil {
			return false, fmt.Errorf("snapshot %d listed before creation started", info.ID)
		}
		if i := core.FirstDivergence(frozen, imgAtSnap); i != -1 {
			return false, fmt.Errorf("snapshot %d torn at byte %d: %#x want %#x",
				info.ID, i, frozen[i], imgAtSnap[i])
		}
		if err := fs2.DropSnapshot(rctx, name, info.ID); err != nil {
			return false, fmt.Errorf("drop after recovery: %w", err)
		}
	}

	// (c) No leaked or double-accounted blocks after recovery + cleanup.
	if rep := fs2.AuditBlocks(); !rep.Clean() {
		return false, fmt.Errorf("block audit: %d orphans, %d unallocated",
			len(rep.Orphans), len(rep.Unallocated))
	}
	return false, nil
}
