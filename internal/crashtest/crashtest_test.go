package crashtest

import (
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/libnvmmio"
	"mgsp/internal/nova"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

const (
	devSize  = 128 << 20
	fileSize = 96 * 1024
)

func TestSweepMGSP(t *testing.T) {
	script := Script(40, fileSize, 20000, 0, 11)
	cfg := Config{
		Make: func(dev *nvm.Device) vfs.FS {
			return core.MustNew(dev, core.DefaultOptions())
		},
		Mount: func(ctx *sim.Ctx, dev *nvm.Device) (vfs.FS, error) {
			return core.Mount(ctx, dev, core.DefaultOptions())
		},
		DevSize:  devSize,
		FileSize: fileSize,
	}
	res, err := Sweep(script, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints < 20 || !res.Completed {
		t.Fatalf("sweep too shallow: %+v", res)
	}
}

func TestSweepMGSPDegree4(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Degree = 4
	script := Script(30, fileSize, 30000, 0, 23)
	cfg := Config{
		Make:     func(dev *nvm.Device) vfs.FS { return core.MustNew(dev, opts) },
		Mount:    func(ctx *sim.Ctx, dev *nvm.Device) (vfs.FS, error) { return core.Mount(ctx, dev, opts) },
		DevSize:  devSize,
		FileSize: fileSize,
	}
	if _, err := Sweep(script, cfg, 11); err != nil {
		t.Fatal(err)
	}
}

// TestSweepMGSPCleanerCheckpoint crashes at every stride-th media op while
// the background cleaner runs aggressively (interval 1 → a pass after nearly
// every op, so crashes land mid-cleaning and mid-checkpoint). The AltMount
// re-recovers each crashed image with the checkpoint record invalidated and
// the harness asserts identical contents: the checkpoint fast path must be a
// pure optimization.
func TestSweepMGSPCleanerCheckpoint(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CleanerInterval = 1
	script := Script(30, fileSize, 20000, 0, 29)
	cfg := Config{
		Make: func(dev *nvm.Device) vfs.FS {
			return core.MustNew(dev, opts)
		},
		Mount: func(ctx *sim.Ctx, dev *nvm.Device) (vfs.FS, error) {
			return core.Mount(ctx, dev, opts)
		},
		AltMount: func(ctx *sim.Ctx, dev *nvm.Device) (vfs.FS, error) {
			core.DropCheckpoint(ctx, dev)
			return core.Mount(ctx, dev, opts)
		},
		DevSize:  devSize,
		FileSize: fileSize,
	}
	res, err := Sweep(script, cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints < 20 || !res.Completed {
		t.Fatalf("sweep too shallow: %+v", res)
	}
}

func TestSweepNOVA(t *testing.T) {
	script := Script(40, fileSize, 20000, 0, 13)
	cfg := Config{
		Make:     func(dev *nvm.Device) vfs.FS { return nova.New(dev) },
		Mount:    func(ctx *sim.Ctx, dev *nvm.Device) (vfs.FS, error) { return nova.Mount(ctx, dev) },
		DevSize:  devSize,
		FileSize: fileSize,
	}
	res, err := Sweep(script, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints < 20 {
		t.Fatalf("sweep too shallow: %+v", res)
	}
}

func TestSweepLibnvmmio(t *testing.T) {
	script := Script(40, fileSize, 20000, 4, 17) // fsync every 4 ops
	cfg := Config{
		Make:     func(dev *nvm.Device) vfs.FS { return libnvmmio.New(dev) },
		Mount:    func(ctx *sim.Ctx, dev *nvm.Device) (vfs.FS, error) { return libnvmmio.Mount(ctx, dev) },
		DevSize:  devSize,
		FileSize: fileSize,
	}
	res, err := Sweep(script, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints < 20 {
		t.Fatalf("sweep too shallow: %+v", res)
	}
}

// TestScriptDeterminism: the same seed yields the same script.
func TestScriptDeterminism(t *testing.T) {
	a := Script(20, 4096*10, 1000, 3, 5)
	b := Script(20, 4096*10, 1000, 3, 5)
	if len(a) != len(b) {
		t.Fatal("script lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}
