package crashtest

import (
	"testing"

	"mgsp/internal/core"
)

// TestSnapSweepMGSP crashes at every 7th media op across the full snapshot
// lifecycle (create → first CoW write → steady CoW → drop) and asserts the
// recovered image is never torn: live file at an op boundary, snapshot (when
// live) serving the exact pre-snapshot bytes.
func TestSnapSweepMGSP(t *testing.T) {
	cfg := SnapConfig{
		Opts:     core.DefaultOptions(),
		DevSize:  128 << 20,
		FileSize: 96 * 1024,
		PreOps:   6,
		PostOps:  14,
		TailOps:  6,
		MaxWrite: 20000,
		Seed:     41,
	}
	res, err := SnapSweep(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints < 20 || !res.Completed {
		t.Fatalf("sweep too shallow: %+v", res)
	}
}

// TestSnapSweepMGSPDegree4 repeats the sweep with a degree-4 tree so crash
// points land inside multi-entry chained CoW commits (more than snapOpSlots
// word changes per write).
func TestSnapSweepMGSPDegree4(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Degree = 4
	cfg := SnapConfig{
		Opts:     opts,
		DevSize:  128 << 20,
		FileSize: 96 * 1024,
		PreOps:   4,
		PostOps:  10,
		TailOps:  4,
		MaxWrite: 30000,
		Seed:     43,
	}
	res, err := SnapSweep(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints < 15 || !res.Completed {
		t.Fatalf("sweep too shallow: %+v", res)
	}
}
