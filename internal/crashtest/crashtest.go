// Package crashtest is the fail-point sweep harness: it runs a scripted
// workload against a file system, crashes the device at a chosen media-op
// index, remounts through the system's recovery path, and checks the
// recovered file against the guarantee the system advertises
// (vfs.ConsistencyLevel):
//
//   - OpAtomic (MGSP, NOVA): the recovered content equals the reference
//     state after some completed-op prefix, possibly plus the single
//     in-flight op — never a torn mix;
//   - SyncAtomic (Libnvmmio): everything up to the last successful fsync is
//     present, and every byte is either pre-crash or written data;
//   - MetadataOnly (Ext4-DAX): no data guarantee is checked, only that the
//     system remounts.
package crashtest

import (
	"bytes"
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Shield runs body, converting the device's crash panic (nvm.ErrCrashed)
// into a normal return; any other panic propagates. Every goroutine that may
// touch a crash-armed device must do its work inside Shield — an unhandled
// crash panic would kill the test process before the harness gets to remount
// and check the oracle. internal/torture runs each concurrent writer under
// it.
func Shield(body func()) {
	defer func() {
		if r := recover(); r != nil && r != nvm.ErrCrashed {
			panic(r)
		}
	}()
	body()
}

// Op is one scripted write (Fsync=true makes it a sync barrier instead).
type Op struct {
	Off   int64
	N     int
	Pat   byte
	Fsync bool
}

// Script generates a deterministic workload of nOps writes over fileSize
// bytes with a sync barrier every syncEvery ops (0 = never).
func Script(nOps int, fileSize int64, maxWrite int, syncEvery int, seed int64) []Op {
	ctx := sim.NewCtx(0, seed)
	var ops []Op
	for i := 0; i < nOps; i++ {
		if syncEvery > 0 && i > 0 && i%syncEvery == 0 {
			ops = append(ops, Op{Fsync: true})
		}
		n := 1 + ctx.Rand.Intn(maxWrite)
		ops = append(ops, Op{
			Off: ctx.Rand.Int63n(fileSize - int64(maxWrite)),
			N:   n,
			Pat: byte(i%255 + 1),
		})
	}
	return ops
}

// Mounter rebuilds a file system from the crashed device (the system's
// recovery path).
type Mounter func(ctx *sim.Ctx, dev *nvm.Device) (vfs.FS, error)

// Config describes one sweep subject.
type Config struct {
	// Make formats a fresh file system on the device.
	Make func(dev *nvm.Device) vfs.FS
	// Mount recovers it after a crash.
	Mount Mounter
	// AltMount, when set, recovers a second copy of the crashed image through
	// an alternate path (e.g. with the checkpoint record invalidated) and the
	// sweep asserts both mounts see identical file contents. This checks that
	// recovery fast paths are pure optimizations.
	AltMount Mounter
	// DevSize sizes the device.
	DevSize int64
	// FileSize is the dense pre-filled region the script writes into.
	FileSize int64
}

// Result summarizes a sweep.
type Result struct {
	CrashPoints int
	Completed   bool // the sweep reached workload completion
}

// Sweep runs the script once per fail point (stepping by stride to bound
// runtime), verifying the advertised guarantee after each crash. It stops
// when a run completes without hitting the fail point.
func Sweep(script []Op, cfg Config, stride int64) (Result, error) {
	if stride < 1 {
		stride = 1
	}
	var res Result
	for fail := int64(1); ; fail += stride {
		done, err := runOnce(script, cfg, fail)
		if err != nil {
			return res, fmt.Errorf("fail point %d: %w", fail, err)
		}
		if done {
			res.Completed = true
			return res, nil
		}
		res.CrashPoints++
	}
}

func runOnce(script []Op, cfg Config, fail int64) (completed bool, err error) {
	dev := nvm.New(cfg.DevSize, sim.ZeroCosts())
	fs := cfg.Make(dev)
	level := vfs.OpAtomic
	if g, ok := fs.(vfs.Guarantees); ok {
		level = g.Consistency()
	}
	ctx := sim.NewCtx(0, fail)
	f, err := fs.Create(ctx, "crash.dat")
	if err != nil {
		return false, err
	}
	if _, err := f.WriteAt(ctx, make([]byte, cfg.FileSize), 0); err != nil {
		return false, err
	}
	if err := f.Fsync(ctx); err != nil {
		return false, err
	}

	ref := make([]byte, cfg.FileSize)
	apply := func(k int) {
		o := script[k]
		for j := 0; j < o.N; j++ {
			ref[o.Off+int64(j)] = o.Pat
		}
	}

	completedOps := -1
	lastSynced := -1
	dev.ArmCrash(fail, fail*31+7)
	Shield(func() {
		for i, o := range script {
			if o.Fsync {
				if err := f.Fsync(ctx); err != nil {
					return
				}
				lastSynced = completedOps
				continue
			}
			if _, err := f.WriteAt(ctx, bytes.Repeat([]byte{o.Pat}, o.N), o.Off); err != nil {
				return
			}
			completedOps = i
		}
	})
	dev.DisarmCrash()
	if !dev.Crashed() {
		return true, err
	}
	dev.Recover()

	// Snapshot the crashed image before Mount mutates it, so AltMount sees
	// the same post-crash state.
	var img bytes.Buffer
	if cfg.AltMount != nil {
		if err := dev.Save(&img); err != nil {
			return false, err
		}
	}

	rctx := sim.NewCtx(1, fail)
	fs2, err := cfg.Mount(rctx, dev)
	if err != nil {
		return false, fmt.Errorf("recovery: %w", err)
	}
	f2, err := fs2.Open(rctx, "crash.dat")
	if err != nil {
		return false, fmt.Errorf("open after recovery: %w", err)
	}
	got := make([]byte, cfg.FileSize)
	if _, err := f2.ReadAt(rctx, got, 0); err != nil {
		return false, err
	}

	if cfg.AltMount != nil {
		dev2, err := nvm.LoadImage(&img, func(int64) *nvm.Device {
			return nvm.New(cfg.DevSize, sim.ZeroCosts())
		})
		if err != nil {
			return false, err
		}
		actx := sim.NewCtx(2, fail)
		afs, err := cfg.AltMount(actx, dev2)
		if err != nil {
			return false, fmt.Errorf("alt recovery: %w", err)
		}
		af, err := afs.Open(actx, "crash.dat")
		if err != nil {
			return false, fmt.Errorf("open after alt recovery: %w", err)
		}
		got2 := make([]byte, cfg.FileSize)
		if _, err := af.ReadAt(actx, got2, 0); err != nil {
			return false, err
		}
		if !bytes.Equal(got2, got) {
			return false, fmt.Errorf("alternate mount recovered different contents")
		}
	}

	switch level {
	case vfs.OpAtomic:
		// Exact op-boundary states: prefix through completedOps, possibly
		// plus the in-flight op.
		for i := 0; i <= completedOps; i++ {
			apply(i)
		}
		cands := [][]byte{append([]byte(nil), ref...)}
		next := completedOps + 1
		for next < len(script) && script[next].Fsync {
			next++
		}
		if next < len(script) {
			apply(next)
			cands = append(cands, append([]byte(nil), ref...))
		}
		if core.MatchCandidate(got, cands) == -1 {
			return false, fmt.Errorf(
				"recovered state is not an operation boundary (completed=%d, diverges from prefix at byte %d)",
				completedOps, core.FirstDivergence(got, cands[0]))
		}
		return false, nil
	case vfs.SyncAtomic:
		// Everything through the last successful fsync must match; beyond
		// it, each byte is either the synced state or some later write's
		// pattern.
		synced := make([]byte, cfg.FileSize)
		for i := 0; i <= lastSynced; i++ {
			o := script[i]
			if o.Fsync {
				continue
			}
			for j := 0; j < o.N; j++ {
				synced[o.Off+int64(j)] = o.Pat
			}
		}
		later := map[byte]bool{}
		for i := lastSynced + 1; i < len(script); i++ {
			if !script[i].Fsync {
				later[script[i].Pat] = true
			}
		}
		for i := range got {
			if got[i] != synced[i] && !later[got[i]] {
				return false, fmt.Errorf("byte %d = %#x: neither synced state nor later write data", i, got[i])
			}
		}
		// Coverage: the synced prefix must not be lost wholesale. Verify
		// synced writes whose ranges were never overwritten later.
		for i := 0; i <= lastSynced; i++ {
			o := script[i]
			if o.Fsync || o.N == 0 {
				continue
			}
			overwritten := false
			for k := i + 1; k < len(script); k++ {
				o2 := script[k]
				if o2.Fsync {
					continue
				}
				if o.Off < o2.Off+int64(o2.N) && o2.Off < o.Off+int64(o.N) {
					overwritten = true
					break
				}
			}
			if !overwritten && got[o.Off] != o.Pat {
				return false, fmt.Errorf("synced op %d lost after crash", i)
			}
		}
		return false, nil
	default: // MetadataOnly: remounting sufficed.
		return false, nil
	}
}
