// Package pmfile models what a user-space NVM library (Libnvmmio, MGSP) gets
// from its underlying DAX file system: files that can be created, sized, and
// memory-mapped, after which loads and stores hit persistent memory directly
// with no kernel involvement. In the paper both libraries sit on Ext4-DAX and
// use PMDK for persistence; here the Provider charges kernel costs only for
// the control-plane operations (create/open/extend = syscalls, first-touch
// page faults) while the data plane (DirectRead/DirectWrite/Persist) costs
// only media time — the asymmetry that makes user-space MMIO fast.
//
// The Provider also persists a name table (file slots with extent lists and
// sizes) and hands out anonymous blocks for the libraries' logs, and can
// rebuild itself from the device image after a crash.
package pmfile

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"mgsp/internal/alloc"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

const (
	// PageSize is the mapping granularity.
	PageSize = 4096

	slotSize    = 512
	maxFiles    = 256
	tableSize   = maxFiles * slotSize
	maxExtents  = 26
	extentBytes = 16

	slotFlags  = 0
	slotSizeOf = 8
	slotNExt   = 16
	slotName   = 24  // len(8) + 56 bytes
	slotExt    = 88  // extent array start: 26 * 16 = 416 bytes
	firstChunk = 256 // pages in the first extent (1 MiB); doubles each time
)

// Provider is the per-device file/space service for user-space libraries.
type Provider struct {
	dev   *nvm.Device
	costs *sim.Costs
	alloc *alloc.Allocator

	metaStart int64 // library-private metadata region
	metaSize  int64

	mu    sim.Mutex
	files map[string]*File
	slots []bool

	// backing counts the pages currently backing files (the sum of their
	// capacities). Kept as an atomic so lock-free readers — the cleaner's
	// lag computation, the server's admission control — can subtract it
	// from allocator usage without racing the files map.
	backing atomic.Int64
}

// New formats a provider over the device, reserving metaBytes of
// library-private metadata space (returned by MetaRegion).
func New(dev *nvm.Device, metaBytes int64) *Provider {
	metaBytes = (metaBytes + PageSize - 1) / PageSize * PageSize
	dataStart := int64(tableSize) + metaBytes
	if dataStart+PageSize > dev.Size() {
		panic("pmfile: device too small")
	}
	return &Provider{
		dev:       dev,
		costs:     dev.Costs(),
		alloc:     alloc.New(dataStart, dev.Size()-dataStart, PageSize, dev.Costs()),
		metaStart: tableSize,
		metaSize:  metaBytes,
		files:     make(map[string]*File),
		slots:     make([]bool, maxFiles),
	}
}

// Device returns the underlying device.
func (p *Provider) Device() *nvm.Device { return p.dev }

// Costs returns the cost model.
func (p *Provider) Costs() *sim.Costs { return p.costs }

// Alloc returns the block allocator for anonymous (log) blocks.
func (p *Provider) Alloc() *alloc.Allocator { return p.alloc }

// MetaRegion returns the library-private metadata region [start, start+size).
func (p *Provider) MetaRegion() (start, size int64) { return p.metaStart, p.metaSize }

// MetaStart returns the fixed device offset where the library-private
// metadata region begins (right after the file table), letting tools locate
// library structures on a raw image without constructing a Provider.
func MetaStart() int64 { return tableSize }

// DataStart returns the first device offset managed by the allocator (used
// to index per-block metadata arrays).
func (p *Provider) DataStart() int64 { return p.metaStart + p.metaSize }

func (p *Provider) slotOff(slot int) int64 { return int64(slot) * slotSize }

// Create creates (or truncates to zero) a file. It costs an open syscall and
// a small metadata persist, like O_CREAT on the underlying DAX file system.
func (p *Provider) Create(ctx *sim.Ctx, name string) (*File, error) {
	ctx.Advance(p.costs.Syscall + p.costs.VFSOp)
	p.mu.Lock(ctx)
	defer p.mu.Unlock(ctx)
	if f := p.files[name]; f != nil {
		f.truncateToZero(ctx)
		return f, nil
	}
	if len(name) > slotSize-slotName-8 {
		return nil, fmt.Errorf("pmfile: name too long: %q", name)
	}
	slot := -1
	for i, used := range p.slots {
		if !used {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("pmfile: file table full")
	}
	f := p.newFile(name, slot)
	p.slots[slot] = true
	p.files[name] = f
	f.persistSlot(ctx)
	return f, nil
}

// Open returns the named file.
func (p *Provider) Open(ctx *sim.Ctx, name string) (*File, error) {
	ctx.Advance(p.costs.Syscall + p.costs.VFSOp)
	p.mu.Lock(ctx)
	defer p.mu.Unlock(ctx)
	f := p.files[name]
	if f == nil {
		return nil, vfs.ErrNotExist
	}
	return f, nil
}

// Remove deletes the named file and frees its extents.
func (p *Provider) Remove(ctx *sim.Ctx, name string) error {
	ctx.Advance(p.costs.Syscall + p.costs.VFSOp)
	p.mu.Lock(ctx)
	defer p.mu.Unlock(ctx)
	f := p.files[name]
	if f == nil {
		return vfs.ErrNotExist
	}
	delete(p.files, name)
	p.slots[f.slot] = false
	p.dev.Store8(ctx, p.slotOff(f.slot)+slotFlags, 0)
	for _, e := range f.extentList() {
		p.alloc.Free(ctx, e.phys, e.pages)
	}
	p.backing.Add(-f.capacity.Load() / PageSize)
	f.extents.Store(nil)
	f.capacity.Store(0)
	return nil
}

// BackingPages returns the pages currently backing files (sum of their
// capacities). Lock-free, so it is safe from any goroutine concurrently
// with Create/Remove/EnsureCapacity — unlike iterating Files().
func (p *Provider) BackingPages() int64 { return p.backing.Load() }

// Files returns the live files by name (for recovery passes).
func (p *Provider) Files() map[string]*File { return p.files }

// extent maps logical pages to a physical run.
type extent struct {
	phys  int64
	pages int64
}

// File is a created pm file; the zero of its data is all zeros (unwritten
// extents read as zeros, as on ext4).
type File struct {
	p    *Provider
	name string
	slot int

	mu       sim.Mutex    // extent growth and slot persistence
	size     atomic.Int64 // persisted in the slot (Store8)
	capacity atomic.Int64
	extents  atomic.Pointer[[]extent] // copy-on-write; stored before capacity

	// Volatile page bitmaps, one bit per page, sized for the whole provider
	// data region up front so concurrent extent growth never reallocates
	// them under readers.
	written []atomic.Uint64 // pages ever stored to
	faulted []atomic.Uint64 // pages touched through the mapping
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Slot returns the persistent slot index (libraries store it in their logs).
func (f *File) Slot() int { return f.slot }

// Size returns the persisted file size.
func (f *File) Size() int64 { return f.size.Load() }

// Capacity returns the allocated capacity in bytes.
func (f *File) Capacity() int64 { return f.capacity.Load() }

func (f *File) extentList() []extent {
	if p := f.extents.Load(); p != nil {
		return *p
	}
	return nil
}

// PhysExtents returns the file's physical extents as allocator extents
// (device offset of the first block, block count). Audits use it to account
// every data-region block to a file or to a shadow log.
func (f *File) PhysExtents() []alloc.Extent {
	exts := f.extentList()
	out := make([]alloc.Extent, 0, len(exts))
	for _, e := range exts {
		out = append(out, alloc.Extent{Off: e.phys, N: e.pages})
	}
	return out
}

// SetSize persists a new file size with one 8-byte atomic store.
func (f *File) SetSize(ctx *sim.Ctx, size int64) {
	f.size.Store(size)
	f.p.dev.Store8(ctx, f.p.slotOff(f.slot)+slotSizeOf, uint64(size))
}

// newFile builds a File with page bitmaps covering the whole data region.
func (p *Provider) newFile(name string, slot int) *File {
	words := (p.Device().Size()/PageSize + 63) / 64
	return &File{
		p: p, name: name, slot: slot,
		written: make([]atomic.Uint64, words),
		faulted: make([]atomic.Uint64, words),
	}
}

func (f *File) truncateToZero(ctx *sim.Ctx) {
	f.mu.Lock(ctx)
	defer f.mu.Unlock(ctx)
	for i := range f.written {
		f.written[i].Store(0)
	}
	f.SetSize(ctx, 0)
}

// persistSlot rewrites the file's slot and fences. Extent appends write the
// new extent bytes before the count, so a torn update is invisible.
func (f *File) persistSlot(ctx *sim.Ctx) {
	exts := f.extentList()
	var buf [slotSize]byte
	binary.LittleEndian.PutUint64(buf[slotFlags:], 1)
	binary.LittleEndian.PutUint64(buf[slotSizeOf:], uint64(f.size.Load()))
	binary.LittleEndian.PutUint64(buf[slotNExt:], uint64(len(exts)))
	binary.LittleEndian.PutUint64(buf[slotName:], uint64(len(f.name)))
	copy(buf[slotName+8:], f.name)
	for i, e := range exts {
		binary.LittleEndian.PutUint64(buf[slotExt+i*extentBytes:], uint64(e.phys))
		binary.LittleEndian.PutUint64(buf[slotExt+i*extentBytes+8:], uint64(e.pages))
	}
	f.p.dev.WriteNT(ctx, buf[:], f.p.slotOff(f.slot))
	f.p.dev.Fence(ctx)
}

// EnsureCapacity extends the file (fallocate + mremap on the real system) so
// that at least n bytes are mapped. Extents grow geometrically, so a file
// performs O(log size) extensions over its lifetime.
func (f *File) EnsureCapacity(ctx *sim.Ctx, n int64) error {
	if n <= f.capacity.Load() {
		return nil
	}
	f.mu.Lock(ctx)
	defer f.mu.Unlock(ctx)
	for f.capacity.Load() < n {
		ctx.Advance(f.p.costs.Syscall + f.p.costs.VFSOp) // fallocate
		exts := f.extentList()
		if len(exts) >= maxExtents {
			return fmt.Errorf("pmfile: %q exceeded %d extents", f.name, maxExtents)
		}
		pages := int64(firstChunk) << uint(len(exts))
		if want := (n - f.capacity.Load() + PageSize - 1) / PageSize; pages < want {
			pages = want
		}
		phys, err := f.p.alloc.AllocContig(ctx, pages)
		if err != nil {
			// Retry with the exact requirement before giving up.
			pages = (n - f.capacity.Load() + PageSize - 1) / PageSize
			if phys, err = f.p.alloc.AllocContig(ctx, pages); err != nil {
				return err
			}
		}
		next := make([]extent, len(exts)+1)
		copy(next, exts)
		next[len(exts)] = extent{phys: phys, pages: pages}
		f.extents.Store(&next) // publish the extent list before the capacity
		f.capacity.Add(pages * PageSize)
		f.p.backing.Add(pages)
		f.persistSlot(ctx)
	}
	return nil
}

// phys translates a logical offset to its device offset and the bytes
// remaining in the extent.
func (f *File) phys(off int64) (int64, int64) {
	pg := off / PageSize
	for _, e := range f.extentList() {
		if pg < e.pages {
			return e.phys + pg*PageSize + off%PageSize, (e.pages-pg)*PageSize - off%PageSize
		}
		pg -= e.pages
	}
	panic(fmt.Sprintf("pmfile: offset %d beyond capacity %d of %q", off, f.capacity.Load(), f.name))
}

// faultSpan is the DAX mapping fault granularity: Ext4-DAX and the
// user-space libraries map PMem with 2 MiB PMD entries, so one minor fault
// covers 512 base pages.
const faultSpan = 2 << 20

// fault charges first-touch mapping faults for [off, off+n).
func (f *File) fault(ctx *sim.Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	for c := off / faultSpan; c <= (off+n-1)/faultSpan; c++ {
		if setBit(f.faulted, c) {
			ctx.Advance(f.p.costs.PageFault)
		}
	}
}

// markWritten records which pages have ever been stored to; reads of
// untouched pages return zeros without touching media (unwritten extents).
func (f *File) markWritten(off, n int64) {
	if n <= 0 {
		return
	}
	for pg := off / PageSize; pg <= (off+n-1)/PageSize; pg++ {
		setBit(f.written, pg)
	}
}

func (f *File) isWritten(pg int64) bool {
	return f.written[pg/64].Load()&(1<<uint(pg%64)) != 0
}

// MarkUnwritten clears the written bits for every page at or after
// firstPage — the moral equivalent of punching a hole / deallocating blocks
// on a shrinking truncate, after which those pages read as zeros.
func (f *File) MarkUnwritten(firstPage int64) {
	for pg := firstPage; pg < f.capacity.Load()/PageSize; pg++ {
		w := &f.written[pg/64]
		bit := uint64(1) << uint(pg%64)
		for {
			old := w.Load()
			if old&bit == 0 || w.CompareAndSwap(old, old&^bit) {
				break
			}
		}
	}
}

// setBit sets bit pg and reports whether it was previously clear.
func setBit(bm []atomic.Uint64, pg int64) bool {
	w := &bm[pg/64]
	bit := uint64(1) << uint(pg%64)
	for {
		old := w.Load()
		if old&bit != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|bit) {
			return true
		}
	}
}

// DirectWrite stores p at logical offset off through the mapping with
// non-temporal stores (PMDK pmem_memcpy). The caller must have ensured
// capacity. No kernel cost is charged — this is the MMIO fast path.
func (f *File) DirectWrite(ctx *sim.Ctx, p []byte, off int64) {
	if len(p) == 0 {
		return
	}
	if off+int64(len(p)) > f.capacity.Load() {
		panic(fmt.Sprintf("pmfile: write beyond capacity of %q", f.name))
	}
	f.fault(ctx, off, int64(len(p)))
	rem := p
	for len(rem) > 0 {
		dst, span := f.phys(off)
		n := int64(len(rem))
		if n > span {
			n = span
		}
		f.p.dev.WriteNT(ctx, rem[:n], dst)
		rem = rem[n:]
		off += n
	}
	f.markWritten(off-int64(len(p)), int64(len(p)))
}

// DirectRead loads into p from logical offset off. Unwritten pages read as
// zeros without media access.
func (f *File) DirectRead(ctx *sim.Ctx, p []byte, off int64) {
	if len(p) == 0 {
		return
	}
	if off+int64(len(p)) > f.capacity.Load() {
		panic(fmt.Sprintf("pmfile: read beyond capacity of %q (off=%d len=%d cap=%d)", f.name, off, len(p), f.capacity.Load()))
	}
	f.fault(ctx, off, int64(len(p)))
	read := int64(0)
	total := int64(len(p))
	for read < total {
		pos := off + read
		pg := pos / PageSize
		written := f.isWritten(pg)
		// Coalesce the run of pages with the same written-state (loads
		// through the mapping stream; only extent boundaries split reads).
		chunk := PageSize - pos%PageSize
		for chunk < total-read {
			npg := (pos + chunk) / PageSize
			if f.isWritten(npg) != written {
				break
			}
			chunk += PageSize
		}
		if chunk > total-read {
			chunk = total - read
		}
		if written {
			for chunk > 0 {
				src, span := f.phys(pos)
				n := chunk
				if n > span {
					n = span
				}
				f.p.dev.Read(ctx, p[read:read+n], src)
				read += n
				pos += n
				chunk -= n
			}
			continue
		}
		for i := read; i < read+chunk; i++ {
			p[i] = 0
		}
		ctx.Advance(f.p.costs.DRAMLat)
		read += chunk
	}
}

// Fence orders prior stores (sfence).
func (f *File) Fence(ctx *sim.Ctx) { f.p.dev.Fence(ctx) }
