package pmfile

import (
	"encoding/binary"
	"fmt"

	"mgsp/internal/alloc"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// Recover rebuilds a Provider from the persistent image on dev after a
// crash: the name table is scanned, file extents are re-registered with the
// volatile allocator, and pages within each file's persisted size are marked
// written. The calling library must then mark its own anonymous (log) blocks
// via Alloc().MarkAllocated before allocating anything new.
func Recover(ctx *sim.Ctx, dev *nvm.Device, metaBytes int64) (*Provider, error) {
	metaBytes = (metaBytes + PageSize - 1) / PageSize * PageSize
	dataStart := int64(tableSize) + metaBytes
	p := &Provider{
		dev:       dev,
		costs:     dev.Costs(),
		alloc:     alloc.New(dataStart, dev.Size()-dataStart, PageSize, dev.Costs()),
		metaStart: tableSize,
		metaSize:  metaBytes,
		files:     make(map[string]*File),
		slots:     make([]bool, maxFiles),
	}
	var buf [slotSize]byte
	for i := 0; i < maxFiles; i++ {
		dev.Read(ctx, buf[:], p.slotOff(i))
		if binary.LittleEndian.Uint64(buf[slotFlags:]) != 1 {
			continue
		}
		nameLen := binary.LittleEndian.Uint64(buf[slotName:])
		if nameLen > slotSize-slotName-8 {
			return nil, fmt.Errorf("pmfile: slot %d corrupt name length %d", i, nameLen)
		}
		nExt := binary.LittleEndian.Uint64(buf[slotNExt:])
		if nExt > maxExtents {
			return nil, fmt.Errorf("pmfile: slot %d corrupt extent count %d", i, nExt)
		}
		f := p.newFile(string(buf[slotName+8:slotName+8+int(nameLen)]), i)
		f.size.Store(int64(binary.LittleEndian.Uint64(buf[slotSizeOf:])))
		exts := make([]extent, nExt)
		for j := range exts {
			exts[j] = extent{
				phys:  int64(binary.LittleEndian.Uint64(buf[slotExt+j*extentBytes:])),
				pages: int64(binary.LittleEndian.Uint64(buf[slotExt+j*extentBytes+8:])),
			}
			if err := p.alloc.MarkAllocated(exts[j].phys, exts[j].pages); err != nil {
				return nil, fmt.Errorf("pmfile: slot %d: %w", i, err)
			}
			f.capacity.Add(exts[j].pages * PageSize)
			p.backing.Add(exts[j].pages)
		}
		f.extents.Store(&exts)
		// Pages within the persisted size were (conservatively) stored to;
		// crash recovery of files with interior holes is outside the fault
		// model (see DESIGN.md).
		if sz := f.size.Load(); sz > 0 {
			f.markWritten(0, sz)
		}
		p.slots[i] = true
		p.files[f.name] = f
		ctx.Advance(p.costs.IndexStep * 4)
	}
	return p, nil
}
