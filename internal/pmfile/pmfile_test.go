package pmfile

import (
	"bytes"
	"sync"
	"testing"

	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

func newProvider(size int64) (*Provider, *sim.Ctx) {
	return New(nvm.New(size, sim.ZeroCosts()), 1<<20), sim.NewCtx(0, 1)
}

func TestCreateOpenRemove(t *testing.T) {
	p, ctx := newProvider(32 << 20)
	f, err := p.Create(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if f.Slot() < 0 || f.Name() != "a" {
		t.Fatalf("bad file identity: slot=%d name=%q", f.Slot(), f.Name())
	}
	if _, err := p.Open(ctx, "b"); err != vfs.ErrNotExist {
		t.Fatalf("Open(missing) = %v", err)
	}
	g, err := p.Open(ctx, "a")
	if err != nil || g != f {
		t.Fatalf("Open = %v, %v", g, err)
	}
	if err := p.Remove(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open(ctx, "a"); err != vfs.ErrNotExist {
		t.Fatalf("Open(removed) = %v", err)
	}
}

func TestDirectWriteReadRoundTrip(t *testing.T) {
	p, ctx := newProvider(32 << 20)
	f, _ := p.Create(ctx, "f")
	if err := f.EnsureCapacity(ctx, 3<<20); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7, 13, 99}, 100000)
	f.DirectWrite(ctx, data, 12345)
	buf := make([]byte, len(data))
	f.DirectRead(ctx, buf, 12345)
	if !bytes.Equal(buf, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnwrittenPagesReadZero(t *testing.T) {
	p, ctx := newProvider(32 << 20)
	f, _ := p.Create(ctx, "f")
	f.EnsureCapacity(ctx, 1<<20)
	// Dirty the device region first by creating/removing another file.
	g, _ := p.Create(ctx, "g")
	g.EnsureCapacity(ctx, 1<<20)
	g.DirectWrite(ctx, bytes.Repeat([]byte{0xFF}, 1<<20), 0)
	buf := make([]byte, 8192)
	f.DirectRead(ctx, buf, 4096)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %#x, want 0", i, b)
		}
	}
}

func TestGeometricExtentGrowth(t *testing.T) {
	p, ctx := newProvider(512 << 20)
	f, _ := p.Create(ctx, "f")
	if err := f.EnsureCapacity(ctx, 200<<20); err != nil {
		t.Fatal(err)
	}
	if n := len(f.extentList()); n > 10 {
		t.Fatalf("200 MiB took %d extents, want few (geometric growth)", n)
	}
	if f.Capacity() < 200<<20 {
		t.Fatalf("capacity = %d", f.Capacity())
	}
}

func TestSetSizePersists(t *testing.T) {
	p, ctx := newProvider(32 << 20)
	f, _ := p.Create(ctx, "f")
	f.EnsureCapacity(ctx, 1<<20)
	f.DirectWrite(ctx, []byte("hello"), 0)
	f.Fence(ctx) // data durable before the size word publishes it
	f.SetSize(ctx, 5)

	p.Device().DropVolatile()
	p2, err := Recover(ctx, p.Device(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p2.Open(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 5 {
		t.Fatalf("recovered size = %d, want 5", f2.Size())
	}
	buf := make([]byte, 5)
	f2.DirectRead(ctx, buf, 0)
	if string(buf) != "hello" {
		t.Fatalf("recovered data %q", buf)
	}
}

func TestRecoverRebuildsAllocator(t *testing.T) {
	p, ctx := newProvider(64 << 20)
	f, _ := p.Create(ctx, "f")
	f.EnsureCapacity(ctx, 4<<20)
	logBlock, err := p.Alloc().Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}

	p.Device().DropVolatile()
	p2, err := Recover(ctx, p.Device(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := p2.Open(ctx, "f")
	// The file's extents must be registered...
	exts := f2.extentList()
	if len(exts) == 0 || !p2.Alloc().Allocated(exts[0].phys) {
		t.Fatal("file extents not re-registered with allocator")
	}
	// ...and the anonymous log block must be claimable by the library.
	if err := p2.Alloc().MarkAllocated(logBlock, 1); err != nil {
		t.Fatalf("log block not reclaimable: %v", err)
	}
}

func TestFirstTouchFaultsChargedOnce(t *testing.T) {
	dev := nvm.New(32<<20, sim.DefaultCosts())
	p := New(dev, 1<<20)
	ctx := sim.NewCtx(0, 1)
	f, _ := p.Create(ctx, "f")
	f.EnsureCapacity(ctx, 1<<20)

	t0 := ctx.Now()
	f.DirectWrite(ctx, make([]byte, 4096), 0)
	cold := ctx.Now() - t0
	t0 = ctx.Now()
	f.DirectWrite(ctx, make([]byte, 4096), 0)
	warm := ctx.Now() - t0
	if cold < warm+dev.Costs().PageFault {
		t.Fatalf("first touch (%dns) must include a page fault over warm access (%dns)", cold, warm)
	}
}

func TestDataPlaneHasNoSyscallCost(t *testing.T) {
	dev := nvm.New(32<<20, sim.DefaultCosts())
	p := New(dev, 1<<20)
	ctx := sim.NewCtx(0, 1)
	f, _ := p.Create(ctx, "f")
	f.EnsureCapacity(ctx, 1<<20)
	f.DirectWrite(ctx, make([]byte, 4096), 0) // warm the page

	costs := dev.Costs()
	t0 := ctx.Now()
	f.DirectWrite(ctx, make([]byte, 4096), 0)
	elapsed := ctx.Now() - t0
	// A warm 4K direct write is pure media cost — far below one syscall
	// round trip plus media.
	if elapsed >= costs.WriteCost(4096)+costs.Syscall {
		t.Fatalf("direct write cost %dns includes kernel-path overhead", elapsed)
	}
}

func TestConcurrentDirectAccess(t *testing.T) {
	p, _ := newProvider(64 << 20)
	setup := sim.NewCtx(99, 1)
	f, _ := p.Create(setup, "f")
	f.EnsureCapacity(setup, 8<<20)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(id, int64(id))
			base := int64(id) * (2 << 20)
			data := bytes.Repeat([]byte{byte(id + 1)}, 4096)
			buf := make([]byte, 4096)
			for i := 0; i < 100; i++ {
				off := base + int64(ctx.Rand.Intn(2<<20-4096))
				f.DirectWrite(ctx, data, off)
				f.DirectRead(ctx, buf, off)
				if buf[0] != byte(id+1) {
					t.Errorf("worker %d read back %d", id, buf[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentGrowthWithReaders(t *testing.T) {
	p, _ := newProvider(256 << 20)
	setup := sim.NewCtx(99, 1)
	f, _ := p.Create(setup, "f")
	f.EnsureCapacity(setup, 1<<20)
	f.DirectWrite(setup, bytes.Repeat([]byte{0x11}, 1<<20), 0)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ctx := sim.NewCtx(1, 1)
		for n := int64(2 << 20); n <= 128<<20; n *= 2 {
			f.EnsureCapacity(ctx, n)
		}
	}()
	go func() {
		defer wg.Done()
		ctx := sim.NewCtx(2, 2)
		buf := make([]byte, 4096)
		for i := 0; i < 500; i++ {
			f.DirectRead(ctx, buf, int64(i%250)*4096)
			if buf[0] != 0x11 {
				t.Errorf("read %#x during growth", buf[0])
				return
			}
		}
	}()
	wg.Wait()
}

func TestCreateTruncatesExisting(t *testing.T) {
	p, ctx := newProvider(32 << 20)
	f, _ := p.Create(ctx, "f")
	f.EnsureCapacity(ctx, 1<<20)
	f.DirectWrite(ctx, []byte("old"), 0)
	f.Fence(ctx) // data durable before the size word publishes it
	f.SetSize(ctx, 3)

	f2, err := p.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 0 {
		t.Fatalf("re-created size = %d, want 0", f2.Size())
	}
	buf := make([]byte, 3)
	f2.DirectRead(ctx, buf, 0)
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatalf("re-created content = %q, want zeros", buf)
	}
}
