package sqlite

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mgsp/internal/core"
	"mgsp/internal/ext4"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

func newBackingFS() vfs.FS {
	return ext4.New(nvm.New(128<<20, sim.ZeroCosts()), ext4.DAX)
}

func openTestDB(t *testing.T, mode JournalMode) (*DB, *sim.Ctx) {
	t.Helper()
	ctx := sim.NewCtx(0, 1)
	db, err := Open(ctx, newBackingFS(), "test.db", mode)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

func TestBasicCRUD(t *testing.T) {
	for _, mode := range []JournalMode{WAL, Off} {
		t.Run(mode.String(), func(t *testing.T) {
			db, ctx := openTestDB(t, mode)
			if err := db.CreateTable(ctx, "kv"); err != nil {
				t.Fatal(err)
			}
			err := db.Exec(ctx, func(tx *Txn) error {
				return tx.Insert(ctx, "kv", []byte("alpha"), []byte("1"))
			})
			if err != nil {
				t.Fatal(err)
			}
			db.Exec(ctx, func(tx *Txn) error {
				v, err := tx.Get(ctx, "kv", []byte("alpha"))
				if err != nil || string(v) != "1" {
					t.Fatalf("Get = %q, %v", v, err)
				}
				if v, _ := tx.Get(ctx, "kv", []byte("beta")); v != nil {
					t.Fatal("missing key returned a value")
				}
				return nil
			})
			db.Exec(ctx, func(tx *Txn) error {
				return tx.Insert(ctx, "kv", []byte("alpha"), []byte("2"))
			})
			db.Exec(ctx, func(tx *Txn) error {
				v, _ := tx.Get(ctx, "kv", []byte("alpha"))
				if string(v) != "2" {
					t.Fatalf("updated value = %q", v)
				}
				ok, err := tx.Delete(ctx, "kv", []byte("alpha"))
				if !ok || err != nil {
					t.Fatalf("Delete = %v, %v", ok, err)
				}
				return nil
			})
			db.Exec(ctx, func(tx *Txn) error {
				if v, _ := tx.Get(ctx, "kv", []byte("alpha")); v != nil {
					t.Fatal("deleted key still present")
				}
				return nil
			})
			if err := db.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManyInsertsSplitsAndScan(t *testing.T) {
	db, ctx := openTestDB(t, WAL)
	db.CreateTable(ctx, "t")
	const n = 5000
	perm := rand.New(rand.NewSource(5)).Perm(n)
	err := db.Exec(ctx, func(tx *Txn) error {
		for _, i := range perm {
			k := []byte(fmt.Sprintf("key-%06d", i))
			v := bytes.Repeat([]byte{byte(i)}, 50)
			if err := tx.Insert(ctx, "t", k, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full ordered scan.
	var got []string
	db.Exec(ctx, func(tx *Txn) error {
		return tx.Scan(ctx, "t", nil, nil, func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
	})
	if len(got) != n {
		t.Fatalf("scan returned %d keys, want %d", len(got), n)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan not in key order")
	}
	// Point reads across the tree.
	db.Exec(ctx, func(tx *Txn) error {
		for i := 0; i < n; i += 97 {
			k := []byte(fmt.Sprintf("key-%06d", i))
			v, err := tx.Get(ctx, "t", k)
			if err != nil || v == nil {
				t.Fatalf("Get(%s) = %v, %v", k, v, err)
			}
			if v[0] != byte(i) {
				t.Fatalf("Get(%s) wrong value", k)
			}
		}
		return nil
	})
}

func TestRangeScan(t *testing.T) {
	db, ctx := openTestDB(t, Off)
	db.CreateTable(ctx, "t")
	db.Exec(ctx, func(tx *Txn) error {
		for i := 0; i < 100; i++ {
			tx.Insert(ctx, "t", []byte(fmt.Sprintf("%03d", i)), []byte{byte(i)})
		}
		return nil
	})
	var got []string
	db.Exec(ctx, func(tx *Txn) error {
		return tx.Scan(ctx, "t", []byte("010"), []byte("020"), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
	})
	if len(got) != 10 || got[0] != "010" || got[9] != "019" {
		t.Fatalf("range scan = %v", got)
	}
}

func TestRollback(t *testing.T) {
	db, ctx := openTestDB(t, WAL)
	db.CreateTable(ctx, "t")
	db.Exec(ctx, func(tx *Txn) error {
		return tx.Insert(ctx, "t", []byte("stay"), []byte("old"))
	})
	tx := db.Begin(ctx)
	tx.Insert(ctx, "t", []byte("stay"), []byte("new"))
	tx.Insert(ctx, "t", []byte("gone"), []byte("x"))
	tx.Rollback(ctx)

	db.Exec(ctx, func(tx *Txn) error {
		v, _ := tx.Get(ctx, "t", []byte("stay"))
		if string(v) != "old" {
			t.Fatalf("rollback left %q", v)
		}
		if v, _ := tx.Get(ctx, "t", []byte("gone")); v != nil {
			t.Fatal("rolled-back insert visible")
		}
		return nil
	})
}

func TestRollbackAcrossSplits(t *testing.T) {
	db, ctx := openTestDB(t, WAL)
	db.CreateTable(ctx, "t")
	db.Exec(ctx, func(tx *Txn) error {
		for i := 0; i < 50; i++ {
			tx.Insert(ctx, "t", []byte(fmt.Sprintf("base-%04d", i)), bytes.Repeat([]byte{1}, 100))
		}
		return nil
	})
	tx := db.Begin(ctx)
	for i := 0; i < 2000; i++ { // force many splits
		tx.Insert(ctx, "t", []byte(fmt.Sprintf("tmp-%06d", i)), bytes.Repeat([]byte{2}, 100))
	}
	tx.Rollback(ctx)
	count := 0
	db.Exec(ctx, func(tx *Txn) error {
		return tx.Scan(ctx, "t", nil, nil, func(k, v []byte) bool {
			count++
			return true
		})
	})
	if count != 50 {
		t.Fatalf("after rollback: %d rows, want 50", count)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	for _, mode := range []JournalMode{WAL, Off} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := newBackingFS()
			ctx := sim.NewCtx(0, 1)
			db, err := Open(ctx, fs, "p.db", mode)
			if err != nil {
				t.Fatal(err)
			}
			db.CreateTable(ctx, "t")
			db.Exec(ctx, func(tx *Txn) error {
				for i := 0; i < 500; i++ {
					tx.Insert(ctx, "t", []byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
				}
				return nil
			})
			if err := db.Close(ctx); err != nil {
				t.Fatal(err)
			}
			db2, err := Open(ctx, fs, "p.db", mode)
			if err != nil {
				t.Fatal(err)
			}
			db2.Exec(ctx, func(tx *Txn) error {
				for i := 0; i < 500; i += 37 {
					v, _ := tx.Get(ctx, "t", []byte(fmt.Sprintf("k%05d", i)))
					if string(v) != fmt.Sprintf("v%d", i) {
						t.Fatalf("row %d lost across reopen: %q", i, v)
					}
				}
				return nil
			})
		})
	}
}

// TestWALCrashRecovery: committed transactions survive a crash (volatile
// state dropped); the uncommitted one disappears.
func TestWALCrashRecovery(t *testing.T) {
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := core.MustNew(dev, core.DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	db, err := Open(ctx, fs, "c.db", WAL)
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable(ctx, "t")
	db.Exec(ctx, func(tx *Txn) error {
		return tx.Insert(ctx, "t", []byte("committed"), []byte("yes"))
	})
	// Uncommitted: begin, insert, crash before commit.
	tx := db.Begin(ctx)
	tx.Insert(ctx, "t", []byte("uncommitted"), []byte("no"))

	// Crash: drop volatile device state and remount everything.
	dev.DropVolatile()
	fs2, err := core.Mount(ctx, dev, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(ctx, fs2, "c.db", WAL)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	db2.Exec(ctx, func(tx *Txn) error { //mgsp:lock-order-ok db2 is a fresh post-crash instance; the lock still held through the abandoned tx belongs to the dead pre-crash db
		v, _ := tx.Get(ctx, "t", []byte("committed"))
		if string(v) != "yes" {
			t.Fatalf("committed row lost: %q", v)
		}
		if v, _ := tx.Get(ctx, "t", []byte("uncommitted")); v != nil {
			t.Fatal("uncommitted row visible after crash")
		}
		return nil
	})
}

// TestWALCheckpoint: exceeding the frame threshold moves data into the
// database file and truncates the WAL.
func TestWALCheckpoint(t *testing.T) {
	db, ctx := openTestDB(t, WAL)
	db.CreateTable(ctx, "t")
	for i := 0; i < checkpointFrames+200; i++ {
		db.Exec(ctx, func(tx *Txn) error {
			return tx.Insert(ctx, "t", []byte(fmt.Sprintf("k%07d", i)), bytes.Repeat([]byte{byte(i)}, 64))
		})
	}
	if db.pager.frames >= checkpointFrames {
		t.Fatalf("WAL never checkpointed: %d frames", db.pager.frames)
	}
	// Data remains fully readable.
	db.Exec(ctx, func(tx *Txn) error {
		v, _ := tx.Get(ctx, "t", []byte("k0000000"))
		if v == nil {
			t.Fatal("row lost across checkpoint")
		}
		return nil
	})
}

// TestBTreeDifferentialProperty: the tree agrees with a map reference under
// random interleaved inserts/deletes/updates.
func TestBTreeDifferentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		db, ctx := openTestDB(t, Off)
		db.CreateTable(ctx, "t")
		rng := rand.New(rand.NewSource(seed))
		ref := make(map[string]string)
		db.Exec(ctx, func(tx *Txn) error {
			for op := 0; op < 400; op++ {
				k := fmt.Sprintf("k%03d", rng.Intn(200))
				switch rng.Intn(3) {
				case 0, 1:
					v := fmt.Sprintf("v%d", rng.Int63())
					tx.Insert(ctx, "t", []byte(k), []byte(v))
					ref[k] = v
				case 2:
					tx.Delete(ctx, "t", []byte(k))
					delete(ref, k)
				}
			}
			return nil
		})
		ok := true
		db.Exec(ctx, func(tx *Txn) error {
			count := 0
			tx.Scan(ctx, "t", nil, nil, func(k, v []byte) bool {
				count++
				if ref[string(k)] != string(v) {
					ok = false
				}
				return true
			})
			if count != len(ref) {
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	db, ctx := openTestDB(t, Off)
	db.CreateTable(ctx, "t")
	err := db.Exec(ctx, func(tx *Txn) error {
		return tx.Insert(ctx, "t", []byte("k"), make([]byte, MaxPayload+1))
	})
	if err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestMissingTable(t *testing.T) {
	db, ctx := openTestDB(t, Off)
	err := db.Exec(ctx, func(tx *Txn) error {
		return tx.Insert(ctx, "nope", []byte("k"), []byte("v"))
	})
	if err == nil {
		t.Fatal("insert into missing table succeeded")
	}
}
