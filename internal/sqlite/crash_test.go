package sqlite

import (
	"fmt"
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestWALCrashSweep sweeps fail points through a sequence of committed
// transactions on MGSP-backed WAL-mode SQLite and asserts ACID behaviour:
// after recovery the database contains a prefix of the committed
// transactions (each all-or-nothing) and never a torn row.
func TestWALCrashSweep(t *testing.T) {
	const rows = 40
	for fail := int64(50); ; fail += 211 {
		dev := nvm.New(128<<20, sim.ZeroCosts())
		fs := core.MustNew(dev, core.DefaultOptions())
		ctx := sim.NewCtx(0, fail)
		db, err := Open(ctx, fs, "acid.db", WAL)
		if err != nil {
			t.Fatal(err)
		}
		db.CreateTable(ctx, "t")

		committed := -1
		dev.ArmCrash(fail, fail)
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			for i := 0; i < rows; i++ {
				err := db.Exec(ctx, func(tx *Txn) error {
					// Multi-row transaction: all three rows must commit
					// together.
					for j := 0; j < 3; j++ {
						if err := tx.Insert(ctx, "t",
							[]byte(fmt.Sprintf("txn%03d-row%d", i, j)),
							[]byte(fmt.Sprintf("value-%03d-%d", i, j))); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return
				}
				committed = i
			}
		}()
		dev.DisarmCrash()
		if !dev.Crashed() {
			if fail == 50 {
				t.Fatal("sweep never crashed")
			}
			return
		}
		dev.Recover()

		rctx := sim.NewCtx(1, fail)
		fs2, err := core.Mount(rctx, dev, core.DefaultOptions())
		if err != nil {
			t.Fatalf("fail=%d: fs recovery: %v", fail, err)
		}
		db2, err := Open(rctx, fs2, "acid.db", WAL)
		if err != nil {
			t.Fatalf("fail=%d: db recovery: %v", fail, err)
		}
		db2.Exec(rctx, func(tx *Txn) error {
			// Every committed transaction is fully present.
			for i := 0; i <= committed; i++ {
				for j := 0; j < 3; j++ {
					v, err := tx.Get(rctx, "t", []byte(fmt.Sprintf("txn%03d-row%d", i, j)))
					if err != nil || v == nil {
						t.Fatalf("fail=%d: committed txn %d row %d lost (%v)", fail, i, j, err)
					}
					if string(v) != fmt.Sprintf("value-%03d-%d", i, j) {
						t.Fatalf("fail=%d: torn row: %q", fail, v)
					}
				}
			}
			// Transactions are atomic: a later txn is either fully present
			// or fully absent.
			for i := committed + 1; i < rows; i++ {
				present := 0
				for j := 0; j < 3; j++ {
					if v, _ := tx.Get(rctx, "t", []byte(fmt.Sprintf("txn%03d-row%d", i, j))); v != nil {
						present++
					}
				}
				if present != 0 && present != 3 {
					t.Fatalf("fail=%d: txn %d partially visible (%d/3 rows)", fail, i, present)
				}
			}
			return nil
		})
	}
}

// TestOffModeOnMGSPStillPageAtomic: with journal OFF the database relies
// entirely on the file system; MGSP's per-write atomicity keeps individual
// page writes untorn, so the B+tree structure survives page-granular
// crashes (the property the paper's §IV-D OFF-mode comparison leans on).
func TestOffModeOnMGSPPageAtomic(t *testing.T) {
	for fail := int64(100); fail < 2000; fail += 379 {
		dev := nvm.New(128<<20, sim.ZeroCosts())
		fs := core.MustNew(dev, core.DefaultOptions())
		ctx := sim.NewCtx(0, fail)
		db, err := Open(ctx, fs, "off.db", Off)
		if err != nil {
			t.Fatal(err)
		}
		db.CreateTable(ctx, "t")
		dev.ArmCrash(fail, fail)
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			for i := 0; i < 60; i++ {
				db.Exec(ctx, func(tx *Txn) error {
					return tx.Insert(ctx, "t", []byte(fmt.Sprintf("k%04d", i)), []byte("v"))
				})
			}
		}()
		dev.DisarmCrash()
		dev.Recover()
		fs2, err := core.Mount(sim.NewCtx(1, fail), dev, core.DefaultOptions())
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		rctx := sim.NewCtx(2, fail)
		db2, err := Open(rctx, fs2, "off.db", Off)
		if err != nil {
			// OFF mode makes no multi-page atomicity promise; an unlucky
			// crash between page writes of one commit can leave the tree
			// inconsistent — but the pages themselves must not be torn, so
			// the header must still parse. Opening may legitimately find a
			// half-updated tree; tolerate scan errors but not header
			// corruption.
			t.Fatalf("fail=%d: database header corrupted: %v", fail, err)
		}
		// A full scan must not panic (structure may be stale but not torn).
		db2.Exec(rctx, func(tx *Txn) error {
			return tx.Scan(rctx, "t", nil, nil, func(k, v []byte) bool { return true })
		})
	}
}
