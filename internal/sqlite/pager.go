// Package sqlite implements the embedded SQL-engine substrate the paper's
// real-application evaluation uses (§IV-D): a page-based storage engine with
// a B+tree access layer and the two journal modes the paper exercises —
//
//   - WAL: committed pages append to a write-ahead log with a commit frame
//     and an fsync, checkpointing back into the database once the WAL grows
//     past a threshold (SQLite's default behaviour and fsync pattern);
//   - Off (journal_mode=OFF): no journal; commits write pages in place and
//     fsync — the mode where the paper's file systems supply the only crash
//     consistency ("the logging mechanism of the database software itself
//     will no longer be required");
//   - Atomic (an extension realizing the paper's future work): no journal,
//     and each transaction's dirty pages commit through one multi-range
//     failure-atomic write (MGSP's WriteMulti).
//
// The engine issues exactly the I/O pattern a real SQLite workload would
// (page reads, WAL appends, fsyncs, checkpoints), which is what the Figure
// 11/12 comparisons depend on.
package sqlite

import (
	"encoding/binary"
	"fmt"

	"mgsp/internal/core"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// PageSize is the database page size (SQLite's default on the paper's
// systems).
const PageSize = 4096

// JournalMode selects the durability mechanism.
type JournalMode int

const (
	// WAL is write-ahead logging (SQLite's default mode in the paper).
	WAL JournalMode = iota
	// Off disables the journal entirely.
	Off
	// Atomic disables the journal and commits every transaction's dirty
	// pages with one multi-range failure-atomic file-system write — the
	// design the paper sketches as future work ("so that existing database
	// software can obtain corresponding performance gains without
	// modification"). It requires a file system whose handles implement
	// batch atomic writes (MGSP).
	Atomic
)

// String returns the mode name as SQLite pragma values spell it.
func (m JournalMode) String() string {
	switch m {
	case Off:
		return "OFF"
	case Atomic:
		return "ATOMIC"
	}
	return "WAL"
}

// batchWriter is the optional file capability Atomic mode needs (MGSP
// handles implement it; see the core package's WriteMulti).
type batchWriter interface {
	WriteMulti(ctx *sim.Ctx, updates []core.Update) error
}

const (
	frameHeader = 8 // pgid u32 | flags u32
	frameSize   = frameHeader + PageSize
	flagCommit  = 1

	// checkpointFrames triggers a WAL checkpoint (SQLite's default 1000).
	checkpointFrames = 1000

	magic = 0x4d475350_53514c00 // "MGSPSQL\0"

	hdrMagic       = 0
	hdrNPages      = 8
	hdrCatalogRoot = 12
)

// pager manages the page cache, the database file, and the WAL.
type pager struct {
	fs   vfs.FS
	db   vfs.File
	wal  vfs.File
	mode JournalMode

	cache map[uint32][]byte
	dirty map[uint32]bool
	undo  map[uint32][]byte // pre-transaction images for rollback

	nPages   uint32
	walIndex map[uint32]int64 // page -> offset of latest frame payload
	walSize  int64
	frames   int
}

func openPager(ctx *sim.Ctx, fs vfs.FS, name string, mode JournalMode) (*pager, error) {
	p := &pager{
		fs:       fs,
		mode:     mode,
		cache:    make(map[uint32][]byte),
		dirty:    make(map[uint32]bool),
		undo:     make(map[uint32][]byte),
		walIndex: make(map[uint32]int64),
	}
	db, err := fs.Open(ctx, name)
	fresh := false
	if err == vfs.ErrNotExist {
		db, err = fs.Create(ctx, name)
		fresh = true
	}
	if err != nil {
		return nil, err
	}
	p.db = db
	if mode == Atomic {
		if _, ok := db.(batchWriter); !ok {
			return nil, fmt.Errorf("sqlite: journal_mode=ATOMIC needs a file system with multi-range atomic writes")
		}
	}
	if mode == WAL {
		wal, err := fs.Open(ctx, name+"-wal")
		if err == vfs.ErrNotExist {
			wal, err = fs.Create(ctx, name+"-wal")
		}
		if err != nil {
			return nil, err
		}
		p.wal = wal
		if err := p.replayWAL(ctx); err != nil {
			return nil, err
		}
	}
	if fresh && p.db.Size() == 0 && len(p.walIndex) == 0 {
		// Initialize header page.
		h := p.allocRaw()
		binary.LittleEndian.PutUint64(h[hdrMagic:], magic)
		p.nPages = 1
		p.writeHeader()
		if err := p.commit(ctx); err != nil {
			return nil, err
		}
		return p, nil
	}
	h, err := p.get(ctx, 0)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(h[hdrMagic:]) != magic {
		return nil, fmt.Errorf("sqlite: %q is not a database", name)
	}
	p.nPages = binary.LittleEndian.Uint32(h[hdrNPages:])
	return p, nil
}

// replayWAL scans the log, indexing frames up to the last commit record —
// SQLite's crash recovery for WAL mode.
func (p *pager) replayWAL(ctx *sim.Ctx) error {
	size := p.wal.Size()
	var hdr [frameHeader]byte
	var off int64
	pending := make(map[uint32]int64)
	for off+frameSize <= size {
		if _, err := p.wal.ReadAt(ctx, hdr[:], off); err != nil {
			return err
		}
		pg := binary.LittleEndian.Uint32(hdr[0:])
		flags := binary.LittleEndian.Uint32(hdr[4:])
		pending[pg] = off + frameHeader
		if flags&flagCommit != 0 {
			for k, v := range pending {
				p.walIndex[k] = v
			}
			pending = make(map[uint32]int64)
			p.walSize = off + frameSize
			p.frames = int(p.walSize / frameSize)
		}
		off += frameSize
	}
	// Frames after the last commit belong to an uncommitted transaction:
	// truncate them away.
	if p.wal.Size() > p.walSize {
		if err := p.wal.Truncate(ctx, p.walSize); err != nil {
			return err
		}
	}
	return nil
}

func (p *pager) allocRaw() []byte {
	b := make([]byte, PageSize)
	p.cache[0] = b
	p.dirty[0] = true
	return b
}

func (p *pager) writeHeader() {
	h := p.cache[0]
	binary.LittleEndian.PutUint32(h[hdrNPages:], p.nPages)
	p.dirty[0] = true
}

// catalogRoot reads/writes the catalog's root page id in the header.
func (p *pager) catalogRoot(ctx *sim.Ctx) (uint32, error) {
	h, err := p.get(ctx, 0)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(h[hdrCatalogRoot:]), nil
}

func (p *pager) setCatalogRoot(ctx *sim.Ctx, root uint32) error {
	h, err := p.get(ctx, 0)
	if err != nil {
		return err
	}
	p.markDirty(0)
	binary.LittleEndian.PutUint32(h[hdrCatalogRoot:], root)
	return nil
}

// get returns the cached page, loading it from the WAL or database file.
func (p *pager) get(ctx *sim.Ctx, pg uint32) ([]byte, error) {
	if b, ok := p.cache[pg]; ok {
		return b, nil
	}
	b := make([]byte, PageSize)
	if off, ok := p.walIndex[pg]; ok && p.mode == WAL {
		if _, err := p.wal.ReadAt(ctx, b, off); err != nil {
			return nil, err
		}
	} else if int64(pg+1)*PageSize <= p.db.Size() {
		if _, err := p.db.ReadAt(ctx, b, int64(pg)*PageSize); err != nil {
			return nil, err
		}
	}
	p.cache[pg] = b
	return b, nil
}

// markDirty snapshots the page for rollback (first touch in a transaction)
// and queues it for the next commit.
func (p *pager) markDirty(pg uint32) {
	if !p.dirty[pg] {
		if _, saved := p.undo[pg]; !saved {
			cp := make([]byte, PageSize)
			copy(cp, p.cache[pg])
			p.undo[pg] = cp
		}
		p.dirty[pg] = true
	}
}

// alloc returns a fresh zero page.
func (p *pager) alloc(ctx *sim.Ctx) (uint32, []byte, error) {
	pg := p.nPages
	p.nPages++
	b := make([]byte, PageSize)
	p.cache[pg] = b
	// A fresh page has no pre-image worth keeping; rollback discards it by
	// restoring nPages via the header pre-image.
	p.undo[pg] = nil
	p.dirty[pg] = true
	p.writeHeader()
	p.markDirty(0)
	return pg, b, nil
}

// commit makes all dirty pages durable per the journal mode.
func (p *pager) commit(ctx *sim.Ctx) error {
	if len(p.dirty) == 0 {
		p.undo = make(map[uint32][]byte)
		return nil
	}
	p.writeHeader()
	pages := make([]uint32, 0, len(p.dirty))
	for pg := range p.dirty {
		pages = append(pages, pg)
	}
	switch p.mode {
	case WAL:
		var hdr [frameHeader]byte
		for i, pg := range pages {
			binary.LittleEndian.PutUint32(hdr[0:], pg)
			flags := uint32(0)
			if i == len(pages)-1 {
				flags = flagCommit
			}
			binary.LittleEndian.PutUint32(hdr[4:], flags)
			if _, err := p.wal.WriteAt(ctx, hdr[:], p.walSize); err != nil {
				return err
			}
			if _, err := p.wal.WriteAt(ctx, p.cache[pg], p.walSize+frameHeader); err != nil {
				return err
			}
			p.walIndex[pg] = p.walSize + frameHeader
			p.walSize += frameSize
			p.frames++
		}
		if err := p.wal.Fsync(ctx); err != nil {
			return err
		}
	case Off:
		for _, pg := range pages {
			if _, err := p.db.WriteAt(ctx, p.cache[pg], int64(pg)*PageSize); err != nil {
				return err
			}
		}
		if err := p.db.Fsync(ctx); err != nil {
			return err
		}
	case Atomic:
		updates := make([]core.Update, len(pages))
		for i, pg := range pages {
			updates[i] = core.Update{Off: int64(pg) * PageSize, Data: p.cache[pg]}
		}
		if err := p.db.(batchWriter).WriteMulti(ctx, updates); err != nil {
			return err
		}
	}
	p.dirty = make(map[uint32]bool)
	p.undo = make(map[uint32][]byte)
	if p.mode == WAL && p.frames >= checkpointFrames {
		return p.checkpoint(ctx)
	}
	return nil
}

// rollback restores every touched page to its pre-transaction image.
func (p *pager) rollback(ctx *sim.Ctx) {
	for pg, img := range p.undo {
		if img == nil {
			delete(p.cache, pg) // freshly allocated in this txn
			continue
		}
		copy(p.cache[pg], img)
	}
	// The header pre-image restores nPages.
	if h, ok := p.cache[0]; ok {
		p.nPages = binary.LittleEndian.Uint32(h[hdrNPages:])
		if p.nPages == 0 {
			p.nPages = 1
		}
	}
	p.undo = make(map[uint32][]byte)
	p.dirty = make(map[uint32]bool)
}

// checkpoint copies WAL contents back into the database file and resets the
// log (SQLite's passive checkpoint).
func (p *pager) checkpoint(ctx *sim.Ctx) error {
	for pg := range p.walIndex {
		b, err := p.get(ctx, pg)
		if err != nil {
			return err
		}
		if _, err := p.db.WriteAt(ctx, b, int64(pg)*PageSize); err != nil {
			return err
		}
	}
	if err := p.db.Fsync(ctx); err != nil {
		return err
	}
	if err := p.wal.Truncate(ctx, 0); err != nil {
		return err
	}
	if err := p.wal.Fsync(ctx); err != nil {
		return err
	}
	p.walIndex = make(map[uint32]int64)
	p.walSize = 0
	p.frames = 0
	return nil
}

// close flushes (committing any stray dirty pages) and closes the files.
func (p *pager) close(ctx *sim.Ctx) error {
	if err := p.commit(ctx); err != nil {
		return err
	}
	if p.mode == WAL {
		if err := p.checkpoint(ctx); err != nil {
			return err
		}
		if err := p.wal.Close(ctx); err != nil {
			return err
		}
	}
	return p.db.Close(ctx)
}
