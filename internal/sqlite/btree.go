package sqlite

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"mgsp/internal/sim"
)

// B+tree page layout (within one 4 KiB page):
//
//	 0      type: 1 = leaf, 2 = interior
//	 2..3   cell count (u16)
//	 4..5   content start (u16): cell payloads grow down from PageSize
//	 8..11  right pointer (u32): interior = rightmost child,
//	        leaf = next leaf in key order (0 = none)
//	12..    slot array: cell count x u16 payload offsets, sorted by key
//
// Leaf cell:     klen u16 | vlen u16 | key | value
// Interior cell: klen u16 | child u32 | key  — child holds keys <= key;
// the right pointer holds keys greater than the last cell's key.
const (
	pgType    = 0
	pgNCells  = 2
	pgContent = 4
	pgRight   = 8
	pgSlots   = 12

	typeLeaf     = 1
	typeInterior = 2

	// MaxPayload bounds key+value so any two cells fit a page.
	MaxPayload = 1024
)

// btree is a B+tree with a stable root page id (roots split in place so the
// catalog never needs updating).
type btree struct {
	p    *pager
	root uint32
}

// createTree initializes a fresh leaf root.
func createTree(ctx *sim.Ctx, p *pager) (uint32, error) {
	pg, b, err := p.alloc(ctx)
	if err != nil {
		return 0, err
	}
	initPage(b, typeLeaf)
	return pg, nil
}

func initPage(b []byte, typ byte) {
	for i := range b[:pgSlots] {
		b[i] = 0
	}
	b[pgType] = typ
	binary.LittleEndian.PutUint16(b[pgContent:], PageSize)
}

func nCells(b []byte) int { return int(binary.LittleEndian.Uint16(b[pgNCells:])) }
func contentStart(b []byte) int {
	return int(binary.LittleEndian.Uint16(b[pgContent:]))
}
func rightPtr(b []byte) uint32 { return binary.LittleEndian.Uint32(b[pgRight:]) }
func setRightPtr(b []byte, v uint32) {
	binary.LittleEndian.PutUint32(b[pgRight:], v)
}
func slotOff(b []byte, i int) int {
	return int(binary.LittleEndian.Uint16(b[pgSlots+2*i:]))
}

func cellKey(b []byte, i int) []byte {
	off := slotOff(b, i)
	klen := int(binary.LittleEndian.Uint16(b[off:]))
	if b[pgType] == typeLeaf {
		return b[off+4 : off+4+klen]
	}
	return b[off+6 : off+6+klen]
}

func leafCellValue(b []byte, i int) []byte {
	off := slotOff(b, i)
	klen := int(binary.LittleEndian.Uint16(b[off:]))
	vlen := int(binary.LittleEndian.Uint16(b[off+2:]))
	return b[off+4+klen : off+4+klen+vlen]
}

func interiorChild(b []byte, i int) uint32 {
	off := slotOff(b, i)
	return binary.LittleEndian.Uint32(b[off+2:])
}

func setInteriorChild(b []byte, i int, child uint32) {
	off := slotOff(b, i)
	binary.LittleEndian.PutUint32(b[off+2:], child)
}

// findSlot returns the first slot whose key >= key, and whether it is an
// exact match.
func findSlot(b []byte, key []byte) (int, bool) {
	lo, hi := 0, nCells(b)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(cellKey(b, mid), key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

func freeSpace(b []byte) int {
	return contentStart(b) - (pgSlots + 2*nCells(b))
}

// insertCell places payload (already encoded) into slot i.
func insertCell(b []byte, i int, payload []byte) {
	n := nCells(b)
	cs := contentStart(b) - len(payload)
	copy(b[cs:], payload)
	// Shift slots right.
	copy(b[pgSlots+2*(i+1):pgSlots+2*(n+1)], b[pgSlots+2*i:pgSlots+2*n])
	binary.LittleEndian.PutUint16(b[pgSlots+2*i:], uint16(cs))
	binary.LittleEndian.PutUint16(b[pgNCells:], uint16(n+1))
	binary.LittleEndian.PutUint16(b[pgContent:], uint16(cs))
}

// removeCell deletes slot i (payload space is reclaimed by compaction).
func removeCell(b []byte, i int) {
	n := nCells(b)
	copy(b[pgSlots+2*i:pgSlots+2*(n-1)], b[pgSlots+2*(i+1):pgSlots+2*n])
	binary.LittleEndian.PutUint16(b[pgNCells:], uint16(n-1))
}

// compact rewrites the page, squeezing out dead payload space.
func compact(b []byte) {
	n := nCells(b)
	tmp := make([]byte, PageSize)
	copy(tmp, b)
	initPage(b, tmp[pgType])
	setRightPtr(b, rightPtr(tmp))
	binary.LittleEndian.PutUint16(b[pgNCells:], uint16(n))
	cs := PageSize
	for i := 0; i < n; i++ {
		off := slotOff(tmp, i)
		var clen int
		klen := int(binary.LittleEndian.Uint16(tmp[off:]))
		if tmp[pgType] == typeLeaf {
			vlen := int(binary.LittleEndian.Uint16(tmp[off+2:]))
			clen = 4 + klen + vlen
		} else {
			clen = 6 + klen
		}
		cs -= clen
		copy(b[cs:], tmp[off:off+clen])
		binary.LittleEndian.PutUint16(b[pgSlots+2*i:], uint16(cs))
	}
	binary.LittleEndian.PutUint16(b[pgContent:], uint16(cs))
}

func encodeLeafCell(key, val []byte) []byte {
	c := make([]byte, 4+len(key)+len(val))
	binary.LittleEndian.PutUint16(c[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(c[2:], uint16(len(val)))
	copy(c[4:], key)
	copy(c[4+len(key):], val)
	return c
}

func encodeInteriorCell(key []byte, child uint32) []byte {
	c := make([]byte, 6+len(key))
	binary.LittleEndian.PutUint16(c[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(c[2:], child)
	copy(c[6:], key)
	return c
}

// liveBytes returns the payload bytes reachable via slots (for compaction
// decisions).
func liveBytes(b []byte) int {
	n := nCells(b)
	total := 0
	for i := 0; i < n; i++ {
		off := slotOff(b, i)
		klen := int(binary.LittleEndian.Uint16(b[off:]))
		if b[pgType] == typeLeaf {
			total += 4 + klen + int(binary.LittleEndian.Uint16(b[off+2:]))
		} else {
			total += 6 + klen
		}
	}
	return total
}

// Get returns the value for key, or nil if absent.
func (t *btree) Get(ctx *sim.Ctx, key []byte) ([]byte, error) {
	pg := t.root
	for {
		b, err := t.p.get(ctx, pg)
		if err != nil {
			return nil, err
		}
		ctx.Advance(t.p.fs.Device().Costs().IndexStep * 4)
		if b[pgType] == typeLeaf {
			if i, ok := findSlot(b, key); ok {
				v := leafCellValue(b, i)
				out := make([]byte, len(v))
				copy(out, v)
				return out, nil
			}
			return nil, nil
		}
		i, _ := findSlot(b, key)
		if i < nCells(b) {
			pg = interiorChild(b, i)
		} else {
			pg = rightPtr(b)
		}
	}
}

// Put inserts or replaces key -> val.
func (t *btree) Put(ctx *sim.Ctx, key, val []byte) error {
	if len(key)+len(val) > MaxPayload {
		return fmt.Errorf("sqlite: payload %d exceeds %d", len(key)+len(val), MaxPayload)
	}
	if len(key) == 0 {
		return fmt.Errorf("sqlite: empty key")
	}
	return t.insert(ctx, t.root, key, val)
}

// insert descends to the leaf, splitting full pages on the way back up.
func (t *btree) insert(ctx *sim.Ctx, pg uint32, key, val []byte) error {
	b, err := t.p.get(ctx, pg)
	if err != nil {
		return err
	}
	ctx.Advance(t.p.fs.Device().Costs().IndexStep * 4)
	if b[pgType] == typeLeaf {
		return t.leafPut(ctx, pg, key, val)
	}
	i, _ := findSlot(b, key)
	var child uint32
	if i < nCells(b) {
		child = interiorChild(b, i)
	} else {
		child = rightPtr(b)
	}
	if err := t.insert(ctx, child, key, val); err != nil {
		return err
	}
	return nil
}

// leafPut performs the actual leaf mutation, splitting upward as needed.
func (t *btree) leafPut(ctx *sim.Ctx, pg uint32, key, val []byte) error {
	b, err := t.p.get(ctx, pg)
	if err != nil {
		return err
	}
	t.p.markDirty(pg)
	if i, ok := findSlot(b, key); ok {
		removeCell(b, i)
	}
	cell := encodeLeafCell(key, val)
	if len(cell)+2 > freeSpace(b) {
		if liveBytes(b)+len(cell)+2 <= PageSize-pgSlots-2*(nCells(b)+1) {
			compact(b)
		} else {
			if err := t.splitAndRetry(ctx, key, val); err != nil {
				return err
			}
			return nil
		}
	}
	i, _ := findSlot(b, key)
	insertCell(b, i, cell)
	return nil
}

// splitAndRetry splits the leaf that key belongs to (walking from the root
// and splitting any full interior pages in place), then re-runs the insert.
// Proactive splitting keeps the recursion simple: by the time we reach the
// target, every page on the path has room for one more cell.
func (t *btree) splitAndRetry(ctx *sim.Ctx, key, val []byte) error {
	if err := t.splitPath(ctx, key); err != nil {
		return err
	}
	return t.insert(ctx, t.root, key, val)
}

// splitPath splits the leaf covering key, updating its parent (and the
// root in place when the root itself must split).
func (t *btree) splitPath(ctx *sim.Ctx, key []byte) error {
	// Descend remembering the path.
	type hop struct {
		pg   uint32
		slot int
	}
	var path []hop
	pg := t.root
	for {
		b, err := t.p.get(ctx, pg)
		if err != nil {
			return err
		}
		if b[pgType] == typeLeaf {
			break
		}
		i, _ := findSlot(b, key)
		path = append(path, hop{pg, i})
		if i < nCells(b) {
			pg = interiorChild(b, i)
		} else {
			pg = rightPtr(b)
		}
	}
	sep, newRight, err := t.splitPage(ctx, pg)
	if err != nil {
		return err
	}
	// Propagate the separator upward.
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		parent := path[lvl]
		pb, err := t.p.get(ctx, parent.pg)
		if err != nil {
			return err
		}
		t.p.markDirty(parent.pg)
		// The split child keeps keys <= sep; the new right page takes the
		// rest, inheriting the child's old position.
		if parent.slot < nCells(pb) {
			setInteriorChild(pb, parent.slot, newRight)
		} else {
			setRightPtr(pb, newRight)
		}
		cell := encodeInteriorCell(sep, pg)
		if len(cell)+2 > freeSpace(pb) && liveBytes(pb)+len(cell)+2 <= PageSize-pgSlots-2*(nCells(pb)+1) {
			compact(pb)
		}
		if len(cell)+2 <= freeSpace(pb) {
			i, _ := findSlot(pb, sep)
			insertCell(pb, i, cell)
			return nil
		}
		// Parent is full too: split it and keep propagating.
		sep2, right2, err := t.splitPage(ctx, parent.pg)
		if err != nil {
			return err
		}
		// Re-insert (sep, pg) into whichever half now covers it.
		target := parent.pg
		if bytes.Compare(sep, sep2) > 0 {
			target = right2
		}
		tb, err := t.p.get(ctx, target)
		if err != nil {
			return err
		}
		t.p.markDirty(target)
		i, _ := findSlot(tb, sep)
		insertCell(tb, i, cell)
		pg, sep, newRight = parent.pg, sep2, right2
	}
	// The root itself split: rebuild it in place as an interior page with
	// the two halves (stable root id).
	rb, err := t.p.get(ctx, t.root)
	if err != nil {
		return err
	}
	// pg == t.root here; its content was already halved by splitPage, so
	// move the left half to a fresh page and point the root at both.
	leftPg, lb, err := t.p.alloc(ctx)
	if err != nil {
		return err
	}
	copy(lb, rb)
	t.p.markDirty(leftPg)
	t.p.markDirty(t.root)
	initPage(rb, typeInterior)
	setRightPtr(rb, newRight)
	insertCell(rb, 0, encodeInteriorCell(sep, leftPg))
	return nil
}

// splitPage moves the upper half of pg's cells to a new page and returns
// the separator (max key remaining in pg) and the new page id.
func (t *btree) splitPage(ctx *sim.Ctx, pg uint32) ([]byte, uint32, error) {
	b, err := t.p.get(ctx, pg)
	if err != nil {
		return nil, 0, err
	}
	newPg, nb, err := t.p.alloc(ctx)
	if err != nil {
		return nil, 0, err
	}
	t.p.markDirty(pg)
	initPage(nb, b[pgType])

	n := nCells(b)
	half := n / 2
	// Copy cells [half, n) to the new page.
	for i := half; i < n; i++ {
		off := slotOff(b, i)
		var clen int
		klen := int(binary.LittleEndian.Uint16(b[off:]))
		if b[pgType] == typeLeaf {
			clen = 4 + klen + int(binary.LittleEndian.Uint16(b[off+2:]))
		} else {
			clen = 6 + klen
		}
		insertCell(nb, i-half, b[off:off+clen])
	}
	binary.LittleEndian.PutUint16(b[pgNCells:], uint16(half))
	var sep []byte
	if b[pgType] == typeLeaf {
		setRightPtr(nb, rightPtr(b)) // chain: new page follows pg
		setRightPtr(b, newPg)
		sep = append(sep, cellKey(b, half-1)...) // max key staying left
	} else {
		// Interior split: the last left cell's key is promoted as the
		// separator, and its child becomes pg's new right pointer.
		setRightPtr(nb, rightPtr(b))
		sep = append(sep, cellKey(b, half-1)...)
		setRightPtr(b, interiorChild(b, half-1))
		removeCell(b, half-1)
	}
	compact(b)
	return sep, newPg, nil
}

// Delete removes key if present, reporting whether it existed. Pages are
// not rebalanced on deletion (SQLite also leaves pages underfull until
// vacuum; fill ratios only matter for space, not correctness).
func (t *btree) Delete(ctx *sim.Ctx, key []byte) (bool, error) {
	pg := t.root
	for {
		b, err := t.p.get(ctx, pg)
		if err != nil {
			return false, err
		}
		ctx.Advance(t.p.fs.Device().Costs().IndexStep * 4)
		if b[pgType] == typeLeaf {
			i, ok := findSlot(b, key)
			if !ok {
				return false, nil
			}
			t.p.markDirty(pg)
			removeCell(b, i)
			return true, nil
		}
		i, _ := findSlot(b, key)
		if i < nCells(b) {
			pg = interiorChild(b, i)
		} else {
			pg = rightPtr(b)
		}
	}
}

// Scan calls fn for each key in [from, to) in order; fn returning false
// stops the scan. A nil `to` scans to the end.
func (t *btree) Scan(ctx *sim.Ctx, from, to []byte, fn func(k, v []byte) bool) error {
	pg := t.root
	for {
		b, err := t.p.get(ctx, pg)
		if err != nil {
			return err
		}
		if b[pgType] == typeLeaf {
			break
		}
		i, _ := findSlot(b, from)
		if i < nCells(b) {
			pg = interiorChild(b, i)
		} else {
			pg = rightPtr(b)
		}
	}
	for pg != 0 {
		b, err := t.p.get(ctx, pg)
		if err != nil {
			return err
		}
		i, _ := findSlot(b, from)
		for ; i < nCells(b); i++ {
			k := cellKey(b, i)
			if to != nil && bytes.Compare(k, to) >= 0 {
				return nil
			}
			if !fn(k, leafCellValue(b, i)) {
				return nil
			}
		}
		pg = rightPtr(b)
	}
	return nil
}
