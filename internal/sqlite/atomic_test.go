package sqlite

import (
	"fmt"
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func TestAtomicModeRequiresBatchWrites(t *testing.T) {
	ctx := sim.NewCtx(0, 1)
	if _, err := Open(ctx, newBackingFS(), "a.db", Atomic); err == nil {
		t.Fatal("ATOMIC mode accepted a file system without WriteMulti")
	}
}

func TestAtomicModeCRUD(t *testing.T) {
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs := core.MustNew(dev, core.DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	db, err := Open(ctx, fs, "a.db", Atomic)
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable(ctx, "t")
	for i := 0; i < 500; i++ {
		err := db.Exec(ctx, func(tx *Txn) error {
			return tx.Insert(ctx, "t", []byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	db.Exec(ctx, func(tx *Txn) error {
		v, _ := tx.Get(ctx, "t", []byte("k00042"))
		if string(v) != "v42" {
			t.Fatalf("got %q", v)
		}
		return nil
	})
	if err := db.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicModeCrashSweep: with journal_mode=ATOMIC every transaction rides
// one MGSP WriteMulti, so multi-page transactions are crash-atomic with NO
// database journal at all.
func TestAtomicModeCrashSweep(t *testing.T) {
	const rows = 30
	for fail := int64(60); ; fail += 173 {
		dev := nvm.New(128<<20, sim.ZeroCosts())
		fs := core.MustNew(dev, core.DefaultOptions())
		ctx := sim.NewCtx(0, fail)
		db, err := Open(ctx, fs, "a.db", Atomic)
		if err != nil {
			t.Fatal(err)
		}
		db.CreateTable(ctx, "t")

		committed := -1
		dev.ArmCrash(fail, fail)
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrCrashed {
					panic(r)
				}
			}()
			for i := 0; i < rows; i++ {
				err := db.Exec(ctx, func(tx *Txn) error {
					for j := 0; j < 3; j++ {
						if err := tx.Insert(ctx, "t",
							[]byte(fmt.Sprintf("txn%03d-row%d", i, j)),
							[]byte(fmt.Sprintf("value-%03d-%d", i, j))); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return
				}
				committed = i
			}
		}()
		dev.DisarmCrash()
		if !dev.Crashed() {
			if fail == 60 {
				t.Fatal("sweep never crashed")
			}
			return
		}
		dev.Recover()
		fs2, err := core.Mount(sim.NewCtx(1, fail), dev, core.DefaultOptions())
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		rctx := sim.NewCtx(2, fail)
		db2, err := Open(rctx, fs2, "a.db", Atomic)
		if err != nil {
			t.Fatalf("fail=%d: reopen: %v", fail, err)
		}
		db2.Exec(rctx, func(tx *Txn) error {
			for i := 0; i <= committed; i++ {
				for j := 0; j < 3; j++ {
					v, _ := tx.Get(rctx, "t", []byte(fmt.Sprintf("txn%03d-row%d", i, j)))
					if string(v) != fmt.Sprintf("value-%03d-%d", i, j) {
						t.Fatalf("fail=%d: committed txn %d row %d wrong: %q", fail, i, j, v)
					}
				}
			}
			for i := committed + 1; i < rows; i++ {
				present := 0
				for j := 0; j < 3; j++ {
					if v, _ := tx.Get(rctx, "t", []byte(fmt.Sprintf("txn%03d-row%d", i, j))); v != nil {
						present++
					}
				}
				if present != 0 && present != 3 {
					t.Fatalf("fail=%d: txn %d torn (%d/3 rows) despite ATOMIC mode", fail, i, present)
				}
			}
			return nil
		})
	}
}
