package sqlite

import (
	"bytes"
	"fmt"
	"testing"

	"mgsp/internal/sim"
)

func newTestTree(t *testing.T) (*btree, *pager, func()) {
	t.Helper()
	fs := newBackingFS()
	ctx := sim.NewCtx(0, 1)
	p, err := openPager(ctx, fs, "bt.db", Off)
	if err != nil {
		t.Fatal(err)
	}
	root, err := createTree(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	return &btree{p: p, root: root}, p, func() { p.close(ctx) }
}

func TestPageCellOperations(t *testing.T) {
	b := make([]byte, PageSize)
	initPage(b, typeLeaf)
	if nCells(b) != 0 || freeSpace(b) <= 0 {
		t.Fatal("fresh page malformed")
	}
	c1 := encodeLeafCell([]byte("bb"), []byte("v1"))
	insertCell(b, 0, c1)
	c0 := encodeLeafCell([]byte("aa"), []byte("v0"))
	insertCell(b, 0, c0) // before bb
	c2 := encodeLeafCell([]byte("cc"), []byte("v2"))
	insertCell(b, 2, c2)
	if nCells(b) != 3 {
		t.Fatalf("nCells = %d", nCells(b))
	}
	for i, want := range []string{"aa", "bb", "cc"} {
		if string(cellKey(b, i)) != want {
			t.Fatalf("cell %d key = %q, want %q", i, cellKey(b, i), want)
		}
	}
	if string(leafCellValue(b, 1)) != "v1" {
		t.Fatalf("value = %q", leafCellValue(b, 1))
	}
	if i, ok := findSlot(b, []byte("bb")); !ok || i != 1 {
		t.Fatalf("findSlot(bb) = %d, %v", i, ok)
	}
	if i, ok := findSlot(b, []byte("b")); ok || i != 1 {
		t.Fatalf("findSlot(b) = %d, %v (want insertion point 1)", i, ok)
	}
	removeCell(b, 1)
	if nCells(b) != 2 || string(cellKey(b, 1)) != "cc" {
		t.Fatal("removeCell broke ordering")
	}
}

func TestPageCompaction(t *testing.T) {
	b := make([]byte, PageSize)
	initPage(b, typeLeaf)
	// Fill, delete everything, and verify compaction reclaims the payload
	// space for new cells.
	var keys []string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key%04d", i)
		c := encodeLeafCell([]byte(k), bytes.Repeat([]byte{1}, 100))
		if len(c)+2 > freeSpace(b) {
			break
		}
		idx, _ := findSlot(b, []byte(k))
		insertCell(b, idx, c)
		keys = append(keys, k)
	}
	for range keys {
		removeCell(b, 0)
	}
	if liveBytes(b) != 0 {
		t.Fatalf("liveBytes = %d after deleting all", liveBytes(b))
	}
	if freeSpace(b) > 100 { // payload space still fragmented
		t.Fatal("expected fragmented page before compaction")
	}
	compact(b)
	if freeSpace(b) < PageSize-pgSlots-64 {
		t.Fatalf("compaction reclaimed only %d bytes", freeSpace(b))
	}
}

func TestSplitPageLeaf(t *testing.T) {
	bt, p, done := newTestTree(t)
	defer done()
	ctx := sim.NewCtx(0, 1)
	b, _ := p.get(ctx, bt.root)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i)
		c := encodeLeafCell([]byte(k), bytes.Repeat([]byte{2}, 60))
		idx, _ := findSlot(b, []byte(k))
		insertCell(b, idx, c)
	}
	sep, newPg, err := bt.splitPage(ctx, bt.root)
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := p.get(ctx, newPg)
	if nCells(b)+nCells(nb) != 30 {
		t.Fatalf("cells after split: %d + %d", nCells(b), nCells(nb))
	}
	// Separator = max key remaining left; right page's first key > sep.
	if !bytes.Equal(sep, cellKey(b, nCells(b)-1)) {
		t.Fatalf("sep %q != left max %q", sep, cellKey(b, nCells(b)-1))
	}
	if bytes.Compare(cellKey(nb, 0), sep) <= 0 {
		t.Fatal("right page starts at or below the separator")
	}
	// Leaf chain: left links to right.
	if rightPtr(b) != newPg {
		t.Fatal("leaf chain broken by split")
	}
}

func TestInteriorCellRoundTrip(t *testing.T) {
	b := make([]byte, PageSize)
	initPage(b, typeInterior)
	insertCell(b, 0, encodeInteriorCell([]byte("mm"), 42))
	setRightPtr(b, 99)
	if interiorChild(b, 0) != 42 || rightPtr(b) != 99 {
		t.Fatal("interior cell round trip failed")
	}
	setInteriorChild(b, 0, 43)
	if interiorChild(b, 0) != 43 {
		t.Fatal("setInteriorChild failed")
	}
}
