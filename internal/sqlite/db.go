package sqlite

import (
	"encoding/binary"
	"fmt"

	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// DB is an open database: a catalog of named B+tree tables over the pager.
// SQLite allows one writer at a time; DB serializes transactions with a
// database-level lock, exactly as the paper's single-connection workloads
// behave.
type DB struct {
	fs    vfs.FS
	name  string
	mode  JournalMode
	pager *pager

	mu     sim.Mutex
	tables map[string]*btree
	closed bool
}

// Open opens (or creates) the named database in the given journal mode.
// Opening also performs WAL crash recovery when needed.
func Open(ctx *sim.Ctx, fs vfs.FS, name string, mode JournalMode) (*DB, error) {
	p, err := openPager(ctx, fs, name, mode)
	if err != nil {
		return nil, err
	}
	db := &DB{fs: fs, name: name, mode: mode, pager: p, tables: make(map[string]*btree)}
	root, err := p.catalogRoot(ctx)
	if err != nil {
		return nil, err
	}
	if root == 0 {
		if root, err = createTree(ctx, p); err != nil {
			return nil, err
		}
		if err := p.setCatalogRoot(ctx, root); err != nil {
			return nil, err
		}
		if err := p.commit(ctx); err != nil {
			return nil, err
		}
	}
	cat := &btree{p: p, root: root}
	if err := cat.Scan(ctx, nil, nil, func(k, v []byte) bool {
		db.tables[string(k)] = &btree{p: p, root: binary.LittleEndian.Uint32(v)}
		return true
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// Mode returns the journal mode.
func (db *DB) Mode() JournalMode { return db.mode }

// Close flushes and closes the database.
func (db *DB) Close(ctx *sim.Ctx) error {
	db.mu.Lock(ctx)
	defer db.mu.Unlock(ctx)
	if db.closed {
		return fmt.Errorf("sqlite: already closed")
	}
	db.closed = true
	return db.pager.close(ctx)
}

// CreateTable creates an empty table (no-op if it exists).
func (db *DB) CreateTable(ctx *sim.Ctx, name string) error {
	db.mu.Lock(ctx)
	defer db.mu.Unlock(ctx)
	if _, ok := db.tables[name]; ok {
		return nil
	}
	root, err := createTree(ctx, db.pager)
	if err != nil {
		return err
	}
	catRoot, err := db.pager.catalogRoot(ctx)
	if err != nil {
		return err
	}
	cat := &btree{p: db.pager, root: catRoot}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], root)
	if err := cat.Put(ctx, []byte(name), v[:]); err != nil {
		return err
	}
	if err := db.pager.commit(ctx); err != nil {
		return err
	}
	db.tables[name] = &btree{p: db.pager, root: root}
	return nil
}

// Txn is an open transaction. It holds the database write lock until
// Commit or Rollback.
type Txn struct {
	db   *DB
	done bool
}

// Begin starts a transaction.
func (db *DB) Begin(ctx *sim.Ctx) *Txn {
	db.mu.Lock(ctx)
	return &Txn{db: db}
}

// Commit makes the transaction durable per the journal mode.
func (t *Txn) Commit(ctx *sim.Ctx) error {
	if t.done {
		return fmt.Errorf("sqlite: transaction finished")
	}
	t.done = true
	err := t.db.pager.commit(ctx)
	t.db.mu.Unlock(ctx)
	return err
}

// Rollback restores every page touched by the transaction.
func (t *Txn) Rollback(ctx *sim.Ctx) error {
	if t.done {
		return fmt.Errorf("sqlite: transaction finished")
	}
	t.done = true
	t.db.pager.rollback(ctx)
	t.db.mu.Unlock(ctx)
	return nil
}

func (t *Txn) table(name string) (*btree, error) {
	bt := t.db.tables[name]
	if bt == nil {
		return nil, fmt.Errorf("sqlite: no such table %q", name)
	}
	return bt, nil
}

// Insert adds or replaces a row.
func (t *Txn) Insert(ctx *sim.Ctx, table string, key, val []byte) error {
	bt, err := t.table(table)
	if err != nil {
		return err
	}
	return bt.Put(ctx, key, val)
}

// Get reads a row (nil if absent).
func (t *Txn) Get(ctx *sim.Ctx, table string, key []byte) ([]byte, error) {
	bt, err := t.table(table)
	if err != nil {
		return nil, err
	}
	return bt.Get(ctx, key)
}

// Delete removes a row, reporting whether it existed.
func (t *Txn) Delete(ctx *sim.Ctx, table string, key []byte) (bool, error) {
	bt, err := t.table(table)
	if err != nil {
		return false, err
	}
	return bt.Delete(ctx, key)
}

// Scan iterates rows with keys in [from, to); fn returning false stops.
func (t *Txn) Scan(ctx *sim.Ctx, table string, from, to []byte, fn func(k, v []byte) bool) error {
	bt, err := t.table(table)
	if err != nil {
		return err
	}
	return bt.Scan(ctx, from, to, fn)
}

// Exec runs fn inside a transaction, committing on nil and rolling back on
// error.
func (db *DB) Exec(ctx *sim.Ctx, fn func(*Txn) error) error {
	t := db.Begin(ctx)
	if err := fn(t); err != nil {
		t.Rollback(ctx)
		return err
	}
	return t.Commit(ctx)
}
