// Package libnvmmio simulates Libnvmmio (Choi et al., USENIX ATC'20), the
// user-space failure-atomic MMIO library the paper uses as its closest
// baseline. The behaviours the paper's evaluation depends on are modeled:
//
//   - user-space data plane over a DAX mapping (no syscalls on read/write);
//   - per-4KiB-block logs indexed by a per-file radix, holding *differential*
//     data at 64-byte-unit granularity, so fine writes log only the delta;
//   - hybrid logging: write-dominant blocks use redo logs (reads must merge
//     log and file), read-dominant blocks switch to undo logs (old data is
//     copied to the log, the new data is written in place);
//   - fsync commits the epoch and checkpoints every dirty block of the file
//     back to its home location — the double write that frequent syncs expose
//     (Figure 7, Table II), on the critical path because the foreground
//     thread must do it (concurrent fsyncs serialize on the checkpoint lock,
//     the foreground/background conflict of Figures 9 and 10);
//   - crash consistency at fsync granularity (SyncAtomic): committed epochs
//     are replayed at recovery, uncommitted redo logs are discarded, and
//     uncommitted undo logs are rolled back.
//
// The real library's background checkpoint threads are modeled by the
// log-pressure drain (see logPressure): with no syncs the logs simply absorb
// writes (write amplification ~1, Table II row "Libnvmmio-wo-sync").
package libnvmmio

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mgsp/internal/nvm"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

const (
	blockSize = 4096
	unitSize  = 64
	unitsPer  = blockSize / unitSize // 64 units -> one uint64 mask

	headerSize = 64
	// Header word offsets within a block header.
	hdrTag   = 0  // inuse(1) | fileSlot(15) | pgidx(48)
	hdrMask  = 8  // valid 64-byte units in the log block
	hdrEpoch = 16 // undoFlag(1) | epoch(63)

	undoFlag = uint64(1) << 63

	// logPressure bounds outstanding dirty blocks per file; beyond it the
	// writer drains (checkpoints) inline, a backstop against log-space
	// exhaustion. It is sized so that sync-free runs absorb writes in the
	// log (write amplification ~1, as the paper's Table II measures for
	// Libnvmmio without sync) — the real library's background threads drain
	// lazily enough that a 10-second run never writes back.
	logPressure = 1 << 18
)

// FS is a mounted Libnvmmio instance.
type FS struct {
	prov  *pmfile.Provider
	dev   *nvm.Device
	costs *sim.Costs

	hdrBase   int64 // header array: one 64 B slot per data block
	epochBase int64 // per-file-slot committed epoch words
	dataStart int64

	mu    sim.Mutex
	files map[string]*file
}

// MetaBytes returns the metadata reservation Libnvmmio needs on a device of
// the given size (block headers + per-file epochs).
func MetaBytes(devSize int64) int64 {
	return devSize/blockSize*headerSize + pmfile.PageSize
}

// New formats a Libnvmmio file system over the device.
func New(dev *nvm.Device) *FS {
	prov := pmfile.New(dev, MetaBytes(dev.Size()))
	return mkFS(prov)
}

func mkFS(prov *pmfile.Provider) *FS {
	metaStart, _ := prov.MetaRegion()
	return &FS{
		prov:      prov,
		dev:       prov.Device(),
		costs:     prov.Costs(),
		epochBase: metaStart,
		hdrBase:   metaStart + pmfile.PageSize,
		dataStart: prov.DataStart(),
		files:     make(map[string]*file),
	}
}

// Name implements vfs.FS.
func (fs *FS) Name() string { return "Libnvmmio" }

// Device implements vfs.FS.
func (fs *FS) Device() *nvm.Device { return fs.dev }

// Consistency implements vfs.Guarantees.
func (fs *FS) Consistency() vfs.ConsistencyLevel { return vfs.SyncAtomic }

func (fs *FS) headerOff(blockOff int64) int64 {
	return fs.hdrBase + (blockOff-fs.dataStart)/blockSize*headerSize
}

func (fs *FS) epochOff(slot int) int64 { return fs.epochBase + int64(slot)*8 }

// blockLog is the per-4K-block log state.
type blockLog struct {
	lock   sim.RWMutex
	logOff int64
	pgidx  int64
	mask   uint64 // volatile mirror of the persistent mask
	undo   bool
	epoch  uint64
	reads  atomic.Int64
	writes atomic.Int64
}

type file struct {
	fs *FS
	pf *pmfile.File

	idxLock sim.RWMutex // radix index lock
	index   map[int64]*blockLog

	ckptMu sim.Mutex // serializes checkpoints (fg/bg conflict point)

	dirtyMu sync.Mutex // guards the dirty set only (never held with locks)
	dirty   map[int64]*blockLog

	sizeMu sim.Mutex    // serializes size extension
	size   atomic.Int64 // volatile mirror of the persisted size

	epoch atomic.Uint64 // current (uncommitted) epoch

	refs    int
	removed bool
}

// ---- vfs.FS ----

// Create implements vfs.FS.
func (fs *FS) Create(ctx *sim.Ctx, name string) (vfs.File, error) {
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	if f := fs.files[name]; f != nil {
		// Deferred unlocks here and below: discarding logs issues media ops,
		// and a crash-injection panic there must not leak the lock.
		func() {
			f.ckptMu.Lock(ctx)
			defer f.ckptMu.Unlock(ctx)
			f.discardLogsLocked(ctx)
		}()
		if _, err := fs.prov.Create(ctx, name); err != nil { // truncates
			return nil, err
		}
		f.size.Store(0)
		f.refs++
		return &handle{f: f}, nil
	}
	pf, err := fs.prov.Create(ctx, name)
	if err != nil {
		return nil, err
	}
	f := &file{
		fs: fs, pf: pf,
		index: make(map[int64]*blockLog),
		dirty: make(map[int64]*blockLog),
	}
	f.epoch.Store(1)
	fs.files[name] = f
	f.refs++
	return &handle{f: f}, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(ctx *sim.Ctx, name string) (vfs.File, error) {
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	f := fs.files[name]
	if f == nil {
		return nil, vfs.ErrNotExist
	}
	ctx.Advance(fs.costs.Syscall + fs.costs.VFSOp) // open + mmap setup
	f.refs++
	return &handle{f: f}, nil
}

// Remove implements vfs.FS.
func (fs *FS) Remove(ctx *sim.Ctx, name string) error {
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	f := fs.files[name]
	if f == nil {
		return vfs.ErrNotExist
	}
	delete(fs.files, name)
	f.removed = true
	if f.refs == 0 {
		func() {
			f.ckptMu.Lock(ctx)
			defer f.ckptMu.Unlock(ctx)
			f.discardLogsLocked(ctx)
		}()
	}
	return fs.prov.Remove(ctx, name)
}

// discardLogsLocked drops every log block without applying it.
func (f *file) discardLogsLocked(ctx *sim.Ctx) {
	for pg, bl := range f.index {
		// Deferred unlock: retiring the block header is a media op, and a
		// crash-injection panic there must not leak the per-block lock.
		func() {
			bl.lock.Lock(ctx)
			defer bl.lock.Unlock(ctx)
			if bl.mask != 0 {
				f.fs.dev.Store8(ctx, f.fs.headerOff(bl.logOff)+hdrMask, 0)
				bl.mask = 0
			}
			f.fs.dev.Store8(ctx, f.fs.headerOff(bl.logOff)+hdrTag, 0)
			f.fs.prov.Alloc().Free(ctx, bl.logOff, 1)
		}()
		delete(f.index, pg)
	}
	f.dirtyMu.Lock()
	f.dirty = make(map[int64]*blockLog)
	f.dirtyMu.Unlock()
}

// lookup returns the block log for page pg, creating it if create is set.
func (f *file) lookup(ctx *sim.Ctx, pg int64, create bool) (*blockLog, error) {
	ctx.Advance(f.fs.costs.IndexStep * 4) // radix descent
	f.idxLock.RLock(ctx)
	bl := f.index[pg]
	f.idxLock.RUnlock(ctx)
	if bl != nil || !create {
		return bl, nil
	}
	f.idxLock.Lock(ctx)
	defer f.idxLock.Unlock(ctx)
	if bl = f.index[pg]; bl != nil {
		return bl, nil
	}
	logOff, err := f.fs.prov.Alloc().Alloc(ctx)
	if err != nil {
		return nil, err
	}
	bl = &blockLog{logOff: logOff, pgidx: pg, epoch: f.epoch.Load()}
	hdr := f.fs.headerOff(logOff)
	tag := uint64(1)<<62 | uint64(f.pf.Slot())<<48 | uint64(pg)
	f.fs.dev.Store8(ctx, hdr+hdrMask, 0)
	f.fs.dev.Store8(ctx, hdr+hdrEpoch, bl.epoch)
	f.fs.dev.Store8(ctx, hdr+hdrTag, tag)
	f.index[pg] = bl
	return bl, nil
}

// handle is an open descriptor.
type handle struct {
	f      *file
	closed bool
}

var _ vfs.File = (*handle)(nil)

// Size implements vfs.File.
func (h *handle) Size() int64 { return h.f.size.Load() }

// Close implements vfs.File. Closing the last handle checkpoints the logs
// (Libnvmmio flushes on munmap/close).
func (h *handle) Close(ctx *sim.Ctx) error {
	if h.closed {
		return vfs.ErrClosed
	}
	h.closed = true
	fs := h.f.fs
	ctx.Advance(fs.costs.Syscall)
	fs.mu.Lock(ctx)
	defer fs.mu.Unlock(ctx)
	h.f.refs--
	if h.f.refs == 0 {
		h.f.checkpoint(ctx, true)
	}
	return nil
}

// Truncate implements vfs.File.
func (h *handle) Truncate(ctx *sim.Ctx, size int64) error {
	if h.closed {
		return vfs.ErrClosed
	}
	f := h.f
	ctx.Advance(f.fs.costs.Syscall + f.fs.costs.VFSOp) // ftruncate
	// Commit outstanding logs first so in-place state is authoritative,
	// then adjust size; growth reads as zeros via unwritten-extent tracking
	// plus explicit zeroing of the partial tail block.
	f.checkpoint(ctx, true)
	f.sizeMu.Lock(ctx)
	defer f.sizeMu.Unlock(ctx)
	old := f.size.Load()
	if size < old {
		// Zero the stale tail of the block containing the new EOF and
		// hole-punch every block wholly beyond it, so a later extension
		// exposes no old bytes.
		if in := size % blockSize; in != 0 {
			end := size - in + blockSize
			if end > old {
				end = old
			}
			if end > size {
				if err := f.pf.EnsureCapacity(ctx, end); err != nil {
					return err
				}
				f.pf.DirectWrite(ctx, make([]byte, end-size), size)
				// Zeros durable before the size word commits the shrink:
				// otherwise a crash recovers the new size over stale tail
				// bytes that a later extension re-exposes.
				f.pf.Fence(ctx)
			}
		}
		f.pf.MarkUnwritten((size + blockSize - 1) / blockSize)
	}
	f.size.Store(size)
	f.pf.SetSize(ctx, size)
	return nil
}

func (h *handle) guard() error {
	if h.closed {
		return vfs.ErrClosed
	}
	return nil
}

// WriteAt implements vfs.File.
func (h *handle) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if err := h.guard(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("libnvmmio: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	f := h.f
	end := off + int64(len(p))
	if err := f.pf.EnsureCapacity(ctx, end); err != nil {
		return 0, err
	}

	for cur := off; cur < end; {
		pg := cur / blockSize
		hi := (pg + 1) * blockSize
		if hi > end {
			hi = end
		}
		if err := f.writeBlock(ctx, p[cur-off:hi-off], pg, cur); err != nil {
			return int(cur - off), err
		}
		cur = hi
	}

	// Deferred unlock: SetSize persists the size word (a media op), and a
	// crash-injection panic there must not leak sizeMu.
	if end > f.size.Load() {
		func() {
			f.sizeMu.Lock(ctx)
			defer f.sizeMu.Unlock(ctx)
			if end > f.size.Load() {
				f.size.Store(end)
				f.pf.SetSize(ctx, end)
			}
		}()
	}

	f.maybeDrain(ctx)
	return len(p), nil
}

// writeBlock logs (or writes through, for undo blocks) the bytes p landing
// in block pg starting at absolute offset off.
func (f *file) writeBlock(ctx *sim.Ctx, p []byte, pg, off int64) error {
	bl, err := f.lookup(ctx, pg, true)
	if err != nil {
		return err
	}
	bl.lock.Lock(ctx)
	defer bl.lock.Unlock(ctx)
	bl.writes.Add(1)

	// Hybrid policy: choose per block while its log is empty.
	if bl.mask == 0 {
		bl.undo = bl.reads.Load() > bl.writes.Load()
	}

	blockStart := pg * blockSize
	u0 := (off - blockStart) / unitSize
	u1 := (off + int64(len(p)) - 1 - blockStart) / unitSize
	var rangeMask uint64
	for u := u0; u <= u1; u++ {
		rangeMask |= 1 << uint(u)
	}

	hdr := f.fs.headerOff(bl.logOff)
	if bl.undo {
		// Undo: preserve the units about to be overwritten (once per
		// epoch), then write the new data in place.
		toSave := rangeMask &^ bl.mask
		if toSave != 0 {
			f.copyUnits(ctx, toSave, f.pf, blockStart, bl.logOff, true)
			bl.mask |= toSave
			f.fs.dev.Store8(ctx, hdr+hdrMask, bl.mask)
		}
		f.stampEpoch(ctx, bl, hdr, true)
		f.fs.dev.Fence(ctx)
		f.pf.DirectWrite(ctx, p, off)
		f.fs.dev.Fence(ctx)
	} else {
		// Redo: differential log write. Boundary units not fully covered
		// must be completed from the log (if present) or the file so the
		// log holds whole valid units.
		f.mergeIntoLog(ctx, bl, p, off, u0, u1, rangeMask)
		bl.mask |= rangeMask
		f.fs.dev.Store8(ctx, hdr+hdrMask, bl.mask)
		f.stampEpoch(ctx, bl, hdr, false)
		f.fs.dev.Fence(ctx)
	}

	f.markDirty(ctx, bl)
	return nil
}

func (f *file) stampEpoch(ctx *sim.Ctx, bl *blockLog, hdr int64, undo bool) {
	e := f.epoch.Load()
	w := e
	if undo {
		w |= undoFlag
	}
	if bl.epoch != e || (bl.undo != undo) {
		f.fs.dev.Store8(ctx, hdr+hdrEpoch, w)
		bl.epoch = e
	}
}

// mergeIntoLog writes p into the redo log block, completing partially
// covered boundary units from the existing log or the file.
func (f *file) mergeIntoLog(ctx *sim.Ctx, bl *blockLog, p []byte, off, u0, u1 int64, rangeMask uint64) {
	blockStart := bl.pgidx * blockSize
	lo := u0 * unitSize // block-relative
	hi := (u1 + 1) * unitSize
	buf := make([]byte, hi-lo)

	fileEnd := f.size.Load() // bytes beyond EOF read as zero
	fill := func(u int64) {  // complete one boundary unit into buf
		uStart := u * unitSize
		dst := buf[uStart-lo : uStart-lo+unitSize]
		if bl.mask&(1<<uint(u)) != 0 {
			f.fs.dev.Read(ctx, dst, bl.logOff+uStart)
		} else if abs := blockStart + uStart; abs < fileEnd {
			f.pf.DirectRead(ctx, dst, abs)
		} // else: zeros
	}
	writeLo := off - blockStart
	writeHi := writeLo + int64(len(p))
	if writeLo > lo {
		fill(u0)
	}
	if writeHi < hi && u1 != u0 {
		fill(u1)
	} else if writeHi < hi && writeLo <= lo {
		fill(u1) // single unit, partially covered at the tail
	}
	copy(buf[writeLo-lo:], p)
	f.fs.dev.WriteNT(ctx, buf, bl.logOff+lo)
	// The log units must be durable before the caller's mask/epoch store
	// marks them valid — recovery replays any unit the mask covers.
	f.fs.dev.Fence(ctx)
}

// copyUnits copies masked units between the file block and the log block.
// fromFile selects direction: file->log (undo save) or log->file
// (checkpoint apply / rollback).
func (f *file) copyUnits(ctx *sim.Ctx, mask uint64, pf *pmfile.File, blockStart, logOff int64, fromFile bool) {
	fileEnd := pf.Size()
	for u := int64(0); u < unitsPer; u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		// Coalesce the run of set bits for one transfer.
		run := u
		for run+1 < unitsPer && mask&(1<<uint(run+1)) != 0 {
			run++
		}
		n := (run - u + 1) * unitSize
		buf := make([]byte, n)
		if fromFile {
			if abs := blockStart + u*unitSize; abs < fileEnd {
				pf.DirectRead(ctx, buf, abs)
			}
			f.fs.dev.WriteNT(ctx, buf, logOff+u*unitSize)
		} else {
			f.fs.dev.Read(ctx, buf, logOff+u*unitSize)
			pf.DirectWrite(ctx, buf, blockStart+u*unitSize)
		}
		u = run
	}
	// Copied units durable before the caller commits: the undo save must be
	// on media before the mask claims it, and a checkpoint apply must be on
	// media before the mask clear discards the log it came from.
	f.fs.dev.Fence(ctx)
}

func (f *file) markDirty(ctx *sim.Ctx, bl *blockLog) {
	ctx.Advance(f.fs.costs.Atomic)
	f.dirtyMu.Lock()
	f.dirty[bl.pgidx] = bl
	f.dirtyMu.Unlock()
}

// maybeDrain checkpoints inline when the log grows past the pressure limit —
// the stand-in for background checkpoint threads.
func (f *file) maybeDrain(ctx *sim.Ctx) {
	f.dirtyMu.Lock()
	over := len(f.dirty) > logPressure
	f.dirtyMu.Unlock()
	if over {
		f.checkpoint(ctx, false)
	}
}

// ReadAt implements vfs.File.
func (h *handle) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if err := h.guard(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("libnvmmio: negative offset %d", off)
	}
	f := h.f
	size := f.size.Load()
	if off >= size {
		return 0, nil
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	for cur := off; cur < off+int64(n); {
		pg := cur / blockSize
		hi := (pg + 1) * blockSize
		if hi > off+int64(n) {
			hi = off + int64(n)
		}
		f.readBlock(ctx, p[cur-off:hi-off], pg, cur)
		cur = hi
	}
	return n, nil
}

func (f *file) readBlock(ctx *sim.Ctx, p []byte, pg, off int64) {
	bl, _ := f.lookup(ctx, pg, false)
	if bl == nil {
		f.pf.DirectRead(ctx, p, off)
		return
	}
	bl.reads.Add(1)
	bl.lock.RLock(ctx)
	defer bl.lock.RUnlock(ctx)
	if bl.mask == 0 || bl.undo {
		// Undo blocks keep the newest data in place.
		f.pf.DirectRead(ctx, p, off)
		return
	}
	// Redo merge: serve each unit from the log when logged, else the file.
	blockStart := pg * blockSize
	for i := 0; i < len(p); {
		abs := off + int64(i)
		u := (abs - blockStart) / unitSize
		chunk := int(unitSize - (abs-blockStart)%unitSize)
		if chunk > len(p)-i {
			chunk = len(p) - i
		}
		inLog := bl.mask&(1<<uint(u)) != 0
		// Extend the chunk across units with the same source.
		for {
			nu := (abs + int64(chunk) - blockStart)
			if nu >= blockSize || i+chunk >= len(p) {
				break
			}
			next := nu / unitSize
			if (bl.mask&(1<<uint(next)) != 0) != inLog {
				break
			}
			ext := unitSize
			if ext > len(p)-i-chunk {
				ext = len(p) - i - chunk
			}
			chunk += ext
		}
		if inLog {
			f.fs.dev.Read(ctx, p[i:i+chunk], bl.logOff+(abs-blockStart))
		} else {
			f.pf.DirectRead(ctx, p[i:i+chunk], abs)
		}
		i += chunk
	}
}

// Fsync implements vfs.File: commit the epoch and checkpoint (Libnvmmio's
// sync-triggered write-back, the double write on the critical path).
func (h *handle) Fsync(ctx *sim.Ctx) error {
	if err := h.guard(); err != nil {
		return err
	}
	h.f.checkpoint(ctx, true)
	return nil
}

// checkpoint publishes the current epoch as committed, then applies every
// dirty redo log to the file and discards undo logs.
func (f *file) checkpoint(ctx *sim.Ctx, commit bool) {
	f.ckptMu.Lock(ctx)
	defer f.ckptMu.Unlock(ctx)
	if commit {
		f.fs.dev.Store8(ctx, f.fs.epochOff(f.pf.Slot()), f.epoch.Load())
	}
	// Snapshot and clear the dirty set without holding block locks (a
	// writer holding a block lock may be adding to the set concurrently).
	f.dirtyMu.Lock()
	snapshot := f.dirty
	f.dirty = make(map[int64]*blockLog, len(snapshot))
	f.dirtyMu.Unlock()
	if len(snapshot) == 0 {
		if commit {
			f.epoch.Add(1)
		}
		return
	}
	for pg, bl := range snapshot {
		// Deferred unlock: applying/clearing the block log issues media ops,
		// and a crash-injection panic there must not leak the per-block lock.
		func() {
			bl.lock.Lock(ctx)
			defer bl.lock.Unlock(ctx)
			if bl.mask != 0 {
				if !bl.undo {
					f.copyUnits(ctx, bl.mask, f.pf, pg*blockSize, bl.logOff, false)
				}
				bl.mask = 0
				f.fs.dev.Store8(ctx, f.fs.headerOff(bl.logOff)+hdrMask, 0)
			}
		}()
	}
	f.fs.dev.Fence(ctx)
	if commit {
		f.epoch.Add(1)
	}
}
