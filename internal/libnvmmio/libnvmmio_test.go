package libnvmmio

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mgsp/internal/fstest"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

func newTestFS() (*FS, *sim.Ctx) {
	return New(nvm.New(96<<20, sim.ZeroCosts())), sim.NewCtx(0, 1)
}

func TestBattery(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FS {
		return New(nvm.New(96<<20, sim.ZeroCosts()))
	})
}

// TestRedoLoggingDefersHomeWrite: without fsync, data lives in the log;
// write amplification stays near 1 (Table II, Libnvmmio-wo-sync).
func TestRedoLoggingDefersHomeWrite(t *testing.T) {
	fs, ctx := newTestFS()
	f, _ := fs.Create(ctx, "f")
	dev := fs.Device()
	f.WriteAt(ctx, make([]byte, 4096), 0) // settle capacity/first block
	dev.ResetStats()

	const ops = 100
	for i := 0; i < ops; i++ {
		f.WriteAt(ctx, make([]byte, 4096), 0)
	}
	user := int64(ops * 4096)
	media := dev.Stats().MediaWriteBytes.Load()
	wa := float64(media) / float64(user)
	if wa > 1.1 {
		t.Fatalf("no-sync WA = %.3f, want ~1 (log-only writes)", wa)
	}
}

// TestFsyncCheckpointDoublesWrites: fsync per op forces the log write plus
// the checkpoint write-back (Table II, WA ~= 2).
func TestFsyncCheckpointDoublesWrites(t *testing.T) {
	fs, ctx := newTestFS()
	f, _ := fs.Create(ctx, "f")
	dev := fs.Device()
	f.WriteAt(ctx, make([]byte, 4096), 0)
	f.Fsync(ctx)
	dev.ResetStats()

	const ops = 100
	for i := 0; i < ops; i++ {
		f.WriteAt(ctx, make([]byte, 4096), 0)
		f.Fsync(ctx)
	}
	user := int64(ops * 4096)
	media := dev.Stats().MediaWriteBytes.Load()
	wa := float64(media) / float64(user)
	if wa < 1.8 || wa > 2.3 {
		t.Fatalf("sync-every-op WA = %.3f, want ~2 (double write)", wa)
	}
}

// TestDifferentialLogging: a 1 KiB write logs about 1 KiB, not a full block.
func TestDifferentialLogging(t *testing.T) {
	fs, ctx := newTestFS()
	f, _ := fs.Create(ctx, "f")
	dev := fs.Device()
	f.WriteAt(ctx, make([]byte, 4096), 0)
	dev.ResetStats()
	f.WriteAt(ctx, make([]byte, 1024), 1024) // unit-aligned 1K
	media := dev.Stats().MediaWriteBytes.Load()
	if media > 1024+64 {
		t.Fatalf("1K differential write logged %d bytes", media)
	}
}

// TestDataSurvivesCrashAfterFsync and is rolled back appropriately before.
func TestCrashSemantics(t *testing.T) {
	dev := nvm.New(96<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")

	committed := bytes.Repeat([]byte{0xAA}, 8192)
	f.WriteAt(ctx, committed, 0)
	f.Fsync(ctx)

	// Uncommitted epoch: these may be lost, but must not corrupt committed
	// data.
	f.WriteAt(ctx, bytes.Repeat([]byte{0xBB}, 1000), 500)

	dev.DropVolatile()
	fs2, err := Mount(ctx, dev)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	f2, err := fs2.Open(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8192)
	n, _ := f2.ReadAt(ctx, buf, 0)
	if n != 8192 {
		t.Fatalf("recovered size read = %d", n)
	}
	for i, b := range buf {
		ok := b == 0xAA || (i >= 500 && i < 1500 && b == 0xBB)
		if !ok {
			t.Fatalf("byte %d = %#x after recovery: neither committed nor written data", i, b)
		}
	}
}

// TestCrashSweepFsyncBoundary sweeps fail points across a write+fsync pair
// and asserts the SyncAtomic guarantee: data from the last successful fsync
// is always intact.
func TestCrashSweepFsyncBoundary(t *testing.T) {
	base := bytes.Repeat([]byte{0x11}, 16384)
	update := bytes.Repeat([]byte{0x22}, 3000)

	for fail := int64(0); ; fail++ {
		dev := nvm.New(96<<20, sim.ZeroCosts())
		fs := New(dev)
		ctx := sim.NewCtx(0, 1)
		f, _ := fs.Create(ctx, "f")
		f.WriteAt(ctx, base, 0)
		f.Fsync(ctx)

		dev.ArmCrash(fail, fail+31)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrCrashed {
						panic(r)
					}
					crashed = true
				}
			}()
			f.WriteAt(ctx, update, 1000)
			f.Fsync(ctx)
			f.WriteAt(ctx, update, 9000)
			f.Fsync(ctx)
		}()
		if !crashed {
			if fail == 0 {
				t.Fatal("sweep never crashed")
			}
			return
		}
		dev.Recover()
		fs2, err := Mount(ctx, dev)
		if err != nil {
			t.Fatalf("fail=%d: Mount: %v", fail, err)
		}
		f2, err := fs2.Open(ctx, "f")
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		buf := make([]byte, 16384)
		f2.ReadAt(ctx, buf, 0)
		// Invariant: every byte is 0x11 or 0x22, and the base write (last
		// successful fsync at minimum) is never lost.
		for i, b := range buf {
			if b != 0x11 && b != 0x22 {
				t.Fatalf("fail=%d: byte %d = %#x (garbage after recovery)", fail, i, b)
			}
			in1 := i >= 1000 && i < 4000
			in2 := i >= 9000 && i < 12000
			if !in1 && !in2 && b != 0x11 {
				t.Fatalf("fail=%d: byte %d = %#x outside any write range", fail, i, b)
			}
		}
	}
}

// TestHybridSwitchesToUndoForReadDominantBlocks.
func TestHybridPolicy(t *testing.T) {
	fs, ctx := newTestFS()
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 4096), 0)
	f.Fsync(ctx) // empty the log so the policy can switch

	// Make block 0 read-dominant.
	buf := make([]byte, 4096)
	for i := 0; i < 10; i++ {
		f.ReadAt(ctx, buf, 0)
	}
	f.WriteAt(ctx, []byte("fresh"), 0)

	ff := fs.files["f"]
	bl := ff.index[0]
	if bl == nil || !bl.undo {
		t.Fatal("read-dominant block did not switch to undo logging")
	}
	// Undo blocks serve reads from the file in place: the new data must be
	// visible directly.
	f.ReadAt(ctx, buf[:5], 0)
	if string(buf[:5]) != "fresh" {
		t.Fatalf("undo in-place write not visible: %q", buf[:5])
	}
}

// TestCheckpointClearsDirtySet: the second fsync with no writes is cheap.
func TestCheckpointClearsDirty(t *testing.T) {
	fs, ctx := newTestFS()
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 16384), 0)
	f.Fsync(ctx)
	dev := fs.Device()
	dev.ResetStats()
	f.Fsync(ctx)
	if w := dev.Stats().MediaWriteBytes.Load(); w > 16 {
		t.Fatalf("idle fsync wrote %d bytes", w)
	}
}

// TestReadMergesLogAndFile: after a partial-block logged write, a read must
// see log data where logged and file data elsewhere.
func TestReadMergesLogAndFile(t *testing.T) {
	fs, ctx := newTestFS()
	f, _ := fs.Create(ctx, "f")
	fileData := bytes.Repeat([]byte{0x0F}, 4096)
	f.WriteAt(ctx, fileData, 0)
	f.Fsync(ctx) // now in the file

	patch := bytes.Repeat([]byte{0xF0}, 100)
	f.WriteAt(ctx, patch, 2000) // logged only

	buf := make([]byte, 4096)
	f.ReadAt(ctx, buf, 0)
	want := append([]byte{}, fileData...)
	copy(want[2000:], patch)
	if !bytes.Equal(buf, want) {
		t.Fatal("merged read mismatch")
	}
}

func TestConsistencyLevel(t *testing.T) {
	fs, _ := newTestFS()
	if fs.Consistency() != vfs.SyncAtomic {
		t.Fatal("Libnvmmio must advertise sync-level atomicity")
	}
}

// TestRemovedFileLogsDiscardedOnRecovery.
func TestRemovedFileLogsCleared(t *testing.T) {
	dev := nvm.New(96<<20, sim.ZeroCosts())
	fs := New(dev)
	ctx := sim.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 4096), 0)
	f.Close(ctx)
	fs.Remove(ctx, "f")

	dev.DropVolatile()
	fs2, err := Mount(ctx, dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Open(ctx, "f"); err != vfs.ErrNotExist {
		t.Fatalf("removed file exists after recovery: %v", err)
	}
}

// TestConcurrentWritersAndFsync regression-tests the checkpoint/write lock
// ordering: concurrent writers (holding block locks, marking dirty) and
// fsyncers (holding the checkpoint lock, taking block locks) must not
// deadlock.
func TestConcurrentWritersAndFsync(t *testing.T) {
	fs, _ := newTestFS()
	setup := sim.NewCtx(9, 1)
	f, _ := fs.Create(setup, "f")
	f.WriteAt(setup, make([]byte, 1<<20), 0)

	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				ctx := sim.NewCtx(id, int64(id))
				h, _ := fs.Open(ctx, "f")
				for i := 0; i < 300; i++ {
					off := int64(ctx.Rand.Intn(1<<20-1024)) &^ 1023
					h.WriteAt(ctx, make([]byte, 1024), off)
					if i%3 == 0 {
						h.Fsync(ctx)
					}
				}
			}(w)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("writer/fsync deadlock")
	}
}
