package libnvmmio

import (
	"fmt"

	"mgsp/internal/nvm"
	"mgsp/internal/pmfile"
	"mgsp/internal/sim"
)

// Mount rebuilds a Libnvmmio instance from a device image after a crash and
// applies its epoch-based recovery protocol:
//
//   - redo logs stamped with a committed epoch are applied to the file
//     (finishing any interrupted checkpoint — the operation is idempotent);
//   - redo logs from an uncommitted epoch are discarded;
//   - undo logs from an uncommitted epoch are rolled back (restoring the
//     pre-epoch file contents);
//   - undo logs from a committed epoch are discarded (their in-place data
//     was committed).
//
// Afterwards every log block is freed: the mounted file system starts with
// clean logs, holding exactly the state as of the last committed epoch.
func Mount(ctx *sim.Ctx, dev *nvm.Device) (*FS, error) {
	prov, err := pmfile.Recover(ctx, dev, MetaBytes(dev.Size()))
	if err != nil {
		return nil, err
	}
	fs := mkFS(prov)

	// Index files by slot.
	bySlot := make(map[int]*pmfile.File)
	for name, pf := range prov.Files() {
		bySlot[pf.Slot()] = pf
		f := &file{
			fs: fs, pf: pf,
			index: make(map[int64]*blockLog),
			dirty: make(map[int64]*blockLog),
		}
		committed := dev.Load8(fs.epochOff(pf.Slot()))
		f.epoch.Store(committed + 1)
		f.size.Store(pf.Size())
		fs.files[name] = f
	}

	// Scan the header array for live log blocks.
	nBlocks := (dev.Size() - fs.dataStart) / blockSize
	var hdr [headerSize]byte
	for i := int64(0); i < nBlocks; i++ {
		hoff := fs.hdrBase + i*headerSize
		tag := dev.Load8(hoff + hdrTag)
		ctx.Advance(dev.Costs().IndexStep)
		if tag&(1<<62) == 0 {
			continue
		}
		dev.Read(ctx, hdr[:], hoff)
		slot := int(tag >> 48 & 0x3FFF)
		pg := int64(tag & (1<<48 - 1))
		mask := dev.Load8(hoff + hdrMask)
		epochWord := dev.Load8(hoff + hdrEpoch)
		undo := epochWord&undoFlag != 0
		epoch := epochWord &^ undoFlag
		logOff := fs.dataStart + i*blockSize

		pf := bySlot[slot]
		if pf == nil {
			// Log block of a removed file; just clear it.
			dev.Store8(ctx, hoff+hdrTag, 0)
			continue
		}
		committed := dev.Load8(fs.epochOff(slot))
		if mask != 0 {
			apply := (!undo && epoch <= committed) || (undo && epoch > committed)
			if apply {
				f := fs.files[pf.Name()]
				if f == nil {
					return nil, fmt.Errorf("libnvmmio: header references unknown slot %d", slot)
				}
				// Growing the file's committed data may require mapping
				// capacity if the crash interrupted an extension.
				if err := pf.EnsureCapacity(ctx, (pg+1)*blockSize); err != nil {
					return nil, err
				}
				f.copyUnits(ctx, mask, pf, pg*blockSize, logOff, false)
			}
		}
		dev.Store8(ctx, hoff+hdrMask, 0)
		dev.Store8(ctx, hoff+hdrTag, 0)
	}
	dev.Fence(ctx)
	return fs, nil
}
