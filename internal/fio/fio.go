// Package fio reimplements the parameter space of the paper's FIO harness
// (appendix: run.sh fs op fsize bs fsync t_num write_ratio runtime ramptime):
// sequential/random read/write and mixed workloads with configurable block
// size, thread count, and fsync interval, driving any vfs.FS. Results are
// reported in virtual time, so throughput numbers are deterministic.
package fio

import (
	"fmt"
	"sync"

	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Op is the workload type.
type Op int

// Workload types, matching the paper's FIO operations.
const (
	SeqWrite Op = iota
	RandWrite
	SeqRead
	RandRead
	Mixed // random offsets, WriteRatio% writes
)

// String returns the workload name as used in result tables.
func (o Op) String() string {
	return [...]string{"seq-write", "rand-write", "seq-read", "rand-read", "mixed"}[o]
}

// Config mirrors the paper's run.sh parameters.
type Config struct {
	Op       Op
	FileSize int64
	BS       int
	Threads  int
	// FsyncEvery performs one fsync every N operations per thread
	// (the paper's "fsync-N"); 0 disables fsync entirely.
	FsyncEvery int
	// WriteRatio is the write percentage for Mixed (e.g. 50).
	WriteRatio int
	// OpsPerThread fixes the per-thread operation count (the virtual-time
	// analogue of the paper's fixed runtime).
	OpsPerThread int
	// RampOps runs this many unmeasured per-thread operations first (FIO's
	// ramp_time: the paper's runs ramp for 50 s before measuring), letting
	// log trees, allocators, and caches reach steady state. Defaults to
	// OpsPerThread; set negative to disable.
	RampOps int
	Seed    int64
	// SkipLayout leaves the file unwritten before measurement (default is
	// to lay the file out first, as FIO does).
	SkipLayout bool
	// Disjoint confines random workloads to per-worker regions (FIO's
	// offset_increment applied to random ops): each worker draws offsets
	// only from its own FileSize/Threads stripe. This is the scalability
	// harness of fig10's disjoint-writer rows — contention-free by
	// construction, so any serialization measured is the file system's own.
	Disjoint bool
}

// Result is one FIO run's outcome.
type Result struct {
	Config
	FS        string
	Ops       int64
	Bytes     int64
	VirtualNS int64
	// UserWriteBytes / MediaWriteBytes give the Table II amplification
	// ratio (media bytes per byte submitted at the file-system layer).
	UserWriteBytes  int64
	MediaWriteBytes int64
}

// ThroughputMBps is the aggregate bandwidth in MiB/s of virtual time.
func (r Result) ThroughputMBps() float64 {
	if r.VirtualNS == 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / (float64(r.VirtualNS) / 1e9)
}

// KIOPS is the operation rate in thousands per second of virtual time.
func (r Result) KIOPS() float64 {
	if r.VirtualNS == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.VirtualNS) / 1e6)
}

// WriteAmplification is media write bytes per user write byte.
func (r Result) WriteAmplification() float64 {
	if r.UserWriteBytes == 0 {
		return 0
	}
	return float64(r.MediaWriteBytes) / float64(r.UserWriteBytes)
}

// Run executes the workload against fs and returns the measurements.
func Run(fs vfs.FS, cfg Config) (Result, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.OpsPerThread <= 0 {
		cfg.OpsPerThread = 2000
	}
	if cfg.BS <= 0 || int64(cfg.BS) > cfg.FileSize {
		return Result{}, fmt.Errorf("fio: bad block size %d", cfg.BS)
	}
	setup := sim.NewCtx(1000, cfg.Seed)
	f, err := fs.Create(setup, "fio.dat")
	if err != nil {
		return Result{}, err
	}
	if !cfg.SkipLayout {
		if err := layout(setup, f, cfg.FileSize); err != nil {
			return Result{}, err
		}
	}
	f.Close(setup)

	// Workers start their clocks at the layout phase's end — virtual
	// release times on locks touched during setup would otherwise leak the
	// whole setup duration into the first measured op. A ramp phase then
	// brings trees/logs/caches to steady state before measurement begins.
	dev := fs.Device()
	if cfg.RampOps == 0 {
		// Default ramp: at least one full pass over each worker's region, so
		// the measured window sees steady-state log/tree reuse rather than
		// first-touch costs.
		cfg.RampOps = cfg.OpsPerThread + int(cfg.FileSize/int64(cfg.Threads)/int64(cfg.BS))
	}
	if cfg.RampOps < 0 {
		cfg.RampOps = 0
	}

	ctxs := make([]*sim.Ctx, cfg.Threads)
	errs := make([]error, cfg.Threads)
	var userWrites, bytes, ops int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	var t0 int64
	barrier := newBarrier(cfg.Threads, func() {
		// All workers are between ramp and measurement: reset counters and
		// align clocks so the measured window is common.
		dev.ResetStats()
		t0 = sim.MaxTime(ctxs)
		for _, c := range ctxs {
			c.AdvanceTo(t0)
		}
	})
	for i := 0; i < cfg.Threads; i++ {
		ctxs[i] = sim.NewCtx(i, cfg.Seed+int64(i)+1)
		ctxs[i].AdvanceTo(setup.Now())
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w, b, o, err := worker(ctxs[id], fs, cfg, id, barrier)
			mu.Lock()
			userWrites += w
			bytes += b
			ops += o
			errs[id] = err
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	return Result{
		Config:          cfg,
		FS:              fs.Name(),
		Ops:             ops,
		Bytes:           bytes,
		VirtualNS:       sim.MaxTime(ctxs) - t0,
		UserWriteBytes:  userWrites,
		MediaWriteBytes: dev.Stats().MediaWriteBytes.Load(),
	}, nil
}

// barrier synchronizes workers between the ramp and measured phases,
// running onRelease once when the last worker arrives.
type barrier struct {
	mu        sync.Mutex
	waiting   int
	n         int
	onRelease func()
	ch        chan struct{}
}

func newBarrier(n int, onRelease func()) *barrier {
	return &barrier{n: n, onRelease: onRelease, ch: make(chan struct{})}
}

func (b *barrier) wait() {
	b.mu.Lock()
	b.waiting++
	if b.waiting == b.n {
		b.onRelease()
		close(b.ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-b.ch
}

// layout writes the whole file once (FIO's file laydown before the run).
func layout(ctx *sim.Ctx, f vfs.File, size int64) error {
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	for off := int64(0); off < size; off += chunk {
		n := int64(chunk)
		if n > size-off {
			n = size - off
		}
		if _, err := f.WriteAt(ctx, buf[:n], off); err != nil {
			return err
		}
	}
	return f.Fsync(ctx)
}

func worker(ctx *sim.Ctx, fs vfs.FS, cfg Config, id int, bar *barrier) (userWrites, bytes, ops int64, err error) {
	f, err := fs.Open(ctx, "fio.dat")
	if err != nil {
		bar.wait()
		return 0, 0, 0, err
	}
	// The measurement excludes teardown: handles are deliberately left to
	// the file system (closing MGSP would trigger write-back, which the
	// paper's runs also leave outside the measured window).
	buf := make([]byte, cfg.BS)
	for i := range buf {
		buf[i] = byte(id + i)
	}
	rbuf := make([]byte, cfg.BS)

	// Sequential workers get disjoint regions (FIO offset_increment);
	// random workers roam the whole file.
	region := cfg.FileSize / int64(cfg.Threads) / int64(cfg.BS) * int64(cfg.BS)
	if region < int64(cfg.BS) {
		region = int64(cfg.BS)
	}
	base := int64(id) * region
	if base+int64(cfg.BS) > cfg.FileSize {
		base = 0
	}
	nBlocks := cfg.FileSize / int64(cfg.BS)

	seqOff := base
	next := func(random bool) int64 {
		if random {
			if cfg.Disjoint {
				return base + ctx.Rand.Int63n(region/int64(cfg.BS))*int64(cfg.BS)
			}
			return ctx.Rand.Int63n(nBlocks) * int64(cfg.BS)
		}
		off := seqOff
		seqOff += int64(cfg.BS)
		if seqOff+int64(cfg.BS) > base+region || seqOff+int64(cfg.BS) > cfg.FileSize {
			seqOff = base
		}
		return off
	}

	doOp := func(i int) error {
		var isWrite, random bool
		switch cfg.Op {
		case SeqWrite:
			isWrite, random = true, false
		case RandWrite:
			isWrite, random = true, true
		case SeqRead:
			isWrite, random = false, false
		case RandRead:
			isWrite, random = false, true
		case Mixed:
			isWrite, random = ctx.Rand.Intn(100) < cfg.WriteRatio, true
		}
		off := next(random)
		if isWrite {
			if _, err := f.WriteAt(ctx, buf, off); err != nil {
				return err
			}
			userWrites += int64(cfg.BS)
			if cfg.FsyncEvery > 0 && (i+1)%cfg.FsyncEvery == 0 {
				if err := f.Fsync(ctx); err != nil {
					return err
				}
			}
		} else {
			if _, err := f.ReadAt(ctx, rbuf, off); err != nil {
				return err
			}
		}
		bytes += int64(cfg.BS)
		ops++
		return nil
	}

	// Ramp phase: unmeasured steady-state warm-up, then the barrier resets
	// counters and aligns clocks.
	for i := 0; i < cfg.RampOps; i++ {
		if err := doOp(i); err != nil {
			bar.wait()
			return userWrites, bytes, ops, err
		}
	}
	userWrites, bytes, ops = 0, 0, 0
	bar.wait()

	for i := 0; i < cfg.OpsPerThread; i++ {
		if err := doOp(i); err != nil {
			return userWrites, bytes, ops, err
		}
	}
	return userWrites, bytes, ops, nil
}
