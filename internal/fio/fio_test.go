package fio

import (
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/ext4"
	"mgsp/internal/libnvmmio"
	"mgsp/internal/nova"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

func systems(t *testing.T, costs sim.Costs) map[string]vfs.FS {
	t.Helper()
	return map[string]vfs.FS{
		"ext4dax":   ext4.New(nvm.New(96<<20, costs), ext4.DAX),
		"nova":      nova.New(nvm.New(96<<20, costs)),
		"libnvmmio": libnvmmio.New(nvm.New(96<<20, costs)),
		"mgsp":      core.MustNew(nvm.New(96<<20, costs), core.DefaultOptions()),
	}
}

func TestRunAllOpsAllSystems(t *testing.T) {
	for name, fs := range systems(t, sim.ZeroCosts()) {
		for _, op := range []Op{SeqWrite, RandWrite, SeqRead, RandRead, Mixed} {
			cfg := Config{
				Op: op, FileSize: 8 << 20, BS: 4096, Threads: 2,
				FsyncEvery: 10, WriteRatio: 50, OpsPerThread: 100, Seed: 7,
			}
			res, err := Run(fs, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, op, err)
			}
			if res.Ops != 200 {
				t.Fatalf("%s/%s: ops = %d, want 200", name, op, res.Ops)
			}
			if res.Bytes != 200*4096 {
				t.Fatalf("%s/%s: bytes = %d", name, op, res.Bytes)
			}
		}
	}
}

func TestThroughputUsesVirtualTime(t *testing.T) {
	fs := core.MustNew(nvm.New(96<<20, sim.DefaultCosts()), core.DefaultOptions())
	res, err := Run(fs, Config{Op: SeqWrite, FileSize: 8 << 20, BS: 4096, Threads: 1, FsyncEvery: 1, OpsPerThread: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualNS <= 0 {
		t.Fatal("no virtual time charged")
	}
	if res.ThroughputMBps() <= 0 || res.KIOPS() <= 0 {
		t.Fatal("throughput not computed")
	}
	// Sanity: a single thread writing 4K with per-op fsync on Optane-like
	// media lands between 0.1 and 10 GB/s.
	if mb := res.ThroughputMBps(); mb < 100 || mb > 10000 {
		t.Fatalf("implausible MGSP throughput %.1f MiB/s", mb)
	}
}

func TestWriteAmplificationAccounting(t *testing.T) {
	fs := libnvmmio.New(nvm.New(96<<20, sim.ZeroCosts()))
	res, err := Run(fs, Config{Op: RandWrite, FileSize: 8 << 20, BS: 4096, Threads: 1, FsyncEvery: 1, OpsPerThread: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wa := res.WriteAmplification()
	if wa < 1.8 || wa > 2.4 {
		t.Fatalf("Libnvmmio fsync-1 WA = %.2f, want ~2", wa)
	}
}

func TestSequentialWorkersDisjoint(t *testing.T) {
	fs := ext4.New(nvm.New(96<<20, sim.ZeroCosts()), ext4.DAX)
	res, err := Run(fs, Config{Op: SeqWrite, FileSize: 4 << 20, BS: 4096, Threads: 4, OpsPerThread: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 200 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestBadConfigRejected(t *testing.T) {
	fs := ext4.New(nvm.New(32<<20, sim.ZeroCosts()), ext4.DAX)
	if _, err := Run(fs, Config{Op: SeqWrite, FileSize: 1 << 20, BS: 0}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := Run(fs, Config{Op: SeqWrite, FileSize: 1024, BS: 4096}); err == nil {
		t.Fatal("block size beyond file accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		fs := core.MustNew(nvm.New(96<<20, sim.DefaultCosts()), core.DefaultOptions())
		res, err := Run(fs, Config{Op: RandWrite, FileSize: 8 << 20, BS: 1024, Threads: 1, FsyncEvery: 1, OpsPerThread: 200, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.VirtualNS != b.VirtualNS || a.MediaWriteBytes != b.MediaWriteBytes {
		t.Fatalf("nondeterministic single-thread run: %d/%d vs %d/%d ns/bytes",
			a.VirtualNS, a.MediaWriteBytes, b.VirtualNS, b.MediaWriteBytes)
	}
}

// TestRampExcludedFromMeasurement: the default ramp phase must not appear
// in the measured bytes or the media counters.
func TestRampExcludedFromMeasurement(t *testing.T) {
	fs := core.MustNew(nvm.New(96<<20, sim.ZeroCosts()), core.DefaultOptions())
	cfg := Config{Op: SeqWrite, FileSize: 4 << 20, BS: 4096, Threads: 2, OpsPerThread: 100, RampOps: 50, Seed: 9}
	res, err := Run(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 200 {
		t.Fatalf("measured ops = %d, want 200 (ramp leaked in)", res.Ops)
	}
	if res.UserWriteBytes != 200*4096 {
		t.Fatalf("user bytes = %d, want %d", res.UserWriteBytes, 200*4096)
	}
	// Media counter was reset at the barrier: it cannot include the ramp's
	// or the layout's traffic (which exceed the measured window alone).
	if res.MediaWriteBytes > 3*res.UserWriteBytes {
		t.Fatalf("media bytes %d include pre-measurement traffic", res.MediaWriteBytes)
	}
}

// TestRampDisabled: RampOps < 0 starts measuring immediately.
func TestRampDisabled(t *testing.T) {
	fs := ext4.New(nvm.New(32<<20, sim.ZeroCosts()), ext4.DAX)
	res, err := Run(fs, Config{Op: SeqWrite, FileSize: 2 << 20, BS: 4096, Threads: 1, OpsPerThread: 10, RampOps: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 10 {
		t.Fatalf("ops = %d", res.Ops)
	}
}
