// Package staleannot keeps the //mgsp: annotation grammar honest: a
// suppression annotation justifies silencing one analyzer at one site, and
// when the code moves until the annotation no longer suppresses anything,
// the justification is dead weight that misleads the next reader — so it is
// itself reported. Every mgspvet analyzer records which directives actually
// suppressed a finding during its run (Directives.Suppress); this pass
// unions those usage records across analyzers and reports
//
//   - suppression directives that suppressed nothing (stale), and
//   - directives whose name is neither a known suppression nor a known
//     declaration (typos silently suppress nothing — worse than stale).
//
// Declaration directives (lock-order, lock-order-self, lock-forbid,
// seqlock) configure the summary engine rather than suppressing
// diagnostics and are exempt.
package staleannot

import (
	"fmt"
	"go/token"
	"reflect"

	"golang.org/x/tools/go/analysis"

	"mgsp/internal/analysis/atomicfield"
	"mgsp/internal/analysis/checksumpub"
	"mgsp/internal/analysis/crashsafelocks"
	"mgsp/internal/analysis/lockorder"
	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/persistorder"
	"mgsp/internal/analysis/seqlockver"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/twostore"
	"mgsp/internal/analysis/vetreport"
)

const doc = `report //mgsp: annotations that no longer suppress any diagnostic

A suppression annotation whose finding has been fixed (or moved) is stale:
its justification now asserts something the analyzers no longer observe.
Delete it, or re-anchor it to the line it should govern. Unknown directive
names are reported as probable typos.`

// upstream lists every directive-recording analyzer whose usage records this
// pass unions; it is a separate var so run can range over it without creating
// an initialization cycle through Analyzer.Requires.
var upstream = []*analysis.Analyzer{
	persistorder.Analyzer,
	crashsafelocks.Analyzer,
	atomicfield.Analyzer,
	checksumpub.Analyzer,
	lockorder.Analyzer,
	seqlockver.Analyzer,
	twostore.Analyzer,
}

var Analyzer = &analysis.Analyzer{
	Name:       "staleannot",
	Doc:        doc,
	Requires:   append([]*analysis.Analyzer{summary.Analyzer}, upstream...),
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

func run(pass *analysis.Pass) (interface{}, error) {
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)

	// Each analyzer parsed its own Directives copy over the same files;
	// union the per-copy usage records by position.
	used := make(map[token.Pos]bool)
	var copies []*mgspmatch.Directives
	for _, a := range upstream {
		if d, ok := pass.ResultOf[a].(*mgspmatch.Directives); ok && d != nil {
			copies = append(copies, d)
			for pos := range d.Used() {
				used[pos] = true
			}
		}
	}
	if len(copies) == 0 {
		return (*mgspmatch.Directives)(nil), nil
	}

	seen := make(map[token.Pos]bool)
	for _, d := range copies[0].All() {
		if seen[d.Pos] {
			continue
		}
		seen[d.Pos] = true
		switch {
		case mgspmatch.DeclarationDirectives[d.Name]:
			// Declarations configure the summary engine; never stale here.
		case mgspmatch.SuppressionDirectives[d.Name] == "":
			msg := fmt.Sprintf("unknown //mgsp: directive %q: known suppressions are %s; a typo here silently suppresses nothing",
				d.Name, knownNames())
			vetreport.Report(pass, sum.ReportPath, d.Pos, msg, false)
		case !used[d.Pos]:
			msg := fmt.Sprintf("stale //mgsp:%s annotation: it no longer suppresses any %s finding; delete it or re-anchor it",
				d.Name, mgspmatch.SuppressionDirectives[d.Name])
			vetreport.Report(pass, sum.ReportPath, d.Pos, msg, false)
		}
	}
	return copies[0], nil
}

func knownNames() string {
	return mgspmatch.DeferredPersist + ", " + mgspmatch.CrashLocked + ", " +
		mgspmatch.UnchecksummedPublish + ", " + mgspmatch.UnalignedOK + ", " +
		mgspmatch.AtomicCopyOK + ", " + mgspmatch.LockOrderOK + ", " +
		mgspmatch.SeqlockOK + ", " + mgspmatch.TwoStoreOK
}
