// Package a holds the staleannot golden cases: a suppression that earns
// its keep, one that suppresses nothing, a typo'd directive name, and
// declaration directives that are exempt by design.
//
//mgsp:lock-order flusher.flushMu < flusher.sizeMu
package a

import (
	"nvm"
	"sim"
)

// usedSuppression: the WriteNT-reaches-Store8 shape is a real persistorder
// finding; the annotation suppresses it and is therefore not stale.
func usedSuppression(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128) //mgsp:deferred-persist caller fences before its commit
	dev.Store8(ctx, 0, 1)
}

// staleSuppression: the fence is right there, nothing is suppressed.
func staleSuppression(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128) //mgsp:deferred-persist nothing left to justify // want `stale //mgsp:deferred-persist annotation`
	dev.Fence(ctx)
}

// typoSuppression: a misspelled name silently suppresses nothing.
func typoSuppression(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128) //mgsp:defered-persist typo'd name // want `unknown //mgsp: directive "defered-persist"`
	dev.Fence(ctx)
}
