package staleannot_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/staleannot"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), staleannot.Analyzer, "a")
}
