// Package b is the exporting side of the cross-package summary fixture:
// package a calls these functions and asserts the effect summaries the
// engine exported as object facts — media ops, bare writes, all-path
// barriers, bare commits, and lock effects all crossing the package
// boundary.
package b

import (
	"sync"

	"nvm"
	"sim"
)

// StageBare returns with a non-temporal write unfenced: the caller owns the
// barrier.
func StageBare(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 0)
}

// FlushAll crosses a cached-write barrier on every path.
func FlushAll(ctx *sim.Ctx, dev *nvm.Device) {
	dev.Persist(ctx, 0, 64)
}

// CommitSlot publishes a commit store with no preceding barrier.
func CommitSlot(ctx *sim.Ctx, dev *nvm.Device) {
	dev.Store8(ctx, 0, 1)
}

// Noop takes ctx but touches nothing: its summary must still be exported so
// callers can prove it cannot crash.
func Noop(ctx *sim.Ctx) {}

// Locker carries the lock-effect summaries.
type Locker struct{ mu sync.Mutex }

// Batch acquires and releases its own lock.
func (l *Locker) Batch(ctx *sim.Ctx) {
	l.mu.Lock()
	defer l.mu.Unlock()
}

// Acquire hands the held lock back to the caller (escaping acquire).
func (l *Locker) Acquire() {
	l.mu.Lock()
}

// Release is the matching release helper.
func (l *Locker) Release() {
	l.mu.Unlock()
}
