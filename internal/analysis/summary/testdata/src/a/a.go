// Package a is the importing side of the cross-package summary fixture: the
// probe analyzer in summary_test reports the callee summary at every call
// site that has one, and the expectations below pin down exactly what
// crossed the package boundary as facts.
package a

import (
	"b"
	"nvm"
	"sim"
)

func drive(ctx *sim.Ctx, dev *nvm.Device, l *b.Locker, data []byte) {
	b.StageBare(ctx, dev, data) // want `summary: media writebareNT`
	b.FlushAll(ctx, dev)        // want `summary: media barrier barrierNT`
	b.CommitSlot(ctx, dev)      // want `summary: media commitbare commitbareNT`
	b.Noop(ctx)                 // want `summary: pure`
	l.Batch(ctx)                // want `summary: acq\(Locker\.mu\) release\(Locker\.mu\)`
	l.Acquire()                 // want `summary: acq\(Locker\.mu\) escape\(Locker\.mu\)`
	l.Release()                 // want `summary: release\(Locker\.mu\)`
}

// localBare proves local (unexported) functions get in-memory summaries
// without needing facts. The fixture Device's methods have empty bodies, so
// the probe sees their own (exported, empty) summaries as "pure".
func localBare(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.Write(ctx, data, 0) // want `summary: pure`
}

func driveLocal(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	localBare(ctx, dev, data) // want `summary: media writebare`
}
