package summary_test

import (
	"go/ast"
	"testing"

	"golang.org/x/tools/go/analysis"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/summary"
)

// probe reports the callee effect summary at every call site that resolves
// to one, turning the fact-carried summaries into diagnostics the golden
// harness can assert on.
var probe = &analysis.Analyzer{
	Name:     "summaryprobe",
	Doc:      "report callee effect summaries at call sites",
	Requires: []*analysis.Analyzer{summary.Analyzer},
	Run: func(pass *analysis.Pass) (interface{}, error) {
		sum := pass.ResultOf[summary.Analyzer].(*summary.Result)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				c, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if s := sum.CallSummary(c); s != nil {
					pass.Reportf(c.Pos(), "summary: %s", s.String())
				}
				return true
			})
		}
		return nil, nil
	},
}

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), probe, "a")
}
