// Package summary is the interprocedural engine under mgspvet (DESIGN.md
// §15): a go/analysis Fact-based pass computing one effect summary per
// function — does it transitively touch the media, does every path through
// it cross a persist barrier, can it reach a commit sink before one, which
// lock classes does it acquire, escape with, or release — and exporting
// those summaries across package boundaries so the ordering analyzers
// (persistorder, crashsafelocks, lockorder, seqlockver, twostore) see
// through calls into other packages instead of approximating them.
//
// Effects are computed by fixpoint over the package's call graph on top of
// cfgscan's per-block call lists, with imported packages' summaries taken as
// ground truth (the driver analyzes dependencies first, so cross-package
// fixpoints are already closed). Immediately-invoked function literals get
// their own summaries; a call through a plain function value contributes no
// effects, and a call to an interface method or other summary-less concrete
// callee falls back to the *sim.Ctx-parameter heuristic for the media-op bit
// only — in this codebase ctx is threaded precisely through the operations
// that can issue media ops. That heuristic is the honest residue of dynamic
// dispatch; every static call edge uses a real summary.
//
// Lock classes are "TypeName.field" strings resolved from the receiver of a
// lock-method call (FS.mu, file.flushMu, node.lock, ...); index expressions
// collapse to their base (pubMu[a] is class metaLog.pubMu) and plain
// identifiers fall back to the variable name. Lock/RLock/LockLazy are
// blocking acquires (edge targets in the deadlock graph), TryLock/TryRLock/
// TryLockHint acquire without waiting (edge sources only), Unlock/RUnlock
// release.
//
// The pass also collects the declaration directives that parameterize the
// downstream analyzers: //mgsp:lock-order A < B < C (declared partial lock
// order), //mgsp:lock-order-self C (intra-class acquisition follows a
// protocol), //mgsp:lock-forbid C (this function must not transitively
// blocking-acquire C), and //mgsp:seqlock (this atomic field is a seqlock
// version word). Orders, self-exemptions, and the acquires-while-holding
// edge set are exported as a package fact so lockorder can detect cycles
// spanning packages.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
)

// FnSummary is the per-function effect summary, exported as an object fact
// on every function whose effects are non-empty.
type FnSummary struct {
	// MediaOp: the function transitively performs an nvm.Device media op
	// and can therefore panic at a crash-injection fail point.
	MediaOp bool
	// BarrierCachedAll / BarrierNTAll: every entry-to-exit path crosses a
	// persist barrier strong enough for a pending cached Write
	// (Flush/Persist) resp. a pending non-temporal WriteNT (also Fence).
	BarrierCachedAll bool
	BarrierNTAll     bool
	// CommitBareCached / CommitBareNT: a commit sink (Store8/CAS8 or a
	// commit* callee) is reachable from entry before any barrier of the
	// respective strength — calling this function publishes.
	CommitBareCached bool
	CommitBareNT     bool
	// WriteBareCached / WriteBareNT: a Write resp. WriteNT can still be
	// pending (unbarriered) when the function returns.
	WriteBareCached bool
	WriteBareNT     bool
	// AcqBlocking: lock classes the function transitively blocking-acquires
	// (the edge targets a caller holding locks creates by calling it).
	AcqBlocking []string
	// AcqEscaping: lock classes possibly still held when the function
	// returns (acquire-and-escape handoffs).
	AcqEscaping []string
	// Releases: lock classes the function (transitively) releases, deferred
	// releases included.
	Releases []string
}

func (*FnSummary) AFact() {}

func (s *FnSummary) String() string {
	var parts []string
	flag := func(on bool, name string) {
		if on {
			parts = append(parts, name)
		}
	}
	flag(s.MediaOp, "media")
	flag(s.BarrierCachedAll, "barrier")
	flag(s.BarrierNTAll, "barrierNT")
	flag(s.CommitBareCached, "commitbare")
	flag(s.CommitBareNT, "commitbareNT")
	flag(s.WriteBareCached, "writebare")
	flag(s.WriteBareNT, "writebareNT")
	set := func(vs []string, name string) {
		if len(vs) > 0 {
			parts = append(parts, name+"("+strings.Join(vs, ",")+")")
		}
	}
	set(s.AcqBlocking, "acq")
	set(s.AcqEscaping, "escape")
	set(s.Releases, "release")
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, " ")
}

func (s *FnSummary) empty() bool {
	return !s.MediaOp && !s.BarrierCachedAll && !s.BarrierNTAll &&
		!s.CommitBareCached && !s.CommitBareNT && !s.WriteBareCached && !s.WriteBareNT &&
		len(s.AcqBlocking) == 0 && len(s.AcqEscaping) == 0 && len(s.Releases) == 0
}

// SeqlockVar marks a struct field annotated //mgsp:seqlock as a seqlock
// version word.
type SeqlockVar struct{}

func (*SeqlockVar) AFact()         {}
func (*SeqlockVar) String() string { return "seqlock" }

// Edge is one acquires-while-holding observation: at Pos (inside Fn), lock
// class To was blocking-acquired while From was held.
type Edge struct {
	From, To string
	Fn       string
	Pos      string // "file:line", pre-rendered so facts need no FileSet
}

// LocalEdge is an Edge observed in the package under analysis, with the
// acquire site's real token.Pos so lockorder can anchor diagnostics.
type LocalEdge struct {
	Edge
	TokPos token.Pos
}

// OrderPair is one declared ordering: Before must be acquired before After.
type OrderPair struct {
	Before, After string
	Pos           string
}

// PkgInfo aggregates a package's lock-order inputs for cross-package cycle
// detection: its observed edges and its declarations.
type PkgInfo struct {
	Edges  []Edge
	Order  []OrderPair
	SelfOK []string
}

func (*PkgInfo) AFact() {}

func (p *PkgInfo) String() string {
	return fmt.Sprintf("edges=%d order=%d", len(p.Edges), len(p.Order))
}

// Result is the in-memory view handed to dependent analyzers in the same
// package run: summary lookup closures (local results or imported facts),
// the shared call classifiers, and the merged lock-order declarations.
type Result struct {
	// ReportPath is the JSONL findings sink from -mgspsummary.report (empty
	// when no report is requested); dependent analyzers append every finding
	// — reported or suppressed — to it.
	ReportPath string

	// Fn returns the effect summary for a function: the local result for
	// package functions, the imported fact otherwise, nil when unknown.
	Fn func(*types.Func) *FnSummary
	// Lit returns the summary of a function literal in this package.
	Lit func(*ast.FuncLit) *FnSummary
	// IsSeqlock reports whether v is a //mgsp:seqlock-annotated field.
	IsSeqlock func(*types.Var) bool

	// IsCrashPoint classifies a call as able to panic at a crash-injection
	// fail point (direct media op, media-performing callee, or the ctx
	// heuristic for summary-less concrete callees).
	IsCrashPoint func(*ast.CallExpr) bool
	// PersistClass classifies a call as seen after a pending unflushed
	// write of kind write ("Write" or "WriteNT"): Stop for a sufficient
	// barrier, Hit for a commit sink, Continue otherwise.
	PersistClass func(call *ast.CallExpr, write string) cfgscan.Class
	// BarrierFor reports whether a call is a persist barrier sufficient
	// for a pending write of the given kind, directly or on every path of
	// its callee.
	BarrierFor func(call *ast.CallExpr, write string) bool
	// CallSummary resolves a call to its callee's effect summary (local,
	// imported, or immediately-invoked literal), or nil for dynamic calls.
	CallSummary func(call *ast.CallExpr) *FnSummary

	// Order, SelfOK: declared lock order and intra-class exemptions, local
	// declarations merged with every imported package's.
	Order  []OrderPair
	SelfOK map[string]bool
	// LocalEdges: acquires-while-holding edges observed in this package.
	// AllEdges: the same (position-string form) plus every imported
	// package's.
	LocalEdges []LocalEdge
	AllEdges   []Edge
}

const doc = `compute interprocedural per-function effect summaries for the mgspvet analyzers

Exports facts recording, per function: transitive media ops, persist-barrier
coverage, bare commit reachability, pending writes at exit, and lock-class
acquire/escape/release sets plus acquires-while-holding edges. The ordering
analyzers consume these instead of package-local approximations.`

var Analyzer = &analysis.Analyzer{
	Name:       "mgspsummary",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*Result)(nil)),
	FactTypes:  []analysis.Fact{(*FnSummary)(nil), (*SeqlockVar)(nil), (*PkgInfo)(nil)},
}

var reportFlag string

func init() {
	Analyzer.Flags.StringVar(&reportFlag, "report", "", "append every finding (reported or suppressed) as JSONL to this file")
	Analyzer.Flags.String("stamp", "", "opaque cache-busting token; a fresh value forces re-analysis so the report file is complete")
}

// IsBlockingAcquire / IsTryAcquire / IsRelease classify lock method names.
func IsBlockingAcquire(name string) bool {
	return name == "Lock" || name == "RLock" || name == "LockLazy"
}
func IsTryAcquire(name string) bool {
	return name == "TryLock" || name == "TryRLock" || name == "TryLockHint"
}
func IsRelease(name string) bool { return name == "Unlock" || name == "RUnlock" }

// LockMethod returns (method name, lock class) if call is a lock-method call
// with a resolvable receiver class, else ("", "").
func LockMethod(info *types.Info, call *ast.CallExpr) (name, class string) {
	fn := mgspmatch.Callee(info, call)
	if fn == nil {
		return "", ""
	}
	n := fn.Name()
	if !IsBlockingAcquire(n) && !IsTryAcquire(n) && !IsRelease(n) {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return n, LockClass(info, sel.X)
}

// LockClass resolves a lock expression to its "TypeName.field" class: the
// named type owning the selected field plus the field name, an index
// expression collapsing to its base, a plain identifier to the variable
// name. Unresolvable expressions return "".
func LockClass(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if n := mgspmatch.Named(s.Recv()); n != nil {
				return n.Obj().Name() + "." + x.Sel.Name
			}
			return x.Sel.Name
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v.Name() // package-qualified variable
		}
		return ""
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v.Name()
		}
		return ""
	case *ast.IndexExpr:
		return LockClass(info, x.X)
	case *ast.StarExpr:
		return LockClass(info, x.X)
	}
	return ""
}

// fnInfo is the per-function analysis state.
type fnInfo struct {
	fn       *types.Func  // nil for function literals
	lit      *ast.FuncLit // nil for declarations
	g        *cfg.CFG
	body     *ast.BlockStmt
	deferRel   map[string]bool // classes released by defer at exit
	deferCalls []*ast.CallExpr // calls that run at function exit (defers)
	sum        FnSummary
	// set-valued effects are kept as maps during the fixpoint and
	// flattened into sum at the end
	acqBlocking, acqEscaping, releases map[string]bool
}

type engine struct {
	pass  *analysis.Pass
	byObj map[*types.Func]*fnInfo
	byLit map[*ast.FuncLit]*fnInfo
	fns   []*fnInfo
	edges []LocalEdge
}

func run(pass *analysis.Pass) (interface{}, error) {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	e := &engine{
		pass:  pass,
		byObj: make(map[*types.Func]*fnInfo),
		byLit: make(map[*ast.FuncLit]*fnInfo),
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				fn, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				fi := &fnInfo{fn: fn, g: cfgs.FuncDecl(n), body: n.Body}
				e.byObj[fn] = fi
				e.fns = append(e.fns, fi)
			case *ast.FuncLit:
				fi := &fnInfo{lit: n, g: cfgs.FuncLit(n), body: n.Body}
				e.byLit[n] = fi
				e.fns = append(e.fns, fi)
			}
			return true
		})
	}
	for _, fi := range e.fns {
		fi.deferRel = deferredReleases(pass.TypesInfo, fi.body)
		fi.deferCalls = deferredCalls(fi.body)
		fi.acqBlocking = make(map[string]bool)
		fi.acqEscaping = make(map[string]bool)
		fi.releases = make(map[string]bool)
	}

	// Sequenced fixpoints: each stage only reads effects fixed by earlier
	// stages (or its own monotonically growing ones), so every loop
	// terminates at the least fixed point.
	e.fixpoint(e.stepReleases)
	e.fixpoint(e.stepBarriers)
	e.fixpoint(e.stepCommitWrite)
	e.fixpoint(e.stepMediaOp)
	e.fixpoint(e.stepLocks)

	for _, fi := range e.fns {
		fi.sum.AcqBlocking = sortedKeys(fi.acqBlocking)
		fi.sum.AcqEscaping = sortedKeys(fi.acqEscaping)
		fi.sum.Releases = sortedKeys(fi.releases)
	}
	// MGSPSUMMARY_DEBUG=<substring> dumps the converged summary of every
	// matching function to stderr. This is the triage loop for new lock-order
	// declarations: a surprising edge almost always traces to one function's
	// effect set, and the dump shows it without instrumenting the fixpoints.
	if sub := os.Getenv("MGSPSUMMARY_DEBUG"); sub != "" {
		for _, fi := range e.fns {
			name := fnName(fi)
			if strings.Contains(name, sub) {
				fmt.Fprintf(os.Stderr, "[summary] %s %s: %s\n", pass.Pkg.Path(), name, fi.sum.String())
			}
		}
	}
	sort.Slice(e.edges, func(i, j int) bool {
		a, b := e.edges[i], e.edges[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.From+">"+a.To < b.From+">"+b.To
	})

	// Seqlock field annotations.
	seqlocks := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !dirs.Has(field.Pos(), mgspmatch.Seqlock) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						seqlocks[v] = true
						pass.ExportObjectFact(v, &SeqlockVar{})
					}
				}
			}
			return true
		})
	}

	// Lock-order declarations.
	var order []OrderPair
	selfOK := make(map[string]bool)
	for _, d := range dirs.Decls(mgspmatch.LockOrder) {
		order = append(order, parseOrder(pass.Fset, d)...)
	}
	for _, d := range dirs.Decls(mgspmatch.LockOrderSelf) {
		if fs := strings.Fields(d.Args); len(fs) > 0 {
			selfOK[fs[0]] = true
		}
	}

	// Export: object facts for non-empty summaries, the package fact when
	// this package contributes edges or declarations. Empty summaries are
	// still exported for ctx-taking functions: "analyzed, no effects" must
	// stay distinguishable from "no summary at all", or the dynamic-dispatch
	// crash-point approximation would re-absorb every harmless ctx helper.
	for _, fi := range e.fns {
		if fi.fn != nil && (!fi.sum.empty() || mgspmatch.HasSimCtxParam(fi.fn)) {
			s := fi.sum
			pass.ExportObjectFact(fi.fn, &s)
		}
	}
	localEdges := make([]Edge, len(e.edges))
	for i, le := range e.edges {
		localEdges[i] = le.Edge
	}
	if len(e.edges) > 0 || len(order) > 0 || len(selfOK) > 0 {
		pass.ExportPackageFact(&PkgInfo{Edges: localEdges, Order: order, SelfOK: sortedKeys(selfOK)})
	}

	// Merge imported declarations and edges into the result.
	mergedOrder := append([]OrderPair(nil), order...)
	allEdges := append([]Edge(nil), localEdges...)
	mergedSelf := make(map[string]bool)
	for k := range selfOK {
		mergedSelf[k] = true
	}
	for _, pf := range pass.AllPackageFacts() {
		pi, ok := pf.Fact.(*PkgInfo)
		if !ok || pf.Package == pass.Pkg {
			continue
		}
		mergedOrder = append(mergedOrder, pi.Order...)
		allEdges = append(allEdges, pi.Edges...)
		for _, k := range pi.SelfOK {
			mergedSelf[k] = true
		}
	}

	res := &Result{
		ReportPath: reportFlag,
		Fn: func(fn *types.Func) *FnSummary {
			if fi, ok := e.byObj[fn]; ok {
				return &fi.sum
			}
			var s FnSummary
			if pass.ImportObjectFact(fn, &s) {
				return &s
			}
			return nil
		},
		Lit: func(l *ast.FuncLit) *FnSummary {
			if fi, ok := e.byLit[l]; ok {
				return &fi.sum
			}
			return nil
		},
		IsSeqlock: func(v *types.Var) bool {
			if seqlocks[v] {
				return true
			}
			return pass.ImportObjectFact(v, &SeqlockVar{})
		},
		Order:      mergedOrder,
		SelfOK:     mergedSelf,
		LocalEdges: e.edges,
		AllEdges:   allEdges,
	}
	res.IsCrashPoint = func(c *ast.CallExpr) bool {
		if m := mgspmatch.DeviceMethod(pass.TypesInfo, c); m != "" {
			return mgspmatch.DeviceMediaOps[m]
		}
		s, fn := e.calleeSummary(c)
		if s != nil {
			return s.MediaOp
		}
		return e.dynamicCrash(fn)
	}
	res.PersistClass = func(c *ast.CallExpr, write string) cfgscan.Class {
		return e.persistClass(c, write)
	}
	res.BarrierFor = func(c *ast.CallExpr, write string) bool {
		return e.barrierFor(c, write)
	}
	res.CallSummary = func(c *ast.CallExpr) *FnSummary {
		s, _ := e.calleeSummary(c)
		return s
	}
	return res, nil
}

// calleeSummary resolves a call to its effect summary: an immediately
// invoked literal's, a local function's in-progress one, or an imported
// fact. The *types.Func is returned alongside (nil for dynamic calls) so
// callers can apply fallback heuristics when the summary is nil.
func (e *engine) calleeSummary(call *ast.CallExpr) (*FnSummary, *types.Func) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if fi, ok := e.byLit[lit]; ok {
			return &fi.sum, nil
		}
		return nil, nil
	}
	fn := mgspmatch.Callee(e.pass.TypesInfo, call)
	if fn == nil {
		return nil, nil
	}
	if fi, ok := e.byObj[fn]; ok {
		return &fi.sum, fn
	}
	var s FnSummary
	if e.pass.ImportObjectFact(fn, &s) {
		return &s, fn
	}
	return nil, fn
}

// dynamicCrash is the media-op fallback for a callee with no summary: an
// interface method or foreign function threading a *sim.Ctx is
// conservatively a crash point (excluding the simulator and observability
// packages, whose ctx use is cost accounting only).
func (e *engine) dynamicCrash(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if mgspmatch.PkgPathIs(p, "sim") || mgspmatch.PkgPathIs(p, "obs") {
		return false
	}
	return mgspmatch.HasSimCtxParam(fn)
}

// barrierFor reports whether a call is a persist barrier sufficient for a
// pending write of the given kind ("Write" needs Flush/Persist; "WriteNT"
// also settles for Fence), directly or through every path of its callee.
func (e *engine) barrierFor(c *ast.CallExpr, write string) bool {
	if m := mgspmatch.DeviceMethod(e.pass.TypesInfo, c); m != "" {
		return m == "Flush" || m == "Persist" || (m == "Fence" && write == "WriteNT")
	}
	if s, _ := e.calleeSummary(c); s != nil {
		if write == "WriteNT" {
			return s.BarrierNTAll
		}
		return s.BarrierCachedAll
	}
	return false
}

// commitSink reports whether a call publishes: an 8-byte atomic persist
// store, a commit*-named callee, or a callee that itself reaches a commit
// sink before a barrier of the given strength.
func (e *engine) commitSink(c *ast.CallExpr, write string) bool {
	if m := mgspmatch.DeviceMethod(e.pass.TypesInfo, c); m != "" {
		return m == "Store8" || m == "CAS8"
	}
	s, fn := e.calleeSummary(c)
	if fn != nil && strings.HasPrefix(strings.ToLower(fn.Name()), "commit") {
		return true
	}
	if s != nil {
		if write == "WriteNT" {
			return s.CommitBareNT
		}
		return s.CommitBareCached
	}
	return false
}

// persistClass is the classifier persistorder walks with after a pending
// write: barrier first (a Persist both commits nothing and settles the
// write — Stop wins over Hit for e.g. a callee that barriers then commits).
func (e *engine) persistClass(c *ast.CallExpr, write string) cfgscan.Class {
	// Sink wins over barrier: a commit* callee that fences on every path
	// (append-then-Fence) still publishes its entry BEFORE that internal
	// fence, so a pending caller write can tear against the entry.
	if e.commitSink(c, write) {
		return cfgscan.Hit
	}
	if e.barrierFor(c, write) {
		return cfgscan.Stop
	}
	return cfgscan.Continue
}

// fixpoint iterates step over every function until nothing changes.
func (e *engine) fixpoint(step func(*fnInfo) bool) {
	for changed := true; changed; {
		changed = false
		for _, fi := range e.fns {
			if step(fi) {
				changed = true
			}
		}
	}
}

// stepReleases unions direct and callee release sets (deferred included).
func (e *engine) stepReleases(fi *fnInfo) bool {
	changed := false
	add := func(c string) {
		if c != "" && !fi.releases[c] {
			fi.releases[c] = true
			changed = true
		}
	}
	// A `defer f.release(...)` unlocks whatever its callee releases, exactly
	// like a direct deferred Unlock. Callee summaries grow during this
	// fixpoint, so the deferred calls are re-consulted every round; the
	// classes land in deferRel so the stepLocks escape check (which runs in
	// a later fixpoint, against the completed set) also credits them.
	for _, call := range fi.deferCalls {
		if s, _ := e.calleeSummary(call); s != nil {
			for _, c := range s.Releases {
				if c != "" && !fi.deferRel[c] {
					fi.deferRel[c] = true
					changed = true
				}
			}
		}
	}
	for c := range fi.deferRel {
		add(c)
	}
	if fi.g != nil {
		for _, b := range fi.g.Blocks {
			for _, call := range cfgscan.Calls(b) {
				if n, cls := LockMethod(e.pass.TypesInfo, call); IsRelease(n) {
					add(cls)
				} else if n == "" {
					if s, _ := e.calleeSummary(call); s != nil {
						for _, c := range s.Releases {
							add(c)
						}
					}
				}
			}
		}
	}
	// Re-sync the summary's slice form immediately: local callees are read
	// through their live FnSummary during the fixpoint, so deferring the
	// sync to the end would hide this function's releases from its callers.
	if changed {
		fi.sum.Releases = sortedKeys(fi.releases)
	}
	return changed
}

// stepBarriers computes BarrierCachedAll/BarrierNTAll: no entry-to-exit
// path avoids a sufficient barrier.
func (e *engine) stepBarriers(fi *fnInfo) bool {
	if fi.g == nil || len(fi.g.Blocks) == 0 {
		return false
	}
	changed := false
	entry := cfgscan.Pos{Block: fi.g.Blocks[0], Index: -1}
	for _, write := range []string{"Write", "WriteNT"} {
		bare := cfgscan.ExitReachableAfter(fi.g, entry, func(c *ast.CallExpr) cfgscan.Class {
			if e.barrierFor(c, write) {
				return cfgscan.Stop
			}
			return cfgscan.Continue
		})
		if !bare {
			if write == "Write" && !fi.sum.BarrierCachedAll {
				fi.sum.BarrierCachedAll, changed = true, true
			}
			if write == "WriteNT" && !fi.sum.BarrierNTAll {
				fi.sum.BarrierNTAll, changed = true, true
			}
		}
	}
	return changed
}

// stepCommitWrite computes CommitBare* (a commit sink reachable from entry
// before a barrier) and WriteBare* (a write still unbarriered at exit).
func (e *engine) stepCommitWrite(fi *fnInfo) bool {
	if fi.g == nil || len(fi.g.Blocks) == 0 {
		return false
	}
	changed := false
	set := func(p *bool) {
		if !*p {
			*p, changed = true, true
		}
	}
	for _, write := range []string{"Write", "WriteNT"} {
		hit := cfgscan.ReachableFromEntry(fi.g, func(c *ast.CallExpr) cfgscan.Class {
			return e.persistClass(c, write)
		})
		if hit != nil {
			if write == "Write" {
				set(&fi.sum.CommitBareCached)
			} else {
				set(&fi.sum.CommitBareNT)
			}
		}
	}
	for _, b := range fi.g.Blocks {
		for i, call := range cfgscan.Calls(b) {
			write := mgspmatch.DeviceMethod(e.pass.TypesInfo, call)
			pending := write == "Write" || write == "WriteNT"
			var s *FnSummary
			if !pending {
				if s, _ = e.calleeSummary(call); s == nil {
					continue
				}
				if !s.WriteBareCached && !s.WriteBareNT {
					continue
				}
			}
			check := func(kind string, dst *bool) {
				if *dst {
					return
				}
				if !pending && !(kind == "Write" && s.WriteBareCached) &&
					!(kind == "WriteNT" && s.WriteBareNT) {
					return
				}
				if cfgscan.ExitReachableAfter(fi.g, cfgscan.Pos{Block: b, Index: i}, func(c *ast.CallExpr) cfgscan.Class {
					if e.barrierFor(c, kind) {
						return cfgscan.Stop
					}
					return cfgscan.Continue
				}) {
					set(dst)
				}
			}
			if pending {
				if write == "Write" {
					check("Write", &fi.sum.WriteBareCached)
				} else {
					check("WriteNT", &fi.sum.WriteBareNT)
				}
			} else {
				check("Write", &fi.sum.WriteBareCached)
				check("WriteNT", &fi.sum.WriteBareNT)
			}
		}
	}
	return changed
}

// stepMediaOp computes transitive media-op reachability.
func (e *engine) stepMediaOp(fi *fnInfo) bool {
	if fi.sum.MediaOp || fi.g == nil {
		return false
	}
	for _, b := range fi.g.Blocks {
		for _, call := range cfgscan.Calls(b) {
			if m := mgspmatch.DeviceMethod(e.pass.TypesInfo, call); m != "" {
				if mgspmatch.DeviceMediaOps[m] {
					fi.sum.MediaOp = true
					return true
				}
				continue
			}
			s, fn := e.calleeSummary(call)
			if s != nil {
				if s.MediaOp {
					fi.sum.MediaOp = true
					return true
				}
				continue
			}
			if e.dynamicCrash(fn) {
				fi.sum.MediaOp = true
				return true
			}
		}
	}
	return false
}

// stepLocks runs the may-held forward dataflow: accumulates transitive
// blocking acquires, escaping acquires, and acquires-while-holding edges.
func (e *engine) stepLocks(fi *fnInfo) bool {
	if fi.g == nil || len(fi.g.Blocks) == 0 {
		return false
	}
	changed := false
	addTo := func(m map[string]bool, c string) {
		if c != "" && !m[c] {
			m[c] = true
			changed = true
		}
	}

	// Block-entry may-held sets, iterated to their own fixpoint.
	in := make(map[*cfg.Block]map[string]bool)
	for _, b := range fi.g.Blocks {
		in[b] = make(map[string]bool)
	}
	transfer := func(b *cfg.Block, record bool) map[string]bool {
		held := make(map[string]bool)
		for c := range in[b] {
			held[c] = true
		}
		for _, call := range cfgscan.Calls(b) {
			n, cls := LockMethod(e.pass.TypesInfo, call)
			switch {
			case IsBlockingAcquire(n) && cls != "":
				addTo(fi.acqBlocking, cls)
				if record {
					for from := range held {
						if e.addEdge(from, cls, fi, call.Pos()) {
							changed = true
						}
					}
				}
				held[cls] = true
			case IsTryAcquire(n) && cls != "":
				held[cls] = true
			case IsRelease(n) && cls != "":
				delete(held, cls)
			case n == "":
				s, _ := e.calleeSummary(call)
				if s == nil {
					continue
				}
				for _, acq := range s.AcqBlocking {
					addTo(fi.acqBlocking, acq)
					if record {
						for from := range held {
							if e.addEdge(from, acq, fi, call.Pos()) {
								changed = true
							}
						}
					}
				}
				for _, esc := range s.AcqEscaping {
					held[esc] = true
				}
				for _, rel := range s.Releases {
					delete(held, rel)
				}
			}
		}
		return held
	}
	for pending := true; pending; {
		pending = false
		for _, b := range fi.g.Blocks {
			out := transfer(b, false)
			for _, s := range b.Succs {
				for c := range out {
					if !in[s][c] {
						in[s][c] = true
						pending = true
					}
				}
			}
		}
	}
	// One recording pass with the converged entry sets.
	for _, b := range fi.g.Blocks {
		transfer(b, true)
	}

	// Escaping acquires: held at some exit with no deferred release.
	for _, b := range fi.g.Blocks {
		for i, call := range cfgscan.Calls(b) {
			n, cls := LockMethod(e.pass.TypesInfo, call)
			var classes []string
			if (IsBlockingAcquire(n) || IsTryAcquire(n)) && cls != "" {
				classes = []string{cls}
			} else if n == "" {
				if s, _ := e.calleeSummary(call); s != nil {
					classes = s.AcqEscaping
				}
			}
			for _, c := range classes {
				if fi.deferRel[c] || fi.acqEscaping[c] {
					continue
				}
				escapes := cfgscan.ExitReachableAfter(fi.g, cfgscan.Pos{Block: b, Index: i}, func(rc *ast.CallExpr) cfgscan.Class {
					if rn, rcls := LockMethod(e.pass.TypesInfo, rc); IsRelease(rn) && rcls == c {
						return cfgscan.Stop
					}
					if rs, _ := e.calleeSummary(rc); rs != nil {
						for _, rel := range rs.Releases {
							if rel == c {
								return cfgscan.Stop
							}
						}
					}
					return cfgscan.Continue
				})
				if escapes {
					addTo(fi.acqEscaping, c)
				}
			}
		}
	}
	// Re-sync the slice form so callers see this function's lock effects
	// through its live summary within the same fixpoint (see stepReleases).
	if changed {
		fi.sum.AcqBlocking = sortedKeys(fi.acqBlocking)
		fi.sum.AcqEscaping = sortedKeys(fi.acqEscaping)
	}
	return changed
}

func (e *engine) addEdge(from, to string, fi *fnInfo, pos token.Pos) bool {
	p := e.pass.Fset.Position(pos)
	ed := Edge{From: from, To: to, Fn: fnName(fi), Pos: fmt.Sprintf("%s:%d", p.Filename, p.Line)}
	for _, have := range e.edges {
		if have.Edge == ed {
			return false
		}
	}
	e.edges = append(e.edges, LocalEdge{Edge: ed, TokPos: pos})
	return true
}

func fnName(fi *fnInfo) string {
	if fi.fn == nil {
		return "func literal"
	}
	if sig, ok := fi.fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := mgspmatch.Named(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fi.fn.Name()
		}
	}
	return fi.fn.Name()
}

// deferredReleases returns the lock classes released by defer statements of
// body — directly, or inside an immediately deferred closure.
func deferredReleases(info *types.Info, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run elsewhere; their defers are theirs
		case *ast.DeferStmt:
			if name, cls := LockMethod(info, n.Call); IsRelease(name) && cls != "" {
				out[cls] = true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if name, cls := LockMethod(info, c); IsRelease(name) && cls != "" {
							out[cls] = true
						}
					}
					return true
				})
			}
			return false
		}
		return true
	})
	return out
}

// deferredCalls returns the calls that run at function exit: each deferred
// call itself, plus every call inside a deferred func literal's body.
// Calls in a defer statement's receiver/argument position run at statement
// time and are already covered by cfgscan.Calls.
func deferredCalls(body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run elsewhere; their defers are theirs
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					if c, ok := m.(*ast.CallExpr); ok {
						out = append(out, c)
					}
					return true
				})
			} else {
				out = append(out, n.Call)
			}
			return false
		}
		return true
	})
	return out
}

// parseOrder parses "A < B < C" into the chained pairs A<B, B<C.
func parseOrder(fset *token.FileSet, d mgspmatch.Directive) []OrderPair {
	var out []OrderPair
	parts := strings.Split(d.Args, "<")
	p := fset.Position(d.Pos)
	pos := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	for i := 0; i+1 < len(parts); i++ {
		before, after := strings.TrimSpace(parts[i]), strings.TrimSpace(parts[i+1])
		if before != "" && after != "" {
			out = append(out, OrderPair{Before: before, After: after, Pos: pos})
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
