// Package mgspmatch holds the shared type- and call-matching helpers used by
// the mgspvet analyzers (persistorder, crashsafe-locks, atomicfield,
// checksum-before-publish), plus the //mgsp: suppression-directive parser.
//
// Matching is by (type name, package-path suffix) rather than by exact import
// path so the analyzers work both on the real tree (mgsp/internal/nvm.Device)
// and on the self-contained fixture packages under each analyzer's testdata
// (for example persistorder.example/nvm.Device). The suffix rule is: the path
// is exactly the element, or ends in "/"+element.
package mgspmatch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PkgPathIs reports whether path is exactly elem or ends in "/"+elem.
func PkgPathIs(path, elem string) bool {
	return path == elem || strings.HasSuffix(path, "/"+elem)
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// IsNamed reports whether t (or *t) is the named type typeName defined in a
// package whose path matches pkgElem per PkgPathIs.
func IsNamed(t types.Type, pkgElem, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && PkgPathIs(n.Obj().Pkg().Path(), pkgElem)
}

// Callee returns the static callee of call, or nil for calls through
// function-valued expressions, interface methods included (those DO resolve
// to the interface's *types.Func).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// MethodOn returns the method name if call invokes a method (by value or
// pointer) on the named type typeName from a package matching pkgElem; it
// returns "" otherwise.
func MethodOn(info *types.Info, call *ast.CallExpr, pkgElem, typeName string) string {
	fn := Callee(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !IsNamed(sig.Recv().Type(), pkgElem, typeName) {
		return ""
	}
	return fn.Name()
}

// DeviceMediaOps is the set of nvm.Device methods that touch the media and
// therefore hit crash-injection fail points under crashtest.
var DeviceMediaOps = map[string]bool{
	"Read": true, "Write": true, "WriteNT": true, "Flush": true,
	"Fence": true, "Persist": true, "Store8": true, "CAS8": true,
}

// DeviceBarriers is the subset of Device methods that act as persist
// barriers: Fence orders prior WriteNT stores; Flush/Persist write back
// cached lines (Persist = Flush + Fence).
var DeviceBarriers = map[string]bool{"Flush": true, "Fence": true, "Persist": true}

// DeviceMethod returns the method name if call is a method call on
// nvm.Device (package-path suffix "nvm", type Device), else "".
func DeviceMethod(info *types.Info, call *ast.CallExpr) string {
	return MethodOn(info, call, "nvm", "Device")
}

// HasSimCtxParam reports whether fn takes a parameter of type *sim.Ctx
// (package-path suffix "sim", type Ctx). In this codebase every operation
// that can issue media ops — and therefore panic at a crash-injection fail
// point — is threaded through a *sim.Ctx for cost accounting, so a
// ctx-taking callee in another package is conservatively a crash point.
func HasSimCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsNamed(sig.Params().At(i).Type(), "sim", "Ctx") {
			return true
		}
	}
	return false
}

// ExprKey returns a stable identity string for a receiver expression, used
// to pair Lock/Unlock calls on the same lock ("fs.mu", "d.mu", ...).
// Selector chains and plain identifiers resolve structurally; anything more
// exotic (index expressions, calls) returns "" and is not tracked.
func ExprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := ExprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return ExprKey(x.X)
	}
	return ""
}

// RecvKey returns the lock-identity key of a method call's receiver, or "".
func RecvKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return ExprKey(sel.X)
}

// ---- //mgsp: directives ----

// Directive names understood by the analyzers. Each suppresses one analyzer
// at one annotated line and should carry a one-line justification:
//
//	//mgsp:deferred-persist <why the barrier lives elsewhere>
//	//mgsp:crash-locked <why the lock cannot leak>
//	//mgsp:unchecksummed-publish <why this store needs no checksum>
//	//mgsp:unaligned-ok <why 32-bit alignment does not apply>
//	//mgsp:atomic-copy-ok <why this value copy is race-free>
const (
	DeferredPersist      = "deferred-persist"
	CrashLocked          = "crash-locked"
	UnchecksummedPublish = "unchecksummed-publish"
	UnalignedOK          = "unaligned-ok"
	AtomicCopyOK         = "atomic-copy-ok"
)

const prefix = "//mgsp:"

// Directives records, per file line, the //mgsp: directive names present
// there. A directive governs the line it is written on; a directive comment
// that has a line to itself additionally governs the line below it, and a
// directive in a function's doc comment governs the whole function.
type Directives struct {
	fset  *token.FileSet
	lines map[token.Position]map[string]bool // Filename+Line only
	funcs []funcSpan
}

type funcSpan struct {
	pos, end token.Pos
	names    map[string]bool
}

func key(p token.Position) token.Position { return token.Position{Filename: p.Filename, Line: p.Line} }

// ParseDirectives scans the files' comments for //mgsp: directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, lines: make(map[token.Position]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				p := key(fset.Position(c.Pos()))
				if d.lines[p] == nil {
					d.lines[p] = make(map[string]bool)
				}
				d.lines[p][name] = true
				// A standalone directive line also governs the next line.
				if fset.Position(cg.Pos()).Line == p.Line {
					next := p
					next.Line++
					if d.lines[next] == nil {
						d.lines[next] = make(map[string]bool)
					}
					d.lines[next][name] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			names := make(map[string]bool)
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, prefix) {
					rest := strings.TrimPrefix(c.Text, prefix)
					name := rest
					if i := strings.IndexAny(rest, " \t"); i >= 0 {
						name = rest[:i]
					}
					names[name] = true
				}
			}
			if len(names) > 0 {
				d.funcs = append(d.funcs, funcSpan{fd.Pos(), fd.End(), names})
			}
		}
	}
	return d
}

// Has reports whether directive name governs pos.
func (d *Directives) Has(pos token.Pos, name string) bool {
	if names, ok := d.lines[key(d.fset.Position(pos))]; ok && names[name] {
		return true
	}
	for _, fs := range d.funcs {
		if fs.pos <= pos && pos < fs.end && fs.names[name] {
			return true
		}
	}
	return false
}
