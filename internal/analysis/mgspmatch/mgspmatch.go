// Package mgspmatch holds the shared type- and call-matching helpers used by
// the mgspvet analyzers (persistorder, crashsafe-locks, atomicfield,
// checksum-before-publish), plus the //mgsp: suppression-directive parser.
//
// Matching is by (type name, package-path suffix) rather than by exact import
// path so the analyzers work both on the real tree (mgsp/internal/nvm.Device)
// and on the self-contained fixture packages under each analyzer's testdata
// (for example persistorder.example/nvm.Device). The suffix rule is: the path
// is exactly the element, or ends in "/"+element.
package mgspmatch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PkgPathIs reports whether path is exactly elem or ends in "/"+elem.
func PkgPathIs(path, elem string) bool {
	return path == elem || strings.HasSuffix(path, "/"+elem)
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// Named unwraps pointers and aliases down to a *types.Named, or nil.
func Named(t types.Type) *types.Named { return namedOf(t) }

// IsNamed reports whether t (or *t) is the named type typeName defined in a
// package whose path matches pkgElem per PkgPathIs.
func IsNamed(t types.Type, pkgElem, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && PkgPathIs(n.Obj().Pkg().Path(), pkgElem)
}

// Callee returns the static callee of call, or nil for calls through
// function-valued expressions, interface methods included (those DO resolve
// to the interface's *types.Func).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// MethodOn returns the method name if call invokes a method (by value or
// pointer) on the named type typeName from a package matching pkgElem; it
// returns "" otherwise.
func MethodOn(info *types.Info, call *ast.CallExpr, pkgElem, typeName string) string {
	fn := Callee(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !IsNamed(sig.Recv().Type(), pkgElem, typeName) {
		return ""
	}
	return fn.Name()
}

// DeviceMediaOps is the set of nvm.Device methods that touch the media and
// therefore hit crash-injection fail points under crashtest.
var DeviceMediaOps = map[string]bool{
	"Read": true, "Write": true, "WriteNT": true, "Flush": true,
	"Fence": true, "Persist": true, "Store8": true, "CAS8": true,
}

// DeviceBarriers is the subset of Device methods that act as persist
// barriers: Fence orders prior WriteNT stores; Flush/Persist write back
// cached lines (Persist = Flush + Fence).
var DeviceBarriers = map[string]bool{"Flush": true, "Fence": true, "Persist": true}

// DeviceMethod returns the method name if call is a method call on
// nvm.Device (package-path suffix "nvm", type Device), else "".
func DeviceMethod(info *types.Info, call *ast.CallExpr) string {
	return MethodOn(info, call, "nvm", "Device")
}

// HasSimCtxParam reports whether fn takes a parameter of type *sim.Ctx
// (package-path suffix "sim", type Ctx). In this codebase every operation
// that can issue media ops — and therefore panic at a crash-injection fail
// point — is threaded through a *sim.Ctx for cost accounting, so a
// ctx-taking callee in another package is conservatively a crash point.
func HasSimCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsNamed(sig.Params().At(i).Type(), "sim", "Ctx") {
			return true
		}
	}
	return false
}

// ExprKey returns a stable identity string for a receiver expression, used
// to pair Lock/Unlock calls on the same lock ("fs.mu", "d.mu", ...).
// Selector chains and plain identifiers resolve structurally; anything more
// exotic (index expressions, calls) returns "" and is not tracked.
func ExprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := ExprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return ExprKey(x.X)
	}
	return ""
}

// RecvKey returns the lock-identity key of a method call's receiver, or "".
func RecvKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return ExprKey(sel.X)
}

// Render returns a best-effort textual identity for an arbitrary expression
// — richer than ExprKey (calls, index expressions, and arithmetic render
// structurally instead of vanishing) but still purely syntactic. Used by the
// twostore analyzer to group store offsets. Unrenderable subexpressions
// become "?".
func Render(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return Render(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return Render(x.X)
	case *ast.BasicLit:
		return x.Value
	case *ast.BinaryExpr:
		return Render(x.X) + x.Op.String() + Render(x.Y)
	case *ast.CallExpr:
		s := Render(x.Fun) + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ","
			}
			s += Render(a)
		}
		return s + ")"
	case *ast.IndexExpr:
		return Render(x.X) + "[" + Render(x.Index) + "]"
	}
	return "?"
}

// FamilyKey returns (family, full) identity strings for a store-offset
// expression. Two offsets belong to the same family when they address fields
// of one record: "base+fieldOff" strips the trailing addend so
// m.off(i)+entCksum and m.off(i)+entLen share family "m.off(i)", while the
// full rendering keeps the field term for field-name classification.
func FamilyKey(e ast.Expr) (family, full string) {
	full = Render(e)
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && (b.Op == token.ADD || b.Op == token.SUB) {
		return Render(b.X), full
	}
	return full, full
}

// ---- //mgsp: directives ----

// Directive names understood by the analyzers. Suppression directives gate
// one analyzer at one annotated line and must carry a one-line
// justification (a justification that stops suppressing anything is itself
// reported by the staleannot pass):
//
//	//mgsp:deferred-persist <why the barrier lives elsewhere>
//	//mgsp:crash-locked <why the lock cannot leak>
//	//mgsp:unchecksummed-publish <why this store needs no checksum>
//	//mgsp:unaligned-ok <why 32-bit alignment does not apply>
//	//mgsp:atomic-copy-ok <why this value copy is race-free>
//	//mgsp:lock-order-ok <why this acquisition cannot deadlock>
//	//mgsp:seqlock-ok <why this section is safe>
//	//mgsp:two-store-ok <why these stores need no ordering>
//
// Declaration directives feed facts into the summary engine instead of
// suppressing diagnostics:
//
//	//mgsp:lock-order A < B < C   (declared partial lock order, package scope)
//	//mgsp:lock-order-self C <why> (intra-class acquisition follows a protocol)
//	//mgsp:seqlock                 (marks an atomic field as a seqlock version)
const (
	DeferredPersist      = "deferred-persist"
	CrashLocked          = "crash-locked"
	UnchecksummedPublish = "unchecksummed-publish"
	UnalignedOK          = "unaligned-ok"
	AtomicCopyOK         = "atomic-copy-ok"
	LockOrderOK          = "lock-order-ok"
	SeqlockOK            = "seqlock-ok"
	TwoStoreOK           = "two-store-ok"

	LockOrder     = "lock-order"
	LockOrderSelf = "lock-order-self"
	LockForbid    = "lock-forbid"
	Seqlock       = "seqlock"
)

// SuppressionDirectives maps each suppression directive name to the
// analyzer it gates; staleannot uses it to decide which directives are
// expected to suppress something.
var SuppressionDirectives = map[string]string{
	DeferredPersist:      "persistorder",
	CrashLocked:          "crashsafelocks",
	UnchecksummedPublish: "checksumpub",
	UnalignedOK:          "atomicfield",
	AtomicCopyOK:         "atomicfield",
	LockOrderOK:          "lockorder",
	SeqlockOK:            "seqlockver",
	TwoStoreOK:           "twostore",
}

// DeclarationDirectives are the non-suppressing directive names (facts for
// the summary engine); they are exempt from staleness checking.
var DeclarationDirectives = map[string]bool{
	LockOrder:     true,
	LockOrderSelf: true,
	LockForbid:    true,
	Seqlock:       true,
}

const prefix = "//mgsp:"

// Directive is one parsed //mgsp: comment: its position, name, and the
// remainder of the comment line (justification text, or declaration args).
type Directive struct {
	Pos  token.Pos
	Name string
	Args string
}

// Directives records, per file line, the //mgsp: directives present there.
// A directive governs the line it is written on; a directive comment that
// has a line to itself additionally governs the line below it, and a
// directive in a function's doc comment governs the whole function.
//
// Suppress consultations are recorded per directive so the staleannot pass
// can report annotations that no longer suppress anything.
type Directives struct {
	fset    *token.FileSet
	entries []Directive
	used    []bool
	lines   map[token.Position][]int // Filename+Line -> entry indices
	funcs   []funcSpan
}

type funcSpan struct {
	pos, end token.Pos
	idx      []int
}

func key(p token.Position) token.Position { return token.Position{Filename: p.Filename, Line: p.Line} }

func parseOne(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	name, args := rest, ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	return Directive{Pos: c.Pos(), Name: name, Args: args}, true
}

// ParseDirectives scans the files' comments for //mgsp: directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, lines: make(map[token.Position][]int)}
	seen := make(map[token.Pos]int) // comment pos -> entry index (doc comments appear twice)
	add := func(c *ast.Comment) (int, bool) {
		if i, ok := seen[c.Pos()]; ok {
			return i, true
		}
		dir, ok := parseOne(c)
		if !ok {
			return 0, false
		}
		d.entries = append(d.entries, dir)
		d.used = append(d.used, false)
		i := len(d.entries) - 1
		seen[c.Pos()] = i
		return i, true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i, ok := add(c)
				if !ok {
					continue
				}
				p := key(fset.Position(c.Pos()))
				d.lines[p] = append(d.lines[p], i)
				// A standalone directive line also governs the next line.
				if fset.Position(cg.Pos()).Line == p.Line {
					next := p
					next.Line++
					d.lines[next] = append(d.lines[next], i)
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var idx []int
			for _, c := range fd.Doc.List {
				if i, ok := add(c); ok {
					idx = append(idx, i)
				}
			}
			if len(idx) > 0 {
				d.funcs = append(d.funcs, funcSpan{fd.Pos(), fd.End(), idx})
			}
		}
	}
	return d
}

// matches returns the indices of directives named name governing pos.
func (d *Directives) matches(pos token.Pos, name string) []int {
	var out []int
	for _, i := range d.lines[key(d.fset.Position(pos))] {
		if d.entries[i].Name == name {
			out = append(out, i)
		}
	}
	for _, fs := range d.funcs {
		if fs.pos <= pos && pos < fs.end {
			for _, i := range fs.idx {
				if d.entries[i].Name == name {
					out = append(out, i)
				}
			}
		}
	}
	return out
}

// Has reports whether directive name governs pos, without recording a use.
func (d *Directives) Has(pos token.Pos, name string) bool {
	return len(d.matches(pos, name)) > 0
}

// Suppress reports whether directive name governs pos and, when it does,
// records that the governing annotation suppressed a real finding. Analyzers
// must call it only after establishing that a diagnostic would otherwise be
// reported — that is what keeps staleness detection honest.
func (d *Directives) Suppress(pos token.Pos, name string) bool {
	idx := d.matches(pos, name)
	for _, i := range idx {
		d.used[i] = true
	}
	return len(idx) > 0
}

// DeclsAt returns the directives named name that govern pos, with their
// arguments (used for position-scoped declarations like lock-forbid).
func (d *Directives) DeclsAt(pos token.Pos, name string) []Directive {
	var out []Directive
	for _, i := range d.matches(pos, name) {
		out = append(out, d.entries[i])
	}
	return out
}

// Decls returns every directive with the given name (declaration
// directives: lock-order, lock-order-self, lock-forbid, seqlock).
func (d *Directives) Decls(name string) []Directive {
	var out []Directive
	for _, e := range d.entries {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// All returns every parsed directive.
func (d *Directives) All() []Directive {
	return append([]Directive(nil), d.entries...)
}

// Used returns the positions of directives that recorded a Suppress hit —
// staleannot unions these across the per-analyzer Directives copies (every
// copy parses the same files, so positions align).
func (d *Directives) Used() map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	for i, e := range d.entries {
		if d.used[i] {
			out[e.Pos] = true
		}
	}
	return out
}

// Unused returns the suppression directives that recorded no Suppress hit.
func (d *Directives) Unused() []Directive {
	var out []Directive
	for i, e := range d.entries {
		if !d.used[i] && SuppressionDirectives[e.Name] != "" {
			out = append(out, e)
		}
	}
	return out
}
