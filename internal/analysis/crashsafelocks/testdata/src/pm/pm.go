// Package pm is a minimal stand-in for a sibling package (pmfile/alloc
// shape): exported operations take *sim.Ctx and issue media ops, so a
// cross-package ctx-taking call is conservatively a crash point.
package pm

import "sim"

// File mirrors pmfile.File.
type File struct{}

// SetSize persists the size word — a media op in the real tree.
func (f *File) SetSize(ctx *sim.Ctx, size int64) {}

// Slot is ctx-free and volatile: not a crash point.
func (f *File) Slot() int { return 0 }
