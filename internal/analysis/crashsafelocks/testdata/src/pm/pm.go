// Package pm is a minimal stand-in for a sibling package (pmfile/alloc
// shape): SetSize really stores to media, so its exported effect summary —
// not the ctx-parameter approximation — is what makes cross-package calls
// crash points.
package pm

import (
	"nvm"
	"sim"
)

// File mirrors pmfile.File.
type File struct{ dev *nvm.Device }

// SetSize persists the size word — a media op the summary engine records.
func (f *File) SetSize(ctx *sim.Ctx, size int64) {
	f.dev.Store8(ctx, 0, uint64(size))
}

// Slot is ctx-free and volatile: not a crash point.
func (f *File) Slot() int { return 0 }
