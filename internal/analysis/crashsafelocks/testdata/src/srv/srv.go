// Package srv reconstructs internal/server's batcher shapes for the
// crashsafe-locks golden corpus. The group-commit flush (WriteMulti) and
// the namespace calls (Open/Create/Close) take ctx and reach media, so
// under crashtest they can panic at a fail point — shard state locks held
// across them leak to every other connection unless the unlock is deferred.
// Unlike the `a` corpus these locks are plain sync mutexes (the server's
// goroutines are real, not simulated workers); the discipline is the same.
package srv

import (
	"sync"

	"core"
	"sim"
)

type batcher struct {
	mu   sync.Mutex
	open map[string]*core.File
	f    *core.File
	fs   *core.FS
}

// badFlushUnderLock: the lock-held-across-batch-flush shape — if the
// group commit's media op panics mid-batch, b.mu stays locked and every
// later open/close on the shard deadlocks behind a dead batcher.
func (b *batcher) badFlushUnderLock(ctx *sim.Ctx, ups []core.Update) {
	b.mu.Lock() // want `b\.mu\.Lock held across potential crash point WriteMulti without a deferred unlock`
	b.f.WriteMulti(ctx, ups)
	b.mu.Unlock()
}

// badOpenUnderLock: first-open-wins insertion that holds the table lock
// across the namespace call.
func (b *batcher) badOpenUnderLock(ctx *sim.Ctx, key string) {
	b.mu.Lock() // want `b\.mu\.Lock held across potential crash point Open without a deferred unlock`
	if b.open[key] == nil {
		f, _ := b.fs.Open(ctx, key)
		b.open[key] = f
	}
	b.mu.Unlock()
}

// goodDeferredOpen: the server's openFile shape — the deferred unlock runs
// even when Open panics at a fail point.
func (b *batcher) goodDeferredOpen(ctx *sim.Ctx, key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open[key] == nil {
		f, _ := b.fs.Open(ctx, key)
		b.open[key] = f
	}
}

// goodUnlockBeforeFlush: the server's release/closeAll shape — mutate the
// table under the lock, drop it, then touch media with no lock held.
func (b *batcher) goodUnlockBeforeFlush(ctx *sim.Ctx, key string) {
	b.mu.Lock()
	f := b.open[key]
	delete(b.open, key)
	b.mu.Unlock()
	if f != nil {
		f.Close(ctx)
	}
}
