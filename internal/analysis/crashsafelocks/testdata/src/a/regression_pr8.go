// Regression: reconstruction of the per-worker cursor-publish shape added
// with the many-core metadata log (PR 8). publishHW serializes cursor
// writers for one home area behind a plain sync.Mutex, then calls
// writeCursor — a package-local helper whose WriteNT+Fence are media ops,
// so a crash-injection panic inside it would leak the publish mutex and
// wedge every later claim in that area. The analyzer must flag the
// non-deferred form through the local-helper call and accept the shipped
// deferred form (including its early returns under the lock).
package a

import (
	"sync"

	"nvm"
	"sim"
)

type areaLog struct {
	pubMu sync.Mutex
	dev   *nvm.Device
	hw    uint64
}

// writeCursor is the fenced cursor encoder: it touches media directly, so
// it is a crash point for every caller.
func (m *areaLog) writeCursor(ctx *sim.Ctx, buf []byte, off int64) {
	m.dev.WriteNT(ctx, buf, off)
	m.dev.Fence(ctx)
}

// publishCursorBad holds the area's publish mutex across the cursor media
// write with a trailing unlock: a fail-point panic inside writeCursor
// leaves pubMu locked forever.
func (m *areaLog) publishCursorBad(ctx *sim.Ctx, buf []byte, s uint64) {
	m.pubMu.Lock() // want `m\.pubMu\.Lock held across potential crash point writeCursor without a deferred unlock`
	if s > m.hw {
		m.hw = s
		m.writeCursor(ctx, buf, 0)
	}
	m.pubMu.Unlock()
}

// publishCursorGood is the shipped publishHW shape: deferred unlock, then
// the double-checked monotone publish — early returns under the lock are
// fine because the deferred unlock covers every exit, panic included.
func (m *areaLog) publishCursorGood(ctx *sim.Ctx, buf []byte, s uint64) {
	m.pubMu.Lock()
	defer m.pubMu.Unlock()
	if s <= m.hw {
		return
	}
	m.hw = s
	m.writeCursor(ctx, buf, 0)
}
