// Regression: reconstruction of the mutex-leak shape fixed in the snapshot
// PR (PR 3). DropSnapshot held fs.snapMu while releasing shadow pages
// through a package-local helper that issues media ops; a crash-injection
// panic inside the helper leaked the mutex and deadlocked every later
// snapshot operation. The analyzer must catch the pre-fix form through the
// local-helper call (transitive crash-point closure), and accept the
// post-fix deferred-closure form.
package a

import (
	"nvm"
	"sim"
)

type snapFS struct {
	snapMu sim.Mutex
	dev    *nvm.Device
	snaps  map[uint64]int64
}

// releasePages is the noteHighWater-like package-local helper: it touches
// media directly, so it is a crash point for every caller.
func (f *snapFS) releasePages(ctx *sim.Ctx, root int64) {
	f.dev.Store8(ctx, root, 0)
	f.dev.Fence(ctx)
}

// dropSnapshotPreFix is the shape as it existed before PR 3's fix.
func (f *snapFS) dropSnapshotPreFix(ctx *sim.Ctx, id uint64) bool {
	f.snapMu.Lock(ctx) // want `f\.snapMu\.Lock held across potential crash point releasePages without a deferred unlock`
	root, ok := f.snaps[id]
	if !ok {
		f.snapMu.Unlock(ctx)
		return false
	}
	delete(f.snaps, id)
	f.releasePages(ctx, root)
	f.snapMu.Unlock(ctx)
	return true
}

// dropSnapshotPostFix is the shape after PR 3's fix: the map surgery happens
// under a tight deferred-unlock closure, and the media work runs after the
// lock is released.
func (f *snapFS) dropSnapshotPostFix(ctx *sim.Ctx, id uint64) bool {
	root, ok := func() (int64, bool) {
		f.snapMu.Lock(ctx)
		defer f.snapMu.Unlock(ctx)
		r, ok := f.snaps[id]
		if ok {
			delete(f.snaps, id)
		}
		return r, ok
	}()
	if !ok {
		return false
	}
	f.releasePages(ctx, root)
	return true
}
