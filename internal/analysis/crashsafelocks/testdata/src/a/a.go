// Package a holds the crashsafe-locks golden cases: locks held across
// media ops (which may panic under crashtest) with and without a deferred
// unlock.
package a

import (
	"nvm"
	"pm"
	"sim"
)

type shared struct {
	mu     sim.Mutex
	rw     sim.RWMutex
	sizeMu sim.Mutex
	dev    *nvm.Device
	pf     *pm.File
	n      int64
}

// badDirectMedia: the lock leaks if Store8 panics at a fail point.
func badDirectMedia(ctx *sim.Ctx, s *shared) {
	s.mu.Lock(ctx) // want `s\.mu\.Lock held across potential crash point Store8 without a deferred unlock`
	s.dev.Store8(ctx, 0, 1)
	s.mu.Unlock(ctx)
}

// badCrossPackage: SetSize takes ctx in another package — conservatively a
// crash point (it persists the size word). This is the WriteAt size-publish
// shape fixed in this PR.
func badCrossPackage(ctx *sim.Ctx, s *shared, end int64) {
	if end > s.n {
		s.sizeMu.Lock(ctx) // want `s\.sizeMu\.Lock held across potential crash point SetSize without a deferred unlock`
		if end > s.n {
			s.n = end
			s.pf.SetSize(ctx, end)
		}
		s.sizeMu.Unlock(ctx)
	}
}

// badReadLock: read locks leak the same way.
func badReadLock(ctx *sim.Ctx, s *shared, buf []byte) {
	s.rw.RLock(ctx) // want `s\.rw\.RLock held across potential crash point Read without a deferred unlock`
	s.dev.Read(ctx, buf, 0)
	s.rw.RUnlock(ctx)
}

// goodDeferred: the canonical shape — defer runs even when the media op
// panics, so the lock cannot leak.
func goodDeferred(ctx *sim.Ctx, s *shared) {
	s.mu.Lock(ctx)
	defer s.mu.Unlock(ctx)
	s.dev.Store8(ctx, 0, 1)
}

// goodLockedClosure: the fixed WriteAt/DropSnapshot shape — a closure keeps
// the deferred unlock tight around the media-op section.
func goodLockedClosure(ctx *sim.Ctx, s *shared, end int64) {
	if end > s.n {
		func() {
			s.sizeMu.Lock(ctx)
			defer s.sizeMu.Unlock(ctx)
			if end > s.n {
				s.n = end
				s.pf.SetSize(ctx, end)
			}
		}()
	}
}

// goodDeferredClosureUnlock: an unlock inside an immediately deferred
// closure also runs on panic.
func goodDeferredClosureUnlock(ctx *sim.Ctx, s *shared) {
	s.mu.Lock(ctx)
	defer func() {
		s.mu.Unlock(ctx)
	}()
	s.dev.Store8(ctx, 0, 1)
}

// goodNoMediaOp: branch unlocks with only volatile work between are fine.
func goodNoMediaOp(ctx *sim.Ctx, s *shared, hit bool) {
	s.mu.Lock(ctx)
	if hit {
		s.n++
		s.mu.Unlock(ctx)
		return
	}
	s.mu.Unlock(ctx)
	s.dev.Store8(ctx, 0, 1) // after release: fine
}

// goodCtxFreeCallee: Slot takes no ctx — volatile, not a crash point.
func goodCtxFreeCallee(ctx *sim.Ctx, s *shared) {
	s.mu.Lock(ctx)
	s.n = int64(s.pf.Slot())
	s.mu.Unlock(ctx)
}

// goodHandoff: acquire-and-escape (the lockOp/release shape) — no unlock in
// this function means the caller owns the release; not tracked.
func goodHandoff(ctx *sim.Ctx, s *shared) *shared {
	s.mu.Lock(ctx)
	s.dev.Store8(ctx, 0, 1)
	return s
}

// goodAnnotated: explicit suppression with justification.
func goodAnnotated(ctx *sim.Ctx, s *shared) {
	s.mu.Lock(ctx) //mgsp:crash-locked single-threaded mount path, no concurrent waiters
	s.dev.Store8(ctx, 0, 1)
	s.mu.Unlock(ctx)
}
