// Package cachecorpus reconstructs internal/cache's frame-latch shapes for
// the crashsafe-locks golden corpus. Frame sets are guarded by plain sync
// mutexes held only for DRAM pointer swaps; the drain path must collect
// frame payloads under the latch, release it, and only then touch media —
// a latch held across a media op would, under crash injection, leak to
// every optimistic reader's latched fallback and wedge the set forever.
package cachecorpus

import (
	"sync"

	"core"
	"nvm"
	"sim"
)

type set struct {
	mu     sync.Mutex
	bufs   [][]byte
	blocks []int64
}

type pool struct {
	sets []*set
	dev  *nvm.Device
	f    *core.File
}

// badLatchedMissFill: a read miss that fills the frame straight from media
// while holding the set latch — the crash panic leaves s.mu locked and every
// reader's latched fallback on this set deadlocks behind a dead filler.
func (p *pool) badLatchedMissFill(ctx *sim.Ctx, s *set, off int64) {
	s.mu.Lock() // want `s\.mu\.Lock held across potential crash point Read without a deferred unlock`
	buf := make([]byte, 4096)
	p.dev.Read(ctx, buf, off)
	s.bufs = append(s.bufs, buf)
	s.mu.Unlock()
}

// badLatchedDrain: draining a set's dirty frames through the shadow-log
// commit path with the latch still held.
func (p *pool) badLatchedDrain(ctx *sim.Ctx, s *set, ups []core.Update) {
	s.mu.Lock() // want `s\.mu\.Lock held across potential crash point WriteMulti without a deferred unlock`
	p.f.WriteMulti(ctx, ups)
	s.bufs = nil
	s.mu.Unlock()
}

// goodCollectThenDrain: the flusher's actual discipline — snapshot the dirty
// payloads under the latch, drop it, then issue the media batch with no
// frame lock held.
func (p *pool) goodCollectThenDrain(ctx *sim.Ctx, s *set) {
	s.mu.Lock()
	ups := make([]core.Update, len(s.bufs))
	for i, b := range s.bufs {
		ups[i] = core.Update{Off: s.blocks[i] * 4096, Data: b}
	}
	s.mu.Unlock()
	p.f.WriteMulti(ctx, ups)
}

// goodDeferredFill: if a fill must hold the latch (installing into a fixed
// way), the unlock is deferred so the crash panic releases it on unwind.
func (p *pool) goodDeferredFill(ctx *sim.Ctx, s *set, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 4096)
	p.dev.Read(ctx, buf, off)
	s.bufs = append(s.bufs, buf)
}
