// Package core is a minimal stand-in for mgsp/internal/core's handle
// surface as the server sees it: ctx-taking cross-package calls, which the
// analyzer conservatively treats as crash points (they reach media).
package core

import "sim"

// Update mirrors core.Update.
type Update struct {
	Off  int64
	Data []byte
}

// File mirrors the core handle's multi-range write surface.
type File struct{}

func (f *File) WriteMulti(ctx *sim.Ctx, ups []Update) error { return nil }
func (f *File) Close(ctx *sim.Ctx) error                    { return nil }

// FS mirrors the namespace surface.
type FS struct{}

func (fs *FS) Open(ctx *sim.Ctx, name string) (*File, error)   { return nil, nil }
func (fs *FS) Create(ctx *sim.Ctx, name string) (*File, error) { return nil, nil }
