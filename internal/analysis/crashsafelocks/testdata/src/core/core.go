// Package core is a minimal stand-in for mgsp/internal/core's handle
// surface as the server sees it: the exported operations carry real media
// ops, so the summary engine exports MediaOp facts and the analyzer
// classifies cross-package calls as crash points interprocedurally — not by
// the ctx-parameter approximation, which is reserved for summary-less
// dynamic dispatch.
package core

import (
	"nvm"
	"sim"
)

// Update mirrors core.Update.
type Update struct {
	Off  int64
	Data []byte
}

// File mirrors the core handle's multi-range write surface.
type File struct{ dev *nvm.Device }

func (f *File) WriteMulti(ctx *sim.Ctx, ups []Update) error {
	for _, u := range ups {
		f.dev.Write(ctx, u.Data, u.Off)
		f.dev.Persist(ctx, u.Off, len(u.Data))
	}
	return nil
}

func (f *File) Close(ctx *sim.Ctx) error {
	f.dev.Persist(ctx, 0, 8)
	return nil
}

// FS mirrors the namespace surface.
type FS struct{ dev *nvm.Device }

func (fs *FS) Open(ctx *sim.Ctx, name string) (*File, error) {
	var hdr [32]byte
	fs.dev.Read(ctx, hdr[:], 0)
	return &File{dev: fs.dev}, nil
}

func (fs *FS) Create(ctx *sim.Ctx, name string) (*File, error) {
	var ent [32]byte
	fs.dev.WriteNT(ctx, ent[:], 64)
	fs.dev.Fence(ctx)
	return &File{dev: fs.dev}, nil
}

// Stat is ctx-taking but media-free: its exported (empty) summary proves to
// callers that it cannot crash, where the old approximation flagged it.
func (fs *FS) Stat(ctx *sim.Ctx, name string) int { return 0 }
