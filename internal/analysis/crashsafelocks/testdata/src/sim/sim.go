// Package sim is a minimal stand-in for mgsp/internal/sim: the analyzers
// match types by (name, package-path suffix), so this fixture exercises the
// same code paths as the real tree.
package sim

// Ctx mirrors sim.Ctx.
type Ctx struct{ ID int }

// Mutex mirrors sim.Mutex: a ctx-charged lock whose Lock/Unlock take the
// worker context for cost accounting (and are therefore NOT crash points).
type Mutex struct{}

func (m *Mutex) Lock(ctx *Ctx)         {}
func (m *Mutex) TryLock(ctx *Ctx) bool { return true }
func (m *Mutex) Unlock(ctx *Ctx)       {}

// RWMutex mirrors sim.RWMutex.
type RWMutex struct{}

func (rw *RWMutex) Lock(ctx *Ctx)    {}
func (rw *RWMutex) Unlock(ctx *Ctx)  {}
func (rw *RWMutex) RLock(ctx *Ctx)   {}
func (rw *RWMutex) RUnlock(ctx *Ctx) {}
