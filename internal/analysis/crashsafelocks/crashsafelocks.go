// Package crashsafelocks defines an analyzer for the lock discipline that
// PR 3's torture harness enforced at runtime: under crashtest, every media
// op can panic (a simulated crash unwinds the stack), so a mutex or MGL
// lock must never be held across a media op unless its unlock is deferred —
// otherwise the panic leaks the lock to the surviving workers. PR 3 fixed
// three such leaks (directory.create, DropSnapshot x2) found only by a
// 200-point torture sweep; this analyzer catches the shape at vet time.
//
// A "crash point" is classified by the summary engine (DESIGN.md §15): a
// direct nvm.Device media-op call, or a call to any function — same package
// or not — whose effect summary says it transitively performs one. Only a
// callee with no summary at all (an interface method, or a function behind
// dynamic dispatch) falls back to the *sim.Ctx-parameter approximation.
// Locks are recognized by method name (Lock/RLock/LockLazy acquire,
// Unlock/RUnlock release) paired by receiver expression. A Lock whose
// release is neither in this function (by receiver) nor in a callee (by
// lock class, per the callee's Releases summary) is an intentional
// acquire-and-escape handoff (e.g. lockOp/release) and is not tracked.
// Suppress a finding with //mgsp:crash-locked <justification>.
package crashsafelocks

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/vetreport"
)

const doc = `check that locks are not held across crash-injection points without a deferred unlock

Under crashtest a media op may panic mid-operation; a non-deferred unlock on
the same path then leaks the lock. Use defer, or a locked closure around the
media-op section. Suppress with //mgsp:crash-locked <justification>.`

var Analyzer = &analysis.Analyzer{
	Name:       "crashsafelocks",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer, summary.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

func isAcquire(name string) bool { return summary.IsBlockingAcquire(name) }
func isRelease(name string) bool { return summary.IsRelease(name) }

// lockMethod returns the method name if call is any acquire/release lock
// method call, with a non-empty receiver key.
func lockMethod(info *types.Info, call *ast.CallExpr) (name, recv string) {
	fn := mgspmatch.Callee(info, call)
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	n := fn.Name()
	if !isAcquire(n) && !isRelease(n) {
		return "", ""
	}
	return n, mgspmatch.RecvKey(call)
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	if mgspmatch.PkgPathIs(pass.Pkg.Path(), "nvm") ||
		mgspmatch.PkgPathIs(pass.Pkg.Path(), "sim") {
		// The device and simulator implement the crash machinery itself.
		return dirs, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)

	// releasesClass reports whether call's callee transitively releases the
	// lock class cls (a release helper standing in for a direct Unlock).
	releasesClass := func(c *ast.CallExpr, cls string) bool {
		if cls == "" {
			return false
		}
		s := sum.CallSummary(c)
		if s == nil {
			return false
		}
		for _, rel := range s.Releases {
			if rel == cls {
				return true
			}
		}
		return false
	}

	check := func(g *cfg.CFG, deferred map[string]bool) {
		if g == nil {
			return
		}
		// Receivers with a non-deferred release in this function — directly,
		// or through a callee whose summary releases the receiver's lock
		// class. Acquires of anything else are handoffs to the caller.
		released := make(map[string]bool)
		classOf := make(map[string]string)
		for _, b := range g.Blocks {
			for _, c := range cfgscan.Calls(b) {
				if n, recv := lockMethod(pass.TypesInfo, c); recv != "" {
					if isRelease(n) {
						released[recv] = true
					}
					if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
						classOf[recv] = summary.LockClass(pass.TypesInfo, sel.X)
					}
				}
			}
		}
		for _, b := range g.Blocks {
			for i, call := range cfgscan.Calls(b) {
				name, recv := lockMethod(pass.TypesInfo, call)
				if !isAcquire(name) || recv == "" || deferred[recv] {
					continue
				}
				cls := classOf[recv]
				if !released[recv] {
					// No local unlock: still tracked when a callee releases
					// the class on this function's behalf; otherwise handoff.
					calleeReleases := false
					for _, b2 := range g.Blocks {
						for _, c2 := range cfgscan.Calls(b2) {
							if releasesClass(c2, cls) {
								calleeReleases = true
							}
						}
					}
					if !calleeReleases {
						continue
					}
				}
				hit := cfgscan.ReachableAfter(g, cfgscan.Pos{Block: b, Index: i}, func(c *ast.CallExpr) cfgscan.Class {
					if n, r := lockMethod(pass.TypesInfo, c); isRelease(n) && r == recv {
						return cfgscan.Stop
					}
					if releasesClass(c, cls) {
						return cfgscan.Stop
					}
					if sum.IsCrashPoint(c) {
						return cfgscan.Hit
					}
					return cfgscan.Continue
				})
				if hit == nil {
					continue
				}
				what := "media op"
				if fn := mgspmatch.Callee(pass.TypesInfo, hit); fn != nil {
					what = fn.Name()
				}
				msg := fmt.Sprintf("%s.%s held across potential crash point %s without a deferred unlock: a crash-injection panic leaks the lock; defer %s.Unlock or wrap the section in a locked closure",
					recv, name, what, recv)
				suppressed := dirs.Suppress(call.Pos(), mgspmatch.CrashLocked)
				vetreport.Report(pass, sum.ReportPath, call.Pos(), msg, suppressed)
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					check(cfgs.FuncDecl(n), deferredUnlocks(pass.TypesInfo, n.Body))
				}
			case *ast.FuncLit:
				check(cfgs.FuncLit(n), deferredUnlocks(pass.TypesInfo, n.Body))
			}
			return true
		})
	}
	return dirs, nil
}

// deferredUnlocks returns the receiver keys released by defer statements of
// body (directly, or inside an immediately deferred closure), excluding
// defers of nested function literals that are not themselves the deferred
// call.
func deferredUnlocks(info *types.Info, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run elsewhere; their defers are theirs
		case *ast.DeferStmt:
			if name, recv := lockMethod(info, n.Call); isRelease(name) && recv != "" {
				out[recv] = true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// defer func() { ...; mu.Unlock() }() — releases at exit.
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if name, recv := lockMethod(info, c); isRelease(name) && recv != "" {
							out[recv] = true
						}
					}
					return true
				})
			}
			return false
		}
		return true
	})
	return out
}
