// Package crashsafelocks defines an analyzer for the lock discipline that
// PR 3's torture harness enforced at runtime: under crashtest, every media
// op can panic (a simulated crash unwinds the stack), so a mutex or MGL
// lock must never be held across a media op unless its unlock is deferred —
// otherwise the panic leaks the lock to the surviving workers. PR 3 fixed
// three such leaks (directory.create, DropSnapshot x2) found only by a
// 200-point torture sweep; this analyzer catches the shape at vet time.
//
// A "crash point" is (a) a direct nvm.Device media-op call, (b) a call to a
// same-package function that transitively performs one, or (c) a call into
// another non-sim/non-obs package that takes a *sim.Ctx parameter — in this
// codebase ctx is threaded precisely through the operations that can issue
// media ops. Locks are recognized by method name (Lock/RLock acquire,
// Unlock/RUnlock release) paired by receiver expression. A Lock with no
// same-function Unlock on the same receiver is an intentional
// acquire-and-escape handoff (e.g. lockOp/release) and is not tracked.
// Suppress a finding with //mgsp:crash-locked <justification>.
package crashsafelocks

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
)

const doc = `check that locks are not held across crash-injection points without a deferred unlock

Under crashtest a media op may panic mid-operation; a non-deferred unlock on
the same path then leaks the lock. Use defer, or a locked closure around the
media-op section. Suppress with //mgsp:crash-locked <justification>.`

var Analyzer = &analysis.Analyzer{
	Name:     "crashsafelocks",
	Doc:      doc,
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

func isAcquire(name string) bool { return name == "Lock" || name == "RLock" }
func isRelease(name string) bool { return name == "Unlock" || name == "RUnlock" }

// lockMethod returns the method name if call is any Lock/RLock/Unlock/
// RUnlock method call, with a non-empty receiver key.
func lockMethod(info *types.Info, call *ast.CallExpr) (name, recv string) {
	fn := mgspmatch.Callee(info, call)
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	n := fn.Name()
	if !isAcquire(n) && !isRelease(n) {
		return "", ""
	}
	return n, mgspmatch.RecvKey(call)
}

func run(pass *analysis.Pass) (interface{}, error) {
	if mgspmatch.PkgPathIs(pass.Pkg.Path(), "nvm") ||
		mgspmatch.PkgPathIs(pass.Pkg.Path(), "sim") {
		// The device and simulator implement the crash machinery itself.
		return nil, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	crashFns := localCrashFuncs(pass)

	// isCrashPoint classifies one call as able to panic at a crash-injection
	// fail point.
	isCrashPoint := func(c *ast.CallExpr) bool {
		if m := mgspmatch.DeviceMethod(pass.TypesInfo, c); m != "" {
			return mgspmatch.DeviceMediaOps[m]
		}
		fn := mgspmatch.Callee(pass.TypesInfo, c)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if isAcquire(fn.Name()) || isRelease(fn.Name()) || fn.Name() == "TryLock" ||
			fn.Name() == "TryRLock" || fn.Name() == "TryLockHint" || fn.Name() == "LockLazy" {
			return false // lock ops take ctx for cost accounting only
		}
		if fn.Pkg() == pass.Pkg {
			return crashFns[fn]
		}
		p := fn.Pkg().Path()
		if mgspmatch.PkgPathIs(p, "sim") || mgspmatch.PkgPathIs(p, "obs") {
			return false
		}
		return mgspmatch.HasSimCtxParam(fn)
	}

	check := func(g *cfg.CFG, deferred map[string]bool) {
		if g == nil {
			return
		}
		// Receivers with at least one non-deferred release in this function:
		// only those locks are tracked; acquire-without-release is a handoff
		// to the caller, which this intra-procedural check cannot follow.
		released := make(map[string]bool)
		for _, b := range g.Blocks {
			for _, c := range cfgscan.Calls(b) {
				if n, recv := lockMethod(pass.TypesInfo, c); isRelease(n) && recv != "" {
					released[recv] = true
				}
			}
		}
		for _, b := range g.Blocks {
			for i, call := range cfgscan.Calls(b) {
				name, recv := lockMethod(pass.TypesInfo, call)
				if !isAcquire(name) || recv == "" || deferred[recv] || !released[recv] {
					continue
				}
				if dirs.Has(call.Pos(), mgspmatch.CrashLocked) {
					continue
				}
				hit := cfgscan.ReachableAfter(g, cfgscan.Pos{Block: b, Index: i}, func(c *ast.CallExpr) cfgscan.Class {
					if n, r := lockMethod(pass.TypesInfo, c); isRelease(n) && r == recv {
						return cfgscan.Stop
					}
					if isCrashPoint(c) {
						return cfgscan.Hit
					}
					return cfgscan.Continue
				})
				if hit != nil {
					what := "media op"
					if fn := mgspmatch.Callee(pass.TypesInfo, hit); fn != nil {
						what = fn.Name()
					}
					pass.Report(analysis.Diagnostic{
						Pos: call.Pos(),
						Message: fmt.Sprintf("%s.%s held across potential crash point %s without a deferred unlock: a crash-injection panic leaks the lock; defer %s.Unlock or wrap the section in a locked closure",
							recv, name, what, recv),
					})
				}
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					check(cfgs.FuncDecl(n), deferredUnlocks(pass.TypesInfo, n.Body))
				}
			case *ast.FuncLit:
				check(cfgs.FuncLit(n), deferredUnlocks(pass.TypesInfo, n.Body))
			}
			return true
		})
	}
	return nil, nil
}

// deferredUnlocks returns the receiver keys released by defer statements of
// body (directly, or inside an immediately deferred closure), excluding
// defers of nested function literals that are not themselves the deferred
// call.
func deferredUnlocks(info *types.Info, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run elsewhere; their defers are theirs
		case *ast.DeferStmt:
			if name, recv := lockMethod(info, n.Call); isRelease(name) && recv != "" {
				out[recv] = true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// defer func() { ...; mu.Unlock() }() — releases at exit.
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if name, recv := lockMethod(info, c); isRelease(name) && recv != "" {
							out[recv] = true
						}
					}
					return true
				})
			}
			return false
		}
		return true
	})
	return out
}

// localCrashFuncs computes the set of package-local functions that
// transitively perform a media op (directly on nvm.Device, or by calling
// into a ctx-taking function of another non-sim/non-obs package).
func localCrashFuncs(pass *analysis.Pass) map[*types.Func]bool {
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
	}
	crash := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func) // caller -> local callees
	for fn, body := range bodies {
		ast.Inspect(body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m := mgspmatch.DeviceMethod(pass.TypesInfo, c); mgspmatch.DeviceMediaOps[m] {
				crash[fn] = true
				return true
			}
			callee := mgspmatch.Callee(pass.TypesInfo, c)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg() == pass.Pkg {
				calls[fn] = append(calls[fn], callee)
				return true
			}
			p := callee.Pkg().Path()
			if mgspmatch.PkgPathIs(p, "sim") || mgspmatch.PkgPathIs(p, "obs") {
				return true
			}
			if mgspmatch.HasSimCtxParam(callee) {
				crash[fn] = true
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if crash[fn] {
				continue
			}
			for _, c := range callees {
				if crash[c] {
					crash[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return crash
}
