package crashsafelocks_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/crashsafelocks"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), crashsafelocks.Analyzer, "a", "srv", "cachecorpus")
}
