package checksumpub_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/checksumpub"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checksumpub.Analyzer, "a")
}
