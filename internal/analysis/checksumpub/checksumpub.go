// Package checksumpub defines an analyzer for the metadata-log entry
// construction invariant: in any function that computes an entry checksum,
// the media publish (Device.WriteNT/Write of the entry buffer, or the
// Store8/CAS8 publish store) must be dominated by the checksum computation.
// A path that reaches the publish without assigning the checksum persists an
// entry that recovery will mis-validate — either rejected (losing a
// committed op) or, worse, accepted with a stale checksum that happens to
// match.
//
// The function-level gate keeps the analyzer quiet on checksum-free code:
// deliberately unchecksummed stores (e.g. the checkpoint cell's ckptDirHW
// word) live in functions that compute no checksum and are never flagged.
// Inside a gated function, suppress a deliberate unchecksummed store with
// //mgsp:unchecksummed-publish <justification>.
package checksumpub

import (
	"fmt"
	"go/ast"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/vetreport"
)

const doc = `check that a media publish is not reachable before the checksum assignment

In functions that compute a checksum (crc32/crc64, or any callee whose name
contains "checksum"), every Device.Write/WriteNT/Store8/CAS8 must lie on the
far side of the checksum computation on all paths from function entry.
Suppress with //mgsp:unchecksummed-publish <justification>.`

var Analyzer = &analysis.Analyzer{
	Name:       "checksumpub",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer, summary.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

// isChecksumCall reports whether c computes a checksum: a crc32/crc64
// package function, or any callee whose name contains "checksum".
func isChecksumCall(pass *analysis.Pass, c *ast.CallExpr) bool {
	fn := mgspmatch.Callee(pass.TypesInfo, c)
	if fn == nil {
		return false
	}
	if strings.Contains(strings.ToLower(fn.Name()), "checksum") {
		return true
	}
	if p := fn.Pkg(); p != nil &&
		(mgspmatch.PkgPathIs(p.Path(), "crc32") || mgspmatch.PkgPathIs(p.Path(), "crc64")) {
		return true
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	if mgspmatch.PkgPathIs(pass.Pkg.Path(), "nvm") {
		return dirs, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)

	check := func(g *cfg.CFG) {
		if g == nil {
			return
		}
		// Gate: the function must compute a checksum somewhere.
		var publishes []*ast.CallExpr
		hasChecksum := false
		for _, b := range g.Blocks {
			for _, c := range cfgscan.Calls(b) {
				if isChecksumCall(pass, c) {
					hasChecksum = true
				}
				switch mgspmatch.DeviceMethod(pass.TypesInfo, c) {
				case "Write", "WriteNT", "Store8", "CAS8":
					publishes = append(publishes, c)
				}
			}
		}
		if !hasChecksum || len(publishes) == 0 {
			return
		}
		for _, pub := range publishes {
			hit := cfgscan.ReachableFromEntry(g, func(c *ast.CallExpr) cfgscan.Class {
				if c == pub {
					return cfgscan.Hit
				}
				if isChecksumCall(pass, c) {
					return cfgscan.Stop
				}
				return cfgscan.Continue
			})
			if hit != nil {
				m := mgspmatch.DeviceMethod(pass.TypesInfo, pub)
				msg := fmt.Sprintf("Device.%s publish reachable before the checksum is computed: a crash here persists an entry whose checksum field is stale; compute the checksum on every path first or annotate //mgsp:unchecksummed-publish",
					m)
				suppressed := dirs.Suppress(pub.Pos(), mgspmatch.UnchecksummedPublish)
				vetreport.Report(pass, sum.ReportPath, pub.Pos(), msg, suppressed)
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					check(cfgs.FuncDecl(n))
				}
			case *ast.FuncLit:
				check(cfgs.FuncLit(n))
			}
			return true
		})
	}
	return dirs, nil
}
