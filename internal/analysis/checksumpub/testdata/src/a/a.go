// Package a holds the checksumpub golden cases: metadata-log entry
// construction where the publish must be dominated by the checksum
// computation.
package a

import (
	"hash/crc32"

	"nvm"
	"sim"
)

type entry struct {
	payload [56]byte
	sum     uint32
}

// entryChecksum is matched by name ("checksum" substring).
func entryChecksum(e *entry) uint32 {
	var x uint32
	for _, b := range e.payload {
		x = x*16777619 ^ uint32(b)
	}
	return x
}

func encode(e *entry) []byte { return e.payload[:] }

// badPublishBeforeChecksum: the entry write happens before the sum is
// computed — a crash between them persists a stale checksum field.
func badPublishBeforeChecksum(ctx *sim.Ctx, dev *nvm.Device, e *entry) {
	dev.WriteNT(ctx, encode(e), 0) // want `Device\.WriteNT publish reachable before the checksum is computed`
	e.sum = entryChecksum(e)
	dev.Fence(ctx)
}

// badBranchSkipsChecksum: only the full-entry path computes the sum; the
// small-entry path publishes with whatever was in e.sum.
func badBranchSkipsChecksum(ctx *sim.Ctx, dev *nvm.Device, e *entry, full bool) {
	if full {
		e.sum = entryChecksum(e)
	}
	dev.WriteNT(ctx, encode(e), 0) // want `Device\.WriteNT publish reachable before the checksum is computed`
	dev.Fence(ctx)
}

// badTagStoreBeforeChecksum: the Store8 commit tag is also a publish.
func badTagStoreBeforeChecksum(ctx *sim.Ctx, dev *nvm.Device, e *entry) {
	dev.Store8(ctx, 0, 1) // want `Device\.Store8 publish reachable before the checksum is computed`
	e.sum = entryChecksum(e)
	dev.WriteNT(ctx, encode(e), 8)
	dev.Fence(ctx)
}

// goodChecksumDominates: the metaLog.commit shape — sum first, then write,
// fence, tag.
func goodChecksumDominates(ctx *sim.Ctx, dev *nvm.Device, e *entry) {
	e.sum = entryChecksum(e)
	dev.WriteNT(ctx, encode(e), 0)
	dev.Fence(ctx)
	dev.Store8(ctx, 64, 1)
}

// goodCRCDominates: stdlib crc32 is recognized as the checksum source.
func goodCRCDominates(ctx *sim.Ctx, dev *nvm.Device, e *entry) {
	e.sum = crc32.ChecksumIEEE(e.payload[:])
	dev.WriteNT(ctx, encode(e), 0)
	dev.Fence(ctx)
}

// goodUngated: no checksum anywhere in the function — the deliberately
// unchecksummed checkpoint-word shape is outside the gate entirely.
func goodUngated(ctx *sim.Ctx, dev *nvm.Device, hw uint64) {
	dev.Store8(ctx, 128, hw)
	dev.Fence(ctx)
}

// goodAnnotated: a gated function may still carry one deliberate
// unchecksummed store if annotated.
func goodAnnotated(ctx *sim.Ctx, dev *nvm.Device, e *entry, hw uint64) {
	dev.Store8(ctx, 128, hw) //mgsp:unchecksummed-publish high-water word is self-validating (monotonic, 8-byte atomic)
	e.sum = entryChecksum(e)
	dev.WriteNT(ctx, encode(e), 0)
	dev.Fence(ctx)
}
