// Package analysistest is a self-contained golden-file test harness for the
// mgspvet analyzers, API-compatible with the subset of
// golang.org/x/tools/go/analysis/analysistest this repo needs. (The real
// package is not vendored with the Go toolchain, and this repo builds
// offline against the toolchain's vendored x/tools; see DESIGN.md §11.)
//
// Layout: <testdata>/src/<pkgpath>/*.go. Fixture packages import each other
// by testdata-relative path ("a" imports "nvm" -> testdata/src/nvm); any
// other import resolves from GOROOT source via go/importer. Expected
// diagnostics are written as trailing comments on the offending line:
//
//	dev.Store8(ctx, 0, 1) // want `regexp matching the message`
//
// with one or more backquoted or double-quoted regexps per comment. Run
// fails the test on any unmatched expectation or unexpected diagnostic.
//
// Facts: the harness keeps a per-Run fact store keyed by (object|package,
// fact type). Before analyzing the named package it runs the full analyzer
// DAG over every testdata package it (transitively) imports, in dependency
// order, discarding their diagnostics — so ExportObjectFact in a dependency
// is visible to ImportObjectFact in the named package, exactly as under the
// real vet driver. Exported facts are round-tripped through gob to catch
// non-serializable fact types at test time rather than in CI vet.
package analysistest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// objFactKey / pkgFactKey key the fact store by owner and concrete fact type,
// matching the real driver's one-fact-per-(object,type) semantics.
type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

type loader struct {
	fset     *token.FileSet
	root     string // testdata/src
	pkgs     map[string]*loadedPkg
	order    []*loadedPkg // topological: dependencies before importers
	std      types.Importer
	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
	results  map[*loadedPkg]map[*analysis.Analyzer]interface{}
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		root:     root,
		pkgs:     make(map[string]*loadedPkg),
		std:      importer.ForCompiler(fset, "source", nil),
		objFacts: make(map[objFactKey]analysis.Fact),
		pkgFacts: make(map[pkgFactKey]analysis.Fact),
		results:  make(map[*loadedPkg]map[*analysis.Analyzer]interface{}),
	}
}

// Import implements types.Importer: testdata-relative packages first, then
// GOROOT source for everything else.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.pkg, p.err
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p := l.load(path, dir)
		return p.pkg, p.err
	}
	return l.std.Import(path)
}

func (l *loader) load(path, dir string) *loadedPkg {
	p := &loadedPkg{}
	l.pkgs[path] = p // pre-register to break cycles into type errors
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		p.err = fmt.Errorf("analysistest: no Go files in %s", dir)
		return p
	}
	sort.Strings(matches)
	for _, m := range matches {
		f, err := parser.ParseFile(l.fset, m, nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		p.files = append(p.files, f)
	}
	p.info = &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	p.pkg, p.err = conf.Check(path, l.fset, p.files, p.info)
	// Dependencies finish loading during Check, so append order is
	// topological (dependencies first).
	l.order = append(l.order, p)
	return p
}

// gobRoundtrip re-materializes a fact through gob, mirroring what the real
// vet driver does across compilation units. Fact types that cannot survive
// gob fail here instead of silently dropping facts in CI.
func gobRoundtrip(f analysis.Fact) (analysis.Fact, error) {
	var buf bytes.Buffer
	src := reflect.ValueOf(f)
	if src.Kind() != reflect.Ptr {
		return nil, fmt.Errorf("fact %T is not a pointer", f)
	}
	if err := gob.NewEncoder(&buf).EncodeValue(src.Elem()); err != nil {
		return nil, err
	}
	dst := reflect.New(src.Type().Elem())
	if err := gob.NewDecoder(&buf).DecodeValue(dst.Elem()); err != nil {
		return nil, err
	}
	return dst.Interface().(analysis.Fact), nil
}

// runAnalyzer executes a (and, recursively, its Requires) on the package,
// wiring the loader's cross-package fact store into the pass. Results are
// cached per (package, analyzer) so shared dependencies run once.
func runAnalyzer(t *testing.T, l *loader, p *loadedPkg, a *analysis.Analyzer,
	report func(analysis.Diagnostic)) interface{} {
	results := l.results[p]
	if results == nil {
		results = make(map[*analysis.Analyzer]interface{})
		l.results[p] = results
	}
	if r, ok := results[a]; ok {
		return r
	}
	deps := make(map[*analysis.Analyzer]interface{})
	for _, req := range a.Requires {
		deps[req] = runAnalyzer(t, l, p, req, report)
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       l.fset,
		Files:      p.files,
		Pkg:        p.pkg,
		TypesInfo:  p.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   deps,
		Report:     report,
		ReadFile:   os.ReadFile,
		ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
			got, ok := l.objFacts[objFactKey{obj, reflect.TypeOf(f)}]
			if ok {
				reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
			}
			return ok
		},
		ImportPackageFact: func(pkg *types.Package, f analysis.Fact) bool {
			got, ok := l.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(f)}]
			if ok {
				reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
			}
			return ok
		},
		ExportObjectFact: func(obj types.Object, f analysis.Fact) {
			rt, err := gobRoundtrip(f)
			if err != nil {
				t.Fatalf("analyzer %s: object fact %T not gob-serializable: %v", a.Name, f, err)
			}
			l.objFacts[objFactKey{obj, reflect.TypeOf(f)}] = rt
		},
		ExportPackageFact: func(f analysis.Fact) {
			rt, err := gobRoundtrip(f)
			if err != nil {
				t.Fatalf("analyzer %s: package fact %T not gob-serializable: %v", a.Name, f, err)
			}
			l.pkgFacts[pkgFactKey{p.pkg, reflect.TypeOf(f)}] = rt
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for k, f := range l.objFacts {
				out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for k, f := range l.pkgFacts {
				out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
			}
			return out
		},
	}
	res, err := a.Run(pass)
	if err != nil {
		t.Fatalf("analyzer %s failed on %s: %v", a.Name, p.pkg.Path(), err)
	}
	results[a] = res
	return res
}

// expectation is one `// want` regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var wantRe = regexp.MustCompile("^//.*\\bwant\\b(.*)$")

// parseWants extracts want expectations from a file's comments. The portion
// after `want` is a whitespace-separated sequence of Go double-quoted or
// backquoted strings, each a regexp.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					var raw string
					switch rest[0] {
					case '`':
						end := strings.IndexByte(rest[1:], '`')
						if end < 0 {
							t.Fatalf("%s: unterminated backquote in want: %s", pos, c.Text)
						}
						raw = rest[1 : 1+end]
						rest = strings.TrimSpace(rest[2+end:])
					case '"':
						var err error
						// Find the closing quote by Unquote-ing growing prefixes.
						end := -1
						for i := 1; i < len(rest); i++ {
							if rest[i] == '"' && rest[i-1] != '\\' {
								end = i
								break
							}
						}
						if end < 0 {
							t.Fatalf("%s: unterminated quote in want: %s", pos, c.Text)
						}
						raw, err = strconv.Unquote(rest[:end+1])
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, rest[:end+1], err)
						}
						rest = strings.TrimSpace(rest[end+1:])
					default:
						t.Fatalf("%s: want expects quoted or backquoted regexps, got %q", pos, rest)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, text: raw})
				}
			}
		}
	}
	return out
}

// TestData returns the absolute path of the calling test's testdata
// directory, mirroring the real analysistest API.
func TestData() string {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return testdata
}

// Run loads each named package from testdata/src, applies the analyzer, and
// compares diagnostics against the // want expectations in the sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	for _, pkgpath := range pkgpaths {
		pkgpath := pkgpath
		t.Run(pkgpath, func(t *testing.T) {
			t.Helper()
			l := newLoader(root)
			pkg, err := l.Import(pkgpath)
			if err != nil || pkg == nil {
				t.Fatalf("loading %s: %v", pkgpath, err)
			}
			p := l.pkgs[pkgpath]
			// Analyze testdata dependencies first (l.order is topological)
			// so their exported facts are in the store; their diagnostics
			// belong to their own Run entries and are discarded here.
			for _, q := range l.order {
				if q != p && q.err == nil {
					runAnalyzer(t, l, q, a, func(analysis.Diagnostic) {})
				}
			}
			var diags []analysis.Diagnostic
			runAnalyzer(t, l, p, a,
				func(d analysis.Diagnostic) { diags = append(diags, d) })

			wants := parseWants(t, l.fset, p.files)
			for _, d := range diags {
				pos := l.fset.Position(d.Pos)
				matched := false
				for _, w := range wants {
					if w.met || w.file != pos.Filename || w.line != pos.Line {
						continue
					}
					if w.re.MatchString(d.Message) {
						w.met = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
				}
			}
			for _, w := range wants {
				if !w.met {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
				}
			}
		})
	}
}
