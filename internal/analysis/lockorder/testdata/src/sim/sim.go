// Package sim is a minimal stand-in for mgsp/internal/sim: the analyzers
// match types by (name, package-path suffix), so this fixture exercises the
// same code paths as the real tree.
package sim

// Ctx mirrors sim.Ctx.
type Ctx struct{ ID int }
