// Package a reconstructs the PR-7 flusher lock discipline for the
// lockorder golden corpus: drains take flushMu before node locks before
// sizeMu and never touch the namespace lock.
//
//mgsp:lock-order flusher.flushMu < node.lock < flusher.sizeMu
//mgsp:lock-order-self node.lock tree walks take parent before child
package a

import "sync"

type node struct{ lock sync.Mutex }

type tree struct{ mu sync.Mutex }

type fs struct{ mu sync.Mutex }

type flusher struct {
	flushMu sync.Mutex
	sizeMu  sync.Mutex
}

// goodDrain follows the declared order exactly.
func (f *flusher) goodDrain(n *node) {
	f.flushMu.Lock()
	n.lock.Lock()
	f.sizeMu.Lock()
	f.sizeMu.Unlock()
	n.lock.Unlock()
	f.flushMu.Unlock()
}

// badInverted acquires flushMu while holding sizeMu, against the declared
// order.
func (f *flusher) badInverted(n *node) {
	f.sizeMu.Lock()
	f.flushMu.Lock() // want `flusher\.flushMu acquired while holding flusher\.sizeMu \(in flusher\.badInverted\), but the declared lock order says flusher\.flushMu < flusher\.sizeMu`
	f.flushMu.Unlock()
	f.sizeMu.Unlock()
}

// badSkipLevel: transitivity — node.lock < sizeMu is declared only through
// the chain.
func (f *flusher) badSkipLevel(n *node) {
	f.sizeMu.Lock()
	n.lock.Lock() // want `node\.lock acquired while holding flusher\.sizeMu`
	n.lock.Unlock()
	f.sizeMu.Unlock()
}

// goodSelfDeclared: intra-class node acquisition is protocol-ordered
// (parent before child), declared above.
func lockPairNodes(a, b *node) {
	a.lock.Lock()
	b.lock.Lock()
	b.lock.Unlock()
	a.lock.Unlock()
}

// badSelfUndeclared: the same shape on an undeclared class is a latent
// deadlock (two goroutines, opposite order).
func lockPairTrees(a, b *tree) {
	a.mu.Lock()
	b.mu.Lock() // want `lock class tree\.mu blocking-acquired while already held \(in lockPairTrees\)`
	b.mu.Unlock()
	a.mu.Unlock()
}

// suppressedInverted keeps a justified inversion quiet.
func (f *flusher) suppressedInverted() {
	f.sizeMu.Lock()
	f.flushMu.Lock() //mgsp:lock-order-ok startup path, single-threaded by construction
	f.flushMu.Unlock()
	f.sizeMu.Unlock()
}

type cyc struct {
	ma sync.Mutex
	mb sync.Mutex
}

// cycAB and cycBA close an undeclared two-class cycle; the SCC is reported
// at the package's first contributing edge.
func (c *cyc) cycAB() {
	c.ma.Lock()
	c.mb.Lock() // want `lock classes \{cyc\.ma, cyc\.mb\} form an acquires-while-holding cycle`
	c.mb.Unlock()
	c.ma.Unlock()
}

func (c *cyc) cycBA() {
	c.mb.Lock()
	c.ma.Lock()
	c.ma.Unlock()
	c.mb.Unlock()
}

func lockFS(s *fs) {
	s.mu.Lock()
	s.mu.Unlock()
}

type opfile struct{ opMu sync.Mutex }

// lockOp returns holding opMu — escaping by design, like the MGL lock
// helpers that hand a held set back to the operation.
func (o *opfile) lockOp() { o.opMu.Lock() }

func (o *opfile) releaseOp() { o.opMu.Unlock() }

// deferReleasedOp releases the escaping acquisition through a deferred
// helper call. The summary engine credits releaseOp's release set at exit
// (deferred calls are invisible to the CFG walk), so the op neither
// escapes opMu nor leaves it held in callers.
func (o *opfile) deferReleasedOp() {
	o.lockOp()
	defer o.releaseOp()
}

// backToBackOps must be quiet: without defer-release crediting the second
// call would report a spurious opfile.opMu self edge.
func backToBackOps(o *opfile) {
	o.deferReleasedOp()
	o.deferReleasedOp()
}

// drainForbidden is a flusher-style path that must stay off the namespace
// lock but reaches it through a helper.
//
//mgsp:lock-forbid fs.mu drains run under group commit and must not touch the namespace lock
func (f *flusher) drainForbidden(s *fs) { // want `drainForbidden is declared //mgsp:lock-forbid fs\.mu but transitively blocking-acquires it`
	lockFS(s)
}
