package lockorder_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/lockorder"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a")
}
