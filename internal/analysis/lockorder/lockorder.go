// Package lockorder defines an analyzer enforcing the repo's declared lock
// hierarchy (DESIGN.md §13/§15): the PR-7 flusher discipline says drains
// take flushMu before node locks before sizeMu and never touch fs.mu, and a
// single out-of-order acquisition anywhere in the tree is a latent deadlock
// the torture harness can only hope to schedule. The summary engine records
// every acquires-while-holding edge — interprocedurally, so holding flushMu
// in core while a cache callee blocks on set.mu is one edge — and this pass
// checks three things against the package's declarations:
//
//   - //mgsp:lock-order A < B < C declares a partial order; an observed
//     edge B>A that contradicts a declared (transitive) A<B is reported.
//   - A self edge (a class blocking-acquired while already held) is
//     reported unless //mgsp:lock-order-self C declares that intra-class
//     acquisition follows a protocol (e.g. MGL's parent-before-child node
//     locks).
//   - Cycles in the whole-program edge graph (local edges plus every
//     imported package's, self edges excluded) are reported in the package
//     contributing an edge to the cycle.
//
// A //mgsp:lock-forbid C directive on a function declares that it must not
// transitively blocking-acquire C ("drains never take fs.mu"); the
// function's AcqBlocking summary is checked against it. The pass is quiet
// in packages with no local or inherited declarations, so vendored code is
// never flagged. Suppress an edge finding with //mgsp:lock-order-ok
// <justification>.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/vetreport"
)

const doc = `check lock acquisitions against the declared partial order and for cycles

Verifies every acquires-while-holding edge (computed interprocedurally by the
summary engine) against //mgsp:lock-order declarations, reports undeclared
self-acquisition, detects cycles across packages, and enforces
//mgsp:lock-forbid on flusher-style paths. Suppress with //mgsp:lock-order-ok
<justification>.`

var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{summary.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)
	if len(sum.Order) == 0 && len(sum.SelfOK) == 0 && len(dirs.Decls(mgspmatch.LockForbid)) == 0 {
		// No declarations anywhere in this package's import view: the
		// hierarchy is undeclared and the pass stays quiet (this is what
		// keeps vendored third-party code unflagged).
		return dirs, nil
	}

	// before[a][b]: a precedes b in the declared order (transitive closure).
	before := make(map[string]map[string]bool)
	add := func(a, b string) {
		if before[a] == nil {
			before[a] = make(map[string]bool)
		}
		before[a][b] = true
	}
	for _, p := range sum.Order {
		add(p.Before, p.After)
	}
	for changed := true; changed; {
		changed = false
		for a, bs := range before {
			for b := range bs {
				for c := range before[b] {
					if !before[a][c] {
						add(a, c)
						changed = true
					}
				}
			}
		}
	}

	// Declared-order violations and undeclared self edges, on local edges.
	for _, e := range sum.LocalEdges {
		var msg string
		switch {
		case e.From == e.To && !sum.SelfOK[e.From]:
			msg = fmt.Sprintf("lock class %s blocking-acquired while already held (in %s); if a protocol orders intra-class acquisition, declare //mgsp:lock-order-self %s",
				e.From, e.Fn, e.From)
		case e.From != e.To && before[e.To][e.From]:
			msg = fmt.Sprintf("%s acquired while holding %s (in %s), but the declared lock order says %s < %s; acquire in declared order or release %s first",
				e.To, e.From, e.Fn, e.To, e.From, e.From)
		default:
			continue
		}
		suppressed := dirs.Suppress(e.TokPos, mgspmatch.LockOrderOK)
		vetreport.Report(pass, sum.ReportPath, e.TokPos, msg, suppressed)
	}

	// Cycle detection over the whole-program edge graph. Self edges are
	// handled above (and exempted classes are protocol-ordered), and edges
	// contradicting the declared order are excluded — each is already an
	// order-violation report (or a justified //mgsp:lock-order-ok site) in
	// its own package, and feeding it back in would re-report the same bug
	// as a cycle through the declared-direction edges. Report each
	// remaining strongly connected component once, anchored at this
	// package's first contributing edge — imported packages that
	// contributed edges report the same SCC at their own sites, which is
	// the desired "every participant sees it" behavior.
	var cycleEdges []summary.Edge
	for _, e := range sum.AllEdges {
		if !before[e.To][e.From] {
			cycleEdges = append(cycleEdges, e)
		}
	}
	cycles := sccs(cycleEdges)
	for _, comp := range cycles {
		inComp := make(map[string]bool)
		for _, c := range comp {
			inComp[c] = true
		}
		var anchor *summary.LocalEdge
		for i := range sum.LocalEdges {
			e := &sum.LocalEdges[i]
			if e.From != e.To && inComp[e.From] && inComp[e.To] {
				anchor = e
				break
			}
		}
		if anchor == nil {
			continue // cycle lives entirely in imported packages
		}
		var desc []string
		for _, e := range cycleEdges {
			if e.From != e.To && inComp[e.From] && inComp[e.To] {
				desc = append(desc, fmt.Sprintf("%s>%s (%s, %s)", e.From, e.To, e.Fn, e.Pos))
			}
		}
		msg := fmt.Sprintf("lock classes {%s} form an acquires-while-holding cycle: %s",
			strings.Join(comp, ", "), strings.Join(desc, "; "))
		suppressed := dirs.Suppress(anchor.TokPos, mgspmatch.LockOrderOK)
		vetreport.Report(pass, sum.ReportPath, anchor.TokPos, msg, suppressed)
	}

	// //mgsp:lock-forbid on function declarations.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, d := range dirs.DeclsAt(fd.Pos(), mgspmatch.LockForbid) {
				fields := strings.Fields(d.Args)
				if len(fields) == 0 {
					continue
				}
				cls := fields[0]
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				s := sum.Fn(fn)
				if s == nil {
					continue
				}
				for _, acq := range s.AcqBlocking {
					if acq == cls {
						msg := fmt.Sprintf("%s is declared //mgsp:lock-forbid %s but transitively blocking-acquires it",
							fd.Name.Name, cls)
						vetreport.Report(pass, sum.ReportPath, fd.Name.Pos(), msg, false)
					}
				}
			}
		}
	}
	return dirs, nil
}

// sccs returns the strongly connected components of size > 1 in the edge
// graph (self edges excluded), each sorted, in deterministic order.
func sccs(edges []summary.Edge) [][]string {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		adj[e.From] = append(adj[e.From], e.To)
		nodes[e.From], nodes[e.To] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Tarjan's algorithm, iterative enough for our graph sizes (recursive).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		succs := append([]string(nil), adj[v]...)
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sort.Strings(comp)
				out = append(out, comp)
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return strings.Join(out[i], ",") < strings.Join(out[j], ",") })
	return out
}
