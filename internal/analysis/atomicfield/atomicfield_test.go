package atomicfield_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/atomicfield"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a", "b")
}
