// Package atomicfield defines an analyzer for two atomics invariants the
// observability subsystem (internal/obs) and its users rely on:
//
//  1. obs.Counter / obs.Gauge / obs.Histogram values must never be copied —
//     a copy snapshots the embedded atomic non-atomically and splits the
//     metric into two divergent cells. All access goes through the pointer
//     accessors (Add/Load/Store/Set/Observe).
//
//  2. Plain int64/uint64 struct fields that the package accesses with
//     sync/atomic functions must be 64-bit aligned on 32-bit platforms
//     (offset % 8 == 0 under 386 layout; in practice: first in the struct),
//     and every other access to such a field must also go through
//     sync/atomic. Fields of type atomic.Int64/Uint64 are exempt — they
//     self-align via the embedded align64 marker since Go 1.19, which is
//     why obs.Counter needs no placement rule.
//
// Suppress with //mgsp:atomic-copy-ok or //mgsp:unaligned-ok plus a
// one-line justification.
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/vetreport"
)

const doc = `check obs metric values are not copied and raw 64-bit atomic fields are aligned and accessed atomically

obs.Counter/Gauge/Histogram are single atomic cells; copying one forks the
metric. Raw int64/uint64 fields used with sync/atomic must sit at 8-byte
offsets (32-bit platforms guarantee only 4-byte struct alignment) and must
not be read or written non-atomically elsewhere in the package.`

var Analyzer = &analysis.Analyzer{
	Name:       "atomicfield",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{inspect.Analyzer, summary.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

func isObsMetric(t types.Type) bool {
	if t == nil {
		return false
	}
	return mgspmatch.IsNamed(t, "obs", "Counter") ||
		mgspmatch.IsNamed(t, "obs", "Gauge") ||
		mgspmatch.IsNamed(t, "obs", "Histogram")
}

// metricName returns "obs.Counter" style display names.
func metricName(t types.Type) string {
	n, _ := types.Unalias(t).(*types.Named)
	if n == nil {
		return t.String()
	}
	return "obs." + n.Obj().Name()
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	if mgspmatch.PkgPathIs(pass.Pkg.Path(), "obs") {
		return dirs, nil // the accessors themselves live here
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)

	reportCopy := func(pos ast.Node, t types.Type, how string) {
		msg := fmt.Sprintf("%s %s: copying forks the atomic cell; use the pointer accessors (Add/Load/Store/Set/Observe) or a pointer",
			how, metricName(t))
		suppressed := dirs.Suppress(pos.Pos(), mgspmatch.AtomicCopyOK)
		vetreport.Report(pass, sum.ReportPath, pos.Pos(), msg, suppressed)
	}

	// metricValue returns the obs metric type if e evaluates to a metric BY
	// VALUE. A fresh zero composite literal (obs.Counter{}) is not a copy of
	// a live cell and is skipped unless allowLit — plain `=` assignment over
	// an existing metric is a non-atomic reset and stays flagged.
	metricValue := func(e ast.Expr, allowLit bool) types.Type {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || !isObsMetric(tv.Type) {
			return nil
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return nil
		}
		if _, isLit := ast.Unparen(e).(*ast.CompositeLit); isLit && !allowLit {
			return nil
		}
		return tv.Type
	}

	// ---- invariant 1: no value copies of obs metrics ----
	ins.Preorder([]ast.Node{
		(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil), (*ast.CallExpr)(nil),
		(*ast.ReturnStmt)(nil), (*ast.CompositeLit)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if t := metricValue(rhs, n.Tok == token.ASSIGN); t != nil {
					reportCopy(rhs, t, "assignment copies")
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if t := metricValue(v, false); t != nil {
					reportCopy(v, t, "initialization copies")
				}
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				if t := metricValue(a, false); t != nil {
					reportCopy(a, t, "call passes by value")
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if t := metricValue(r, false); t != nil {
					reportCopy(r, t, "return copies")
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if t := metricValue(v, false); t != nil {
					reportCopy(v, t, "composite literal copies")
				}
			}
		}
	})

	// ---- invariant 2: raw 64-bit atomic fields ----
	checkRawFields(pass, ins, dirs, sum.ReportPath)
	return dirs, nil
}

// fieldKey identifies a struct field.
type fieldKey struct {
	typ   *types.Named
	field *types.Var
}

func checkRawFields(pass *analysis.Pass, ins *inspector.Inspector, dirs *mgspmatch.Directives, reportPath string) {
	// Pass 1: find &x.f arguments of sync/atomic *Int64/*Uint64 functions.
	atomicArgs := make(map[*ast.SelectorExpr]bool) // selectors used under & in atomic calls
	fields := make(map[fieldKey]ast.Node)          // atomically-used raw fields -> first call site
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := mgspmatch.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		if !strings.HasSuffix(fn.Name(), "Int64") && !strings.HasSuffix(fn.Name(), "Uint64") {
			return
		}
		for _, a := range call.Args {
			u, ok := ast.Unparen(a).(*ast.UnaryExpr)
			if !ok || u.Op.String() != "&" {
				continue
			}
			sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				continue
			}
			f, _ := s.Obj().(*types.Var)
			recv := s.Recv()
			if p, ok := recv.Underlying().(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, _ := types.Unalias(recv).(*types.Named)
			if f == nil || named == nil {
				continue
			}
			atomicArgs[sel] = true
			k := fieldKey{named, f}
			if _, ok := fields[k]; !ok {
				fields[k] = call
			}
		}
	})
	if len(fields) == 0 {
		return
	}

	// Alignment under 32-bit layout: the struct itself is only 4-byte
	// aligned, so a field is guaranteed 8-byte aligned only if its 386
	// offset is 0 mod 8 AND everything before it is 8-byte-multiple sized —
	// offset 0 (first field) is the only portable guarantee; we accept any
	// 0-mod-8 offset as the conventional rule (matching go vet's practice
	// for the analogous structs in the standard library).
	sizes := types.SizesFor("gc", "386")
	for k, site := range fields {
		st, ok := k.typ.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var all []*types.Var
		idx := -1
		for i := 0; i < st.NumFields(); i++ {
			all = append(all, st.Field(i))
			if st.Field(i) == k.field {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		off := sizes.Offsetsof(all)[idx]
		if off%8 != 0 {
			msg := fmt.Sprintf("atomic 64-bit access to %s.%s, which is at offset %d on 32-bit platforms (not 8-byte aligned): move the field to the front of the struct or use atomic.Int64/Uint64",
				k.typ.Obj().Name(), k.field.Name(), off)
			suppressed := dirs.Suppress(site.Pos(), mgspmatch.UnalignedOK)
			vetreport.Report(pass, reportPath, site.Pos(), msg, suppressed)
		}
	}

	// Pass 2: every other selection of an atomically-used field must also be
	// atomic (or take its address for an atomic call elsewhere — we only
	// whitelist the exact &f arguments seen above).
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if atomicArgs[sel] {
			return
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		f, _ := s.Obj().(*types.Var)
		recv := s.Recv()
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, _ := types.Unalias(recv).(*types.Named)
		if f == nil || named == nil {
			return
		}
		if _, tracked := fields[fieldKey{named, f}]; !tracked {
			return
		}
		msg := fmt.Sprintf("non-atomic access to %s.%s, which is accessed with sync/atomic elsewhere in this package: mixing modes races",
			named.Obj().Name(), f.Name())
		suppressed := dirs.Suppress(sel.Pos(), mgspmatch.AtomicCopyOK)
		vetreport.Report(pass, reportPath, sel.Pos(), msg, suppressed)
	})
}
