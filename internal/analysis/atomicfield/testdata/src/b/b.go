// Package b holds the atomicfield invariant-2 golden cases: raw
// int64/uint64 fields driven through sync/atomic.
package b

import "sync/atomic"

// badLayout: pad pushes n to offset 4 under 386 layout, where the struct
// itself is only 4-byte aligned — AddInt64 faults or tears there.
type badLayout struct {
	pad int32
	n   int64
}

func bumpBad(x *badLayout) {
	atomic.AddInt64(&x.n, 1) // want `atomic 64-bit access to badLayout\.n, which is at offset 4 on 32-bit platforms`
}

// goodLayout: the 64-bit field leads the struct, so offset 0 everywhere.
type goodLayout struct {
	n   int64
	pad int32
}

func bumpGood(x *goodLayout) {
	atomic.AddInt64(&x.n, 1)
}

// goodUint64: the unsigned variants are matched the same way.
type goodUint64 struct {
	seq uint64
}

func nextSeq(x *goodUint64) uint64 {
	return atomic.AddUint64(&x.seq, 1)
}

// mixed: aligned, but read and written both with and without sync/atomic —
// the plain accesses race against the atomic ones.
type mixed struct {
	n int64
}

func incMixed(m *mixed) {
	atomic.AddInt64(&m.n, 1)
}

func loadMixedAtomic(m *mixed) int64 {
	return atomic.LoadInt64(&m.n) // atomic everywhere: fine
}

func peekMixed(m *mixed) int64 {
	return m.n // want `non-atomic access to mixed\.n, which is accessed with sync/atomic elsewhere in this package: mixing modes races`
}

func resetMixed(m *mixed) {
	m.n = 0 // want `non-atomic access to mixed\.n, which is accessed with sync/atomic elsewhere in this package: mixing modes races`
}

// legacy: misaligned but explicitly waived (64-bit-only build target).
type legacy struct {
	flag int32
	n    int64
}

func bumpLegacy(x *legacy) {
	atomic.AddInt64(&x.n, 1) //mgsp:unaligned-ok amd64-only tool, never built for 32-bit
}
