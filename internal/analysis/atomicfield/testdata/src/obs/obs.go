// Package obs is a minimal stand-in for mgsp/internal/obs: single-cell
// metrics wrapping atomic.Int64 with pointer accessors.
package obs

import "sync/atomic"

// Counter is a monotonically increasing metric cell.
type Counter struct{ v atomic.Int64 }

func (c *Counter) Add(d int64) { c.v.Add(d) }
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a set/load metric cell.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(x int64)  { g.v.Store(x) }
func (g *Gauge) Load() int64  { return g.v.Load() }
func (g *Gauge) Store(x int64) { g.v.Store(x) }

// Histogram is a bucketed distribution.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
}

func (h *Histogram) Observe(x int64) {
	h.count.Add(1)
	h.sum.Add(x)
}
