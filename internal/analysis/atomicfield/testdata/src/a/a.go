// Package a holds the atomicfield invariant-1 golden cases: by-value uses
// of obs metric cells.
package a

import "obs"

type stats struct {
	Hits  obs.Counter
	Depth obs.Gauge
	Lat   obs.Histogram
}

type wrapper struct{ c obs.Counter }

func record(c obs.Counter) {} // the parameter type itself is fine; passing a live cell is not

// badAssignCopy: := snapshots the cell non-atomically and forks it.
func badAssignCopy(s *stats) {
	c := s.Hits // want `assignment copies obs\.Counter`
	_ = c.Load()
}

// badReset: plain = over a live cell is a non-atomic reset, even with a
// fresh zero literal on the right.
func badReset(s *stats) {
	s.Depth = obs.Gauge{} // want `assignment copies obs\.Gauge`
}

// badVarInit: var initialization copies the same way := does.
func badVarInit(s *stats) {
	var d = s.Depth // want `initialization copies obs\.Gauge`
	_ = d.Load()
}

// badCallArg: pass-by-value hands the callee a dead fork.
func badCallArg(s *stats) {
	record(s.Hits) // want `call passes by value obs\.Counter`
}

// badReturn: returning by value copies.
func badReturn(s *stats) obs.Counter {
	return s.Hits // want `return copies obs\.Counter`
}

// badCompositeLit: embedding a live cell into a literal copies it.
func badCompositeLit(s *stats) {
	w := wrapper{c: s.Hits} // want `composite literal copies obs\.Counter`
	_ = w.c.Load()
}

// goodAccessors: all access through the pointer accessors.
func goodAccessors(s *stats) int64 {
	s.Hits.Add(1)
	s.Depth.Set(3)
	s.Lat.Observe(17)
	return s.Hits.Load()
}

// goodPointer: taking the address shares the one true cell.
func goodPointer(s *stats) *obs.Counter {
	p := &s.Hits
	p.Add(1)
	return p
}

// goodFreshLit: a zero literal in a declaration is a new cell, not a copy.
func goodFreshLit() int64 {
	c := obs.Counter{}
	c.Add(1)
	return c.Load()
}

// goodAnnotated: explicit suppression with justification.
func goodAnnotated(s *stats) {
	c := s.Hits //mgsp:atomic-copy-ok test-only snapshot, no writers running
	_ = c.Load()
}
