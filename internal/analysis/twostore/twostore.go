// Package twostore defines an analyzer for dependent persistent stores —
// the PR-8 retire discipline generalized (DESIGN.md §15). When two stores
// address fields of the same persistent record ("offset family": the store
// offsets share a base expression, differing only in a field addend), their
// order is load-bearing and must be enforced by a persist barrier:
//
//   - A non-temporal WriteNT followed by another persistent store
//     (WriteNT/Store8/CAS8) to the same family with no Fence/Persist
//     between them can persist in either order — the dependent pair tears.
//     Store8/CAS8 carry their own trailing fence, so only WriteNT opens
//     this window.
//   - The retire shape: zeroing a record's length field while its checksum
//     field is still valid leaves a checksum-valid corpse a torn re-commit
//     can resurrect (meta.go retire's rationale). A Store8 of constant 0 to
//     a "len"/"length" offset that is reachable before the same family's
//     Store8 of 0 to its "cksum"/"checksum" offset is reported; kill the
//     checksum first.
//
// Barriers are classified interprocedurally via the summary engine (a
// callee whose every path fences counts). Suppress with //mgsp:two-store-ok
// <justification>.
package twostore

import (
	"fmt"
	"go/ast"
	"go/constant"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/vetreport"
)

const doc = `check that dependent persistent stores are separated by a persist barrier

Stores addressing the same offset family (base+fieldOffset) are dependent:
a WriteNT followed by another persistent store to the family needs a Fence
between them, and a record's length field must never be zeroed while its
checksum field is still valid (the retire shape). Suppress with
//mgsp:two-store-ok <justification>.`

var Analyzer = &analysis.Analyzer{
	Name:       "twostore",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer, summary.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

// store is one persistent-store call with its offset identity.
type store struct {
	call   *ast.CallExpr
	method string // WriteNT, Store8, CAS8
	family string
	full   string
	zero   bool // stores a constant-zero value (Store8 only)
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	if mgspmatch.PkgPathIs(pass.Pkg.Path(), "nvm") {
		return dirs, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)

	// storeOf classifies a call as a persistent store and extracts its
	// offset family. Offset argument positions: Store8(ctx, off, v),
	// CAS8(ctx, off, old, new), WriteNT(ctx, p, off).
	storeOf := func(c *ast.CallExpr) (store, bool) {
		m := mgspmatch.DeviceMethod(pass.TypesInfo, c)
		var offArg ast.Expr
		switch m {
		case "Store8", "CAS8":
			if len(c.Args) < 3 {
				return store{}, false
			}
			offArg = c.Args[1]
		case "WriteNT":
			if len(c.Args) < 3 {
				return store{}, false
			}
			offArg = c.Args[2]
		default:
			return store{}, false
		}
		fam, full := mgspmatch.FamilyKey(offArg)
		if fam == "" || fam == "?" {
			return store{}, false
		}
		s := store{call: c, method: m, family: fam, full: full}
		if m == "Store8" {
			if tv, ok := pass.TypesInfo.Types[c.Args[2]]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
					s.zero = true
				}
			}
		}
		return s, true
	}

	lower := strings.ToLower
	isCksum := func(s store) bool {
		l := lower(s.full)
		return strings.Contains(l, "cksum") || strings.Contains(l, "checksum") || strings.Contains(l, "crc")
	}
	isLen := func(s store) bool {
		return !isCksum(s) && strings.Contains(lower(s.full), "len")
	}

	check := func(g *cfg.CFG) {
		if g == nil {
			return
		}
		var stores []store
		byCall := make(map[*ast.CallExpr]store)
		for _, b := range g.Blocks {
			for _, c := range cfgscan.Calls(b) {
				if s, ok := storeOf(c); ok {
					stores = append(stores, s)
					byCall[c] = s
				}
			}
		}
		if len(stores) == 0 {
			return
		}

		// Rule 1: WriteNT followed by a same-family persistent store with
		// no intervening NT barrier.
		for _, s := range stores {
			if s.method != "WriteNT" {
				continue
			}
			p, ok := cfgscan.FindCall(g, s.call)
			if !ok {
				continue
			}
			fam, src := s.family, s.call
			hit := cfgscan.ReachableAfter(g, p, func(c *ast.CallExpr) cfgscan.Class {
				if sum.BarrierFor(c, "WriteNT") {
					return cfgscan.Stop
				}
				if c == src {
					// The same call site reached around a loop writes a new
					// record (the offset expression re-evaluates), not a
					// dependent field of the previous one.
					return cfgscan.Continue
				}
				if t, ok := byCall[c]; ok && t.family == fam {
					return cfgscan.Hit
				}
				return cfgscan.Continue
			})
			if hit != nil {
				t := byCall[hit]
				msg := fmt.Sprintf("dependent persistent stores to %s (WriteNT at %s, then %s at %s) have no persist barrier between them: non-temporal stores can persist out of order; add a Fence",
					fam, s.full, t.method, t.full)
				suppressed := dirs.Suppress(s.call.Pos(), mgspmatch.TwoStoreOK)
				vetreport.Report(pass, sum.ReportPath, s.call.Pos(), msg, suppressed)
			}
		}

		// Rule 2 (retire shape): a length kill reachable before the same
		// family's checksum kill. Only judged when the function performs
		// both kills for the family — a lone length kill may be paired
		// with a checksum kill in its caller, which this pass cannot see.
		famHasCksumKill := make(map[string]bool)
		for _, s := range stores {
			if s.zero && isCksum(s) {
				famHasCksumKill[s.family] = true
			}
		}
		reported := make(map[*ast.CallExpr]bool)
		for fam := range famHasCksumKill {
			fam := fam
			hit := cfgscan.ReachableFromEntry(g, func(c *ast.CallExpr) cfgscan.Class {
				s, ok := byCall[c]
				if !ok || s.family != fam || !s.zero {
					return cfgscan.Continue
				}
				if isCksum(s) {
					return cfgscan.Stop
				}
				if isLen(s) {
					return cfgscan.Hit
				}
				return cfgscan.Continue
			})
			if hit != nil && !reported[hit] {
				reported[hit] = true
				s := byCall[hit]
				msg := fmt.Sprintf("length field %s zeroed while the record's checksum field is still valid: a torn re-commit of the slot can resurrect the retired entry; kill the checksum (same family %s) first",
					s.full, fam)
				suppressed := dirs.Suppress(hit.Pos(), mgspmatch.TwoStoreOK)
				vetreport.Report(pass, sum.ReportPath, hit.Pos(), msg, suppressed)
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					check(cfgs.FuncDecl(n))
				}
			case *ast.FuncLit:
				check(cfgs.FuncLit(n))
			}
			return true
		})
	}
	return dirs, nil
}
