// Package a holds the twostore golden cases: the PR-8 retire discipline
// (checksum kill before length kill, fence between dependent non-temporal
// stores) over a metadata-log entry family m.off(i)+field.
package a

import (
	"b"

	"nvm"
	"sim"
)

const (
	entCksum = 8
	entLen   = 16
)

type metaLog struct{ dev *nvm.Device }

func (m *metaLog) off(i int) int64 { return int64(i) * 64 }

// goodRetire kills the checksum first: a crash between the two Store8s
// leaves an entry that fails validation, which recovery skips.
func (m *metaLog) goodRetire(ctx *sim.Ctx, i int) {
	m.dev.Store8(ctx, m.off(i)+entCksum, 0)
	m.dev.Store8(ctx, m.off(i)+entLen, 0)
}

// badRetire zeroes the length while the checksum is still valid — the
// checksum-valid corpse a torn re-commit can resurrect.
func (m *metaLog) badRetire(ctx *sim.Ctx, i int) {
	m.dev.Store8(ctx, m.off(i)+entLen, 0) // want `length field m\.off\(i\)\+entLen zeroed while the record's checksum field is still valid`
	m.dev.Store8(ctx, m.off(i)+entCksum, 0)
}

// suppressedRetire keeps a justified inversion quiet.
func (m *metaLog) suppressedRetire(ctx *sim.Ctx, i int) {
	m.dev.Store8(ctx, m.off(i)+entLen, 0) //mgsp:two-store-ok slot is already unreachable from the directory
	m.dev.Store8(ctx, m.off(i)+entCksum, 0)
}

// badAppend publishes the entry checksum while the non-temporal body write
// can still be in flight: the two stores can persist in either order.
func (m *metaLog) badAppend(ctx *sim.Ctx, buf []byte, i int) {
	m.dev.WriteNT(ctx, buf, m.off(i)) // want `dependent persistent stores to m\.off\(i\) \(WriteNT at m\.off\(i\), then Store8 at m\.off\(i\)\+entCksum\) have no persist barrier`
	m.dev.Store8(ctx, m.off(i)+entCksum, 7)
}

// goodAppend fences between the body write and the checksum publish.
func (m *metaLog) goodAppend(ctx *sim.Ctx, buf []byte, i int) {
	m.dev.WriteNT(ctx, buf, m.off(i))
	m.dev.Fence(ctx)
	m.dev.Store8(ctx, m.off(i)+entCksum, 7)
}

// goodAppendCrossPkg takes its fence from an imported helper whose summary
// says every path crosses one.
func (m *metaLog) goodAppendCrossPkg(ctx *sim.Ctx, buf []byte, i int) {
	m.dev.WriteNT(ctx, buf, m.off(i))
	b.FenceAll(ctx, m.dev)
	m.dev.Store8(ctx, m.off(i)+entCksum, 7)
}

// goodLoopAppend re-targets the same WriteNT call site each iteration: the
// offset expression re-evaluates, so the loop-back edge is not a dependent
// pair.
func (m *metaLog) goodLoopAppend(ctx *sim.Ctx, buf []byte, n int) {
	for i := 0; i < n; i++ {
		m.dev.WriteNT(ctx, buf, m.off(i))
	}
	m.dev.Fence(ctx)
}

// goodUnrelated touches two different families with no barrier: not a
// dependent pair.
func (m *metaLog) goodUnrelated(ctx *sim.Ctx, buf []byte, i int, hw int64) {
	m.dev.WriteNT(ctx, buf, m.off(i))
	m.dev.Store8(ctx, hw+entCksum, 7)
}
