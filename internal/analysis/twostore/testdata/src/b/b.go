// Package b exports a barrier helper so package a can prove that a persist
// barrier on the far side of a package boundary still separates dependent
// stores (the callee's BarrierNTAll fact).
package b

import (
	"nvm"
	"sim"
)

// FenceAll drains prior non-temporal stores on every path.
func FenceAll(ctx *sim.Ctx, dev *nvm.Device) {
	dev.Fence(ctx)
}
