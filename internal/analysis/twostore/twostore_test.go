package twostore_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/twostore"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), twostore.Analyzer, "a")
}
