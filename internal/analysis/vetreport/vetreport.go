// Package vetreport is the machine-readable findings sink for the mgspvet
// analyzers. When `make vet-report` passes -mgspsummary.report=<path>, every
// analyzer appends each finding — including ones suppressed by an //mgsp:
// annotation — as one JSON line; scripts/vetreport merges, dedupes, and
// sorts the lines into the CI artifact. Appends are single O_APPEND writes
// of one line, so concurrent per-package vet actions interleave cleanly.
package vetreport

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"golang.org/x/tools/go/analysis"
)

// Finding is one diagnostic occurrence.
type Finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// Emit appends f to the JSONL report at path; a best-effort sink, it is a
// no-op when path is empty and silent on write errors (the report is an
// artifact, never a gate).
func Emit(path string, f Finding) {
	if path == "" {
		return
	}
	b, err := json.Marshal(f)
	if err != nil {
		return
	}
	fd, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer fd.Close()
	fmt.Fprintf(fd, "%s\n", b)
}

// Report routes one finding: always to the JSONL report (when enabled), and
// to pass.Report unless suppressed.
func Report(pass *analysis.Pass, path string, pos token.Pos, msg string, suppressed bool) {
	p := pass.Fset.Position(pos)
	Emit(path, Finding{
		File: p.Filename, Line: p.Line,
		Analyzer: pass.Analyzer.Name, Message: msg, Suppressed: suppressed,
	})
	if !suppressed {
		pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
	}
}
