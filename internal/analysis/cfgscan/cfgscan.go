// Package cfgscan provides the small forward-reachability engine shared by
// the mgspvet analyzers. It flattens each cfg.Block into the function calls
// it executes (in approximate evaluation order) and answers "starting after
// call X, is a call classified Hit reachable before any call classified
// Stop?" — the shape of every ordering invariant mgspvet enforces
// (write-before-commit, lock-before-media-op, checksum-before-publish).
package cfgscan

import (
	"go/ast"

	"golang.org/x/tools/go/cfg"
)

// Class is a classification of one call site along a path.
type Class int

const (
	// Continue: the call is irrelevant to the invariant; keep walking.
	Continue Class = iota
	// Stop: the call satisfies/renews the invariant; abandon this path.
	Stop
	// Hit: the call violates the invariant; report it.
	Hit
)

// Calls returns the CallExprs evaluated by the block's nodes, in approximate
// evaluation order (operands before the calls that consume them). Calls
// inside DeferStmt arguments run at statement time but the deferred call
// itself does not, and FuncLit bodies execute only when invoked — both are
// excluded; the analyzers handle defers and nested functions separately.
func Calls(b *cfg.Block) []*ast.CallExpr {
	var out []*ast.CallExpr
	for _, n := range b.Nodes {
		out = appendCalls(out, n)
	}
	return out
}

func appendCalls(out []*ast.CallExpr, n ast.Node) []*ast.CallExpr {
	if n == nil {
		return out
	}
	var visit func(ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // body runs elsewhere
		case *ast.DeferStmt:
			// Receiver and arguments evaluate now; the call itself is
			// deferred to function exit.
			if x.Call != nil {
				ast.Inspect(x.Call.Fun, visit)
				for _, a := range x.Call.Args {
					ast.Inspect(a, visit)
				}
			}
			return false
		case *ast.GoStmt:
			// Same split as defer: operands evaluate at the go statement,
			// the call runs on another goroutine and never on this path.
			if x.Call != nil {
				ast.Inspect(x.Call.Fun, visit)
				for _, a := range x.Call.Args {
					ast.Inspect(a, visit)
				}
			}
			return false
		case *ast.CallExpr:
			// Post-order: operands first, then the call.
			ast.Inspect(x.Fun, visit)
			for _, a := range x.Args {
				ast.Inspect(a, visit)
			}
			out = append(out, x)
			return false
		}
		return true
	}
	ast.Inspect(n, visit)
	return out
}

// Pos identifies one call within a CFG: the bi-th call of block b.
type Pos struct {
	Block *cfg.Block
	Index int
}

// FindCall locates call within g, or returns a zero Pos and false.
func FindCall(g *cfg.CFG, call *ast.CallExpr) (Pos, bool) {
	for _, b := range g.Blocks {
		for i, c := range Calls(b) {
			if c == call {
				return Pos{b, i}, true
			}
		}
	}
	return Pos{}, false
}

// ReachableAfter walks forward from the call at p (exclusive) and returns
// the first call classified Hit on some path that crossed no Stop call, or
// nil if every path Stops or exits first. The walk is per-block memoized, so
// it is linear in the CFG size.
func ReachableAfter(g *cfg.CFG, p Pos, classify func(*ast.CallExpr) Class) *ast.CallExpr {
	// Scan the remainder of the start block.
	calls := Calls(p.Block)
	for _, c := range calls[p.Index+1:] {
		switch classify(c) {
		case Stop:
			return nil
		case Hit:
			return c
		}
	}
	seen := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block) *ast.CallExpr
	walk = func(b *cfg.Block) *ast.CallExpr {
		if seen[b] {
			return nil
		}
		seen[b] = true
		for _, c := range Calls(b) {
			switch classify(c) {
			case Stop:
				return nil
			case Hit:
				return c
			}
		}
		for _, s := range b.Succs {
			if hit := walk(s); hit != nil {
				return hit
			}
		}
		return nil
	}
	for _, s := range p.Block.Succs {
		if hit := walk(s); hit != nil {
			return hit
		}
	}
	return nil
}

// ExitReachableAfter reports whether some path from the call at p
// (exclusive) reaches a function exit — a successor-less block, i.e. a
// return or a no-return call — without crossing a call classified Stop.
// Hit classifications are treated as Continue; only Stop prunes paths.
func ExitReachableAfter(g *cfg.CFG, p Pos, classify func(*ast.CallExpr) Class) bool {
	calls := Calls(p.Block)
	for _, c := range calls[p.Index+1:] {
		if classify(c) == Stop {
			return false
		}
	}
	if len(p.Block.Succs) == 0 {
		return true
	}
	seen := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, c := range Calls(b) {
			if classify(c) == Stop {
				return false
			}
		}
		if len(b.Succs) == 0 {
			return true
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	for _, s := range p.Block.Succs {
		if walk(s) {
			return true
		}
	}
	return false
}

// Preds returns the predecessor map of g's blocks.
func Preds(g *cfg.CFG) map[*cfg.Block][]*cfg.Block {
	preds := make(map[*cfg.Block][]*cfg.Block)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Between returns the set of blocks lying on some path from block from to
// block to, inclusive of both endpoints: forward reachability from `from`
// intersected with backward reachability from `to`. When to is unreachable
// from from, the result is empty.
func Between(g *cfg.CFG, from, to *cfg.Block) map[*cfg.Block]bool {
	fwd := make(map[*cfg.Block]bool)
	var down func(b *cfg.Block)
	down = func(b *cfg.Block) {
		if fwd[b] {
			return
		}
		fwd[b] = true
		for _, s := range b.Succs {
			down(s)
		}
	}
	down(from)
	if !fwd[to] {
		return nil
	}
	preds := Preds(g)
	bwd := make(map[*cfg.Block]bool)
	var up func(b *cfg.Block)
	up = func(b *cfg.Block) {
		if bwd[b] {
			return
		}
		bwd[b] = true
		for _, p := range preds[b] {
			up(p)
		}
	}
	up(to)
	out := make(map[*cfg.Block]bool)
	for b := range fwd {
		if bwd[b] {
			out[b] = true
		}
	}
	return out
}

// ReachableFromEntry walks forward from the function entry and returns the
// first Hit call reachable along a path that crossed no Stop call.
func ReachableFromEntry(g *cfg.CFG, classify func(*ast.CallExpr) Class) *ast.CallExpr {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block) *ast.CallExpr
	walk = func(b *cfg.Block) *ast.CallExpr {
		if seen[b] {
			return nil
		}
		seen[b] = true
		for _, c := range Calls(b) {
			switch classify(c) {
			case Stop:
				return nil
			case Hit:
				return c
			}
		}
		for _, s := range b.Succs {
			if hit := walk(s); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(g.Blocks[0])
}
