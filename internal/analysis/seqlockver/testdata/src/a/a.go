// Package a holds the seqlockver golden cases over the DRAM frame cache's
// optimistic-read shape (cache.Read): capture the version, copy the
// payload, re-validate after the copy, and keep the section a pure copy.
package a

import (
	"sync"
	"sync/atomic"

	"nvm"
	"sim"
)

type frame struct {
	mu   sync.Mutex
	ver  atomic.Uint64 //mgsp:seqlock frame seqlock version word (even = stable)
	data [64]byte
	hits atomic.Uint64
}

// goodRead is the cache.Read shape: capture, pure copy, re-validate.
func goodRead(f *frame, buf []byte) bool {
	v := f.ver.Load()
	if v%2 != 0 {
		return false
	}
	copy(buf, f.data[:])
	return f.ver.Load() == v
}

// badNoRevalidate returns the copy without comparing against a fresh Load:
// a torn read is silently served.
func badNoRevalidate(f *frame, buf []byte) {
	v := f.ver.Load() // want `seqlock version ver captured into v but never re-validated against a fresh Load`
	if v%2 != 0 {
		return
	}
	copy(buf, f.data[:])
}

// badMediaInSection touches the device between capture and re-validation.
func badMediaInSection(ctx *sim.Ctx, dev *nvm.Device, f *frame, buf []byte) bool {
	v := f.ver.Load()
	dev.Read(ctx, buf, 0) // want `Read inside the optimistic read section of seqlock ver`
	return f.ver.Load() == v
}

// badLockInSection blocks on a mutex inside the section.
func badLockInSection(f *frame, buf []byte) bool {
	v := f.ver.Load()
	f.mu.Lock() // want `Lock inside the optimistic read section of seqlock ver`
	copy(buf, f.data[:])
	f.mu.Unlock()
	return f.ver.Load() == v
}

// badMutateInSection publishes through an atomic inside the section — the
// failed validation cannot roll the count back.
func badMutateInSection(f *frame, buf []byte) bool {
	v := f.ver.Load()
	f.hits.Add(1) // want `Add inside the optimistic read section of seqlock ver`
	copy(buf, f.data[:])
	return f.ver.Load() == v
}

func readMedia(ctx *sim.Ctx, dev *nvm.Device, buf []byte) {
	dev.Read(ctx, buf, 0)
}

// badCalleeMedia reaches media through a helper: the summary engine sees it.
func badCalleeMedia(ctx *sim.Ctx, dev *nvm.Device, f *frame, buf []byte) bool {
	v := f.ver.Load()
	readMedia(ctx, dev, buf) // want `readMedia inside the optimistic read section of seqlock ver`
	return f.ver.Load() == v
}

// suppressedStats keeps a justified in-section effect quiet.
func suppressedStats(f *frame, buf []byte) bool {
	v := f.ver.Load()
	f.hits.Add(1) //mgsp:seqlock-ok monotonic hit counter, over-count on retry is fine
	copy(buf, f.data[:])
	return f.ver.Load() == v
}
