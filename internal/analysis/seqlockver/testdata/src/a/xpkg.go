// Cross-package cases: the seqlock annotation on cache.Frame.Ver is an
// imported fact, not a local parse.
package a

import "cache"

// goodCrossRead re-validates an imported seqlock field.
func goodCrossRead(fr *cache.Frame, buf []byte) bool {
	v := fr.Ver.Load()
	copy(buf, fr.Data[:])
	return fr.Ver.Load() == v
}

// badCrossNoRevalidate misses the re-validation on an imported field.
func badCrossNoRevalidate(fr *cache.Frame, buf []byte) {
	v := fr.Ver.Load() // want `seqlock version Ver captured into v but never re-validated against a fresh Load`
	if v%2 != 0 {
		return
	}
	copy(buf, fr.Data[:])
}
