// Package cache is the exporting side of the cross-package seqlockver
// fixture: the //mgsp:seqlock annotation on Frame.Ver travels to importers
// as an object fact.
package cache

import "sync/atomic"

// Frame mirrors the DRAM frame cache's frame header.
type Frame struct {
	Ver  atomic.Uint64 //mgsp:seqlock published frame version (even = stable)
	Data [64]byte
}
