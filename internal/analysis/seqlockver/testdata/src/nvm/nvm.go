// Package nvm is a minimal stand-in for mgsp/internal/nvm.
package nvm

import "sim"

// Device mirrors the media-op surface of nvm.Device.
type Device struct{}

func (d *Device) Read(ctx *sim.Ctx, buf []byte, off int64)            {}
func (d *Device) Write(ctx *sim.Ctx, data []byte, off int64)          {}
func (d *Device) WriteNT(ctx *sim.Ctx, data []byte, off int64)        {}
func (d *Device) Flush(ctx *sim.Ctx, off int64, n int) int            { return 0 }
func (d *Device) Fence(ctx *sim.Ctx)                                  {}
func (d *Device) Persist(ctx *sim.Ctx, off int64, n int)              {}
func (d *Device) Store8(ctx *sim.Ctx, off int64, v uint64)            {}
func (d *Device) CAS8(ctx *sim.Ctx, off int64, old, new uint64) bool  { return true }
