package seqlockver_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/seqlockver"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seqlockver.Analyzer, "a")
}
