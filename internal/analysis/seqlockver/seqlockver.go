// Package seqlockver defines an analyzer for the optimistic-read protocol
// the DRAM frame cache relies on (DESIGN.md §13): a reader loads the
// seqlock version word, checks parity, copies the protected data, and must
// re-load and compare the version AFTER the copy — a section that never
// re-validates returns torn data silently. Fields acting as seqlock
// versions are declared with //mgsp:seqlock on the field; only annotated
// fields are checked, because not every atomic version word is a seqlock
// (core's MGL lock versions are validated cross-function by walkOpt and do
// media reads in-section by design).
//
// For every section — an assignment v := x.ver.Load() of an annotated
// field to a local variable — the analyzer checks:
//
//   - some comparison of v against a fresh .Load() of the same field
//     exists (the re-validation); a version captured into a local and
//     never re-validated is reported at the capture;
//   - between the capture and the re-validation, no call may touch the
//     media, block on or try a lock, call a media-performing function
//     (interprocedurally, via the summary engine), or mutate shared state
//     through an atomic store — the section must be a pure copy, because
//     its reads are unsynchronized and its effects would not be rolled
//     back by a failed validation.
//
// Suppress with //mgsp:seqlock-ok <justification>.
package seqlockver

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/vetreport"
)

const doc = `check optimistic read sections over //mgsp:seqlock version fields

A section starts at v := x.ver.Load() of an annotated field and must
re-validate (compare v against a fresh Load) after the copy; inside the
section no media op, lock acquire, or shared-state mutation may occur.
Suppress with //mgsp:seqlock-ok <justification>.`

var Analyzer = &analysis.Analyzer{
	Name:       "seqlockver",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer, summary.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

// atomicMutators are the method names that mutate through an atomic value.
var atomicMutators = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true,
	"Or": true, "And": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)

	// seqlockLoad returns the annotated field var if call is field.Load()
	// on a //mgsp:seqlock field (possibly through a longer selector chain).
	seqlockLoad := func(call *ast.CallExpr) *types.Var {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
			return nil
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if s, ok := pass.TypesInfo.Selections[inner]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && sum.IsSeqlock(v) {
				return v
			}
		}
		return nil
	}

	check := func(g *cfg.CFG, body *ast.BlockStmt) {
		if g == nil {
			return
		}
		// Section starts: v := field.Load() with v a plain identifier.
		type section struct {
			v     *types.Var // captured version variable
			field *types.Var // the seqlock field
			call  *ast.CallExpr
		}
		var sections []section
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // literals get their own CFG visit below
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			field := seqlockLoad(call)
			if field == nil {
				return true
			}
			v, _ := pass.TypesInfo.Defs[id].(*types.Var)
			if v == nil {
				v, _ = pass.TypesInfo.Uses[id].(*types.Var)
			}
			if v != nil {
				sections = append(sections, section{v: v, field: field, call: call})
			}
			return true
		})

		// Re-validations: comparisons of the captured variable against a
		// fresh Load of the same field.
		validated := make(map[*types.Var]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
				return true
			}
			for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				id, ok := ast.Unparen(pair[0]).(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := pass.TypesInfo.Uses[id].(*types.Var)
				if v == nil {
					continue
				}
				call, ok := ast.Unparen(pair[1]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if seqlockLoad(call) != nil {
					validated[v] = true
				}
			}
			return true
		})

		for _, s := range sections {
			if !validated[s.v] {
				msg := fmt.Sprintf("seqlock version %s captured into %s but never re-validated against a fresh Load after the copy: a torn optimistic read goes undetected",
					s.field.Name(), s.v.Name())
				suppressed := dirs.Suppress(s.call.Pos(), mgspmatch.SeqlockOK)
				vetreport.Report(pass, sum.ReportPath, s.call.Pos(), msg, suppressed)
				continue
			}
			p, ok := cfgscan.FindCall(g, s.call)
			if !ok {
				continue
			}
			// Walk the section: from the capture to the re-validating Load
			// of the same field (the Stop). Effects inside are reported.
			field := s.field
			hit := cfgscan.ReachableAfter(g, p, func(c *ast.CallExpr) cfgscan.Class {
				if seqlockLoad(c) == field {
					return cfgscan.Stop // re-validation point ends the section
				}
				if m := mgspmatch.DeviceMethod(pass.TypesInfo, c); m != "" && mgspmatch.DeviceMediaOps[m] {
					return cfgscan.Hit
				}
				if n, _ := summary.LockMethod(pass.TypesInfo, c); summary.IsBlockingAcquire(n) || summary.IsTryAcquire(n) {
					return cfgscan.Hit
				}
				if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && atomicMutators[sel.Sel.Name] && len(c.Args) > 0 {
					return cfgscan.Hit
				}
				if cs := sum.CallSummary(c); cs != nil && (cs.MediaOp || len(cs.AcqBlocking) > 0) {
					return cfgscan.Hit
				}
				return cfgscan.Continue
			})
			if hit != nil {
				what := "call"
				if fn := mgspmatch.Callee(pass.TypesInfo, hit); fn != nil {
					what = fn.Name()
				} else if sel, ok := ast.Unparen(hit.Fun).(*ast.SelectorExpr); ok {
					what = sel.Sel.Name
				}
				msg := fmt.Sprintf("%s inside the optimistic read section of seqlock %s (before re-validation): the section must be a pure copy — a failed validation cannot roll this back",
					what, field.Name())
				suppressed := dirs.Suppress(hit.Pos(), mgspmatch.SeqlockOK)
				vetreport.Report(pass, sum.ReportPath, hit.Pos(), msg, suppressed)
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					check(cfgs.FuncDecl(n), n.Body)
				}
			case *ast.FuncLit:
				check(cfgs.FuncLit(n), n.Body)
			}
			return true
		})
	}
	return dirs, nil
}
