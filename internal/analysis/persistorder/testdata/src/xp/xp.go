// Package xp is the importing side of the persistorder cross-package
// fixture: calls into xhelp are classified purely by the effect summaries
// xhelp exported — a callee that returns with an unfenced WriteNT makes its
// call site a write source here, and the commit store that follows it needs
// a barrier in between.
package xp

import (
	"xhelp"

	"nvm"
	"sim"
)

// badStagedCommit: the staged write is still unfenced when the commit store
// publishes it.
func badStagedCommit(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	xhelp.StageBare(ctx, dev, data) // want `StageBare \(returns with an unfenced WriteNT\) may reach commit sink Store8 without an intervening persist barrier`
	dev.Store8(ctx, 0, 1)
}

// goodStagedFencedCommit: the caller owns the barrier and provides it.
func goodStagedFencedCommit(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	xhelp.StageBare(ctx, dev, data)
	dev.Fence(ctx)
	dev.Store8(ctx, 0, 1)
}

// goodFlushedStage: the callee barriers on every path before returning.
func goodFlushedStage(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	xhelp.FlushStage(ctx, dev, data)
	dev.Store8(ctx, 0, 1)
}
