// Package srv reconstructs the server's group-commit publish shape for the
// persistorder golden corpus: a drained batch's payloads land as
// non-temporal writes, then one commit word publishes the whole batch. A
// missing barrier lets the publish reach media before the payloads — after
// a crash, recovery replays a batch whose data never persisted, which is
// exactly the half-applied group commit the torture oracle hunts.
package srv

import (
	"nvm"
	"sim"
)

type batcher struct{ dev *nvm.Device }

// commitBatch publishes the batch's commit word; name-matched as a sink.
func (b *batcher) commitBatch(ctx *sim.Ctx) {
	b.dev.Store8(ctx, 0, 1)
}

// badGroupCommitPublish: payload write reaches the batch publish with no
// fence in between.
func (b *batcher) badGroupCommitPublish(ctx *sim.Ctx, payload []byte) {
	b.dev.WriteNT(ctx, payload, 4096) // want `nvm WriteNT may reach commit sink commitBatch without an intervening persist barrier`
	b.commitBatch(ctx)
}

// badCoalescedOps: every coalesced op's payload must be ordered before the
// single group publish; each unfenced write is flagged.
func (b *batcher) badCoalescedOps(ctx *sim.Ctx, a, c []byte) {
	b.dev.WriteNT(ctx, a, 4096) // want `nvm WriteNT may reach commit sink commitBatch without an intervening persist barrier`
	b.dev.WriteNT(ctx, c, 8192) // want `nvm WriteNT may reach commit sink commitBatch without an intervening persist barrier`
	b.commitBatch(ctx)
}

// goodGroupCommitPublish: one fence after the whole drained batch is the
// group-commit amortization — N payload writes, one barrier, one publish.
func (b *batcher) goodGroupCommitPublish(ctx *sim.Ctx, a, c []byte) {
	b.dev.WriteNT(ctx, a, 4096)
	b.dev.WriteNT(ctx, c, 8192)
	b.dev.Fence(ctx)
	b.commitBatch(ctx)
}

// goodCachedBatch: cached writes need the write-back flush, not just the
// fence, before the publish.
func (b *batcher) goodCachedBatch(ctx *sim.Ctx, a []byte) {
	b.dev.Write(ctx, a, 4096)
	b.dev.Persist(ctx, 4096, len(a))
	b.commitBatch(ctx)
}
