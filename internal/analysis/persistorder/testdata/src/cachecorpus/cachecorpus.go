// Package cachecorpus reconstructs internal/core's cache-drain shape for
// the persistorder golden corpus: the flusher collects dirty DRAM frames,
// lands their payloads on media, and only then commits the batch and marks
// the frames clean. Marking a frame clean is a publication — once clean, the
// frame can be evicted and later reads trust media — so an unfenced payload
// reaching the commit-and-clean step is the lost-write bug: a crash after
// the commit word but before the payload write-back leaves media stale while
// every frame claims it is current.
package cachecorpus

import (
	"nvm"
	"sim"
)

type frame struct{ dirty bool }

type drainer struct {
	dev    *nvm.Device
	frames []*frame
}

// commitCleanFrames publishes the drained batch (name-matched as a commit
// sink) and marks the collected frames clean.
func (d *drainer) commitCleanFrames(ctx *sim.Ctx) {
	d.dev.Store8(ctx, 0, 1)
	for _, f := range d.frames {
		f.dirty = false
	}
}

// badDrainMarksCleanUnfenced: the payload write can reach the
// commit-and-mark-clean step with no barrier in between.
func (d *drainer) badDrainMarksCleanUnfenced(ctx *sim.Ctx, data []byte) {
	d.dev.WriteNT(ctx, data, 4096) // want `nvm WriteNT may reach commit sink commitCleanFrames without an intervening persist barrier`
	d.commitCleanFrames(ctx)
}

// badDrainBatch: every frame of a coalesced drain batch must be ordered
// before the single batch commit; each unfenced payload is flagged.
func (d *drainer) badDrainBatch(ctx *sim.Ctx, a, b []byte) {
	d.dev.WriteNT(ctx, a, 4096) // want `nvm WriteNT may reach commit sink commitCleanFrames without an intervening persist barrier`
	d.dev.WriteNT(ctx, b, 8192) // want `nvm WriteNT may reach commit sink commitCleanFrames without an intervening persist barrier`
	d.commitCleanFrames(ctx)
}

// goodDrainBarrierThenClean: the flusher's actual discipline — N payload
// writes, one fence, then the commit that lets MarkClean run.
func (d *drainer) goodDrainBarrierThenClean(ctx *sim.Ctx, a, b []byte) {
	d.dev.WriteNT(ctx, a, 4096)
	d.dev.WriteNT(ctx, b, 8192)
	d.dev.Fence(ctx)
	d.commitCleanFrames(ctx)
}

// goodCachedDrain: cache-line writes need an explicit write-back, not just
// an sfence, before the frames may be declared clean.
func (d *drainer) goodCachedDrain(ctx *sim.Ctx, a []byte) {
	d.dev.Write(ctx, a, 4096)
	d.dev.Persist(ctx, 4096, len(a))
	d.commitCleanFrames(ctx)
}
