// Package xhelp is the exporting side of the persistorder cross-package
// fixture: StageBare returns with an unfenced WriteNT (the caller owns the
// barrier), FlushStage barriers before returning. The WriteBareNT /
// BarrierNTAll facts travel to the importing package.
package xhelp

import (
	"nvm"
	"sim"
)

// StageBare writes shadow data non-temporally and returns without fencing.
func StageBare(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 4096)
}

// FlushStage stages and fences: no pending write escapes.
func FlushStage(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 4096)
	dev.Fence(ctx)
}
