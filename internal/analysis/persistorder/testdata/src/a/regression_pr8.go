// Regression: the per-worker area-cursor publish shape added with the
// many-core metadata log (PR 8). A claim persists the area's cursor entry
// non-temporally and then the caller commits the claimed slot through the
// usual Store8 publish; the fence between them is what keeps a crash from
// persisting a cursor that bounds recovery's scan BELOW a slot whose commit
// word already landed — the bounded scan would silently skip a committed
// op. The analyzer must flag the fence-less form against both sink kinds
// (the raw Store8 publish and a commit-named helper).
package a

import (
	"nvm"
	"sim"
)

type cursorLog struct{ dev *nvm.Device }

// commitClaim publishes a claimed slot's commit word; name-matched as a sink.
func (m *cursorLog) commitClaim(ctx *sim.Ctx, off int64) {
	m.dev.Store8(ctx, off, 1)
}

// badCursorBeforeCommit: the cursor entry's non-temporal write reaches the
// claimed slot's commit publish with no fence in between.
func (m *cursorLog) badCursorBeforeCommit(ctx *sim.Ctx, cursor []byte) {
	m.dev.WriteNT(ctx, cursor, 0) // want `nvm WriteNT may reach commit sink commitClaim without an intervening persist barrier`
	m.commitClaim(ctx, 4096)
}

// badCursorBeforeStore: same tear, raw-sink form — the unfenced cursor
// write flows straight into the Store8 commit word.
func (m *cursorLog) badCursorBeforeStore(ctx *sim.Ctx, cursor []byte) {
	m.dev.WriteNT(ctx, cursor, 0) // want `nvm WriteNT may reach commit sink Store8 without an intervening persist barrier`
	m.dev.Store8(ctx, 4096, 1)
}

// goodCursorPublish is the shipped writeCursor shape: the cursor's WriteNT
// is fenced before any later commit word can land.
func (m *cursorLog) goodCursorPublish(ctx *sim.Ctx, cursor []byte) {
	m.dev.WriteNT(ctx, cursor, 0)
	m.dev.Fence(ctx)
	m.commitClaim(ctx, 4096)
}

// goodCursorThenRetire: after the fenced cursor, the retire path's two
// Store8 kills (checksum first, then length) are eagerly-durable stores —
// no further barrier is owed for them.
func (m *cursorLog) goodCursorThenRetire(ctx *sim.Ctx, cursor []byte) {
	m.dev.WriteNT(ctx, cursor, 0)
	m.dev.Fence(ctx)
	m.dev.Store8(ctx, 4096+40, 0)
	m.dev.Store8(ctx, 4096+0, 0)
}
